// E5 — Figures 18a/18b: line-item cannibalization (Section 8.5).
//
// Regenerates both panels for auctions in which the starved line item λ
// participated: per winning line item, the number of wins (18a) and the
// average winning bid price (18b). Shape checks: λ itself wins zero
// auctions, and every winner's average price sits well above λ's advisory
// price — the cannibalization signature that told Turn to raise λ's bid.

#include <cstdio>
#include <map>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  SystemConfig config;
  config.seed = 55;
  config.platform.seed = 55;
  ScrubSystem system(config);

  constexpr LineItemId kLambda = 7777;
  constexpr double kLambdaPrice = 0.8;
  LineItem lambda;
  lambda.id = kLambda;
  lambda.campaign_id = 99;
  lambda.advisory_bid_price = kLambdaPrice;
  system.platform().AddLineItem(lambda);

  const TimeMicros kTrace = 45 * kMicrosPerSecond;
  PoissonLoadConfig load;
  load.requests_per_second = 1200;
  load.duration = kTrace;
  load.user_population = 40000;
  system.workload().SchedulePoissonLoad(load);

  const char* query =
      "SELECT impression.line_item_id, COUNT(*), "
      "AVG(auction.winning_price) FROM auction, impression "
      "WHERE auction.line_item_ids CONTAINS 7777 "
      "GROUP BY impression.line_item_id WINDOW 45 s DURATION 45 s;";
  std::printf("E5 / Figures 18a+18b: winners of auctions containing "
              "lambda=%lld\n\nquery> %s\n\n",
              static_cast<long long>(kLambda), query);

  struct WinnerRow {
    uint64_t wins = 0;
    double avg_price = 0;
  };
  std::map<int64_t, WinnerRow> winners;
  Result<SubmittedQuery> submitted =
      system.Submit(query, [&](const ResultRow& row) {
        WinnerRow& w = winners[row.values[0].AsInt()];
        w.wins += static_cast<uint64_t>(row.values[1].AsInt());
        if (row.values[2].is_double()) {
          w.avg_price = row.values[2].AsDoubleExact();
        }
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }
  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  std::printf("%-14s %-10s %-16s\n", "line item", "wins (18a)",
              "avg price (18b)");
  uint64_t lambda_wins = 0;
  double min_avg_price = 1e9;
  for (const auto& [item, w] : winners) {
    std::printf("%-14lld %-10llu $%.3f\n", static_cast<long long>(item),
                static_cast<unsigned long long>(w.wins), w.avg_price);
    if (item == kLambda) {
      lambda_wins = w.wins;
    } else if (w.wins > 0) {
      min_avg_price = std::min(min_avg_price, w.avg_price);
    }
  }
  std::printf("\npaper shape checks:\n");
  std::printf("  lambda wins: %llu (expect 0)\n",
              static_cast<unsigned long long>(lambda_wins));
  std::printf("  lowest winner avg price: $%.3f vs lambda advisory $%.2f "
              "(expect winners >> lambda)\n",
              min_avg_price, kLambdaPrice);
  const bool matches =
      lambda_wins == 0 && min_avg_price > 2 * kLambdaPrice &&
      !winners.empty();
  std::printf("  => %s\n",
              matches ? "cannibalization signature confirmed (matches paper)"
                      : "signature absent");
  return matches ? 0 : 1;
}
