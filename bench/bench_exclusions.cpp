// E4 — Figure 16: line-item exclusion analysis (Section 8.4).
//
// The query equi-joins `bid` events (BidServers) with `exclusion` events
// (AdServers) on the request identifier — the two event types are generated
// on different machines, which is exactly why the language's only join is
// the request-id equi-join — and counts exclusions per line item for one
// exchange and one publisher. The paper plots these per-line-item exclusion
// counts and compares the distribution against well-behaved line items.
//
// Scalability note mirrored from the paper: every bid request excludes most
// of the catalog, so exclusion volume dwarfs everything else; Scrub only
// ships the slice the query selects (one exchange + one publisher).

#include <cstdio>
#include <map>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  SystemConfig config;
  config.seed = 31;
  config.platform.seed = 31;
  config.platform.num_campaigns = 8;
  config.platform.line_items_per_campaign = 5;
  ScrubSystem system(config);

  const TimeMicros kTrace = 30 * kMicrosPerSecond;
  PoissonLoadConfig load;
  load.requests_per_second = 800;
  load.duration = kTrace;
  load.user_population = 30000;
  system.workload().SchedulePoissonLoad(load);

  const char* query =
      "SELECT exclusion.line_item_id, exclusion.reason, COUNT(*) "
      "FROM bid, exclusion "
      "WHERE exclusion.exchange_id = 2 AND exclusion.publisher_id = 7 "
      "GROUP BY exclusion.line_item_id, exclusion.reason "
      "WINDOW 30 s DURATION 30 s;";
  std::printf("E4 / Figure 16: exclusion counts per line item for exchange 2, "
              "publisher 7\n\nquery> %s\n\n", query);

  std::map<int64_t, uint64_t> per_item;
  std::map<std::string, uint64_t> per_reason;
  Result<SubmittedQuery> submitted =
      system.Submit(query, [&](const ResultRow& row) {
        const uint64_t n = static_cast<uint64_t>(row.values[2].AsInt());
        per_item[row.values[0].AsInt()] += n;
        per_reason[row.values[1].AsString()] += n;
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }
  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  std::printf("%-14s %-12s\n", "line item", "exclusions");
  uint64_t total = 0;
  for (const auto& [item, n] : per_item) {
    std::printf("%-14lld %-12llu\n", static_cast<long long>(item),
                static_cast<unsigned long long>(n));
    total += n;
  }
  std::printf("\nby reason:\n");
  for (const auto& [reason, n] : per_reason) {
    std::printf("  %-20s %llu\n", reason.c_str(),
                static_cast<unsigned long long>(n));
  }

  const CentralQueryStats* stats = system.central().StatsFor(submitted->id);
  const uint64_t all_exclusions = system.platform().stats().exclusions;
  std::printf("\nscalability check (the paper's motivation for on-demand "
              "querying):\n");
  std::printf("  exclusions platform-wide: %llu\n",
              static_cast<unsigned long long>(all_exclusions));
  std::printf("  exclusion tuples this query joined: %llu (%.2f%%)\n",
              static_cast<unsigned long long>(stats->tuples_joined),
              100.0 * static_cast<double>(stats->tuples_joined) /
                  static_cast<double>(all_exclusions));
  return total > 0 ? 0 : 1;
}
