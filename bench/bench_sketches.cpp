// E12 — probabilistic aggregates (paper Section 3.2).
//
// Throughput and accuracy of the two sketches behind TOP-K and
// COUNT_DISTINCT: SpaceSaving and HyperLogLog. Accuracy is attached as
// benchmark counters (relative error for HLL; max rank error among the true
// top-10 for SpaceSaving on a Zipf stream), alongside a hash-set /
// exact-counter strawman for the space-vs-accuracy trade.

#include <unordered_map>
#include <unordered_set>

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/space_saving.h"

namespace scrub {
namespace {

void BM_HllAdd(benchmark::State& state) {
  HyperLogLog hll(14);
  uint64_t key = 0;
  for (auto _ : state) {
    hll.Add(static_cast<int64_t>(key++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["size_bytes"] =
      static_cast<double>(hll.SizeBytes());
}
BENCHMARK(BM_HllAdd);

void BM_HllAccuracy(benchmark::State& state) {
  const int64_t n = state.range(0);
  double rel_err = 0;
  for (auto _ : state) {
    HyperLogLog hll(14);
    for (int64_t i = 0; i < n; ++i) {
      hll.Add(i * 2654435761 + 7);
    }
    const double est = hll.Estimate();
    rel_err = std::abs(est - static_cast<double>(n)) / static_cast<double>(n);
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.counters["rel_err"] = rel_err;
}
BENCHMARK(BM_HllAccuracy)->Arg(10000)->Arg(1000000);

void BM_ExactDistinctStrawman(benchmark::State& state) {
  // What COUNT_DISTINCT would cost without the sketch: a hash set that
  // grows with the key universe (the paper's reason for HyperLogLog).
  const int64_t n = state.range(0);
  size_t bytes = 0;
  for (auto _ : state) {
    std::unordered_set<int64_t> exact;
    for (int64_t i = 0; i < n; ++i) {
      exact.insert(i * 2654435761 + 7);
    }
    bytes = exact.size() * (sizeof(int64_t) + sizeof(void*) * 2);
    benchmark::DoNotOptimize(exact.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.counters["approx_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ExactDistinctStrawman)->Arg(10000)->Arg(1000000);

void BM_SpaceSavingAdd(benchmark::State& state) {
  SpaceSaving<uint64_t> ss(static_cast<size_t>(state.range(0)));
  ZipfGenerator zipf(100000, 1.1);
  Rng rng(3);
  for (auto _ : state) {
    ss.Add(zipf.Next(rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(std::to_string(state.range(0)) + " counters");
}
BENCHMARK(BM_SpaceSavingAdd)->Arg(100)->Arg(1000);

void BM_SpaceSavingAccuracy(benchmark::State& state) {
  // Error of the reported top-10 counts vs exact counts, Zipf stream.
  const size_t capacity = static_cast<size_t>(state.range(0));
  double worst_rel_err = 0;
  for (auto _ : state) {
    SpaceSaving<uint64_t> ss(capacity);
    std::unordered_map<uint64_t, uint64_t> exact;
    ZipfGenerator zipf(100000, 1.1);
    Rng rng(7);
    for (int i = 0; i < 300000; ++i) {
      const uint64_t k = zipf.Next(rng);
      ss.Add(k);
      ++exact[k];
    }
    worst_rel_err = 0;
    for (const auto& entry : ss.TopK(10)) {
      const double err =
          std::abs(static_cast<double>(entry.count) -
                   static_cast<double>(exact[entry.key])) /
          static_cast<double>(exact[entry.key]);
      worst_rel_err = std::max(worst_rel_err, err);
    }
    benchmark::DoNotOptimize(worst_rel_err);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 300000);
  state.counters["top10_worst_rel_err"] = worst_rel_err;
}
BENCHMARK(BM_SpaceSavingAccuracy)->Arg(100)->Arg(1000);

void BM_HllMerge(benchmark::State& state) {
  // ScrubCentral merges per-host partial sketches; measure the merge.
  HyperLogLog a(14);
  HyperLogLog b(14);
  for (int64_t i = 0; i < 100000; ++i) {
    a.Add(i);
    b.Add(i + 50000);
  }
  for (auto _ : state) {
    HyperLogLog c = a;
    c.Merge(b);
    benchmark::DoNotOptimize(c.Estimate());
  }
}
BENCHMARK(BM_HllMerge);

}  // namespace
}  // namespace scrub
