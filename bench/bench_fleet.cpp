// Fleet-scaling experiment: central ingress bytes and central-node CPU,
// flat vs hierarchical (regional combiner) topology, at a bidsim fleet ~10x
// the test configurations (4 DCs, 8*scale + 1 hosts).
//
// The paper's scaling argument is that the central link and the coordinator
// are the bottlenecks at fleet scale: every agent ships raw event batches
// straight at one node. The combiner tier folds each DC's batches into
// per-group WindowPartials, so central receives one compact envelope stream
// per region instead of one raw stream per host. This harness measures
// exactly those two axes on identical workloads:
//
//   central_link_bytes   simulated bytes arriving at the central host on
//                        the data plane (raw event batches + partial
//                        envelopes; control/ack traffic is identical across
//                        topologies and excluded),
//   central_cpu_seconds  modeled Scrub ns charged at the central node
//                        (ScrubCentral's meter, plus the PartialCoordinator
//                        merge meter when hierarchical),
//   combiner_cpu_seconds the tier's own cost, honestly reported: the work
//                        did not vanish, it moved off the bottleneck node.
//
// The flat/hierarchical byte ratio at the default scale is the
// "fleet bytes_reduction" gate in tools/bench_compare.py (floor 5x). The
// agent_preaggregate ablation rides along for both topologies: COUNT/SUM
// deltas from the agents shrink the agent->{central,combiner} hop too.
//
// Usage: bench_fleet [scale] > BENCH_scrub.json   (default scale 10)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

constexpr TimeMicros kLoadDuration = 4 * kMicrosPerSecond;

struct TopoResult {
  std::string topology;
  size_t regions = 0;
  bool preaggregate = false;
  uint64_t central_link_bytes = 0;
  uint64_t event_bytes = 0;    // raw/pre-agg batches reaching central
  uint64_t partial_bytes = 0;  // combiner envelopes reaching central
  double central_cpu_seconds = 0.0;
  double combiner_cpu_seconds = 0.0;
  uint64_t rows = 0;
  int64_t total_count = 0;  // sum of the COUNT(*) column: the exactness check
  uint64_t events = 0;      // platform bid events generated
};

TopoResult RunOne(size_t scale, size_t regions, bool preaggregate) {
  SystemConfig config;
  config.seed = 7;
  config.platform.seed = 7;
  config.platform.datacenters = 4;
  config.platform.bidservers_per_dc = static_cast<int>(scale);
  config.platform.adservers_per_dc = static_cast<int>(scale / 2);
  config.platform.presentation_per_dc = static_cast<int>(scale / 2);
  config.platform.num_campaigns = 8;
  config.platform.line_items_per_campaign = 3;
  config.combiner_regions = regions;
  config.agent_preaggregate = preaggregate;

  ScrubSystem system(config);
  PoissonLoadConfig load;
  load.requests_per_second = 50.0 * static_cast<double>(scale);
  load.duration = kLoadDuration;
  system.workload().SchedulePoissonLoad(load);

  TopoResult r;
  r.regions = regions;
  r.preaggregate = preaggregate;
  auto submitted = system.Submit(
      "SELECT bid.campaign_id, COUNT(*), SUM(bid.bid_price) FROM bid "
      "GROUP BY bid.campaign_id WINDOW 1 s DURATION 4 s;",
      [&r](const ResultRow& row) {
        ++r.rows;
        r.total_count += row.values[1].AsInt();  // the COUNT(*) column
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    std::abort();
  }
  system.RunUntil(kLoadDuration + kMicrosPerSecond);
  system.Drain();

  const HostId central = system.central_host();
  r.event_bytes =
      system.transport().bytes_to(central, TrafficCategory::kScrubEvents);
  r.partial_bytes =
      system.transport().bytes_to(central, TrafficCategory::kScrubPartials);
  r.central_link_bytes = r.event_bytes + r.partial_bytes;
  double central_ns =
      static_cast<double>(system.central().meter().scrub_ns());
  if (system.hierarchical()) {
    central_ns += static_cast<double>(system.coordinator()->meter().scrub_ns());
  }
  r.central_cpu_seconds = central_ns / 1e9;
  for (const HostId chost : system.combiner_hosts()) {
    r.combiner_cpu_seconds +=
        static_cast<double>(system.combiner(chost)->inner().meter().scrub_ns()) /
        1e9;
  }
  r.events = system.platform().stats().bids;
  r.topology = regions > 0 ? "hierarchical" : "flat";
  if (preaggregate) {
    r.topology += "_preagg";
  }
  if (r.rows == 0) {
    std::abort();  // the run must actually compute something
  }
  return r;
}

int Main(int argc, char** argv) {
  const size_t scale =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 10;
  const size_t regions = 4;  // one combiner per DC

  std::vector<TopoResult> results;
  results.push_back(RunOne(scale, 0, false));
  results.push_back(RunOne(scale, regions, false));
  results.push_back(RunOne(scale, 0, true));
  results.push_back(RunOne(scale, regions, true));

  // COUNT(*) is exact under any merge association: every topology must
  // report the identical windows and total. A mismatch is a correctness bug,
  // not a measurement artifact.
  for (const TopoResult& r : results) {
    if (r.rows != results[0].rows || r.total_count != results[0].total_count) {
      std::fprintf(stderr,
                   "topology %s diverged: rows %llu vs %llu, count %lld vs "
                   "%lld\n",
                   r.topology.c_str(),
                   static_cast<unsigned long long>(r.rows),
                   static_cast<unsigned long long>(results[0].rows),
                   static_cast<long long>(r.total_count),
                   static_cast<long long>(results[0].total_count));
      std::abort();
    }
  }

  const double bytes_reduction =
      results[1].central_link_bytes > 0
          ? static_cast<double>(results[0].central_link_bytes) /
                static_cast<double>(results[1].central_link_bytes)
          : 0.0;
  const double cpu_reduction =
      results[1].central_cpu_seconds > 0
          ? results[0].central_cpu_seconds / results[1].central_cpu_seconds
          : 0.0;

  const size_t hosts = 4 * (scale + 2 * (scale / 2)) + 1;
  std::string out = "{\n";
  out += "  \"bench\": \"fleet\",\n";
  out += StrFormat("  \"scale\": %zu,\n", scale);
  out += StrFormat("  \"hosts\": %zu,\n", hosts);
  out += StrFormat("  \"regions\": %zu,\n", regions);
  out += StrFormat("  \"bytes_reduction\": %.2f,\n", bytes_reduction);
  out += StrFormat("  \"central_cpu_reduction\": %.2f,\n", cpu_reduction);
  out += "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const TopoResult& r = results[i];
    out += StrFormat(
        "    {\"topology\": \"%s\", \"regions\": %zu, "
        "\"central_link_bytes\": %llu, \"event_bytes\": %llu, "
        "\"partial_bytes\": %llu, \"central_cpu_seconds\": %.6f, "
        "\"combiner_cpu_seconds\": %.6f, \"rows\": %llu, "
        "\"total_count\": %lld, \"events\": %llu}%s\n",
        r.topology.c_str(), r.regions,
        static_cast<unsigned long long>(r.central_link_bytes),
        static_cast<unsigned long long>(r.event_bytes),
        static_cast<unsigned long long>(r.partial_bytes),
        r.central_cpu_seconds, r.combiner_cpu_seconds,
        static_cast<unsigned long long>(r.rows),
        static_cast<long long>(r.total_count),
        static_cast<unsigned long long>(r.events),
        i + 1 < results.size() ? "," : "");
  }
  out += "  ]\n}\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace scrub

int main(int argc, char** argv) { return scrub::Main(argc, argv); }
