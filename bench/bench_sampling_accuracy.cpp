// E10 — sampling accuracy and error bounds (paper Section 3.2, Eqs. 1-3).
//
// Grid over (host sampling %, event sampling %): run the same selective
// COUNT twice — exact and sampled — and report the relative estimation
// error next to the predicted 95% bound. Also a repeated-trial coverage
// check: across seeds, the true value should fall inside estimate ± bound
// about 95% of the time. This is the accuracy-for-host-protection trade the
// paper's language exposes as a first-class knob.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/scrub/scrub_system.h"

using namespace scrub;

namespace {

struct SampledRun {
  double estimate = 0;
  double bound = 0;
  bool is_exact = false;
};

SampledRun RunOnce(double host_pct, double event_pct, uint64_t seed) {
  SystemConfig config;
  config.seed = seed;
  config.platform.seed = seed;
  config.platform.bidservers_per_dc = 8;  // enough hosts to sample fractions
  ScrubSystem system(config);

  const TimeMicros kRun = 10 * kMicrosPerSecond;
  PoissonLoadConfig load;
  load.requests_per_second = 2000;
  load.duration = kRun;
  load.user_population = 50000;
  system.workload().SchedulePoissonLoad(load);

  std::string query =
      "SELECT COUNT(*) FROM bid WHERE bid.exchange_id = 1 "
      "@[SERVICE IN BidServers] WINDOW 10 s DURATION 10 s";
  if (host_pct < 100) {
    query += StrFormat(" SAMPLE HOSTS %g%%", host_pct);
  }
  if (event_pct < 100) {
    query += StrFormat(" SAMPLE EVENTS %g%%", event_pct);
  }
  query += ";";

  SampledRun run;
  Result<SubmittedQuery> submitted =
      system.Submit(query, [&run](const ResultRow& row) {
        if (row.values[0].is_double()) {
          run.estimate = row.values[0].AsDoubleExact();
        } else {
          run.estimate = static_cast<double>(row.values[0].AsInt());
          run.is_exact = true;
        }
        run.bound = row.error_bounds[0];
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    std::exit(1);
  }
  system.RunUntil(kRun + kMicrosPerSecond);
  system.Drain();
  return run;
}

}  // namespace

int main() {
  std::printf("E10: approximate COUNT under multi-stage sampling "
              "(Eqs. 1-3)\n\n");
  std::printf("%-12s %-12s %-12s %-12s %-10s %-14s\n", "hosts (%)",
              "events (%)", "exact", "estimate", "rel err", "95% bound/est");
  struct GridPoint {
    double host;
    double event;
  };
  const GridPoint grid[] = {{100, 100}, {100, 50}, {100, 25}, {100, 10},
                            {50, 100},  {50, 50},  {50, 10},  {25, 25},
                            {25, 10}};
  const double exact = RunOnce(100, 100, 900).estimate;
  for (const GridPoint& g : grid) {
    const SampledRun run = RunOnce(g.host, g.event, 900);
    const double rel_err = std::abs(run.estimate - exact) / exact;
    std::printf("%-12g %-12g %-12.0f %-12.0f %-10.3f %-14.3f\n", g.host,
                g.event, exact, run.estimate, rel_err,
                run.bound / std::max(1.0, run.estimate));
  }

  // Coverage: the 95% interval should contain the exact value in ~95% of
  // independent runs. (Each seed regenerates traffic too, so the "truth"
  // is recomputed per seed.)
  std::printf("\ncoverage check (50%% hosts x 25%% events, 30 seeds):\n");
  int covered = 0;
  int trials = 0;
  for (uint64_t seed = 1000; seed < 1030; ++seed) {
    const double truth = RunOnce(100, 100, seed).estimate;
    const SampledRun run = RunOnce(50, 25, seed);
    if (run.bound <= 0) {
      continue;
    }
    ++trials;
    if (std::abs(run.estimate - truth) <= run.bound) {
      ++covered;
    }
  }
  const double coverage =
      trials == 0 ? 0.0 : 100.0 * covered / static_cast<double>(trials);
  std::printf("  %d/%d intervals contain the exact count (%.0f%%; "
              "expect ~95%%)\n",
              covered, trials, coverage);
  return coverage >= 85.0 ? 0 : 1;
}
