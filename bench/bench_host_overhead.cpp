// E7 — host CPU overhead (paper Section 9).
//
// The paper's headline: on application hosts, Scrub's CPU overhead peaks at
// ~2.5%, even under high query load. This harness fixes the bid-request
// rate and sweeps the number of concurrent queries installed on the
// BidServers, reporting the Scrub share of host CPU; a second sweep shows
// event sampling pulling the overhead back down at high query counts.

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/scrub/scrub_system.h"

using namespace scrub;

namespace {

struct RunResult {
  double overhead_pct = 0;
  double events_per_sec = 0;
  uint64_t shipped = 0;
};

RunResult RunWithQueries(int num_queries, double event_sample_pct) {
  SystemConfig config;
  config.seed = 100 + static_cast<uint64_t>(num_queries);
  config.platform.seed = config.seed;
  ScrubSystem system(config);

  const TimeMicros kRun = 20 * kMicrosPerSecond;
  PoissonLoadConfig load;
  load.requests_per_second = 1000;
  load.duration = kRun;
  load.user_population = 50000;
  system.workload().SchedulePoissonLoad(load);

  // A realistic mixed query load: selective counts, grouped counts, and
  // averages across the bid stream (all targeting the BidServers so the
  // overhead lands where we measure).
  const char* templates[] = {
      "SELECT COUNT(*) FROM bid WHERE bid.exchange_id = 1 "
      "@[SERVICE IN BidServers] WINDOW 5 s DURATION 20 s%s;",
      "SELECT bid.user_id, COUNT(*) FROM bid @[SERVICE IN BidServers] "
      "GROUP BY bid.user_id WINDOW 5 s DURATION 20 s%s;",
      "SELECT AVG(bid.bid_price) FROM bid WHERE bid.country = 'US' "
      "@[SERVICE IN BidServers] WINDOW 5 s DURATION 20 s%s;",
      "SELECT bid.exchange_id, COUNT(*) FROM bid WHERE bid.bid_price > 1.0 "
      "@[SERVICE IN BidServers] GROUP BY bid.exchange_id "
      "WINDOW 5 s DURATION 20 s%s;",
  };
  const std::string sample_clause =
      event_sample_pct < 100.0
          ? StrFormat(" SAMPLE EVENTS %g%%", event_sample_pct)
          : "";
  for (int q = 0; q < num_queries; ++q) {
    const std::string text =
        StrFormat(templates[q % 4], sample_clause.c_str());
    Result<SubmittedQuery> s = system.Submit(text, [](const ResultRow&) {});
    if (!s.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   s.status().ToString().c_str());
      std::exit(1);
    }
  }

  system.RunUntil(kRun + kMicrosPerSecond);
  system.Drain();

  RunResult result;
  const OverheadReport report = system.ServiceOverhead("BidServers");
  result.overhead_pct = report.scrub_fraction * 100.0;
  uint64_t logged = 0;
  for (const HostId host : system.platform().bid_servers()) {
    logged += system.agent(host)->total_events_logged();
  }
  result.events_per_sec =
      static_cast<double>(logged) /
      (static_cast<double>(kRun) / kMicrosPerSecond);
  result.shipped = system.transport().bytes_sent(
      TrafficCategory::kScrubEvents);
  return result;
}

}  // namespace

int main() {
  std::printf("E7: BidServer CPU overhead vs concurrent queries "
              "(1000 req/s fixed)\n");
  std::printf("paper claim: max CPU overhead ~2.5%% on application hosts\n\n");
  std::printf("%-10s %-16s %-14s %-18s\n", "queries", "overhead (%)",
              "bid events/s", "bytes to central");
  double max_overhead = 0;
  for (const int q : {0, 1, 2, 4, 8, 16, 32}) {
    const RunResult r = RunWithQueries(q, 100.0);
    max_overhead = std::max(max_overhead, r.overhead_pct);
    std::printf("%-10d %-16.3f %-14.0f %-18llu\n", q, r.overhead_pct,
                r.events_per_sec,
                static_cast<unsigned long long>(r.shipped));
  }

  std::printf("\nE7b: sampling recovers headroom at 32 concurrent queries\n");
  std::printf("%-18s %-16s %-18s\n", "event sample (%)", "overhead (%)",
              "bytes to central");
  for (const double pct : {100.0, 50.0, 25.0, 10.0, 1.0}) {
    const RunResult r = RunWithQueries(32, pct);
    std::printf("%-18g %-16.3f %-18llu\n", pct, r.overhead_pct,
                static_cast<unsigned long long>(r.shipped));
  }
  std::printf("\nmax observed overhead: %.3f%% (paper: <= ~2.5%%)\n",
              max_overhead);
  return 0;
}
