// E11 — Scrub vs the full-logging baseline (paper Sections 1, 8.1, 8.4).
//
// Identical traffic, two strategies for answering the spam query (E1's
// GROUP BY user COUNT(*)):
//
//  * Scrub: the query is installed up front; hosts ship only the selected,
//    projected events; the answer streams out as windows close.
//  * Logging: queries are not known a priori, so hosts serialize and ship
//    EVERY event of EVERY type to a central warehouse; the answer comes
//    from a batch job that can only start once the data has arrived.
//
// Reported: host CPU spent on the troubleshooting machinery, bytes moved,
// and time-to-answer. The paper's qualitative claim — logging loses on all
// three, by orders of magnitude on data volume — should reproduce.

#include <cstdio>

#include "src/baseline/logging_baseline.h"
#include "src/scrub/scrub_system.h"

using namespace scrub;

namespace {

constexpr TimeMicros kTrace = 30 * kMicrosPerSecond;

struct StrategyCost {
  double host_cpu_ms = 0;      // troubleshooting CPU on app hosts
  uint64_t bytes_moved = 0;    // troubleshooting bytes on the network
  double answer_at_s = 0;      // when the (final) answer exists
  uint64_t rows = 0;
};

void ScheduleTraffic(ScrubSystem* system) {
  PoissonLoadConfig load;
  load.requests_per_second = 800;
  load.duration = kTrace;
  load.user_population = 20000;
  system->workload().SchedulePoissonLoad(load);
}

int64_t TotalScrubNs(ScrubSystem& system,
                     const std::vector<HostId>& hosts) {
  int64_t total = 0;
  for (const HostId h : hosts) {
    total += system.registry().meter(h).scrub_ns();
  }
  return total;
}

StrategyCost RunScrub() {
  SystemConfig config;
  config.seed = 321;
  config.platform.seed = 321;
  ScrubSystem system(config);
  ScheduleTraffic(&system);

  StrategyCost cost;
  TimeMicros last_row_at = 0;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT bid.user_id, COUNT(*) FROM bid @[SERVICE IN BidServers] "
      "GROUP BY bid.user_id WINDOW 10 s DURATION 30 s;",
      [&](const ResultRow& /*row*/) {
        ++cost.rows;
        last_row_at = system.Now();
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    std::exit(1);
  }
  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  std::vector<HostId> all_hosts;
  for (size_t i = 0; i < system.registry().size(); ++i) {
    if (system.registry().Get(static_cast<HostId>(i)).monitorable) {
      all_hosts.push_back(static_cast<HostId>(i));
    }
  }
  cost.host_cpu_ms = static_cast<double>(TotalScrubNs(system, all_hosts)) / 1e6;
  cost.bytes_moved =
      system.transport().bytes_sent(TrafficCategory::kScrubEvents) +
      system.transport().bytes_sent(TrafficCategory::kScrubControl) +
      system.transport().bytes_sent(TrafficCategory::kScrubResults);
  cost.answer_at_s =
      static_cast<double>(last_row_at) / kMicrosPerSecond;
  return cost;
}

StrategyCost RunLogging() {
  // Same platform, but the event logger is the log shipper and there is no
  // Scrub anywhere.
  SystemConfig config;
  config.seed = 321;
  config.platform.seed = 321;
  config.scrub_enabled = false;
  ScrubSystem system(config);
  const HostId warehouse = system.registry().AddHost(
      "warehouse-00", "Warehouse", "DC2", /*monitorable=*/false);
  LoggingPipeline pipeline(&system.scheduler(), &system.transport(),
                           &system.registry(), &system.schemas(), warehouse);
  system.platform().SetEventLogger(pipeline.Logger());
  ScheduleTraffic(&system);

  // Ship logs on the same cadence Scrub flushes.
  for (TimeMicros t = kMicrosPerSecond / 2; t <= kTrace + 2 * kMicrosPerSecond;
       t += kMicrosPerSecond / 2) {
    system.scheduler().ScheduleAt(t, [&pipeline] { pipeline.PumpFlushes(); });
  }
  system.RunUntil(kTrace + 3 * kMicrosPerSecond);

  StrategyCost cost;
  Result<LoggingPipeline::BatchAnswer> answer = pipeline.RunQuery(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 10 s;");
  if (!answer.ok()) {
    std::fprintf(stderr, "batch query failed: %s\n",
                 answer.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<HostId> all_hosts;
  for (size_t i = 0; i < system.registry().size(); ++i) {
    if (system.registry().Get(static_cast<HostId>(i)).monitorable) {
      all_hosts.push_back(static_cast<HostId>(i));
    }
  }
  cost.host_cpu_ms = static_cast<double>(TotalScrubNs(system, all_hosts)) / 1e6;
  cost.bytes_moved =
      system.transport().bytes_sent(TrafficCategory::kBaselineLog);
  cost.answer_at_s = static_cast<double>(answer->answer_at) / kMicrosPerSecond;
  cost.rows = answer->rows.size();
  return cost;
}

}  // namespace

int main() {
  std::printf("E11: Scrub vs full logging on the spam query "
              "(30 s trace, identical traffic)\n\n");
  const StrategyCost scrub = RunScrub();
  const StrategyCost logging = RunLogging();

  std::printf("%-26s %-14s %-18s %-16s %-10s\n", "strategy", "host CPU (ms)",
              "bytes moved", "answer ready (s)", "rows");
  auto row = [](const char* name, const StrategyCost& c) {
    std::printf("%-26s %-14.1f %-18llu %-16.2f %-10llu\n", name,
                c.host_cpu_ms, static_cast<unsigned long long>(c.bytes_moved),
                c.answer_at_s, static_cast<unsigned long long>(c.rows));
  };
  row("scrub (on-demand)", scrub);
  row("full logging + batch", logging);

  std::printf("\npaper shape checks:\n");
  std::printf("  bytes ratio (logging/scrub): %.1fx (expect >> 1: logging "
              "ships every event of every type)\n",
              static_cast<double>(logging.bytes_moved) /
                  static_cast<double>(scrub.bytes_moved));
  std::printf("  host CPU ratio (logging/scrub): %.1fx\n",
              logging.host_cpu_ms / scrub.host_cpu_ms);
  std::printf("  answer latency: scrub streams results during the trace; "
              "the batch answer exists %.2f s after the incident began\n",
              logging.answer_at_s);
  const bool matches = logging.bytes_moved > 10 * scrub.bytes_moved &&
                       logging.host_cpu_ms > scrub.host_cpu_ms;
  std::printf("  => %s\n", matches ? "matches the paper's argument"
                                   : "does NOT match");
  return matches ? 0 : 1;
}
