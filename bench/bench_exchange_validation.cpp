// E2 — Figure 12: validating a new ad exchange.
//
// Regenerates the figure's series: impressions per exchange per 10-second
// window, computed from a 10% host x 10% event sample on DC1's
// PresentationServers, with exchange D activating mid-run. Shape checks:
// D's series is ~zero before activation and comparable to the established
// exchanges after; established exchanges stay steady throughout.

#include <cstdio>
#include <map>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  SystemConfig config;
  config.seed = 8;
  config.platform.seed = 8;
  config.platform.presentation_per_dc = 5;
  ScrubSystem system(config);

  const TimeMicros kActivation = 50 * kMicrosPerSecond;
  const TimeMicros kTrace = 100 * kMicrosPerSecond;
  system.platform().exchanges()[3].active_from = kActivation;

  PoissonLoadConfig load;
  load.requests_per_second = 2000;
  load.duration = kTrace;
  load.user_population = 100000;
  system.workload().SchedulePoissonLoad(load);

  std::map<TimeMicros, std::map<int64_t, double>> series;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT impression.exchange_id, COUNT(*) FROM impression "
      "@[SERVICE IN PresentationServers AND DATACENTER = DC1] "
      "GROUP BY impression.exchange_id WINDOW 10 s DURATION 100 s "
      "SAMPLE HOSTS 10% SAMPLE EVENTS 10%;",
      [&](const ResultRow& row) {
        const double count = row.values[1].is_double()
                                 ? row.values[1].AsDoubleExact()
                                 : static_cast<double>(row.values[1].AsInt());
        series[row.window_start][row.values[0].AsInt()] = count;
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }
  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  std::printf("E2 / Figure 12: impressions per exchange per 10 s window "
              "(10%% hosts x 10%% events, scaled)\n\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "window(s)", "A", "B", "C", "D");
  double d_before = 0;
  double d_after = 0;
  double established_sum = 0;
  int established_n = 0;
  int before_n = 0;
  int after_n = 0;
  for (const auto& [start, by_exchange] : series) {
    std::printf("%-10lld", static_cast<long long>(start / kMicrosPerSecond));
    for (int64_t e = 1; e <= 4; ++e) {
      const auto it = by_exchange.find(e);
      const double v = it == by_exchange.end() ? 0.0 : it->second;
      std::printf(" %10.0f", v);
      if (e < 4) {
        established_sum += v;
        ++established_n;
      }
    }
    std::printf("\n");
    const auto it = by_exchange.find(4);
    const double d = it == by_exchange.end() ? 0.0 : it->second;
    if (start < kActivation) {
      d_before += d;
      ++before_n;
    } else {
      d_after += d;
      ++after_n;
    }
  }
  const double avg_established = established_sum / established_n;
  const double avg_d_after = after_n == 0 ? 0 : d_after / after_n;
  std::printf("\npaper shape checks:\n");
  std::printf("  D before activation: %.0f impressions/window (expect ~0)\n",
              before_n == 0 ? 0 : d_before / before_n);
  std::printf("  D after activation: %.0f vs established avg %.0f "
              "(expect comparable)\n",
              avg_d_after, avg_established);
  const bool healthy =
      d_before == 0 && avg_d_after > 0.5 * avg_established;
  std::printf("  => %s\n", healthy ? "healthy integration (matches paper)"
                                   : "integration problem");
  return healthy ? 0 : 1;
}
