// Ablation — central execution vs host-side aggregation ("pushdown").
//
// DESIGN.md Section 5 calls out "no host-side aggregation" as a core design
// decision; this harness measures the alternative the paper rejects. The
// same grouped COUNT runs two ways over identical traffic:
//
//  * Scrub: selection + projection on the hosts, events shipped raw,
//    grouping/aggregation at ScrubCentral.
//  * Pushdown: selection AND group-by AND aggregation on the hosts, only
//    per-group partials shipped.
//
// Sweeping the grouping key's cardinality (exchange_id: 4 groups;
// publisher_id: 50; user_id: one group per active user) exposes the trade:
// pushdown saves bytes when groups are few, but its host CPU is always
// higher and its host-resident state grows with cardinality — unbounded,
// input-dependent host memory being exactly what a 20 ms-SLO fleet cannot
// budget for. Results are also checked for parity (both strategies must
// compute the same totals).

#include <cstdio>
#include <map>
#include <string>

#include "src/baseline/pushdown_agent.h"
#include "src/scrub/scrub_system.h"

using namespace scrub;

namespace {

constexpr TimeMicros kTrace = 20 * kMicrosPerSecond;

struct StrategyResult {
  double host_cpu_ms = 0;
  uint64_t bytes_shipped = 0;
  size_t peak_host_state = 0;  // (window, group) entries on hosts
  uint64_t total_count = 0;    // checksum: sum of all COUNT cells
};

void ScheduleTraffic(ScrubSystem* system) {
  PoissonLoadConfig load;
  load.requests_per_second = 1500;
  load.duration = kTrace;
  load.user_population = 50000;
  system->workload().SchedulePoissonLoad(load);
}

std::string QueryFor(const std::string& key) {
  // START 1 s: query objects need a cross-DC hop to reach every host;
  // starting the span after dissemination completes gives both strategies
  // an identical measurement window (and exact result parity).
  return "SELECT bid." + key + ", COUNT(*) FROM bid "
         "@[SERVICE IN BidServers] GROUP BY bid." + key +
         " WINDOW 5 s START 1 s DURATION 15 s;";
}

StrategyResult RunScrub(const std::string& key) {
  SystemConfig config;
  config.seed = 7117;
  config.platform.seed = 7117;
  ScrubSystem system(config);
  ScheduleTraffic(&system);

  StrategyResult result;
  Result<SubmittedQuery> submitted =
      system.Submit(QueryFor(key), [&result](const ResultRow& row) {
        result.total_count += static_cast<uint64_t>(row.values[1].AsInt());
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    std::exit(1);
  }
  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  for (const HostId h : system.platform().bid_servers()) {
    result.host_cpu_ms +=
        static_cast<double>(system.registry().meter(h).scrub_ns()) / 1e6;
  }
  result.bytes_shipped =
      system.transport().bytes_sent(TrafficCategory::kScrubEvents);
  return result;
}

StrategyResult RunPushdown(const std::string& key) {
  SystemConfig config;
  config.seed = 7117;
  config.platform.seed = 7117;
  config.scrub_enabled = false;
  ScrubSystem system(config);

  // One pushdown agent per BidServer, wired as the platform's logger.
  std::map<HostId, std::unique_ptr<PushdownAgent>> agents;
  for (const HostId h : system.platform().bid_servers()) {
    agents.emplace(h, std::make_unique<PushdownAgent>(
                          h, &system.registry().meter(h)));
  }
  Result<AnalyzedQuery> aq =
      ParseAndAnalyze(QueryFor(key), system.schemas());
  if (!aq.ok()) {
    std::fprintf(stderr, "analyze failed: %s\n",
                 aq.status().ToString().c_str());
    std::exit(1);
  }
  Result<PushdownPlan> plan = BuildPushdownPlan(*aq, 1, 0);
  if (!plan.ok()) {
    std::fprintf(stderr, "pushdown plan failed: %s\n",
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  for (auto& [h, agent] : agents) {
    agent->InstallQuery(*plan);
  }
  system.platform().SetEventLogger(
      [&agents](HostId host, const Event& event) -> int64_t {
        const auto it = agents.find(host);
        return it == agents.end() ? 0 : it->second->LogEvent(event);
      });
  ScheduleTraffic(&system);

  PushdownCoordinator coordinator(*plan);
  StrategyResult result;
  // Flush on the same cadence as Scrub; ship partials over the transport so
  // bytes are accounted identically.
  const HostId central = system.central_host();
  for (TimeMicros t = kMicrosPerSecond / 2;
       t <= kTrace + 3 * kMicrosPerSecond; t += kMicrosPerSecond / 2) {
    system.scheduler().ScheduleAt(t, [&, t] {
      for (auto& [h, agent] : agents) {
        result.peak_host_state =
            std::max(result.peak_host_state, agent->peak_state_entries());
        for (PartialBatch& batch : agent->Flush(t)) {
          const size_t bytes = batch.WireSize();
          system.transport().Send(
              h, central, bytes, TrafficCategory::kScrubEvents,
              [&coordinator, b = std::move(batch)] { coordinator.Ingest(b); });
        }
      }
    });
  }
  system.RunUntil(kTrace + 4 * kMicrosPerSecond);

  for (const HostId h : system.platform().bid_servers()) {
    result.host_cpu_ms +=
        static_cast<double>(system.registry().meter(h).scrub_ns()) / 1e6;
  }
  result.bytes_shipped =
      system.transport().bytes_sent(TrafficCategory::kScrubEvents);
  for (const ResultRow& row : coordinator.Finalize()) {
    result.total_count += static_cast<uint64_t>(row.values[1].AsInt());
  }
  return result;
}

}  // namespace

int main() {
  std::printf("Ablation: central execution (Scrub) vs host-side aggregation "
              "(pushdown), grouped COUNT over the bid stream\n\n");
  std::printf("%-14s %-10s %-12s %-14s %-14s %-16s %-12s\n", "group key",
              "strategy", "host CPU ms", "bytes shipped", "peak host st.",
              "count checksum", "parity");
  bool all_parity = true;
  for (const std::string key : {"exchange_id", "publisher_id", "user_id"}) {
    const StrategyResult scrub = RunScrub(key);
    const StrategyResult pushdown = RunPushdown(key);
    const bool parity = scrub.total_count == pushdown.total_count;
    all_parity = all_parity && parity;
    std::printf("%-14s %-10s %-12.1f %-14llu %-14s %-16llu %-12s\n",
                key.c_str(), "scrub", scrub.host_cpu_ms,
                static_cast<unsigned long long>(scrub.bytes_shipped), "0",
                static_cast<unsigned long long>(scrub.total_count), "");
    std::printf("%-14s %-10s %-12.1f %-14llu %-14zu %-16llu %-12s\n",
                key.c_str(), "pushdown", pushdown.host_cpu_ms,
                static_cast<unsigned long long>(pushdown.bytes_shipped),
                pushdown.peak_host_state,
                static_cast<unsigned long long>(pushdown.total_count),
                parity ? "ok" : "MISMATCH");
  }
  std::printf("\nreading: pushdown's byte savings shrink as group "
              "cardinality rises, while its host-resident state grows with "
              "the data (one entry per group per window per query) — the "
              "unpredictable host footprint Scrub's central execution "
              "avoids by design.\n");
  return all_parity ? 0 : 1;
}
