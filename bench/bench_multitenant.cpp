// Multi-tenant admission experiment: hundreds of query submissions against
// one simulated platform, with the predicted-cost admission check
// (ServerConfig::central_cpu_budget_ns_per_sec) standing between a runaway
// tenant and the central node.
//
// The flow mirrors production: a probe run observes real traffic, calibrates
// the lint cost model's central unit costs from the operator-metrics plane
// (ScrubSystem::CalibrateLintCosts), and the calibrated model then both
// sizes the budget and prices every submission. The measured run submits
// kSubmissions queries round-robin over three templates (grouped scan,
// join, 10%-sampled count) with max_active_queries raised well past the
// default, so the cost budget — not the count cap — is the binding
// constraint; the budget is sized so roughly a third of the stream admits
// and the rest is rejected with kResourceExhausted.
//
// Reported: admission accounting (admitted / rejected_cost /
// rejected_limit, which must sum to queries_submitted), the calibrated unit
// costs, and central ingest throughput across all admitted queries (thread
// CPU clock, best of 3). tools/bench_compare.py gates the accounting
// identity, that both admission outcomes actually occurred, and the
// events/sec figure against the committed baseline.
//
// Usage: bench_multitenant [submissions] > multitenant.json  (default 240)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/common/worker_pool.h"
#include "src/lint/lint.h"
#include "src/query/analyzer.h"
#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

constexpr TimeMicros kLoadDuration = 4 * kMicrosPerSecond;
constexpr double kRequestsPerSecond = 300.0;

// Query templates, heavy to cheap: the grouped scan and the join are
// full-rate, the sampled count ships 10% of its source. DURATION spans the
// whole load so admitted predictions stay charged for the run.
const char* const kTemplates[] = {
    "SELECT bid.user_id, COUNT(*), SUM(bid.bid_price) FROM bid "
    "GROUP BY bid.user_id WINDOW 1 s DURATION 4 s;",
    "SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
    "GROUP BY impression.line_item_id WINDOW 1 s DURATION 4 s;",
    "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 4 s SAMPLE EVENTS 10%;",
};
constexpr size_t kTemplateCount = sizeof(kTemplates) / sizeof(kTemplates[0]);

SystemConfig BaseConfig() {
  SystemConfig config;
  config.seed = 7;
  config.platform.seed = 7;
  config.platform.bidservers_per_dc = 3;
  config.platform.adservers_per_dc = 1;
  config.platform.presentation_per_dc = 1;
  config.server.max_active_queries = 512;
  return config;
}

void ScheduleLoad(ScrubSystem& system) {
  PoissonLoadConfig load;
  load.requests_per_second = kRequestsPerSecond;
  load.duration = kLoadDuration;
  system.workload().SchedulePoissonLoad(load);
}

struct RunResult {
  size_t submitted = 0;
  size_t admitted = 0;
  size_t rejected_cost = 0;
  size_t rejected_limit = 0;
  uint64_t peak_admitted_cost_ns = 0;  // live sum right after submission
  uint64_t events_ingested = 0;        // per-query central ingest, summed
  uint64_t rows = 0;
  double cpu_seconds = 0.0;
  double wall_ms = 0.0;
};

RunResult RunOnce(const SystemConfig& config, const CostModel& calibrated,
                  size_t submissions) {
  ScrubSystem system(config);
  system.server().SetLintCosts(calibrated);
  ScheduleLoad(system);

  RunResult r;
  r.submitted = submissions;
  std::vector<QueryId> admitted_ids;
  const auto wall0 = std::chrono::steady_clock::now();
  const uint64_t cpu0 = WorkerPool::ThreadCpuNs();
  for (size_t i = 0; i < submissions; ++i) {
    const uint64_t cost_rejects_before =
        system.server().queries_rejected_cost();
    auto submitted = system.Submit(kTemplates[i % kTemplateCount],
                                   [&r](const ResultRow&) { ++r.rows; });
    if (submitted.ok()) {
      ++r.admitted;
      admitted_ids.push_back(submitted->id);
    } else if (submitted.status().code() != StatusCode::kResourceExhausted) {
      std::fprintf(stderr, "unexpected submit failure: %s\n",
                   submitted.status().ToString().c_str());
      std::exit(1);
    } else if (system.server().queries_rejected_cost() >
               cost_rejects_before) {
      ++r.rejected_cost;
    } else {
      ++r.rejected_limit;
    }
  }
  r.peak_admitted_cost_ns = system.server().admitted_cost_ns_per_sec();
  system.RunUntil(kLoadDuration + kMicrosPerSecond);
  system.Drain();
  r.cpu_seconds =
      static_cast<double>(WorkerPool::ThreadCpuNs() - cpu0) / 1e9;
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall0)
                  .count();
  for (const QueryId id : admitted_ids) {
    if (const CentralQueryStats* stats = system.central().StatsFor(id)) {
      r.events_ingested += stats->events_ingested;
    }
  }
  if (r.rows == 0 || r.events_ingested == 0) {
    std::abort();  // the admitted queries must actually compute something
  }
  return r;
}

int Main(int argc, char** argv) {
  const size_t submissions =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 240;

  // Probe run: live traffic with one representative query, then calibrate
  // the lint cost model from the observed operator metrics. The calibrated
  // model prices admission in the measured run AND sizes its budget, so the
  // admit/reject split is stable under cost-model drift.
  SystemConfig config = BaseConfig();
  CostModel calibrated;
  uint64_t per_round_cost = 0;
  {
    ScrubSystem probe(config);
    ScheduleLoad(probe);
    auto seed = probe.Submit(kTemplates[0], [](const ResultRow&) {});
    if (!seed.ok()) {
      std::fprintf(stderr, "probe submit failed: %s\n",
                   seed.status().ToString().c_str());
      std::abort();
    }
    probe.RunUntil(2 * kMicrosPerSecond);
    calibrated = probe.CalibrateLintCosts();
    const LintOptions lint = probe.LintConfig();
    for (const char* text : kTemplates) {
      Result<AnalyzedQuery> aq =
          ParseAndAnalyze(text, probe.schemas(), config.server.analyzer);
      if (!aq.ok()) {
        std::fprintf(stderr, "template failed analysis: %s\n",
                     aq.status().ToString().c_str());
        std::abort();
      }
      per_round_cost += PredictCentralCostNsPerSec(*aq, lint);
    }
    if (per_round_cost == 0) {
      std::abort();  // a zero-cost prediction would disable the experiment
    }
  }

  // Budget: ~a third of the submission stream fits (the stream cycles
  // through the templates, so budget in units of whole rounds).
  const size_t rounds = submissions / kTemplateCount;
  config.server.central_cpu_budget_ns_per_sec =
      per_round_cost * (rounds / 3) + per_round_cost / 2;

  RunResult best = RunOnce(config, calibrated, submissions);
  for (int rep = 1; rep < 3; ++rep) {
    RunResult again = RunOnce(config, calibrated, submissions);
    // The run is deterministic, so admission accounting must not wobble
    // across repetitions — only the clock readings may.
    if (again.admitted != best.admitted ||
        again.rejected_cost != best.rejected_cost ||
        again.rejected_limit != best.rejected_limit ||
        again.rows != best.rows) {
      std::fprintf(stderr, "multitenant reps diverged\n");
      std::exit(1);
    }
    if (again.cpu_seconds < best.cpu_seconds) {
      best = again;
    }
  }

  std::string out = "{\n";
  out += "  \"bench\": \"multitenant\",\n";
  out +=
      "  \"scenario\": \"round-robin grouped scan / join / 10%-sampled "
      "count submissions; calibrated predicted-cost admission with the "
      "count cap raised out of the way\",\n";
  out += StrFormat("  \"queries_submitted\": %zu,\n", best.submitted);
  out += StrFormat("  \"admitted\": %zu,\n", best.admitted);
  out += StrFormat("  \"rejected_cost\": %zu,\n", best.rejected_cost);
  out += StrFormat("  \"rejected_limit\": %zu,\n", best.rejected_limit);
  out += StrFormat("  \"max_active_queries\": %zu,\n",
                   config.server.max_active_queries);
  out += StrFormat(
      "  \"budget_ns_per_sec\": %llu,\n",
      static_cast<unsigned long long>(
          config.server.central_cpu_budget_ns_per_sec));
  out += StrFormat(
      "  \"peak_admitted_cost_ns_per_sec\": %llu,\n",
      static_cast<unsigned long long>(best.peak_admitted_cost_ns));
  out += StrFormat(
      "  \"calibrated_costs\": {\"central_ingest_ns\": %lld, "
      "\"central_join_probe_ns\": %lld, \"central_group_update_ns\": "
      "%lld},\n",
      static_cast<long long>(calibrated.central_ingest_ns),
      static_cast<long long>(calibrated.central_join_probe_ns),
      static_cast<long long>(calibrated.central_group_update_ns));
  out += StrFormat("  \"events_ingested\": %llu,\n",
                   static_cast<unsigned long long>(best.events_ingested));
  out += StrFormat("  \"result_rows\": %llu,\n",
                   static_cast<unsigned long long>(best.rows));
  out += StrFormat("  \"cpu_seconds\": %.6f,\n", best.cpu_seconds);
  out += StrFormat("  \"events_per_sec\": %.0f,\n",
                   static_cast<double>(best.events_ingested) /
                       best.cpu_seconds);
  out += StrFormat("  \"wall_ms\": %.1f\n", best.wall_ms);
  out += "}\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace scrub

int main(int argc, char** argv) { return scrub::Main(argc, argv); }
