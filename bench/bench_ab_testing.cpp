// E3 — Figures 15a/15b: A/B testing of ad targeting models.
//
// Regenerates both panels: per window, CPM (15a) and CTR (15b) for model A
// vs model B, via the Figure-13/14 query templates. Shape checks: B's CTR
// exceeds A's while the CPMs track each other closely — the paper's
// conclusion that the incumbent B targets better at equal cost.

#include <cstdio>
#include <map>
#include <string>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  SystemConfig config;
  config.seed = 77;
  config.platform.seed = 77;
  config.platform.adservers_per_dc = 2;
  config.platform.ctr_model_a = 0.010;
  config.platform.ctr_model_b = 0.016;
  ScrubSystem system(config);
  for (size_t i = 0; i < system.platform().ad_servers().size(); ++i) {
    system.platform().SetAdServerModel(system.platform().ad_servers()[i],
                                       i % 2 == 0 ? "modelA" : "modelB");
  }

  const TimeMicros kTrace = 80 * kMicrosPerSecond;
  PoissonLoadConfig load;
  load.requests_per_second = 2000;
  load.duration = kTrace;
  load.user_population = 80000;
  system.workload().SchedulePoissonLoad(load);

  struct WindowMetrics {
    double cpm[2] = {0, 0};
    uint64_t impressions[2] = {0, 0};
    uint64_t clicks[2] = {0, 0};
  };
  std::map<TimeMicros, WindowMetrics> windows;
  for (int m = 0; m < 2; ++m) {
    const std::string model = m == 0 ? "modelA" : "modelB";
    auto check = [](const Result<SubmittedQuery>& s) {
      if (!s.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     s.status().ToString().c_str());
        std::exit(1);
      }
    };
    check(system.Submit(
        "SELECT 1000 * AVG(impression.cost) FROM impression "
        "WHERE impression.model = '" + model + "' "
        "WINDOW 20 s DURATION 80 s;",
        [&windows, m](const ResultRow& row) {
          if (row.values[0].is_double()) {
            windows[row.window_start].cpm[m] = row.values[0].AsDoubleExact();
          }
        }));
    check(system.Submit(
        "SELECT COUNT(*) FROM impression "
        "WHERE impression.model = '" + model + "' "
        "WINDOW 20 s DURATION 80 s;",
        [&windows, m](const ResultRow& row) {
          windows[row.window_start].impressions[m] =
              static_cast<uint64_t>(row.values[0].AsInt());
        }));
    check(system.Submit(
        "SELECT COUNT(*) FROM click WHERE click.model = '" + model + "' "
        "WINDOW 20 s DURATION 80 s;",
        [&windows, m](const ResultRow& row) {
          windows[row.window_start].clicks[m] =
              static_cast<uint64_t>(row.values[0].AsInt());
        }));
  }

  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  std::printf("E3 / Figures 15a+15b: CPM and CTR per model per 20 s window\n\n");
  std::printf("%-10s %10s %10s %12s %12s\n", "window(s)", "CPM A", "CPM B",
              "CTR A", "CTR B");
  double ctr_sum[2] = {0, 0};
  double cpm_sum[2] = {0, 0};
  int n = 0;
  for (const auto& [start, wm] : windows) {
    const double ctr_a =
        wm.impressions[0] == 0
            ? 0
            : static_cast<double>(wm.clicks[0]) / wm.impressions[0];
    const double ctr_b =
        wm.impressions[1] == 0
            ? 0
            : static_cast<double>(wm.clicks[1]) / wm.impressions[1];
    std::printf("%-10lld %10.3f %10.3f %12.4f %12.4f\n",
                static_cast<long long>(start / kMicrosPerSecond), wm.cpm[0],
                wm.cpm[1], ctr_a, ctr_b);
    cpm_sum[0] += wm.cpm[0];
    cpm_sum[1] += wm.cpm[1];
    ctr_sum[0] += ctr_a;
    ctr_sum[1] += ctr_b;
    ++n;
  }
  const double cpm_ratio = cpm_sum[1] / cpm_sum[0];
  const double ctr_ratio = ctr_sum[1] / ctr_sum[0];
  std::printf("\npaper shape checks:\n");
  std::printf("  CPM(B)/CPM(A) = %.3f (expect ~1: equal cost)\n", cpm_ratio);
  std::printf("  CTR(B)/CTR(A) = %.3f (expect > 1: B targets better)\n",
              ctr_ratio);
  const bool matches = cpm_ratio > 0.9 && cpm_ratio < 1.1 && ctr_ratio > 1.2;
  std::printf("  => %s\n", matches ? "matches the paper's Figure-15 outcome"
                                   : "does NOT match");
  return matches ? 0 : 1;
}
