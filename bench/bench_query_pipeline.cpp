// E13 — query pipeline costs (paper Section 4/5).
//
// Microbenchmarks of the control path (parse -> analyze -> plan, paid once
// per query at the server) and, crucially, the per-event host path: the
// agent's log() under 0..32 installed queries, with and without event
// sampling. The per-event numbers are the mechanism behind E7's host
// overhead curve.

#include <benchmark/benchmark.h>

#include "src/agent/agent.h"
#include "src/bidsim/schemas.h"
#include "src/plan/plan.h"
#include "src/query/analyzer.h"
#include "src/event/wire.h"
#include "src/query/parser.h"

namespace scrub {
namespace {

const char kSpamQuery[] =
    "SELECT bid.user_id, COUNT(*) FROM bid "
    "@[SERVICE IN BidServers AND SERVER = host1] "
    "GROUP BY bid.user_id WINDOW 10 s DURATION 20 m;";

const char kJoinQuery[] =
    "SELECT impression.line_item_id, COUNT(*), AVG(auction.winning_price) "
    "FROM auction, impression WHERE auction.line_item_ids CONTAINS 7777 "
    "GROUP BY impression.line_item_id WINDOW 1 h DURATION 1 h;";

SchemaRegistry* BidsimRegistry() {
  static SchemaRegistry* registry = [] {
    auto* r = new SchemaRegistry();
    (void)RegisterBidsimSchemas(r);
    return r;
  }();
  return registry;
}

void BM_Parse(benchmark::State& state) {
  const char* text = state.range(0) == 0 ? kSpamQuery : kJoinQuery;
  for (auto _ : state) {
    Result<Query> q = ParseQuery(text);
    benchmark::DoNotOptimize(q.ok());
  }
  state.SetLabel(state.range(0) == 0 ? "spam query" : "join query");
}
BENCHMARK(BM_Parse)->Arg(0)->Arg(1);

void BM_ParseAnalyzePlan(benchmark::State& state) {
  SchemaRegistry* registry = BidsimRegistry();
  AnalyzerOptions options;
  options.max_duration_micros = 24 * kMicrosPerHour;
  const char* text = state.range(0) == 0 ? kSpamQuery : kJoinQuery;
  for (auto _ : state) {
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, *registry, options);
    Result<QueryPlan> plan = PlanQuery(*aq, 1, 0);
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetLabel(state.range(0) == 0 ? "spam query" : "join query");
}
BENCHMARK(BM_ParseAnalyzePlan)->Arg(0)->Arg(1);

Event MakeBidEvent(const SchemaRegistry& registry, RequestId rid,
                   TimeMicros ts) {
  Event e(*registry.Get(kBidEvent), rid, ts);
  e.SetField(0, Value(int64_t{2}));            // exchange_id
  e.SetField(1, Value("san_jose"));            // city
  e.SetField(2, Value("US"));                  // country
  e.SetField(3, Value(2.25));                  // bid_price
  e.SetField(4, Value(int64_t{7}));            // campaign_id
  e.SetField(5, Value(int64_t{1007}));         // line_item_id
  e.SetField(6, Value(static_cast<int64_t>(rid % 10000)));  // user_id
  e.SetField(7, Value(int64_t{13}));           // publisher_id
  return e;
}

// The hot path: log() with N installed queries.
void BM_AgentLogEvent(benchmark::State& state) {
  SchemaRegistry* registry = BidsimRegistry();
  CostMeter meter;
  AgentConfig config;
  config.staging_capacity = 1 << 16;
  ScrubAgent agent(0, &meter, config, 1);

  AnalyzerOptions options;
  options.max_duration_micros = 24 * kMicrosPerHour;
  const int queries = static_cast<int>(state.range(0));
  const bool sampled = state.range(1) != 0;
  for (int q = 0; q < queries; ++q) {
    std::string text =
        "SELECT bid.user_id, COUNT(*) FROM bid WHERE bid.bid_price > 1.0 "
        "GROUP BY bid.user_id WINDOW 10 s DURATION 10 h";
    if (sampled) {
      text += " SAMPLE EVENTS 10%";
    }
    text += ";";
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, *registry, options);
    Result<QueryPlan> plan =
        PlanQuery(*aq, static_cast<QueryId>(q + 1), 0);
    agent.InstallQuery(plan->host);
  }

  RequestId rid = 1;
  for (auto _ : state) {
    const Event e = MakeBidEvent(*registry, rid, static_cast<TimeMicros>(
                                                     100 + rid % 1000));
    ++rid;
    benchmark::DoNotOptimize(agent.LogEvent(e));
    // Keep staging from saturating (drops would change the cost profile).
    if (rid % 16384 == 0) {
      state.PauseTiming();
      agent.Flush(static_cast<TimeMicros>(rid % 1000));
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(std::to_string(queries) +
                 (sampled ? " queries, 10% sampling" : " queries"));
}
BENCHMARK(BM_AgentLogEvent)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({16, 0})
    ->Args({32, 0})
    ->Args({32, 1});

void BM_PredicateEval(benchmark::State& state) {
  SchemaRegistry* registry = BidsimRegistry();
  AnalyzerOptions options;
  options.max_duration_micros = 24 * kMicrosPerHour;
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid WHERE bid.bid_price > 1.5 AND "
      "bid.country IN ('US', 'CA', 'GB') AND bid.exchange_id != 3;",
      *registry, options);
  Result<CompiledExpr> pred =
      CompileExpr(*aq->query.where, aq->query.sources, aq->schemas);
  const Event e = MakeBidEvent(*registry, 42, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPredicateSingle(*pred, e));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PredicateEval);

void BM_EventEncodeDecode(benchmark::State& state) {
  SchemaRegistry* registry = BidsimRegistry();
  std::vector<Event> events;
  for (RequestId r = 0; r < 256; ++r) {
    events.push_back(MakeBidEvent(*registry, r, 100));
  }
  for (auto _ : state) {
    const std::string payload = EncodeBatch(events);
    Result<std::vector<Event>> back = DecodeBatch(*registry, payload);
    benchmark::DoNotOptimize(back.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_EventEncodeDecode);

}  // namespace
}  // namespace scrub
