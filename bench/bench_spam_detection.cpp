// E1 — Figure 10: spam-bot detection.
//
// Regenerates the figure's series: for each 10-second window, the
// distribution of bid-requests-per-user (dot sizes), with the two injected
// bots standing out at counts no human reaches. Reported shape checks:
//  * roughly half the active users in a window issue a single bid request;
//  * per-user counts fall off steeply (multiple ads per page explain 2-4);
//  * the bots sit one to two orders of magnitude above the human tail.

#include <cstdio>
#include <map>
#include <vector>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  SystemConfig config;
  config.seed = 2018;
  config.platform.seed = 2018;
  ScrubSystem system(config);

  const TimeMicros kTrace = 3 * kMicrosPerMinute;
  HumanTrafficConfig humans;
  humans.users = 6000;
  humans.horizon = kTrace;
  system.workload().ScheduleHumanTraffic(humans);

  const HostId watched = system.platform().bid_servers()[0];
  std::vector<UserId> bot_users;
  for (UserId u = 900001; bot_users.size() < 2; ++u) {
    if (system.platform().BidServerForUser(u) == watched) {
      bot_users.push_back(u);
    }
  }
  BotConfig bot1;
  bot1.user_id = bot_users[0];
  bot1.requests_per_batch = 150;
  bot1.batch_interval = 12 * kMicrosPerSecond;
  bot1.stop = kTrace;
  system.workload().ScheduleBot(bot1);
  BotConfig bot2;
  bot2.user_id = bot_users[1];
  bot2.requests_per_batch = 70;
  bot2.batch_interval = 25 * kMicrosPerSecond;
  bot2.stop = kTrace;
  system.workload().ScheduleBot(bot2);

  const std::string query =
      "SELECT bid.user_id, COUNT(*) FROM bid "
      "@[SERVICE IN BidServers AND SERVER = '" +
      system.registry().Get(watched).name +
      "'] GROUP BY bid.user_id WINDOW 10 s DURATION 3 m;";

  std::map<uint64_t, uint64_t> histogram;  // count -> user*window cells
  std::map<int64_t, uint64_t> user_peak;
  uint64_t total_cells = 0;
  Result<SubmittedQuery> submitted =
      system.Submit(query, [&](const ResultRow& row) {
        const uint64_t n = static_cast<uint64_t>(row.values[1].AsInt());
        ++histogram[n];
        ++total_cells;
        uint64_t& peak = user_peak[row.values[0].AsInt()];
        peak = std::max(peak, n);
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }
  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  std::printf("E1 / Figure 10: bids-per-user-per-10s-window distribution on "
              "one BidServer\n\n");
  std::printf("%-22s %-18s %s\n", "bids per window", "user-window cells",
              "share");
  uint64_t humans_at_1 = histogram.count(1) ? histogram[1] : 0;
  for (const auto& [count, cells] : histogram) {
    std::printf("%-22llu %-18llu %5.1f%%\n",
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(cells),
                100.0 * static_cast<double>(cells) /
                    static_cast<double>(total_cells));
  }

  size_t bots_found = 0;
  for (const auto& [user, peak] : user_peak) {
    if (peak > 30) {
      ++bots_found;
    }
  }
  std::printf("\npaper shape checks:\n");
  std::printf("  single-bid share: %.0f%% of cells (paper: ~half)\n",
              100.0 * static_cast<double>(humans_at_1) /
                  static_cast<double>(total_cells));
  std::printf("  bots detected at >30 bids/window: %zu (injected: 2)\n",
              bots_found);
  return bots_found == 2 ? 0 : 1;
}
