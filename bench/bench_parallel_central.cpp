// Parallel central execution sweep: worker counts {1, 2, 4, 8} x shard
// counts {4, 8} over a fixed GROUP BY workload, emitted as machine-readable
// JSON (BENCH_scrub.json) for tools/bench_compare.py to gate regressions.
//
// Timing model. CI containers for this repo frequently pin a single core,
// where wall-clock parallel speedup is physically impossible. Following the
// precedent of BM_ShardedScaleOut (which reports the max per-shard CPU share
// as "the scale-out factor parallel hardware would realize"), the WorkerPool
// self-meters every ParallelFor region with CLOCK_THREAD_CPUTIME_ID: the
// region's critical path is the maximum per-worker busy time, and the
// modeled elapsed time of a run is
//
//     coordinator thread CPU  +  sum over regions of max worker busy
//
// i.e. the serial spine plus the parallel sections at their critical-path
// length. On a single core this equals what a multi-core box would see up
// to scheduler noise; on a real multi-core box it agrees with wall clock.
// Window-close latency is modeled the same way per OnTick call.
//
// Usage: bench_parallel_central [events_per_batch] > BENCH_scrub.json

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/central/sharded_central.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/worker_pool.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

constexpr int kHosts = 8;
constexpr int kTicks = 50;
constexpr TimeMicros kTickMicros = 500 * kMicrosPerMilli;

struct RunResult {
  size_t shards = 0;
  size_t workers = 0;
  uint64_t events = 0;
  double modeled_seconds = 0.0;
  double serial_seconds = 0.0;    // coordinator-thread CPU (the Amdahl spine)
  double critical_seconds = 0.0;  // sum of per-region max worker busy
  double busy_seconds = 0.0;      // total worker busy (all workers)
  double events_per_sec = 0.0;
  double p50_close_us = 0.0;
  double p99_close_us = 0.0;
  double speedup_vs_1w = 1.0;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

// Pre-generates the full batch schedule once; every (shards, workers)
// configuration ingests the identical byte stream.
struct Workload {
  SchemaRegistry registry;
  SchemaPtr schema;
  CentralPlan plan;
  std::vector<std::vector<EventBatch>> per_tick;
  uint64_t total_events = 0;

  explicit Workload(size_t events_per_batch) {
    schema = *EventSchema::Builder("bid")
                  .AddField("user_id", FieldType::kLong)
                  .AddField("price", FieldType::kDouble)
                  .Build();
    if (!registry.Register(schema).ok()) {
      std::abort();
    }
    AnalyzerOptions options;
    Result<AnalyzedQuery> aq = ParseAndAnalyze(
        "SELECT bid.user_id, COUNT(*), SUM(bid.price), AVG(bid.price) "
        "FROM bid GROUP BY bid.user_id WINDOW 1 s DURATION 60 s;",
        registry, options);
    if (!aq.ok()) {
      std::abort();
    }
    Result<QueryPlan> qp = PlanQuery(*aq, 1, 0);
    if (!qp.ok()) {
      std::abort();
    }
    plan = qp->central;
    plan.hosts_targeted = kHosts;
    plan.hosts_sampled = 0;  // hand-installed: no completeness accounting

    Rng rng(1234);
    uint64_t seq = 1;
    per_tick.resize(kTicks);
    for (int tick = 0; tick < kTicks; ++tick) {
      for (int host = 0; host < kHosts; ++host) {
        std::vector<Event> events;
        events.reserve(events_per_batch);
        for (size_t i = 0; i < events_per_batch; ++i) {
          Event e(schema, rng.NextUint64(),
                  tick * kTickMicros +
                      static_cast<TimeMicros>(rng.NextBelow(
                          static_cast<uint64_t>(kTickMicros))));
          e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(64))));
          e.SetField(1, Value(rng.NextDouble() * 5));
          events.push_back(std::move(e));
        }
        EventBatch batch;
        batch.query_id = 1;
        batch.host = static_cast<HostId>(host);
        batch.seq = seq++;
        batch.event_count = events.size();
        batch.payload = EncodeBatch(events);
        per_tick[static_cast<size_t>(tick)].push_back(std::move(batch));
        total_events += events.size();
      }
    }
  }
};

RunResult RunOne(const Workload& workload, size_t shards, size_t workers) {
  CentralConfig config;
  config.allowed_lateness = 0;  // close windows promptly per tick
  ShardedCentral central(&workload.registry, shards, config, workers);
  uint64_t rows = 0;
  if (!central
           .InstallQuery(workload.plan,
                         [&rows](const ResultRow&) { ++rows; })
           .ok()) {
    std::abort();
  }

  const WorkerPool& pool = central.pool();
  std::vector<double> close_us;
  const uint64_t cpu0 = WorkerPool::ThreadCpuNs();
  const uint64_t crit0 = pool.critical_ns();
  const uint64_t busy0 = pool.busy_ns();
  for (int tick = 0; tick < kTicks; ++tick) {
    const TimeMicros now = (tick + 1) * kTickMicros;
    if (!central.IngestBatches(workload.per_tick[static_cast<size_t>(tick)],
                               now)
             .ok()) {
      std::abort();
    }
    const uint64_t tick_cpu0 = WorkerPool::ThreadCpuNs();
    const uint64_t tick_crit0 = pool.critical_ns();
    central.OnTick(now);
    const double tick_ns =
        static_cast<double>(WorkerPool::ThreadCpuNs() - tick_cpu0) +
        static_cast<double>(pool.critical_ns() - tick_crit0);
    close_us.push_back(tick_ns / 1e3);
  }
  const double serial_ns =
      static_cast<double>(WorkerPool::ThreadCpuNs() - cpu0);
  const double critical_ns = static_cast<double>(pool.critical_ns() - crit0);
  const double modeled_ns = serial_ns + critical_ns;

  RunResult r;
  r.shards = shards;
  r.workers = workers;
  r.events = workload.total_events;
  r.modeled_seconds = modeled_ns / 1e9;
  r.serial_seconds = serial_ns / 1e9;
  r.critical_seconds = critical_ns / 1e9;
  r.busy_seconds = static_cast<double>(pool.busy_ns() - busy0) / 1e9;
  r.events_per_sec =
      static_cast<double>(workload.total_events) / (modeled_ns / 1e9);
  r.p50_close_us = Percentile(close_us, 0.50);
  r.p99_close_us = Percentile(close_us, 0.99);
  if (rows == 0) {
    std::abort();  // the sweep must actually compute something
  }
  return r;
}

int Main(int argc, char** argv) {
  const size_t events_per_batch =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 512;
  Workload workload(events_per_batch);

  std::vector<RunResult> results;
  for (const size_t shards : {4u, 8u}) {
    double base_eps = 0.0;
    for (const size_t workers : {1u, 2u, 4u, 8u}) {
      // Best of three: the modeled time is CPU-clock based, but cold caches
      // and CI neighbours still add one-sided noise; min is the estimator.
      RunResult r = RunOne(workload, shards, workers);
      for (int rep = 1; rep < 3; ++rep) {
        const RunResult again = RunOne(workload, shards, workers);
        if (again.modeled_seconds < r.modeled_seconds) {
          r = again;
        }
      }
      if (workers == 1) {
        base_eps = r.events_per_sec;
      }
      r.speedup_vs_1w = base_eps > 0 ? r.events_per_sec / base_eps : 1.0;
      results.push_back(r);
    }
  }

  std::string out = "{\n";
  out += "  \"bench\": \"parallel_central\",\n";
  out += StrFormat("  \"events_per_batch\": %zu,\n", events_per_batch);
  out += StrFormat("  \"hosts\": %d,\n", kHosts);
  out += StrFormat("  \"ticks\": %d,\n", kTicks);
  out +=
      "  \"timing\": \"modeled critical-path: coordinator CPU + per-region "
      "max worker CPU (single-core safe)\",\n";
  out += "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out += StrFormat(
        "    {\"shards\": %zu, \"workers\": %zu, \"events\": %llu, "
        "\"modeled_seconds\": %.6f, \"serial_seconds\": %.6f, "
        "\"critical_seconds\": %.6f, \"busy_seconds\": %.6f, "
        "\"events_per_sec\": %.0f, "
        "\"p50_window_close_us\": %.1f, \"p99_window_close_us\": %.1f, "
        "\"speedup_vs_1w\": %.3f}%s\n",
        r.shards, r.workers, static_cast<unsigned long long>(r.events),
        r.modeled_seconds, r.serial_seconds, r.critical_seconds,
        r.busy_seconds, r.events_per_sec, r.p50_close_us, r.p99_close_us,
        r.speedup_vs_1w, i + 1 < results.size() ? "," : "");
  }
  out += "  ]\n}\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace scrub

int main(int argc, char** argv) { return scrub::Main(argc, argv); }
