// E8 — bid-request latency impact (paper Section 9).
//
// Paper claim: Scrub adds ~1% to request latency. Same traffic, three
// configurations: Scrub disabled, Scrub enabled with an idle agent (no
// queries — the instrumentation floor), and Scrub under a realistic query
// load. Request latency includes transport hops plus all processing on the
// critical path, so Scrub's log() cost shows up exactly where it does in
// production.

#include <cstdio>

#include "src/common/strings.h"
#include "src/scrub/scrub_system.h"

using namespace scrub;

namespace {

struct LatencyResult {
  double mean_us = 0;
  int64_t p50 = 0;
  int64_t p99 = 0;
};

LatencyResult Run(bool scrub_enabled, int num_queries) {
  SystemConfig config;
  config.seed = 4242;  // identical traffic across configurations
  config.platform.seed = 4242;
  config.scrub_enabled = scrub_enabled;
  ScrubSystem system(config);

  const TimeMicros kRun = 20 * kMicrosPerSecond;
  PoissonLoadConfig load;
  load.requests_per_second = 1000;
  load.duration = kRun;
  load.user_population = 50000;
  system.workload().SchedulePoissonLoad(load);

  for (int q = 0; q < num_queries; ++q) {
    const std::string text = StrFormat(
        "SELECT bid.user_id, COUNT(*) FROM bid WHERE bid.exchange_id = %d "
        "@[SERVICE IN BidServers] GROUP BY bid.user_id "
        "WINDOW 5 s DURATION 20 s;",
        (q % 4) + 1);
    Result<SubmittedQuery> s = system.Submit(text, [](const ResultRow&) {});
    if (!s.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   s.status().ToString().c_str());
      std::exit(1);
    }
  }

  system.RunUntil(kRun + kMicrosPerSecond);
  system.Drain();

  const Histogram& h = system.platform().request_latency_us();
  return LatencyResult{h.mean(), h.p50(), h.p99()};
}

}  // namespace

int main() {
  std::printf("E8: bid request latency with and without Scrub "
              "(1000 req/s, identical traffic)\n");
  std::printf("paper claim: ~1%% request latency increase\n\n");
  const LatencyResult off = Run(/*scrub_enabled=*/false, 0);
  const LatencyResult idle = Run(/*scrub_enabled=*/true, 0);
  const LatencyResult loaded = Run(/*scrub_enabled=*/true, 8);

  std::printf("%-26s %-12s %-10s %-10s %-12s\n", "configuration", "mean (us)",
              "p50 (us)", "p99 (us)", "mean delta");
  auto print_row = [&](const char* name, const LatencyResult& r) {
    std::printf("%-26s %-12.1f %-10lld %-10lld %+.3f%%\n", name, r.mean_us,
                static_cast<long long>(r.p50), static_cast<long long>(r.p99),
                100.0 * (r.mean_us - off.mean_us) / off.mean_us);
  };
  print_row("scrub off", off);
  print_row("scrub on, 0 queries", idle);
  print_row("scrub on, 8 queries", loaded);

  std::printf("\n20 ms SLO headroom: p99 with Scrub under load = %lld us\n",
              static_cast<long long>(loaded.p99));
  return 0;
}
