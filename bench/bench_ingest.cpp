// Ingest microbench: the full data plane — agent-side filter + project +
// encode, then central-side decode + fold — over the identical event stream
// through both pipelines:
//
//  * row: per-event predicate (EvalPredicateSingle), per-event projection
//    copy, EncodeBatch / DecodeBatch, per-Event fold;
//  * columnar: ColumnBatch staging, vectorized EvalPredicateBatch over a
//    selection vector, EncodeColumnBatch / DecodeColumnBatch, per-row fold
//    straight off the columns (no intermediate Event).
//
// Cases: "scan" (single-source grouped aggregate, the historical bench),
// "join" (two sources equi-joined on request id, run as row batches,
// per-source kColumnar batches, AND the staged kColumnarJoin format whose
// order bytes carry the arrival interleave), "dict" (a kept low-cardinality
// string column, gated on the wire-bytes reduction the dictionary encoding
// buys), and "filter" (the agent-flush selection step in isolation). The
// join case exercises the executor's columnar join path: the probe reads
// the request-id column directly and joined tuples fold column-direct
// through mixed slots — orphans never materialize an Event. The filter
// case pits the legacy tree-walking conjunct loop against the lowered
// expression-IR programs on a WHERE with install-time-foldable arithmetic
// and redundant bounds: the planner folds the constants and prunes the
// implied conjuncts once, so the per-event program does strictly less work
// ("speedup_vs_legacy").
//
// Both runs of a case must produce the identical result transcript
// (asserted) — the benchmark measures representation, not semantics. Timing
// uses CLOCK_THREAD_CPUTIME_ID (single-core safe, like
// bench_parallel_central); best-of-three is the estimator. Output is the
// "ingest" JSON section merged into BENCH_scrub.json by tools/bench_run.sh
// and gated by tools/bench_compare.py: the columnar pipeline must hold
// >= 1.5x the row pipeline's events/sec on the scan case. The join case
// rides under the "join" key (legacy baselines without it stay readable).
//
// Usage: bench_ingest [events_per_batch] > ingest.json

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "src/central/central.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/worker_pool.h"
#include "src/event/column_batch.h"
#include "src/event/wire.h"
#include "src/plan/expr_eval.h"
#include "src/plan/expr_ir.h"
#include "src/plan/vectorized.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

constexpr int kHosts = 4;
constexpr int kTicks = 50;
constexpr TimeMicros kTickMicros = 500 * kMicrosPerMilli;

// Pre-generated raw stream: what the hosts logged, before any Scrub-side
// work. Both pipelines start from these identical Events. Sources are
// parallel to the plan's (one for the scan case, two for the join case).
struct Workload {
  SchemaRegistry registry;
  std::vector<SchemaPtr> schemas;       // parallel to plan sources
  std::vector<HostSourcePlan> sources;  // parallel to schemas
  CentralPlan central_plan;
  // stream[tick][host][source]: the logged events.
  std::vector<std::vector<std::vector<std::vector<Event>>>> stream;
  uint64_t total_events = 0;

  void Plan(std::string_view query) {
    AnalyzerOptions options;
    Result<AnalyzedQuery> aq = ParseAndAnalyze(query, registry, options);
    if (!aq.ok()) {
      std::abort();
    }
    Result<QueryPlan> qp = PlanQuery(*aq, 1, 0);
    if (!qp.ok() || qp->host.sources.size() != schemas.size()) {
      std::abort();
    }
    sources = qp->host.sources;
    central_plan = qp->central;
    central_plan.hosts_targeted = kHosts;
    central_plan.hosts_sampled = 0;  // hand-installed: no completeness math
    stream.resize(kTicks);
    for (auto& per_host : stream) {
      per_host.resize(kHosts);
      for (auto& per_source : per_host) {
        per_source.resize(schemas.size());
      }
    }
  }
};

// Single-source grouped aggregate over a ~80%-selective predicate: the
// historical ingest bench, dominated by filter + project + fold. The spill
// case reuses it at a higher group-key cardinality so a fractional state
// budget actually bites.
Workload ScanWorkload(size_t events_per_batch, uint64_t cardinality = 64) {
  Workload w;
  w.schemas.push_back(*EventSchema::Builder("bid")
                           .AddField("user_id", FieldType::kLong)
                           .AddField("price", FieldType::kDouble)
                           .AddField("tag", FieldType::kString)
                           .Build());
  if (!w.registry.Register(w.schemas[0]).ok()) {
    std::abort();
  }
  w.Plan(
      "SELECT bid.user_id, COUNT(*), SUM(bid.price) FROM bid "
      "WHERE bid.price > 1.0 GROUP BY bid.user_id "
      "WINDOW 1 s DURATION 60 s;");

  static const char* kTags[] = {"organic", "paid", "house", "remnant"};
  Rng rng(4321);
  for (int tick = 0; tick < kTicks; ++tick) {
    for (int host = 0; host < kHosts; ++host) {
      auto& events = w.stream[static_cast<size_t>(tick)]
                             [static_cast<size_t>(host)][0];
      events.reserve(events_per_batch);
      for (size_t i = 0; i < events_per_batch; ++i) {
        Event e(w.schemas[0], rng.NextUint64(),
                tick * kTickMicros +
                    static_cast<TimeMicros>(rng.NextBelow(
                        static_cast<uint64_t>(kTickMicros))));
        e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(cardinality))));
        e.SetField(1, Value(rng.NextDouble() * 5));  // ~80% pass > 1.0
        e.SetField(2, Value(kTags[rng.NextBelow(4)]));
        events.push_back(std::move(e));
      }
      w.total_events += events.size();
    }
  }
  return w;
}

// Two-source equi-join on request id: two thirds of the bids get a matching
// impression on the same host in the same tick; the rest are join orphans —
// the rows a lazy columnar join must never materialize.
Workload JoinWorkload(size_t events_per_batch) {
  Workload w;
  w.schemas.push_back(*EventSchema::Builder("bid")
                           .AddField("campaign_id", FieldType::kLong)
                           .AddField("price", FieldType::kDouble)
                           .Build());
  w.schemas.push_back(*EventSchema::Builder("impression")
                           .AddField("line_item_id", FieldType::kLong)
                           .AddField("cost", FieldType::kDouble)
                           .Build());
  for (const SchemaPtr& schema : w.schemas) {
    if (!w.registry.Register(schema).ok()) {
      std::abort();
    }
  }
  w.Plan(
      "SELECT impression.line_item_id, COUNT(*), SUM(bid.price) "
      "FROM bid, impression GROUP BY impression.line_item_id "
      "WINDOW 1 s DURATION 60 s;");

  Rng rng(8765);
  for (int tick = 0; tick < kTicks; ++tick) {
    for (int host = 0; host < kHosts; ++host) {
      auto& per_source =
          w.stream[static_cast<size_t>(tick)][static_cast<size_t>(host)];
      per_source[0].reserve(events_per_batch);
      for (size_t i = 0; i < events_per_batch; ++i) {
        const RequestId rid = rng.NextUint64();
        const TimeMicros ts =
            tick * kTickMicros + static_cast<TimeMicros>(rng.NextBelow(
                                     static_cast<uint64_t>(kTickMicros)));
        Event bid(w.schemas[0], rid, ts);
        bid.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(16))));
        bid.SetField(1, Value(rng.NextDouble() * 5));
        per_source[0].push_back(std::move(bid));
        if (i % 3 != 0) {
          Event imp(w.schemas[1], rid, ts);
          imp.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(8))));
          imp.SetField(1, Value(rng.NextDouble()));
          per_source[1].push_back(std::move(imp));
        }
      }
      w.total_events += per_source[0].size() + per_source[1].size();
    }
  }
  return w;
}

// Low-cardinality string projection: the tag column (4 distinct ~12-byte
// values) is a group key, so it survives projection onto the wire — where
// the columnar encoder dictionary-encodes it (4-entry dict + one code byte
// per row instead of a length-prefixed string per row). The case gates the
// wire-bytes reduction vs the row pipeline and asserts the dictionary was
// actually chosen.
Workload DictWorkload(size_t events_per_batch) {
  Workload w;
  w.schemas.push_back(*EventSchema::Builder("bid")
                           .AddField("user_id", FieldType::kLong)
                           .AddField("price", FieldType::kDouble)
                           .AddField("tag", FieldType::kString)
                           .Build());
  if (!w.registry.Register(w.schemas[0]).ok()) {
    std::abort();
  }
  w.Plan(
      "SELECT bid.tag, COUNT(*), SUM(bid.price) FROM bid "
      "WHERE bid.price > 1.0 GROUP BY bid.tag "
      "WINDOW 1 s DURATION 60 s;");

  static const char* kTags[] = {"organic_search", "paid_social",
                                "house_banner", "remnant_fill"};
  Rng rng(2468);
  for (int tick = 0; tick < kTicks; ++tick) {
    for (int host = 0; host < kHosts; ++host) {
      auto& events = w.stream[static_cast<size_t>(tick)]
                             [static_cast<size_t>(host)][0];
      events.reserve(events_per_batch);
      for (size_t i = 0; i < events_per_batch; ++i) {
        Event e(w.schemas[0], rng.NextUint64(),
                tick * kTickMicros +
                    static_cast<TimeMicros>(rng.NextBelow(
                        static_cast<uint64_t>(kTickMicros))));
        e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(64))));
        e.SetField(1, Value(rng.NextDouble() * 5));  // ~80% pass > 1.0
        e.SetField(2, Value(kTags[rng.NextBelow(4)]));
        events.push_back(std::move(e));
      }
      w.total_events += events.size();
    }
  }
  return w;
}

// The agent-flush selection step with a WHERE full of install-time slack:
// `4.0 / 2.0` re-divides per event in the tree walk, and the two weaker
// price bounds are implied by `price > 2`. The IR pipeline folds the
// division and prunes the implied conjuncts at plan time, so its per-event
// filter runs two short programs instead of four tree walks.
Workload FilterWorkload(size_t events_per_batch) {
  Workload w;
  w.schemas.push_back(*EventSchema::Builder("bid")
                           .AddField("user_id", FieldType::kLong)
                           .AddField("price", FieldType::kDouble)
                           .AddField("tag", FieldType::kString)
                           .Build());
  if (!w.registry.Register(w.schemas[0]).ok()) {
    std::abort();
  }
  w.Plan(
      "SELECT bid.user_id, COUNT(*) FROM bid "
      "WHERE bid.price > 4.0 / 2.0 AND bid.price > 1.0 AND "
      "bid.price > 0.5 AND bid.tag != 'nosuch' "
      "GROUP BY bid.user_id WINDOW 1 s DURATION 60 s;");

  static const char* kTags[] = {"organic", "paid", "house", "remnant"};
  Rng rng(1357);
  for (int tick = 0; tick < kTicks; ++tick) {
    for (int host = 0; host < kHosts; ++host) {
      auto& events = w.stream[static_cast<size_t>(tick)]
                             [static_cast<size_t>(host)][0];
      events.reserve(events_per_batch);
      for (size_t i = 0; i < events_per_batch; ++i) {
        Event e(w.schemas[0], rng.NextUint64(),
                tick * kTickMicros +
                    static_cast<TimeMicros>(rng.NextBelow(
                        static_cast<uint64_t>(kTickMicros))));
        e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(64))));
        e.SetField(1, Value(rng.NextDouble() * 5));  // ~60% pass > 2.0
        e.SetField(2, Value(kTags[rng.NextBelow(4)]));
        events.push_back(std::move(e));
      }
      w.total_events += events.size();
    }
  }
  return w;
}

struct FilterResult {
  std::string pipeline;
  uint64_t events = 0;
  uint64_t matched = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
};

constexpr int kFilterPasses = 4;

// The selection step alone: no staging, encode or fold — pure predicate
// work, which is what the IR lowering set out to cheapen.
FilterResult RunFilter(const Workload& w, bool ir, bool columnar) {
  const HostSourcePlan& sp = w.sources[0];
  FilterResult r;
  r.pipeline = std::string(ir ? "ir" : "legacy") +
               (columnar ? "_columnar" : "_row");

  // Columnar batches are staged outside the timed region; both pipelines
  // would stage identically.
  std::vector<ColumnBatch> batches;
  if (columnar) {
    for (const auto& per_host : w.stream) {
      for (const auto& per_source : per_host) {
        ColumnBatch cols(w.schemas[0]);
        cols.Reserve(per_source[0].size());
        for (const Event& e : per_source[0]) {
          cols.AppendEvent(e);
        }
        batches.push_back(std::move(cols));
      }
    }
  }

  const uint64_t cpu0 = WorkerPool::ThreadCpuNs();
  for (int pass = 0; pass < kFilterPasses; ++pass) {
    r.matched = 0;
    if (!columnar) {
      for (const auto& per_host : w.stream) {
        for (const auto& per_source : per_host) {
          for (const Event& e : per_source[0]) {
            bool keep = true;
            if (!ir) {
              for (const CompiledExpr& conjunct : sp.conjuncts) {
                if (!EvalPredicateSingle(conjunct, e)) {
                  keep = false;
                  break;
                }
              }
            } else {
              keep = !sp.never_matches;
              for (const ExprProgram& program : sp.programs) {
                if (!keep) {
                  break;
                }
                if (!EvalProgramPredicateSingle(program, e)) {
                  keep = false;
                }
              }
            }
            r.matched += keep ? 1 : 0;
          }
        }
      }
    } else {
      for (const ColumnBatch& cols : batches) {
        std::vector<uint32_t> selection(cols.rows());
        std::iota(selection.begin(), selection.end(), 0u);
        if (!ir) {
          for (const CompiledExpr& conjunct : sp.conjuncts) {
            EvalPredicateBatch(conjunct, cols, &selection);
            if (selection.empty()) {
              break;
            }
          }
        } else {
          if (sp.never_matches) {
            selection.clear();
          }
          for (const ExprProgram& program : sp.programs) {
            if (selection.empty()) {
              break;
            }
            EvalProgramPredicateBatch(program, cols, &selection);
          }
        }
        r.matched += selection.size();
      }
    }
  }
  r.seconds =
      static_cast<double>(WorkerPool::ThreadCpuNs() - cpu0) / 1e9;
  r.events = w.total_events * kFilterPasses;
  r.events_per_sec = static_cast<double>(r.events) / r.seconds;
  return r;
}

FilterResult BestFilter(const Workload& w, bool ir, bool columnar) {
  FilterResult best = RunFilter(w, ir, columnar);
  for (int rep = 1; rep < 3; ++rep) {
    FilterResult again = RunFilter(w, ir, columnar);
    if (again.seconds < best.seconds) {
      best = std::move(again);
    }
  }
  return best;
}

struct RunResult {
  std::string pipeline;
  uint64_t events = 0;
  uint64_t shipped = 0;
  uint64_t payload_bytes = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  // Per-field wire encoding of the last columnar flush (EncodeColumnBatch's
  // convention: -1 dropped/all-null, 0 plain, n > 0 dict with n entries).
  std::vector<int> encodings;
  // Memory-pressure readings (spill case): the accountant's high-water mark
  // and the spill/shed counters for the bench query.
  size_t state_peak = 0;
  size_t budget = 0;
  uint64_t spilled = 0;
  uint64_t shed = 0;
  std::vector<std::string> transcript;
};

// Pipeline under test. kColumnarJoin ships ALL of a (tick, host)'s sources
// as one kColumnarJoin batch: per-source sections plus the staging order —
// exactly what the agent's per-source join staging puts on the wire.
enum class Mode { kRow, kColumnar, kColumnarJoin };

// One full pass of the stream through the chosen pipeline. The returned
// transcript is the self-check: every representation must emit the same
// rows in the same order.
RunResult RunOne(const Workload& w, Mode mode, CentralConfig config = {}) {
  config.allowed_lateness = 0;
  ScrubCentral central(&w.registry, config);
  RunResult r;
  r.pipeline = mode == Mode::kRow ? "row"
               : mode == Mode::kColumnar ? "columnar"
                                         : "join_columnar";
  auto sink = [&r](const ResultRow& row) {
    r.transcript.push_back(
        StrFormat("w%lld %s", static_cast<long long>(row.window_start),
                  row.ToString().c_str()));
  };
  if (!central.InstallQuery(w.central_plan, sink).ok()) {
    std::abort();
  }

  uint64_t seq = 1;
  const uint64_t cpu0 = WorkerPool::ThreadCpuNs();
  for (int tick = 0; tick < kTicks; ++tick) {
    const TimeMicros now = (tick + 1) * kTickMicros;
    for (int host = 0; host < kHosts; ++host) {
      if (mode == Mode::kColumnarJoin) {
        // Stage every source columnar, filter vectorized, then ship the
        // survivors as one kColumnarJoin batch whose order bytes replay the
        // row path's fold sequence (all of source 0, then source 1, ...).
        std::vector<ColumnBatch> staged;
        std::vector<std::vector<uint32_t>> selections(w.sources.size());
        for (size_t s = 0; s < w.sources.size(); ++s) {
          const auto& events = w.stream[static_cast<size_t>(tick)]
                                       [static_cast<size_t>(host)][s];
          ColumnBatch cols(w.schemas[s]);
          cols.Reserve(events.size());
          for (const Event& e : events) {
            cols.AppendEvent(e);
          }
          selections[s].resize(cols.rows());
          std::iota(selections[s].begin(), selections[s].end(), 0u);
          for (const CompiledExpr& conjunct : w.sources[s].conjuncts) {
            EvalPredicateBatch(conjunct, cols, &selections[s]);
            if (selections[s].empty()) {
              break;
            }
          }
          staged.push_back(std::move(cols));
        }
        std::vector<ColumnJoinSection> sections;
        std::vector<uint8_t> order;
        for (size_t s = 0; s < w.sources.size(); ++s) {
          if (selections[s].empty()) {
            continue;
          }
          order.insert(order.end(), selections[s].size(),
                       static_cast<uint8_t>(sections.size()));
          sections.push_back({&staged[s], selections[s].data(),
                              selections[s].size(),
                              &w.sources[s].keep_field});
        }
        if (sections.empty()) {
          continue;
        }
        EventBatch batch;
        batch.query_id = w.central_plan.query_id;
        batch.host = static_cast<HostId>(host);
        batch.seq = seq++;
        batch.format = BatchFormat::kColumnarJoin;
        batch.event_count = order.size();
        EncodeColumnJoinBatch(sections, order, &batch.payload);
        r.shipped += batch.event_count;
        r.payload_bytes += batch.WireSize();
        if (!central.IngestBatch(batch, now).ok()) {
          std::abort();
        }
        continue;
      }
      for (size_t s = 0; s < w.sources.size(); ++s) {
        const HostSourcePlan& sp = w.sources[s];
        const size_t field_count = w.schemas[s]->field_count();
        const auto& events = w.stream[static_cast<size_t>(tick)]
                                     [static_cast<size_t>(host)][s];
        EventBatch batch;
        batch.query_id = w.central_plan.query_id;
        batch.host = static_cast<HostId>(host);
        batch.seq = seq++;
        if (mode == Mode::kRow) {
          // Row data plane: per-event predicate, per-event projection copy.
          std::vector<Event> shipped;
          for (const Event& e : events) {
            bool keep = true;
            for (const CompiledExpr& conjunct : sp.conjuncts) {
              if (!EvalPredicateSingle(conjunct, e)) {
                keep = false;
                break;
              }
            }
            if (!keep) {
              continue;
            }
            Event out(e.schema(), e.request_id(), e.timestamp());
            for (size_t f = 0; f < field_count; ++f) {
              if (sp.keep_field[f]) {
                out.SetField(f, e.field(f));
              }
            }
            shipped.push_back(std::move(out));
          }
          batch.event_count = shipped.size();
          batch.payload = EncodeBatch(shipped);
        } else {
          // Columnar data plane: stage, filter vectorized, encode selection.
          ColumnBatch cols(w.schemas[s]);
          cols.Reserve(events.size());
          for (const Event& e : events) {
            cols.AppendEvent(e);
          }
          std::vector<uint32_t> selection(cols.rows());
          std::iota(selection.begin(), selection.end(), 0u);
          for (const CompiledExpr& conjunct : sp.conjuncts) {
            EvalPredicateBatch(conjunct, cols, &selection);
            if (selection.empty()) {
              break;
            }
          }
          batch.format = BatchFormat::kColumnar;
          batch.event_count = selection.size();
          EncodeColumnBatch(cols, selection.data(), selection.size(),
                            &sp.keep_field, &batch.payload, &r.encodings);
        }
        r.shipped += batch.event_count;
        r.payload_bytes += batch.WireSize();
        if (!central.IngestBatch(batch, now).ok()) {
          std::abort();
        }
      }
    }
    central.OnTick(now);
  }
  // Read the high-water mark before the final tick: that tick runs past the
  // query's span, and retirement releases the accountant entry.
  r.state_peak = central.accountant().peak(w.central_plan.query_id);
  central.OnTick(kTicks * kTickMicros + kMicrosPerMinute);
  r.seconds =
      static_cast<double>(WorkerPool::ThreadCpuNs() - cpu0) / 1e9;
  r.events = w.total_events;
  r.events_per_sec = static_cast<double>(w.total_events) / r.seconds;
  if (const CentralQueryStats* stats =
          central.StatsFor(w.central_plan.query_id)) {
    r.spilled = stats->events_spilled;
    r.shed = stats->events_shed;
  }
  if (r.transcript.empty()) {
    std::abort();  // the bench must actually compute something
  }
  return r;
}

// Best-of-three row + columnar passes; transcripts must agree.
struct CasePair {
  RunResult row;
  RunResult col;
};

CasePair RunCase(const Workload& w, const char* name) {
  CasePair pair;
  pair.row = RunOne(w, Mode::kRow);
  pair.col = RunOne(w, Mode::kColumnar);
  if (pair.row.transcript != pair.col.transcript) {
    std::fprintf(stderr, "%s pipelines diverged: %zu vs %zu rows\n", name,
                 pair.row.transcript.size(), pair.col.transcript.size());
    std::exit(1);
  }
  for (int rep = 1; rep < 3; ++rep) {
    RunResult again = RunOne(w, Mode::kRow);
    if (again.seconds < pair.row.seconds) {
      pair.row = std::move(again);
    }
    again = RunOne(w, Mode::kColumnar);
    if (again.seconds < pair.col.seconds) {
      pair.col = std::move(again);
    }
  }
  return pair;
}

// The join case runs three representations: row batches, per-source
// kColumnar batches (the lazy-probe legacy), and the kColumnarJoin staged
// format. All three transcripts must be byte-identical.
struct JoinCase {
  RunResult row;
  RunResult col;
  RunResult join_col;
};

JoinCase RunJoinCase(const Workload& w) {
  JoinCase out;
  out.row = RunOne(w, Mode::kRow);
  out.col = RunOne(w, Mode::kColumnar);
  out.join_col = RunOne(w, Mode::kColumnarJoin);
  if (out.row.transcript != out.col.transcript ||
      out.row.transcript != out.join_col.transcript) {
    std::fprintf(stderr, "join pipelines diverged: %zu / %zu / %zu rows\n",
                 out.row.transcript.size(), out.col.transcript.size(),
                 out.join_col.transcript.size());
    std::exit(1);
  }
  for (int rep = 1; rep < 3; ++rep) {
    RunResult again = RunOne(w, Mode::kRow);
    if (again.seconds < out.row.seconds) {
      out.row = std::move(again);
    }
    again = RunOne(w, Mode::kColumnar);
    if (again.seconds < out.col.seconds) {
      out.col = std::move(again);
    }
    again = RunOne(w, Mode::kColumnarJoin);
    if (again.seconds < out.join_col.seconds) {
      out.join_col = std::move(again);
    }
  }
  return out;
}

// Memory-pressure case: the columnar pipeline over a high-cardinality
// grouped scan at state-budget tiers {unlimited, 1/2, 1/8 of the measured
// working set}. Spill keeps every tier's transcript byte-identical
// (asserted); the budgeted tiers pay serialize + replay, so only the
// unlimited tier — the production default, accountant fully inactive — is
// regression-gated by tools/bench_compare.py.
struct SpillCaseResult {
  size_t working_set = 0;
  std::vector<RunResult> tiers;
};

SpillCaseResult RunSpillCase(const Workload& w) {
  SpillCaseResult out;
  // Calibration pass (untimed for gating purposes): tracking on, no budget,
  // to learn the unbounded working set.
  CentralConfig tracked;
  tracked.track_state_bytes = true;
  const RunResult calibration = RunOne(w, Mode::kColumnar, tracked);
  out.working_set = calibration.state_peak;

  struct Tier {
    const char* name;
    size_t budget;
  };
  const Tier tiers[] = {{"unlimited", 0},
                        {"half", out.working_set / 2},
                        {"eighth", out.working_set / 8}};
  for (const Tier& tier : tiers) {
    CentralConfig config;
    config.query_state_budget_bytes = tier.budget;
    if (tier.budget > 0) {
      config.spill_dir = "/tmp/scrub_bench_spill";
    }
    RunResult best = RunOne(w, Mode::kColumnar, config);
    for (int rep = 1; rep < 3; ++rep) {
      RunResult again = RunOne(w, Mode::kColumnar, config);
      if (again.seconds < best.seconds) {
        best = std::move(again);
      }
    }
    if (best.transcript != calibration.transcript || best.shed != 0) {
      std::fprintf(stderr,
                   "spill tier '%s' diverged from the unbounded run "
                   "(%zu vs %zu rows, %llu shed)\n",
                   tier.name, best.transcript.size(),
                   calibration.transcript.size(),
                   static_cast<unsigned long long>(best.shed));
      std::exit(1);
    }
    best.pipeline = tier.name;
    best.budget = tier.budget;
    out.tiers.push_back(std::move(best));
  }
  return out;
}

// Metrics-overhead case: the identical columnar scan with the operator-
// metrics plane on (the production default) vs off. The plane is pure
// counters plus one thread-CPU read per chunk, so metrics-on must hold the
// absolute floor against metrics-off (tools/bench_compare.py gates the
// ratio at 0.95 by default) — the observability tax can never quietly grow.
struct MetricsCase {
  RunResult on;
  RunResult off;
};

MetricsCase RunMetricsCase(const Workload& w) {
  MetricsCase out;
  CentralConfig metrics_off;
  metrics_off.collect_op_metrics = false;
  out.on = RunOne(w, Mode::kColumnar);
  out.off = RunOne(w, Mode::kColumnar, metrics_off);
  if (out.on.transcript != out.off.transcript) {
    std::fprintf(stderr, "metrics on/off diverged: %zu vs %zu rows\n",
                 out.on.transcript.size(), out.off.transcript.size());
    std::exit(1);
  }
  for (int rep = 1; rep < 3; ++rep) {
    RunResult again = RunOne(w, Mode::kColumnar);
    if (again.seconds < out.on.seconds) {
      out.on = std::move(again);
    }
    again = RunOne(w, Mode::kColumnar, metrics_off);
    if (again.seconds < out.off.seconds) {
      out.off = std::move(again);
    }
  }
  out.on.pipeline = "metrics_on";
  out.off.pipeline = "metrics_off";
  return out;
}

std::string RunsJson(const CasePair& pair, const char* indent) {
  std::string out;
  for (const RunResult* r : {&pair.row, &pair.col}) {
    out += StrFormat(
        "%s{\"pipeline\": \"%s\", \"events\": %llu, \"shipped\": %llu, "
        "\"payload_bytes\": %llu, \"seconds\": %.6f, "
        "\"events_per_sec\": %.0f}%s\n",
        indent, r->pipeline.c_str(),
        static_cast<unsigned long long>(r->events),
        static_cast<unsigned long long>(r->shipped),
        static_cast<unsigned long long>(r->payload_bytes), r->seconds,
        r->events_per_sec, r == &pair.row ? "," : "");
  }
  return out;
}

int Main(int argc, char** argv) {
  const size_t events_per_batch =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 1024;
  const Workload scan = ScanWorkload(events_per_batch);
  const Workload join = JoinWorkload(events_per_batch);
  const Workload dict = DictWorkload(events_per_batch);
  const Workload filter = FilterWorkload(events_per_batch);
  const Workload spill = ScanWorkload(events_per_batch, /*cardinality=*/2048);

  const CasePair scan_pair = RunCase(scan, "scan");
  const JoinCase join_case = RunJoinCase(join);
  const CasePair dict_pair = RunCase(dict, "dict");
  const SpillCaseResult spill_case = RunSpillCase(spill);
  const MetricsCase metrics_case = RunMetricsCase(scan);

  // The dict case only means something if the dictionary actually fired on
  // the kept string column (field 2, "tag").
  if (dict_pair.col.encodings.size() != 3 ||
      dict_pair.col.encodings[2] <= 0) {
    std::fprintf(stderr, "dict case: tag column was not dict-encoded\n");
    std::exit(1);
  }

  const FilterResult f_legacy_row = BestFilter(filter, false, false);
  const FilterResult f_ir_row = BestFilter(filter, true, false);
  const FilterResult f_legacy_col = BestFilter(filter, false, true);
  const FilterResult f_ir_col = BestFilter(filter, true, true);
  // Representation must not change semantics: every pipeline keeps the
  // exact same rows.
  if (f_legacy_row.matched != f_ir_row.matched ||
      f_legacy_col.matched != f_ir_col.matched ||
      f_legacy_row.matched != f_legacy_col.matched) {
    std::fprintf(stderr,
                 "filter pipelines diverged: row %llu/%llu columnar "
                 "%llu/%llu\n",
                 static_cast<unsigned long long>(f_legacy_row.matched),
                 static_cast<unsigned long long>(f_ir_row.matched),
                 static_cast<unsigned long long>(f_legacy_col.matched),
                 static_cast<unsigned long long>(f_ir_col.matched));
    std::exit(1);
  }

  // The scan case keeps the legacy top-level layout ("runs" /
  // "speedup_vs_row") so committed baselines compare without migration; the
  // join case nests under "join".
  std::string out = "{\n";
  out += "  \"bench\": \"ingest\",\n";
  out += StrFormat("  \"events_per_batch\": %zu,\n", events_per_batch);
  out += StrFormat("  \"hosts\": %d,\n", kHosts);
  out += StrFormat("  \"ticks\": %d,\n", kTicks);
  out +=
      "  \"timing\": \"thread CPU clock, best of 3, decode+filter+fold "
      "end to end\",\n";
  out += "  \"runs\": [\n";
  out += RunsJson(scan_pair, "    ");
  out += "  ],\n";
  out += StrFormat("  \"speedup_vs_row\": %.3f,\n",
                   scan_pair.col.events_per_sec /
                       scan_pair.row.events_per_sec);
  out += "  \"join\": {\n";
  out += "    \"query\": \"bid x impression equi-join on request id, "
         "grouped COUNT/SUM\",\n";
  out += "    \"runs\": [\n";
  const RunResult* join_results[] = {&join_case.row, &join_case.col,
                                     &join_case.join_col};
  for (const RunResult* r : join_results) {
    out += StrFormat(
        "      {\"pipeline\": \"%s\", \"events\": %llu, \"shipped\": %llu, "
        "\"payload_bytes\": %llu, \"seconds\": %.6f, "
        "\"events_per_sec\": %.0f}%s\n",
        r->pipeline.c_str(), static_cast<unsigned long long>(r->events),
        static_cast<unsigned long long>(r->shipped),
        static_cast<unsigned long long>(r->payload_bytes), r->seconds,
        r->events_per_sec, r == &join_case.join_col ? "" : ",");
  }
  out += "    ],\n";
  // The gated figure: the staged kColumnarJoin pipeline over the row
  // pipeline, end to end.
  out += StrFormat("    \"speedup_vs_row\": %.3f\n",
                   join_case.join_col.events_per_sec /
                       join_case.row.events_per_sec);
  out += "  },\n";
  out += "  \"dict\": {\n";
  out += "    \"query\": \"grouped COUNT/SUM keyed by a 4-value string "
         "column: the kept tag ships as a dictionary + code bytes\",\n";
  out += "    \"runs\": [\n";
  out += RunsJson(dict_pair, "      ");
  out += "    ],\n";
  out += StrFormat("    \"dict_entries\": %d,\n", dict_pair.col.encodings[2]);
  out += StrFormat("    \"wire_bytes_reduction\": %.3f\n",
                   static_cast<double>(dict_pair.row.payload_bytes) /
                       static_cast<double>(dict_pair.col.payload_bytes));
  out += "  },\n";
  out += "  \"spill\": {\n";
  out += "    \"query\": \"grouped scan over 2048 keys/window at state "
         "budgets {unlimited, 1/2, 1/8 working set}; spill keeps tiers "
         "byte-identical, only the unlimited tier is gated\",\n";
  out += StrFormat("    \"working_set_bytes\": %zu,\n",
                   spill_case.working_set);
  out += "    \"runs\": [\n";
  for (size_t i = 0; i < spill_case.tiers.size(); ++i) {
    const RunResult& tier = spill_case.tiers[i];
    out += StrFormat(
        "      {\"pipeline\": \"%s\", \"budget_bytes\": %zu, "
        "\"events\": %llu, \"spilled\": %llu, \"seconds\": %.6f, "
        "\"events_per_sec\": %.0f}%s\n",
        tier.pipeline.c_str(), tier.budget,
        static_cast<unsigned long long>(tier.events),
        static_cast<unsigned long long>(tier.spilled), tier.seconds,
        tier.events_per_sec,
        i + 1 == spill_case.tiers.size() ? "" : ",");
  }
  out += "    ]\n";
  out += "  },\n";
  out += "  \"filter\": {\n";
  out += "    \"query\": \"4 conjuncts with foldable arithmetic and "
         "implied bounds; IR executes 2 folded programs\",\n";
  out += "    \"runs\": [\n";
  const FilterResult* filter_results[] = {&f_legacy_row, &f_ir_row,
                                          &f_legacy_col, &f_ir_col};
  for (const FilterResult* fr : filter_results) {
    out += StrFormat(
        "      {\"pipeline\": \"%s\", \"events\": %llu, "
        "\"matched\": %llu, \"seconds\": %.6f, "
        "\"events_per_sec\": %.0f}%s\n",
        fr->pipeline.c_str(), static_cast<unsigned long long>(fr->events),
        static_cast<unsigned long long>(fr->matched), fr->seconds,
        fr->events_per_sec, fr == &f_ir_col ? "" : ",");
  }
  out += "    ],\n";
  out += StrFormat("    \"speedup_vs_legacy\": %.3f,\n",
                   f_ir_row.events_per_sec / f_legacy_row.events_per_sec);
  out += StrFormat("    \"speedup_vs_legacy_columnar\": %.3f\n",
                   f_ir_col.events_per_sec / f_legacy_col.events_per_sec);
  out += "  },\n";
  out += "  \"metrics\": {\n";
  out += "    \"query\": \"the scan workload with the operator-metrics "
         "plane on vs off; the ratio is the observability tax and is "
         "floor-gated\",\n";
  out += "    \"runs\": [\n";
  for (const RunResult* r : {&metrics_case.on, &metrics_case.off}) {
    out += StrFormat(
        "      {\"pipeline\": \"%s\", \"events\": %llu, "
        "\"seconds\": %.6f, \"events_per_sec\": %.0f}%s\n",
        r->pipeline.c_str(), static_cast<unsigned long long>(r->events),
        r->seconds, r->events_per_sec,
        r == &metrics_case.off ? "" : ",");
  }
  out += "    ],\n";
  out += StrFormat("    \"events_per_sec_ratio\": %.3f\n",
                   metrics_case.on.events_per_sec /
                       metrics_case.off.events_per_sec);
  out += "  }\n";
  out += "}\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace scrub

int main(int argc, char** argv) { return scrub::Main(argc, argv); }
