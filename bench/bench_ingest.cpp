// Ingest microbench: the full data plane — agent-side filter + project +
// encode, then central-side decode + fold — over the identical event stream
// through both pipelines:
//
//  * row: per-event predicate (EvalPredicateSingle), per-event projection
//    copy, EncodeBatch / DecodeBatch, per-Event fold;
//  * columnar: ColumnBatch staging, vectorized EvalPredicateBatch over a
//    selection vector, EncodeColumnBatch / DecodeColumnBatch, per-row fold
//    straight off the columns (no intermediate Event).
//
// Both runs must produce the identical result transcript (asserted) — the
// benchmark measures representation, not semantics. Timing uses
// CLOCK_THREAD_CPUTIME_ID (single-core safe, like bench_parallel_central);
// best-of-three is the estimator. Output is the "ingest" JSON section merged
// into BENCH_scrub.json by tools/bench_run.sh and gated by
// tools/bench_compare.py: the columnar pipeline must hold >= 1.5x the row
// pipeline's events/sec.
//
// Usage: bench_ingest [events_per_batch] > ingest.json

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "src/central/central.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/worker_pool.h"
#include "src/event/column_batch.h"
#include "src/event/wire.h"
#include "src/plan/expr_eval.h"
#include "src/plan/vectorized.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

constexpr int kHosts = 4;
constexpr int kTicks = 50;
constexpr TimeMicros kTickMicros = 500 * kMicrosPerMilli;

// Pre-generated raw stream: what the hosts logged, before any Scrub-side
// work. Both pipelines start from these identical Events.
struct Workload {
  SchemaRegistry registry;
  SchemaPtr schema;
  HostSourcePlan source;
  CentralPlan central_plan;
  // per tick, per host: the logged events.
  std::vector<std::vector<std::vector<Event>>> stream;
  uint64_t total_events = 0;

  explicit Workload(size_t events_per_batch) {
    schema = *EventSchema::Builder("bid")
                  .AddField("user_id", FieldType::kLong)
                  .AddField("price", FieldType::kDouble)
                  .AddField("tag", FieldType::kString)
                  .Build();
    if (!registry.Register(schema).ok()) {
      std::abort();
    }
    AnalyzerOptions options;
    Result<AnalyzedQuery> aq = ParseAndAnalyze(
        "SELECT bid.user_id, COUNT(*), SUM(bid.price) FROM bid "
        "WHERE bid.price > 1.0 GROUP BY bid.user_id "
        "WINDOW 1 s DURATION 60 s;",
        registry, options);
    if (!aq.ok()) {
      std::abort();
    }
    Result<QueryPlan> qp = PlanQuery(*aq, 1, 0);
    if (!qp.ok() || qp->host.sources.size() != 1) {
      std::abort();
    }
    source = qp->host.sources[0];
    central_plan = qp->central;
    central_plan.hosts_targeted = kHosts;
    central_plan.hosts_sampled = 0;  // hand-installed: no completeness math

    static const char* kTags[] = {"organic", "paid", "house", "remnant"};
    Rng rng(4321);
    stream.resize(kTicks);
    for (int tick = 0; tick < kTicks; ++tick) {
      stream[static_cast<size_t>(tick)].resize(kHosts);
      for (int host = 0; host < kHosts; ++host) {
        auto& events = stream[static_cast<size_t>(tick)][
            static_cast<size_t>(host)];
        events.reserve(events_per_batch);
        for (size_t i = 0; i < events_per_batch; ++i) {
          Event e(schema, rng.NextUint64(),
                  tick * kTickMicros +
                      static_cast<TimeMicros>(rng.NextBelow(
                          static_cast<uint64_t>(kTickMicros))));
          e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(64))));
          e.SetField(1, Value(rng.NextDouble() * 5));  // ~80% pass > 1.0
          e.SetField(2, Value(kTags[rng.NextBelow(4)]));
          events.push_back(std::move(e));
        }
        total_events += events.size();
      }
    }
  }
};

struct RunResult {
  std::string pipeline;
  uint64_t events = 0;
  uint64_t shipped = 0;
  uint64_t payload_bytes = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  std::vector<std::string> transcript;
};

// One full pass of the stream through the chosen pipeline. The returned
// transcript is the self-check: both representations must emit the same
// rows in the same order.
RunResult RunOne(const Workload& w, bool columnar) {
  CentralConfig config;
  config.allowed_lateness = 0;
  ScrubCentral central(&w.registry, config);
  RunResult r;
  r.pipeline = columnar ? "columnar" : "row";
  auto sink = [&r](const ResultRow& row) {
    r.transcript.push_back(
        StrFormat("w%lld %s", static_cast<long long>(row.window_start),
                  row.ToString().c_str()));
  };
  if (!central.InstallQuery(w.central_plan, sink).ok()) {
    std::abort();
  }

  const HostSourcePlan& sp = w.source;
  const size_t field_count = w.schema->field_count();
  uint64_t seq = 1;
  const uint64_t cpu0 = WorkerPool::ThreadCpuNs();
  for (int tick = 0; tick < kTicks; ++tick) {
    const TimeMicros now = (tick + 1) * kTickMicros;
    for (int host = 0; host < kHosts; ++host) {
      const auto& events =
          w.stream[static_cast<size_t>(tick)][static_cast<size_t>(host)];
      EventBatch batch;
      batch.query_id = w.central_plan.query_id;
      batch.host = static_cast<HostId>(host);
      batch.seq = seq++;
      if (!columnar) {
        // Row data plane: per-event predicate, per-event projection copy.
        std::vector<Event> shipped;
        for (const Event& e : events) {
          bool keep = true;
          for (const CompiledExpr& conjunct : sp.conjuncts) {
            if (!EvalPredicateSingle(conjunct, e)) {
              keep = false;
              break;
            }
          }
          if (!keep) {
            continue;
          }
          Event out(e.schema(), e.request_id(), e.timestamp());
          for (size_t f = 0; f < field_count; ++f) {
            if (sp.keep_field[f]) {
              out.SetField(f, e.field(f));
            }
          }
          shipped.push_back(std::move(out));
        }
        batch.event_count = shipped.size();
        batch.payload = EncodeBatch(shipped);
      } else {
        // Columnar data plane: stage, filter vectorized, encode selection.
        ColumnBatch cols(w.schema);
        cols.Reserve(events.size());
        for (const Event& e : events) {
          cols.AppendEvent(e);
        }
        std::vector<uint32_t> selection(cols.rows());
        std::iota(selection.begin(), selection.end(), 0u);
        for (const CompiledExpr& conjunct : sp.conjuncts) {
          EvalPredicateBatch(conjunct, cols, &selection);
          if (selection.empty()) {
            break;
          }
        }
        batch.format = BatchFormat::kColumnar;
        batch.event_count = selection.size();
        EncodeColumnBatch(cols, selection.data(), selection.size(),
                          &sp.keep_field, &batch.payload);
      }
      r.shipped += batch.event_count;
      r.payload_bytes += batch.WireSize();
      if (!central.IngestBatch(batch, now).ok()) {
        std::abort();
      }
    }
    central.OnTick(now);
  }
  central.OnTick(kTicks * kTickMicros + kMicrosPerMinute);
  r.seconds =
      static_cast<double>(WorkerPool::ThreadCpuNs() - cpu0) / 1e9;
  r.events = w.total_events;
  r.events_per_sec = static_cast<double>(w.total_events) / r.seconds;
  if (r.transcript.empty()) {
    std::abort();  // the bench must actually compute something
  }
  return r;
}

int Main(int argc, char** argv) {
  const size_t events_per_batch =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 1024;
  Workload workload(events_per_batch);

  // Best of three per pipeline; the transcript must agree across every run.
  RunResult row = RunOne(workload, /*columnar=*/false);
  RunResult col = RunOne(workload, /*columnar=*/true);
  if (row.transcript != col.transcript) {
    std::fprintf(stderr, "pipelines diverged: %zu vs %zu rows\n",
                 row.transcript.size(), col.transcript.size());
    return 1;
  }
  for (int rep = 1; rep < 3; ++rep) {
    RunResult again = RunOne(workload, /*columnar=*/false);
    if (again.seconds < row.seconds) {
      row = std::move(again);
    }
    again = RunOne(workload, /*columnar=*/true);
    if (again.seconds < col.seconds) {
      col = std::move(again);
    }
  }

  const double speedup = col.events_per_sec / row.events_per_sec;
  std::string out = "{\n";
  out += "  \"bench\": \"ingest\",\n";
  out += StrFormat("  \"events_per_batch\": %zu,\n", events_per_batch);
  out += StrFormat("  \"hosts\": %d,\n", kHosts);
  out += StrFormat("  \"ticks\": %d,\n", kTicks);
  out +=
      "  \"timing\": \"thread CPU clock, best of 3, decode+filter+fold "
      "end to end\",\n";
  out += "  \"runs\": [\n";
  for (const RunResult* r : {&row, &col}) {
    out += StrFormat(
        "    {\"pipeline\": \"%s\", \"events\": %llu, \"shipped\": %llu, "
        "\"payload_bytes\": %llu, \"seconds\": %.6f, "
        "\"events_per_sec\": %.0f}%s\n",
        r->pipeline.c_str(), static_cast<unsigned long long>(r->events),
        static_cast<unsigned long long>(r->shipped),
        static_cast<unsigned long long>(r->payload_bytes), r->seconds,
        r->events_per_sec, r == &row ? "," : "");
  }
  out += "  ],\n";
  out += StrFormat("  \"speedup_vs_row\": %.3f\n", speedup);
  out += "}\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace scrub

int main(int argc, char** argv) { return scrub::Main(argc, argv); }
