// E6 — Section 8.6: an incorrectly set field (frequency-cap violations).
//
// Fault injection: a fraction of ProfileStore updates is lost, so the serve
// counts the frequency-cap filter reads understate reality. The
// troubleshooting queries reproduce the investigation: (1) impressions of
// the capped line item per user — over-cap users are the symptom; (2)
// profile_update events grouped by their applied flag — lost updates are
// the root cause. A control run without the fault shows no violations,
// isolating the injected bug.

#include <cstdio>
#include <map>

#include "src/scrub/scrub_system.h"

using namespace scrub;

namespace {

struct CapReport {
  uint64_t users_served = 0;
  uint64_t users_over_cap = 0;
  uint64_t worst = 0;
  uint64_t updates_ok = 0;
  uint64_t updates_lost = 0;
};

CapReport Run(double loss_rate) {
  SystemConfig config;
  config.seed = 99;
  config.platform.seed = 99;
  config.platform.profile_update_loss = loss_rate;
  ScrubSystem system(config);

  LineItem capped;
  capped.id = 3333;
  capped.campaign_id = 33;
  capped.advisory_bid_price = 6.0;
  capped.frequency_cap_per_day = 1;
  system.platform().AddLineItem(capped);

  const TimeMicros kTrace = 60 * kMicrosPerSecond;
  PoissonLoadConfig load;
  load.requests_per_second = 1200;
  load.duration = kTrace;
  // Enough users that one user's requests are spaced well apart: the
  // capped item's serve-count update (which trails the impression by the
  // external-auction delay) lands long before the user's next request, so
  // any over-serving is attributable to the injected update loss, not to
  // in-flight races.
  load.user_population = 20000;
  load.user_zipf_exponent = 0.5;
  system.workload().SchedulePoissonLoad(load);

  std::map<int64_t, uint64_t> serves;
  CapReport report;
  auto check = [](const Result<SubmittedQuery>& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   s.status().ToString().c_str());
      std::exit(1);
    }
  };
  check(system.Submit(
      "SELECT impression.user_id, COUNT(*) FROM impression "
      "WHERE impression.line_item_id = 3333 "
      "GROUP BY impression.user_id WINDOW 60 s DURATION 60 s;",
      [&serves](const ResultRow& row) {
        serves[row.values[0].AsInt()] +=
            static_cast<uint64_t>(row.values[1].AsInt());
      }));
  check(system.Submit(
      "SELECT profile_update.applied, COUNT(*) FROM profile_update "
      "WHERE profile_update.line_item_id = 3333 "
      "GROUP BY profile_update.applied WINDOW 60 s DURATION 60 s;",
      [&report](const ResultRow& row) {
        const uint64_t n = static_cast<uint64_t>(row.values[1].AsInt());
        if (row.values[0].is_bool() && row.values[0].AsBool()) {
          report.updates_ok += n;
        } else {
          report.updates_lost += n;
        }
      }));

  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  report.users_served = serves.size();
  for (const auto& [user, count] : serves) {
    if (count > 1) {
      ++report.users_over_cap;
      report.worst = std::max(report.worst, count);
    }
  }
  return report;
}

}  // namespace

int main() {
  std::printf("E6 / Section 8.6: frequency-cap violations from lost profile "
              "updates (cap: 1 ad/user/day)\n\n");
  std::printf("%-16s %-14s %-16s %-10s %-14s %-12s\n", "update loss",
              "users served", "over-cap users", "worst", "updates ok",
              "updates lost");
  double over_cap_rate[2] = {0, 0};
  bool faulty_has_losses = false;
  int idx = 0;
  for (const double loss : {0.0, 0.4}) {
    const CapReport r = Run(loss);
    std::printf("%-15.0f%% %-14llu %-16llu %-10llu %-14llu %-12llu\n",
                loss * 100,
                static_cast<unsigned long long>(r.users_served),
                static_cast<unsigned long long>(r.users_over_cap),
                static_cast<unsigned long long>(r.worst),
                static_cast<unsigned long long>(r.updates_ok),
                static_cast<unsigned long long>(r.updates_lost));
    over_cap_rate[idx++] = r.users_served == 0
                               ? 0.0
                               : static_cast<double>(r.users_over_cap) /
                                     static_cast<double>(r.users_served);
    if (loss > 0.0) {
      faulty_has_losses = r.updates_lost > 0;
    }
  }
  // The control is not exactly zero: a user whose second request races the
  // in-flight profile update of their first serve slips past the cap — a
  // lag real capping systems have. The injected fault must dominate it.
  std::printf("\npaper shape checks:\n");
  std::printf("  control over-cap rate: %.2f%% (in-flight race only; "
              "expect ~1%%)\n",
              over_cap_rate[0] * 100);
  std::printf("  faulty over-cap rate:  %.2f%% (expect >> control)\n",
              over_cap_rate[1] * 100);
  const bool matches = over_cap_rate[0] < 0.02 && faulty_has_losses &&
                       over_cap_rate[1] > 10 * over_cap_rate[0];
  std::printf("  => %s\n",
              matches ? "over-serving is traced to lost profile updates "
                        "(matches the paper's diagnosis)"
                      : "signature absent");
  return matches ? 0 : 1;
}
