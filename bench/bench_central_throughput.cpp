// E9 — ScrubCentral throughput (paper Section 9).
//
// Microbenchmarks of the central engine's ingest path: selection-only
// (raw rows), grouped aggregation with varying group cardinality, the
// request-id join, and probabilistic aggregates. Events arrive pre-encoded
// in batches exactly as hosts ship them, so decode cost is included — this
// is the rate one ScrubCentral instance absorbs.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "src/central/central.h"
#include "src/central/sharded_central.h"
#include "src/common/rng.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

constexpr size_t kBatchEvents = 512;

class CentralBench {
 public:
  CentralBench() {
    bid_schema_ = *EventSchema::Builder("bid")
                       .AddField("user_id", FieldType::kLong)
                       .AddField("price", FieldType::kDouble)
                       .AddField("exchange_id", FieldType::kLong)
                       .Build();
    imp_schema_ = *EventSchema::Builder("impression")
                       .AddField("line_item_id", FieldType::kLong)
                       .AddField("cost", FieldType::kDouble)
                       .Build();
    (void)registry_.Register(bid_schema_);
    (void)registry_.Register(imp_schema_);
  }

  CentralPlan Plan(const std::string& text) {
    AnalyzerOptions options;
    options.max_duration_micros = 24 * kMicrosPerHour;
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_, options);
    Result<QueryPlan> plan = PlanQuery(*aq, next_id_++, 0);
    CentralPlan central = plan->central;
    central.hosts_targeted = 1;
    central.hosts_sampled = 1;
    return central;
  }

  // One batch of bid events with `groups` distinct users, timestamps inside
  // window 0.
  EventBatch BidBatch(QueryId qid, int64_t groups, uint64_t seed) {
    Rng rng(seed);
    std::vector<Event> events;
    events.reserve(kBatchEvents);
    for (size_t i = 0; i < kBatchEvents; ++i) {
      Event e(bid_schema_, rng.NextUint64(), 100 + static_cast<int64_t>(i));
      e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(
                        static_cast<uint64_t>(groups)))));
      e.SetField(1, Value(rng.NextDouble() * 5));
      e.SetField(2, Value(static_cast<int64_t>(rng.NextBelow(4) + 1)));
      events.push_back(std::move(e));
    }
    EventBatch batch;
    batch.query_id = qid;
    batch.host = 0;
    batch.event_count = events.size();
    batch.payload = EncodeBatch(events);
    return batch;
  }

  // Matched bid+impression pairs sharing request ids (join workload).
  EventBatch JoinBatch(QueryId qid, uint64_t seed) {
    Rng rng(seed);
    std::vector<Event> events;
    events.reserve(kBatchEvents);
    for (size_t i = 0; i < kBatchEvents / 2; ++i) {
      const RequestId rid = rng.NextUint64();
      Event bid(bid_schema_, rid, 100 + static_cast<int64_t>(i));
      bid.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(1000))));
      bid.SetField(1, Value(rng.NextDouble() * 5));
      bid.SetField(2, Value(int64_t{1}));
      events.push_back(std::move(bid));
      Event imp(imp_schema_, rid, 150 + static_cast<int64_t>(i));
      imp.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(100))));
      imp.SetField(1, Value(rng.NextDouble() / 1000));
      events.push_back(std::move(imp));
    }
    EventBatch batch;
    batch.query_id = qid;
    batch.host = 0;
    batch.event_count = events.size();
    batch.payload = EncodeBatch(events);
    return batch;
  }

  SchemaRegistry registry_;
  SchemaPtr bid_schema_;
  SchemaPtr imp_schema_;
  QueryId next_id_ = 1;
};

void BM_IngestRawSelection(benchmark::State& state) {
  CentralBench bench;
  ScrubCentral central(&bench.registry_);
  const CentralPlan plan = bench.Plan(
      "SELECT bid.user_id, bid.price FROM bid WINDOW 1 h DURATION 1 h;");
  size_t rows = 0;
  (void)central.InstallQuery(plan, [&rows](const ResultRow&) { ++rows; });
  uint64_t seed = 1;
  for (auto _ : state) {
    const EventBatch batch = bench.BidBatch(plan.query_id, 1000, seed++);
    const Status s = central.IngestBatch(batch, 0);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchEvents));
}
BENCHMARK(BM_IngestRawSelection);

void BM_IngestGroupedCount(benchmark::State& state) {
  CentralBench bench;
  ScrubCentral central(&bench.registry_);
  const CentralPlan plan = bench.Plan(
      "SELECT bid.user_id, COUNT(*), AVG(bid.price) FROM bid "
      "GROUP BY bid.user_id WINDOW 1 h DURATION 1 h;");
  (void)central.InstallQuery(plan, [](const ResultRow&) {});
  const int64_t groups = state.range(0);
  uint64_t seed = 1;
  for (auto _ : state) {
    const EventBatch batch = bench.BidBatch(plan.query_id, groups, seed++);
    const Status s = central.IngestBatch(batch, 0);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchEvents));
  state.SetLabel(std::to_string(groups) + " groups");
}
BENCHMARK(BM_IngestGroupedCount)->Arg(10)->Arg(1000)->Arg(100000);

void BM_IngestTopKAndDistinct(benchmark::State& state) {
  CentralBench bench;
  ScrubCentral central(&bench.registry_);
  const CentralPlan plan = bench.Plan(
      "SELECT TOPK(10, bid.user_id), COUNT_DISTINCT(bid.user_id) FROM bid "
      "WINDOW 1 h DURATION 1 h;");
  (void)central.InstallQuery(plan, [](const ResultRow&) {});
  uint64_t seed = 1;
  for (auto _ : state) {
    const EventBatch batch = bench.BidBatch(plan.query_id, 50000, seed++);
    const Status s = central.IngestBatch(batch, 0);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchEvents));
}
BENCHMARK(BM_IngestTopKAndDistinct);

void BM_IngestRequestIdJoin(benchmark::State& state) {
  CentralBench bench;
  ScrubCentral central(&bench.registry_);
  const CentralPlan plan = bench.Plan(
      "SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
      "GROUP BY impression.line_item_id WINDOW 1 h DURATION 1 h;");
  (void)central.InstallQuery(plan, [](const ResultRow&) {});
  uint64_t seed = 1;
  for (auto _ : state) {
    const EventBatch batch = bench.JoinBatch(plan.query_id, seed++);
    const Status s = central.IngestBatch(batch, 0);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchEvents));
}
BENCHMARK(BM_IngestRequestIdJoin);

void BM_WindowClose(benchmark::State& state) {
  // Cost of closing a window holding `groups` groups.
  CentralBench bench;
  const int64_t groups = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    ScrubCentral central(&bench.registry_);
    const CentralPlan plan = bench.Plan(
        "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
        "WINDOW 1 s DURATION 1 h;");
    size_t rows = 0;
    (void)central.InstallQuery(plan, [&rows](const ResultRow&) { ++rows; });
    for (int i = 0; i < 8; ++i) {
      (void)central.IngestBatch(
          bench.BidBatch(plan.query_id, groups, static_cast<uint64_t>(i)),
          0);
    }
    state.ResumeTiming();
    central.OnTick(10 * kMicrosPerSecond);
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel(std::to_string(groups) + " groups/window");
}
BENCHMARK(BM_WindowClose)->Arg(100)->Arg(4096);

void BM_ShardedScaleOut(benchmark::State& state) {
  // E9b: the "small ScrubCentral cluster". Identical traffic through N
  // shards; the cluster's critical path is its most loaded shard, so the
  // max-shard share of simulated CPU (~1/N when balanced) is the scale-out
  // factor parallel hardware would realize.
  CentralBench bench;
  const size_t shards = static_cast<size_t>(state.range(0));
  ShardedCentral central(&bench.registry_, shards);
  const CentralPlan plan = bench.Plan(
      "SELECT bid.user_id, COUNT(*), AVG(bid.price) FROM bid "
      "GROUP BY bid.user_id WINDOW 1 h DURATION 1 h;");
  (void)central.InstallQuery(plan, [](const ResultRow&) {});
  uint64_t seed = 1;
  for (auto _ : state) {
    const EventBatch batch = bench.BidBatch(plan.query_id, 10000, seed++);
    const Status s = central.IngestBatch(batch, 0);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchEvents));
  int64_t total_ns = 0;
  int64_t max_ns = 0;
  for (size_t i = 0; i < central.shard_count(); ++i) {
    const int64_t ns = central.shard(i).meter().scrub_ns();
    total_ns += ns;
    max_ns = std::max(max_ns, ns);
  }
  state.counters["max_shard_share"] =
      total_ns == 0 ? 0.0
                    : static_cast<double>(max_ns) /
                          static_cast<double>(total_ns);
  state.SetLabel(std::to_string(shards) + " shard(s)");
}
BENCHMARK(BM_ShardedScaleOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace scrub
