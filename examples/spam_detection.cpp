// Case study 8.1 — spam-bot detection (paper Figures 9 and 10).
//
// Human users browse pages (one or two page views across the trace, a
// handful of bid requests each); two bots hammer the platform with large
// request batches at high frequency. The Figure-9 query groups bid requests
// by user id in 10-second tumbling windows on one BidServer; bots stick out
// as users with enormous per-window counts.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  SystemConfig config;
  config.seed = 2018;
  config.platform.seed = 2018;
  ScrubSystem system(config);

  const TimeMicros kTrace = 3 * kMicrosPerMinute;  // scaled-down 20 minutes

  // Background: humans.
  HumanTrafficConfig humans;
  humans.users = 4000;
  humans.horizon = kTrace;
  system.workload().ScheduleHumanTraffic(humans);

  // The anomaly: two bots with distinct signatures. Users are sticky to one
  // BidServer; the Figure-9 query watches a single server, so pick bot user
  // ids that route to it (in the real incident, the bots happened to be
  // visible on the server being watched).
  const HostId watched = system.platform().bid_servers()[0];
  std::vector<UserId> bot_users;
  for (UserId u = 900001; bot_users.size() < 2; ++u) {
    if (system.platform().BidServerForUser(u) == watched) {
      bot_users.push_back(u);
    }
  }
  BotConfig bot1;
  bot1.user_id = bot_users[0];
  bot1.requests_per_batch = 150;
  bot1.batch_interval = 12 * kMicrosPerSecond;
  bot1.stop = kTrace;
  system.workload().ScheduleBot(bot1);
  BotConfig bot2;
  bot2.user_id = bot_users[1];
  bot2.requests_per_batch = 70;
  bot2.batch_interval = 25 * kMicrosPerSecond;
  bot2.stop = kTrace;
  system.workload().ScheduleBot(bot2);

  // Figure 9, on one BidServer.
  const std::string host = system.registry().Get(watched).name;
  const std::string query =
      "SELECT bid.user_id, COUNT(*) FROM bid "
      "@[SERVICE IN BidServers AND SERVER = '" + host + "'] "
      "GROUP BY bid.user_id WINDOW 10 s DURATION 3 m;";
  std::printf("query> %s\n\n", query.c_str());

  // count-per-window -> how many users hit that count (the dot sizes of
  // Figure 10), plus per-user batch counts.
  std::map<uint64_t, uint64_t> count_histogram;
  std::map<int64_t, uint64_t> per_user_windows;
  std::map<int64_t, uint64_t> per_user_max;
  Result<SubmittedQuery> submitted =
      system.Submit(query, [&](const ResultRow& row) {
        const int64_t user = row.values[0].AsInt();
        const uint64_t n = static_cast<uint64_t>(row.values[1].AsInt());
        ++count_histogram[n];
        ++per_user_windows[user];
        per_user_max[user] = std::max(per_user_max[user], n);
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }

  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  std::printf("Figure-10 shape: requests-per-user-per-window histogram\n");
  std::printf("%-24s %s\n", "bids per 10s window", "users*windows at that count");
  for (const auto& [count, users] : count_histogram) {
    if (count <= 8 || count >= 30) {
      std::printf("%-24llu %llu\n",
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(users));
    }
  }

  std::printf("\nSuspected bots (max window count > 30):\n");
  std::vector<int64_t> bots;
  for (const auto& [user, max_count] : per_user_max) {
    if (max_count > 30) {
      bots.push_back(user);
      std::printf("  user %lld: peak %llu bids/window across %llu windows\n",
                  static_cast<long long>(user),
                  static_cast<unsigned long long>(max_count),
                  static_cast<unsigned long long>(per_user_windows[user]));
    }
  }
  std::printf("\n%zu bots detected (injected: 2) -> blacklist and move on\n",
              bots.size());
  return bots.size() == 2 ? 0 : 1;
}
