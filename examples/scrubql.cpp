// scrubql: run ad-hoc Scrub queries against a simulated bidding platform.
//
//   ./scrubql "SELECT bid.user_id, COUNT(*) FROM bid
//              GROUP BY bid.user_id WINDOW 5 s DURATION 20 s;"
//   ./scrubql --explain "SELECT COUNT(*) FROM bid SAMPLE EVENTS 10%;"
//   ./scrubql --lint "SELECT COUNT(*) FROM bid SAMPLE HOSTS 1%;"
//   ./scrubql --seconds 60 --qps 2000 "SELECT ... ;"
//   ./scrubql            # no args: interactive prompt, one query per line
//                        # (:lint <query> lints without running)
//
// Each invocation brings up the simulated cluster, generates traffic, runs
// the query live, prints the rows as windows close, and finishes with the
// query's diagnostics and the host-overhead bill — the workflow a
// troubleshooter has at the real system's console.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/strings.h"
#include "src/lint/lint.h"
#include "src/scrub/scrub_system.h"

using namespace scrub;

namespace {

struct Options {
  double qps = 1000;
  long seconds = 20;
  uint64_t seed = 42;
  bool explain_only = false;
  bool lint_only = false;
  bool analyze = false;
  std::string query;
};

// Distinct-value profile of the bidsim fields, standing in for the field
// statistics a production deployment would pull from its metadata service.
// Bare field names match any event type carrying that field.
LintOptions BidsimLintOptions(const ScrubSystem& system) {
  LintOptions options = system.LintConfig();
  options.field_cardinality = {
      {"user_id", 50'000},   // matches RunQuery's user_population
      {"exchange_id", 4},    {"campaign_id", 10}, {"line_item_id", 60},
      {"publisher_id", 50},  {"country", 8},      {"city", 8},
  };
  return options;
}

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--qps N] [--seconds N] [--seed N] [--explain] [--lint] "
      "[--analyze] [query]\n"
      "  runs the Scrub query against a simulated ad-bidding platform.\n"
      "  --lint checks the query statically and prints diagnostics only.\n"
      "  --analyze runs the query and finishes with EXPLAIN ANALYZE: the\n"
      "  physical pipeline annotated with per-operator rows/selectivity/CPU\n"
      "  and the memory-pressure ledger.\n"
      "  with no query argument, reads one query per line from stdin;\n"
      "  ':lint <query>' lints a query without running it;\n"
      "  ':explain <query>' prints the plan, typed IR and lint findings;\n"
      "  ':analyze <query>' runs it and prints EXPLAIN ANALYZE.\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) {
        return false;
      }
      *out = std::atof(argv[++i]);
      return true;
    };
    if (arg == "--explain") {
      options->explain_only = true;
    } else if (arg == "--lint") {
      options->lint_only = true;
    } else if (arg == "--analyze") {
      options->analyze = true;
    } else if (arg == "--qps") {
      double v;
      if (!next(&v) || v <= 0) {
        return false;
      }
      options->qps = v;
    } else if (arg == "--seconds") {
      double v;
      if (!next(&v) || v <= 0) {
        return false;
      }
      options->seconds = static_cast<long>(v);
    } else if (arg == "--seed") {
      double v;
      if (!next(&v)) {
        return false;
      }
      options->seed = static_cast<uint64_t>(v);
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      options->query += options->query.empty() ? arg : " " + arg;
    }
  }
  return true;
}

int RunQuery(const Options& options, const std::string& query) {
  SystemConfig config;
  config.seed = options.seed;
  config.platform.seed = options.seed;
  ScrubSystem system(config);

  if (options.lint_only) {
    Result<std::vector<Diagnostic>> diags = LintQueryText(
        query, system.schemas(), config.server.analyzer,
        BidsimLintOptions(system));
    if (!diags.ok()) {
      std::fprintf(stderr, "error: %s\n", diags.status().ToString().c_str());
      return 1;
    }
    if (diags->empty()) {
      std::printf("lint: clean\n");
      return 0;
    }
    std::printf("%s", RenderDiagnostics(*diags, query).c_str());
    return HasLintErrors(*diags) ? 1 : 0;
  }

  if (options.explain_only) {
    std::printf("%s", system.Explain(query).c_str());
    return 0;
  }

  PoissonLoadConfig load;
  load.requests_per_second = options.qps;
  load.duration = options.seconds * kMicrosPerSecond;
  load.user_population = 50000;
  system.workload().SchedulePoissonLoad(load);

  size_t rows = 0;
  Result<SubmittedQuery> submitted =
      system.Submit(query, [&rows](const ResultRow& row) {
        ++rows;
        std::printf("%s\n", row.ToString().c_str());
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }
  for (const Diagnostic& d : submitted->lint_warnings) {
    std::printf("%s\n", RenderDiagnostic(d, query).c_str());
  }
  std::printf("-- query %llu on %zu/%zu hosts; trace %lds @ %.0f req/s --\n",
              static_cast<unsigned long long>(submitted->id),
              submitted->hosts_installed, submitted->hosts_targeted,
              options.seconds, options.qps);

  // EXPLAIN ANALYZE needs the query still installed to render its pipeline,
  // so snapshot it just before the span expires.
  std::string analyze_out;
  if (options.analyze && submitted->end_time > 0) {
    system.RunUntil(submitted->end_time - 1);
    analyze_out = system.ExplainAnalyze(submitted->id);
  }
  system.RunUntil(std::max<TimeMicros>(
      submitted->end_time, options.seconds * kMicrosPerSecond));
  system.Drain();

  std::printf("-- %zu rows --\n%s", rows,
              options.analyze ? analyze_out.c_str()
                              : system.DescribeQuery(submitted->id).c_str());
  const OverheadReport report = system.TotalOverhead();
  std::printf("host overhead: %.3f%% of application CPU went to Scrub\n",
              report.scrub_fraction * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage(argv[0]);
    return 2;
  }
  if (!options.query.empty()) {
    return RunQuery(options, options.query);
  }
  // Interactive: one query per line.
  std::printf("scrubql> ");
  std::fflush(stdout);
  char line[4096];
  int status = 0;
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    const std::string query(StripWhitespace(line));
    if (query == "quit" || query == "exit") {
      break;
    }
    if (query.rfind(":lint", 0) == 0) {
      Options lint_options = options;
      lint_options.lint_only = true;
      status = RunQuery(lint_options,
                        std::string(StripWhitespace(query.substr(5))));
    } else if (query.rfind(":explain", 0) == 0) {
      Options explain_options = options;
      explain_options.explain_only = true;
      status = RunQuery(explain_options,
                        std::string(StripWhitespace(query.substr(8))));
    } else if (query.rfind(":analyze", 0) == 0) {
      Options analyze_options = options;
      analyze_options.analyze = true;
      status = RunQuery(analyze_options,
                        std::string(StripWhitespace(query.substr(8))));
    } else if (!query.empty()) {
      status = RunQuery(options, query);
    }
    std::printf("scrubql> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return status;
}
