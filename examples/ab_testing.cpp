// Case study 8.3 — A/B testing of ad targeting models (paper Figures 13-15).
//
// Model A (the challenger) runs on half the AdServers, model B (the
// incumbent) on the rest. Two Figure-13/14 query templates measure, per
// model: CPM = 1000 * AVG(impression.cost) and CTR = COUNT(clicks) /
// COUNT(impressions). The expected outcome mirrors the paper's: B achieves
// a higher CTR at roughly the same CPM.

#include <cstdio>
#include <string>
#include <vector>

#include "src/scrub/scrub_system.h"

using namespace scrub;

namespace {

struct ModelMetrics {
  double cpm_sum = 0;
  int cpm_windows = 0;
  uint64_t impressions = 0;
  uint64_t clicks = 0;
};

}  // namespace

int main() {
  SystemConfig config;
  config.seed = 77;
  config.platform.seed = 77;
  config.platform.adservers_per_dc = 2;  // 4 AdServers: 2 per model
  // CTRs: the incumbent B genuinely is better (the A/B test should see it).
  config.platform.ctr_model_a = 0.010;
  config.platform.ctr_model_b = 0.016;
  ScrubSystem system(config);

  // Assign models: even AdServers run A, odd run B.
  for (size_t i = 0; i < system.platform().ad_servers().size(); ++i) {
    system.platform().SetAdServerModel(system.platform().ad_servers()[i],
                                       i % 2 == 0 ? "modelA" : "modelB");
  }

  PoissonLoadConfig load;
  load.requests_per_second = 1500;
  load.duration = 60 * kMicrosPerSecond;
  load.user_population = 50000;
  system.workload().SchedulePoissonLoad(load);

  // The impression/click events carry the model that won them, so the
  // Figure-13/14 template's "target the servers running model X" becomes a
  // selection on the model field at the PresentationServers. (In the paper
  // the target clause picks the host set; either spelling exercises the
  // same host-side selection machinery.)
  ModelMetrics metrics[2];
  std::vector<Result<SubmittedQuery>> submissions;
  for (int m = 0; m < 2; ++m) {
    const std::string model = m == 0 ? "modelA" : "modelB";
    submissions.push_back(system.Submit(
        "SELECT 1000 * AVG(impression.cost) FROM impression "
        "WHERE impression.model = '" + model + "' "
        "@[SERVICE IN PresentationServers] WINDOW 10 s DURATION 60 s;",
        [&metrics, m](const ResultRow& row) {
          if (row.values[0].is_double()) {
            metrics[m].cpm_sum += row.values[0].AsDoubleExact();
            ++metrics[m].cpm_windows;
          }
        }));
    submissions.push_back(system.Submit(
        "SELECT COUNT(*) FROM impression "
        "WHERE impression.model = '" + model + "' "
        "@[SERVICE IN PresentationServers] WINDOW 60 s DURATION 60 s;",
        [&metrics, m](const ResultRow& row) {
          metrics[m].impressions +=
              static_cast<uint64_t>(row.values[0].AsInt());
        }));
    submissions.push_back(system.Submit(
        "SELECT COUNT(*) FROM click "
        "WHERE click.model = '" + model + "' "
        "@[SERVICE IN PresentationServers] WINDOW 60 s DURATION 60 s;",
        [&metrics, m](const ResultRow& row) {
          metrics[m].clicks += static_cast<uint64_t>(row.values[0].AsInt());
        }));
  }
  for (const auto& s : submissions) {
    if (!s.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   s.status().ToString().c_str());
      return 1;
    }
  }

  system.RunUntil(61 * kMicrosPerSecond);
  system.Drain();

  std::printf("%-8s %-12s %-14s %-10s %-8s\n", "model", "CPM ($)",
              "impressions", "clicks", "CTR");
  double ctr[2] = {0, 0};
  for (int m = 0; m < 2; ++m) {
    const double cpm = metrics[m].cpm_windows == 0
                           ? 0.0
                           : metrics[m].cpm_sum / metrics[m].cpm_windows;
    ctr[m] = metrics[m].impressions == 0
                 ? 0.0
                 : static_cast<double>(metrics[m].clicks) /
                       static_cast<double>(metrics[m].impressions);
    std::printf("%-8s %-12.3f %-14llu %-10llu %.4f\n",
                m == 0 ? "A" : "B", cpm,
                static_cast<unsigned long long>(metrics[m].impressions),
                static_cast<unsigned long long>(metrics[m].clicks), ctr[m]);
  }
  std::printf("\nconclusion: %s\n",
              ctr[1] > ctr[0]
                  ? "B clicks better at similar CPM — keep the incumbent "
                    "(matches the paper's outcome)"
                  : "A clicks better — promote the challenger");
  return 0;
}
