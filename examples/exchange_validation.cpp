// Case study 8.2 — validating a new ad exchange (paper Figures 11 and 12).
//
// Exchange D comes online mid-trace. The Figure-11 query counts impressions
// per exchange in 10-second windows, sampling 10% of the events on 10% of
// the PresentationServers in DC1 — statistical, not exact, totals are all
// the integration check needs. A healthy integration shows D's impression
// series jumping from zero to a steady level at activation time.

#include <cstdio>
#include <map>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  SystemConfig config;
  config.seed = 8;
  config.platform.seed = 8;
  config.platform.presentation_per_dc = 5;  // enough hosts to sample 10% of
  ScrubSystem system(config);

  const TimeMicros kActivation = 50 * kMicrosPerSecond;
  const TimeMicros kTrace = 100 * kMicrosPerSecond;
  // Exchange D (id 4) activates mid-run.
  system.platform().exchanges()[3].active_from = kActivation;

  PoissonLoadConfig load;
  load.requests_per_second = 2000;
  load.duration = kTrace;
  load.user_population = 100000;
  system.workload().SchedulePoissonLoad(load);

  const char* query =
      "SELECT impression.exchange_id, COUNT(*) FROM impression "
      "@[SERVICE IN PresentationServers AND DATACENTER = DC1] "
      "GROUP BY impression.exchange_id WINDOW 10 s DURATION 100 s "
      "SAMPLE HOSTS 10% SAMPLE EVENTS 10%;";
  std::printf("query> %s\n\n", query);

  // window start (s) -> exchange -> scaled impression count.
  std::map<TimeMicros, std::map<int64_t, double>> series;
  Result<SubmittedQuery> submitted =
      system.Submit(query, [&](const ResultRow& row) {
        const int64_t exchange = row.values[0].AsInt();
        const double count = row.values[1].is_double()
                                 ? row.values[1].AsDoubleExact()
                                 : static_cast<double>(row.values[1].AsInt());
        series[row.window_start][exchange] = count;
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }
  std::printf("sampling: %zu of %zu PresentationServers chosen\n\n",
              submitted->hosts_installed, submitted->hosts_targeted);

  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  std::printf("Figure-12 shape: impressions per exchange per 10 s window "
              "(estimated from the 10%% x 10%% sample)\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "window(s)", "ExchA", "ExchB",
              "ExchC", "ExchD");
  double d_before = 0;
  double d_after = 0;
  int before_windows = 0;
  int after_windows = 0;
  for (const auto& [start, by_exchange] : series) {
    std::printf("%-10lld", static_cast<long long>(start / kMicrosPerSecond));
    for (int64_t e = 1; e <= 4; ++e) {
      const auto it = by_exchange.find(e);
      std::printf(" %10.0f", it == by_exchange.end() ? 0.0 : it->second);
    }
    std::printf("\n");
    const auto it = by_exchange.find(4);
    const double d = it == by_exchange.end() ? 0.0 : it->second;
    if (start < kActivation) {
      d_before += d;
      ++before_windows;
    } else {
      d_after += d;
      ++after_windows;
    }
  }
  const double avg_before =
      before_windows == 0 ? 0 : d_before / before_windows;
  const double avg_after = after_windows == 0 ? 0 : d_after / after_windows;
  std::printf("\nExchange D impressions/window: %.0f before activation, "
              "%.0f after\n",
              avg_before, avg_after);
  std::printf("%s\n", avg_after > 10 * (avg_before + 1)
                          ? "=> healthy integration: traffic ramped at "
                            "activation (matches the paper)"
                          : "=> integration problem: no traffic after "
                            "activation");
  return 0;
}
