// Audience reach: the probabilistic aggregates in one sitting.
//
// Campaign ops wants, live: how many distinct users the platform reached,
// who the heaviest users are (frequency outliers feed the spam pipeline of
// Section 8.1), and how reach splits by device OS. COUNT_DISTINCT runs on
// HyperLogLog and TOPK on SpaceSaving — bounded memory at ScrubCentral no
// matter how many users flow by — and device OS comes from a nested-object
// path into the bid event.

#include <cstdio>
#include <map>
#include <vector>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  SystemConfig config;
  config.seed = 1234;
  config.platform.seed = 1234;
  ScrubSystem system(config);

  const TimeMicros kTrace = 30 * kMicrosPerSecond;
  PoissonLoadConfig load;
  load.requests_per_second = 2000;
  load.duration = kTrace;
  load.user_population = 30000;
  load.user_zipf_exponent = 1.1;  // heavy-tailed: some users browse a LOT
  system.workload().SchedulePoissonLoad(load);

  // One query, three aggregate flavours.
  const char* reach_query =
      "SELECT COUNT(*), COUNT_DISTINCT(bid.user_id), "
      "TOPK(5, bid.user_id) FROM bid WINDOW 30 s DURATION 30 s;";
  std::printf("query> %s\n", reach_query);
  uint64_t events = 0;
  int64_t distinct = 0;
  std::vector<std::string> heavy_users;
  Result<SubmittedQuery> q1 =
      system.Submit(reach_query, [&](const ResultRow& row) {
        events = static_cast<uint64_t>(row.values[0].AsInt());
        distinct = row.values[1].AsInt();
        for (const Value& v : row.values[2].AsList()) {
          heavy_users.push_back(v.AsString());
        }
      });

  // Reach by device OS, through the nested object.
  const char* os_query =
      "SELECT bid.device.os, COUNT_DISTINCT(bid.user_id) FROM bid "
      "GROUP BY bid.device.os WINDOW 30 s DURATION 30 s;";
  std::printf("query> %s\n\n", os_query);
  std::map<std::string, int64_t> reach_by_os;
  Result<SubmittedQuery> q2 =
      system.Submit(os_query, [&](const ResultRow& row) {
        reach_by_os[row.values[0].AsString()] = row.values[1].AsInt();
      });
  if (!q1.ok() || !q2.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 (!q1.ok() ? q1.status() : q2.status()).ToString().c_str());
    return 1;
  }

  system.RunUntil(kTrace + kMicrosPerSecond);
  system.Drain();

  std::printf("bid requests:      %llu\n",
              static_cast<unsigned long long>(events));
  std::printf("distinct users:    ~%lld (HyperLogLog estimate)\n",
              static_cast<long long>(distinct));
  std::printf("heaviest users (SpaceSaving top-5, user:requests):\n");
  for (const std::string& entry : heavy_users) {
    std::printf("  %s\n", entry.c_str());
  }
  std::printf("distinct reach by device OS:\n");
  int64_t os_sum = 0;
  for (const auto& [os, n] : reach_by_os) {
    std::printf("  %-10s ~%lld users\n", os.c_str(),
                static_cast<long long>(n));
    os_sum += n;
  }
  // Sanity: per-OS reach partitions total reach (each user has one OS).
  const double partition_err =
      std::abs(static_cast<double>(os_sum - distinct)) /
      static_cast<double>(distinct);
  std::printf("\npartition check: sum(per-OS reach)=%lld vs total=%lld "
              "(%.1f%% apart; both are ~1%%-error sketches)\n",
              static_cast<long long>(os_sum),
              static_cast<long long>(distinct), 100 * partition_err);
  return partition_err < 0.05 ? 0 : 1;
}
