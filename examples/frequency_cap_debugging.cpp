// Case study 8.6 — an incorrectly set field (lost profile updates).
//
// A campaign is capped at one ad per user per day, yet users report seeing
// more. The injected fault: a fraction of ProfileStore updates is silently
// lost, so the recorded serve count lags the truth and the frequency-cap
// filter lets over-served users through. The troubleshooting query counts
// impressions of the capped line item per user per day; any user with a
// count above the cap is direct evidence, and the profile_update events
// (applied = false) point at the root cause.

#include <cstdio>
#include <map>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  SystemConfig config;
  config.seed = 99;
  config.platform.seed = 99;
  config.platform.profile_update_loss = 0.4;  // the injected fault
  ScrubSystem system(config);

  // One aggressively-capped, aggressively-priced line item so it wins a lot.
  LineItem capped;
  capped.id = 3333;
  capped.campaign_id = 33;
  capped.advisory_bid_price = 6.0;
  capped.frequency_cap_per_day = 1;
  system.platform().AddLineItem(capped);

  PoissonLoadConfig load;
  load.requests_per_second = 1500;
  load.duration = 90 * kMicrosPerSecond;
  // Users spaced out so serve-count updates land between a user's
  // requests; over-serving then isolates the injected fault.
  load.user_population = 20000;
  load.user_zipf_exponent = 0.5;
  system.workload().SchedulePoissonLoad(load);

  // Impressions of the capped item per user (windows = the whole trace; a
  // production run would use 1-day windows).
  std::map<int64_t, uint64_t> serves_per_user;
  Result<SubmittedQuery> q1 = system.Submit(
      "SELECT impression.user_id, COUNT(*) FROM impression "
      "WHERE impression.line_item_id = 3333 "
      "GROUP BY impression.user_id WINDOW 90 s DURATION 90 s;",
      [&](const ResultRow& row) {
        serves_per_user[row.values[0].AsInt()] +=
            static_cast<uint64_t>(row.values[1].AsInt());
      });
  // Root cause: profile updates that did not apply.
  uint64_t updates_ok = 0;
  uint64_t updates_lost = 0;
  Result<SubmittedQuery> q2 = system.Submit(
      "SELECT profile_update.applied, COUNT(*) FROM profile_update "
      "WHERE profile_update.line_item_id = 3333 "
      "GROUP BY profile_update.applied WINDOW 90 s DURATION 90 s;",
      [&](const ResultRow& row) {
        const uint64_t n = static_cast<uint64_t>(row.values[1].AsInt());
        if (row.values[0].is_bool() && row.values[0].AsBool()) {
          updates_ok += n;
        } else {
          updates_lost += n;
        }
      });
  if (!q1.ok() || !q2.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 (!q1.ok() ? q1.status() : q2.status()).ToString().c_str());
    return 1;
  }

  system.RunUntil(91 * kMicrosPerSecond);
  system.Drain();

  uint64_t over_cap_users = 0;
  uint64_t worst = 0;
  for (const auto& [user, count] : serves_per_user) {
    if (count > 1) {
      ++over_cap_users;
      worst = std::max(worst, count);
    }
  }
  std::printf("capped line item 3333 (1 ad/user/day):\n");
  std::printf("  users served:            %zu\n", serves_per_user.size());
  std::printf("  users served over cap:   %llu (worst: %llu serves)\n",
              static_cast<unsigned long long>(over_cap_users),
              static_cast<unsigned long long>(worst));
  std::printf("  profile updates applied: %llu, lost: %llu (%.0f%%)\n",
              static_cast<unsigned long long>(updates_ok),
              static_cast<unsigned long long>(updates_lost),
              100.0 * static_cast<double>(updates_lost) /
                  static_cast<double>(std::max<uint64_t>(
                      1, updates_ok + updates_lost)));
  if (over_cap_users > 0 && updates_lost > 0) {
    std::printf("\n=> frequency capping code is fine; the serve counts it "
                "reads are wrong because profile updates are being lost "
                "(matches the paper's diagnosis: erroneous input data)\n");
    return 0;
  }
  std::printf("\n=> no over-serving observed\n");
  return 1;
}
