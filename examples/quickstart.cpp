// Quickstart: bring up the simulated bidding platform, point Scrub at it,
// run one query, print the rows.
//
//   $ ./quickstart
//
// The query is the paper's Figure-9 shape: count bid requests per user over
// tumbling windows, on the BidServers only.

#include <cstdio>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  // 1. A small cluster: 2 data centers of bid/ad/presentation servers, plus
  //    Scrub's own infrastructure (query server + ScrubCentral).
  SystemConfig config;
  config.seed = 42;
  ScrubSystem system(config);

  // 2. Traffic: 500 bid requests per second for 20 simulated seconds.
  PoissonLoadConfig load;
  load.requests_per_second = 500;
  load.duration = 20 * kMicrosPerSecond;
  load.user_population = 2000;
  system.workload().SchedulePoissonLoad(load);

  // 3. A Scrub query. Selection and projection run on the BidServers; the
  //    GROUP BY + COUNT run at ScrubCentral. The query expires on its own
  //    after DURATION.
  std::printf("query> SELECT bid.user_id, COUNT(*) FROM bid\n"
              "       @[SERVICE IN BidServers]\n"
              "       GROUP BY bid.user_id WINDOW 5 s DURATION 20 s;\n\n");
  size_t rows_seen = 0;
  uint64_t busiest_count = 0;
  int64_t busiest_user = -1;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT bid.user_id, COUNT(*) FROM bid @[SERVICE IN BidServers] "
      "GROUP BY bid.user_id WINDOW 5 s DURATION 20 s;",
      [&](const ResultRow& row) {
        ++rows_seen;
        const uint64_t n = static_cast<uint64_t>(row.values[1].AsInt());
        if (n > busiest_count) {
          busiest_count = n;
          busiest_user = row.values[0].AsInt();
        }
        if (rows_seen <= 5) {
          std::printf("row: window=[%lld ms, %lld ms) user=%lld count=%lld\n",
                      static_cast<long long>(row.window_start / 1000),
                      static_cast<long long>(row.window_end / 1000),
                      static_cast<long long>(row.values[0].AsInt()),
                      static_cast<long long>(row.values[1].AsInt()));
        }
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }
  std::printf("query %llu installed on %zu/%zu hosts\n\n",
              static_cast<unsigned long long>(submitted->id),
              submitted->hosts_installed, submitted->hosts_targeted);

  // 4. Run the simulation and let the final windows drain.
  system.RunUntil(21 * kMicrosPerSecond);
  system.Drain();

  const PlatformStats& stats = system.platform().stats();
  std::printf("...\n%zu result rows total\n", rows_seen);
  std::printf("busiest user: %lld with %llu bids in one window\n\n",
              static_cast<long long>(busiest_user),
              static_cast<unsigned long long>(busiest_count));
  std::printf("platform: %llu requests, %llu bids, %llu impressions, "
              "%llu clicks\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.bids),
              static_cast<unsigned long long>(stats.impressions),
              static_cast<unsigned long long>(stats.clicks));
  const OverheadReport overhead = system.ServiceOverhead("BidServers");
  std::printf("BidServer Scrub CPU overhead: %.3f%%\n",
              overhead.scrub_fraction * 100.0);
  return 0;
}
