// Case study 8.5 — line-item cannibalization (paper Figures 18 and 19).
//
// An advertiser's line item λ has budget and loose targeting but serves no
// ads. The troubleshooting query joins auction events (AdServers) with
// impression events (PresentationServers) on the request identifier,
// restricted to auctions λ participated in, and reports per winning line
// item the win count and average winning bid price. The tell: every winner
// in λ's auctions bids far above λ's advisory price — λ is being
// cannibalized. Bumping its advisory price fixes delivery.

#include <cstdio>
#include <map>

#include "src/scrub/scrub_system.h"

using namespace scrub;

int main() {
  SystemConfig config;
  config.seed = 55;
  config.platform.seed = 55;
  ScrubSystem system(config);

  // λ targets everything but carries a low advisory price; a rival pair of
  // high-priced items with the same open targeting outbids it everywhere.
  LineItem lambda;
  lambda.id = 7777;
  lambda.campaign_id = 99;
  lambda.advisory_bid_price = 0.8;
  system.platform().AddLineItem(lambda);
  for (LineItemId id = 7801; id <= 7802; ++id) {
    LineItem rival;
    rival.id = id;
    rival.campaign_id = 98;
    rival.advisory_bid_price = 4.2 + 0.2 * static_cast<double>(id - 7801);
    system.platform().AddLineItem(rival);
  }

  PoissonLoadConfig load;
  load.requests_per_second = 1200;
  load.duration = 60 * kMicrosPerSecond;
  load.user_population = 40000;
  system.workload().SchedulePoissonLoad(load);

  // Figure 19 (reconstructed): join auction and impression on the request
  // id; keep auctions λ participated in; group by the winning line item.
  const char* query =
      "SELECT impression.line_item_id, COUNT(*), "
      "AVG(auction.winning_price) FROM auction, impression "
      "WHERE auction.line_item_ids CONTAINS 7777 "
      "GROUP BY impression.line_item_id WINDOW 60 s DURATION 60 s;";
  std::printf("query> %s\n\n", query);

  struct Row {
    uint64_t wins = 0;
    double avg_price = 0;
  };
  std::map<int64_t, Row> winners;
  Result<SubmittedQuery> submitted =
      system.Submit(query, [&](const ResultRow& row) {
        Row& r = winners[row.values[0].AsInt()];
        r.wins += static_cast<uint64_t>(row.values[1].AsInt());
        if (row.values[2].is_double()) {
          r.avg_price = row.values[2].AsDoubleExact();
        }
      });
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }

  system.RunUntil(61 * kMicrosPerSecond);
  system.Drain();

  std::printf("Figure-18 shape: winners of auctions containing λ=7777\n");
  std::printf("%-14s %-10s %-18s\n", "line item", "wins", "avg winning bid");
  uint64_t lambda_wins = 0;
  double min_winning = 1e9;
  for (const auto& [item, row] : winners) {
    std::printf("%-14lld %-10llu $%.3f\n", static_cast<long long>(item),
                static_cast<unsigned long long>(row.wins), row.avg_price);
    if (item == 7777) {
      lambda_wins = row.wins;
    }
    if (row.avg_price < min_winning && row.wins > 0) {
      min_winning = row.avg_price;
    }
  }
  std::printf("\nλ advisory price: $0.80; lowest observed winning bid: "
              "$%.3f\n",
              min_winning);
  if (lambda_wins == 0 && min_winning > 0.8 * 1.2) {
    std::printf("=> λ never wins and its whole price band sits below every "
                "winner: cannibalization confirmed. Raise λ's advisory "
                "price.\n");
    return 0;
  }
  std::printf("=> no cannibalization signature\n");
  return 1;
}
