// ScrubQL static query linter.
//
// Scrub's promise is that troubleshooting queries run against production
// hosts under strict SLOs, which means a bad query — an unbounded GROUP BY,
// an exact distinct count over millions of users, a sampling plan whose
// Eq. 1-3 error bound makes the answer useless — must be caught *before* it
// is admitted to the fleet, not after it has burned host CPU. The paper
// enforces this operationally; this pass enforces it statically: rule-based
// analysis over an AnalyzedQuery plus the cost model, emitting structured
// diagnostics with severity, stable rule id, message, and source span.
//
// Error-severity diagnostics reject admission at the QueryServer; warnings
// and notes ride back to the submitter alongside the accepted query, and all
// of them render in EXPLAIN output and the scrubql REPL's :lint command.

#ifndef SRC_LINT_LINT_H_
#define SRC_LINT_LINT_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/cost_model.h"
#include "src/common/status.h"
#include "src/query/analyzer.h"

namespace scrub {

enum class LintSeverity { kError, kWarning, kNote };

// "error", "warning", "note".
const char* LintSeverityName(LintSeverity severity);

// Stable rule identifiers (clang-tidy style). Tests, suppression lists and
// the DESIGN.md rule catalog key off these strings.
namespace lint_rules {
// (a) GROUP BY over a high-cardinality field with no TOPK bound.
inline constexpr std::string_view kUnboundedGroupBy =
    "scrubql-unbounded-group-by";
// (b) Distinct-value enumeration where COUNT_DISTINCT (HLL) would do.
inline constexpr std::string_view kExactDistinct = "scrubql-exact-distinct";
// (c) Sampling plan whose predicted Eq. 1-3 relative error is useless.
inline constexpr std::string_view kSamplingError = "scrubql-sampling-error";
// (d) Full-fleet target with no host/event sampling.
inline constexpr std::string_view kFullFleet = "scrubql-full-fleet";
// (e) Field ships with every event but is never read at ScrubCentral.
inline constexpr std::string_view kDeadProjection = "scrubql-dead-projection";
// (f) Host-side WHERE with estimated selectivity ~ 1 (ships everything).
inline constexpr std::string_view kIneffectiveFilter =
    "scrubql-ineffective-filter";
// (g) Window shorter than the agent flush interval.
inline constexpr std::string_view kWindowUnderFlush =
    "scrubql-window-under-flush";
// (h) Query span consuming most of the admission duration budget.
inline constexpr std::string_view kSpanBudget = "scrubql-span-budget";
// (i) Allowed-lateness budget too small for even one retransmit round trip:
// a single lost batch at a window's last flush arrives after the window
// closed, so faults silently become missing data.
inline constexpr std::string_view kNoRetryHeadroom =
    "scrubql-no-retry-headroom";
// (j) Informational: a sampled, grouped COUNT/SUM gets a per-group Eq. 2-3
// error bound when executed on the sharded central (the coordinator's
// Finalize merges per-(group, host) readings globally); a single instance
// reports the Eq. 1 ratio estimate without bounds for grouped plans.
inline constexpr std::string_view kSamplingShardedEstimate =
    "scrubql-sampling-sharded-estimate";
// Semantic rules driven by the expression-IR abstract interpreter
// (src/plan/expr_analysis.h).
// (k) WHERE conjunct provably unsatisfiable, alone or jointly with the other
// conjuncts on the same field (`status == 200 AND status >= 500`): the
// query ships nothing. Warning, not error: the query is well-formed and the
// planner executes it (as a no-op filter) either way.
inline constexpr std::string_view kFilterContradiction =
    "scrubql-filter-contradiction";
// (l) Conjunct always true, or implied by the other conjuncts on the same
// field: it filters nothing and is pruned from the executed program.
inline constexpr std::string_view kRedundantConjunct =
    "scrubql-redundant-conjunct";
// (m) Division whose divisor is provably zero: the result is always NULL.
inline constexpr std::string_view kDivisionByZero =
    "scrubql-division-by-zero";
// (n) Ordered comparison (<, <=, >, >=) with an always-NULL operand: never
// true under ScrubQL null semantics.
inline constexpr std::string_view kNullComparison =
    "scrubql-null-comparison";
// (o) Estimated per-window central state (group maps, join buffers) exceeds
// the configured per-query state budget: the query runs under memory
// pressure from its first full window — every window spills to disk
// (lossless but slower) or, with spill unconfigured, sheds events with
// fidelity < 1. Only fires when a budget is configured.
inline constexpr std::string_view kWindowStateBudget =
    "scrubql-window-state-budget";
// (p) Join reads from more sources than the columnar wire's section cap
// (kMaxColumnJoinSections): agents silently fall back to row staging for
// the query — correct, but without vectorized selection or the dictionary
// wire encoding, and invisible unless you know to look.
inline constexpr std::string_view kJoinWidthRowFallback =
    "scrubql-join-width-row-fallback";
}  // namespace lint_rules

struct Diagnostic {
  LintSeverity severity = LintSeverity::kWarning;
  std::string rule;     // one of lint_rules::*
  std::string message;
  SourceSpan span;      // invalid span => applies to the whole query
};

struct LintOptions {
  // Fleet shape assumptions. The query server overrides `fleet_hosts` with
  // the live registry count before admission linting.
  uint64_t fleet_hosts = 100;
  double events_per_host_per_second = 1000.0;

  // Eq. 1-3 prediction knobs (rule scrubql-sampling-error). Host-to-host
  // and within-host coefficients of variation stand in for the unknown
  // s_u / s_i of Equation 3; the defaults model a mildly skewed fleet.
  double host_total_cv = 0.25;
  double reading_cv = 1.0;
  double confidence = 0.95;
  double max_relative_error = 0.5;  // fire above +/-50% predicted error

  // Rule thresholds.
  uint64_t high_cardinality_threshold = 10'000;   // scrubql-unbounded-group-by
  double max_where_selectivity = 0.95;            // scrubql-ineffective-filter
  TimeMicros flush_interval_micros = 500 * kMicrosPerMilli;  // window rule
  double span_budget_fraction = 0.5;              // scrubql-span-budget
  TimeMicros max_duration_micros = 24 * kMicrosPerHour;
  // scrubql-no-retry-headroom: how long central waits for stragglers, and
  // one retransmit round trip (retry backoff + two one-way transits) as the
  // deployment sees it. retry_rtt_micros == 0 disables the rule; the
  // ScrubSystem wires both from its live configuration.
  TimeMicros allowed_lateness_micros = 2 * kMicrosPerSecond;
  TimeMicros retry_rtt_micros = 0;
  // scrubql-window-state-budget: central's per-query window-state budget in
  // logical bytes (CentralConfig::query_state_budget_bytes). 0 disables the
  // rule; the ScrubSystem wires it from its live configuration.
  uint64_t query_state_budget_bytes = 0;

  // Known distinct-value counts, keyed "event_type.field" (a bare "field"
  // key matches any source). Fields with unknown cardinality never trip the
  // group-by rule; __request_id is always treated as unbounded.
  std::unordered_map<std::string, uint64_t> field_cardinality;

  // Unit costs quoted in wire/CPU-waste messages.
  CostModel costs;
};

// Runs every rule over an analyzed query. Diagnostics come back ordered by
// rule id, errors never after warnings of the same rule. An empty vector
// means the query is clean.
std::vector<Diagnostic> LintQuery(const AnalyzedQuery& analyzed,
                                  const LintOptions& options = {});

bool HasLintErrors(const std::vector<Diagnostic>& diagnostics);

// "error[scrubql-unbounded-group-by]: ..."; with the original query text,
// valid spans render the offending snippet underneath.
std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             std::string_view query_text = {});
std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view query_text = {});

// Convenience: parse + analyze + lint. Parse/analysis failures surface as
// the error status (they are hard errors, not lint findings).
Result<std::vector<Diagnostic>> LintQueryText(
    std::string_view text, const SchemaRegistry& registry,
    const AnalyzerOptions& analyzer_options = {},
    const LintOptions& options = {});

// Predicted steady-state central CPU demand of a query, in nanoseconds per
// second of wall time, from the same fleet/traffic assumptions the lint
// rules use and the cost model's per-row central unit costs: shipped
// events/sec (fleet x per-host rate x sampling x WHERE selectivity) times
// per-event central work (ingest + join probe if joining + one group update
// per aggregate). The QueryServer's predicted-cost admission check sums this
// over live queries against ServerConfig::central_cpu_budget_ns_per_sec;
// calibrating the cost model from observed operator metrics
// (ScrubSystem::CalibrateLintCosts) tightens the prediction.
uint64_t PredictCentralCostNsPerSec(const AnalyzedQuery& analyzed,
                                    const LintOptions& options);

// Heuristic selectivity of a (type-checked) boolean predicate, in [0, 1].
// Equality against a field with known cardinality contributes 1/cardinality;
// range comparisons 1/3; unknown equality 1/20. Exposed for tests and for
// the sampling-error rule, which derives COUNT indicator variance from it.
double EstimateSelectivity(const Expr& predicate, const LintOptions& options);

}  // namespace scrub

#endif  // SRC_LINT_LINT_H_
