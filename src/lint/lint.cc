#include "src/lint/lint.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/plan/expr_analysis.h"
#include "src/plan/expr_ir.h"
#include "src/sketch/stats.h"

namespace scrub {

const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kNote:
      return "note";
  }
  return "?";
}

namespace {

// Cardinality sentinel for fields that are unique per request.
constexpr uint64_t kUnboundedCardinality = ~uint64_t{0};

std::string FieldKey(const Expr& ref) {
  std::string key = ref.qualifier.empty() ? ref.field
                                          : ref.qualifier + "." + ref.field;
  for (const std::string& p : ref.path) {
    key += "." + p;
  }
  return key;
}

std::string BareFieldKey(const Expr& ref) {
  std::string key = ref.field;
  for (const std::string& p : ref.path) {
    key += "." + p;
  }
  return key;
}

std::string DurationText(TimeMicros micros) {
  if (micros >= kMicrosPerHour && micros % kMicrosPerHour == 0) {
    return StrFormat("%lldh", static_cast<long long>(micros / kMicrosPerHour));
  }
  if (micros >= kMicrosPerMinute && micros % kMicrosPerMinute == 0) {
    return StrFormat("%lldm",
                     static_cast<long long>(micros / kMicrosPerMinute));
  }
  if (micros >= kMicrosPerSecond && micros % kMicrosPerSecond == 0) {
    return StrFormat("%llds",
                     static_cast<long long>(micros / kMicrosPerSecond));
  }
  if (micros >= kMicrosPerMilli && micros % kMicrosPerMilli == 0) {
    return StrFormat("%lldms",
                     static_cast<long long>(micros / kMicrosPerMilli));
  }
  return StrFormat("%lldus", static_cast<long long>(micros));
}

std::string BytesText(uint64_t bytes) {
  if (bytes >= 1024ull * 1024 * 1024) {
    return StrFormat("%.1f GiB",
                     static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  }
  if (bytes >= 1024ull * 1024) {
    return StrFormat("%.1f MiB", static_cast<double>(bytes) / (1024.0 * 1024));
  }
  if (bytes >= 1024) {
    return StrFormat("%.1f KiB", static_cast<double>(bytes) / 1024.0);
  }
  return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
}

// Equality selectivity: 1/cardinality when one side is a field with known
// cardinality, otherwise a default guess.
double EqualitySelectivity(const Expr& e, const LintOptions& options) {
  constexpr double kDefaultEqSelectivity = 0.05;
  for (const ExprPtr& child : e.children) {
    if (child->kind != ExprKind::kFieldRef) {
      continue;
    }
    if (child->field == kRequestIdField) {
      return 1e-9;
    }
    auto it = options.field_cardinality.find(FieldKey(*child));
    if (it == options.field_cardinality.end()) {
      it = options.field_cardinality.find(BareFieldKey(*child));
    }
    if (it != options.field_cardinality.end() && it->second > 0) {
      return std::min(1.0, 1.0 / static_cast<double>(it->second));
    }
  }
  return kDefaultEqSelectivity;
}

int CountAggregateNodes(const Expr& e) {
  int n = e.kind == ExprKind::kAggregate ? 1 : 0;
  for (const ExprPtr& child : e.children) {
    n += CountAggregateNodes(*child);
  }
  return n;
}

class Linter {
 public:
  Linter(const AnalyzedQuery& analyzed, const LintOptions& options)
      : aq_(analyzed), q_(analyzed.query), options_(options) {}

  std::vector<Diagnostic> Run() {
    CheckUnboundedGroupBy();
    CheckExactDistinct();
    CheckSamplingError();
    CheckSamplingShardedEstimate();
    CheckFullFleet();
    CheckDeadProjection();
    CheckIneffectiveFilter();
    CheckWindowUnderFlush();
    CheckSpanBudget();
    CheckRetryHeadroom();
    CheckWindowStateBudget();
    CheckJoinWidthRowFallback();
    CheckSemanticIr();
    return std::move(diags_);
  }

 private:
  void Emit(LintSeverity severity, std::string_view rule, std::string message,
            SourceSpan span) {
    Diagnostic d;
    d.severity = severity;
    d.rule = std::string(rule);
    d.message = std::move(message);
    d.span = span;
    diags_.push_back(std::move(d));
  }

  // Known distinct-value count of a grouped field; 0 = unknown.
  uint64_t CardinalityOf(const Expr& ref) const {
    if (ref.field == kRequestIdField) {
      return kUnboundedCardinality;  // one group per request
    }
    auto it = options_.field_cardinality.find(FieldKey(ref));
    if (it == options_.field_cardinality.end()) {
      it = options_.field_cardinality.find(BareFieldKey(ref));
    }
    return it == options_.field_cardinality.end() ? 0 : it->second;
  }

  bool SelectHasTopK() const {
    for (const SelectItem& item : q_.select) {
      if (HasAggregateFunc(*item.expr, AggregateFunc::kTopK)) {
        return true;
      }
    }
    return false;
  }

  static bool HasAggregateFunc(const Expr& e, AggregateFunc func) {
    if (e.kind == ExprKind::kAggregate && e.agg_func == func) {
      return true;
    }
    for (const ExprPtr& child : e.children) {
      if (HasAggregateFunc(*child, func)) {
        return true;
      }
    }
    return false;
  }

  // --- (a) scrubql-unbounded-group-by -------------------------------------
  //
  // Paper Section 3.2: grouped state lives at ScrubCentral for the whole
  // window; a group per user (or per request) over a production fleet is an
  // unbounded memory and result-set commitment. SpaceSaving (TOPK) bounds it.
  void CheckUnboundedGroupBy() {
    if (q_.group_by.empty() || SelectHasTopK()) {
      return;
    }
    for (const ExprPtr& g : q_.group_by) {
      const uint64_t card = CardinalityOf(*g);
      if (card == kUnboundedCardinality) {
        Emit(LintSeverity::kError, lint_rules::kUnboundedGroupBy,
             StrFormat("GROUP BY %s creates one group per request; central "
                       "state is unbounded. Bound it with TOPK(k, expr) "
                       "(SpaceSaving) or group on a coarser field",
                       g->ToString().c_str()),
             g->span);
      } else if (card > options_.high_cardinality_threshold) {
        Emit(LintSeverity::kError, lint_rules::kUnboundedGroupBy,
             StrFormat("GROUP BY %s spans ~%llu distinct values (threshold "
                       "%llu); every group holds live state at ScrubCentral "
                       "for the whole window. Bound it with TOPK(k, expr) "
                       "(SpaceSaving) or group on a coarser field",
                       g->ToString().c_str(),
                       static_cast<unsigned long long>(card),
                       static_cast<unsigned long long>(
                           options_.high_cardinality_threshold)),
             g->span);
      }
    }
  }

  // --- (b) scrubql-exact-distinct ------------------------------------------
  //
  // A SELECT list made purely of group keys enumerates every distinct value
  // through ScrubCentral. If the troubleshooter only needs the count, the
  // HyperLogLog COUNT_DISTINCT aggregate ships a constant-size sketch.
  void CheckExactDistinct() {
    if (q_.group_by.empty() || aq_.has_aggregates) {
      return;
    }
    // No aggregates at all: every select item is a grouping field (the
    // analyzer enforced that), so this is a distinct-value enumeration.
    const Expr& key = *q_.group_by[0];
    Emit(LintSeverity::kWarning, lint_rules::kExactDistinct,
         StrFormat("this query enumerates every distinct value of %s "
                   "through ScrubCentral; if only the count matters, "
                   "COUNT_DISTINCT(%s) (HyperLogLog) ships a constant-size "
                   "sketch instead",
                   key.ToString().c_str(), key.ToString().c_str()),
         q_.spans.group_by.IsValid() ? q_.spans.group_by : key.span);
  }

  // --- (c) scrubql-sampling-error -------------------------------------------
  //
  // Predicts the Eq. 1-3 relative error bound of a sampled COUNT/SUM before
  // any event is collected, from the fleet-shape assumptions in LintOptions:
  // N hosts, n = N*host_rate sampled, M events/host/window, m = M*event_rate
  // sampled. With per-host totals varying by cv_u and readings by cv_r,
  //
  //   Var/tau^2 = (N-n)*cv_u^2 / (n*N)            (stage 1 of Eq. 3)
  //             + (M-m)*cv_r^2 / (m*M*N)          (stage 2 of Eq. 3)
  //   rel_err   = t_{n-1, 1-alpha/2} * sqrt(Var/tau^2)   (Eq. 2)
  void CheckSamplingError() {
    if (aq_.is_join()) {
      return;  // the estimator covers single-source COUNT/SUM only
    }
    const bool sampling =
        q_.host_sample_rate < 1.0 || q_.event_sample_rate < 1.0;
    if (!sampling) {
      return;
    }
    bool has_count = false;
    bool has_sum = false;
    for (const SelectItem& item : q_.select) {
      has_count |= HasAggregateFunc(*item.expr, AggregateFunc::kCount);
      has_sum |= HasAggregateFunc(*item.expr, AggregateFunc::kSum);
    }
    if (!has_count && !has_sum) {
      return;  // nothing scales under Eq. 1
    }

    const SourceSpan span = q_.spans.sample_events.IsValid()
                                ? q_.spans.sample_events
                                : q_.spans.sample_hosts;
    const double big_n =
        static_cast<double>(std::max<uint64_t>(1, options_.fleet_hosts));
    const double n =
        std::max(1.0, std::round(big_n * q_.host_sample_rate));
    if (q_.host_sample_rate < 1.0 && n < 2.0) {
      Emit(LintSeverity::kWarning, lint_rules::kSamplingError,
           StrFormat("SAMPLE HOSTS %.4g%% of ~%.0f hosts selects a single "
                     "host; the Eq. 2 t-quantile is undefined at n=1 and the "
                     "error bound degrades to infinity. Raise the host "
                     "sampling rate",
                     q_.host_sample_rate * 100, big_n),
           q_.spans.sample_hosts);
      return;
    }

    const double window_seconds =
        static_cast<double>(q_.window_micros) /
        static_cast<double>(kMicrosPerSecond);
    const double big_m =
        options_.events_per_host_per_second * window_seconds;
    if (big_m < 1.0) {
      return;  // no traffic assumption to predict against
    }
    const double m = std::max(1.0, big_m * q_.event_sample_rate);

    // Within-host reading variability: SUM readings use the configured cv;
    // COUNT readings are selection indicators, whose cv follows from the
    // WHERE selectivity p: sqrt((1-p)/p), capped to stay finite.
    double reading_cv = has_sum ? options_.reading_cv : 0.0;
    if (has_count) {
      const double p = q_.where == nullptr
                           ? 1.0
                           : EstimateSelectivity(*q_.where, options_);
      const double indicator_cv =
          p <= 0.01 ? 10.0 : std::sqrt((1.0 - p) / p);
      reading_cv = std::max(reading_cv, indicator_cv);
    }

    double rel_var = 0.0;
    if (big_n > n) {
      rel_var += (big_n - n) * options_.host_total_cv *
                 options_.host_total_cv / (n * big_n);
    }
    if (big_m > m) {
      rel_var += (big_m - m) * reading_cv * reading_cv / (m * big_m * n);
    }
    if (rel_var <= 0.0) {
      return;
    }
    const double alpha = 1.0 - options_.confidence;
    const double t = StudentTQuantile(1.0 - alpha / 2.0,
                                      std::max(1.0, n - 1.0));
    const double rel_err = t * std::sqrt(rel_var);
    if (rel_err <= options_.max_relative_error) {
      return;
    }
    Emit(LintSeverity::kWarning, lint_rules::kSamplingError,
         StrFormat("predicted relative error of the sampled %s is +/-%.0f%% "
                   "at %.0f%% confidence (Eqs. 1-3 with N=%.0f hosts, "
                   "n=%.0f sampled, ~%.0f events/host/window, m=%.0f "
                   "sampled), above the +/-%.0f%% usefulness bound; raise "
                   "the SAMPLE rates or widen WINDOW",
                   has_count && !has_sum ? "COUNT" : "SUM",
                   rel_err * 100, options_.confidence * 100, big_n, n, big_m,
                   m, options_.max_relative_error * 100),
         span);
  }

  // --- (j) scrubql-sampling-sharded-estimate ---------------------------------
  //
  // Purely informational. A sampled + grouped COUNT/SUM on a single central
  // instance only gets the Eq. 1 ratio scale (per-host readings are kept per
  // window, not per group). Under the sharded deployment the coordinator's
  // Finalize merges per-(group, host) readings globally, so the same query
  // reports a full Eq. 2-3 error bound per group. Troubleshooters reading a
  // grouped estimate should know which deployment produced it.
  void CheckSamplingShardedEstimate() {
    if (q_.group_by.empty() || aq_.is_join()) {
      return;
    }
    const bool sampling =
        q_.host_sample_rate < 1.0 || q_.event_sample_rate < 1.0;
    if (!sampling) {
      return;
    }
    bool has_scaled = false;
    for (const SelectItem& item : q_.select) {
      has_scaled |= HasAggregateFunc(*item.expr, AggregateFunc::kCount);
      has_scaled |= HasAggregateFunc(*item.expr, AggregateFunc::kSum);
    }
    if (!has_scaled) {
      return;  // nothing scales under Eq. 1, so no estimate to bound
    }
    const SourceSpan span = q_.spans.sample_events.IsValid()
                                ? q_.spans.sample_events
                                : q_.spans.sample_hosts;
    Emit(LintSeverity::kNote, lint_rules::kSamplingShardedEstimate,
         "sampled grouped COUNT/SUM: on the sharded central each group's "
         "estimate carries a per-group Eq. 2-3 error bound (the coordinator "
         "merges per-(group, host) readings globally at Finalize); a single "
         "instance reports the Eq. 1 ratio scale without bounds for grouped "
         "plans",
         span);
  }

  // --- (d) scrubql-full-fleet -----------------------------------------------
  //
  // An unrestricted @[...] with no sampling installs the query object on
  // every monitorable host (Section 3.2, "Target hosts"): the blast radius
  // the target clause exists to avoid.
  void CheckFullFleet() {
    if (!q_.targets.IsUnrestricted() || q_.host_sample_rate < 1.0 ||
        q_.event_sample_rate < 1.0) {
      return;
    }
    Emit(LintSeverity::kWarning, lint_rules::kFullFleet,
         StrFormat("no @[...] target and no sampling: the query object "
                   "installs on every monitorable host (~%llu) and every "
                   "matching event pays filter/projection cost. Scope with "
                   "@[SERVICE IN ...] or add SAMPLE HOSTS/EVENTS",
                   static_cast<unsigned long long>(options_.fleet_hosts)),
         q_.spans.from);
  }

  // --- (e) scrubql-dead-projection -------------------------------------------
  //
  // The host plan ships every field the query references anywhere, including
  // fields only the host-side WHERE reads. Those values cross the wire on
  // every shipped event and ScrubCentral never looks at them.
  void CheckDeadProjection() {
    // Fields the central side actually reads: select list + group keys.
    std::vector<std::unordered_set<std::string>> central(aq_.schemas.size());
    for (const SelectItem& item : q_.select) {
      CollectFieldRefs(*item.expr, &central);
    }
    for (const ExprPtr& g : q_.group_by) {
      CollectFieldRefs(*g, &central);
    }

    for (size_t i = 0; i < aq_.schemas.size(); ++i) {
      for (const std::string& field : aq_.fields_per_source[i]) {
        if (aq_.schemas[i]->FieldIndex(field) < 0) {
          continue;  // system fields ride in the event header for free
        }
        if (central[i].count(field) > 0) {
          continue;
        }
        Emit(LintSeverity::kNote, lint_rules::kDeadProjection,
             StrFormat("field '%s.%s' is only read by the host-side WHERE; "
                       "it still ships with every selected event (+%lld ns "
                       "projection plus its wire bytes) and ScrubCentral "
                       "never reads it",
                       q_.sources[i].c_str(), field.c_str(),
                       static_cast<long long>(
                           options_.costs.projection_per_field_ns)),
             SpanOfFieldInWhere(static_cast<int>(i), field));
      }
    }
  }

  void CollectFieldRefs(
      const Expr& e,
      std::vector<std::unordered_set<std::string>>* per_source) const {
    if (e.kind == ExprKind::kFieldRef) {
      for (size_t i = 0; i < q_.sources.size(); ++i) {
        if (q_.sources[i] == e.qualifier) {
          (*per_source)[i].insert(e.field);
          return;
        }
      }
      return;
    }
    for (const ExprPtr& child : e.children) {
      CollectFieldRefs(*child, per_source);
    }
  }

  SourceSpan SpanOfFieldInWhere(int source, const std::string& field) const {
    for (size_t c = 0; c < aq_.conjuncts.size(); ++c) {
      if (aq_.conjunct_source[c] != source && aq_.conjunct_source[c] != -1) {
        continue;
      }
      const Expr* ref = FindFieldRef(*aq_.conjuncts[c], source, field);
      if (ref != nullptr && ref->span.IsValid()) {
        return ref->span;
      }
    }
    return q_.spans.where;
  }

  const Expr* FindFieldRef(const Expr& e, int source,
                           const std::string& field) const {
    if (e.kind == ExprKind::kFieldRef && e.field == field &&
        e.qualifier == q_.sources[static_cast<size_t>(source)]) {
      return &e;
    }
    for (const ExprPtr& child : e.children) {
      const Expr* found = FindFieldRef(*child, source, field);
      if (found != nullptr) {
        return found;
      }
    }
    return nullptr;
  }

  // --- (f) scrubql-ineffective-filter ----------------------------------------
  //
  // A WHERE whose estimated selectivity is ~1 pays predicate evaluation on
  // every event and then ships (nearly) every event anyway: the query is
  // full logging wearing a filter.
  void CheckIneffectiveFilter() {
    if (q_.where == nullptr) {
      return;
    }
    const double selectivity = EstimateSelectivity(*q_.where, options_);
    if (selectivity < options_.max_where_selectivity) {
      return;
    }
    const int terms = CountNodes(*q_.where);
    Emit(LintSeverity::kWarning, lint_rules::kIneffectiveFilter,
         StrFormat("WHERE keeps an estimated %.0f%% of events: hosts pay "
                   "~%lld ns/event evaluating it and still ship nearly "
                   "everything - effectively full logging. Tighten the "
                   "predicate or add SAMPLE EVENTS",
                   selectivity * 100,
                   static_cast<long long>(terms *
                                          options_.costs.predicate_term_ns)),
         q_.spans.where.IsValid() ? q_.spans.where : q_.where->span);
  }

  static int CountNodes(const Expr& e) {
    int n = 1;
    for (const ExprPtr& child : e.children) {
      n += CountNodes(*child);
    }
    return n;
  }

  // --- (g) scrubql-window-under-flush ----------------------------------------
  //
  // Agents batch and ship on the flush cadence; a window shorter than it
  // cannot observe fresher data, it only multiplies window bookkeeping.
  void CheckWindowUnderFlush() {
    if (options_.flush_interval_micros <= 0 ||
        q_.window_micros >= options_.flush_interval_micros) {
      return;
    }
    Emit(LintSeverity::kWarning, lint_rules::kWindowUnderFlush,
         StrFormat("WINDOW %s is shorter than the agent flush interval "
                   "(%s): several windows' partials arrive in one batch, so "
                   "results cannot be fresher than the flush cadence. Use "
                   "WINDOW >= %s",
                   DurationText(q_.window_micros).c_str(),
                   DurationText(options_.flush_interval_micros).c_str(),
                   DurationText(options_.flush_interval_micros).c_str()),
         q_.spans.window);
  }

  // --- (h) scrubql-span-budget ------------------------------------------------
  //
  // Every query has a finite span so a forgotten one cannot load the system
  // forever; a span that consumes most of the admission budget holds its
  // host-side query objects live for that whole time.
  void CheckSpanBudget() {
    const double budget = options_.span_budget_fraction *
                          static_cast<double>(options_.max_duration_micros);
    if (options_.max_duration_micros <= 0 ||
        static_cast<double>(q_.duration_micros) <= budget) {
      return;
    }
    Emit(LintSeverity::kWarning, lint_rules::kSpanBudget,
         StrFormat("DURATION %s consumes %.0f%% of the %s admission budget; "
                   "the query object stays installed on every targeted host "
                   "for that whole span. Prefer a shorter DURATION and "
                   "resubmission",
                   DurationText(q_.duration_micros).c_str(),
                   100.0 * static_cast<double>(q_.duration_micros) /
                       static_cast<double>(options_.max_duration_micros),
                   DurationText(options_.max_duration_micros).c_str()),
         q_.spans.duration);
  }

  // --- (i) scrubql-no-retry-headroom -----------------------------------------
  //
  // Reliable delivery retries a lost batch on the next flush round, and the
  // retried copy still has to cross the network. If central's allowed
  // lateness is smaller than one flush interval plus that round trip, a
  // batch lost at a window's final flush can never make it back before the
  // window closes: every network fault silently becomes missing data
  // instead of recovered data.
  void CheckRetryHeadroom() {
    if (options_.retry_rtt_micros <= 0 || q_.window_micros <= 0) {
      return;  // rule disabled, or no windows to close
    }
    const TimeMicros needed =
        options_.flush_interval_micros + options_.retry_rtt_micros;
    if (options_.allowed_lateness_micros >= needed) {
      return;
    }
    Emit(LintSeverity::kWarning, lint_rules::kNoRetryHeadroom,
         StrFormat("allowed lateness %s leaves no room for one retransmit "
                   "round trip (flush %s + retry %s = %s): a batch lost at a "
                   "window's last flush arrives after the window closed and "
                   "is dropped, not recovered",
                   DurationText(options_.allowed_lateness_micros).c_str(),
                   DurationText(options_.flush_interval_micros).c_str(),
                   DurationText(options_.retry_rtt_micros).c_str(),
                   DurationText(needed).c_str()),
         q_.spans.window);
  }

  // --- (o) scrubql-window-state-budget ---------------------------------------
  //
  // Predicts the live central state one window of this query holds — the
  // same logical sizing the executor's MemoryAccountant charges — and warns
  // when the prediction exceeds the configured per-query budget: the query
  // would run under memory pressure from its first full window, spilling
  // every window to disk when a spill directory is configured (lossless,
  // slower) or shedding events with fidelity < 1 when it is not.
  void CheckWindowStateBudget() {
    if (options_.query_state_budget_bytes == 0) {
      return;
    }
    // Mirrors the executor's representation-independent charges
    // (src/central/executor.cc): per-group overhead, per-aggregate
    // accumulator, sketch structure, join-buffer entry, plus a rough wire
    // model for buffered join rows.
    constexpr double kGroupStateBytes = 96;
    constexpr double kAccumulatorBytes = 48;
    constexpr double kHllSketchBytes = (1 << 12) + 64;  // default precision
    constexpr double kJoinEntryBytes = 48;
    constexpr double kKeyBytes = 24;
    constexpr double kEventHeaderBytes = 36;
    constexpr double kEventFieldBytes = 24;

    double grouped_bytes = 0;
    double groups = 0;
    if (!q_.group_by.empty() && !SelectHasTopK()) {
      groups = 1;
      for (const ExprPtr& g : q_.group_by) {
        const uint64_t card = CardinalityOf(*g);
        if (card == 0 || card == kUnboundedCardinality) {
          // Unknown cardinality predicts nothing; the unbounded sentinel is
          // already rule (a)'s error.
          groups = 0;
          break;
        }
        groups *= static_cast<double>(card);
      }
      if (groups > 0) {
        double aggregates = 0;
        double sketches = 0;
        for (const SelectItem& item : q_.select) {
          aggregates += CountAggregates(*item.expr);
          if (HasAggregateFunc(*item.expr, AggregateFunc::kCountDistinct)) {
            sketches += 1;
          }
        }
        grouped_bytes =
            groups * (kGroupStateBytes + aggregates * kAccumulatorBytes +
                      sketches * kHllSketchBytes +
                      static_cast<double>(q_.group_by.size()) * kKeyBytes);
      }
    }

    double join_bytes = 0;
    double join_rows = 0;
    if (aq_.is_join() && q_.window_micros > 0) {
      // Join buffers hold every surviving event until window close.
      join_rows = static_cast<double>(options_.fleet_hosts) *
                  options_.events_per_host_per_second *
                  (static_cast<double>(q_.window_micros) / 1e6) *
                  q_.host_sample_rate * q_.event_sample_rate;
      if (q_.where != nullptr) {
        join_rows *= EstimateSelectivity(*q_.where, options_);
      }
      size_t fields = 0;
      for (const auto& per_source : aq_.fields_per_source) {
        fields += per_source.size();
      }
      const double avg_fields =
          static_cast<double>(fields) /
          static_cast<double>(std::max<size_t>(1, aq_.fields_per_source.size()));
      join_bytes = join_rows * (kJoinEntryBytes + kEventHeaderBytes +
                                avg_fields * kEventFieldBytes);
    }

    const double total = grouped_bytes + join_bytes;
    const double budget =
        static_cast<double>(options_.query_state_budget_bytes);
    if (total <= budget) {
      return;
    }
    std::string detail;
    if (grouped_bytes > 0) {
      detail = StrFormat("~%.0f live groups", groups);
    }
    if (join_bytes > 0) {
      if (!detail.empty()) {
        detail += " plus ";
      }
      detail += StrFormat("~%.0f buffered join rows", join_rows);
    }
    const uint64_t total_bytes =
        total > 1e18 ? ~uint64_t{0} : static_cast<uint64_t>(total);
    const SourceSpan span = grouped_bytes >= join_bytes &&
                                    q_.spans.group_by.IsValid()
                                ? q_.spans.group_by
                                : q_.spans.from;
    Emit(LintSeverity::kWarning, lint_rules::kWindowStateBudget,
         StrFormat("estimated per-window central state ~%s (%s) exceeds the "
                   "per-query state budget %s: every window runs under "
                   "memory pressure - lossless disk spill when a spill "
                   "directory is configured, counted shed with fidelity < 1 "
                   "when it is not. Bound the state with TOPK, a coarser "
                   "group key, or SAMPLE EVENTS",
                   BytesText(total_bytes).c_str(), detail.c_str(),
                   BytesText(options_.query_state_budget_bytes).c_str()),
         span);
  }

  // --- (p) scrubql-join-width-row-fallback -----------------------------------
  //
  // The columnar wire format carries at most kMaxColumnJoinSections
  // per-source sections per batch (src/event/wire.h). A join reading from
  // more sources still runs correctly — agents silently stage it row-wise —
  // but without vectorized selection or the dictionary wire encoding the
  // columnar path provides. Surface the fallback so the width is a choice,
  // not a surprise.
  void CheckJoinWidthRowFallback() {
    if (q_.sources.size() <= kMaxColumnJoinSections) {
      return;
    }
    Emit(LintSeverity::kNote, lint_rules::kJoinWidthRowFallback,
         StrFormat("join reads from %zu sources, above the columnar wire's "
                   "%zu-section cap: agents fall back to row staging for "
                   "this query (correct, but without vectorized selection "
                   "or dictionary wire encoding). Split the join or drop "
                   "sources to keep the columnar pipeline",
                   q_.sources.size(), kMaxColumnJoinSections),
         q_.spans.from);
  }

  static int CountAggregates(const Expr& e) {
    int n = e.kind == ExprKind::kAggregate ? 1 : 0;
    for (const ExprPtr& child : e.children) {
      n += CountAggregates(*child);
    }
    return n;
  }

  // --- (k)-(n) semantic rules over the expression IR --------------------------
  //
  // Each WHERE conjunct is lowered to the typed IR and run through the
  // abstract interpreter, exactly as the planner does before installing the
  // filter — so what lint reports is what execution prunes.
  void CheckSemanticIr() {
    const SourceSpan where_span = q_.spans.where;
    for (size_t i = 0; i < q_.sources.size(); ++i) {
      const std::vector<std::string> single_source = {q_.sources[i]};
      const std::vector<SchemaPtr> single_schema = {aq_.schemas[i]};
      std::vector<ExprProgram> programs;
      std::vector<SourceSpan> spans;
      for (size_t c = 0; c < aq_.conjuncts.size(); ++c) {
        const int src = aq_.conjunct_source[c];
        if (src != static_cast<int>(i) && src != -1) {
          continue;
        }
        // Source-free constant conjuncts would be diagnosed once per source;
        // report them only with the first.
        if (src == -1 && i != 0) {
          continue;
        }
        const Expr& e = *aq_.conjuncts[c];
        const SourceSpan span = e.span.IsValid() ? e.span : where_span;
        Result<CompiledExpr> compiled =
            CompileExpr(e, single_source, single_schema);
        if (!compiled.ok()) {
          continue;  // admission rejects it elsewhere
        }
        ExprProgram program = LowerExpr(*compiled, single_schema);
        const ProgramAnalysis analysis = AnalyzeProgram(program);
        if (analysis.predicate == PredicateClass::kAlwaysFalse) {
          Emit(LintSeverity::kWarning, lint_rules::kFilterContradiction,
               "WHERE conjunct can never be true: it filters out every "
               "event, so the query returns nothing",
               span);
        } else if (analysis.predicate == PredicateClass::kAlwaysTrue) {
          Emit(LintSeverity::kWarning, lint_rules::kRedundantConjunct,
               "WHERE conjunct is always true: it filters nothing and is "
               "pruned from the executed filter",
               span);
        }
        for (const AnalysisNote& note : analysis.notes) {
          if (note.kind == AnalysisNoteKind::kDivisionByZero) {
            Emit(LintSeverity::kWarning, lint_rules::kDivisionByZero,
                 "division by a divisor that is provably zero always yields "
                 "NULL",
                 span);
          } else {
            Emit(LintSeverity::kWarning, lint_rules::kNullComparison,
                 "ordered comparison with an always-NULL operand is never "
                 "true",
                 span);
          }
        }
        FoldProgram(&program, analysis);
        if (analysis.predicate == PredicateClass::kUnknown) {
          programs.push_back(std::move(program));
          spans.push_back(span);
        }
      }
      // Cross-conjunct reasoning on the same field (the per-source conjunct
      // set the host filter executes).
      std::vector<const ExprProgram*> refs;
      refs.reserve(programs.size());
      for (const ExprProgram& p : programs) {
        refs.push_back(&p);
      }
      const ConjunctSetResult set = AnalyzeConjunctSet(refs);
      if (set.contradiction) {
        std::string field = "a field";
        if (static_cast<size_t>(set.contradiction_field) <
            aq_.schemas[i]->field_count()) {
          field = StrFormat(
              "'%s.%s'", q_.sources[i].c_str(),
              aq_.schemas[i]
                  ->field(static_cast<size_t>(set.contradiction_field))
                  .name.c_str());
        }
        Emit(LintSeverity::kWarning, lint_rules::kFilterContradiction,
             StrFormat("WHERE conjuncts on %s contradict each other: no "
                       "event can satisfy all of them, so the query returns "
                       "nothing",
                       field.c_str()),
             where_span);
      } else {
        for (const int r : set.redundant) {
          Emit(LintSeverity::kWarning, lint_rules::kRedundantConjunct,
               "WHERE conjunct is implied by the other conjuncts on the "
               "same field and does no additional filtering",
               spans[static_cast<size_t>(r)]);
        }
      }
    }
    // Divisions in the SELECT list (aggregate arguments and output math)
    // never reach the WHERE lowering above; catch constant-zero divisors
    // syntactically.
    for (const SelectItem& item : q_.select) {
      CheckZeroDivisor(*item.expr);
    }
  }

  void CheckZeroDivisor(const Expr& e) {
    if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kDiv &&
        e.children[1]->kind == ExprKind::kLiteral &&
        e.children[1]->literal.is_numeric() &&
        e.children[1]->literal.AsNumber() == 0.0) {
      Emit(LintSeverity::kWarning, lint_rules::kDivisionByZero,
           "division by a divisor that is provably zero always yields NULL",
           e.span.IsValid() ? e.span : q_.spans.from);
    }
    for (const ExprPtr& child : e.children) {
      CheckZeroDivisor(*child);
    }
  }

  const AnalyzedQuery& aq_;
  const Query& q_;
  const LintOptions& options_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

double EstimateSelectivity(const Expr& predicate, const LintOptions& options) {
  auto clamp01 = [](double s) { return std::min(1.0, std::max(0.0, s)); };
  switch (predicate.kind) {
    case ExprKind::kLiteral:
      if (predicate.literal.is_bool()) {
        return predicate.literal.AsBool() ? 1.0 : 0.0;
      }
      return 1.0;
    case ExprKind::kFieldRef:
      // A bare boolean field in predicate position: even odds.
      return predicate.resolved_type == FieldType::kBool ? 0.5 : 1.0;
    case ExprKind::kUnary:
      if (predicate.unary_op == UnaryOp::kNot) {
        return clamp01(1.0 -
                       EstimateSelectivity(*predicate.children[0], options));
      }
      return 1.0;
    case ExprKind::kBinary: {
      switch (predicate.binary_op) {
        case BinaryOp::kAnd:
          return clamp01(
              EstimateSelectivity(*predicate.children[0], options) *
              EstimateSelectivity(*predicate.children[1], options));
        case BinaryOp::kOr: {
          const double a =
              EstimateSelectivity(*predicate.children[0], options);
          const double b =
              EstimateSelectivity(*predicate.children[1], options);
          return clamp01(a + b - a * b);
        }
        case BinaryOp::kEq:
          return clamp01(EqualitySelectivity(predicate, options));
        case BinaryOp::kNe:
          return clamp01(1.0 - EqualitySelectivity(predicate, options));
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return 1.0 / 3.0;  // the classical range-predicate guess
        case BinaryOp::kContains:
          return 0.1;
        default:
          return 1.0;  // arithmetic cannot appear in predicate position
      }
    }
    case ExprKind::kInList: {
      const double members =
          static_cast<double>(predicate.children.size()) - 1.0;
      return clamp01(members * EqualitySelectivity(predicate, options));
    }
    case ExprKind::kAggregate:
    case ExprKind::kStar:
      return 1.0;  // not valid in WHERE; the analyzer already rejected it
  }
  return 1.0;
}

uint64_t PredictCentralCostNsPerSec(const AnalyzedQuery& analyzed,
                                    const LintOptions& options) {
  const Query& q = analyzed.query;
  // Events/sec arriving at central: every source contributes the fleet's
  // per-host rate, scaled by the query's sampling plan and the host-side
  // WHERE filter (only survivors ship).
  double shipped_per_sec =
      static_cast<double>(options.fleet_hosts) *
      options.events_per_host_per_second * q.host_sample_rate *
      q.event_sample_rate *
      static_cast<double>(std::max<size_t>(1, q.sources.size()));
  if (q.where != nullptr) {
    shipped_per_sec *= EstimateSelectivity(*q.where, options);
  }
  // Per-event central work: decode/ingest always; a hash probe per event for
  // joins; one fold update per aggregate for grouped/aggregated plans.
  const CostModel& costs = options.costs;
  double per_event = static_cast<double>(costs.central_ingest_ns);
  if (analyzed.is_join()) {
    per_event += static_cast<double>(costs.central_join_probe_ns);
  }
  if (analyzed.has_aggregates || !q.group_by.empty()) {
    int aggregates = 0;
    for (const SelectItem& item : q.select) {
      aggregates += CountAggregateNodes(*item.expr);
    }
    per_event += static_cast<double>(costs.central_group_update_ns) *
                 static_cast<double>(std::max(1, aggregates));
  }
  const double total = shipped_per_sec * per_event;
  if (total <= 0) {
    return 0;
  }
  if (total > 1e18) {
    return ~uint64_t{0};
  }
  return static_cast<uint64_t>(total);
}

std::vector<Diagnostic> LintQuery(const AnalyzedQuery& analyzed,
                                  const LintOptions& options) {
  Linter linter(analyzed, options);
  return linter.Run();
}

bool HasLintErrors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == LintSeverity::kError;
                     });
}

std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             std::string_view query_text) {
  std::string out = StrFormat("%s[%s]: %s",
                              LintSeverityName(diagnostic.severity),
                              diagnostic.rule.c_str(),
                              diagnostic.message.c_str());
  const SourceSpan& span = diagnostic.span;
  if (span.IsValid() && span.end <= query_text.size()) {
    std::string snippet(query_text.substr(span.begin, span.end - span.begin));
    for (char& c : snippet) {
      if (c == '\n' || c == '\r' || c == '\t') {
        c = ' ';
      }
    }
    out += StrFormat("\n  --> offset %zu: %s", span.begin, snippet.c_str());
  }
  return out;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view query_text) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += RenderDiagnostic(d, query_text);
    out += "\n";
  }
  return out;
}

Result<std::vector<Diagnostic>> LintQueryText(
    std::string_view text, const SchemaRegistry& registry,
    const AnalyzerOptions& analyzer_options, const LintOptions& options) {
  Result<AnalyzedQuery> analyzed =
      ParseAndAnalyze(text, registry, analyzer_options);
  if (!analyzed.ok()) {
    return analyzed.status();
  }
  return LintQuery(*analyzed, options);
}

}  // namespace scrub
