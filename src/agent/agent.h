// ScrubAgent: the per-host component.
//
// The agent is the only Scrub code that runs on application hosts, and it is
// deliberately tiny: for each log() call it does (at most) an event-sampling
// coin flip, the host-side selection conjuncts, projection, and a push into
// a bounded staging buffer. Joins, grouping and aggregation never run here
// (Section 4). Three protective properties the paper calls out:
//
//  * log() never blocks: the staging buffer sheds (and counts) events when
//    full rather than back-pressuring the application thread.
//  * Sampling happens before any predicate work, so a 10% event sample cuts
//    ~90% of the agent's per-event cost, not just its output volume.
//  * Queries self-expire: an event arriving after the plan's end_time
//    deactivates the query locally even if the teardown message is in
//    flight, so a forgotten query cannot load the host.
//
// Every unit of work is charged to the host's CostMeter in simulated
// nanoseconds; LogEvent returns the charge so the application can add it to
// the request's latency (that is how E7/E8 measure the paper's 2.5% CPU /
// 1% latency overheads).

#ifndef SRC_AGENT_AGENT_H_
#define SRC_AGENT_AGENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bounded_buffer.h"
#include "src/common/cost_model.h"
#include "src/common/rng.h"
#include "src/common/spill.h"
#include "src/cluster/host_registry.h"
#include "src/event/column_batch.h"
#include "src/event/event.h"
#include "src/event/wire.h"
#include "src/plan/expr_eval.h"
#include "src/plan/group_key.h"
#include "src/plan/plan.h"

namespace scrub {

// Per-window counters for the sampling estimator (Eqs. 1-3): `seen` is M_i
// (every event of the type logged in the window, before sampling and before
// selection), `sampled` is m_i (events that survived the coin flip, before
// selection). ScrubCentral reconstructs the zero readings for sampled
// events the selection then filtered out.
struct WindowCounter {
  TimeMicros window_start = 0;
  uint64_t seen = 0;
  uint64_t sampled = 0;
  // Events this host staged for the window but shed before shipping
  // (staging buffer full or staging byte budget hit). Central folds this
  // into the window's fidelity — honest accounting, never the estimator.
  uint64_t shed = 0;
};

// One flush's worth of traffic from a host to ScrubCentral for one query.
//
// `seq` numbers batches per (host, query) starting at 1; ScrubCentral acks
// and dedups on it. seq == 0 means "unsequenced": hand-built batches and
// re-bucketed shard sub-batches bypass dedup entirely. `epoch` is the
// agent's incarnation, bumped when a host restarts, so a fresh agent's
// restarting sequence numbers are not mistaken for duplicates.
struct EventBatch {
  QueryId query_id = 0;
  HostId host = kInvalidHost;
  uint64_t seq = 0;
  uint64_t epoch = 0;
  BatchFormat format = BatchFormat::kRow;  // how `payload` is laid out
  std::string payload;  // EncodeBatch (kRow) or EncodeColumnBatch (kColumnar)
  size_t event_count = 0;
  std::vector<WindowCounter> counters;  // deltas since the previous flush

  // Honest wire accounting: the encoded events, each counter's window start
  // plus three u64 readings (seen, sampled, shed), and the header (query_id
  // 8 + host 4 + seq 8 + epoch 8 + event_count 4 + counter_count 4).
  // Columnar and pre-aggregated batches spend one extra byte on the format
  // discriminator; row batches stay byte-identical to the pre-columnar wire.
  size_t WireSize() const {
    return payload.size() + 32 * counters.size() + 36 +
           (format == BatchFormat::kRow ? 0 : 1);
  }
};

struct AgentConfig {
  size_t staging_capacity = 8192;  // events buffered per query
  // Byte budget over one query's staged events (logical wire sizes; 0 =
  // unlimited). The staging buffer's event-count cap bounds entries; this
  // bounds bytes, so a query over wide events cannot balloon the host. The
  // degradation here is drop-and-count (log() never blocks, never spills);
  // every drop is counted per window and folded into central's fidelity.
  size_t staging_budget_bytes = 0;
  size_t max_batch_events = 1024;  // flush splits batches beyond this
  // Reliable delivery. A flushed batch is held for retransmission until
  // acked; unacked batches are re-sent with exponential backoff + jitter
  // until `retransmit_budget` has elapsed since the flush, then shed and
  // counted. retransmit_budget == 0 disables the retransmit path (unit-test
  // agents that are never acked would otherwise hold batches forever);
  // ScrubSystem derives a budget from the central's allowed lateness.
  size_t retransmit_capacity = 64;          // held batches per query
  TimeMicros retransmit_backoff = 250 * kMicrosPerMilli;  // first retry
  TimeMicros retransmit_budget = 0;
  // When set, every flush emits at least one (possibly zero) window counter
  // per in-span query, so ScrubCentral can tell "host reachable, nothing to
  // report" from "host silent" — the basis of completeness accounting.
  bool flush_heartbeats = false;
  // Columnar data plane: queries stage events in per-source ColumnBatches
  // and run selection/projection vectorized at flush time. Single-source
  // queries ship the columnar wire format; joins ship one columnar section
  // per source plus the explicit arrival-order interleave (kColumnarJoin),
  // so the central join replays the exact event sequence the row path would
  // have shipped. Off by default so hand-built unit-test agents see the
  // historical row behavior; ScrubSystem propagates its pipeline switch.
  bool columnar = false;
  CostModel costs;
};

struct AgentQueryStats {
  uint64_t events_considered = 0;  // log() calls of a matching type
  uint64_t events_sampled_out = 0;
  uint64_t events_filtered = 0;    // failed selection
  uint64_t events_staged = 0;
  uint64_t events_dropped = 0;     // staging buffer full
  uint64_t events_shipped = 0;
  // Reliable-delivery accounting.
  uint64_t batches_sent = 0;          // first transmissions
  uint64_t batches_retransmitted = 0; // re-sends of unacked batches
  uint64_t batches_acked = 0;
  uint64_t batches_expired = 0;       // retransmit budget spent, shed
  uint64_t batches_evicted = 0;       // retransmit buffer overflow, shed
  uint64_t events_abandoned = 0;      // events in shed batches
  // Per-source, per-field wire encoding chosen by the most recent columnar
  // flush that shipped data (EncodeColumnBatch's convention: -1 dropped or
  // all-null, 0 plain, n > 0 dictionary with n entries). Empty until a
  // columnar flush ships; row-path and pre-agg queries never fill it.
  std::vector<std::vector<int>> last_encodings;
  // Staging shape, fixed at install: whether this query stages columnar
  // and the plan-ordered source event types. Lives in the stats (not the
  // ActiveQuery) so DescribeQuery can still render it after teardown.
  bool columnar_staging = false;
  std::vector<std::string> source_types;
};

class ScrubAgent {
 public:
  // `epoch` is the host's incarnation number; ScrubSystem bumps it when a
  // crashed host restarts with a fresh agent.
  ScrubAgent(HostId host, CostMeter* meter, AgentConfig config,
             uint64_t sampling_seed, uint64_t epoch = 0)
      : host_(host),
        meter_(meter),
        config_(config),
        rng_(sampling_seed),
        // A separate stream for retry jitter, so retransmission timing never
        // perturbs the event-sampling coin flips (faulted and clean runs
        // must sample identically).
        retry_rng_(sampling_seed ^ 0x9E3779B97F4A7C15ULL),
        epoch_(epoch) {
    staging_accountant_.set_budgets(config_.staging_budget_bytes,
                                    /*total_bytes=*/0);
  }

  // Installs a query object received from the query server. Idempotent: a
  // duplicate install (retry that raced its ack) is a no-op, preserving
  // staged events and stats.
  void InstallQuery(const HostPlan& plan);
  void RemoveQuery(QueryId query_id);
  size_t active_queries() const { return queries_.size(); }
  bool HasQuery(QueryId query_id) const { return queries_.count(query_id) > 0; }

  // The application-facing instrumentation point. Processes the event
  // against every active query, charges the host CostMeter, and returns the
  // simulated nanoseconds spent (so callers can fold it into request
  // latency). The event is shared across queries by const reference; staged
  // copies are projected. The rvalue overload lets the last staging query
  // steal the caller's field values instead of deep-copying them.
  int64_t LogEvent(const Event& event);
  int64_t LogEvent(Event&& event);

  // Drains staged events into batches (at most max_batch_events each) and
  // emits counter deltas. Also retires queries whose span has passed
  // `now` (returns their ids in `expired` if non-null).
  std::vector<EventBatch> Flush(TimeMicros now,
                                std::vector<QueryId>* expired = nullptr);

  // Batches whose retry timer has come due (their retransmit copies stay
  // buffered until acked or expired). Also sheds batches whose retransmit
  // budget is spent.
  std::vector<EventBatch> Retransmits(TimeMicros now);

  // ScrubCentral acked (host, query, seq): drop the retransmit copy.
  void OnAck(QueryId query_id, uint64_t seq);

  size_t pending_retransmits() const;
  uint64_t epoch() const { return epoch_; }

  // Adaptive-execution hooks (driven by the central AdaptiveController).
  //
  // SetBatchOverride replaces config.max_batch_events for one query (0
  // restores the configured default). It takes effect at the next flush;
  // batch boundaries carry no fold effects at central, so re-chunking is
  // transcript-neutral by construction.
  void SetBatchOverride(QueryId query_id, size_t max_batch_events);
  // SetPipelineOverride requests row (false) or columnar (true) staging for
  // one query. The switch is deferred to the end of the query's next flush
  // — the one point where staging is provably empty — so no staged event
  // ever changes representation mid-stream. Columnar is granted only if the
  // plan is eligible (no pre-aggregation, source count within the wire's
  // section cap); an ineligible request silently keeps the row path, which
  // is exactly the install-time fallback behavior.
  void SetPipelineOverride(QueryId query_id, bool columnar);
  // Introspection for DescribeQuery and the controller: current staging
  // pipeline and effective batch cap (returns config defaults for unknown
  // queries).
  bool UsesColumns(QueryId query_id) const;
  size_t BatchLimitFor(QueryId query_id) const;

  const AgentQueryStats* StatsFor(QueryId query_id) const;
  uint64_t total_events_logged() const { return total_events_logged_; }

 private:
  struct ActiveQuery {
    HostPlan plan;
    BoundedBuffer<Event> staged;  // row path
    // Columnar path: sampled events append here un-filtered; selection and
    // projection run vectorized at flush. Lazily created from the first
    // matching event's schema (the agent holds no SchemaRegistry).
    bool use_columns = false;
    // One staging batch per plan source (lazily sized to plan.sources, each
    // batch lazily created from its first matching event's schema — the
    // agent holds no SchemaRegistry). Single-source plans use slot 0; joins
    // stage every source and record the arrival interleave in
    // `staging_order` so the central join replays the row path's exact
    // event sequence.
    std::vector<std::unique_ptr<ColumnBatch>> columns;
    // Source index of each column-staged event, in arrival order. Only
    // maintained for multi-source plans (a single source's arrival order is
    // its batch's row order).
    std::vector<uint8_t> staging_order;
    // Counter deltas keyed by window start, flushed incrementally.
    std::map<TimeMicros, WindowCounter> pending_counters;
    // Pre-aggregation path (plan.preaggregate): selected events fold into
    // per-(slot, group) COUNT/SUM delta cells; a flush ships one kPreAgg
    // batch of deltas instead of the events. `index` maps a hashed group
    // key to its position in `groups`, which preserves first-touch order so
    // the encoded payload is a deterministic function of the event stream.
    struct PreAggState {
      uint64_t events = 0;  // selected events folded into this slot
      std::unordered_map<HashedGroupKey, size_t, HashedGroupKeyHash> index;
      std::vector<PreAggGroup> groups;
    };
    std::map<TimeMicros, PreAggState> preagg;
    // Adaptive overrides: 0 = use config.max_batch_events; pending_pipeline
    // is -1 (none) / 0 (row) / 1 (columnar), applied at the next flush's
    // empty-staging point.
    size_t batch_override = 0;
    int pending_pipeline = -1;
    AgentQueryStats stats;

    explicit ActiveQuery(const HostPlan& p, size_t capacity)
        : plan(p), staged(capacity) {}
  };

  // A flushed batch awaiting its ack.
  struct PendingBatch {
    EventBatch batch;
    TimeMicros next_retry = 0;
    TimeMicros deadline = 0;  // flush time + retransmit budget
    int attempts = 0;
  };

  // Shared body of the two LogEvent overloads. `owned` is the same event
  // when the caller handed over ownership (rvalue overload), else nullptr.
  int64_t LogEventImpl(const Event& event, Event* owned);

  // Projects `event` through the keep mask and pushes the result into the
  // query's staging buffer. When `owned` is non-null the kept values are
  // moved out of it instead of deep-copied (the per-field allocation fix).
  void StageRow(ActiveQuery& q, const HostSourcePlan& sp, const Event& event,
                Event* owned);

  // Vectorized flush pre-pass for a single-source columnar query: filter +
  // project the staged ColumnBatch and append the resulting wire batches to
  // `batches`.
  void FlushColumns(QueryId query_id, ActiveQuery& q, TimeMicros now,
                    std::vector<EventBatch>* batches);

  // Join twin of FlushColumns: per-source vectorized selection, then the
  // surviving events are chunked in arrival order (per staging_order) into
  // kColumnarJoin batches carrying one columnar section per source plus the
  // interleave, so the chunk boundaries and the central fold order are
  // byte-identical to the row path's single interleaved staging stream.
  void FlushColumnJoin(QueryId query_id, ActiveQuery& q, TimeMicros now,
                       std::vector<EventBatch>* batches);

  // Total rows staged across a columnar query's per-source batches.
  size_t StagedColumnRows(const ActiveQuery& q) const;

  // Per-query flush chunk cap: the adaptive override when set, else the
  // configured default.
  size_t EffectiveBatch(const ActiveQuery& q) const {
    return q.batch_override > 0 ? q.batch_override : config_.max_batch_events;
  }

  // Pre-aggregation path: folds one selected event into its slot's delta
  // cells (returns the CPU charged), and flushes the accumulated deltas as
  // a single kPreAgg batch.
  int64_t PreAggFold(ActiveQuery& q, const Event& event, TimeMicros ts);
  void FlushPreAgg(QueryId query_id, ActiveQuery& q, TimeMicros now,
                   std::vector<EventBatch>* batches);

  // Keeps a retransmit copy of a just-flushed batch, budget permitting.
  void HoldForRetransmit(ActiveQuery& q, QueryId query_id,
                         const EventBatch& batch, TimeMicros now);

  TimeMicros WindowStartFor(const ActiveQuery& q, TimeMicros ts) const;

  // Records one staged-but-shed event in the window's counter, so central
  // can fold the loss into that window's fidelity.
  void CountShed(ActiveQuery& q, TimeMicros ts);

  // Stats survive retirement; explicit RemoveQuery discards them (existing
  // behavior), in which case this returns nullptr.
  AgentQueryStats* MutableStatsFor(QueryId query_id);

  // Exponential backoff with +/-25% jitter from the retry stream.
  TimeMicros BackoffFor(int attempts);

  HostId host_;
  CostMeter* meter_;
  AgentConfig config_;
  Rng rng_;
  Rng retry_rng_;
  uint64_t epoch_;
  // Logical bytes staged per query, against staging_budget_bytes. Released
  // when a flush drains the query's staging (row buffer or column batch).
  MemoryAccountant staging_accountant_;
  std::unordered_map<QueryId, ActiveQuery> queries_;
  std::unordered_map<QueryId, AgentQueryStats> retired_stats_;
  // Retransmit buffers outlive query retirement: the final flush's batches
  // are still owed to ScrubCentral. They drain via ack or deadline.
  std::map<QueryId, std::deque<PendingBatch>> retransmit_;
  std::unordered_map<QueryId, uint64_t> next_seq_;
  uint64_t total_events_logged_ = 0;
};

}  // namespace scrub

#endif  // SRC_AGENT_AGENT_H_
