#include "src/agent/agent.h"

#include <algorithm>

#include "src/event/wire.h"

namespace scrub {

void ScrubAgent::InstallQuery(const HostPlan& plan) {
  // Idempotent: a retried install whose predecessor was delivered but whose
  // ack was lost must not wipe staged events or stats. Plans are immutable
  // per query id, so "already installed" means "nothing to do".
  if (queries_.count(plan.query_id) > 0) {
    return;
  }
  queries_.emplace(plan.query_id,
                   ActiveQuery(plan, config_.staging_capacity));
}

void ScrubAgent::RemoveQuery(QueryId query_id) { queries_.erase(query_id); }

TimeMicros ScrubAgent::WindowStartFor(const ActiveQuery& q,
                                      TimeMicros ts) const {
  // Counters are kept per slide period; for tumbling queries the slide
  // equals the window, so this is the window grid.
  TimeMicros grid = q.plan.slide_micros;
  if (grid <= 0) {
    grid = q.plan.window_micros;
  }
  if (grid <= 0) {
    return q.plan.start_time;
  }
  const TimeMicros rel = ts - q.plan.start_time;
  return q.plan.start_time + (rel / grid) * grid;
}

Event ScrubAgent::ProjectEvent(const Event& event,
                               const HostSourcePlan& sp) {
  Event out(event.schema(), event.request_id(), event.timestamp());
  for (size_t i = 0; i < sp.keep_field.size(); ++i) {
    if (sp.keep_field[i]) {
      out.SetField(i, event.field(i));
    }
  }
  return out;
}

int64_t ScrubAgent::LogEvent(const Event& event) {
  ++total_events_logged_;
  const CostModel& c = config_.costs;
  // Fixed cost of the instrumentation point itself: metadata stamping plus
  // the active-query table lookup. Paid once per log() call whether or not
  // any query matches — this is the "no active query" floor the paper's
  // Section 9 measures.
  int64_t ns = c.log_fixed_ns +
               c.log_per_field_ns * static_cast<int64_t>(event.field_count());

  const TimeMicros ts = event.timestamp();
  for (auto& [qid, q] : queries_) {
    // Span check: cheap, and implements local self-expiry.
    if (ts < q.plan.start_time || ts >= q.plan.end_time) {
      continue;
    }
    const HostSourcePlan* sp = q.plan.FindSource(event.type_name());
    if (sp == nullptr) {
      continue;
    }
    ++q.stats.events_considered;

    // Window counters: M_i before anything else.
    WindowCounter& counter = q.pending_counters[WindowStartFor(q, ts)];
    counter.window_start = WindowStartFor(q, ts);
    ++counter.seen;

    // 1. Event sampling, before any predicate work.
    if (q.plan.event_sample_rate < 1.0) {
      ns += c.sample_flip_ns;
      if (!rng_.NextBool(q.plan.event_sample_rate)) {
        ++q.stats.events_sampled_out;
        continue;
      }
    }
    ++counter.sampled;

    // 2. Selection.
    bool pass = true;
    for (const CompiledExpr& conjunct : sp->conjuncts) {
      ns += c.predicate_term_ns * conjunct.node_count;
      if (!EvalPredicateSingle(conjunct, event)) {
        pass = false;
        break;
      }
    }
    if (!pass) {
      ++q.stats.events_filtered;
      continue;
    }

    // 3. Projection + staging. Shedding, never blocking.
    ns += c.projection_per_field_ns * sp->kept_fields + c.enqueue_ns;
    Event projected = ProjectEvent(event, *sp);
    if (q.staged.TryPush(std::move(projected))) {
      ++q.stats.events_staged;
    } else {
      ++q.stats.events_dropped;
    }
  }

  meter_->ChargeScrub(ns);
  return ns;
}

std::vector<EventBatch> ScrubAgent::Flush(TimeMicros now,
                                          std::vector<QueryId>* expired) {
  std::vector<EventBatch> batches;
  const CostModel& c = config_.costs;

  for (auto it = queries_.begin(); it != queries_.end();) {
    ActiveQuery& q = it->second;
    // Heartbeat: make sure the current window has a counter entry even if
    // no event touched it, so ScrubCentral counts this host as reachable
    // for the window. operator[] creates a zeroed counter if absent.
    if (config_.flush_heartbeats && now >= q.plan.start_time) {
      const TimeMicros hb_ts = std::min(now, q.plan.end_time - 1);
      const TimeMicros w = WindowStartFor(q, hb_ts);
      q.pending_counters[w].window_start = w;
    }
    // Drain staged events into one or more batches.
    while (!q.staged.empty() || !q.pending_counters.empty()) {
      EventBatch batch;
      batch.query_id = it->first;
      batch.host = host_;
      batch.seq = ++next_seq_[it->first];
      batch.epoch = epoch_;
      std::vector<Event> events;
      q.staged.DrainInto(&events, config_.max_batch_events);
      batch.event_count = events.size();
      q.stats.events_shipped += events.size();
      batch.payload = EncodeBatch(events);
      // Counters ride with the first batch of the flush.
      if (!q.pending_counters.empty()) {
        for (auto& [start, counter] : q.pending_counters) {
          batch.counters.push_back(counter);
        }
        q.pending_counters.clear();
      }
      // Serialization is Scrub work on the host.
      meter_->ChargeScrub(static_cast<int64_t>(batch.payload.size()) *
                          c.serialize_per_byte_ns);
      ++q.stats.batches_sent;
      // Keep a retransmit copy until acked, budget permitting.
      if (config_.retransmit_budget > 0) {
        std::deque<PendingBatch>& held = retransmit_[it->first];
        PendingBatch pending;
        pending.batch = batch;
        pending.next_retry = now + BackoffFor(0);
        pending.deadline = now + config_.retransmit_budget;
        held.push_back(std::move(pending));
        while (held.size() > config_.retransmit_capacity) {
          ++q.stats.batches_evicted;
          q.stats.events_abandoned += held.front().batch.event_count;
          held.pop_front();
        }
      }
      batches.push_back(std::move(batch));
      if (events.empty()) {
        break;  // counters-only flush
      }
    }
    // Retire expired queries after their final drain.
    if (now >= q.plan.end_time) {
      if (expired != nullptr) {
        expired->push_back(it->first);
      }
      retired_stats_[it->first] = q.stats;
      it = queries_.erase(it);
    } else {
      ++it;
    }
  }
  return batches;
}

TimeMicros ScrubAgent::BackoffFor(int attempts) {
  TimeMicros base = config_.retransmit_backoff;
  for (int i = 0; i < attempts && base < 8 * config_.retransmit_backoff;
       ++i) {
    base *= 2;
  }
  // +/-25% jitter so a fleet's retries do not synchronize.
  const TimeMicros quarter = std::max<TimeMicros>(base / 4, 1);
  return base - quarter +
         static_cast<TimeMicros>(
             retry_rng_.NextBelow(static_cast<uint64_t>(2 * quarter)));
}

std::vector<EventBatch> ScrubAgent::Retransmits(TimeMicros now) {
  std::vector<EventBatch> out;
  for (auto it = retransmit_.begin(); it != retransmit_.end();) {
    std::deque<PendingBatch>& held = it->second;
    AgentQueryStats* stats = MutableStatsFor(it->first);
    for (auto pit = held.begin(); pit != held.end();) {
      if (now >= pit->deadline) {
        // Budget spent: the window this data belonged to has closed at
        // central anyway. Shed and count.
        if (stats != nullptr) {
          ++stats->batches_expired;
          stats->events_abandoned += pit->batch.event_count;
        }
        pit = held.erase(pit);
        continue;
      }
      if (now >= pit->next_retry) {
        out.push_back(pit->batch);
        ++pit->attempts;
        if (stats != nullptr) {
          ++stats->batches_retransmitted;
        }
        pit->next_retry = now + BackoffFor(pit->attempts);
      }
      ++pit;
    }
    it = held.empty() ? retransmit_.erase(it) : std::next(it);
  }
  return out;
}

void ScrubAgent::OnAck(QueryId query_id, uint64_t seq) {
  const auto it = retransmit_.find(query_id);
  if (it == retransmit_.end()) {
    return;
  }
  std::deque<PendingBatch>& held = it->second;
  for (auto pit = held.begin(); pit != held.end(); ++pit) {
    if (pit->batch.seq == seq) {
      AgentQueryStats* stats = MutableStatsFor(query_id);
      if (stats != nullptr) {
        ++stats->batches_acked;
      }
      held.erase(pit);
      break;
    }
  }
  if (held.empty()) {
    retransmit_.erase(it);
  }
}

size_t ScrubAgent::pending_retransmits() const {
  size_t n = 0;
  for (const auto& [qid, held] : retransmit_) {
    n += held.size();
  }
  return n;
}

AgentQueryStats* ScrubAgent::MutableStatsFor(QueryId query_id) {
  const auto it = queries_.find(query_id);
  if (it != queries_.end()) {
    return &it->second.stats;
  }
  const auto rit = retired_stats_.find(query_id);
  return rit == retired_stats_.end() ? nullptr : &rit->second;
}

const AgentQueryStats* ScrubAgent::StatsFor(QueryId query_id) const {
  const auto it = queries_.find(query_id);
  if (it != queries_.end()) {
    return &it->second.stats;
  }
  const auto rit = retired_stats_.find(query_id);
  return rit == retired_stats_.end() ? nullptr : &rit->second;
}

}  // namespace scrub
