#include "src/agent/agent.h"

#include <algorithm>
#include <numeric>

#include "src/event/wire.h"
#include "src/plan/vectorized.h"

namespace scrub {

void ScrubAgent::InstallQuery(const HostPlan& plan) {
  // Idempotent: a retried install whose predecessor was delivered but whose
  // ack was lost must not wipe staged events or stats. Plans are immutable
  // per query id, so "already installed" means "nothing to do".
  if (queries_.count(plan.query_id) > 0) {
    return;
  }
  auto [it, inserted] = queries_.emplace(
      plan.query_id, ActiveQuery(plan, config_.staging_capacity));
  // Joins stage columnar too: one batch per source plus the explicit
  // arrival-order interleave (kColumnarJoin), which is what keeps the
  // central join's fold order identical across pipelines. The wire format
  // caps the per-batch section count, so wider joins keep the row path.
  it->second.use_columns = config_.columnar && !plan.preaggregate &&
                           plan.sources.size() <= kMaxColumnJoinSections;
  it->second.stats.columnar_staging = it->second.use_columns;
  for (const HostSourcePlan& sp : plan.sources) {
    it->second.stats.source_types.push_back(sp.event_type);
  }
}

void ScrubAgent::RemoveQuery(QueryId query_id) {
  queries_.erase(query_id);
  staging_accountant_.ReleaseAll(query_id);  // staged events die with it
}

void ScrubAgent::SetBatchOverride(QueryId query_id, size_t max_batch_events) {
  const auto it = queries_.find(query_id);
  if (it != queries_.end()) {
    it->second.batch_override = max_batch_events;
  }
}

void ScrubAgent::SetPipelineOverride(QueryId query_id, bool columnar) {
  const auto it = queries_.find(query_id);
  if (it != queries_.end()) {
    it->second.pending_pipeline = columnar ? 1 : 0;
  }
}

bool ScrubAgent::UsesColumns(QueryId query_id) const {
  const auto it = queries_.find(query_id);
  return it != queries_.end() && it->second.use_columns;
}

size_t ScrubAgent::BatchLimitFor(QueryId query_id) const {
  const auto it = queries_.find(query_id);
  return it == queries_.end() ? config_.max_batch_events
                              : EffectiveBatch(it->second);
}

TimeMicros ScrubAgent::WindowStartFor(const ActiveQuery& q,
                                      TimeMicros ts) const {
  // Counters are kept per slide period; for tumbling queries the slide
  // equals the window, so this is the window grid.
  TimeMicros grid = q.plan.slide_micros;
  if (grid <= 0) {
    grid = q.plan.window_micros;
  }
  if (grid <= 0) {
    return q.plan.start_time;
  }
  const TimeMicros rel = ts - q.plan.start_time;
  return q.plan.start_time + (rel / grid) * grid;
}

void ScrubAgent::CountShed(ActiveQuery& q, TimeMicros ts) {
  const TimeMicros start = WindowStartFor(q, ts);
  WindowCounter& counter = q.pending_counters[start];
  counter.window_start = start;
  ++counter.shed;
}

void ScrubAgent::StageRow(ActiveQuery& q, const HostSourcePlan& sp,
                          const Event& event, Event* owned) {
  Event projected(event.schema(), event.request_id(), event.timestamp());
  for (size_t i = 0; i < sp.keep_field.size(); ++i) {
    if (sp.keep_field[i]) {
      projected.SetField(i, owned != nullptr ? owned->TakeField(i)
                                             : Value(event.field(i)));
    }
  }
  // Byte budget first (logical wire size), then the entry-count cap. Both
  // degrade the same way: drop, count, never block the application thread.
  const size_t bytes =
      staging_accountant_.active() ? projected.WireSize() : 0;
  if (bytes > 0 &&
      !staging_accountant_.TryCharge(q.plan.query_id, bytes)) {
    ++q.stats.events_dropped;
    CountShed(q, projected.timestamp());
    return;
  }
  if (q.staged.TryPush(std::move(projected))) {
    ++q.stats.events_staged;
  } else {
    staging_accountant_.Release(q.plan.query_id, bytes);
    ++q.stats.events_dropped;
    CountShed(q, event.timestamp());
  }
}

int64_t ScrubAgent::LogEvent(const Event& event) {
  return LogEventImpl(event, nullptr);
}

int64_t ScrubAgent::LogEvent(Event&& event) {
  return LogEventImpl(event, &event);
}

int64_t ScrubAgent::LogEventImpl(const Event& event, Event* owned) {
  ++total_events_logged_;
  const CostModel& c = config_.costs;
  // Fixed cost of the instrumentation point itself: metadata stamping plus
  // the active-query table lookup. Paid once per log() call whether or not
  // any query matches — this is the "no active query" floor the paper's
  // Section 9 measures.
  int64_t ns = c.log_fixed_ns +
               c.log_per_field_ns * static_cast<int64_t>(event.field_count());

  const TimeMicros ts = event.timestamp();
  // Row staging is deferred so the last staging query can move the caller's
  // field values instead of copying them; only the final StageRow may
  // consume `owned`.
  struct StageTarget {
    ActiveQuery* q = nullptr;
    const HostSourcePlan* sp = nullptr;
  };
  StageTarget deferred;
  for (auto& [qid, q] : queries_) {
    // Span check: cheap, and implements local self-expiry.
    if (ts < q.plan.start_time || ts >= q.plan.end_time) {
      continue;
    }
    const HostSourcePlan* sp = q.plan.FindSource(event.type_name());
    if (sp == nullptr) {
      continue;
    }
    ++q.stats.events_considered;

    // Window counters: M_i before anything else.
    WindowCounter& counter = q.pending_counters[WindowStartFor(q, ts)];
    counter.window_start = WindowStartFor(q, ts);
    ++counter.seen;

    // 1. Event sampling, before any predicate work.
    if (q.plan.event_sample_rate < 1.0) {
      ns += c.sample_flip_ns;
      if (!rng_.NextBool(q.plan.event_sample_rate)) {
        ++q.stats.events_sampled_out;
        continue;
      }
    }
    ++counter.sampled;

    // Pre-aggregation path: selection runs here on the folded IR (same
    // charges as the row path), then the event folds into its slot's delta
    // cells — the same arithmetic central's accumulator update runs, so
    // shipping deltas changes bytes, never results.
    if (q.plan.preaggregate) {
      bool selected = !sp->never_matches;
      for (const ExprProgram& program : sp->programs) {
        if (!selected) {
          break;
        }
        ns += c.predicate_term_ns * static_cast<int64_t>(program.insts.size());
        if (!EvalProgramPredicateSingle(program, event)) {
          selected = false;
        }
      }
      if (!selected) {
        ++q.stats.events_filtered;
        continue;
      }
      ns += PreAggFold(q, event, ts);
      continue;
    }

    // Columnar path: append the sampled event to its source's column
    // builder and defer selection + projection to the vectorized flush
    // pre-pass. Only the enqueue cost is paid at log() time; the predicate
    // and projection charges move to flush, where the work actually runs.
    if (q.use_columns) {
      ns += c.enqueue_ns;
      const size_t si = static_cast<size_t>(sp - q.plan.sources.data());
      if (q.columns.empty()) {
        q.columns.resize(q.plan.sources.size());
      }
      if (q.columns[si] == nullptr) {
        q.columns[si] = std::make_unique<ColumnBatch>(event.schema());
      }
      if (StagedColumnRows(q) >= config_.staging_capacity) {
        ++q.stats.events_dropped;
        CountShed(q, ts);
      } else if (staging_accountant_.active() &&
                 !staging_accountant_.TryCharge(q.plan.query_id,
                                                event.WireSize())) {
        // Columnar staging keeps the un-projected event until the flush
        // pre-pass, so the budget is charged at the full wire size —
        // conservative relative to the row path's projected charge.
        ++q.stats.events_dropped;
        CountShed(q, ts);
      } else {
        q.columns[si]->AppendEvent(event);
        if (q.plan.sources.size() > 1) {
          q.staging_order.push_back(static_cast<uint8_t>(si));
        }
      }
      continue;
    }

    // 2. Selection, on the folded IR programs (always-true conjuncts are
    // already pruned; a provably unsatisfiable filter ships nothing).
    bool pass = !sp->never_matches;
    for (const ExprProgram& program : sp->programs) {
      if (!pass) {
        break;
      }
      ns += c.predicate_term_ns * static_cast<int64_t>(program.insts.size());
      if (!EvalProgramPredicateSingle(program, event)) {
        pass = false;
      }
    }
    if (!pass) {
      ++q.stats.events_filtered;
      continue;
    }

    // 3. Projection + staging. Shedding, never blocking.
    ns += c.projection_per_field_ns * sp->kept_fields + c.enqueue_ns;
    if (deferred.q != nullptr) {
      StageRow(*deferred.q, *deferred.sp, event, nullptr);
    }
    deferred = {&q, sp};
  }
  if (deferred.q != nullptr) {
    StageRow(*deferred.q, *deferred.sp, event, owned);
  }

  meter_->ChargeScrub(ns);
  return ns;
}

void ScrubAgent::HoldForRetransmit(ActiveQuery& q, QueryId query_id,
                                   const EventBatch& batch, TimeMicros now) {
  if (config_.retransmit_budget == 0) {
    return;
  }
  std::deque<PendingBatch>& held = retransmit_[query_id];
  PendingBatch pending;
  pending.batch = batch;
  pending.next_retry = now + BackoffFor(0);
  pending.deadline = now + config_.retransmit_budget;
  held.push_back(std::move(pending));
  while (held.size() > config_.retransmit_capacity) {
    ++q.stats.batches_evicted;
    q.stats.events_abandoned += held.front().batch.event_count;
    held.pop_front();
  }
}

size_t ScrubAgent::StagedColumnRows(const ActiveQuery& q) const {
  size_t rows = 0;
  for (const std::unique_ptr<ColumnBatch>& b : q.columns) {
    rows += b == nullptr ? 0 : b->rows();
  }
  return rows;
}

void ScrubAgent::FlushColumns(QueryId query_id, ActiveQuery& q,
                              TimeMicros now,
                              std::vector<EventBatch>* batches) {
  if (q.columns.empty() || q.columns[0] == nullptr ||
      q.columns[0]->rows() == 0) {
    return;
  }
  const CostModel& c = config_.costs;
  const HostSourcePlan& sp = q.plan.sources[0];
  ColumnBatch cols = std::move(*q.columns[0]);
  *q.columns[0] = ColumnBatch(cols.schema());

  // Vectorized selection: each conjunct compacts the selection vector, the
  // batch twin of the row path's per-event short-circuit loop — and the
  // cost accounting matches it: a conjunct is only charged for the rows
  // that reached it.
  std::vector<uint32_t> selection(cols.rows());
  std::iota(selection.begin(), selection.end(), 0U);
  int64_t ns = 0;
  if (sp.never_matches) {
    selection.clear();
  }
  for (const ExprProgram& program : sp.programs) {
    if (selection.empty()) {
      break;
    }
    ns += c.predicate_term_ns * static_cast<int64_t>(program.insts.size()) *
          static_cast<int64_t>(selection.size());
    EvalProgramPredicateBatch(program, cols, &selection);
  }
  q.stats.events_filtered += cols.rows() - selection.size();
  q.stats.events_staged += selection.size();
  // Projection is column selection on the wire: charged per surviving row,
  // never materialized.
  ns += c.projection_per_field_ns * sp.kept_fields *
        static_cast<int64_t>(selection.size());
  meter_->ChargeScrub(ns);

  const size_t max_batch = EffectiveBatch(q);
  for (size_t start = 0; start < selection.size(); start += max_batch) {
    const size_t n = std::min(max_batch, selection.size() - start);
    EventBatch batch;
    batch.query_id = query_id;
    batch.host = host_;
    batch.seq = ++next_seq_[query_id];
    batch.epoch = epoch_;
    batch.format = BatchFormat::kColumnar;
    batch.event_count = n;
    if (q.stats.last_encodings.empty()) {
      q.stats.last_encodings.resize(1);
    }
    EncodeColumnBatch(cols, selection.data() + start, n, &sp.keep_field,
                      &batch.payload, &q.stats.last_encodings[0]);
    q.stats.events_shipped += n;
    // Counters ride with the first batch of the flush (same contract as the
    // row path; a counters-only flush falls through to the row drain loop).
    if (start == 0 && !q.pending_counters.empty()) {
      for (auto& [window_start, counter] : q.pending_counters) {
        batch.counters.push_back(counter);
      }
      q.pending_counters.clear();
    }
    meter_->ChargeScrub(static_cast<int64_t>(batch.payload.size()) *
                        c.serialize_per_byte_ns);
    ++q.stats.batches_sent;
    HoldForRetransmit(q, query_id, batch, now);
    batches->push_back(std::move(batch));
  }
}

void ScrubAgent::FlushColumnJoin(QueryId query_id, ActiveQuery& q,
                                 TimeMicros now,
                                 std::vector<EventBatch>* batches) {
  if (q.staging_order.empty()) {
    return;
  }
  const CostModel& c = config_.costs;
  const size_t num_sources = q.plan.sources.size();
  std::vector<std::unique_ptr<ColumnBatch>> staged = std::move(q.columns);
  q.columns.clear();
  std::vector<uint8_t> order = std::move(q.staging_order);
  q.staging_order.clear();

  // Per-source vectorized selection, with the same charge pattern as the
  // single-source pre-pass: a conjunct is charged only for the rows that
  // reached it, projection per surviving row.
  int64_t ns = 0;
  std::vector<std::vector<bool>> survived(num_sources);
  for (size_t si = 0; si < num_sources; ++si) {
    if (staged[si] == nullptr || staged[si]->rows() == 0) {
      continue;
    }
    const HostSourcePlan& sp = q.plan.sources[si];
    ColumnBatch& cols = *staged[si];
    std::vector<uint32_t> selection(cols.rows());
    std::iota(selection.begin(), selection.end(), 0U);
    if (sp.never_matches) {
      selection.clear();
    }
    for (const ExprProgram& program : sp.programs) {
      if (selection.empty()) {
        break;
      }
      ns += c.predicate_term_ns * static_cast<int64_t>(program.insts.size()) *
            static_cast<int64_t>(selection.size());
      EvalProgramPredicateBatch(program, cols, &selection);
    }
    q.stats.events_filtered += cols.rows() - selection.size();
    q.stats.events_staged += selection.size();
    ns += c.projection_per_field_ns * sp.kept_fields *
          static_cast<int64_t>(selection.size());
    survived[si].assign(cols.rows(), false);
    for (const uint32_t r : selection) {
      survived[si][r] = true;
    }
  }
  meter_->ChargeScrub(ns);

  // Walk the arrival interleave once: surviving events keep their original
  // order, which is exactly the sequence the row path's single staging
  // buffer would have drained.
  struct Arrival {
    uint8_t source;
    uint32_t row;
  };
  std::vector<Arrival> arrivals;
  std::vector<uint32_t> cursor(num_sources, 0);
  for (const uint8_t s : order) {
    const uint32_t r = cursor[s]++;
    if (!survived[s].empty() && survived[s][r]) {
      arrivals.push_back({s, r});
    }
  }

  if (!arrivals.empty()) {
    // Reset only when this flush ships data, so a trailing empty drain
    // does not wipe the "most recent shipped encodings" report.
    q.stats.last_encodings.assign(num_sources, {});
  }
  const size_t max_batch = EffectiveBatch(q);
  for (size_t start = 0; start < arrivals.size(); start += max_batch) {
    const size_t n = std::min(max_batch, arrivals.size() - start);
    // Per-source row lists for this chunk. Rows within a source are in row
    // order (arrival order restricted to the source), so each section is a
    // plain ascending selection.
    std::vector<std::vector<uint32_t>> chunk_rows(num_sources);
    for (size_t i = 0; i < n; ++i) {
      chunk_rows[arrivals[start + i].source].push_back(
          arrivals[start + i].row);
    }
    // Sections carry only the sources present in this chunk, in plan order;
    // the order bytes index sections. Central re-identifies each section's
    // source by its schema type name, the same way the row path classifies
    // interleaved events.
    std::vector<ColumnJoinSection> sections;
    std::vector<int> section_of(num_sources, -1);
    for (size_t si = 0; si < num_sources; ++si) {
      if (chunk_rows[si].empty()) {
        continue;
      }
      section_of[si] = static_cast<int>(sections.size());
      ColumnJoinSection section;
      section.batch = staged[si].get();
      section.selection = chunk_rows[si].data();
      section.selected = chunk_rows[si].size();
      section.keep_field = &q.plan.sources[si].keep_field;
      sections.push_back(section);
    }
    std::vector<uint8_t> chunk_order(n);
    for (size_t i = 0; i < n; ++i) {
      chunk_order[i] =
          static_cast<uint8_t>(section_of[arrivals[start + i].source]);
    }

    EventBatch batch;
    batch.query_id = query_id;
    batch.host = host_;
    batch.seq = ++next_seq_[query_id];
    batch.epoch = epoch_;
    batch.format = BatchFormat::kColumnarJoin;
    batch.event_count = n;
    std::vector<std::vector<int>> encodings;
    EncodeColumnJoinBatch(sections, chunk_order, &batch.payload, &encodings);
    {
      size_t section = 0;
      for (size_t si = 0; si < num_sources; ++si) {
        if (section_of[si] >= 0) {
          q.stats.last_encodings[si] = std::move(encodings[section++]);
        }
      }
    }
    q.stats.events_shipped += n;
    // Counters ride with the first batch of the flush (same contract as the
    // other paths; a counters-only flush falls through to the row drain
    // loop).
    if (start == 0 && !q.pending_counters.empty()) {
      for (auto& [window_start, counter] : q.pending_counters) {
        batch.counters.push_back(counter);
      }
      q.pending_counters.clear();
    }
    meter_->ChargeScrub(static_cast<int64_t>(batch.payload.size()) *
                        c.serialize_per_byte_ns);
    ++q.stats.batches_sent;
    HoldForRetransmit(q, query_id, batch, now);
    batches->push_back(std::move(batch));
  }
}

int64_t ScrubAgent::PreAggFold(ActiveQuery& q, const Event& event,
                               TimeMicros ts) {
  const CostModel& c = config_.costs;
  int64_t ns = c.enqueue_ns;
  ActiveQuery::PreAggState& slot = q.preagg[WindowStartFor(q, ts)];
  ++slot.events;
  ++q.stats.events_staged;

  GroupKey key;
  key.reserve(q.plan.group_by_programs.size());
  for (const ExprProgram& g : q.plan.group_by_programs) {
    ns += c.predicate_term_ns * static_cast<int64_t>(g.insts.size());
    key.push_back(EvalProgramSingle(g, event));
  }
  HashedGroupKey hk(std::move(key));
  size_t idx;
  const auto it = slot.index.find(hk);
  if (it != slot.index.end()) {
    idx = it->second;
  } else {
    idx = slot.groups.size();
    PreAggGroup group;
    group.keys = hk.key;
    group.cells.resize(q.plan.preagg.size());
    slot.groups.push_back(std::move(group));
    slot.index.emplace(std::move(hk), idx);
  }

  PreAggGroup& group = slot.groups[idx];
  for (size_t i = 0; i < q.plan.preagg.size(); ++i) {
    const HostPlan::PreAggSpec& spec = q.plan.preagg[i];
    // The aggregation CPU the flat topology spends at central runs here on
    // the application host — the cost the ablation makes visible.
    ns += c.central_group_update_ns;
    Value arg;
    if (spec.has_arg) {
      arg = EvalProgramSingle(spec.arg_program, event);
      if (arg.is_null()) {
        continue;  // SQL semantics, mirroring central's accumulator update
      }
    }
    PreAggCell& cell = group.cells[i];
    ++cell.count;
    if (spec.func == AggregateFunc::kSum) {
      cell.sum += arg.is_numeric() ? arg.AsNumber() : 0.0;
    }
  }
  return ns;
}

void ScrubAgent::FlushPreAgg(QueryId query_id, ActiveQuery& q, TimeMicros now,
                             std::vector<EventBatch>* batches) {
  if (q.preagg.empty()) {
    return;
  }
  const CostModel& c = config_.costs;
  std::vector<PreAggSlot> slots;
  slots.reserve(q.preagg.size());
  uint64_t events = 0;
  for (auto& [start, state] : q.preagg) {
    PreAggSlot slot;
    slot.window_start = start;
    slot.events = state.events;
    slot.groups = std::move(state.groups);
    events += state.events;
    slots.push_back(std::move(slot));
  }
  q.preagg.clear();

  EventBatch batch;
  batch.query_id = query_id;
  batch.host = host_;
  batch.seq = ++next_seq_[query_id];
  batch.epoch = epoch_;
  batch.format = BatchFormat::kPreAgg;
  batch.event_count = events;
  batch.payload = EncodePreAggBatch(slots);
  q.stats.events_shipped += events;
  // Counters ride with the first batch of the flush (same contract as the
  // other paths; a counters-only flush falls through to the row drain loop).
  if (!q.pending_counters.empty()) {
    for (auto& [start, counter] : q.pending_counters) {
      batch.counters.push_back(counter);
    }
    q.pending_counters.clear();
  }
  meter_->ChargeScrub(static_cast<int64_t>(batch.payload.size()) *
                      c.serialize_per_byte_ns);
  ++q.stats.batches_sent;
  HoldForRetransmit(q, query_id, batch, now);
  batches->push_back(std::move(batch));
}

std::vector<EventBatch> ScrubAgent::Flush(TimeMicros now,
                                          std::vector<QueryId>* expired) {
  std::vector<EventBatch> batches;
  const CostModel& c = config_.costs;

  for (auto it = queries_.begin(); it != queries_.end();) {
    ActiveQuery& q = it->second;
    // Heartbeat: make sure the current window has a counter entry even if
    // no event touched it, so ScrubCentral counts this host as reachable
    // for the window. operator[] creates a zeroed counter if absent.
    if (config_.flush_heartbeats && now >= q.plan.start_time) {
      const TimeMicros hb_ts = std::min(now, q.plan.end_time - 1);
      const TimeMicros w = WindowStartFor(q, hb_ts);
      q.pending_counters[w].window_start = w;
      // A flush landing exactly on a slot boundary belongs to the slot that
      // just OPENED, so the slot that just closed under it would never hear
      // from an event-less host (with window <= flush interval the first
      // window reports only event-bearing hosts). Cover it explicitly; the
      // slot map dedups, so off-boundary flushes add nothing.
      if (hb_ts - 1 >= q.plan.start_time) {
        const TimeMicros prev = WindowStartFor(q, hb_ts - 1);
        q.pending_counters[prev].window_start = prev;
      }
    }
    // Columnar queries filter + project + encode vectorized; leftover
    // counters (heartbeats, zero-survivor flushes) drain through the row
    // loop below as a counters-only batch.
    if (q.use_columns) {
      if (q.plan.sources.size() > 1) {
        FlushColumnJoin(it->first, q, now, &batches);
      } else {
        FlushColumns(it->first, q, now, &batches);
      }
    }
    // Pre-aggregating queries ship their accumulated delta cells; same
    // leftover-counter contract as the columnar path.
    if (q.plan.preaggregate) {
      FlushPreAgg(it->first, q, now, &batches);
    }
    // Drain staged events into one or more batches.
    while (!q.staged.empty() || !q.pending_counters.empty()) {
      EventBatch batch;
      batch.query_id = it->first;
      batch.host = host_;
      batch.seq = ++next_seq_[it->first];
      batch.epoch = epoch_;
      std::vector<Event> events;
      q.staged.DrainInto(&events, EffectiveBatch(q));
      batch.event_count = events.size();
      q.stats.events_shipped += events.size();
      batch.payload = EncodeBatch(events);
      // Counters ride with the first batch of the flush.
      if (!q.pending_counters.empty()) {
        for (auto& [start, counter] : q.pending_counters) {
          batch.counters.push_back(counter);
        }
        q.pending_counters.clear();
      }
      // Serialization is Scrub work on the host.
      meter_->ChargeScrub(static_cast<int64_t>(batch.payload.size()) *
                          c.serialize_per_byte_ns);
      ++q.stats.batches_sent;
      // Keep a retransmit copy until acked, budget permitting.
      HoldForRetransmit(q, it->first, batch, now);
      batches.push_back(std::move(batch));
      if (events.empty()) {
        break;  // counters-only flush
      }
    }
    // A flush drains the query's staging completely (row buffer above, the
    // column batch in FlushColumns), so its whole byte charge comes back.
    if (staging_accountant_.active()) {
      staging_accountant_.ReleaseAll(it->first);
    }
    // Apply a pending pipeline switch here, where staging is provably empty
    // (both paths fully drained above): no staged event ever changes
    // representation, and central folds each batch by its own format, so
    // the switch cannot perturb the result transcript.
    if (q.pending_pipeline >= 0) {
      q.use_columns = q.pending_pipeline == 1 && !q.plan.preaggregate &&
                      q.plan.sources.size() <= kMaxColumnJoinSections;
      q.stats.columnar_staging = q.use_columns;
      q.pending_pipeline = -1;
      q.columns.clear();
      q.staging_order.clear();
    }
    // Retire expired queries after their final drain.
    if (now >= q.plan.end_time) {
      if (expired != nullptr) {
        expired->push_back(it->first);
      }
      retired_stats_[it->first] = q.stats;
      it = queries_.erase(it);
    } else {
      ++it;
    }
  }
  return batches;
}

TimeMicros ScrubAgent::BackoffFor(int attempts) {
  TimeMicros base = config_.retransmit_backoff;
  for (int i = 0; i < attempts && base < 8 * config_.retransmit_backoff;
       ++i) {
    base *= 2;
  }
  // +/-25% jitter so a fleet's retries do not synchronize.
  const TimeMicros quarter = std::max<TimeMicros>(base / 4, 1);
  return base - quarter +
         static_cast<TimeMicros>(
             retry_rng_.NextBelow(static_cast<uint64_t>(2 * quarter)));
}

std::vector<EventBatch> ScrubAgent::Retransmits(TimeMicros now) {
  std::vector<EventBatch> out;
  for (auto it = retransmit_.begin(); it != retransmit_.end();) {
    std::deque<PendingBatch>& held = it->second;
    AgentQueryStats* stats = MutableStatsFor(it->first);
    for (auto pit = held.begin(); pit != held.end();) {
      if (now >= pit->deadline) {
        // Budget spent: the window this data belonged to has closed at
        // central anyway. Shed and count.
        if (stats != nullptr) {
          ++stats->batches_expired;
          stats->events_abandoned += pit->batch.event_count;
        }
        pit = held.erase(pit);
        continue;
      }
      if (now >= pit->next_retry) {
        out.push_back(pit->batch);
        ++pit->attempts;
        if (stats != nullptr) {
          ++stats->batches_retransmitted;
        }
        pit->next_retry = now + BackoffFor(pit->attempts);
      }
      ++pit;
    }
    it = held.empty() ? retransmit_.erase(it) : std::next(it);
  }
  return out;
}

void ScrubAgent::OnAck(QueryId query_id, uint64_t seq) {
  const auto it = retransmit_.find(query_id);
  if (it == retransmit_.end()) {
    return;
  }
  std::deque<PendingBatch>& held = it->second;
  for (auto pit = held.begin(); pit != held.end(); ++pit) {
    if (pit->batch.seq == seq) {
      AgentQueryStats* stats = MutableStatsFor(query_id);
      if (stats != nullptr) {
        ++stats->batches_acked;
      }
      held.erase(pit);
      break;
    }
  }
  if (held.empty()) {
    retransmit_.erase(it);
  }
}

size_t ScrubAgent::pending_retransmits() const {
  size_t n = 0;
  for (const auto& [qid, held] : retransmit_) {
    n += held.size();
  }
  return n;
}

AgentQueryStats* ScrubAgent::MutableStatsFor(QueryId query_id) {
  const auto it = queries_.find(query_id);
  if (it != queries_.end()) {
    return &it->second.stats;
  }
  const auto rit = retired_stats_.find(query_id);
  return rit == retired_stats_.end() ? nullptr : &rit->second;
}

const AgentQueryStats* ScrubAgent::StatsFor(QueryId query_id) const {
  const auto it = queries_.find(query_id);
  if (it != queries_.end()) {
    return &it->second.stats;
  }
  const auto rit = retired_stats_.find(query_id);
  return rit == retired_stats_.end() ? nullptr : &rit->second;
}

}  // namespace scrub
