// Streaming statistics and distribution quantiles used by the sampling
// error-bound machinery (paper Section 3.2, Equations 1-3).

#ifndef SRC_SKETCH_STATS_H_
#define SRC_SKETCH_STATS_H_

#include <cstdint>

namespace scrub {

// Welford's online mean/variance. Numerically stable; merge supported via
// the parallel-variance (Chan) formula so hosts can reduce partials.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  // n observations all equal to `value` (zero variance). Used to fold the
  // "sampled but filtered out by selection" zero readings into Eq. 3 without
  // looping.
  static RunningStats Constant(uint64_t n, double value);

  uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  // Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double sum() const { return n_ == 0 ? 0.0 : mean_ * static_cast<double>(n_); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Inverse standard normal CDF (Acklam's rational approximation, |e|<1.15e-9).
double NormalQuantile(double p);

// Inverse Student-t CDF with df degrees of freedom (Hill's algorithm; exact
// forms for df=1,2). Used for t_{n-1, 1-alpha/2} in Equation 2.
double StudentTQuantile(double p, double df);

}  // namespace scrub

#endif  // SRC_SKETCH_STATS_H_
