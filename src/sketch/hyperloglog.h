// HyperLogLog cardinality estimator.
//
// Scrub's COUNT_DISTINCT uses HyperLogLog (paper Section 3.2, citing Heule et
// al., "HyperLogLog in Practice"). This implementation uses 2^p registers
// with the standard alpha_m bias constant and the linear-counting small-range
// correction from HLL++; that keeps relative error near 1.04/sqrt(2^p)
// across the ranges our workloads produce (thousands to millions of keys).
//
// Registers are mergeable (max per register), which is what lets ScrubCentral
// combine partial sketches arriving from many hosts.

#ifndef SRC_SKETCH_HYPERLOGLOG_H_
#define SRC_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace scrub {

class HyperLogLog {
 public:
  // precision in [4, 18]; 2^precision registers. Default 14 -> ~0.8% error.
  explicit HyperLogLog(int precision = 14);

  void AddHash(uint64_t hash);
  void Add(std::string_view key);
  void Add(int64_t key);

  double Estimate() const;

  // Union: other must have the same precision.
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }
  size_t SizeBytes() const { return registers_.size(); }

  void Reset();

 private:
  int precision_;
  uint64_t mask_;
  std::vector<uint8_t> registers_;
};

// 64-bit mix used for hashing keys into HLL (also reused by SpaceSaving
// tests). SplitMix64 finalizer: full avalanche.
uint64_t HashMix64(uint64_t x);
uint64_t HashBytes64(const void* data, size_t len);

}  // namespace scrub

#endif  // SRC_SKETCH_HYPERLOGLOG_H_
