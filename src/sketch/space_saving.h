// SpaceSaving stream summary for TOP-K.
//
// Scrub's TOP-K aggregate uses the space-saving algorithm (paper Section 3.2,
// citing Metwally, Agrawal, El Abbadi, ICDT'05). With capacity m counters it
// guarantees, for every reported item, count_hat - count_true <= N/m where N
// is the stream length, and every item with true count > N/m is in the
// summary. The `error` field carries the per-item overestimate bound.
//
// Merging two summaries (needed when ScrubCentral combines per-window
// partials) follows the standard approach: sum counts of shared keys, offset
// missing keys by the other summary's minimum, then trim back to capacity.

#ifndef SRC_SKETCH_SPACE_SAVING_H_
#define SRC_SKETCH_SPACE_SAVING_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace scrub {

template <typename Key, typename Hash = std::hash<Key>>
class SpaceSaving {
 public:
  struct Entry {
    Key key;
    uint64_t count = 0;  // upper bound on the true count
    uint64_t error = 0;  // count - error is a lower bound
  };

  explicit SpaceSaving(size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  void Add(const Key& key, uint64_t increment = 1) {
    total_ += increment;
    auto it = counters_.find(key);
    if (it != counters_.end()) {
      it->second.count += increment;
      return;
    }
    if (counters_.size() < capacity_) {
      counters_.emplace(key, Entry{key, increment, 0});
      return;
    }
    // Evict the minimum counter; the newcomer inherits its count as error.
    auto min_it = MinEntry();
    Entry evicted = min_it->second;
    counters_.erase(min_it);
    counters_.emplace(
        key, Entry{key, evicted.count + increment, evicted.count});
  }

  // Entries sorted by descending count; at most k (0 = all).
  std::vector<Entry> TopK(size_t k = 0) const {
    std::vector<Entry> out;
    out.reserve(counters_.size());
    for (const auto& [key, entry] : counters_) {
      out.push_back(entry);
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.count > b.count;
    });
    if (k > 0 && out.size() > k) {
      out.resize(k);
    }
    return out;
  }

  // Guaranteed maximum overestimation for any reported count: N/m once the
  // summary is full, else 0.
  uint64_t ErrorBound() const {
    return counters_.size() < capacity_ ? 0 : total_ / capacity_;
  }

  void Merge(const SpaceSaving& other) {
    // Items absent from one summary could have occurred up to that summary's
    // min count times; add that as error-carrying offset.
    const uint64_t self_min = MinCountOrZero();
    const uint64_t other_min = other.MinCountOrZero();
    std::unordered_map<Key, Entry, Hash> merged;
    for (const auto& [key, entry] : counters_) {
      Entry e = entry;
      const auto oit = other.counters_.find(key);
      if (oit != other.counters_.end()) {
        e.count += oit->second.count;
        e.error += oit->second.error;
      } else {
        e.count += other_min;
        e.error += other_min;
      }
      merged.emplace(key, e);
    }
    for (const auto& [key, entry] : other.counters_) {
      if (merged.count(key)) {
        continue;
      }
      Entry e = entry;
      e.count += self_min;
      e.error += self_min;
      merged.emplace(key, e);
    }
    // Trim back to capacity, keeping the heaviest.
    if (merged.size() > capacity_) {
      std::vector<Entry> all;
      all.reserve(merged.size());
      for (auto& [key, entry] : merged) {
        all.push_back(std::move(entry));
      }
      std::nth_element(all.begin(), all.begin() + capacity_ - 1, all.end(),
                       [](const Entry& a, const Entry& b) {
                         return a.count > b.count;
                       });
      all.resize(capacity_);
      merged.clear();
      for (auto& entry : all) {
        Key k = entry.key;
        merged.emplace(std::move(k), std::move(entry));
      }
    }
    counters_ = std::move(merged);
    total_ += other.total_;
  }

  size_t size() const { return counters_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total() const { return total_; }

 private:
  typename std::unordered_map<Key, Entry, Hash>::iterator MinEntry() {
    auto min_it = counters_.begin();
    for (auto it = counters_.begin(); it != counters_.end(); ++it) {
      if (it->second.count < min_it->second.count) {
        min_it = it;
      }
    }
    return min_it;
  }

  uint64_t MinCountOrZero() const {
    if (counters_.size() < capacity_) {
      return 0;  // summary not full: absent keys truly have count 0
    }
    uint64_t min_count = UINT64_MAX;
    for (const auto& [key, entry] : counters_) {
      min_count = std::min(min_count, entry.count);
    }
    return min_count == UINT64_MAX ? 0 : min_count;
  }

  size_t capacity_;
  uint64_t total_ = 0;
  std::unordered_map<Key, Entry, Hash> counters_;
};

}  // namespace scrub

#endif  // SRC_SKETCH_SPACE_SAVING_H_
