// Multi-stage (two-stage cluster) sampling estimator with error bounds.
//
// Implements the paper's Equations 1-3 (Section 3.2, following
// ApproxHadoop): to approximate a SUM over all events on all hosts, Scrub
// samples n of N hosts (host-level sampling) and m_i of M_i events on each
// sampled host i (event-level sampling). The estimator is
//
//   tau_hat = (N/n) * sum_i (M_i/m_i) * sum_j v_ij            (Eq. 1)
//   eps     = t_{n-1, 1-alpha/2} * sqrt(Var_hat(tau_hat))     (Eq. 2)
//   Var_hat = N(N-n) s_u^2 / n
//           + (N/n) * sum_i M_i (M_i - m_i) s_i^2 / m_i       (Eq. 3)
//
// where s_i^2 is the sample variance of readings on host i and s_u^2 is the
// sample variance of the estimated per-host totals. COUNT is the special
// case v_ij = 1 with s_i^2 = 0.

#ifndef SRC_SKETCH_MULTISTAGE_H_
#define SRC_SKETCH_MULTISTAGE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/sketch/stats.h"

namespace scrub {

// Per-sampled-host accumulator, maintained incrementally by ScrubCentral as
// sampled events arrive: the running stats over observed readings plus the
// host's (estimated or reported) total event population M_i.
struct HostSampleStats {
  RunningStats readings;      // the m_i sampled values v_ij
  uint64_t population = 0;    // M_i: events of the queried type on host i

  uint64_t sampled() const { return readings.count(); }
};

struct ApproxSum {
  double estimate = 0.0;      // tau_hat
  double error_bound = 0.0;   // eps at the requested confidence
  double variance = 0.0;      // Var_hat(tau_hat)
  double confidence = 0.95;
  uint64_t hosts_sampled = 0;      // n
  uint64_t hosts_population = 0;   // N
  uint64_t events_sampled = 0;     // sum m_i
  uint64_t events_population = 0;  // sum over sampled hosts of M_i
};

// Computes Equations 1-3 over the per-host partials.
//   total_hosts: N (hosts matched by the @[...] clause before host sampling).
//   confidence: e.g. 0.95 for a 95% interval.
// Requires at least one sampled host; with n == 1 the t quantile is
// undefined, so the bound degrades to +infinity unless variance is zero.
Result<ApproxSum> EstimateSum(const std::vector<HostSampleStats>& hosts,
                              uint64_t total_hosts, double confidence);

// COUNT specialisation: readings are implicitly 1, so only m_i and M_i
// matter. Implemented via EstimateSum on indicator readings' sufficient
// statistics (per-host variance of the constant 1 is zero; host-to-host
// variance still contributes).
Result<ApproxSum> EstimateCount(const std::vector<HostSampleStats>& hosts,
                                uint64_t total_hosts, double confidence);

}  // namespace scrub

#endif  // SRC_SKETCH_MULTISTAGE_H_
