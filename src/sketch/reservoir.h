// Reservoir sampling: a uniform sample of fixed size k from a stream of
// unknown length (Vitter's Algorithm R). Used by the logging baseline's
// batch engine and by diagnostics that need a representative event sample.

#ifndef SRC_SKETCH_RESERVOIR_H_
#define SRC_SKETCH_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace scrub {

template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    sample_.reserve(capacity);
  }

  void Add(T item) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(std::move(item));
      return;
    }
    const uint64_t j = rng_.NextBelow(seen_);
    if (j < capacity_) {
      sample_[j] = std::move(item);
    }
  }

  const std::vector<T>& sample() const { return sample_; }
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  Rng rng_;
  uint64_t seen_ = 0;
  std::vector<T> sample_;
};

}  // namespace scrub

#endif  // SRC_SKETCH_RESERVOIR_H_
