#include "src/sketch/hyperloglog.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace scrub {

uint64_t HashMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashBytes64(const void* data, size_t len) {
  // FNV-1a followed by a mix finalizer; quality is plenty for sketching.
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return HashMix64(h);
}

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  assert(precision >= 4 && precision <= 18);
  const size_t m = size_t{1} << precision;
  mask_ = m - 1;
  registers_.assign(m, 0);
}

void HyperLogLog::AddHash(uint64_t hash) {
  const size_t idx = hash & mask_;
  const uint64_t rest = hash >> precision_;
  // Rank: position of first 1-bit in the remaining (64 - p) bits, 1-based.
  const int rank =
      rest == 0 ? (64 - precision_ + 1) : (__builtin_ctzll(rest) + 1);
  if (registers_[idx] < rank) {
    registers_[idx] = static_cast<uint8_t>(rank);
  }
}

void HyperLogLog::Add(std::string_view key) {
  AddHash(HashBytes64(key.data(), key.size()));
}

void HyperLogLog::Add(int64_t key) {
  AddHash(HashMix64(static_cast<uint64_t>(key)));
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double sum = 0.0;
  size_t zeros = 0;
  for (const uint8_t r : registers_) {
    sum += std::ldexp(1.0, -r);
    if (r == 0) {
      ++zeros;
    }
  }
  double alpha;
  if (registers_.size() <= 16) {
    alpha = 0.673;
  } else if (registers_.size() <= 32) {
    alpha = 0.697;
  } else if (registers_.size() <= 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  const double raw = alpha * m * m / sum;
  // Small-range correction: linear counting while any register is empty and
  // the raw estimate is below the 2.5m threshold.
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  assert(precision_ == other.precision_);
  for (size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
}

void HyperLogLog::Reset() {
  std::fill(registers_.begin(), registers_.end(), 0);
}

}  // namespace scrub
