#include "src/sketch/stats.h"

#include <cassert>
#include <cmath>

namespace scrub {

void RunningStats::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

RunningStats RunningStats::Constant(uint64_t n, double value) {
  RunningStats s;
  s.n_ = n;
  s.mean_ = n == 0 ? 0.0 : value;
  s.m2_ = 0.0;
  return s;
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q;
  double r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double StudentTQuantile(double p, double df) {
  assert(p > 0.0 && p < 1.0);
  assert(df >= 1.0);
  if (p == 0.5) {
    return 0.0;
  }
  // Symmetric: solve for the upper half.
  if (p < 0.5) {
    return -StudentTQuantile(1.0 - p, df);
  }
  // Exact closed forms for 1 and 2 degrees of freedom.
  if (df == 1.0) {
    return std::tan(M_PI * (p - 0.5));
  }
  if (df == 2.0) {
    const double alpha = 2.0 * (1.0 - p);
    return std::sqrt(2.0 / (alpha * (2.0 - alpha)) - 2.0);
  }
  // Hill (1970) approximation, refined with one Cornish-Fisher step.
  const double z = NormalQuantile(p);
  const double g1 = (z * z * z + z) / 4.0;
  const double g2 = (5.0 * std::pow(z, 5) + 16.0 * z * z * z + 3.0 * z) / 96.0;
  const double g3 =
      (3.0 * std::pow(z, 7) + 19.0 * std::pow(z, 5) + 17.0 * z * z * z -
       15.0 * z) /
      384.0;
  const double g4 = (79.0 * std::pow(z, 9) + 776.0 * std::pow(z, 7) +
                     1482.0 * std::pow(z, 5) - 1920.0 * z * z * z - 945.0 * z) /
                    92160.0;
  return z + g1 / df + g2 / (df * df) + g3 / (df * df * df) +
         g4 / (df * df * df * df);
}

}  // namespace scrub
