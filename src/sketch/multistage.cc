#include "src/sketch/multistage.h"

#include <cmath>
#include <limits>

namespace scrub {
namespace {

Result<ApproxSum> EstimateImpl(const std::vector<HostSampleStats>& hosts,
                               uint64_t total_hosts, double confidence,
                               bool count_mode) {
  if (hosts.empty()) {
    return FailedPrecondition("no sampled hosts");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    return InvalidArgument("confidence must be in (0, 1)");
  }
  const double big_n = static_cast<double>(total_hosts);
  const double n = static_cast<double>(hosts.size());
  if (n > big_n) {
    return InvalidArgument("sampled hosts exceed host population");
  }

  ApproxSum out;
  out.confidence = confidence;
  out.hosts_sampled = hosts.size();
  out.hosts_population = total_hosts;

  // Per-host estimated totals tau_i = (M_i / m_i) * sum_j v_ij, and the
  // within-host variance term of Eq. 3.
  RunningStats host_totals;
  double within = 0.0;
  for (const HostSampleStats& h : hosts) {
    const double mi = static_cast<double>(h.sampled());
    const double big_mi = static_cast<double>(h.population);
    out.events_sampled += h.sampled();
    out.events_population += h.population;
    if (h.sampled() == 0) {
      // A sampled host that produced no samples estimates a zero total and
      // contributes no within-host variance information.
      host_totals.Add(0.0);
      continue;
    }
    const double sum_vij =
        count_mode ? mi : h.readings.sum();
    const double tau_i = (big_mi / mi) * sum_vij;
    host_totals.Add(tau_i);
    const double s2_i = count_mode ? 0.0 : h.readings.variance();
    within += big_mi * (big_mi - mi) * s2_i / mi;
  }

  // host_totals.sum() is sum_i tau_i; Eq. 1 is (N/n) * sum_i tau_i.
  out.estimate = (big_n / n) * host_totals.sum();

  const double s2_u = host_totals.variance();
  out.variance = big_n * (big_n - n) * s2_u / n + (big_n / n) * within;
  if (out.variance < 0.0) {
    out.variance = 0.0;  // guard FP cancellation
  }

  if (out.variance == 0.0) {
    out.error_bound = 0.0;
  } else if (hosts.size() < 2) {
    out.error_bound = std::numeric_limits<double>::infinity();
  } else {
    const double t =
        StudentTQuantile(1.0 - (1.0 - confidence) / 2.0, n - 1.0);
    out.error_bound = t * std::sqrt(out.variance);
  }
  return out;
}

}  // namespace

Result<ApproxSum> EstimateSum(const std::vector<HostSampleStats>& hosts,
                              uint64_t total_hosts, double confidence) {
  return EstimateImpl(hosts, total_hosts, confidence, /*count_mode=*/false);
}

Result<ApproxSum> EstimateCount(const std::vector<HostSampleStats>& hosts,
                                uint64_t total_hosts, double confidence) {
  return EstimateImpl(hosts, total_hosts, confidence, /*count_mode=*/true);
}

}  // namespace scrub
