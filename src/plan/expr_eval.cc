#include "src/plan/expr_eval.h"

#include "src/common/strings.h"

namespace scrub {
namespace {

int SourceIndexOf(const std::string& qualifier,
                  const std::vector<std::string>& sources) {
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i] == qualifier) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

Result<CompiledExpr> CompileExpr(const Expr& expr,
                                 const std::vector<std::string>& sources,
                                 const std::vector<SchemaPtr>& schemas) {
  CompiledExpr out;
  switch (expr.kind) {
    case ExprKind::kLiteral:
      out.kind = CompiledKind::kLiteral;
      out.literal = expr.literal;
      return out;
    case ExprKind::kFieldRef: {
      const int src = SourceIndexOf(expr.qualifier, sources);
      if (src < 0) {
        return InternalError(StrFormat(
            "unresolved qualifier '%s' (analyzer should have bound it)",
            expr.qualifier.c_str()));
      }
      out.source = src;
      if (expr.field == kRequestIdField) {
        out.kind = CompiledKind::kRequestId;
        return out;
      }
      if (expr.field == kTimestampField) {
        out.kind = CompiledKind::kTimestamp;
        return out;
      }
      const int idx = schemas[static_cast<size_t>(src)]->FieldIndex(expr.field);
      if (idx < 0) {
        return InternalError(StrFormat("field '%s' vanished from schema '%s'",
                                       expr.field.c_str(),
                                       sources[static_cast<size_t>(src)].c_str()));
      }
      out.kind = CompiledKind::kField;
      out.field_index = idx;
      out.path = expr.path;
      out.node_count += static_cast<int>(expr.path.size());
      return out;
    }
    case ExprKind::kUnary: {
      out.kind = CompiledKind::kUnary;
      out.unary_op = expr.unary_op;
      Result<CompiledExpr> child =
          CompileExpr(*expr.children[0], sources, schemas);
      if (!child.ok()) {
        return child;
      }
      out.node_count += child->node_count;
      out.children.push_back(std::move(child).value());
      return out;
    }
    case ExprKind::kBinary: {
      out.kind = CompiledKind::kBinary;
      out.binary_op = expr.binary_op;
      for (const ExprPtr& c : expr.children) {
        Result<CompiledExpr> child = CompileExpr(*c, sources, schemas);
        if (!child.ok()) {
          return child;
        }
        out.node_count += child->node_count;
        out.children.push_back(std::move(child).value());
      }
      return out;
    }
    case ExprKind::kInList: {
      out.kind = CompiledKind::kInList;
      Result<CompiledExpr> probe =
          CompileExpr(*expr.children[0], sources, schemas);
      if (!probe.ok()) {
        return probe;
      }
      out.node_count += probe->node_count;
      out.children.push_back(std::move(probe).value());
      for (size_t i = 1; i < expr.children.size(); ++i) {
        if (expr.children[i]->kind != ExprKind::kLiteral) {
          return InternalError("IN members must be literals");
        }
        out.in_list.push_back(expr.children[i]->literal);
        ++out.node_count;
      }
      return out;
    }
    case ExprKind::kAggregate:
      return InternalError(
          "aggregate reached the scalar expression compiler");
    case ExprKind::kStar:
      return InternalError("'*' reached the scalar expression compiler");
  }
  return InternalError("unhandled expression kind");
}

Value ApplyBinaryOp(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    const bool l = lhs.is_bool() && lhs.AsBool();
    const bool r = rhs.is_bool() && rhs.AsBool();
    return Value(op == BinaryOp::kAnd ? (l && r) : (l || r));
  }
  if (op == BinaryOp::kContains) {
    if (!lhs.is_list()) {
      return Value(false);
    }
    for (const Value& item : lhs.AsList()) {
      if (item == rhs) {
        return Value(true);
      }
    }
    return Value(false);
  }

  if (IsArithmeticOp(op)) {
    if (!lhs.is_numeric() || !rhs.is_numeric()) {
      return Value::Null();
    }
    const bool integral = lhs.is_int() && rhs.is_int();
    if (integral && op != BinaryOp::kDiv) {
      const int64_t a = lhs.AsInt();
      const int64_t b = rhs.AsInt();
      switch (op) {
        case BinaryOp::kAdd:
          return Value(a + b);
        case BinaryOp::kSub:
          return Value(a - b);
        case BinaryOp::kMul:
          return Value(a * b);
        default:
          break;
      }
    }
    const double a = lhs.AsNumber();
    const double b = rhs.AsNumber();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(a + b);
      case BinaryOp::kSub:
        return Value(a - b);
      case BinaryOp::kMul:
        return Value(a * b);
      case BinaryOp::kDiv:
        if (b == 0.0) {
          return Value::Null();
        }
        return Value(a / b);
      default:
        break;
    }
    return Value::Null();
  }

  // Comparisons: null never matches (except = / != treat two nulls equal).
  if (lhs.is_null() || rhs.is_null()) {
    if (op == BinaryOp::kEq) {
      return Value(lhs.is_null() && rhs.is_null());
    }
    if (op == BinaryOp::kNe) {
      return Value(lhs.is_null() != rhs.is_null());
    }
    return Value(false);
  }
  switch (op) {
    case BinaryOp::kEq:
      return Value(lhs == rhs);
    case BinaryOp::kNe:
      return Value(lhs != rhs);
    case BinaryOp::kLt:
      return Value(lhs.Compare(rhs) < 0);
    case BinaryOp::kLe:
      return Value(lhs.Compare(rhs) <= 0);
    case BinaryOp::kGt:
      return Value(lhs.Compare(rhs) > 0);
    case BinaryOp::kGe:
      return Value(lhs.Compare(rhs) >= 0);
    default:
      break;
  }
  return Value::Null();
}

Value ApplyUnaryOp(UnaryOp op, const Value& operand) {
  if (op == UnaryOp::kNegate) {
    if (!operand.is_numeric()) {
      return Value::Null();
    }
    if (operand.is_int()) {
      return Value(-operand.AsInt());
    }
    return Value(-operand.AsDoubleExact());
  }
  return Value(!(operand.is_bool() && operand.AsBool()));
}

namespace {

Value EvalBinary(const CompiledExpr& e, const EventTuple& tuple) {
  const BinaryOp op = e.binary_op;
  // Short-circuit logic on the host hot path.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    const Value lhs = EvalExpr(e.children[0], tuple);
    const bool l = lhs.is_bool() && lhs.AsBool();
    if (op == BinaryOp::kAnd && !l) {
      return Value(false);
    }
    if (op == BinaryOp::kOr && l) {
      return Value(true);
    }
    const Value rhs = EvalExpr(e.children[1], tuple);
    return Value(rhs.is_bool() && rhs.AsBool());
  }
  return ApplyBinaryOp(op, EvalExpr(e.children[0], tuple),
                       EvalExpr(e.children[1], tuple));
}

}  // namespace

Value EvalExpr(const CompiledExpr& expr, const EventTuple& tuple) {
  switch (expr.kind) {
    case CompiledKind::kLiteral:
      return expr.literal;
    case CompiledKind::kField: {
      const Event* event = tuple[static_cast<size_t>(expr.source)];
      if (event == nullptr) {
        return Value::Null();
      }
      const Value* v = &event->field(static_cast<size_t>(expr.field_index));
      for (const std::string& step : expr.path) {
        if (!v->is_object()) {
          return Value::Null();
        }
        const Value* next = v->AsObject().Find(step);
        if (next == nullptr) {
          return Value::Null();
        }
        v = next;
      }
      return *v;
    }
    case CompiledKind::kRequestId: {
      const Event* event = tuple[static_cast<size_t>(expr.source)];
      if (event == nullptr) {
        return Value::Null();
      }
      return Value(static_cast<int64_t>(event->request_id()));
    }
    case CompiledKind::kTimestamp: {
      const Event* event = tuple[static_cast<size_t>(expr.source)];
      if (event == nullptr) {
        return Value::Null();
      }
      return Value(static_cast<int64_t>(event->timestamp()));
    }
    case CompiledKind::kUnary: {
      const Value operand = EvalExpr(expr.children[0], tuple);
      if (expr.unary_op == UnaryOp::kNegate) {
        if (!operand.is_numeric()) {
          return Value::Null();
        }
        if (operand.is_int()) {
          return Value(-operand.AsInt());
        }
        return Value(-operand.AsDoubleExact());
      }
      return Value(!(operand.is_bool() && operand.AsBool()));
    }
    case CompiledKind::kBinary:
      return EvalBinary(expr, tuple);
    case CompiledKind::kInList: {
      const Value probe = EvalExpr(expr.children[0], tuple);
      if (probe.is_null()) {
        return Value(false);
      }
      for (const Value& member : expr.in_list) {
        if (probe == member) {
          return Value(true);
        }
      }
      return Value(false);
    }
  }
  return Value::Null();
}

Value EvalExprSingle(const CompiledExpr& expr, const Event& event) {
  EventTuple tuple{&event};
  return EvalExpr(expr, tuple);
}

bool EvalPredicate(const CompiledExpr& expr, const EventTuple& tuple) {
  const Value v = EvalExpr(expr, tuple);
  return v.is_bool() && v.AsBool();
}

bool EvalPredicateSingle(const CompiledExpr& expr, const Event& event) {
  EventTuple tuple{&event};
  return EvalPredicate(expr, tuple);
}

}  // namespace scrub
