// Vectorized expression evaluation over columnar batches.
//
// These are the batch-oriented twins of EvalExpr/EvalPredicate: identical
// operator semantics (they delegate to ApplyBinaryOp and mirror EvalExpr's
// null/short-circuit rules node for node), but driven by a selection vector
// over a ColumnBatch instead of one Event at a time. EvalPredicateBatch is
// the agent-flush and central-ingest hot loop: a conjunct compacts the
// selection in place, and simple `field <cmp> literal` conjuncts run the
// branch-free RunCompareKernel below instead of boxing a Value per row.

#ifndef SRC_PLAN_VECTORIZED_H_
#define SRC_PLAN_VECTORIZED_H_

#include <cstdint>
#include <vector>

#include "src/event/column_batch.h"
#include "src/plan/expr_eval.h"
#include "src/plan/expr_ir.h"

namespace scrub {

// Evaluates a single-source compiled expression at `row` of the batch.
// Exactly EvalExprSingle's semantics; expr.source must be 0.
Value EvalExprColumns(const CompiledExpr& expr, const ColumnBatch& batch,
                      size_t row);

// True iff the expression evaluates to boolean true at `row`.
bool EvalPredicateColumns(const CompiledExpr& expr, const ColumnBatch& batch,
                          size_t row);

// Filters `selection` (row indices into `batch`, in order) down to the rows
// where the predicate holds, compacting in place and preserving order.
// Calling this once per conjunct over a shrinking selection is the columnar
// mirror of the row path's per-event short-circuit conjunct loop.
void EvalPredicateBatch(const CompiledExpr& expr, const ColumnBatch& batch,
                        std::vector<uint32_t>* selection);

// ---- Branch-free selection-vector kernels ----------------------------------

// Compacts `selection` to the rows where `field <op> literal` (operand order
// per `field_on_lhs`) holds, exactly as the per-row ApplyBinaryOp fallback
// would, but as a typed contiguous loop with an arithmetic keep predicate —
// an unconditional `sel[kept] = r; kept += keep` compaction with no per-row
// branch, so the compiler can auto-vectorize it. The comparison forms are
// derived from Value::Compare's exact semantics (Compare() answers 0 when
// NaN is involved, so Le compiles to !(v > lit), never (v <= lit)), and the
// null-row verdict is probed once through ApplyBinaryOp itself, so the
// kernels cannot drift from the row path. Kernels exist for:
//   * int/double columns vs int/double literals,
//   * string columns vs string literals,
//   * dictionary columns vs any literal (one ApplyBinaryOp per dictionary
//     entry builds a per-code verdict table, then rows compare codes),
//   * any typed (non-generic) column vs a null literal (constant verdicts).
// Returns false — selection untouched — when no kernel matches; callers fall
// back to the per-row evaluator.
bool RunCompareKernel(const ColumnBatch& batch, size_t field, BinaryOp op,
                      const Value& literal, bool field_on_lhs,
                      std::vector<uint32_t>* selection);

// ---- Batched group-key / aggregate-argument evaluation ---------------------

// The per-program values for every selected row: values[p][i] is program p
// evaluated at selection[i]. A missing (empty) inner vector means the
// program list was empty.
struct FoldedColumns {
  std::vector<std::vector<Value>> values;  // [program][selection index]
};

// Evaluates every program at every selected row in one pass per program.
// Programs that are a single LoadField / LoadRequestId / LoadTimestamp /
// Const instruction gather straight from the typed column storage (no
// per-row interpreter setup); everything else falls back to
// EvalProgramColumns row by row. Pure computation — no charges, no stats —
// so callers may precompute speculatively without observable effects.
void FoldColumns(const std::vector<const ExprProgram*>& programs,
                 const ColumnBatch& batch, const uint32_t* selection,
                 size_t selected, FoldedColumns* out);

}  // namespace scrub

#endif  // SRC_PLAN_VECTORIZED_H_
