// Vectorized expression evaluation over columnar batches.
//
// These are the batch-oriented twins of EvalExpr/EvalPredicate: identical
// operator semantics (they delegate to ApplyBinaryOp and mirror EvalExpr's
// null/short-circuit rules node for node), but driven by a selection vector
// over a ColumnBatch instead of one Event at a time. EvalPredicateBatch is
// the agent-flush and central-ingest hot loop: a conjunct compacts the
// selection in place, and simple `field <cmp> literal` conjuncts read the
// typed column storage directly without materializing a boxed Value per row.

#ifndef SRC_PLAN_VECTORIZED_H_
#define SRC_PLAN_VECTORIZED_H_

#include <cstdint>
#include <vector>

#include "src/event/column_batch.h"
#include "src/plan/expr_eval.h"

namespace scrub {

// Evaluates a single-source compiled expression at `row` of the batch.
// Exactly EvalExprSingle's semantics; expr.source must be 0.
Value EvalExprColumns(const CompiledExpr& expr, const ColumnBatch& batch,
                      size_t row);

// True iff the expression evaluates to boolean true at `row`.
bool EvalPredicateColumns(const CompiledExpr& expr, const ColumnBatch& batch,
                          size_t row);

// Filters `selection` (row indices into `batch`, in order) down to the rows
// where the predicate holds, compacting in place and preserving order.
// Calling this once per conjunct over a shrinking selection is the columnar
// mirror of the row path's per-event short-circuit conjunct loop.
void EvalPredicateBatch(const CompiledExpr& expr, const ColumnBatch& batch,
                        std::vector<uint32_t>* selection);

}  // namespace scrub

#endif  // SRC_PLAN_VECTORIZED_H_
