// Typed register-style expression IR.
//
// CompiledExpr is a tree: convenient to build, but every evaluation walks
// pointers and re-discovers structure the planner already knew at install
// time. Scrub admits long-running standing queries, so anything learned once
// at install is amortized over millions of evaluated events — the paper's
// argument for pushing work toward query admission. LowerExpr flattens a
// CompiledExpr into a linear program over virtual registers with
// pre-resolved constant/list/path pools and a schema-derived type tag per
// instruction. The same program drives the row evaluator, the single-event
// host path, and the vectorized columnar kernels (one lowering, so row and
// columnar semantics cannot drift), and it is the substrate the static
// analysis in expr_analysis.h runs on: the verifier, the abstract
// interpreter, constant folding, and the semantic lint rules all consume
// this IR.
//
// Operator semantics are exactly EvalExpr's: every binary/unary instruction
// routes through ApplyBinaryOp/ApplyUnaryOp, and AND/OR lower to the same
// coerce-then-short-circuit sequence EvalBinary performs (operands are
// side-effect-free, so strict and short-circuit evaluation agree on values;
// the jumps only skip work).

#ifndef SRC_PLAN_EXPR_IR_H_
#define SRC_PLAN_EXPR_IR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/event/column_batch.h"
#include "src/plan/expr_eval.h"

namespace scrub {

// ---------------------------------------------------------------------------
// Type tags.
//
// A TypeMask is the set of runtime value classes a register may hold; the
// lowering stamps each instruction with the mask of its destination, seeded
// from the schema (the analyzer's types, carried through CompileExpr's
// field indexes) and from operator result typing. kMaskNull is always
// possible for field loads: an unset field is null.

using TypeMask = uint8_t;
inline constexpr TypeMask kMaskNull = 1U << 0;
inline constexpr TypeMask kMaskBool = 1U << 1;
inline constexpr TypeMask kMaskInt = 1U << 2;
inline constexpr TypeMask kMaskDouble = 1U << 3;
inline constexpr TypeMask kMaskString = 1U << 4;
inline constexpr TypeMask kMaskList = 1U << 5;
inline constexpr TypeMask kMaskObject = 1U << 6;
inline constexpr TypeMask kMaskAny =
    kMaskNull | kMaskBool | kMaskInt | kMaskDouble | kMaskString | kMaskList |
    kMaskObject;
inline constexpr TypeMask kMaskNumeric = kMaskInt | kMaskDouble;

// The mask a declared schema field may present at runtime (always nullable).
TypeMask FieldTypeMask(FieldType type);
// "null|int", "bool", "any" — for explain output.
std::string TypeMaskName(TypeMask mask);
// The mask of one concrete runtime value.
TypeMask ValueTypeMask(const Value& v);

// ---------------------------------------------------------------------------
// Instructions.

enum class IrOp : uint8_t {
  kConst,          // dst <- consts[imm]
  kLoadField,      // dst <- source a, field b; descend paths[imm] if imm >= 0
  kLoadRequestId,  // dst <- request id of source a (null if event absent)
  kLoadTimestamp,  // dst <- timestamp of source a (null if event absent)
  kNeg,            // dst <- -a           (null on non-numeric)
  kNot,            // dst <- !(a is bool true)
  kCoerceBool,     // dst <- bool(a is bool true)
  kAdd,            // dst <- a + b        (binary ops: ApplyBinaryOp exactly)
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,     // dst <- b in list a
  kInList,       // dst <- a non-null and a in lists[imm]
  kJumpIfFalse,  // if !(a is bool true) goto inst imm (forward only)
  kJumpIfTrue,   // if  (a is bool true) goto inst imm (forward only)
};

const char* IrOpName(IrOp op);
// kAdd..kContains map onto their BinaryOp twins; invalid for other ops.
bool IsBinaryIrOp(IrOp op);
BinaryOp BinaryOpOf(IrOp op);

struct IrInst {
  IrOp op = IrOp::kConst;
  TypeMask types = 0;  // possible classes of dst; 0 for jumps (no dst)
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  int32_t imm = -1;  // const/list/path pool index, or jump target
};

// A lowered expression: instructions plus the pools they index. Executing
// the instructions in order (taking forward jumps) leaves the expression's
// value in register `result`.
struct ExprProgram {
  std::vector<IrInst> insts;
  std::vector<Value> consts;
  std::vector<std::vector<Value>> lists;         // IN membership pools
  std::vector<std::vector<std::string>> paths;   // nested-object descents
  uint16_t num_regs = 0;
  uint16_t result = 0;
  uint16_t source_count = 1;

  bool empty() const { return insts.empty(); }
};

// Lowers a compiled expression. `schemas` is indexed by source (the same
// list CompileExpr resolved field indexes against) and seeds the per-field
// type tags. With `fold` (the default), subtrees whose value is decidable at
// install time collapse to a single kConst — including short-circuit
// collapses such as `x AND false` — using the evaluator's own operator
// implementations, so folding cannot drift from evaluation. The verifier
// runs on every lowering; see expr_analysis.h for the hard-fail contract.
ExprProgram LowerExpr(const CompiledExpr& expr,
                      const std::vector<SchemaPtr>& schemas,
                      bool fold = true);

// Row-oriented execution (the EvalExpr twins).
Value EvalProgram(const ExprProgram& program, const EventTuple& tuple);
Value EvalProgramSingle(const ExprProgram& program, const Event& event);
bool EvalProgramPredicate(const ExprProgram& program, const EventTuple& tuple);
bool EvalProgramPredicateSingle(const ExprProgram& program,
                                const Event& event);

// Columnar execution (the vectorized twins; source_count must be 1).
Value EvalProgramColumns(const ExprProgram& program, const ColumnBatch& batch,
                         size_t row);
bool EvalProgramPredicateColumns(const ExprProgram& program,
                                 const ColumnBatch& batch, size_t row);

// One source slot of a mixed join tuple: either a materialized row Event or
// a deferred (batch, row) columnar reference. Both null = absent source
// (loads evaluate to null, like a null EventTuple entry).
struct TupleSlot {
  const Event* event = nullptr;
  const ColumnBatch* batch = nullptr;
  uint32_t row = 0;
};

// Multi-source execution over a mixed tuple: each slot binds its source to
// whichever representation the join buffered, so joined tuples fold
// column-direct — no Event materialization — when their sides arrived
// columnar. Exactly EvalProgram's semantics slot for slot.
Value EvalProgramMixed(const ExprProgram& program,
                       const std::vector<TupleSlot>& slots);
// Compacts `selection` to the rows where the predicate holds, preserving
// order. Constant programs and the `field <cmp> literal` shape skip
// per-row interpretation entirely.
void EvalProgramPredicateBatch(const ExprProgram& program,
                               const ColumnBatch& batch,
                               std::vector<uint32_t>* selection);

// Disassembly, one instruction per line ("r2 = gt r0, r1 : bool").
// `sources`/`schemas` (when given, parallel) render field loads by name.
std::string ProgramToString(const ExprProgram& program,
                            const std::vector<std::string>& sources = {},
                            const std::vector<SchemaPtr>& schemas = {});

}  // namespace scrub

#endif  // SRC_PLAN_EXPR_IR_H_
