#include "src/plan/expr_ir.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "src/common/strings.h"
#include "src/plan/expr_analysis.h"
#include "src/plan/vectorized.h"

namespace scrub {

TypeMask FieldTypeMask(FieldType type) {
  switch (type) {
    case FieldType::kBool:
      return kMaskNull | kMaskBool;
    case FieldType::kInt:
    case FieldType::kLong:
    case FieldType::kDateTime:
      return kMaskNull | kMaskInt;
    case FieldType::kFloat:
    case FieldType::kDouble:
      return kMaskNull | kMaskDouble;
    case FieldType::kString:
      return kMaskNull | kMaskString;
    case FieldType::kBoolList:
    case FieldType::kIntList:
    case FieldType::kLongList:
    case FieldType::kFloatList:
    case FieldType::kDoubleList:
    case FieldType::kStringList:
      return kMaskNull | kMaskList;
    case FieldType::kObject:
      return kMaskNull | kMaskObject;
  }
  return kMaskAny;
}

TypeMask ValueTypeMask(const Value& v) {
  if (v.is_null()) {
    return kMaskNull;
  }
  if (v.is_bool()) {
    return kMaskBool;
  }
  if (v.is_int()) {
    return kMaskInt;
  }
  if (v.is_double()) {
    return kMaskDouble;
  }
  if (v.is_string()) {
    return kMaskString;
  }
  if (v.is_list()) {
    return kMaskList;
  }
  return kMaskObject;
}

std::string TypeMaskName(TypeMask mask) {
  if (mask == kMaskAny) {
    return "any";
  }
  static constexpr std::pair<TypeMask, const char*> kBits[] = {
      {kMaskNull, "null"},     {kMaskBool, "bool"}, {kMaskInt, "int"},
      {kMaskDouble, "double"}, {kMaskString, "string"}, {kMaskList, "list"},
      {kMaskObject, "object"},
  };
  std::string out;
  for (const auto& [bit, name] : kBits) {
    if ((mask & bit) != 0) {
      if (!out.empty()) {
        out += "|";
      }
      out += name;
    }
  }
  return out.empty() ? "none" : out;
}

const char* IrOpName(IrOp op) {
  switch (op) {
    case IrOp::kConst:
      return "const";
    case IrOp::kLoadField:
      return "load";
    case IrOp::kLoadRequestId:
      return "load_request_id";
    case IrOp::kLoadTimestamp:
      return "load_timestamp";
    case IrOp::kNeg:
      return "neg";
    case IrOp::kNot:
      return "not";
    case IrOp::kCoerceBool:
      return "coerce_bool";
    case IrOp::kAdd:
      return "add";
    case IrOp::kSub:
      return "sub";
    case IrOp::kMul:
      return "mul";
    case IrOp::kDiv:
      return "div";
    case IrOp::kEq:
      return "eq";
    case IrOp::kNe:
      return "ne";
    case IrOp::kLt:
      return "lt";
    case IrOp::kLe:
      return "le";
    case IrOp::kGt:
      return "gt";
    case IrOp::kGe:
      return "ge";
    case IrOp::kContains:
      return "contains";
    case IrOp::kInList:
      return "in_list";
    case IrOp::kJumpIfFalse:
      return "jump_if_false";
    case IrOp::kJumpIfTrue:
      return "jump_if_true";
  }
  return "?";
}

bool IsBinaryIrOp(IrOp op) {
  return op >= IrOp::kAdd && op <= IrOp::kContains;
}

BinaryOp BinaryOpOf(IrOp op) {
  switch (op) {
    case IrOp::kAdd:
      return BinaryOp::kAdd;
    case IrOp::kSub:
      return BinaryOp::kSub;
    case IrOp::kMul:
      return BinaryOp::kMul;
    case IrOp::kDiv:
      return BinaryOp::kDiv;
    case IrOp::kEq:
      return BinaryOp::kEq;
    case IrOp::kNe:
      return BinaryOp::kNe;
    case IrOp::kLt:
      return BinaryOp::kLt;
    case IrOp::kLe:
      return BinaryOp::kLe;
    case IrOp::kGt:
      return BinaryOp::kGt;
    case IrOp::kGe:
      return BinaryOp::kGe;
    default:
      return BinaryOp::kContains;
  }
}

namespace {

IrOp IrOpOf(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return IrOp::kAdd;
    case BinaryOp::kSub:
      return IrOp::kSub;
    case BinaryOp::kMul:
      return IrOp::kMul;
    case BinaryOp::kDiv:
      return IrOp::kDiv;
    case BinaryOp::kEq:
      return IrOp::kEq;
    case BinaryOp::kNe:
      return IrOp::kNe;
    case BinaryOp::kLt:
      return IrOp::kLt;
    case BinaryOp::kLe:
      return IrOp::kLe;
    case BinaryOp::kGt:
      return IrOp::kGt;
    case BinaryOp::kGe:
      return IrOp::kGe;
    default:
      return IrOp::kContains;
  }
}

bool Truthy(const Value& v) { return v.is_bool() && v.AsBool(); }

// Install-time evaluation of subtrees whose value does not depend on any
// event. Uses the evaluator's own operator implementations (and EvalBinary's
// short-circuit rules: a constant-false AND operand or constant-true OR
// operand decides the result because operands are side-effect-free), so the
// fold cannot drift from runtime evaluation.
std::optional<Value> TryConstEval(const CompiledExpr& e) {
  switch (e.kind) {
    case CompiledKind::kLiteral:
      return e.literal;
    case CompiledKind::kField:
    case CompiledKind::kRequestId:
    case CompiledKind::kTimestamp:
      return std::nullopt;
    case CompiledKind::kUnary: {
      std::optional<Value> child = TryConstEval(e.children[0]);
      if (!child.has_value()) {
        return std::nullopt;
      }
      return ApplyUnaryOp(e.unary_op, *child);
    }
    case CompiledKind::kBinary: {
      const std::optional<Value> lhs = TryConstEval(e.children[0]);
      const std::optional<Value> rhs = TryConstEval(e.children[1]);
      if (e.binary_op == BinaryOp::kAnd) {
        if (lhs.has_value() && !Truthy(*lhs)) {
          return Value(false);
        }
        if (rhs.has_value() && !Truthy(*rhs)) {
          return Value(false);
        }
        if (lhs.has_value() && rhs.has_value()) {
          return Value(Truthy(*lhs) && Truthy(*rhs));
        }
        return std::nullopt;
      }
      if (e.binary_op == BinaryOp::kOr) {
        if (lhs.has_value() && Truthy(*lhs)) {
          return Value(true);
        }
        if (rhs.has_value() && Truthy(*rhs)) {
          return Value(true);
        }
        if (lhs.has_value() && rhs.has_value()) {
          return Value(Truthy(*lhs) || Truthy(*rhs));
        }
        return std::nullopt;
      }
      if (!lhs.has_value() || !rhs.has_value()) {
        return std::nullopt;
      }
      return ApplyBinaryOp(e.binary_op, *lhs, *rhs);
    }
    case CompiledKind::kInList: {
      std::optional<Value> probe = TryConstEval(e.children[0]);
      if (!probe.has_value()) {
        return std::nullopt;
      }
      if (probe->is_null()) {
        return Value(false);
      }
      for (const Value& member : e.in_list) {
        if (*probe == member) {
          return Value(true);
        }
      }
      return Value(false);
    }
  }
  return std::nullopt;
}

class Lowering {
 public:
  Lowering(const std::vector<SchemaPtr>& schemas, bool fold)
      : schemas_(schemas), fold_(fold) {
    program_.source_count =
        static_cast<uint16_t>(schemas.empty() ? 1 : schemas.size());
  }

  ExprProgram Run(const CompiledExpr& expr) {
    program_.result = Lower(expr);
    program_.num_regs = next_reg_;
    return std::move(program_);
  }

 private:
  uint16_t NewReg() { return next_reg_++; }

  uint16_t Emit(IrOp op, TypeMask types, uint16_t a = 0, uint16_t b = 0,
                int32_t imm = -1) {
    IrInst inst;
    inst.op = op;
    inst.types = types;
    inst.dst = NewReg();
    inst.a = a;
    inst.b = b;
    inst.imm = imm;
    program_.insts.push_back(inst);
    return inst.dst;
  }

  uint16_t EmitConst(Value v) {
    const TypeMask mask = ValueTypeMask(v);
    program_.consts.push_back(std::move(v));
    return Emit(IrOp::kConst, mask, 0, 0,
                static_cast<int32_t>(program_.consts.size()) - 1);
  }

  // Coerce-to-bool of an operand expression: the value both AND and OR
  // produce for each side.
  uint16_t LowerCoerced(const CompiledExpr& e, uint16_t dst) {
    const uint16_t r = Lower(e);
    IrInst inst;
    inst.op = IrOp::kCoerceBool;
    inst.types = kMaskBool;
    inst.dst = dst;
    inst.a = r;
    program_.insts.push_back(inst);
    return dst;
  }

  uint16_t Lower(const CompiledExpr& e) {
    if (fold_) {
      if (std::optional<Value> v = TryConstEval(e); v.has_value()) {
        return EmitConst(std::move(*v));
      }
    }
    switch (e.kind) {
      case CompiledKind::kLiteral:
        return EmitConst(e.literal);
      case CompiledKind::kField: {
        int32_t path_index = -1;
        TypeMask mask = kMaskAny;  // nested descents are dynamically typed
        if (!e.path.empty()) {
          program_.paths.push_back(e.path);
          path_index = static_cast<int32_t>(program_.paths.size()) - 1;
        } else if (static_cast<size_t>(e.source) < schemas_.size() &&
                   static_cast<size_t>(e.field_index) <
                       schemas_[static_cast<size_t>(e.source)]
                           ->field_count()) {
          mask = FieldTypeMask(schemas_[static_cast<size_t>(e.source)]
                                   ->field(static_cast<size_t>(e.field_index))
                                   .type);
        }
        return Emit(IrOp::kLoadField, mask, static_cast<uint16_t>(e.source),
                    static_cast<uint16_t>(e.field_index), path_index);
      }
      case CompiledKind::kRequestId:
        return Emit(IrOp::kLoadRequestId, kMaskNull | kMaskInt,
                    static_cast<uint16_t>(e.source));
      case CompiledKind::kTimestamp:
        return Emit(IrOp::kLoadTimestamp, kMaskNull | kMaskInt,
                    static_cast<uint16_t>(e.source));
      case CompiledKind::kUnary: {
        const uint16_t a = Lower(e.children[0]);
        if (e.unary_op == UnaryOp::kNegate) {
          return Emit(IrOp::kNeg, kMaskNull | kMaskNumeric, a);
        }
        return Emit(IrOp::kNot, kMaskBool, a);
      }
      case CompiledKind::kBinary:
        return LowerBinary(e);
      case CompiledKind::kInList: {
        const uint16_t probe = Lower(e.children[0]);
        program_.lists.push_back(e.in_list);
        return Emit(IrOp::kInList, kMaskBool, probe, 0,
                    static_cast<int32_t>(program_.lists.size()) - 1);
      }
    }
    return EmitConst(Value::Null());
  }

  uint16_t LowerBinary(const CompiledExpr& e) {
    const BinaryOp op = e.binary_op;
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      if (fold_) {
        // One constant side left (a deciding constant folded the whole node
        // in Lower): the result reduces to the other side coerced.
        const std::optional<Value> lhs = TryConstEval(e.children[0]);
        const std::optional<Value> rhs = TryConstEval(e.children[1]);
        if (lhs.has_value() || rhs.has_value()) {
          const CompiledExpr& live =
              lhs.has_value() ? e.children[1] : e.children[0];
          return LowerCoerced(live, NewReg());
        }
      }
      // d <- coerce(lhs); short-circuit; d <- coerce(rhs). Identical to the
      // tree evaluator: AND/OR always produce a bool, built from each side
      // coerced, and the jump only skips the side that cannot matter.
      const uint16_t d = NewReg();
      LowerCoerced(e.children[0], d);
      const size_t jump_at = program_.insts.size();
      IrInst jump;
      jump.op = op == BinaryOp::kAnd ? IrOp::kJumpIfFalse : IrOp::kJumpIfTrue;
      jump.types = 0;
      jump.a = d;
      program_.insts.push_back(jump);
      LowerCoerced(e.children[1], d);
      program_.insts[jump_at].imm =
          static_cast<int32_t>(program_.insts.size());
      return d;
    }
    const uint16_t a = Lower(e.children[0]);
    const uint16_t b = Lower(e.children[1]);
    TypeMask mask = kMaskBool;
    if (IsArithmeticOp(op)) {
      mask = op == BinaryOp::kDiv ? (kMaskNull | kMaskDouble)
                                  : (kMaskNull | kMaskNumeric);
    }
    return Emit(IrOpOf(op), mask, a, b);
  }

  const std::vector<SchemaPtr>& schemas_;
  const bool fold_;
  ExprProgram program_;
  uint16_t next_reg_ = 0;
};

}  // namespace

ExprProgram LowerExpr(const CompiledExpr& expr,
                      const std::vector<SchemaPtr>& schemas, bool fold) {
  Lowering lowering(schemas, fold);
  ExprProgram program = lowering.Run(expr);
  const Status verdict = VerifyProgram(program);
  if (!verdict.ok()) {
#if !defined(NDEBUG) || defined(SCRUB_IR_VERIFY)
    std::fprintf(stderr, "IR verifier rejected a lowered program: %s\n%s",
                 verdict.ToString().c_str(),
                 ProgramToString(program).c_str());
    std::abort();
#endif
  }
  return program;
}

// ---------------------------------------------------------------------------
// Execution.

namespace {

// Loaders bind the program's field references to one representation; the
// interpreter below is the single definition of every operator, so the row
// and columnar paths cannot diverge.
struct TupleLoader {
  const EventTuple* tuple;

  Value LoadField(uint16_t source, uint16_t field,
                  const std::vector<std::string>* path) const {
    const Event* event = (*tuple)[source];
    if (event == nullptr) {
      return Value::Null();
    }
    const Value* v = &event->field(field);
    if (path != nullptr) {
      for (const std::string& step : *path) {
        if (!v->is_object()) {
          return Value::Null();
        }
        const Value* next = v->AsObject().Find(step);
        if (next == nullptr) {
          return Value::Null();
        }
        v = next;
      }
    }
    return *v;
  }
  Value LoadRequestId(uint16_t source) const {
    const Event* event = (*tuple)[source];
    return event == nullptr
               ? Value::Null()
               : Value(static_cast<int64_t>(event->request_id()));
  }
  Value LoadTimestamp(uint16_t source) const {
    const Event* event = (*tuple)[source];
    return event == nullptr
               ? Value::Null()
               : Value(static_cast<int64_t>(event->timestamp()));
  }
};

struct ColumnLoader {
  const ColumnBatch* batch;
  size_t row;

  Value LoadField(uint16_t /*source*/, uint16_t field,
                  const std::vector<std::string>* path) const {
    Value v = batch->ValueAt(field, row);
    if (path != nullptr) {
      for (const std::string& step : *path) {
        if (!v.is_object()) {
          return Value::Null();
        }
        const Value* next = v.AsObject().Find(step);
        if (next == nullptr) {
          return Value::Null();
        }
        Value descended = *next;
        v = std::move(descended);
      }
    }
    return v;
  }
  Value LoadRequestId(uint16_t /*source*/) const {
    return Value(static_cast<int64_t>(batch->request_id(row)));
  }
  Value LoadTimestamp(uint16_t /*source*/) const {
    return Value(static_cast<int64_t>(batch->timestamp(row)));
  }
};

// Mixed join tuple: each slot delegates to the loader matching its
// representation, so a columnar slot reads exactly what ColumnLoader would
// and a row slot exactly what TupleLoader would — the mixed path cannot
// drift from either.
struct MixedLoader {
  const TupleSlot* slots;

  Value LoadField(uint16_t source, uint16_t field,
                  const std::vector<std::string>* path) const {
    const TupleSlot& slot = slots[source];
    if (slot.batch != nullptr) {
      return ColumnLoader{slot.batch, slot.row}.LoadField(source, field,
                                                          path);
    }
    if (slot.event == nullptr) {
      return Value::Null();
    }
    const Value* v = &slot.event->field(field);
    if (path != nullptr) {
      for (const std::string& step : *path) {
        if (!v->is_object()) {
          return Value::Null();
        }
        const Value* next = v->AsObject().Find(step);
        if (next == nullptr) {
          return Value::Null();
        }
        v = next;
      }
    }
    return *v;
  }
  Value LoadRequestId(uint16_t source) const {
    const TupleSlot& slot = slots[source];
    if (slot.batch != nullptr) {
      return Value(static_cast<int64_t>(slot.batch->request_id(slot.row)));
    }
    return slot.event == nullptr
               ? Value::Null()
               : Value(static_cast<int64_t>(slot.event->request_id()));
  }
  Value LoadTimestamp(uint16_t source) const {
    const TupleSlot& slot = slots[source];
    if (slot.batch != nullptr) {
      return Value(static_cast<int64_t>(slot.batch->timestamp(slot.row)));
    }
    return slot.event == nullptr
               ? Value::Null()
               : Value(static_cast<int64_t>(slot.event->timestamp()));
  }
};

template <typename Loader>
Value RunProgram(const ExprProgram& p, const Loader& loader, Value* regs) {
  const size_t n = p.insts.size();
  size_t pc = 0;
  while (pc < n) {
    const IrInst& in = p.insts[pc];
    switch (in.op) {
      case IrOp::kConst:
        regs[in.dst] = p.consts[static_cast<size_t>(in.imm)];
        break;
      case IrOp::kLoadField:
        regs[in.dst] = loader.LoadField(
            in.a, in.b,
            in.imm < 0 ? nullptr : &p.paths[static_cast<size_t>(in.imm)]);
        break;
      case IrOp::kLoadRequestId:
        regs[in.dst] = loader.LoadRequestId(in.a);
        break;
      case IrOp::kLoadTimestamp:
        regs[in.dst] = loader.LoadTimestamp(in.a);
        break;
      case IrOp::kNeg:
        regs[in.dst] = ApplyUnaryOp(UnaryOp::kNegate, regs[in.a]);
        break;
      case IrOp::kNot:
        regs[in.dst] = ApplyUnaryOp(UnaryOp::kNot, regs[in.a]);
        break;
      case IrOp::kCoerceBool:
        regs[in.dst] = Value(Truthy(regs[in.a]));
        break;
      case IrOp::kInList: {
        const Value& probe = regs[in.a];
        bool hit = false;
        if (!probe.is_null()) {
          for (const Value& member : p.lists[static_cast<size_t>(in.imm)]) {
            if (probe == member) {
              hit = true;
              break;
            }
          }
        }
        regs[in.dst] = Value(hit);
        break;
      }
      case IrOp::kJumpIfFalse:
        if (!Truthy(regs[in.a])) {
          pc = static_cast<size_t>(in.imm);
          continue;
        }
        break;
      case IrOp::kJumpIfTrue:
        if (Truthy(regs[in.a])) {
          pc = static_cast<size_t>(in.imm);
          continue;
        }
        break;
      default:
        regs[in.dst] = ApplyBinaryOp(BinaryOpOf(in.op), regs[in.a],
                                     regs[in.b]);
        break;
    }
    ++pc;
  }
  return regs[p.result];
}

constexpr size_t kInlineRegs = 16;

template <typename Loader>
Value RunWithScratch(const ExprProgram& p, const Loader& loader) {
  if (p.num_regs <= kInlineRegs) {
    Value regs[kInlineRegs];
    return RunProgram(p, loader, regs);
  }
  std::vector<Value> regs(p.num_regs);
  return RunProgram(p, loader, regs.data());
}

}  // namespace

Value EvalProgram(const ExprProgram& program, const EventTuple& tuple) {
  return RunWithScratch(program, TupleLoader{&tuple});
}

Value EvalProgramSingle(const ExprProgram& program, const Event& event) {
  EventTuple tuple{&event};
  return EvalProgram(program, tuple);
}

bool EvalProgramPredicate(const ExprProgram& program,
                          const EventTuple& tuple) {
  return Truthy(EvalProgram(program, tuple));
}

bool EvalProgramPredicateSingle(const ExprProgram& program,
                                const Event& event) {
  EventTuple tuple{&event};
  return EvalProgramPredicate(program, tuple);
}

Value EvalProgramColumns(const ExprProgram& program, const ColumnBatch& batch,
                         size_t row) {
  return RunWithScratch(program, ColumnLoader{&batch, row});
}

Value EvalProgramMixed(const ExprProgram& program,
                       const std::vector<TupleSlot>& slots) {
  return RunWithScratch(program, MixedLoader{slots.data()});
}

bool EvalProgramPredicateColumns(const ExprProgram& program,
                                 const ColumnBatch& batch, size_t row) {
  return Truthy(EvalProgramColumns(program, batch, row));
}

namespace {

// `field <cmp> literal` (either operand order): extract the shape from the
// lowered program and hand it to the shared branch-free selection-vector
// kernel (RunCompareKernel), which covers typed numeric, string, and
// dictionary columns and probes null semantics through ApplyBinaryOp, so
// the kernel cannot drift from the interpreter.
bool TryProgramCompareKernel(const ExprProgram& p, const ColumnBatch& batch,
                             std::vector<uint32_t>* selection) {
  if (p.insts.size() != 3) {
    return false;
  }
  const IrInst& cmp = p.insts[2];
  if (!IsBinaryIrOp(cmp.op) || !IsComparisonOp(BinaryOpOf(cmp.op)) ||
      cmp.dst != p.result) {
    return false;
  }
  const IrInst& def_a = p.insts[cmp.a == p.insts[0].dst ? 0 : 1];
  const IrInst& def_b = p.insts[cmp.b == p.insts[0].dst ? 0 : 1];
  const IrInst* load = nullptr;
  const IrInst* konst = nullptr;
  bool field_on_lhs = false;
  if (def_a.op == IrOp::kLoadField && def_b.op == IrOp::kConst) {
    load = &def_a;
    konst = &def_b;
    field_on_lhs = true;
  } else if (def_a.op == IrOp::kConst && def_b.op == IrOp::kLoadField) {
    load = &def_b;
    konst = &def_a;
  } else {
    return false;
  }
  if (load->a != 0 || load->imm >= 0) {
    return false;
  }
  return RunCompareKernel(batch, load->b, BinaryOpOf(cmp.op),
                          p.consts[static_cast<size_t>(konst->imm)],
                          field_on_lhs, selection);
}

}  // namespace

void EvalProgramPredicateBatch(const ExprProgram& program,
                               const ColumnBatch& batch,
                               std::vector<uint32_t>* selection) {
  // Folded programs decide the whole batch without touching a row.
  if (program.insts.size() == 1 && program.insts[0].op == IrOp::kConst) {
    if (!Truthy(program.consts[static_cast<size_t>(program.insts[0].imm)])) {
      selection->clear();
    }
    return;
  }
  if (TryProgramCompareKernel(program, batch, selection)) {
    return;
  }
  std::vector<Value> heap_regs;
  Value inline_regs[kInlineRegs];
  Value* regs = inline_regs;
  if (program.num_regs > kInlineRegs) {
    heap_regs.resize(program.num_regs);
    regs = heap_regs.data();
  }
  size_t kept = 0;
  for (const uint32_t r : *selection) {
    if (Truthy(RunProgram(program, ColumnLoader{&batch, r}, regs))) {
      (*selection)[kept++] = r;
    }
  }
  selection->resize(kept);
}

std::string ProgramToString(const ExprProgram& program,
                            const std::vector<std::string>& sources,
                            const std::vector<SchemaPtr>& schemas) {
  std::string out;
  for (size_t i = 0; i < program.insts.size(); ++i) {
    const IrInst& in = program.insts[i];
    std::string line = StrFormat("%2zu: ", i);
    switch (in.op) {
      case IrOp::kConst:
        line += StrFormat(
            "r%u = const %s", in.dst,
            program.consts[static_cast<size_t>(in.imm)].ToString().c_str());
        break;
      case IrOp::kLoadField: {
        std::string name;
        if (in.a < schemas.size() && in.b < schemas[in.a]->field_count()) {
          name = (in.a < sources.size() ? sources[in.a] + "."
                                        : StrFormat("s%u.", in.a)) +
                 schemas[in.a]->field(in.b).name;
        } else {
          name = StrFormat("s%u.f%u", in.a, in.b);
        }
        if (in.imm >= 0) {
          for (const std::string& step :
               program.paths[static_cast<size_t>(in.imm)]) {
            name += "." + step;
          }
        }
        line += StrFormat("r%u = load %s", in.dst, name.c_str());
        break;
      }
      case IrOp::kLoadRequestId:
      case IrOp::kLoadTimestamp:
        line += StrFormat("r%u = %s s%u", in.dst, IrOpName(in.op), in.a);
        break;
      case IrOp::kNeg:
      case IrOp::kNot:
      case IrOp::kCoerceBool:
        line += StrFormat("r%u = %s r%u", in.dst, IrOpName(in.op), in.a);
        break;
      case IrOp::kInList: {
        std::string members;
        for (const Value& m : program.lists[static_cast<size_t>(in.imm)]) {
          if (!members.empty()) {
            members += ", ";
          }
          members += m.ToString();
        }
        line += StrFormat("r%u = in_list r%u (%s)", in.dst, in.a,
                          members.c_str());
        break;
      }
      case IrOp::kJumpIfFalse:
      case IrOp::kJumpIfTrue:
        line += StrFormat("%s r%u -> %d", IrOpName(in.op), in.a, in.imm);
        break;
      default:
        line += StrFormat("r%u = %s r%u, r%u", in.dst, IrOpName(in.op), in.a,
                          in.b);
        break;
    }
    if (in.types != 0) {
      line += " : " + TypeMaskName(in.types);
    }
    out += line + "\n";
  }
  out += StrFormat("result: r%u\n", program.result);
  return out;
}

}  // namespace scrub
