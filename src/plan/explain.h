// EXPLAIN: renders the host/central split of a planned query.
//
// Troubleshooters sanity-check what a query will cost *before* pointing it
// at production: which event types each host filters, how selective the
// host-side predicate is, which fields survive projection (everything else
// never leaves the host), what runs at ScrubCentral, and how sampling will
// scale the results.

#ifndef SRC_PLAN_EXPLAIN_H_
#define SRC_PLAN_EXPLAIN_H_

#include <string>
#include <string_view>

#include "src/lint/lint.h"
#include "src/plan/plan.h"
#include "src/query/analyzer.h"

namespace scrub {

// Multi-line, human-readable plan description, ending in a LINT section
// listing the static-analysis findings ("lint: clean" when there are none).
// `query_text`, when supplied, lets diagnostics render source snippets.
std::string ExplainPlan(const AnalyzedQuery& analyzed, const QueryPlan& plan,
                        const LintOptions& lint_options = {},
                        std::string_view query_text = {});

// Convenience: parse + analyze + plan + explain (no execution, no side
// effects). Errors render as the failure status text.
std::string ExplainQuery(std::string_view query_text,
                         const SchemaRegistry& registry,
                         const AnalyzerOptions& options = {},
                         const LintOptions& lint_options = {});

}  // namespace scrub

#endif  // SRC_PLAN_EXPLAIN_H_
