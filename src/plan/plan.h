// Query planning: the host/central split.
//
// This is the heart of Scrub's execution strategy (Section 4). Classical
// optimizers push work toward the data; Scrub does the opposite to protect
// the application hosts. The planner splits a validated query into:
//
//   * a HostPlan — ONLY selection (the WHERE conjuncts that touch that
//     host's event type), projection (null out fields the query never
//     reads), and event sampling. These all *reduce* host cost and bytes
//     shipped; nothing else ever runs host-side.
//
//   * a CentralPlan — the join (always the implicit equi-join on request
//     id), group-by, aggregation and windowing, executed at ScrubCentral.
//
// The same planner output is also consumed by the full-logging baseline's
// batch engine, so Scrub and the baseline answer queries identically.

#ifndef SRC_PLAN_PLAN_H_
#define SRC_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/plan/expr_eval.h"
#include "src/plan/expr_ir.h"
#include "src/query/analyzer.h"

namespace scrub {

using QueryId = uint64_t;

// ---------------------------------------------------------------------------
// Host side.

struct HostSourcePlan {
  std::string event_type;
  int source_index = 0;  // position in the query's FROM list

  // Selection: conjuncts compiled against this single source; an event must
  // satisfy all of them to be shipped. The tree form is kept for the wire
  // size model, explain, and the logging baselines (which intentionally stay
  // on the tree evaluator as a differential backstop).
  std::vector<CompiledExpr> conjuncts;
  int predicate_nodes = 0;  // total compiled nodes, for CPU cost accounting

  // The same conjuncts lowered to the typed IR, constant-folded, with
  // always-true and implied (dead) conjuncts pruned — what the agent hot
  // path actually executes. When the analysis proves the conjunct set
  // unsatisfiable, never_matches is set and the agent ships nothing.
  std::vector<ExprProgram> programs;
  bool never_matches = false;

  // Projection: keep_field[i] is true iff the query reads schema field i.
  std::vector<bool> keep_field;
  int kept_fields = 0;
};

struct HostPlan {
  QueryId query_id = 0;
  TimeMicros start_time = 0;  // absolute; host collects in [start, end)
  TimeMicros end_time = 0;
  // Sampling counters are kept per slide period (slide == window for
  // tumbling queries).
  TimeMicros window_micros = 0;
  TimeMicros slide_micros = 0;
  double event_sample_rate = 1.0;
  std::vector<HostSourcePlan> sources;

  // Agent-side pre-aggregation (the opt-in ablation of the paper's strict
  // hosts-select-only rule): when set, the agent folds selected events into
  // per-(slot, group) COUNT/SUM cells and ships the deltas instead of the
  // events. The query server stamps this only for single-source, unsampled
  // aggregate queries whose aggregates are all COUNT or SUM — the cases
  // where the host-side fold is exactly the central fold.
  struct PreAggSpec {
    AggregateFunc func = AggregateFunc::kCount;
    bool has_arg = false;
    ExprProgram arg_program;
  };
  bool preaggregate = false;
  std::vector<ExprProgram> group_by_programs;  // group key, in query order
  std::vector<PreAggSpec> preagg;              // one per aggregate slot

  // Approximate size of this query object on the wire (dissemination cost).
  size_t WireSize() const;
  const HostSourcePlan* FindSource(std::string_view event_type) const;
};

// ---------------------------------------------------------------------------
// Central side.

// A scalar expression over finalized aggregates and group-key values,
// used to render select items such as 1000 * AVG(impression.cost).
enum class OutputKind { kLiteral, kGroupKey, kAggregate, kUnary, kBinary };

struct OutputExpr {
  OutputKind kind = OutputKind::kLiteral;
  Value literal;
  int index = 0;  // group-by position (kGroupKey) or aggregate slot (kAggregate)
  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;
  std::vector<OutputExpr> children;
};

struct AggregateSpec {
  AggregateFunc func = AggregateFunc::kCount;
  int64_t topk_k = 0;
  bool has_arg = false;
  CompiledExpr arg;       // tree form, kept for explain / baselines
  ExprProgram arg_program;  // lowered+folded form the executor evaluates

  // COUNT/SUM estimates are scaled up under sampling (Eq. 1); AVG is a ratio
  // so scaling cancels; MIN/MAX/TOPK/COUNT_DISTINCT are never scaled.
  bool ScalesUnderSampling() const {
    return func == AggregateFunc::kCount || func == AggregateFunc::kSum;
  }
};

struct OutputColumn {
  std::string name;
  OutputExpr expr;
};

struct CentralPlan {
  QueryId query_id = 0;
  std::vector<std::string> sources;
  std::vector<SchemaPtr> schemas;
  bool is_join() const { return sources.size() > 1; }

  // Aggregate mode: group_by + aggregates + outputs.
  // Raw mode (no aggregates, no grouping): raw_select per joined tuple.
  bool aggregate_mode = false;
  std::vector<CompiledExpr> group_by;
  std::vector<AggregateSpec> aggregates;
  std::vector<OutputColumn> outputs;       // aggregate mode
  std::vector<CompiledExpr> raw_select;    // raw mode
  std::vector<std::string> column_names;   // both modes, in select order

  // Lowered+folded twins of group_by / raw_select (one shared lowering; the
  // row and columnar executors both run these).
  std::vector<ExprProgram> group_by_programs;
  std::vector<ExprProgram> raw_select_programs;

  TimeMicros window_micros = 0;
  TimeMicros slide_micros = 0;  // < window: sliding; == window: tumbling
  TimeMicros start_time = 0;
  TimeMicros end_time = 0;

  // Sampling bookkeeping for Eq. 1-3, filled in by the query server after
  // host-set resolution: N = hosts matched, n = hosts actually installed.
  double host_sample_rate = 1.0;
  double event_sample_rate = 1.0;
  uint64_t hosts_targeted = 0;
  uint64_t hosts_sampled = 0;

  bool SamplingActive() const {
    return host_sample_rate < 1.0 || event_sample_rate < 1.0;
  }
};

struct QueryPlan {
  HostPlan host;
  CentralPlan central;
};

// Splits an analyzed query. `submit_time` anchors the relative START /
// DURATION clauses into absolute simulation time.
Result<QueryPlan> PlanQuery(const AnalyzedQuery& analyzed, QueryId query_id,
                            TimeMicros submit_time);

// Evaluates an output column for one result row, given the row's group-key
// values and its finalized aggregate values.
Value EvalOutputExpr(const OutputExpr& expr,
                     const std::vector<Value>& group_key,
                     const std::vector<Value>& aggregate_values);

}  // namespace scrub

#endif  // SRC_PLAN_PLAN_H_
