// Group keys shared by every layer that buckets rows by GROUP BY values:
// the central fold, the sharded coordinator's partial merge, the regional
// combiner tier, and the agent-side pre-aggregation mode. Extracted from
// the executor so host-side code can hash keys without depending on the
// central library.

#ifndef SRC_PLAN_GROUP_KEY_H_
#define SRC_PLAN_GROUP_KEY_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/event/value.h"

namespace scrub {

using GroupKey = std::vector<Value>;

struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const {
    size_t seed = 0x517cc1b7;
    for (const Value& v : key) {
      seed ^= v.Hash() + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
    }
    return seed;
  }
};

// A group key bundled with its hash, computed once per row: the fold's map
// probe, the coordinator's merge and the shard re-bucket all reuse it
// instead of rehashing a vector<Value>. The hash is exactly GroupKeyHash's,
// so every pipeline (row, columnar, sharded, hierarchical) buckets groups
// identically — part of the byte-identical-transcript argument.
struct HashedGroupKey {
  GroupKey key;
  size_t hash = 0;

  HashedGroupKey() = default;
  explicit HashedGroupKey(GroupKey k)
      : key(std::move(k)), hash(GroupKeyHash{}(key)) {}
  HashedGroupKey(GroupKey k, size_t h) : key(std::move(k)), hash(h) {}

  bool operator==(const HashedGroupKey& other) const {
    return key == other.key;
  }
};

struct HashedGroupKeyHash {
  size_t operator()(const HashedGroupKey& k) const { return k.hash; }
};

// Canonical emission order for grouped rows: hash first, key values as the
// tie-break so the order stays total across hash collisions. Group maps are
// insertion-ordered by arrival, and arrival order is the one thing a
// topology change legitimately perturbs — every sink that emits one row per
// group sorts by this instead, which is what makes result transcripts
// byte-identical across the flat, sharded, and hierarchical pipelines.
inline bool CanonicalGroupOrder(const HashedGroupKey& a,
                                const HashedGroupKey& b) {
  if (a.hash != b.hash) {
    return a.hash < b.hash;
  }
  const size_t n = a.key.size() < b.key.size() ? a.key.size() : b.key.size();
  for (size_t i = 0; i < n; ++i) {
    const int c = a.key[i].Compare(b.key[i]);
    if (c != 0) {
      return c < 0;
    }
  }
  return a.key.size() < b.key.size();
}

}  // namespace scrub

#endif  // SRC_PLAN_GROUP_KEY_H_
