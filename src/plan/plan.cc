#include "src/plan/plan.h"

#include <unordered_set>

#include "src/common/strings.h"
#include "src/plan/expr_analysis.h"

namespace scrub {

size_t HostPlan::WireSize() const {
  // Rough but deterministic: fixed header + per-source predicate nodes and
  // projection masks. Query objects are tiny compared to event traffic; this
  // only needs to be the right order of magnitude for dissemination cost.
  size_t n = 64;
  for (const HostSourcePlan& s : sources) {
    n += s.event_type.size() + 16;
    n += static_cast<size_t>(s.predicate_nodes) * 24;
    n += s.keep_field.size();
  }
  if (preaggregate) {
    n += 16 + 24 * (group_by_programs.size() + preagg.size());
  }
  return n;
}

const HostSourcePlan* HostPlan::FindSource(std::string_view event_type) const {
  for (const HostSourcePlan& s : sources) {
    if (s.event_type == event_type) {
      return &s;
    }
  }
  return nullptr;
}

namespace {

// Lower to the IR and apply the analysis-driven constant fold. Every
// consumer (host filter, group keys, raw select, aggregate args) goes
// through this one helper, so all evaluators execute the same lowering.
ExprProgram LowerOptimized(const CompiledExpr& expr,
                           const std::vector<SchemaPtr>& schemas,
                           PredicateClass* predicate = nullptr) {
  ExprProgram program = LowerExpr(expr, schemas);
  const ProgramAnalysis analysis = AnalyzeProgram(program);
  FoldProgram(&program, analysis);
  if (predicate != nullptr) {
    *predicate = analysis.predicate;
  }
  return program;
}

class Planner {
 public:
  Planner(const AnalyzedQuery& aq, QueryId query_id, TimeMicros submit_time)
      : aq_(aq), query_id_(query_id), submit_time_(submit_time) {}

  Result<QueryPlan> Run() {
    QueryPlan plan;
    Status s = BuildHostPlan(&plan.host);
    if (!s.ok()) {
      return s;
    }
    s = BuildCentralPlan(&plan.central);
    if (!s.ok()) {
      return s;
    }
    return plan;
  }

 private:
  Status BuildHostPlan(HostPlan* host) {
    const Query& q = aq_.query;
    host->query_id = query_id_;
    host->start_time = submit_time_ + q.start_offset_micros;
    host->end_time = host->start_time + q.duration_micros;
    host->window_micros = q.window_micros;
    host->slide_micros = q.slide_micros;
    host->event_sample_rate = q.event_sample_rate;

    for (size_t i = 0; i < q.sources.size(); ++i) {
      HostSourcePlan sp;
      sp.event_type = q.sources[i];
      sp.source_index = static_cast<int>(i);

      // This source's conjuncts (plus source-free constant conjuncts, which
      // apply to every event).
      const std::vector<std::string> single_source = {q.sources[i]};
      const std::vector<SchemaPtr> single_schema = {aq_.schemas[i]};
      for (size_t c = 0; c < aq_.conjuncts.size(); ++c) {
        const int src = aq_.conjunct_source[c];
        if (src != static_cast<int>(i) && src != -1) {
          continue;
        }
        Result<CompiledExpr> compiled =
            CompileExpr(*aq_.conjuncts[c], single_source, single_schema);
        if (!compiled.ok()) {
          return compiled.status();
        }
        sp.predicate_nodes += compiled->node_count;

        // Lower/fold for the hot path: an always-true conjunct drops out, an
        // always-false one makes the whole source filter unsatisfiable.
        PredicateClass cls = PredicateClass::kUnknown;
        ExprProgram program =
            LowerOptimized(*compiled, single_schema, &cls);
        if (cls == PredicateClass::kAlwaysFalse) {
          sp.never_matches = true;
        }
        if (cls == PredicateClass::kUnknown) {
          sp.programs.push_back(std::move(program));
        }
        sp.conjuncts.push_back(std::move(compiled).value());
      }

      // Cross-conjunct reasoning: an unsatisfiable set (status == 200 AND
      // status >= 500) ships nothing; implied conjuncts are dead and drop
      // out of the executed filter (the implying conjuncts stay).
      std::vector<const ExprProgram*> refs;
      refs.reserve(sp.programs.size());
      for (const ExprProgram& p : sp.programs) {
        refs.push_back(&p);
      }
      const ConjunctSetResult set = AnalyzeConjunctSet(refs);
      if (set.contradiction) {
        sp.never_matches = true;
      } else {
        for (auto it = set.redundant.rbegin(); it != set.redundant.rend();
             ++it) {
          sp.programs.erase(sp.programs.begin() + *it);
        }
      }

      // Projection mask.
      const SchemaPtr& schema = aq_.schemas[i];
      sp.keep_field.assign(schema->field_count(), false);
      for (const std::string& field : aq_.fields_per_source[i]) {
        const int idx = schema->FieldIndex(field);
        if (idx >= 0) {
          sp.keep_field[static_cast<size_t>(idx)] = true;
          ++sp.kept_fields;
        }
        // System fields ride in the event header; nothing to keep.
      }
      host->sources.push_back(std::move(sp));
    }
    return OkStatus();
  }

  Status BuildCentralPlan(CentralPlan* central) {
    const Query& q = aq_.query;
    central->query_id = query_id_;
    central->sources = q.sources;
    central->schemas = aq_.schemas;
    central->window_micros = q.window_micros;
    central->slide_micros = q.slide_micros;
    central->start_time = submit_time_ + q.start_offset_micros;
    central->end_time = central->start_time + q.duration_micros;
    central->host_sample_rate = q.host_sample_rate;
    central->event_sample_rate = q.event_sample_rate;
    central->aggregate_mode = aq_.has_aggregates || !q.group_by.empty();

    for (const SelectItem& item : q.select) {
      central->column_names.push_back(
          item.alias.empty() ? item.expr->ToString() : item.alias);
    }

    if (!central->aggregate_mode) {
      for (const SelectItem& item : q.select) {
        Result<CompiledExpr> compiled =
            CompileExpr(*item.expr, q.sources, aq_.schemas);
        if (!compiled.ok()) {
          return compiled.status();
        }
        central->raw_select_programs.push_back(
            LowerOptimized(*compiled, aq_.schemas));
        central->raw_select.push_back(std::move(compiled).value());
      }
      return OkStatus();
    }

    for (const ExprPtr& g : q.group_by) {
      Result<CompiledExpr> compiled =
          CompileExpr(*g, q.sources, aq_.schemas);
      if (!compiled.ok()) {
        return compiled.status();
      }
      central->group_by_programs.push_back(
          LowerOptimized(*compiled, aq_.schemas));
      central->group_by.push_back(std::move(compiled).value());
    }

    for (const SelectItem& item : q.select) {
      OutputColumn column;
      column.name =
          item.alias.empty() ? item.expr->ToString() : item.alias;
      Result<OutputExpr> out = BuildOutputExpr(*item.expr, central);
      if (!out.ok()) {
        return out.status();
      }
      column.expr = std::move(out).value();
      central->outputs.push_back(std::move(column));
    }
    return OkStatus();
  }

  // Rewrites a select-item expression into an OutputExpr, registering
  // aggregate slots and resolving field refs to group-by positions.
  Result<OutputExpr> BuildOutputExpr(const Expr& e, CentralPlan* central) {
    OutputExpr out;
    switch (e.kind) {
      case ExprKind::kLiteral:
        out.kind = OutputKind::kLiteral;
        out.literal = e.literal;
        return out;
      case ExprKind::kAggregate: {
        AggregateSpec spec;
        spec.func = e.agg_func;
        spec.topk_k = e.topk_k;
        if (!e.children.empty()) {
          Result<CompiledExpr> arg =
              CompileExpr(*e.children[0], aq_.query.sources, aq_.schemas);
          if (!arg.ok()) {
            return arg.status();
          }
          spec.has_arg = true;
          spec.arg_program = LowerOptimized(*arg, aq_.schemas);
          spec.arg = std::move(arg).value();
        }
        out.kind = OutputKind::kAggregate;
        out.index = static_cast<int>(central->aggregates.size());
        central->aggregates.push_back(std::move(spec));
        return out;
      }
      case ExprKind::kFieldRef: {
        for (size_t g = 0; g < aq_.query.group_by.size(); ++g) {
          const Expr& gb = *aq_.query.group_by[g];
          if (gb.qualifier == e.qualifier && gb.field == e.field &&
              gb.path == e.path) {
            out.kind = OutputKind::kGroupKey;
            out.index = static_cast<int>(g);
            return out;
          }
        }
        return InvalidArgument(StrFormat(
            "select field '%s' is not a GROUP BY key",
            e.ToString().c_str()));
      }
      case ExprKind::kUnary: {
        out.kind = OutputKind::kUnary;
        out.unary_op = e.unary_op;
        Result<OutputExpr> child = BuildOutputExpr(*e.children[0], central);
        if (!child.ok()) {
          return child;
        }
        out.children.push_back(std::move(child).value());
        return out;
      }
      case ExprKind::kBinary: {
        out.kind = OutputKind::kBinary;
        out.binary_op = e.binary_op;
        for (const ExprPtr& c : e.children) {
          Result<OutputExpr> child = BuildOutputExpr(*c, central);
          if (!child.ok()) {
            return child;
          }
          out.children.push_back(std::move(child).value());
        }
        return out;
      }
      default:
        return Unimplemented(StrFormat(
            "expression '%s' is not supported in an aggregated SELECT list",
            e.ToString().c_str()));
    }
  }

  const AnalyzedQuery& aq_;
  const QueryId query_id_;
  const TimeMicros submit_time_;
};

}  // namespace

Result<QueryPlan> PlanQuery(const AnalyzedQuery& analyzed, QueryId query_id,
                            TimeMicros submit_time) {
  Planner planner(analyzed, query_id, submit_time);
  return planner.Run();
}

Value EvalOutputExpr(const OutputExpr& expr,
                     const std::vector<Value>& group_key,
                     const std::vector<Value>& aggregate_values) {
  switch (expr.kind) {
    case OutputKind::kLiteral:
      return expr.literal;
    case OutputKind::kGroupKey:
      return group_key[static_cast<size_t>(expr.index)];
    case OutputKind::kAggregate:
      return aggregate_values[static_cast<size_t>(expr.index)];
    case OutputKind::kUnary:
      return ApplyUnaryOp(
          expr.unary_op,
          EvalOutputExpr(expr.children[0], group_key, aggregate_values));
    case OutputKind::kBinary:
      return ApplyBinaryOp(
          expr.binary_op,
          EvalOutputExpr(expr.children[0], group_key, aggregate_values),
          EvalOutputExpr(expr.children[1], group_key, aggregate_values));
  }
  return Value::Null();
}

}  // namespace scrub
