#include "src/plan/physical.h"

#include "src/common/strings.h"

namespace scrub {

const char* PhysicalOpKindName(PhysicalOpKind kind) {
  switch (kind) {
    case PhysicalOpKind::kDecode:
      return "Decode";
    case PhysicalOpKind::kJoin:
      return "Join";
    case PhysicalOpKind::kProject:
      return "Project";
    case PhysicalOpKind::kGroupFold:
      return "GroupFold";
    case PhysicalOpKind::kWindowClose:
      return "WindowClose";
    case PhysicalOpKind::kFinalize:
      return "Finalize";
  }
  return "?";
}

const char* PipelineRoleName(PipelineRole role) {
  switch (role) {
    case PipelineRole::kSingleInstance:
      return "single instance";
    case PipelineRole::kShard:
      return "shard";
    case PipelineRole::kCoordinator:
      return "coordinator";
  }
  return "?";
}

void MergeOperatorMetrics(std::vector<OperatorMetrics>& into,
                          const std::vector<OperatorMetrics>& from) {
  if (into.size() < from.size()) {
    into.resize(from.size());
  }
  for (size_t i = 0; i < from.size(); ++i) {
    into[i].Merge(from[i]);
  }
}

std::string AnnotateOp(const PhysicalOp& op, const OperatorMetrics* m) {
  if (m == nullptr || m->Empty()) {
    return StrFormat("%s(%s)\n", PhysicalOpKindName(op.kind),
                     op.detail.c_str());
  }
  return StrFormat(
      "%s(%s)  [rows %llu -> %llu, sel %.3f, batches %llu, cpu %.3f ms]\n",
      PhysicalOpKindName(op.kind), op.detail.c_str(),
      static_cast<unsigned long long>(m->rows_in),
      static_cast<unsigned long long>(m->rows_out), m->Selectivity(),
      static_cast<unsigned long long>(m->batches),
      static_cast<double>(m->cpu_ns) / 1e6);
}

std::string PhysicalPipeline::ToString(
    const std::vector<OperatorMetrics>* metrics) const {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    const OperatorMetrics* m =
        metrics != nullptr && i < metrics->size() ? &(*metrics)[i] : nullptr;
    out += AnnotateOp(ops[i], m);
  }
  return out;
}

PhysicalPipeline CompilePhysical(const CentralPlan& plan, PipelineRole role) {
  PhysicalPipeline p;
  p.role = role;
  for (size_t i = 0; i < plan.aggregates.size(); ++i) {
    if (plan.aggregates[i].ScalesUnderSampling()) {
      p.scaled_slots.push_back(static_cast<int>(i));
    }
  }
  const bool sampling = plan.SamplingActive();
  switch (role) {
    case PipelineRole::kSingleInstance:
      p.needs_scaling = sampling;
      // Per-host readings exist per window only for the ungrouped non-join
      // fold, so only those plans get single-instance Eq. 1-3 bounds;
      // grouped scaled slots use the ratio fallback.
      if (sampling && plan.group_by.empty() && !plan.is_join()) {
        p.bounded_aggregates = p.scaled_slots;
      }
      break;
    case PipelineRole::kShard:
      // Shards neither scale nor bound: the estimator needs the global
      // per-host population view, which only the coordinator has. Shards
      // collect the per-(group, host) readings it will need.
      p.collect_group_readings =
          sampling && plan.aggregate_mode && !plan.is_join();
      break;
    case PipelineRole::kCoordinator:
      p.needs_scaling = sampling;
      // Per-(group, host) readings arrive in the shards' partials, so every
      // scaled slot of a non-join plan is bounded — per group, which the
      // single instance cannot do. Join plans keep the ratio fallback (the
      // join output is not a per-host sample of anything).
      if (sampling && !plan.is_join()) {
        p.bounded_aggregates = p.scaled_slots;
      }
      break;
  }

  const auto add = [&p](PhysicalOpKind kind, std::string detail) {
    PhysicalOp op;
    op.kind = kind;
    op.detail = std::move(detail);
    p.ops.push_back(std::move(op));
  };

  if (role == PipelineRole::kCoordinator) {
    // The coordinator's whole job is the pipeline tail; everything up to
    // WindowClose already ran on the shards.
    if (!plan.aggregate_mode) {
      add(PhysicalOpKind::kFinalize,
          "forward shard rows (each joined tuple wholly on one shard)");
    } else if (!sampling) {
      add(PhysicalOpKind::kFinalize,
          "merge shard partials per (window, group), exact");
    } else if (!p.bounded_aggregates.empty()) {
      add(PhysicalOpKind::kFinalize,
          StrFormat("merge shard partials + per-host counters; Eq. 1-3 "
                    "estimate with error bound per group on %zu slot(s)",
                    p.bounded_aggregates.size()));
    } else {
      add(PhysicalOpKind::kFinalize,
          "merge shard partials; ratio scale (Eq. 1), no bounds");
    }
    return p;
  }

  add(PhysicalOpKind::kDecode,
      role == PipelineRole::kShard
          ? "row span / ColumnBatch selection (router re-buckets by "
            "request id)"
          : "row span / ColumnBatch selection");
  if (plan.is_join()) {
    add(PhysicalOpKind::kJoin,
        StrFormat("%s on __request_id, window-scoped; columnar inputs "
                  "materialize join survivors only",
                  StrJoin(plan.sources, " \xE2\x8B\x88 ").c_str()));
  }
  if (plan.aggregate_mode) {
    add(PhysicalOpKind::kGroupFold,
        StrFormat("%zu key(s), %zu aggregate(s)", plan.group_by.size(),
                  plan.aggregates.size()));
  } else {
    add(PhysicalOpKind::kProject,
        StrFormat("raw, %zu column(s) per tuple, emitted eagerly",
                  plan.raw_select.size()));
  }
  add(PhysicalOpKind::kWindowClose,
      role == PipelineRole::kShard
          ? "emit mergeable WindowPartial per window"
          : StrFormat("%s window, lateness-gated",
                      plan.slide_micros > 0 &&
                              plan.slide_micros < plan.window_micros
                          ? "sliding"
                          : "tumbling"));
  if (role == PipelineRole::kShard) {
    return p;  // Finalize runs at the coordinator
  }
  if (plan.aggregate_mode) {
    if (!sampling) {
      add(PhysicalOpKind::kFinalize, "exact");
    } else if (!p.bounded_aggregates.empty()) {
      add(PhysicalOpKind::kFinalize,
          StrFormat("Eq. 1-3 estimate with error bound on %zu slot(s)",
                    p.bounded_aggregates.size()));
    } else {
      add(PhysicalOpKind::kFinalize, "ratio scale (Eq. 1), no bounds");
    }
  }
  return p;
}

}  // namespace scrub
