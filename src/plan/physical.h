// Physical operator pipeline compiled from a CentralPlan.
//
// ScrubCentral historically grew one fold path per input representation
// (row events, columnar batches) and per topology (single instance, shard,
// sharded coordinator), each re-deriving the same plan facts inline. This
// header is the single compilation step: CompilePhysical() turns a
// CentralPlan into a PhysicalPipeline — the operator sequence
//
//   Decode -> [Join] -> GroupFold | Project -> WindowClose -> Finalize
//
// plus the estimator parameterization (which aggregate slots scale under
// sampling, which get the Eq. 1-3 bounded treatment, whether the ratio
// fallback applies). Every deployment executes the *same* compiled pipeline;
// the executor (src/central/executor.h) interprets it against either a row
// span or a ColumnBatch selection through the InputChunk interface below.
//
// Topology is expressed as a role: a single instance runs every stage; a
// shard runs Decode..WindowClose and exports mergeable partials; the sharded
// coordinator runs only Finalize over globally merged state. Splitting the
// pipeline at WindowClose is what lets sampled plans shard: shards fold
// per-(group, host) readings locally, and the coordinator — the only place
// with the global per-host population counts Equations 1-3 need — runs the
// estimator once per (window, group).

#ifndef SRC_PLAN_PHYSICAL_H_
#define SRC_PLAN_PHYSICAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/event/column_batch.h"
#include "src/event/event.h"
#include "src/plan/plan.h"

namespace scrub {

// One executor input: either a span of decoded row Events or a selection of
// rows in a shared, immutable ColumnBatch. Operators consume chunks through
// the accessors, so window assignment and the join's equi-key probe read
// straight off columns without materializing Events.
struct InputChunk {
  const std::vector<Event>* events = nullptr;  // row representation
  std::shared_ptr<const ColumnBatch> columns;  // columnar representation
  const uint32_t* selection = nullptr;  // rows of `columns`; nullptr = all
  size_t selected = 0;

  static InputChunk Rows(const std::vector<Event>& events) {
    InputChunk chunk;
    chunk.events = &events;
    return chunk;
  }
  static InputChunk Columns(std::shared_ptr<const ColumnBatch> batch,
                            const uint32_t* selection, size_t selected) {
    InputChunk chunk;
    chunk.selected = selection != nullptr ? selected : batch->rows();
    chunk.columns = std::move(batch);
    chunk.selection = selection;
    return chunk;
  }

  bool columnar() const { return columns != nullptr; }
  size_t size() const { return columnar() ? selected : events->size(); }
  // Row index into `columns` for chunk position i (columnar chunks only).
  size_t row(size_t i) const {
    return selection != nullptr ? selection[i] : i;
  }
  TimeMicros timestamp(size_t i) const {
    return columnar() ? columns->timestamp(row(i)) : (*events)[i].timestamp();
  }
  RequestId request_id(size_t i) const {
    return columnar() ? columns->request_id(row(i))
                      : (*events)[i].request_id();
  }
};

enum class PhysicalOpKind {
  kDecode,       // wire payload -> InputChunk (row or columnar)
  kJoin,         // symmetric hash join on request id, window-scoped
  kProject,      // raw mode: render select exprs per tuple, emit eagerly
  kGroupFold,    // group-key eval + accumulator update
  kWindowClose,  // lateness-gated close: completeness, orphans, emission
  kFinalize,     // accumulators -> values (+ Eq. 1-3 bounds under sampling)
};

const char* PhysicalOpKindName(PhysicalOpKind kind);

struct PhysicalOp {
  PhysicalOpKind kind = PhysicalOpKind::kDecode;
  std::string detail;  // parameterization, rendered by EXPLAIN
};

// Observed per-operator execution counters, one per PhysicalOp, indexed in
// parallel with PhysicalPipeline::ops. Counters are pure observers: they are
// charged at chunk granularity (one ThreadCpuNs read per operator per chunk,
// not per row), never feed the CostMeter, and never influence the fold — so
// collecting them cannot perturb transcripts. Shards export deltas inside
// WindowPartial envelopes (sideband: excluded from wire-size accounting) and
// the coordinator sums them, the same way completeness/fidelity ride.
struct OperatorMetrics {
  uint64_t rows_in = 0;   // rows presented to the operator
  uint64_t rows_out = 0;  // rows surviving it (join survivors, rows emitted)
  uint64_t batches = 0;   // chunks / windows the operator processed
  uint64_t cpu_ns = 0;    // CLOCK_THREAD_CPUTIME_ID ns attributed to it

  void Merge(const OperatorMetrics& other) {
    rows_in += other.rows_in;
    rows_out += other.rows_out;
    batches += other.batches;
    cpu_ns += other.cpu_ns;
  }
  // rows_out / rows_in, 1.0 when nothing was presented yet.
  double Selectivity() const {
    return rows_in == 0 ? 1.0
                        : static_cast<double>(rows_out) /
                              static_cast<double>(rows_in);
  }
  bool Empty() const {
    return rows_in == 0 && rows_out == 0 && batches == 0 && cpu_ns == 0;
  }
};

// Sums two parallel metric vectors (resizing `into` as needed): the
// shard -> coordinator merge and the DescribeQuery roll-up both use it.
void MergeOperatorMetrics(std::vector<OperatorMetrics>& into,
                          const std::vector<OperatorMetrics>& from);

// Where a compiled pipeline instance runs.
enum class PipelineRole {
  kSingleInstance,  // every stage, Finalize included
  kShard,           // Decode..WindowClose; exports mergeable WindowPartials
  kCoordinator,     // Finalize only, over globally merged partials
};

const char* PipelineRoleName(PipelineRole role);

struct PhysicalPipeline {
  PipelineRole role = PipelineRole::kSingleInstance;
  std::vector<PhysicalOp> ops;

  // ---- Finalize / estimator parameterization (compiled once) -------------
  // Aggregate slots that scale under sampling (COUNT / SUM), in slot order.
  std::vector<int> scaled_slots;
  // Slots that get the full Eq. 1-3 treatment at Finalize. Single instance:
  // scaled slots of ungrouped non-join sampled plans (per-host readings are
  // tracked per window). Coordinator: every scaled slot of a non-join
  // sampled plan — shards ship per-(group, host) readings, so the bound is
  // computed per group. Shards never finalize.
  std::vector<int> bounded_aggregates;
  // Scaled slots not in bounded_aggregates fall back to the global ratio
  // estimate (Eq. 1 without bounds) when sampling is active: grouped plans
  // on a single instance, join plans everywhere.
  bool needs_scaling = false;
  // Shard role only: fold per-(group, host) readings for the scaled slots
  // into WindowPartials so the coordinator's Finalize sees Eq. 3's s_i^2.
  bool collect_group_readings = false;

  // One "Op(detail)" line per operator, newline-terminated (EXPLAIN). When
  // `metrics` is non-null, each line whose operator has observed counters is
  // annotated with rows in/out, selectivity, batches and CPU time — the
  // EXPLAIN ANALYZE rendering. Metric entries beyond ops.size() (e.g. the
  // coordinator's Finalize appended after shard ops) are ignored here;
  // callers with composite pipelines render them via AnnotateOp directly.
  std::string ToString(
      const std::vector<OperatorMetrics>* metrics = nullptr) const;
};

// One annotated "Op(detail)  [rows ...]" line (newline-terminated) for an
// operator with observed counters; falls back to the plain EXPLAIN line when
// `m` is null or empty. Shared by ToString(metrics) and the sharded-plan
// renderer, which stitches shard ops and the coordinator Finalize together.
std::string AnnotateOp(const PhysicalOp& op, const OperatorMetrics* m);

PhysicalPipeline CompilePhysical(const CentralPlan& plan, PipelineRole role);

}  // namespace scrub

#endif  // SRC_PLAN_PHYSICAL_H_
