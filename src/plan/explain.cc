#include "src/plan/explain.h"

#include "src/common/strings.h"
#include "src/plan/expr_analysis.h"
#include "src/plan/physical.h"

namespace scrub {
namespace {

std::string IndentLines(const std::string& text, const char* pad) {
  std::string out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    out += pad;
    out.append(text, start, end - start);
    out += "\n";
    start = end + 1;
  }
  return out;
}

std::string DurationText(TimeMicros micros) {
  if (micros % kMicrosPerMinute == 0) {
    return StrFormat("%lld m",
                     static_cast<long long>(micros / kMicrosPerMinute));
  }
  if (micros % kMicrosPerSecond == 0) {
    return StrFormat("%lld s",
                     static_cast<long long>(micros / kMicrosPerSecond));
  }
  return StrFormat("%lld us", static_cast<long long>(micros));
}

}  // namespace

std::string ExplainPlan(const AnalyzedQuery& analyzed, const QueryPlan& plan,
                        const LintOptions& lint_options,
                        std::string_view query_text) {
  const Query& q = analyzed.query;
  std::string out;
  out += "query: " + q.ToString() + "\n";
  out += StrFormat("span: start=+%s duration=%s window=%s",
                   DurationText(q.start_offset_micros).c_str(),
                   DurationText(q.duration_micros).c_str(),
                   DurationText(q.window_micros).c_str());
  if (q.slide_micros != q.window_micros) {
    out += StrFormat(" slide=%s (sliding)",
                     DurationText(q.slide_micros).c_str());
  }
  out += "\n";

  out += "host plan (selection + projection + sampling ONLY):\n";
  if (plan.host.event_sample_rate < 1.0) {
    out += StrFormat("  event sampling: %.4g%% (coin flip before any "
                     "predicate work)\n",
                     plan.host.event_sample_rate * 100);
  }
  for (size_t i = 0; i < plan.host.sources.size(); ++i) {
    const HostSourcePlan& sp = plan.host.sources[i];
    out += StrFormat("  source '%s':\n", sp.event_type.c_str());
    if (sp.conjuncts.empty()) {
      out += "    selection: none (every event ships)\n";
    } else {
      out += StrFormat("    selection: %zu conjunct(s), %d predicate "
                       "node(s) per event\n",
                       sp.conjuncts.size(), sp.predicate_nodes);
      for (size_t c = 0; c < analyzed.conjuncts.size(); ++c) {
        const int src = analyzed.conjunct_source[c];
        if (src == static_cast<int>(i) || src == -1) {
          out += "      " + analyzed.conjuncts[c]->ToString() + "\n";
        }
      }
    }
    std::vector<std::string> kept;
    const SchemaPtr& schema = analyzed.schemas[i];
    for (size_t f = 0; f < sp.keep_field.size(); ++f) {
      if (sp.keep_field[f]) {
        kept.push_back(schema->field(f).name);
      }
    }
    out += StrFormat("    projection: %d of %zu fields ship (%s)\n",
                     sp.kept_fields, sp.keep_field.size(),
                     kept.empty() ? "metadata only"
                                  : StrJoin(kept, ", ").c_str());
  }

  const CentralPlan& central = plan.central;
  out += "central plan (ScrubCentral):\n";
  if (central.is_join()) {
    out += StrFormat("  join: %s on %.*s, scoped per window\n",
                     StrJoin(central.sources, " \xE2\x8B\x88 ").c_str(),
                     static_cast<int>(kRequestIdField.size()),
                     kRequestIdField.data());
  }
  if (!central.aggregate_mode) {
    out += StrFormat("  mode: raw projection, %zu column(s) per tuple\n",
                     central.raw_select.size());
  } else {
    out += StrFormat("  group by: %zu key(s)\n", central.group_by.size());
    out += StrFormat("  aggregates: %zu\n", central.aggregates.size());
    for (const AggregateSpec& spec : central.aggregates) {
      out += StrFormat("    %s%s\n", AggregateFuncName(spec.func),
                       spec.func == AggregateFunc::kTopK
                           ? StrFormat("(k=%lld, SpaceSaving)",
                                       static_cast<long long>(spec.topk_k))
                                 .c_str()
                           : (spec.func == AggregateFunc::kCountDistinct
                                  ? " (HyperLogLog)"
                                  : ""));
    }
  }
  if (central.SamplingActive()) {
    out += StrFormat("  sampling: hosts %.4g%%, events %.4g%% — COUNT/SUM "
                     "scale per Eq. 1; ungrouped single-source COUNT/SUM "
                     "carry Eq. 2-3 error bounds\n",
                     central.host_sample_rate * 100,
                     central.event_sample_rate * 100);
  }
  out += "  physical pipeline:\n";
  const PhysicalPipeline pipeline =
      CompilePhysical(central, PipelineRole::kSingleInstance);
  for (const PhysicalOp& op : pipeline.ops) {
    out += StrFormat("    %s(%s)\n", PhysicalOpKindName(op.kind),
                     op.detail.c_str());
  }

  // Typed expression IR: the lowered, folded programs the row and columnar
  // evaluators execute, with the abstract interpreter's facts.
  out += "ir:\n";
  for (size_t i = 0; i < plan.host.sources.size(); ++i) {
    const HostSourcePlan& sp = plan.host.sources[i];
    const std::vector<std::string> single_source = {sp.event_type};
    const std::vector<SchemaPtr> single_schema = {analyzed.schemas[i]};
    if (sp.never_matches) {
      out += StrFormat("  source '%s': filter proven unsatisfiable — no "
                       "event ever ships\n",
                       sp.event_type.c_str());
    }
    const size_t pruned = sp.conjuncts.size() - sp.programs.size();
    if (pruned > 0 && !sp.never_matches) {
      out += StrFormat("  source '%s': %zu conjunct(s) folded away or "
                       "implied by the rest\n",
                       sp.event_type.c_str(), pruned);
    }
    for (size_t pi = 0; pi < sp.programs.size(); ++pi) {
      const ExprProgram& program = sp.programs[pi];
      const ProgramAnalysis analysis = AnalyzeProgram(program);
      out += StrFormat("  source '%s' filter program %zu: result %s, "
                       "predicate %s\n",
                       sp.event_type.c_str(), pi,
                       analysis.result.ToString().c_str(),
                       PredicateClassName(analysis.predicate));
      out += IndentLines(ProgramToString(program, single_source,
                                         single_schema),
                         "    ");
    }
  }
  {
    size_t agg_args = 0;
    size_t agg_insts = 0;
    for (const AggregateSpec& spec : central.aggregates) {
      if (spec.has_arg) {
        ++agg_args;
        agg_insts += spec.arg_program.insts.size();
      }
    }
    size_t central_insts = agg_insts;
    for (const ExprProgram& p : central.group_by_programs) {
      central_insts += p.insts.size();
    }
    for (const ExprProgram& p : central.raw_select_programs) {
      central_insts += p.insts.size();
    }
    out += StrFormat("  central: %zu group-key, %zu aggregate-arg, %zu "
                     "raw-select program(s), %zu instruction(s) total\n",
                     central.group_by_programs.size(), agg_args,
                     central.raw_select_programs.size(), central_insts);
  }

  const std::vector<Diagnostic> diags = LintQuery(analyzed, lint_options);
  if (diags.empty()) {
    out += "lint: clean\n";
  } else {
    out += "lint:\n";
    for (const Diagnostic& d : diags) {
      std::string rendered = RenderDiagnostic(d, query_text);
      out += "  ";
      for (const char c : rendered) {
        out += c;
        if (c == '\n') {
          out += "  ";
        }
      }
      out += "\n";
    }
  }
  return out;
}

std::string ExplainQuery(std::string_view query_text,
                         const SchemaRegistry& registry,
                         const AnalyzerOptions& options,
                         const LintOptions& lint_options) {
  Result<AnalyzedQuery> analyzed =
      ParseAndAnalyze(query_text, registry, options);
  if (!analyzed.ok()) {
    return "error: " + analyzed.status().ToString();
  }
  Result<QueryPlan> plan = PlanQuery(*analyzed, /*query_id=*/0,
                                     /*submit_time=*/0);
  if (!plan.ok()) {
    return "error: " + plan.status().ToString();
  }
  return ExplainPlan(*analyzed, *plan, lint_options, query_text);
}

}  // namespace scrub
