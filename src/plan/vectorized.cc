#include "src/plan/vectorized.h"

#include <string_view>
#include <utility>

namespace scrub {
namespace {

bool Truthy(const Value& v) { return v.is_bool() && v.AsBool(); }

Value EvalBinaryColumns(const CompiledExpr& e, const ColumnBatch& batch,
                        size_t row) {
  const BinaryOp op = e.binary_op;
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    const Value lhs = EvalExprColumns(e.children[0], batch, row);
    const bool l = lhs.is_bool() && lhs.AsBool();
    if (op == BinaryOp::kAnd && !l) {
      return Value(false);
    }
    if (op == BinaryOp::kOr && l) {
      return Value(true);
    }
    const Value rhs = EvalExprColumns(e.children[1], batch, row);
    return Value(rhs.is_bool() && rhs.AsBool());
  }
  return ApplyBinaryOp(op, EvalExprColumns(e.children[0], batch, row),
                       EvalExprColumns(e.children[1], batch, row));
}

// `<field> <cmp> <literal>` (either operand order): extract the shape and
// hand it to the shared branch-free kernel.
bool TryCompareKernel(const CompiledExpr& e, const ColumnBatch& batch,
                      std::vector<uint32_t>* selection) {
  if (e.kind != CompiledKind::kBinary || !IsComparisonOp(e.binary_op)) {
    return false;
  }
  const CompiledExpr& lhs = e.children[0];
  const CompiledExpr& rhs = e.children[1];
  const CompiledExpr* field = nullptr;
  const CompiledExpr* literal = nullptr;
  bool field_on_lhs = false;
  if (lhs.kind == CompiledKind::kField && rhs.kind == CompiledKind::kLiteral) {
    field = &lhs;
    literal = &rhs;
    field_on_lhs = true;
  } else if (lhs.kind == CompiledKind::kLiteral &&
             rhs.kind == CompiledKind::kField) {
    field = &rhs;
    literal = &lhs;
  } else {
    return false;
  }
  if (!field->path.empty() || field->source != 0) {
    return false;
  }
  return RunCompareKernel(batch, static_cast<size_t>(field->field_index),
                          e.binary_op, literal->literal, field_on_lhs,
                          selection);
}

// ---- Branch-free compare kernel internals ----------------------------------

// Normalized comparison forms after operand-order flipping. Le/Ge are
// expressed through Gt/Lt because Value::Compare answers 0 when NaN is
// involved: the row path's `Compare(v, lit) <= 0` is TRUE for a NaN cell,
// so Le must compile to !(v > lit), never (v <= lit).
enum class CmpForm : uint8_t { kLt, kGt, kNotGt, kNotLt, kEq, kNe };

bool FormFor(BinaryOp op, bool field_on_lhs, CmpForm* form) {
  switch (op) {
    case BinaryOp::kEq:
      *form = CmpForm::kEq;
      return true;
    case BinaryOp::kNe:
      *form = CmpForm::kNe;
      return true;
    case BinaryOp::kLt:
      *form = field_on_lhs ? CmpForm::kLt : CmpForm::kGt;
      return true;
    case BinaryOp::kGt:
      *form = field_on_lhs ? CmpForm::kGt : CmpForm::kLt;
      return true;
    case BinaryOp::kLe:
      *form = field_on_lhs ? CmpForm::kNotGt : CmpForm::kNotLt;
      return true;
    case BinaryOp::kGe:
      *form = field_on_lhs ? CmpForm::kNotLt : CmpForm::kNotGt;
      return true;
    default:
      return false;
  }
}

template <CmpForm F, typename T>
inline bool Cmp(T v, T lit) {
  if constexpr (F == CmpForm::kLt) {
    return v < lit;
  } else if constexpr (F == CmpForm::kGt) {
    return v > lit;
  } else if constexpr (F == CmpForm::kNotGt) {
    return !(v > lit);
  } else if constexpr (F == CmpForm::kNotLt) {
    return !(v < lit);
  } else if constexpr (F == CmpForm::kEq) {
    return v == lit;
  } else {
    return v != lit;
  }
}

// Unconditional-store compaction: every row index is written at sel[kept]
// whether or not it survives; `kept` only advances when it does. No per-row
// branch, so the loop stays a straight-line candidate for auto-vectorization.
template <typename KeepFn>
void Compact(std::vector<uint32_t>* selection, const KeepFn& keep) {
  uint32_t* sel = selection->data();
  const size_t n = selection->size();
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = sel[i];
    sel[kept] = r;
    kept += keep(r) ? 1 : 0;
  }
  selection->resize(kept);
}

// One typed compare loop: `get(r)` reads the cell, null rows resolve to the
// pre-probed null verdict arithmetically (placeholder slots make the typed
// read safe even for null rows).
template <CmpForm F, typename T, typename GetFn>
void CompactTyped(const std::vector<uint8_t>& nulls, bool null_keep,
                  const GetFn& get, T lit, std::vector<uint32_t>* selection) {
  if (nulls.empty()) {
    Compact(selection, [&](uint32_t r) { return Cmp<F, T>(get(r), lit); });
    return;
  }
  Compact(selection, [&](uint32_t r) {
    const bool is_null = BitmapGet(nulls, r);
    return ((!is_null & Cmp<F, T>(get(r), lit)) | (is_null & null_keep)) != 0;
  });
}

template <typename T, typename GetFn>
void DispatchTyped(CmpForm form, const std::vector<uint8_t>& nulls,
                   bool null_keep, const GetFn& get, T lit,
                   std::vector<uint32_t>* selection) {
  switch (form) {
    case CmpForm::kLt:
      CompactTyped<CmpForm::kLt, T>(nulls, null_keep, get, lit, selection);
      break;
    case CmpForm::kGt:
      CompactTyped<CmpForm::kGt, T>(nulls, null_keep, get, lit, selection);
      break;
    case CmpForm::kNotGt:
      CompactTyped<CmpForm::kNotGt, T>(nulls, null_keep, get, lit, selection);
      break;
    case CmpForm::kNotLt:
      CompactTyped<CmpForm::kNotLt, T>(nulls, null_keep, get, lit, selection);
      break;
    case CmpForm::kEq:
      CompactTyped<CmpForm::kEq, T>(nulls, null_keep, get, lit, selection);
      break;
    case CmpForm::kNe:
      CompactTyped<CmpForm::kNe, T>(nulls, null_keep, get, lit, selection);
      break;
  }
}

// The verdict ApplyBinaryOp would reach for a null cell, probed once with
// the real operand order so the kernel inherits the row path's null rules
// (Eq only matches null-vs-null; Ne is true for null-vs-non-null; ordered
// comparisons with a null operand are false).
bool NullCellKeep(BinaryOp op, const Value& literal, bool field_on_lhs) {
  return Truthy(field_on_lhs ? ApplyBinaryOp(op, Value(), literal)
                             : ApplyBinaryOp(op, literal, Value()));
}

}  // namespace

bool RunCompareKernel(const ColumnBatch& batch, size_t field, BinaryOp op,
                      const Value& literal, bool field_on_lhs,
                      std::vector<uint32_t>* selection) {
  if (!IsComparisonOp(op)) {
    return false;
  }
  const ColumnBatch::Column& col = batch.column(field);
  // Generic columns may box anything — including a null payload under a
  // clear bitmap on hostile input — so only the boxed per-row path is safe.
  if (col.rep == ColumnBatch::Rep::kGeneric) {
    return false;
  }
  CmpForm form;
  if (!FormFor(op, field_on_lhs, &form)) {
    return false;
  }
  const bool null_keep = NullCellKeep(op, literal, field_on_lhs);

  if (literal.is_null()) {
    // Against a null literal the verdict depends only on each cell's
    // nullness; probe the non-null side once with a representative value
    // (the row rules are class-independent here).
    const bool nonnull_keep =
        Truthy(field_on_lhs ? ApplyBinaryOp(op, Value(int64_t{0}), literal)
                            : ApplyBinaryOp(op, literal, Value(int64_t{0})));
    if (col.nulls.empty()) {
      if (!nonnull_keep) {
        selection->clear();
      }
      return true;
    }
    Compact(selection, [&](uint32_t r) {
      const bool is_null = BitmapGet(col.nulls, r);
      return ((!is_null & nonnull_keep) | (is_null & null_keep)) != 0;
    });
    return true;
  }

  switch (col.rep) {
    case ColumnBatch::Rep::kInt:
      if (literal.is_int()) {
        DispatchTyped<int64_t>(
            form, col.nulls, null_keep,
            [&col](uint32_t r) { return col.ints[r]; }, literal.AsInt(),
            selection);
        return true;
      }
      if (literal.is_double()) {
        // Mixed int/double comparisons run as doubles in the row path.
        DispatchTyped<double>(
            form, col.nulls, null_keep,
            [&col](uint32_t r) { return static_cast<double>(col.ints[r]); },
            literal.AsNumber(), selection);
        return true;
      }
      return false;
    case ColumnBatch::Rep::kDouble:
      if (literal.is_int() || literal.is_double()) {
        DispatchTyped<double>(
            form, col.nulls, null_keep,
            [&col](uint32_t r) { return col.doubles[r]; }, literal.AsNumber(),
            selection);
        return true;
      }
      return false;
    case ColumnBatch::Rep::kString: {
      if (!literal.is_string()) {
        return false;
      }
      // Compare arena slices against the literal once per row; the form then
      // applies to the three-way result (string equality coincides with
      // compare() == 0, so Eq/Ne are exact).
      const std::string_view lit(literal.AsString());
      const std::string_view arena(col.arena);
      DispatchTyped<int>(
          form, col.nulls, null_keep,
          [&col, arena, lit](uint32_t r) {
            return arena
                .substr(col.offsets[r], col.offsets[r + 1] - col.offsets[r])
                .compare(lit);
          },
          0, selection);
      return true;
    }
    case ColumnBatch::Rep::kDict: {
      const size_t entries = col.dict_size();
      if (entries == 0) {
        return false;  // degenerate (all-null) dictionary: no typed values
      }
      // One dictionary-side ApplyBinaryOp per entry builds the verdict
      // table; rows then compare codes, not bytes. Works for any literal
      // class because the probe IS the row semantics.
      std::vector<uint8_t> table(entries, 0);
      for (size_t c = 0; c < entries; ++c) {
        const Value entry(col.arena.substr(
            col.offsets[c], col.offsets[c + 1] - col.offsets[c]));
        table[c] = Truthy(field_on_lhs ? ApplyBinaryOp(op, entry, literal)
                                       : ApplyBinaryOp(op, literal, entry))
                       ? 1
                       : 0;
      }
      if (col.nulls.empty()) {
        Compact(selection, [&](uint32_t r) {
          return table[static_cast<size_t>(col.ints[r])] != 0;
        });
        return true;
      }
      Compact(selection, [&](uint32_t r) {
        const bool is_null = BitmapGet(col.nulls, r);
        // Null rows carry placeholder code 0; the null mask overrides it.
        const bool hit = table[static_cast<size_t>(col.ints[r])] != 0;
        return ((!is_null & hit) | (is_null & null_keep)) != 0;
      });
      return true;
    }
    case ColumnBatch::Rep::kBool:
      return false;  // rare in pushed-down predicates; boxed path handles it
    case ColumnBatch::Rep::kGeneric:
      return false;
  }
  return false;
}

Value EvalExprColumns(const CompiledExpr& expr, const ColumnBatch& batch,
                      size_t row) {
  switch (expr.kind) {
    case CompiledKind::kLiteral:
      return expr.literal;
    case CompiledKind::kField: {
      Value v = batch.ValueAt(static_cast<size_t>(expr.field_index), row);
      for (const std::string& step : expr.path) {
        if (!v.is_object()) {
          return Value::Null();
        }
        const Value* next = v.AsObject().Find(step);
        if (next == nullptr) {
          return Value::Null();
        }
        Value descended = *next;
        v = std::move(descended);
      }
      return v;
    }
    case CompiledKind::kRequestId:
      return Value(static_cast<int64_t>(batch.request_id(row)));
    case CompiledKind::kTimestamp:
      return Value(static_cast<int64_t>(batch.timestamp(row)));
    case CompiledKind::kUnary: {
      const Value operand = EvalExprColumns(expr.children[0], batch, row);
      return ApplyUnaryOp(expr.unary_op, operand);
    }
    case CompiledKind::kBinary:
      return EvalBinaryColumns(expr, batch, row);
    case CompiledKind::kInList: {
      const Value probe = EvalExprColumns(expr.children[0], batch, row);
      if (probe.is_null()) {
        return Value(false);
      }
      for (const Value& member : expr.in_list) {
        if (probe == member) {
          return Value(true);
        }
      }
      return Value(false);
    }
  }
  return Value::Null();
}

bool EvalPredicateColumns(const CompiledExpr& expr, const ColumnBatch& batch,
                          size_t row) {
  const Value v = EvalExprColumns(expr, batch, row);
  return v.is_bool() && v.AsBool();
}

void EvalPredicateBatch(const CompiledExpr& expr, const ColumnBatch& batch,
                        std::vector<uint32_t>* selection) {
  if (TryCompareKernel(expr, batch, selection)) {
    return;
  }
  size_t kept = 0;
  for (const uint32_t r : *selection) {
    if (EvalPredicateColumns(expr, batch, r)) {
      (*selection)[kept++] = r;
    }
  }
  selection->resize(kept);
}

void FoldColumns(const std::vector<const ExprProgram*>& programs,
                 const ColumnBatch& batch, const uint32_t* selection,
                 size_t selected, FoldedColumns* out) {
  out->values.assign(programs.size(), {});
  auto row_at = [selection](size_t i) -> size_t {
    return selection != nullptr ? selection[i] : i;
  };
  for (size_t p = 0; p < programs.size(); ++p) {
    const ExprProgram& prog = *programs[p];
    std::vector<Value>& vals = out->values[p];
    vals.resize(selected);
    // Single-instruction programs (the dominant group-key / aggregate-arg
    // shape after lowering) gather as one typed contiguous loop instead of
    // setting up the interpreter per row.
    if (prog.insts.size() == 1 && prog.insts[0].dst == prog.result) {
      const IrInst& in = prog.insts[0];
      if (in.op == IrOp::kConst) {
        const Value& c = prog.consts[static_cast<size_t>(in.imm)];
        for (size_t i = 0; i < selected; ++i) {
          vals[i] = c;
        }
        continue;
      }
      if (in.op == IrOp::kLoadRequestId && in.a == 0) {
        for (size_t i = 0; i < selected; ++i) {
          vals[i] =
              Value(static_cast<int64_t>(batch.request_id(row_at(i))));
        }
        continue;
      }
      if (in.op == IrOp::kLoadTimestamp && in.a == 0) {
        for (size_t i = 0; i < selected; ++i) {
          vals[i] = Value(static_cast<int64_t>(batch.timestamp(row_at(i))));
        }
        continue;
      }
      if (in.op == IrOp::kLoadField && in.a == 0 && in.imm < 0) {
        const ColumnBatch::Column& col = batch.column(in.b);
        switch (col.rep) {
          case ColumnBatch::Rep::kBool:
            for (size_t i = 0; i < selected; ++i) {
              const size_t r = row_at(i);
              vals[i] = BitmapGet(col.nulls, r) ? Value()
                                                : Value(col.bools[r] != 0);
            }
            continue;
          case ColumnBatch::Rep::kInt:
            for (size_t i = 0; i < selected; ++i) {
              const size_t r = row_at(i);
              vals[i] =
                  BitmapGet(col.nulls, r) ? Value() : Value(col.ints[r]);
            }
            continue;
          case ColumnBatch::Rep::kDouble:
            for (size_t i = 0; i < selected; ++i) {
              const size_t r = row_at(i);
              vals[i] =
                  BitmapGet(col.nulls, r) ? Value() : Value(col.doubles[r]);
            }
            continue;
          case ColumnBatch::Rep::kString:
            for (size_t i = 0; i < selected; ++i) {
              const size_t r = row_at(i);
              vals[i] = BitmapGet(col.nulls, r)
                            ? Value()
                            : Value(col.arena.substr(
                                  col.offsets[r],
                                  col.offsets[r + 1] - col.offsets[r]));
            }
            continue;
          case ColumnBatch::Rep::kDict:
            for (size_t i = 0; i < selected; ++i) {
              const size_t r = row_at(i);
              if (BitmapGet(col.nulls, r)) {
                vals[i] = Value();
              } else {
                const size_t code = static_cast<size_t>(col.ints[r]);
                vals[i] = Value(col.arena.substr(
                    col.offsets[code],
                    col.offsets[code + 1] - col.offsets[code]));
              }
            }
            continue;
          case ColumnBatch::Rep::kGeneric:
            for (size_t i = 0; i < selected; ++i) {
              const size_t r = row_at(i);
              vals[i] =
                  BitmapGet(col.nulls, r) ? Value() : col.generic[r];
            }
            continue;
        }
      }
    }
    for (size_t i = 0; i < selected; ++i) {
      vals[i] = EvalProgramColumns(prog, batch, row_at(i));
    }
  }
}

}  // namespace scrub
