#include "src/plan/vectorized.h"

#include <utility>

namespace scrub {
namespace {

Value EvalBinaryColumns(const CompiledExpr& e, const ColumnBatch& batch,
                        size_t row) {
  const BinaryOp op = e.binary_op;
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    const Value lhs = EvalExprColumns(e.children[0], batch, row);
    const bool l = lhs.is_bool() && lhs.AsBool();
    if (op == BinaryOp::kAnd && !l) {
      return Value(false);
    }
    if (op == BinaryOp::kOr && l) {
      return Value(true);
    }
    const Value rhs = EvalExprColumns(e.children[1], batch, row);
    return Value(rhs.is_bool() && rhs.AsBool());
  }
  return ApplyBinaryOp(op, EvalExprColumns(e.children[0], batch, row),
                       EvalExprColumns(e.children[1], batch, row));
}

// `<field> <cmp> <literal>` over a numeric column: the shape that dominates
// pushed-down predicates. Reads the typed storage directly; each comparison
// still routes through ApplyBinaryOp on a stack-constructed Value, so the
// semantics cannot drift from the row path.
bool TryCompareKernel(const CompiledExpr& e, const ColumnBatch& batch,
                      std::vector<uint32_t>* selection) {
  if (e.kind != CompiledKind::kBinary || !IsComparisonOp(e.binary_op)) {
    return false;
  }
  const CompiledExpr& lhs = e.children[0];
  const CompiledExpr& rhs = e.children[1];
  if (lhs.kind != CompiledKind::kField || !lhs.path.empty() ||
      lhs.source != 0 || rhs.kind != CompiledKind::kLiteral) {
    return false;
  }
  const ColumnBatch::Column& col =
      batch.column(static_cast<size_t>(lhs.field_index));
  if (col.rep != ColumnBatch::Rep::kInt &&
      col.rep != ColumnBatch::Rep::kDouble) {
    return false;
  }
  size_t kept = 0;
  for (const uint32_t r : *selection) {
    Value probe;  // null when the row's cell is null
    if (!BitmapGet(col.nulls, r)) {
      probe = col.rep == ColumnBatch::Rep::kInt ? Value(col.ints[r])
                                                : Value(col.doubles[r]);
    }
    const Value verdict = ApplyBinaryOp(e.binary_op, probe, rhs.literal);
    if (verdict.is_bool() && verdict.AsBool()) {
      (*selection)[kept++] = r;
    }
  }
  selection->resize(kept);
  return true;
}

}  // namespace

Value EvalExprColumns(const CompiledExpr& expr, const ColumnBatch& batch,
                      size_t row) {
  switch (expr.kind) {
    case CompiledKind::kLiteral:
      return expr.literal;
    case CompiledKind::kField: {
      Value v = batch.ValueAt(static_cast<size_t>(expr.field_index), row);
      for (const std::string& step : expr.path) {
        if (!v.is_object()) {
          return Value::Null();
        }
        const Value* next = v.AsObject().Find(step);
        if (next == nullptr) {
          return Value::Null();
        }
        Value descended = *next;
        v = std::move(descended);
      }
      return v;
    }
    case CompiledKind::kRequestId:
      return Value(static_cast<int64_t>(batch.request_id(row)));
    case CompiledKind::kTimestamp:
      return Value(static_cast<int64_t>(batch.timestamp(row)));
    case CompiledKind::kUnary: {
      const Value operand = EvalExprColumns(expr.children[0], batch, row);
      return ApplyUnaryOp(expr.unary_op, operand);
    }
    case CompiledKind::kBinary:
      return EvalBinaryColumns(expr, batch, row);
    case CompiledKind::kInList: {
      const Value probe = EvalExprColumns(expr.children[0], batch, row);
      if (probe.is_null()) {
        return Value(false);
      }
      for (const Value& member : expr.in_list) {
        if (probe == member) {
          return Value(true);
        }
      }
      return Value(false);
    }
  }
  return Value::Null();
}

bool EvalPredicateColumns(const CompiledExpr& expr, const ColumnBatch& batch,
                          size_t row) {
  const Value v = EvalExprColumns(expr, batch, row);
  return v.is_bool() && v.AsBool();
}

void EvalPredicateBatch(const CompiledExpr& expr, const ColumnBatch& batch,
                        std::vector<uint32_t>* selection) {
  if (TryCompareKernel(expr, batch, selection)) {
    return;
  }
  size_t kept = 0;
  for (const uint32_t r : *selection) {
    if (EvalPredicateColumns(expr, batch, r)) {
      (*selection)[kept++] = r;
    }
  }
  selection->resize(kept);
}

}  // namespace scrub
