#include "src/plan/expr_analysis.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "src/common/strings.h"

namespace scrub {

namespace {

bool Truthy(const Value& v) { return v.is_bool() && v.AsBool(); }

bool IsJumpOp(IrOp op) {
  return op == IrOp::kJumpIfFalse || op == IrOp::kJumpIfTrue;
}

// Instructions whose destination is a bool by construction.
bool ProducesBool(IrOp op) {
  switch (op) {
    case IrOp::kNot:
    case IrOp::kCoerceBool:
    case IrOp::kEq:
    case IrOp::kNe:
    case IrOp::kLt:
    case IrOp::kLe:
    case IrOp::kGt:
    case IrOp::kGe:
    case IrOp::kContains:
    case IrOp::kInList:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Verifier.

Status VerifyProgram(const ExprProgram& p) {
  if (p.insts.empty()) {
    return InvalidArgument("ir: empty program");
  }
  if (p.result >= p.num_regs) {
    return InvalidArgument(StrFormat("ir: result register r%u out of range",
                                     p.result));
  }
  std::vector<bool> defined(p.num_regs, false);
  const auto use = [&](size_t i, uint16_t r) -> Status {
    if (r >= p.num_regs) {
      return InvalidArgument(
          StrFormat("ir: inst %zu reads register r%u out of range", i, r));
    }
    if (!defined[r]) {
      return InvalidArgument(
          StrFormat("ir: inst %zu reads r%u before any definition", i, r));
    }
    return OkStatus();
  };
  for (size_t i = 0; i < p.insts.size(); ++i) {
    const IrInst& in = p.insts[i];
    if (IsJumpOp(in.op)) {
      if (in.types != 0) {
        return InvalidArgument(
            StrFormat("ir: inst %zu: jump carries a type tag", i));
      }
      if (Status s = use(i, in.a); !s.ok()) {
        return s;
      }
      if (in.imm <= static_cast<int32_t>(i) ||
          in.imm > static_cast<int32_t>(p.insts.size())) {
        return InvalidArgument(StrFormat(
            "ir: inst %zu: jump target %d not forward and in bounds", i,
            in.imm));
      }
      continue;
    }
    if (in.dst >= p.num_regs) {
      return InvalidArgument(
          StrFormat("ir: inst %zu writes register r%u out of range", i,
                    in.dst));
    }
    if (in.types == 0 || (in.types & ~kMaskAny) != 0) {
      return InvalidArgument(
          StrFormat("ir: inst %zu: malformed type tag 0x%x", i, in.types));
    }
    if (ProducesBool(in.op) && in.types != kMaskBool) {
      return InvalidArgument(StrFormat(
          "ir: inst %zu: %s must be tagged bool", i, IrOpName(in.op)));
    }
    switch (in.op) {
      case IrOp::kConst:
        if (in.imm < 0 ||
            in.imm >= static_cast<int32_t>(p.consts.size())) {
          return InvalidArgument(
              StrFormat("ir: inst %zu: const pool index %d invalid", i,
                        in.imm));
        }
        if (in.types != ValueTypeMask(p.consts[static_cast<size_t>(in.imm)])) {
          return InvalidArgument(StrFormat(
              "ir: inst %zu: const type tag disagrees with pool value", i));
        }
        break;
      case IrOp::kLoadField:
        if (in.a >= p.source_count) {
          return InvalidArgument(StrFormat(
              "ir: inst %zu: load from source %u out of range", i, in.a));
        }
        if (in.imm >= static_cast<int32_t>(p.paths.size())) {
          return InvalidArgument(
              StrFormat("ir: inst %zu: path pool index %d invalid", i,
                        in.imm));
        }
        break;
      case IrOp::kLoadRequestId:
      case IrOp::kLoadTimestamp:
        if (in.a >= p.source_count) {
          return InvalidArgument(StrFormat(
              "ir: inst %zu: load from source %u out of range", i, in.a));
        }
        break;
      case IrOp::kNeg:
        if ((in.types & ~(kMaskNull | kMaskNumeric)) != 0) {
          return InvalidArgument(StrFormat(
              "ir: inst %zu: neg result tagged non-numeric", i));
        }
        if (Status s = use(i, in.a); !s.ok()) {
          return s;
        }
        break;
      case IrOp::kNot:
      case IrOp::kCoerceBool:
        if (Status s = use(i, in.a); !s.ok()) {
          return s;
        }
        break;
      case IrOp::kInList:
        if (Status s = use(i, in.a); !s.ok()) {
          return s;
        }
        if (in.imm < 0 || in.imm >= static_cast<int32_t>(p.lists.size())) {
          return InvalidArgument(
              StrFormat("ir: inst %zu: list pool index %d invalid", i,
                        in.imm));
        }
        break;
      default: {
        if (!IsBinaryIrOp(in.op)) {
          return InvalidArgument(
              StrFormat("ir: inst %zu: unknown opcode", i));
        }
        const BinaryOp op = BinaryOpOf(in.op);
        if (IsArithmeticOp(op)) {
          const TypeMask allowed = op == BinaryOp::kDiv
                                       ? (kMaskNull | kMaskDouble)
                                       : (kMaskNull | kMaskNumeric);
          if ((in.types & ~allowed) != 0) {
            return InvalidArgument(StrFormat(
                "ir: inst %zu: arithmetic result tag too wide", i));
          }
        }
        if (Status s = use(i, in.a); !s.ok()) {
          return s;
        }
        if (Status s = use(i, in.b); !s.ok()) {
          return s;
        }
        break;
      }
    }
    defined[in.dst] = true;
  }
  if (!defined[p.result]) {
    return InvalidArgument(
        StrFormat("ir: result register r%u never defined", p.result));
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Abstract interpreter.

namespace {

// Numeric ranges are tracked in doubles; beyond 2^53 they stop being exact
// (and int64 products can wrap), so bounds larger than this drop the range.
constexpr double kRangeLimit = 9.0e15;
// Products of bounds within this magnitude are exact in a double and cannot
// wrap an int64, so multiplication may keep its interval.
constexpr double kMulOperandLimit = 9.0e7;

bool MayBe(TypeMask m, TypeMask bit) { return (m & bit) != 0; }
bool OnlyIn(TypeMask m, TypeMask allowed) { return (m & ~allowed) == 0; }

AbstractValue Unreachable() {
  AbstractValue v;
  v.types = 0;
  return v;
}

AbstractValue ConstFact(Value v) {
  AbstractValue f;
  f.types = ValueTypeMask(v);
  if (v.is_numeric()) {
    const double x = v.AsNumber();
    if (std::abs(x) <= kRangeLimit) {
      f.num_min = f.num_max = x;
      f.has_range = true;
    }
  }
  f.constant = std::move(v);
  return f;
}

// Constants join only when identical *including class*: int 2 and double 2.0
// compare equal but behave differently under class-rank ordering.
AbstractValue JoinFacts(const AbstractValue& a, const AbstractValue& b) {
  if (a.types == 0) {
    return b;
  }
  if (b.types == 0) {
    return a;
  }
  AbstractValue j;
  j.types = a.types | b.types;
  if (a.constant.has_value() && b.constant.has_value() &&
      ValueTypeMask(*a.constant) == ValueTypeMask(*b.constant) &&
      *a.constant == *b.constant) {
    j.constant = a.constant;
  }
  if (a.has_range && b.has_range) {
    j.num_min = std::min(a.num_min, b.num_min);
    j.num_max = std::max(a.num_max, b.num_max);
    j.has_range = true;
  }
  return j;
}

void JoinInto(std::vector<AbstractValue>* into,
              const std::vector<AbstractValue>& from) {
  for (size_t i = 0; i < into->size(); ++i) {
    (*into)[i] = JoinFacts((*into)[i], from[i]);
  }
}

// Coarse classes for equality reasoning: int and double merge (cross-numeric
// equality), everything else is its own class.
TypeMask CoarseClasses(TypeMask m) {
  return MayBe(m, kMaskNumeric) ? ((m & ~kMaskNumeric) | kMaskNumeric) : m;
}

AbstractValue ArithFact(BinaryOp op, const AbstractValue& a,
                        const AbstractValue& b) {
  if (a.constant.has_value() && b.constant.has_value()) {
    return ConstFact(ApplyBinaryOp(op, *a.constant, *b.constant));
  }
  if (!MayBe(a.types, kMaskNumeric) || !MayBe(b.types, kMaskNumeric)) {
    return ConstFact(Value::Null());  // non-numeric arithmetic is null
  }
  AbstractValue f;
  const bool may_null = MayBe(a.types, static_cast<TypeMask>(~kMaskNumeric)) ||
                        MayBe(b.types, static_cast<TypeMask>(~kMaskNumeric));
  if (op == BinaryOp::kDiv) {
    f.types = kMaskNull | kMaskDouble;  // divisor zero is always possible
    return f;
  }
  TypeMask m = 0;
  if (MayBe(a.types, kMaskInt) && MayBe(b.types, kMaskInt)) {
    m |= kMaskInt;
  }
  if (MayBe(a.types, kMaskDouble) || MayBe(b.types, kMaskDouble)) {
    m |= kMaskDouble;
  }
  if (may_null) {
    m |= kMaskNull;
  }
  f.types = m;
  if (a.has_range && b.has_range) {
    double lo = 0.0;
    double hi = 0.0;
    bool ok = true;
    switch (op) {
      case BinaryOp::kAdd:
        lo = a.num_min + b.num_min;
        hi = a.num_max + b.num_max;
        break;
      case BinaryOp::kSub:
        lo = a.num_min - b.num_max;
        hi = a.num_max - b.num_min;
        break;
      case BinaryOp::kMul: {
        ok = std::abs(a.num_min) <= kMulOperandLimit &&
             std::abs(a.num_max) <= kMulOperandLimit &&
             std::abs(b.num_min) <= kMulOperandLimit &&
             std::abs(b.num_max) <= kMulOperandLimit;
        const double c[4] = {a.num_min * b.num_min, a.num_min * b.num_max,
                             a.num_max * b.num_min, a.num_max * b.num_max};
        lo = std::min(std::min(c[0], c[1]), std::min(c[2], c[3]));
        hi = std::max(std::max(c[0], c[1]), std::max(c[2], c[3]));
        break;
      }
      default:
        ok = false;
        break;
    }
    // One widening step absorbs the rounding of the bound computation.
    lo = std::nextafter(lo, -1.0 / 0.0);
    hi = std::nextafter(hi, 1.0 / 0.0);
    if (ok && std::abs(lo) <= kRangeLimit && std::abs(hi) <= kRangeLimit) {
      f.num_min = lo;
      f.num_max = hi;
      f.has_range = true;
    }
  }
  return f;
}

AbstractValue CompareFact(BinaryOp op, const AbstractValue& a,
                          const AbstractValue& b, size_t inst,
                          std::vector<AnalysisNote>* notes) {
  AbstractValue f;
  f.types = kMaskBool;
  // The null-ordered check runs before the constant fold so that a provably
  // null operand that happens to also be a known constant (e.g. the result
  // of a constant division by zero) still surfaces the note.
  const bool ordered = op == BinaryOp::kLt || op == BinaryOp::kLe ||
                       op == BinaryOp::kGt || op == BinaryOp::kGe;
  if (ordered && (a.types == kMaskNull || b.types == kMaskNull)) {
    f.constant = Value(false);
    notes->push_back({AnalysisNoteKind::kNullOrderedCompare, inst});
    return f;
  }
  if (a.constant.has_value() && b.constant.has_value()) {
    f.constant = ApplyBinaryOp(op, *a.constant, *b.constant);
    return f;
  }
  if (op == BinaryOp::kEq || op == BinaryOp::kNe) {
    if (a.types == kMaskNull && b.types == kMaskNull) {
      f.constant = Value(op == BinaryOp::kEq);
      return f;
    }
    if ((CoarseClasses(a.types) & CoarseClasses(b.types)) == 0) {
      // No shared class, so never equal; "exactly one null" can still hold
      // only on the side that may be null, and disjointness already rules
      // out both being null at once.
      f.constant = Value(op == BinaryOp::kNe);
      return f;
    }
  }
  if (OnlyIn(a.types, kMaskNull | kMaskNumeric) &&
      OnlyIn(b.types, kMaskNull | kMaskNumeric) && a.has_range &&
      b.has_range) {
    const bool may_null = MayBe(a.types, kMaskNull) || MayBe(b.types, kMaskNull);
    const bool both_may_null =
        MayBe(a.types, kMaskNull) && MayBe(b.types, kMaskNull);
    bool always = false;
    bool never = false;
    switch (op) {
      case BinaryOp::kLt:
        never = a.num_min >= b.num_max;
        always = a.num_max < b.num_min;
        break;
      case BinaryOp::kLe:
        never = a.num_min > b.num_max;
        always = a.num_max <= b.num_min;
        break;
      case BinaryOp::kGt:
        never = a.num_max <= b.num_min;
        always = a.num_min > b.num_max;
        break;
      case BinaryOp::kGe:
        never = a.num_max < b.num_min;
        always = a.num_min >= b.num_max;
        break;
      case BinaryOp::kEq:
        never = a.num_min > b.num_max || b.num_min > a.num_max;
        break;
      case BinaryOp::kNe:
        always = a.num_min > b.num_max || b.num_min > a.num_max;
        break;
      default:
        break;
    }
    // A null operand makes ordered comparisons false and Eq false (unless
    // both null, excluded above for the folds that need it), so:
    //  * fold-to-false stands even when null is possible;
    //  * fold-to-true needs null impossible (Ne: both-null impossible).
    if (op == BinaryOp::kEq && never && both_may_null) {
      never = false;
    }
    if (never) {
      f.constant = Value(false);
      return f;
    }
    if (always && (op == BinaryOp::kNe ? !both_may_null : !may_null)) {
      f.constant = Value(true);
      return f;
    }
  }
  return f;
}

}  // namespace

ProgramAnalysis AnalyzeProgram(const ExprProgram& p) {
  ProgramAnalysis out;
  if (!VerifyProgram(p).ok()) {
    return out;  // analysis facts are only meaningful on verified programs
  }
  out.inst_facts.resize(p.insts.size());
  std::vector<AbstractValue> regs(p.num_regs);
  std::map<size_t, std::vector<AbstractValue>> pending;
  bool reachable = true;
  for (size_t pc = 0; pc < p.insts.size(); ++pc) {
    if (auto it = pending.find(pc); it != pending.end()) {
      if (reachable) {
        JoinInto(&regs, it->second);
      } else {
        regs = std::move(it->second);
        reachable = true;
      }
      pending.erase(it);
    }
    if (!reachable) {
      out.inst_facts[pc] = Unreachable();
      continue;
    }
    const IrInst& in = p.insts[pc];
    if (IsJumpOp(in.op)) {
      const AbstractValue cond = regs[in.a];
      out.inst_facts[pc] = cond;
      const bool jump_on = in.op == IrOp::kJumpIfTrue;
      bool always_taken = false;
      bool never_taken = false;
      if (cond.constant.has_value()) {
        const bool t = Truthy(*cond.constant);
        always_taken = t == jump_on;
        never_taken = !always_taken;
      } else if (!MayBe(cond.types, kMaskBool)) {
        // A register that can never hold a bool is never truthy.
        always_taken = !jump_on;
        never_taken = jump_on;
      }
      const bool refinable =
          cond.types == kMaskBool && !cond.constant.has_value();
      if (!never_taken) {
        std::vector<AbstractValue> taken = regs;
        if (refinable) {
          taken[in.a] = ConstFact(Value(jump_on));
        }
        const auto target = static_cast<size_t>(in.imm);
        if (auto it = pending.find(target); it != pending.end()) {
          JoinInto(&it->second, taken);
        } else {
          pending.emplace(target, std::move(taken));
        }
      }
      if (always_taken) {
        reachable = false;
      } else if (refinable) {
        regs[in.a] = ConstFact(Value(!jump_on));
      }
      continue;
    }
    AbstractValue fact;
    const AbstractValue& fa = regs[in.a];
    switch (in.op) {
      case IrOp::kConst:
        fact = ConstFact(p.consts[static_cast<size_t>(in.imm)]);
        break;
      case IrOp::kLoadField:
      case IrOp::kLoadRequestId:
      case IrOp::kLoadTimestamp:
        fact.types = in.types;
        break;
      case IrOp::kNeg:
        if (fa.constant.has_value()) {
          fact = ConstFact(ApplyUnaryOp(UnaryOp::kNegate, *fa.constant));
        } else if (!MayBe(fa.types, kMaskNumeric)) {
          fact = ConstFact(Value::Null());
        } else {
          fact.types = static_cast<TypeMask>(
              (fa.types & kMaskNumeric) |
              (MayBe(fa.types, static_cast<TypeMask>(~kMaskNumeric))
                   ? kMaskNull
                   : 0));
          if (fa.has_range) {
            fact.num_min = -fa.num_max;
            fact.num_max = -fa.num_min;
            fact.has_range = true;
          }
        }
        break;
      case IrOp::kNot:
        fact.types = kMaskBool;
        if (fa.constant.has_value()) {
          fact.constant = ApplyUnaryOp(UnaryOp::kNot, *fa.constant);
        } else if (!MayBe(fa.types, kMaskBool)) {
          fact.constant = Value(true);
        }
        break;
      case IrOp::kCoerceBool:
        fact.types = kMaskBool;
        if (fa.constant.has_value()) {
          fact.constant = Value(Truthy(*fa.constant));
        } else if (!MayBe(fa.types, kMaskBool)) {
          fact.constant = Value(false);
        }
        break;
      case IrOp::kInList: {
        fact.types = kMaskBool;
        if (fa.constant.has_value()) {
          bool hit = false;
          if (!fa.constant->is_null()) {
            for (const Value& m : p.lists[static_cast<size_t>(in.imm)]) {
              if (*fa.constant == m) {
                hit = true;
                break;
              }
            }
          }
          fact.constant = Value(hit);
        } else if (fa.types == kMaskNull) {
          fact.constant = Value(false);
        }
        break;
      }
      default: {
        const BinaryOp op = BinaryOpOf(in.op);
        const AbstractValue& fb = regs[in.b];
        if (op == BinaryOp::kContains) {
          fact.types = kMaskBool;
          if (fa.constant.has_value() && fb.constant.has_value()) {
            fact.constant = ApplyBinaryOp(op, *fa.constant, *fb.constant);
          } else if (!MayBe(fa.types, kMaskList)) {
            fact.constant = Value(false);
          }
        } else if (IsArithmeticOp(op)) {
          const bool zero_divisor =
              op == BinaryOp::kDiv &&
              ((fb.constant.has_value() && fb.constant->is_numeric() &&
                fb.constant->AsNumber() == 0.0) ||
               (fb.has_range && fb.num_min == 0.0 && fb.num_max == 0.0 &&
                MayBe(fb.types, kMaskNumeric)));
          if (zero_divisor) {
            out.notes.push_back({AnalysisNoteKind::kDivisionByZero, pc});
            fact = ConstFact(Value::Null());
          } else {
            fact = ArithFact(op, fa, fb);
          }
        } else {
          fact = CompareFact(op, fa, fb, pc, &out.notes);
        }
        break;
      }
    }
    regs[in.dst] = fact;
    out.inst_facts[pc] = std::move(fact);
  }
  if (auto it = pending.find(p.insts.size()); it != pending.end()) {
    if (reachable) {
      JoinInto(&regs, it->second);
    } else {
      regs = std::move(it->second);
    }
  }
  out.result = regs[p.result];
  if (out.result.constant.has_value()) {
    out.predicate = Truthy(*out.result.constant) ? PredicateClass::kAlwaysTrue
                                                 : PredicateClass::kAlwaysFalse;
  } else if (!MayBe(out.result.types, kMaskBool)) {
    out.predicate = PredicateClass::kAlwaysFalse;
  }
  return out;
}

bool FoldProgram(ExprProgram* program, const ProgramAnalysis& analysis) {
  if (!analysis.result.constant.has_value()) {
    return false;
  }
  if (program->insts.size() == 1 && program->insts[0].op == IrOp::kConst) {
    return false;  // already minimal
  }
  ExprProgram folded;
  folded.source_count = program->source_count;
  folded.consts.push_back(*analysis.result.constant);
  IrInst inst;
  inst.op = IrOp::kConst;
  inst.types = ValueTypeMask(folded.consts[0]);
  inst.dst = 0;
  inst.imm = 0;
  folded.insts.push_back(inst);
  folded.num_regs = 1;
  folded.result = 0;
  *program = std::move(folded);
  return true;
}

std::string AbstractValue::ToString() const {
  if (types == 0) {
    return "unreachable";
  }
  std::string s = TypeMaskName(types);
  if (constant.has_value()) {
    s += " = " + constant->ToString();
  } else if (has_range) {
    s += StrFormat(" in [%g, %g]", num_min, num_max);
  }
  return s;
}

const char* PredicateClassName(PredicateClass c) {
  switch (c) {
    case PredicateClass::kAlwaysTrue:
      return "always-true";
    case PredicateClass::kAlwaysFalse:
      return "always-false";
    case PredicateClass::kUnknown:
      return "unknown";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Conjunct-set analysis.

namespace {

struct Atom {
  int conjunct = 0;
  int source = 0;
  int field = 0;
  TypeMask field_types = kMaskAny;
  BinaryOp op = BinaryOp::kEq;
  Value value;
};

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // Eq / Ne are symmetric
  }
}

// A conjunct participates iff its whole program is one comparison between a
// path-free field load and a constant (in either operand order).
std::optional<Atom> ExtractAtom(const ExprProgram& p) {
  if (p.insts.size() != 3) {
    return std::nullopt;
  }
  const IrInst& cmp = p.insts[2];
  if (!IsBinaryIrOp(cmp.op) || cmp.dst != p.result) {
    return std::nullopt;
  }
  const BinaryOp op = BinaryOpOf(cmp.op);
  if (!IsComparisonOp(op)) {
    return std::nullopt;
  }
  const IrInst* def_a = nullptr;
  const IrInst* def_b = nullptr;
  for (int i = 1; i >= 0; --i) {
    if (def_a == nullptr && p.insts[i].dst == cmp.a) {
      def_a = &p.insts[i];
    }
    if (def_b == nullptr && p.insts[i].dst == cmp.b) {
      def_b = &p.insts[i];
    }
  }
  if (def_a == nullptr || def_b == nullptr || def_a == def_b) {
    return std::nullopt;
  }
  const IrInst* load = nullptr;
  const IrInst* konst = nullptr;
  bool flipped = false;
  if (def_a->op == IrOp::kLoadField && def_b->op == IrOp::kConst) {
    load = def_a;
    konst = def_b;
  } else if (def_a->op == IrOp::kConst && def_b->op == IrOp::kLoadField) {
    load = def_b;
    konst = def_a;
    flipped = true;
  } else {
    return std::nullopt;
  }
  if (load->imm >= 0) {
    return std::nullopt;  // nested-path loads are opaque
  }
  Atom atom;
  atom.source = load->a;
  atom.field = load->b;
  atom.field_types = load->types;
  atom.op = flipped ? FlipComparison(op) : op;
  atom.value = p.consts[static_cast<size_t>(konst->imm)];
  return atom;
}

bool IsLowerBound(BinaryOp op) {
  return op == BinaryOp::kGt || op == BinaryOp::kGe;
}
bool IsUpperBound(BinaryOp op) {
  return op == BinaryOp::kLt || op == BinaryOp::kLe;
}

// Can any value satisfy `x lo.op lo.value AND x hi.op hi.value`? Both
// constants are numeric. Non-numeric candidates fail one of the two sides
// by class rank (bool ranks below every numeric constant, string/list/object
// above, null fails ordered comparison outright), so satisfiability reduces
// to the numeric interval — tightened to integers when the field's type mask
// excludes doubles.
bool BoundsEmpty(TypeMask field_types, const Atom& lo, const Atom& hi) {
  if (!MayBe(field_types, kMaskNumeric)) {
    return true;  // must be numeric to pass both bounds, but never is
  }
  const double a = lo.value.AsNumber();
  const double b = hi.value.AsNumber();
  const bool lo_strict = lo.op == BinaryOp::kGt;
  const bool hi_strict = hi.op == BinaryOp::kLt;
  if (!MayBe(field_types, kMaskDouble)) {
    const double lo_int = lo_strict ? std::floor(a) + 1 : std::ceil(a);
    const double hi_int = hi_strict ? std::ceil(b) - 1 : std::floor(b);
    return lo_int > hi_int;
  }
  return a > b || (a == b && (lo_strict || hi_strict));
}

// Does lower/upper bound `s` imply same-direction bound `w` for every value?
// Sound for non-numeric values too: their verdict depends only on class rank
// versus the constant's class, and when the verdicts could differ (int vs
// double constants) the rank sandwich (bool < int < double < string) keeps
// the implication direction intact for Gt/Ge and Lt/Le alike.
bool ImpliesBound(const Atom& s, const Atom& w) {
  const double sv = s.value.AsNumber();
  const double wv = w.value.AsNumber();
  const bool s_strict = s.op == BinaryOp::kGt || s.op == BinaryOp::kLt;
  const bool w_strict = w.op == BinaryOp::kGt || w.op == BinaryOp::kLt;
  if (IsLowerBound(s.op)) {
    return sv > wv || (sv == wv && (s_strict || !w_strict));
  }
  return sv < wv || (sv == wv && (s_strict || !w_strict));
}

}  // namespace

ConjunctSetResult AnalyzeConjunctSet(
    const std::vector<const ExprProgram*>& conjuncts) {
  ConjunctSetResult out;
  std::map<std::pair<int, int>, std::vector<Atom>> groups;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (conjuncts[i] == nullptr) {
      continue;
    }
    if (std::optional<Atom> atom = ExtractAtom(*conjuncts[i])) {
      atom->conjunct = static_cast<int>(i);
      groups[{atom->source, atom->field}].push_back(std::move(*atom));
    }
  }
  std::set<int> redundant;
  for (const auto& [key, atoms] : groups) {
    if (atoms.size() < 2) {
      continue;
    }
    const Atom* pin = nullptr;
    for (const Atom& a : atoms) {
      if (a.op == BinaryOp::kEq) {
        pin = &a;
        break;
      }
    }
    bool contradiction = false;
    if (pin != nullptr) {
      // The pinned value must satisfy every other atom (substituting it is
      // exact: equality is by value within a class and across int/double).
      for (const Atom& a : atoms) {
        if (&a == pin) {
          continue;
        }
        if (!Truthy(ApplyBinaryOp(a.op, pin->value, a.value))) {
          contradiction = true;
          break;
        }
      }
    }
    if (!contradiction) {
      for (const Atom& lo : atoms) {
        if (!IsLowerBound(lo.op) || !lo.value.is_numeric()) {
          continue;
        }
        for (const Atom& hi : atoms) {
          if (!IsUpperBound(hi.op) || !hi.value.is_numeric()) {
            continue;
          }
          if (BoundsEmpty(lo.field_types, lo, hi)) {
            contradiction = true;
            break;
          }
        }
        if (contradiction) {
          break;
        }
      }
    }
    if (contradiction) {
      out.contradiction = true;
      out.contradiction_source = key.first;
      out.contradiction_field = key.second;
      out.redundant.clear();
      return out;
    }
    if (pin != nullptr) {
      // No contradiction, so every other atom in the group is implied.
      for (const Atom& a : atoms) {
        if (&a != pin) {
          redundant.insert(a.conjunct);
        }
      }
      continue;
    }
    for (size_t i = 0; i < atoms.size(); ++i) {
      for (size_t j = i + 1; j < atoms.size(); ++j) {
        const Atom& x = atoms[i];
        const Atom& y = atoms[j];
        if (x.op == y.op &&
            ValueTypeMask(x.value) == ValueTypeMask(y.value) &&
            x.value == y.value) {
          redundant.insert(y.conjunct);
          continue;
        }
        const bool same_direction =
            (IsLowerBound(x.op) && IsLowerBound(y.op)) ||
            (IsUpperBound(x.op) && IsUpperBound(y.op));
        if (!same_direction || !x.value.is_numeric() ||
            !y.value.is_numeric()) {
          continue;
        }
        if (ImpliesBound(x, y)) {
          redundant.insert(y.conjunct);
        } else if (ImpliesBound(y, x)) {
          redundant.insert(x.conjunct);
        }
      }
    }
  }
  out.redundant.assign(redundant.begin(), redundant.end());
  return out;
}

}  // namespace scrub
