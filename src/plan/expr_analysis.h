// Static analysis over the expression IR: verifier + abstract interpreter.
//
// Two layers, both running at query-install time (so their cost is amortized
// over every event the standing query ever evaluates):
//
//  * VerifyProgram — a structural verifier: operand registers in range and
//    defined before use (textually; jumps are forward-only so textual order
//    is a sound over-approximation), pool indexes valid, jump targets
//    forward and in bounds, type tags well-formed for their opcode, result
//    register defined. Lowering runs it on every program it builds; a
//    failure is a planner bug, and under debug or SCRUB_IR_VERIFY builds
//    (tools/check.sh runs a dedicated pass; sanitizer flavors enable it
//    automatically) it aborts the process instead of shipping a broken
//    program to the fleet.
//
//  * AnalyzeProgram — a forward abstract interpreter over a product domain:
//    per-register type masks (which runtime classes a register may hold),
//    known-constant values, and conservative numeric intervals. Branches
//    join at their (forward) targets. The facts drive constant folding
//    (FoldProgram), always-true/always-false predicate classification, and
//    the semantic notes (division by a provably zero divisor, ordered
//    comparison against an always-null operand) the lint rules surface.
//
// AnalyzeConjunctSet lifts the analysis across a split WHERE: it extracts
// `field <cmp> literal` atoms from each conjunct program and intersects
// them per field, detecting unsatisfiable conjunct sets (`status == 200 AND
// status >= 500`) and conjuncts subsumed by the rest — the planner prunes
// the former wholesale (never_matches) and lint reports both.

#ifndef SRC_PLAN_EXPR_ANALYSIS_H_
#define SRC_PLAN_EXPR_ANALYSIS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/plan/expr_ir.h"

namespace scrub {

// Structural well-formedness; OK means every instruction can execute without
// reading an undefined register or indexing outside a pool.
Status VerifyProgram(const ExprProgram& program);

// Abstract value of one register: the classes it may hold, its exact value
// when install-time decidable, and (when it may be numeric) a conservative
// bound on any numeric value it can take.
struct AbstractValue {
  TypeMask types = kMaskAny;
  std::optional<Value> constant;
  double num_min = 0.0;
  double num_max = 0.0;
  bool has_range = false;  // num_min/num_max valid

  std::string ToString() const;
};

enum class PredicateClass { kAlwaysTrue, kAlwaysFalse, kUnknown };
const char* PredicateClassName(PredicateClass c);

// Semantic findings surfaced to lint / explain, anchored to an instruction.
enum class AnalysisNoteKind {
  kDivisionByZero,       // divisor provably zero: the division is always null
  kNullOrderedCompare,   // <,<=,>,>= with an always-null operand: never true
};

struct AnalysisNote {
  AnalysisNoteKind kind = AnalysisNoteKind::kDivisionByZero;
  size_t inst = 0;
};

struct ProgramAnalysis {
  // Fact for each instruction's destination right after it executes (the
  // condition register's fact for jumps). Parallel to program.insts.
  std::vector<AbstractValue> inst_facts;
  // Fact for the result register at program exit (all paths joined).
  AbstractValue result;
  // Classification of the program used as a predicate (true iff the result
  // is boolean true).
  PredicateClass predicate = PredicateClass::kUnknown;
  std::vector<AnalysisNote> notes;
};

ProgramAnalysis AnalyzeProgram(const ExprProgram& program);

// When the analysis proved the result constant, rewrites `program` to a
// single kConst instruction. Returns true if it rewrote.
bool FoldProgram(ExprProgram* program, const ProgramAnalysis& analysis);

// ---------------------------------------------------------------------------
// Conjunct-set analysis.

struct ConjunctSetResult {
  // The conjuncts cannot all hold on any tuple: the filter ships nothing.
  bool contradiction = false;
  int contradiction_source = 0;      // field the empty intersection is on
  int contradiction_field = 0;
  // Conjuncts (indexes into the input) implied by the rest of the set.
  std::vector<int> redundant;
};

// Programs must share one lowering context (same source list). Only simple
// `field <cmp> literal` / `literal <cmp> field` atoms on path-free fields
// participate; anything else is conservatively opaque.
ConjunctSetResult AnalyzeConjunctSet(
    const std::vector<const ExprProgram*>& conjuncts);

}  // namespace scrub

#endif  // SRC_PLAN_EXPR_ANALYSIS_H_
