// Compiled expression evaluation.
//
// The analyzer's AST is convenient for validation but references fields by
// name. Before a query object ships to hosts (where evaluation is the hot
// path the paper works hardest to keep cheap), expressions are compiled into
// a tree whose field references carry pre-resolved (source index, field
// index) pairs — evaluation does no string work. The compiler also counts
// nodes so the simulation can charge a deterministic CPU cost per evaluation.

#ifndef SRC_PLAN_EXPR_EVAL_H_
#define SRC_PLAN_EXPR_EVAL_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/event/event.h"
#include "src/query/ast.h"

namespace scrub {

// A joined tuple: one event per query source, indexed by source position.
// Single-source queries use a single-element span.
using EventTuple = std::vector<const Event*>;

enum class CompiledKind {
  kLiteral,
  kField,      // user field, by index
  kRequestId,  // system field
  kTimestamp,  // system field
  kUnary,
  kBinary,
  kInList,
};

struct CompiledExpr {
  CompiledKind kind = CompiledKind::kLiteral;
  Value literal;
  int source = 0;       // kField/kRequestId/kTimestamp
  int field_index = 0;  // kField
  std::vector<std::string> path;  // kField: descent into a nested object
  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;
  std::vector<CompiledExpr> children;  // operands; for kInList: [probe]
  std::vector<Value> in_list;          // kInList members

  // Number of nodes in this subtree (cost accounting).
  int node_count = 1;
};

// Compiles a type-checked expression (no aggregates) against the query's
// source list. FieldRef qualifiers must already be canonicalized by the
// analyzer. Fails on aggregate nodes.
Result<CompiledExpr> CompileExpr(const Expr& expr,
                                 const std::vector<std::string>& sources,
                                 const std::vector<SchemaPtr>& schemas);

// Evaluates against a tuple. Events may be null only for sources the
// expression does not touch. Comparisons involving null values yield false
// (SQL-ish semantics without tri-state logic); arithmetic on null yields
// null, which propagates.
Value EvalExpr(const CompiledExpr& expr, const EventTuple& tuple);

// Convenience for single-source host-side evaluation.
Value EvalExprSingle(const CompiledExpr& expr, const Event& event);

// True iff the expression evaluates to boolean true.
bool EvalPredicate(const CompiledExpr& expr, const EventTuple& tuple);
bool EvalPredicateSingle(const CompiledExpr& expr, const Event& event);

// Operator semantics shared with output-expression evaluation at
// ScrubCentral (e.g. 1000 * AVG(cost) over finalized aggregates).
// No short-circuiting; null propagates through arithmetic and fails
// comparisons (except =/!= against another null).
Value ApplyBinaryOp(BinaryOp op, const Value& lhs, const Value& rhs);
Value ApplyUnaryOp(UnaryOp op, const Value& operand);

}  // namespace scrub

#endif  // SRC_PLAN_EXPR_EVAL_H_
