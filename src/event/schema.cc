#include "src/event/schema.h"

#include <algorithm>

#include "src/common/strings.h"

namespace scrub {

EventSchema::EventSchema(std::string type_name, std::vector<FieldDef> fields)
    : type_name_(std::move(type_name)), fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int EventSchema::FieldIndex(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : it->second;
}

bool EventSchema::HasField(std::string_view name) const {
  return name == kRequestIdField || name == kTimestampField ||
         FieldIndex(name) >= 0;
}

Result<FieldType> EventSchema::FieldTypeOf(std::string_view name) const {
  if (name == kRequestIdField) {
    return FieldType::kLong;
  }
  if (name == kTimestampField) {
    return FieldType::kDateTime;
  }
  const int idx = FieldIndex(name);
  if (idx < 0) {
    return NotFound(StrFormat("event type '%s' has no field '%.*s'",
                              type_name_.c_str(),
                              static_cast<int>(name.size()), name.data()));
  }
  return fields_[static_cast<size_t>(idx)].type;
}

Result<SchemaPtr> EventSchema::Builder::Build() const {
  if (type_name_.empty()) {
    return InvalidArgument("event type name must be non-empty");
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    const std::string& name = fields_[i].name;
    if (name.empty()) {
      return InvalidArgument(
          StrFormat("event type '%s': field names must be non-empty",
                    type_name_.c_str()));
    }
    if (name == kRequestIdField || name == kTimestampField) {
      return InvalidArgument(
          StrFormat("event type '%s': field '%s' shadows a system field",
                    type_name_.c_str(), name.c_str()));
    }
    for (size_t j = i + 1; j < fields_.size(); ++j) {
      if (fields_[j].name == name) {
        return InvalidArgument(
            StrFormat("event type '%s': duplicate field '%s'",
                      type_name_.c_str(), name.c_str()));
      }
    }
  }
  return SchemaPtr(new EventSchema(type_name_, fields_));
}

Status SchemaRegistry::Register(SchemaPtr schema) {
  if (schema == nullptr) {
    return InvalidArgument("null schema");
  }
  const auto [it, inserted] = schemas_.emplace(schema->type_name(), schema);
  (void)it;
  if (!inserted) {
    return AlreadyExists(StrFormat("event type '%s' already registered",
                                   schema->type_name().c_str()));
  }
  return OkStatus();
}

Result<SchemaPtr> SchemaRegistry::Get(std::string_view type_name) const {
  const auto it = schemas_.find(std::string(type_name));
  if (it == schemas_.end()) {
    return NotFound(StrFormat("unknown event type '%.*s'",
                              static_cast<int>(type_name.size()),
                              type_name.data()));
  }
  return it->second;
}

bool SchemaRegistry::Contains(std::string_view type_name) const {
  return schemas_.count(std::string(type_name)) > 0;
}

std::vector<std::string> SchemaRegistry::TypeNames() const {
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, schema] : schemas_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace scrub
