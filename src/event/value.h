// Typed field values.
//
// Scrub events are n-tuples of typed user fields (Section 3.1 of the paper):
// boolean, int, long, float, double, date/time, string, homogeneous lists of
// those primitives, and nested objects. Value is the runtime representation;
// the declared (schema) type constrains which Values a field may hold.

#ifndef SRC_EVENT_VALUE_H_
#define SRC_EVENT_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/status.h"

namespace scrub {

enum class FieldType {
  kBool,
  kInt,       // 32-bit in the schema; stored as int64.
  kLong,
  kFloat,     // 32-bit in the schema; stored as double.
  kDouble,
  kDateTime,  // micros since epoch; stored as int64.
  kString,
  kBoolList,
  kIntList,
  kLongList,
  kFloatList,
  kDoubleList,
  kStringList,
  kObject,    // nested object: named sub-fields (the paper's XML-ish nesting)
};

const char* FieldTypeName(FieldType type);

// Parses "long", "string_list", etc. Returns kNotFound for unknown names.
Result<FieldType> FieldTypeFromName(std::string_view name);

bool IsListType(FieldType type);
// kLongList -> kLong etc.; invalid for non-list types.
FieldType ListElementType(FieldType type);
// True if the type is ordered-comparable (< > <= >=).
bool IsOrderedType(FieldType type);
// True if values of this type are numeric (int/long/float/double/datetime).
bool IsNumericType(FieldType type);

class Value;

// A nested object is an ordered list of (name, value) pairs. Order preserved
// for deterministic serialization; lookup is linear (objects are small).
struct NestedObject {
  std::vector<std::pair<std::string, Value>> fields;

  const Value* Find(std::string_view name) const;
  bool operator==(const NestedObject& other) const;
};

// Runtime value. Null is the state of an unset field.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(int v) : data_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}
  explicit Value(std::vector<Value> v) : data_(std::move(v)) {}
  explicit Value(NestedObject v)
      : data_(std::make_shared<NestedObject>(std::move(v))) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_list() const {
    return std::holds_alternative<std::vector<Value>>(data_);
  }
  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<NestedObject>>(data_);
  }
  // Any numeric representation (int or double).
  bool is_numeric() const { return is_int() || is_double(); }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDoubleExact() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const std::vector<Value>& AsList() const {
    return std::get<std::vector<Value>>(data_);
  }
  const NestedObject& AsObject() const {
    return *std::get<std::shared_ptr<NestedObject>>(data_);
  }

  // Numeric widening: int or double -> double. Callers must check
  // is_numeric() first.
  double AsNumber() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDoubleExact();
  }

  // True if this runtime value is a legal instance of the declared type
  // (null is legal for every type).
  bool ConformsTo(FieldType type) const;

  // Deep equality (used by equi-joins, group-by keys and tests).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Total order within a type class: null < everything; numerics compare as
  // doubles, strings lexicographically, bools false<true. Mixed
  // (non-comparable) classes compare by class index for determinism.
  // Returns <0, 0, >0.
  int Compare(const Value& other) const;

  // Hash compatible with operator== (for join/group hash tables).
  size_t Hash() const;

  // Human-readable rendering ("42", "\"sj\"", "[1, 2]", "null").
  std::string ToString() const;

  // Approximate wire size in bytes; used for network accounting.
  size_t WireSize() const;

 private:
  int ClassRank() const { return static_cast<int>(data_.index()); }

  std::variant<std::monostate, bool, int64_t, double, std::string,
               std::vector<Value>, std::shared_ptr<NestedObject>>
      data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace scrub

#endif  // SRC_EVENT_VALUE_H_
