#include "src/event/wire.h"

#include <cstring>

#include "src/common/strings.h"

namespace scrub {
namespace {

// Value tags. Must stay dense and stable: the codec is the contract between
// host agents and ScrubCentral.
enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagString = 5,
  kTagList = 6,
  kTagObject = 7,
};

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

// Hostile-input guards: decode runs on bytes that crossed the network, so
// every length, count and nesting level is attacker-controlled until proven
// otherwise. A crafted list-of-list-of-... costs ~5 bytes per level; without
// a depth cap the recursive decoder walks off the stack long before any
// size check trips.
constexpr int kMaxValueDepth = 32;

bool GetU8(const std::string& buf, size_t* off, uint8_t* v) {
  if (*off >= buf.size()) {
    return false;
  }
  *v = static_cast<uint8_t>(buf[*off]);
  *off += 1;
  return true;
}

bool GetU32(const std::string& buf, size_t* off, uint32_t* v) {
  if (*off > buf.size() || buf.size() - *off < 4) {
    return false;
  }
  std::memcpy(v, buf.data() + *off, 4);
  *off += 4;
  return true;
}

bool GetU64(const std::string& buf, size_t* off, uint64_t* v) {
  if (*off > buf.size() || buf.size() - *off < 8) {
    return false;
  }
  std::memcpy(v, buf.data() + *off, 8);
  *off += 8;
  return true;
}

bool GetDouble(const std::string& buf, size_t* off, double* v) {
  if (*off > buf.size() || buf.size() - *off < 8) {
    return false;
  }
  std::memcpy(v, buf.data() + *off, 8);
  *off += 8;
  return true;
}

bool GetBytes(const std::string& buf, size_t* off, size_t n, std::string* v) {
  if (*off > buf.size() || buf.size() - *off < n) {
    return false;
  }
  v->assign(buf.data() + *off, n);
  *off += n;
  return true;
}

void EncodeValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back(static_cast<char>(kTagNull));
  } else if (v.is_bool()) {
    out->push_back(static_cast<char>(v.AsBool() ? kTagTrue : kTagFalse));
  } else if (v.is_int()) {
    out->push_back(static_cast<char>(kTagInt));
    PutU64(out, static_cast<uint64_t>(v.AsInt()));
  } else if (v.is_double()) {
    out->push_back(static_cast<char>(kTagDouble));
    PutDouble(out, v.AsDoubleExact());
  } else if (v.is_string()) {
    out->push_back(static_cast<char>(kTagString));
    PutU32(out, static_cast<uint32_t>(v.AsString().size()));
    out->append(v.AsString());
  } else if (v.is_list()) {
    out->push_back(static_cast<char>(kTagList));
    PutU32(out, static_cast<uint32_t>(v.AsList().size()));
    for (const Value& e : v.AsList()) {
      EncodeValue(e, out);
    }
  } else {
    out->push_back(static_cast<char>(kTagObject));
    const NestedObject& obj = v.AsObject();
    PutU32(out, static_cast<uint32_t>(obj.fields.size()));
    for (const auto& [name, value] : obj.fields) {
      PutU32(out, static_cast<uint32_t>(name.size()));
      out->append(name);
      EncodeValue(value, out);
    }
  }
}

Result<Value> DecodeValue(const std::string& buf, size_t* off, int depth) {
  if (depth > kMaxValueDepth) {
    return InvalidArgument("value nesting too deep");
  }
  uint8_t tag;
  if (!GetU8(buf, off, &tag)) {
    return InvalidArgument("truncated value tag");
  }
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagFalse:
      return Value(false);
    case kTagTrue:
      return Value(true);
    case kTagInt: {
      uint64_t v;
      if (!GetU64(buf, off, &v)) {
        return InvalidArgument("truncated int value");
      }
      return Value(static_cast<int64_t>(v));
    }
    case kTagDouble: {
      double v;
      if (!GetDouble(buf, off, &v)) {
        return InvalidArgument("truncated double value");
      }
      return Value(v);
    }
    case kTagString: {
      uint32_t n;
      std::string s;
      if (!GetU32(buf, off, &n) || !GetBytes(buf, off, n, &s)) {
        return InvalidArgument("truncated string value");
      }
      return Value(std::move(s));
    }
    case kTagList: {
      uint32_t n;
      if (!GetU32(buf, off, &n)) {
        return InvalidArgument("truncated list header");
      }
      // Never trust a length prefix with memory: each element costs at
      // least one tag byte, so a count beyond the remaining bytes is bogus.
      if (n > buf.size() - *off) {
        return InvalidArgument("list length exceeds buffer");
      }
      std::vector<Value> items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Result<Value> item = DecodeValue(buf, off, depth + 1);
        if (!item.ok()) {
          return item.status();
        }
        items.push_back(std::move(item).value());
      }
      return Value(std::move(items));
    }
    case kTagObject: {
      uint32_t n;
      if (!GetU32(buf, off, &n)) {
        return InvalidArgument("truncated object header");
      }
      if (n > buf.size() - *off) {
        return InvalidArgument("object field count exceeds buffer");
      }
      NestedObject obj;
      obj.fields.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t name_len;
        std::string name;
        if (!GetU32(buf, off, &name_len) ||
            !GetBytes(buf, off, name_len, &name)) {
          return InvalidArgument("truncated object field name");
        }
        Result<Value> item = DecodeValue(buf, off, depth + 1);
        if (!item.ok()) {
          return item.status();
        }
        obj.fields.emplace_back(std::move(name), std::move(item).value());
      }
      return Value(std::move(obj));
    }
    default:
      return InvalidArgument(StrFormat("unknown value tag %u", tag));
  }
}

}  // namespace

size_t EncodeEvent(const Event& event, std::string* out) {
  const size_t before = out->size();
  const std::string& type_name = event.schema()->type_name();
  PutU32(out, static_cast<uint32_t>(type_name.size()));
  out->append(type_name);
  PutU64(out, event.request_id());
  PutU64(out, static_cast<uint64_t>(event.timestamp()));
  for (size_t i = 0; i < event.field_count(); ++i) {
    EncodeValue(event.field(i), out);
  }
  return out->size() - before;
}

Result<Event> DecodeEvent(const SchemaRegistry& registry,
                          const std::string& buffer, size_t* offset) {
  uint32_t name_len;
  std::string type_name;
  if (!GetU32(buffer, offset, &name_len) ||
      !GetBytes(buffer, offset, name_len, &type_name)) {
    return InvalidArgument("truncated event header");
  }
  Result<SchemaPtr> schema = registry.Get(type_name);
  if (!schema.ok()) {
    return schema.status();
  }
  uint64_t request_id;
  uint64_t timestamp;
  if (!GetU64(buffer, offset, &request_id) ||
      !GetU64(buffer, offset, &timestamp)) {
    return InvalidArgument("truncated event metadata");
  }
  Event event(*schema, request_id, static_cast<TimeMicros>(timestamp));
  for (size_t i = 0; i < (*schema)->field_count(); ++i) {
    Result<Value> v = DecodeValue(buffer, offset, /*depth=*/0);
    if (!v.ok()) {
      return v.status();
    }
    event.SetField(i, std::move(v).value());
  }
  return event;
}

std::string EncodeBatch(const std::vector<Event>& events) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(events.size()));
  for (const Event& e : events) {
    EncodeEvent(e, &out);
  }
  return out;
}

Result<std::vector<Event>> DecodeBatch(const SchemaRegistry& registry,
                                       const std::string& buffer) {
  size_t offset = 0;
  uint32_t count;
  if (!GetU32(buffer, &offset, &count)) {
    return InvalidArgument("truncated batch header");
  }
  // An encoded event is at least 20 bytes (name length + metadata); cap the
  // reservation so a hostile count cannot force a huge allocation.
  if (static_cast<size_t>(count) > (buffer.size() - offset) / 20 + 1) {
    return InvalidArgument("batch count exceeds buffer");
  }
  std::vector<Event> events;
  events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Result<Event> e = DecodeEvent(registry, buffer, &offset);
    if (!e.ok()) {
      return e.status();
    }
    events.push_back(std::move(e).value());
  }
  if (offset != buffer.size()) {
    return InvalidArgument("trailing bytes after batch");
  }
  return events;
}

}  // namespace scrub
