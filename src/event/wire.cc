#include "src/event/wire.h"

#include <cstring>
#include <string_view>
#include <unordered_map>

#include "src/common/strings.h"

namespace scrub {
namespace {

// Value tags. Must stay dense and stable: the codec is the contract between
// host agents and ScrubCentral.
enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagString = 5,
  kTagList = 6,
  kTagObject = 7,
};

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

// Hostile-input guards: decode runs on bytes that crossed the network, so
// every length, count and nesting level is attacker-controlled until proven
// otherwise. A crafted list-of-list-of-... costs ~5 bytes per level; without
// a depth cap the recursive decoder walks off the stack long before any
// size check trips.
constexpr int kMaxValueDepth = 32;

bool GetU8(const std::string& buf, size_t* off, uint8_t* v) {
  if (*off >= buf.size()) {
    return false;
  }
  *v = static_cast<uint8_t>(buf[*off]);
  *off += 1;
  return true;
}

bool GetU32(const std::string& buf, size_t* off, uint32_t* v) {
  if (*off > buf.size() || buf.size() - *off < 4) {
    return false;
  }
  std::memcpy(v, buf.data() + *off, 4);
  *off += 4;
  return true;
}

bool GetU64(const std::string& buf, size_t* off, uint64_t* v) {
  if (*off > buf.size() || buf.size() - *off < 8) {
    return false;
  }
  std::memcpy(v, buf.data() + *off, 8);
  *off += 8;
  return true;
}

bool GetDouble(const std::string& buf, size_t* off, double* v) {
  if (*off > buf.size() || buf.size() - *off < 8) {
    return false;
  }
  std::memcpy(v, buf.data() + *off, 8);
  *off += 8;
  return true;
}

bool GetBytes(const std::string& buf, size_t* off, size_t n, std::string* v) {
  if (*off > buf.size() || buf.size() - *off < n) {
    return false;
  }
  v->assign(buf.data() + *off, n);
  *off += n;
  return true;
}

void EncodeValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back(static_cast<char>(kTagNull));
  } else if (v.is_bool()) {
    out->push_back(static_cast<char>(v.AsBool() ? kTagTrue : kTagFalse));
  } else if (v.is_int()) {
    out->push_back(static_cast<char>(kTagInt));
    PutU64(out, static_cast<uint64_t>(v.AsInt()));
  } else if (v.is_double()) {
    out->push_back(static_cast<char>(kTagDouble));
    PutDouble(out, v.AsDoubleExact());
  } else if (v.is_string()) {
    out->push_back(static_cast<char>(kTagString));
    PutU32(out, static_cast<uint32_t>(v.AsString().size()));
    out->append(v.AsString());
  } else if (v.is_list()) {
    out->push_back(static_cast<char>(kTagList));
    PutU32(out, static_cast<uint32_t>(v.AsList().size()));
    for (const Value& e : v.AsList()) {
      EncodeValue(e, out);
    }
  } else {
    out->push_back(static_cast<char>(kTagObject));
    const NestedObject& obj = v.AsObject();
    PutU32(out, static_cast<uint32_t>(obj.fields.size()));
    for (const auto& [name, value] : obj.fields) {
      PutU32(out, static_cast<uint32_t>(name.size()));
      out->append(name);
      EncodeValue(value, out);
    }
  }
}

// Column tags for the columnar batch format. Dense and stable, same contract
// discipline as ValueTag.
enum ColumnTag : uint8_t {
  kColNull = 0,  // all rows null (or the column was projected away)
  kColBool = 1,
  kColInt = 2,
  kColDouble = 3,
  kColString = 4,
  kColGeneric = 5,
  kColDict = 6,  // dictionary-encoded strings: dictionary + u8 codes
};

// One code byte per row caps the dictionary at 256 entries; the encoder
// stops deduplicating past this and falls back to plain strings.
constexpr size_t kMaxDictEntries = 256;

// Reads ceil(count/8) bitmap bytes. The caller still has to check padding.
bool ReadBitmap(const std::string& buf, size_t* off, size_t count,
                std::vector<uint8_t>* bits) {
  const size_t nbytes = (count + 7) / 8;
  if (*off > buf.size() || buf.size() - *off < nbytes) {
    return false;
  }
  bits->assign(buf.begin() + static_cast<ptrdiff_t>(*off),
               buf.begin() + static_cast<ptrdiff_t>(*off + nbytes));
  *off += nbytes;
  return true;
}

// Bits beyond `count` in the last bitmap byte must be zero; a mismatch means
// the sender's bitmap disagrees with its row count.
bool PaddingClear(const std::vector<uint8_t>& bits, size_t count) {
  if (count % 8 == 0 || bits.empty()) {
    return true;
  }
  return (bits.back() >> (count % 8)) == 0;
}

Result<Value> DecodeValue(const std::string& buf, size_t* off, int depth) {
  if (depth > kMaxValueDepth) {
    return InvalidArgument("value nesting too deep");
  }
  uint8_t tag;
  if (!GetU8(buf, off, &tag)) {
    return InvalidArgument("truncated value tag");
  }
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagFalse:
      return Value(false);
    case kTagTrue:
      return Value(true);
    case kTagInt: {
      uint64_t v;
      if (!GetU64(buf, off, &v)) {
        return InvalidArgument("truncated int value");
      }
      return Value(static_cast<int64_t>(v));
    }
    case kTagDouble: {
      double v;
      if (!GetDouble(buf, off, &v)) {
        return InvalidArgument("truncated double value");
      }
      return Value(v);
    }
    case kTagString: {
      uint32_t n;
      std::string s;
      if (!GetU32(buf, off, &n) || !GetBytes(buf, off, n, &s)) {
        return InvalidArgument("truncated string value");
      }
      return Value(std::move(s));
    }
    case kTagList: {
      uint32_t n;
      if (!GetU32(buf, off, &n)) {
        return InvalidArgument("truncated list header");
      }
      // Never trust a length prefix with memory: each element costs at
      // least one tag byte, so a count beyond the remaining bytes is bogus.
      if (n > buf.size() - *off) {
        return InvalidArgument("list length exceeds buffer");
      }
      std::vector<Value> items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Result<Value> item = DecodeValue(buf, off, depth + 1);
        if (!item.ok()) {
          return item.status();
        }
        items.push_back(std::move(item).value());
      }
      return Value(std::move(items));
    }
    case kTagObject: {
      uint32_t n;
      if (!GetU32(buf, off, &n)) {
        return InvalidArgument("truncated object header");
      }
      if (n > buf.size() - *off) {
        return InvalidArgument("object field count exceeds buffer");
      }
      NestedObject obj;
      obj.fields.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t name_len;
        std::string name;
        if (!GetU32(buf, off, &name_len) ||
            !GetBytes(buf, off, name_len, &name)) {
          return InvalidArgument("truncated object field name");
        }
        Result<Value> item = DecodeValue(buf, off, depth + 1);
        if (!item.ok()) {
          return item.status();
        }
        obj.fields.emplace_back(std::move(name), std::move(item).value());
      }
      return Value(std::move(obj));
    }
    default:
      return InvalidArgument(StrFormat("unknown value tag %u", tag));
  }
}

}  // namespace

size_t EncodeEvent(const Event& event, std::string* out) {
  const size_t before = out->size();
  const std::string& type_name = event.schema()->type_name();
  PutU32(out, static_cast<uint32_t>(type_name.size()));
  out->append(type_name);
  PutU64(out, event.request_id());
  PutU64(out, static_cast<uint64_t>(event.timestamp()));
  for (size_t i = 0; i < event.field_count(); ++i) {
    EncodeValue(event.field(i), out);
  }
  return out->size() - before;
}

Result<Event> DecodeEvent(const SchemaRegistry& registry,
                          const std::string& buffer, size_t* offset) {
  uint32_t name_len;
  std::string type_name;
  if (!GetU32(buffer, offset, &name_len) ||
      !GetBytes(buffer, offset, name_len, &type_name)) {
    return InvalidArgument("truncated event header");
  }
  Result<SchemaPtr> schema = registry.Get(type_name);
  if (!schema.ok()) {
    return schema.status();
  }
  uint64_t request_id;
  uint64_t timestamp;
  if (!GetU64(buffer, offset, &request_id) ||
      !GetU64(buffer, offset, &timestamp)) {
    return InvalidArgument("truncated event metadata");
  }
  Event event(*schema, request_id, static_cast<TimeMicros>(timestamp));
  for (size_t i = 0; i < (*schema)->field_count(); ++i) {
    Result<Value> v = DecodeValue(buffer, offset, /*depth=*/0);
    if (!v.ok()) {
      return v.status();
    }
    event.SetField(i, std::move(v).value());
  }
  return event;
}

std::string EncodeBatch(const std::vector<Event>& events) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(events.size()));
  for (const Event& e : events) {
    EncodeEvent(e, &out);
  }
  return out;
}

Result<std::vector<Event>> DecodeBatch(const SchemaRegistry& registry,
                                       const std::string& buffer) {
  size_t offset = 0;
  uint32_t count;
  if (!GetU32(buffer, &offset, &count)) {
    return InvalidArgument("truncated batch header");
  }
  // An encoded event is at least 20 bytes (name length + metadata); cap the
  // reservation so a hostile count cannot force a huge allocation.
  if (static_cast<size_t>(count) > (buffer.size() - offset) / 20 + 1) {
    return InvalidArgument("batch count exceeds buffer");
  }
  std::vector<Event> events;
  events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Result<Event> e = DecodeEvent(registry, buffer, &offset);
    if (!e.ok()) {
      return e.status();
    }
    events.push_back(std::move(e).value());
  }
  if (offset != buffer.size()) {
    return InvalidArgument("trailing bytes after batch");
  }
  return events;
}

size_t EncodeColumnBatch(const ColumnBatch& batch, const uint32_t* selection,
                         size_t selected, const std::vector<bool>* keep_field,
                         std::string* out, std::vector<int>* encodings) {
  const size_t before = out->size();
  const size_t rows = selection != nullptr ? selected : batch.rows();
  if (encodings != nullptr) {
    encodings->assign(batch.column_count(), 0);
  }
  auto row_at = [&](size_t i) -> size_t {
    return selection != nullptr ? selection[i] : i;
  };
  const std::string& type_name = batch.schema()->type_name();
  PutU32(out, static_cast<uint32_t>(type_name.size()));
  out->append(type_name);
  PutU32(out, static_cast<uint32_t>(rows));
  for (size_t i = 0; i < rows; ++i) {
    PutU64(out, batch.request_id(row_at(i)));
  }
  for (size_t i = 0; i < rows; ++i) {
    PutU64(out, static_cast<uint64_t>(batch.timestamp(row_at(i))));
  }
  for (size_t f = 0; f < batch.column_count(); ++f) {
    const bool dropped = keep_field != nullptr && f < keep_field->size() &&
                         !(*keep_field)[f];
    const ColumnBatch::Column& col = batch.column(f);
    bool all_null = true;
    if (!dropped) {
      for (size_t i = 0; i < rows && all_null; ++i) {
        all_null = BitmapGet(col.nulls, row_at(i));
      }
    }
    if (dropped || all_null) {
      out->push_back(static_cast<char>(kColNull));
      if (encodings != nullptr) {
        (*encodings)[f] = -1;
      }
      continue;
    }
    std::vector<uint8_t> bits((rows + 7) / 8, 0);
    size_t non_null = 0;
    for (size_t i = 0; i < rows; ++i) {
      if (BitmapGet(col.nulls, row_at(i))) {
        bits[i / 8] = static_cast<uint8_t>(bits[i / 8] | (1U << (i % 8)));
      } else {
        ++non_null;
      }
    }
    switch (col.rep) {
      case ColumnBatch::Rep::kBool: {
        out->push_back(static_cast<char>(kColBool));
        out->append(reinterpret_cast<const char*>(bits.data()), bits.size());
        std::vector<uint8_t> packed((non_null + 7) / 8, 0);
        size_t k = 0;
        for (size_t i = 0; i < rows; ++i) {
          const size_t r = row_at(i);
          if (BitmapGet(col.nulls, r)) {
            continue;
          }
          if (col.bools[r] != 0) {
            packed[k / 8] = static_cast<uint8_t>(packed[k / 8] |
                                                 (1U << (k % 8)));
          }
          ++k;
        }
        out->append(reinterpret_cast<const char*>(packed.data()),
                    packed.size());
        break;
      }
      case ColumnBatch::Rep::kInt: {
        out->push_back(static_cast<char>(kColInt));
        out->append(reinterpret_cast<const char*>(bits.data()), bits.size());
        for (size_t i = 0; i < rows; ++i) {
          const size_t r = row_at(i);
          if (!BitmapGet(col.nulls, r)) {
            PutU64(out, static_cast<uint64_t>(col.ints[r]));
          }
        }
        break;
      }
      case ColumnBatch::Rep::kDouble: {
        out->push_back(static_cast<char>(kColDouble));
        out->append(reinterpret_cast<const char*>(bits.data()), bits.size());
        for (size_t i = 0; i < rows; ++i) {
          const size_t r = row_at(i);
          if (!BitmapGet(col.nulls, r)) {
            PutDouble(out, col.doubles[r]);
          }
        }
        break;
      }
      case ColumnBatch::Rep::kString:
      case ColumnBatch::Rep::kDict: {
        // Byte span of row r's string without materializing a Value (kDict
        // rows indirect through their code).
        auto slice = [&col](size_t r) -> std::string_view {
          const size_t idx = col.rep == ColumnBatch::Rep::kDict
                                 ? static_cast<size_t>(col.ints[r])
                                 : r;
          return std::string_view(col.arena)
              .substr(col.offsets[idx], col.offsets[idx + 1] - col.offsets[idx]);
        };
        // Dictionary pass: dedupe the selected non-null strings in
        // first-appearance order. Dict wins only when the dictionary plus
        // one code byte per value is strictly smaller than the plain
        // length-prefixed bytes — so pathological (high-cardinality)
        // columns cost one wasted scan, never wire bytes.
        std::vector<std::string_view> entries;
        std::unordered_map<std::string_view, uint32_t> index;
        std::vector<uint8_t> codes;
        codes.reserve(non_null);
        size_t plain_bytes = 0;
        size_t entry_bytes = 0;
        bool eligible =
            batch.schema()->field(f).type == FieldType::kString;
        for (size_t i = 0; i < rows && eligible; ++i) {
          const size_t r = row_at(i);
          if (BitmapGet(col.nulls, r)) {
            continue;
          }
          const std::string_view sv = slice(r);
          plain_bytes += 4 + sv.size();
          auto it = index.find(sv);
          if (it == index.end()) {
            if (entries.size() >= kMaxDictEntries) {
              eligible = false;
              break;
            }
            it = index.emplace(sv, static_cast<uint32_t>(entries.size()))
                     .first;
            entries.push_back(sv);
            entry_bytes += 4 + sv.size();
          }
          codes.push_back(static_cast<uint8_t>(it->second));
        }
        const size_t dict_bytes = 4 + entry_bytes + codes.size();
        if (eligible && !entries.empty() && dict_bytes < plain_bytes) {
          out->push_back(static_cast<char>(kColDict));
          out->append(reinterpret_cast<const char*>(bits.data()),
                      bits.size());
          PutU32(out, static_cast<uint32_t>(entries.size()));
          for (const std::string_view sv : entries) {
            PutU32(out, static_cast<uint32_t>(sv.size()));
            out->append(sv.data(), sv.size());
          }
          out->append(reinterpret_cast<const char*>(codes.data()),
                      codes.size());
          if (encodings != nullptr) {
            (*encodings)[f] = static_cast<int>(entries.size());
          }
          break;
        }
        out->push_back(static_cast<char>(kColString));
        out->append(reinterpret_cast<const char*>(bits.data()), bits.size());
        for (size_t i = 0; i < rows; ++i) {
          const size_t r = row_at(i);
          if (!BitmapGet(col.nulls, r)) {
            const std::string_view sv = slice(r);
            PutU32(out, static_cast<uint32_t>(sv.size()));
            out->append(sv.data(), sv.size());
          }
        }
        break;
      }
      case ColumnBatch::Rep::kGeneric: {
        out->push_back(static_cast<char>(kColGeneric));
        out->append(reinterpret_cast<const char*>(bits.data()), bits.size());
        for (size_t i = 0; i < rows; ++i) {
          const size_t r = row_at(i);
          if (!BitmapGet(col.nulls, r)) {
            EncodeValue(col.generic[r], out);
          }
        }
        break;
      }
    }
  }
  return out->size() - before;
}

Result<ColumnBatch> DecodeColumnBatch(const SchemaRegistry& registry,
                                      const std::string& buffer) {
  size_t off = 0;
  uint32_t name_len;
  std::string type_name;
  if (!GetU32(buffer, &off, &name_len) ||
      !GetBytes(buffer, &off, name_len, &type_name)) {
    return InvalidArgument("truncated column batch header");
  }
  Result<SchemaPtr> schema = registry.Get(type_name);
  if (!schema.ok()) {
    return schema.status();
  }
  uint32_t rows;
  if (!GetU32(buffer, &off, &rows)) {
    return InvalidArgument("truncated column batch row count");
  }
  // Request id + timestamp alone cost 16 bytes per row; a row count the
  // remaining bytes cannot possibly hold is bogus.
  if (static_cast<size_t>(rows) > (buffer.size() - off) / 16 + 1) {
    return InvalidArgument("column batch row count exceeds buffer");
  }
  std::vector<uint64_t> request_ids(rows);
  std::vector<int64_t> timestamps(rows);
  for (uint32_t r = 0; r < rows; ++r) {
    if (!GetU64(buffer, &off, &request_ids[r])) {
      return InvalidArgument("truncated request id column");
    }
  }
  for (uint32_t r = 0; r < rows; ++r) {
    uint64_t ts;
    if (!GetU64(buffer, &off, &ts)) {
      return InvalidArgument("truncated timestamp column");
    }
    timestamps[r] = static_cast<int64_t>(ts);
  }
  ColumnBatch batch(*schema);
  for (size_t f = 0; f < (*schema)->field_count(); ++f) {
    uint8_t tag;
    if (!GetU8(buffer, &off, &tag)) {
      return InvalidArgument("truncated column tag");
    }
    if (tag == kColNull) {
      batch.FillAllNull(f, rows);
      continue;
    }
    std::vector<uint8_t> bits;
    if (!ReadBitmap(buffer, &off, rows, &bits)) {
      return InvalidArgument("truncated null bitmap");
    }
    if (!PaddingClear(bits, rows)) {
      return InvalidArgument("null bitmap does not match row count");
    }
    size_t non_null = 0;
    for (uint32_t r = 0; r < rows; ++r) {
      if (!BitmapGet(bits, r)) {
        ++non_null;
      }
    }
    ColumnBatch::Column* col = batch.MutableColumn(f);
    col->nulls = bits;
    switch (tag) {
      case kColBool: {
        col->rep = ColumnBatch::Rep::kBool;
        std::vector<uint8_t> packed;
        if (!ReadBitmap(buffer, &off, non_null, &packed)) {
          return InvalidArgument("truncated bool column");
        }
        if (!PaddingClear(packed, non_null)) {
          return InvalidArgument("bool column padding not zero");
        }
        col->bools.assign(rows, 0);
        size_t k = 0;
        for (uint32_t r = 0; r < rows; ++r) {
          if (!BitmapGet(bits, r)) {
            col->bools[r] = BitmapGet(packed, k) ? 1 : 0;
            ++k;
          }
        }
        break;
      }
      case kColInt: {
        col->rep = ColumnBatch::Rep::kInt;
        col->ints.assign(rows, 0);
        for (uint32_t r = 0; r < rows; ++r) {
          if (BitmapGet(bits, r)) {
            continue;
          }
          uint64_t v;
          if (!GetU64(buffer, &off, &v)) {
            return InvalidArgument("truncated int column");
          }
          col->ints[r] = static_cast<int64_t>(v);
        }
        break;
      }
      case kColDouble: {
        col->rep = ColumnBatch::Rep::kDouble;
        col->doubles.assign(rows, 0.0);
        for (uint32_t r = 0; r < rows; ++r) {
          if (BitmapGet(bits, r)) {
            continue;
          }
          double v;
          if (!GetDouble(buffer, &off, &v)) {
            return InvalidArgument("truncated double column");
          }
          col->doubles[r] = v;
        }
        break;
      }
      case kColString: {
        col->rep = ColumnBatch::Rep::kString;
        col->offsets.assign(1, 0);
        col->arena.clear();
        for (uint32_t r = 0; r < rows; ++r) {
          if (!BitmapGet(bits, r)) {
            uint32_t n;
            if (!GetU32(buffer, &off, &n) || buffer.size() - off < n) {
              return InvalidArgument("truncated string column");
            }
            col->arena.append(buffer, off, n);
            off += n;
          }
          col->offsets.push_back(static_cast<uint32_t>(col->arena.size()));
        }
        break;
      }
      case kColGeneric: {
        col->rep = ColumnBatch::Rep::kGeneric;
        col->generic.clear();
        col->generic.reserve(rows);
        for (uint32_t r = 0; r < rows; ++r) {
          if (BitmapGet(bits, r)) {
            col->generic.emplace_back();
            continue;
          }
          Result<Value> v = DecodeValue(buffer, &off, /*depth=*/0);
          if (!v.ok()) {
            return v.status();
          }
          col->generic.push_back(std::move(v).value());
        }
        break;
      }
      case kColDict: {
        // Dictionaries are a string-column encoding only; a dict tag on any
        // other schema type is a hostile or corrupted payload.
        if ((*schema)->field(f).type != FieldType::kString) {
          return InvalidArgument("dictionary column on non-string field");
        }
        uint32_t dict_count;
        if (!GetU32(buffer, &off, &dict_count)) {
          return InvalidArgument("truncated dictionary header");
        }
        if (dict_count == 0 || dict_count > kMaxDictEntries) {
          return InvalidArgument("dictionary count out of range");
        }
        // Each entry costs at least its 4-byte length prefix.
        if (static_cast<size_t>(dict_count) > (buffer.size() - off) / 4 + 1) {
          return InvalidArgument("dictionary count exceeds buffer");
        }
        col->rep = ColumnBatch::Rep::kDict;
        col->offsets.assign(1, 0);
        col->arena.clear();
        for (uint32_t d = 0; d < dict_count; ++d) {
          uint32_t n;
          if (!GetU32(buffer, &off, &n) || buffer.size() - off < n) {
            return InvalidArgument("truncated dictionary entry");
          }
          col->arena.append(buffer, off, n);
          off += n;
          col->offsets.push_back(static_cast<uint32_t>(col->arena.size()));
        }
        col->ints.assign(rows, 0);
        for (uint32_t r = 0; r < rows; ++r) {
          if (BitmapGet(bits, r)) {
            continue;
          }
          uint8_t code;
          if (!GetU8(buffer, &off, &code)) {
            return InvalidArgument("truncated dictionary codes");
          }
          if (code >= dict_count) {
            return InvalidArgument("dictionary code out of range");
          }
          col->ints[r] = code;
        }
        break;
      }
      default:
        return InvalidArgument(StrFormat("unknown column tag %u", tag));
    }
  }
  if (off != buffer.size()) {
    return InvalidArgument("trailing bytes after column batch");
  }
  batch.SetRowMeta(std::move(request_ids), std::move(timestamps));
  return batch;
}

size_t EncodeColumnJoinBatch(const std::vector<ColumnJoinSection>& sections,
                             const std::vector<uint8_t>& order,
                             std::string* out,
                             std::vector<std::vector<int>>* encodings) {
  const size_t before = out->size();
  PutU32(out, static_cast<uint32_t>(sections.size()));
  if (encodings != nullptr) {
    encodings->assign(sections.size(), {});
  }
  for (size_t s = 0; s < sections.size(); ++s) {
    const ColumnJoinSection& sec = sections[s];
    const size_t len_pos = out->size();
    PutU32(out, 0);  // patched below once the section length is known
    EncodeColumnBatch(*sec.batch, sec.selection, sec.selected, sec.keep_field,
                      out, encodings != nullptr ? &(*encodings)[s] : nullptr);
    const uint32_t len = static_cast<uint32_t>(out->size() - len_pos - 4);
    std::memcpy(&(*out)[len_pos], &len, 4);
  }
  PutU32(out, static_cast<uint32_t>(order.size()));
  out->append(reinterpret_cast<const char*>(order.data()), order.size());
  return out->size() - before;
}

Result<ColumnJoinBatch> DecodeColumnJoinBatch(const SchemaRegistry& registry,
                                              const std::string& buffer) {
  size_t off = 0;
  uint32_t section_count;
  if (!GetU32(buffer, &off, &section_count)) {
    return InvalidArgument("truncated join batch header");
  }
  if (section_count == 0 || section_count > kMaxColumnJoinSections) {
    return InvalidArgument("join batch section count out of range");
  }
  ColumnJoinBatch out;
  out.sections.reserve(section_count);
  size_t total_rows = 0;
  for (uint32_t s = 0; s < section_count; ++s) {
    uint32_t len;
    if (!GetU32(buffer, &off, &len) || buffer.size() - off < len) {
      return InvalidArgument("truncated join batch section");
    }
    // Each section is a complete columnar payload; decoding the exact
    // subrange inherits the full hostile-input discipline, including its
    // own trailing-bytes check against the declared section length.
    Result<ColumnBatch> sec =
        DecodeColumnBatch(registry, buffer.substr(off, len));
    if (!sec.ok()) {
      return sec.status();
    }
    off += len;
    total_rows += sec->rows();
    out.sections.push_back(std::move(sec).value());
  }
  uint32_t order_count;
  if (!GetU32(buffer, &off, &order_count)) {
    return InvalidArgument("truncated join batch order header");
  }
  if (order_count != total_rows || buffer.size() - off < order_count) {
    return InvalidArgument("join batch order does not match section rows");
  }
  std::vector<size_t> seen(section_count, 0);
  out.order.resize(order_count);
  for (uint32_t i = 0; i < order_count; ++i) {
    const uint8_t s = static_cast<uint8_t>(buffer[off + i]);
    if (s >= section_count) {
      return InvalidArgument("join batch order index out of range");
    }
    ++seen[s];
    out.order[i] = s;
  }
  off += order_count;
  for (uint32_t s = 0; s < section_count; ++s) {
    if (seen[s] != out.sections[s].rows()) {
      return InvalidArgument("join batch order does not match section rows");
    }
  }
  if (off != buffer.size()) {
    return InvalidArgument("trailing bytes after join batch");
  }
  return out;
}

std::string EncodePreAggBatch(const std::vector<PreAggSlot>& slots) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(slots.size()));
  for (const PreAggSlot& slot : slots) {
    PutU64(&out, static_cast<uint64_t>(slot.window_start));
    PutU64(&out, slot.events);
    PutU32(&out, static_cast<uint32_t>(slot.groups.size()));
    for (const PreAggGroup& group : slot.groups) {
      PutU32(&out, static_cast<uint32_t>(group.keys.size()));
      for (const Value& key : group.keys) {
        EncodeValue(key, &out);
      }
      PutU32(&out, static_cast<uint32_t>(group.cells.size()));
      for (const PreAggCell& cell : group.cells) {
        PutU64(&out, cell.count);
        PutDouble(&out, cell.sum);
      }
    }
  }
  return out;
}

Result<std::vector<PreAggSlot>> DecodePreAggBatch(const std::string& buffer) {
  size_t off = 0;
  uint32_t slot_count = 0;
  if (!GetU32(buffer, &off, &slot_count)) {
    return InvalidArgument("truncated preagg batch: slot count");
  }
  // Each slot needs at least 20 bytes; cap against what the buffer could
  // possibly hold so a hostile count cannot force a huge reserve.
  if (static_cast<size_t>(slot_count) > (buffer.size() - off) / 20 + 1) {
    return InvalidArgument("preagg slot count exceeds buffer");
  }
  std::vector<PreAggSlot> slots;
  slots.reserve(slot_count);
  for (uint32_t s = 0; s < slot_count; ++s) {
    PreAggSlot slot;
    uint64_t start = 0;
    uint32_t group_count = 0;
    if (!GetU64(buffer, &off, &start) || !GetU64(buffer, &off, &slot.events) ||
        !GetU32(buffer, &off, &group_count)) {
      return InvalidArgument("truncated preagg slot header");
    }
    slot.window_start = static_cast<int64_t>(start);
    if (static_cast<size_t>(group_count) > (buffer.size() - off) / 8 + 1) {
      return InvalidArgument("preagg group count exceeds buffer");
    }
    slot.groups.reserve(group_count);
    for (uint32_t g = 0; g < group_count; ++g) {
      PreAggGroup group;
      uint32_t key_count = 0;
      if (!GetU32(buffer, &off, &key_count)) {
        return InvalidArgument("truncated preagg group: key count");
      }
      if (static_cast<size_t>(key_count) > (buffer.size() - off) + 1) {
        return InvalidArgument("preagg key count exceeds buffer");
      }
      group.keys.reserve(key_count);
      for (uint32_t k = 0; k < key_count; ++k) {
        Result<Value> key = DecodeValue(buffer, &off, /*depth=*/0);
        if (!key.ok()) {
          return key.status();
        }
        group.keys.push_back(std::move(key).value());
      }
      uint32_t cell_count = 0;
      if (!GetU32(buffer, &off, &cell_count)) {
        return InvalidArgument("truncated preagg group: cell count");
      }
      if (static_cast<size_t>(cell_count) > (buffer.size() - off) / 16 + 1) {
        return InvalidArgument("preagg cell count exceeds buffer");
      }
      group.cells.reserve(cell_count);
      for (uint32_t c = 0; c < cell_count; ++c) {
        PreAggCell cell;
        if (!GetU64(buffer, &off, &cell.count) ||
            !GetDouble(buffer, &off, &cell.sum)) {
          return InvalidArgument("truncated preagg cell");
        }
        group.cells.push_back(cell);
      }
      slot.groups.push_back(std::move(group));
    }
    slots.push_back(std::move(slot));
  }
  if (off != buffer.size()) {
    return InvalidArgument("trailing bytes after preagg batch");
  }
  return slots;
}

}  // namespace scrub
