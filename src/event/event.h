// Events: the unit of data flowing from application hosts to ScrubCentral.
//
// An Event holds the two bounded system fields (request id + timestamp — the
// minimum metadata needed to support equi-joins and windowing, Section 3.1)
// and the user fields in schema order. Fields a query did not project are
// null on the wire, so projection genuinely shrinks what a host ships.

#ifndef SRC_EVENT_EVENT_H_
#define SRC_EVENT_EVENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/event/schema.h"
#include "src/event/value.h"

namespace scrub {

using RequestId = uint64_t;

class Event {
 public:
  Event() = default;
  Event(SchemaPtr schema, RequestId request_id, TimeMicros timestamp)
      : schema_(std::move(schema)),
        request_id_(request_id),
        timestamp_(timestamp),
        fields_(schema_ ? schema_->field_count() : 0) {}

  const SchemaPtr& schema() const { return schema_; }
  const std::string& type_name() const { return schema_->type_name(); }
  RequestId request_id() const { return request_id_; }
  TimeMicros timestamp() const { return timestamp_; }

  // Set by positional index (fast path used by the instrumented application).
  void SetField(size_t index, Value value) {
    fields_[index] = std::move(value);
  }
  // Set by name; kNotFound if the schema lacks the field, kInvalidArgument on
  // a type mismatch.
  Status SetFieldByName(std::string_view name, Value value);

  const Value& field(size_t index) const { return fields_[index]; }
  size_t field_count() const { return fields_.size(); }

  // Moves a field's value out (projection fast path for events the caller
  // owns), leaving null behind.
  Value TakeField(size_t index) {
    Value v = std::move(fields_[index]);
    fields_[index] = Value();
    return v;
  }

  // Resolves user fields AND the system fields __request_id / __timestamp.
  // Returns Value::Null() for unknown names (queries are validated upstream,
  // so unknown here means "not projected").
  Value GetField(std::string_view name) const;

  // Verifies every set field conforms to its declared type.
  Status Validate() const;

  // Wire size in bytes: header + per-field payloads. Null (unprojected)
  // fields cost one tag byte.
  size_t WireSize() const;

  std::string ToString() const;

 private:
  SchemaPtr schema_;
  RequestId request_id_ = 0;
  TimeMicros timestamp_ = 0;
  std::vector<Value> fields_;
};

// Convenience builder used by the synthetic application:
//   Event e = EventBuilder(schema, rid, now)
//                 .Set("exchange_id", Value(int64_t{7}))
//                 .Set("bid_price", Value(1.25))
//                 .Build();
// Unknown names or type mismatches are recorded and surface from Build().
class EventBuilder {
 public:
  EventBuilder(SchemaPtr schema, RequestId request_id, TimeMicros timestamp)
      : event_(std::move(schema), request_id, timestamp) {}

  EventBuilder& Set(std::string_view name, Value value) {
    if (status_.ok()) {
      status_ = event_.SetFieldByName(name, std::move(value));
    }
    return *this;
  }

  // Consumes the builder's event; call once, as the last step of the chain.
  Result<Event> Build() {
    if (!status_.ok()) {
      return status_;
    }
    return std::move(event_);
  }

 private:
  Event event_;
  Status status_;
};

}  // namespace scrub

#endif  // SRC_EVENT_EVENT_H_
