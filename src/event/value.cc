#include "src/event/value.h"

#include <cmath>
#include <functional>

#include "src/common/strings.h"

namespace scrub {

const char* FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kBool:
      return "bool";
    case FieldType::kInt:
      return "int";
    case FieldType::kLong:
      return "long";
    case FieldType::kFloat:
      return "float";
    case FieldType::kDouble:
      return "double";
    case FieldType::kDateTime:
      return "datetime";
    case FieldType::kString:
      return "string";
    case FieldType::kBoolList:
      return "bool_list";
    case FieldType::kIntList:
      return "int_list";
    case FieldType::kLongList:
      return "long_list";
    case FieldType::kFloatList:
      return "float_list";
    case FieldType::kDoubleList:
      return "double_list";
    case FieldType::kStringList:
      return "string_list";
    case FieldType::kObject:
      return "object";
  }
  return "unknown";
}

Result<FieldType> FieldTypeFromName(std::string_view name) {
  static const std::pair<const char*, FieldType> kNames[] = {
      {"bool", FieldType::kBool},
      {"int", FieldType::kInt},
      {"long", FieldType::kLong},
      {"float", FieldType::kFloat},
      {"double", FieldType::kDouble},
      {"datetime", FieldType::kDateTime},
      {"string", FieldType::kString},
      {"bool_list", FieldType::kBoolList},
      {"int_list", FieldType::kIntList},
      {"long_list", FieldType::kLongList},
      {"float_list", FieldType::kFloatList},
      {"double_list", FieldType::kDoubleList},
      {"string_list", FieldType::kStringList},
      {"object", FieldType::kObject},
  };
  for (const auto& [n, t] : kNames) {
    if (EqualsIgnoreCase(name, n)) {
      return t;
    }
  }
  return NotFound(StrFormat("unknown field type '%.*s'",
                            static_cast<int>(name.size()), name.data()));
}

bool IsListType(FieldType type) {
  switch (type) {
    case FieldType::kBoolList:
    case FieldType::kIntList:
    case FieldType::kLongList:
    case FieldType::kFloatList:
    case FieldType::kDoubleList:
    case FieldType::kStringList:
      return true;
    default:
      return false;
  }
}

FieldType ListElementType(FieldType type) {
  switch (type) {
    case FieldType::kBoolList:
      return FieldType::kBool;
    case FieldType::kIntList:
      return FieldType::kInt;
    case FieldType::kLongList:
      return FieldType::kLong;
    case FieldType::kFloatList:
      return FieldType::kFloat;
    case FieldType::kDoubleList:
      return FieldType::kDouble;
    case FieldType::kStringList:
      return FieldType::kString;
    default:
      return type;
  }
}

bool IsOrderedType(FieldType type) {
  switch (type) {
    case FieldType::kInt:
    case FieldType::kLong:
    case FieldType::kFloat:
    case FieldType::kDouble:
    case FieldType::kDateTime:
    case FieldType::kString:
      return true;
    default:
      return false;
  }
}

bool IsNumericType(FieldType type) {
  switch (type) {
    case FieldType::kInt:
    case FieldType::kLong:
    case FieldType::kFloat:
    case FieldType::kDouble:
    case FieldType::kDateTime:
      return true;
    default:
      return false;
  }
}

const Value* NestedObject::Find(std::string_view name) const {
  for (const auto& [field_name, value] : fields) {
    if (field_name == name) {
      return &value;
    }
  }
  return nullptr;
}

bool NestedObject::operator==(const NestedObject& other) const {
  return fields == other.fields;
}

bool Value::ConformsTo(FieldType type) const {
  if (is_null()) {
    return true;
  }
  switch (type) {
    case FieldType::kBool:
      return is_bool();
    case FieldType::kInt:
    case FieldType::kLong:
    case FieldType::kDateTime:
      return is_int();
    case FieldType::kFloat:
    case FieldType::kDouble:
      return is_double() || is_int();
    case FieldType::kString:
      return is_string();
    case FieldType::kObject:
      return is_object();
    default:
      break;
  }
  if (IsListType(type)) {
    if (!is_list()) {
      return false;
    }
    const FieldType elem = ListElementType(type);
    for (const Value& v : AsList()) {
      if (!v.ConformsTo(elem)) {
        return false;
      }
    }
    return true;
  }
  return false;
}

bool Value::operator==(const Value& other) const {
  // Numeric cross-class equality (int 2 == double 2.0) keeps join keys sane
  // when one side logs a long and the other a double.
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      return AsInt() == other.AsInt();
    }
    return AsNumber() == other.AsNumber();
  }
  if (data_.index() != other.data_.index()) {
    return false;
  }
  if (is_object()) {
    return AsObject() == other.AsObject();
  }
  return data_ == other.data_;
}

int Value::Compare(const Value& other) const {
  const bool numeric = is_numeric() && other.is_numeric();
  if (!numeric && ClassRank() != other.ClassRank()) {
    return ClassRank() < other.ClassRank() ? -1 : 1;
  }
  if (is_null()) {
    return 0;
  }
  if (numeric) {
    if (is_int() && other.is_int()) {
      const int64_t a = AsInt();
      const int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsNumber();
    const double b = other.AsNumber();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_bool()) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  if (is_string()) {
    return AsString().compare(other.AsString());
  }
  if (is_list()) {
    const auto& a = AsList();
    const auto& b = other.AsList();
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = a[i].Compare(b[i]);
      if (c != 0) {
        return c;
      }
    }
    return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
  }
  // Objects: compare rendered form (rare path; objects are not group keys in
  // practice, but determinism matters for tests).
  return ToString().compare(other.ToString());
}

namespace {

size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t Value::Hash() const {
  if (is_null()) {
    return 0x5c3u;
  }
  if (is_bool()) {
    return AsBool() ? 0x9e37u : 0x7f4au;
  }
  if (is_numeric()) {
    // ints and whole doubles must hash identically (they compare equal).
    const double d = AsNumber();
    const int64_t as_int = static_cast<int64_t>(d);
    if (is_int() ||
        (static_cast<double>(as_int) == d && std::abs(d) < 9.0e18)) {
      return std::hash<int64_t>{}(is_int() ? AsInt() : as_int);
    }
    return std::hash<double>{}(d);
  }
  if (is_string()) {
    return std::hash<std::string>{}(AsString());
  }
  if (is_list()) {
    size_t seed = 0xa5a5;
    for (const Value& v : AsList()) {
      seed = HashCombine(seed, v.Hash());
    }
    return seed;
  }
  size_t seed = 0xc3c3;
  for (const auto& [name, value] : AsObject().fields) {
    seed = HashCombine(seed, std::hash<std::string>{}(name));
    seed = HashCombine(seed, value.Hash());
  }
  return seed;
}

std::string Value::ToString() const {
  if (is_null()) {
    return "null";
  }
  if (is_bool()) {
    return AsBool() ? "true" : "false";
  }
  if (is_int()) {
    return std::to_string(AsInt());
  }
  if (is_double()) {
    return StrFormat("%g", AsDoubleExact());
  }
  if (is_string()) {
    return "\"" + AsString() + "\"";
  }
  if (is_list()) {
    std::string out = "[";
    const auto& list = AsList();
    for (size_t i = 0; i < list.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += list[i].ToString();
    }
    out += "]";
    return out;
  }
  std::string out = "{";
  const auto& obj = AsObject();
  for (size_t i = 0; i < obj.fields.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += obj.fields[i].first + ": " + obj.fields[i].second.ToString();
  }
  out += "}";
  return out;
}

size_t Value::WireSize() const {
  if (is_null()) {
    return 1;
  }
  if (is_bool()) {
    return 1;
  }
  if (is_int()) {
    return 1 + 8;
  }
  if (is_double()) {
    return 1 + 8;
  }
  if (is_string()) {
    return 1 + 4 + AsString().size();
  }
  if (is_list()) {
    size_t n = 1 + 4;
    for (const Value& v : AsList()) {
      n += v.WireSize();
    }
    return n;
  }
  size_t n = 1 + 4;
  for (const auto& [name, value] : AsObject().fields) {
    n += 4 + name.size() + value.WireSize();
  }
  return n;
}

}  // namespace scrub
