// Arena-backed columnar event batches.
//
// The row-oriented hot path materializes an Event (schema pointer + a
// heap-allocated vector<Value>) for every event between the agent's staging
// buffer and the central accumulator update. A ColumnBatch stores the same
// rows column-major instead: one typed vector per schema field (plus the two
// system columns, request id and timestamp), a null bitmap per column, and a
// shared string arena — so a thousand staged events cost a handful of
// contiguous allocations instead of thousands of scattered ones, and the
// filter/fold loops scan flat memory. The event-store literature the repo
// tracks (BaBar Event Store, LHCb Event Index) converged on exactly this
// layout for scan-heavy event processing.
//
// Representation invariants (every mutation path upholds them):
//  * every column holds exactly rows() entries — null rows occupy a
//    placeholder slot in the typed storage so row indexing stays O(1);
//  * the null bitmap is authoritative: a set bit means ValueAt() returns
//    null regardless of the placeholder;
//  * string columns keep rows()+1 offsets into the arena (null / empty rows
//    contribute a zero-length span);
//  * a value that does not match the column's physical representation
//    migrates the whole column to the generic (boxed Value) representation,
//    so hostile or schema-drifted inputs degrade to row-equivalent behavior
//    instead of being rejected.

#ifndef SRC_EVENT_COLUMN_BATCH_H_
#define SRC_EVENT_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/event/event.h"
#include "src/event/schema.h"
#include "src/event/value.h"

namespace scrub {

// Null-bitmap helpers (bit r set = row r is null). An empty bitmap means
// "no nulls so far"; BitmapSet grows it on demand.
inline bool BitmapGet(const std::vector<uint8_t>& bits, size_t i) {
  return i / 8 < bits.size() && ((bits[i / 8] >> (i % 8)) & 1U) != 0;
}
inline void BitmapSet(std::vector<uint8_t>* bits, size_t i) {
  if (i / 8 >= bits->size()) {
    bits->resize(i / 8 + 1, 0);
  }
  (*bits)[i / 8] = static_cast<uint8_t>((*bits)[i / 8] | (1U << (i % 8)));
}

class ColumnBatch {
 public:
  // Physical representation of one column. kDict is a decode-side string
  // representation (the wire's dictionary encoding): `ints` holds one
  // dictionary code per row (placeholder 0 for null rows) and
  // `offsets`/`arena` hold the dictionary entries — dict_size()+1 offset
  // bounds instead of rows()+1. ValueAt materializes the referenced entry,
  // so every row-semantics consumer works unchanged; appending a value to a
  // kDict column migrates it to kGeneric like any representation mismatch.
  enum class Rep : uint8_t { kBool, kInt, kDouble, kString, kGeneric, kDict };

  struct Column {
    Rep rep = Rep::kGeneric;
    std::vector<uint8_t> bools;     // kBool: one byte per row
    std::vector<int64_t> ints;      // kInt (int/long/datetime); kDict codes
    std::vector<double> doubles;    // kDouble (float/double)
    std::vector<uint32_t> offsets;  // kString: rows()+1 bounds into arena;
                                    // kDict: dict_size()+1 bounds
    std::string arena;              // kString / kDict payload bytes
    std::vector<Value> generic;     // kGeneric: boxed fallback
    std::vector<uint8_t> nulls;     // authoritative null bitmap

    // Number of dictionary entries (kDict only).
    size_t dict_size() const {
      return offsets.empty() ? 0 : offsets.size() - 1;
    }
  };

  ColumnBatch() = default;
  explicit ColumnBatch(SchemaPtr schema);

  const SchemaPtr& schema() const { return schema_; }
  size_t rows() const { return request_ids_.size(); }
  size_t column_count() const { return columns_.size(); }
  const Column& column(size_t field) const { return columns_[field]; }

  void Reserve(size_t rows);

  // Appends one row, copying the event's field values into the columns.
  void AppendEvent(const Event& event);

  RequestId request_id(size_t row) const { return request_ids_[row]; }
  TimeMicros timestamp(size_t row) const {
    return static_cast<TimeMicros>(timestamps_[row]);
  }

  bool IsNull(size_t field, size_t row) const {
    return BitmapGet(columns_[field].nulls, row);
  }
  // Materializes the value at (field, row). Strings and generic values copy
  // out of the batch; numerics are constructed in place.
  Value ValueAt(size_t field, size_t row) const;
  // Row-format fallback for paths that still need an Event (the request-id
  // join, differential comparisons).
  Event MaterializeEvent(size_t row) const;

  // Physical representation for a declared field type.
  static Rep RepFor(FieldType type);

  // ---- Wire-decoder access ----------------------------------------------
  // The columnar decoder builds a batch column-by-column; it maintains the
  // dense-placeholder invariants AppendEvent upholds.
  Column* MutableColumn(size_t field) { return &columns_[field]; }
  void SetRowMeta(std::vector<uint64_t> request_ids,
                  std::vector<int64_t> timestamps);
  // Resets column `field` to all-null placeholders for `rows` rows, keeping
  // its schema-derived representation (the wire's "nothing was projected
  // here" column costs one byte regardless of row count).
  void FillAllNull(size_t field, size_t rows);

 private:
  void AppendValue(size_t field, const Value& value);
  void MigrateToGeneric(size_t field);

  SchemaPtr schema_;
  std::vector<uint64_t> request_ids_;
  std::vector<int64_t> timestamps_;
  std::vector<Column> columns_;  // one per schema field, in schema order
};

}  // namespace scrub

#endif  // SRC_EVENT_COLUMN_BATCH_H_
