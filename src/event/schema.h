// Event type definitions and the schema registry.
//
// Mirrors the paper's @ScrubType/@ScrubField annotations (Figure 1): an event
// type has a string label and a list of typed fields. Scrub adds exactly two
// system fields to every event — a unique request identifier and a timestamp
// — which are addressable in queries as `__request_id` and `__timestamp`.
// Schemas are registered statically at application startup; there is no
// dynamic instrumentation (Section 5 design choice).

#ifndef SRC_EVENT_SCHEMA_H_
#define SRC_EVENT_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/event/value.h"

namespace scrub {

// Names of the two system fields Scrub annotates onto every event.
inline constexpr std::string_view kRequestIdField = "__request_id";
inline constexpr std::string_view kTimestampField = "__timestamp";

struct FieldDef {
  std::string name;
  FieldType type;
};

class EventSchema {
 public:
  // Fluent construction:
  //   EventSchema::Builder("bid")
  //       .AddField("exchange_id", FieldType::kLong)
  //       .AddField("bid_price", FieldType::kDouble)
  //       .Build();
  class Builder;

  const std::string& type_name() const { return type_name_; }
  const std::vector<FieldDef>& fields() const { return fields_; }
  size_t field_count() const { return fields_.size(); }

  // Index of a user field, or -1. System fields are NOT in this table; they
  // live on the Event itself.
  int FieldIndex(std::string_view name) const;
  // True for user fields and the two system fields alike.
  bool HasField(std::string_view name) const;
  // Type of a user or system field (__request_id -> long,
  // __timestamp -> datetime). kNotFound for unknown names.
  Result<FieldType> FieldTypeOf(std::string_view name) const;

  const FieldDef& field(size_t i) const { return fields_[i]; }

 private:
  EventSchema(std::string type_name, std::vector<FieldDef> fields);

  std::string type_name_;
  std::vector<FieldDef> fields_;
  std::unordered_map<std::string, int> index_;
};

class EventSchema::Builder {
 public:
  explicit Builder(std::string type_name) : type_name_(std::move(type_name)) {}

  Builder& AddField(std::string name, FieldType type) {
    fields_.push_back({std::move(name), type});
    return *this;
  }

  // Fails on empty type name, duplicate field names, or a user field that
  // shadows a system field.
  Result<std::shared_ptr<const EventSchema>> Build() const;

 private:
  std::string type_name_;
  std::vector<FieldDef> fields_;
};

using SchemaPtr = std::shared_ptr<const EventSchema>;

// Process-wide table of event types, shared by the application (to log
// events), the query server (to validate queries) and ScrubCentral (to decode
// the wire format).
class SchemaRegistry {
 public:
  Status Register(SchemaPtr schema);
  Result<SchemaPtr> Get(std::string_view type_name) const;
  bool Contains(std::string_view type_name) const;
  std::vector<std::string> TypeNames() const;
  size_t size() const { return schemas_.size(); }

 private:
  std::unordered_map<std::string, SchemaPtr> schemas_;
};

}  // namespace scrub

#endif  // SRC_EVENT_SCHEMA_H_
