#include "src/event/column_batch.h"

#include <utility>

namespace scrub {

ColumnBatch::Rep ColumnBatch::RepFor(FieldType type) {
  switch (type) {
    case FieldType::kBool:
      return Rep::kBool;
    case FieldType::kInt:
    case FieldType::kLong:
    case FieldType::kDateTime:
      return Rep::kInt;
    case FieldType::kFloat:
    case FieldType::kDouble:
      return Rep::kDouble;
    case FieldType::kString:
      return Rep::kString;
    default:
      return Rep::kGeneric;
  }
}

ColumnBatch::ColumnBatch(SchemaPtr schema) : schema_(std::move(schema)) {
  columns_.resize(schema_->field_count());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].rep = RepFor(schema_->field(i).type);
    if (columns_[i].rep == Rep::kString) {
      columns_[i].offsets.push_back(0);
    }
  }
}

void ColumnBatch::Reserve(size_t rows) {
  request_ids_.reserve(rows);
  timestamps_.reserve(rows);
  for (Column& col : columns_) {
    switch (col.rep) {
      case Rep::kBool:
        col.bools.reserve(rows);
        break;
      case Rep::kInt:
        col.ints.reserve(rows);
        break;
      case Rep::kDouble:
        col.doubles.reserve(rows);
        break;
      case Rep::kString:
        col.offsets.reserve(rows + 1);
        break;
      case Rep::kGeneric:
        col.generic.reserve(rows);
        break;
      case Rep::kDict:
        col.ints.reserve(rows);
        break;
    }
  }
}

void ColumnBatch::AppendEvent(const Event& event) {
  request_ids_.push_back(event.request_id());
  timestamps_.push_back(static_cast<int64_t>(event.timestamp()));
  for (size_t f = 0; f < columns_.size(); ++f) {
    AppendValue(f, event.field(f));
  }
}

void ColumnBatch::AppendValue(size_t field, const Value& value) {
  Column& col = columns_[field];
  const size_t row = request_ids_.size() - 1;
  if (value.is_null()) {
    BitmapSet(&col.nulls, row);
    switch (col.rep) {
      case Rep::kBool:
        col.bools.push_back(0);
        break;
      case Rep::kInt:
        col.ints.push_back(0);
        break;
      case Rep::kDouble:
        col.doubles.push_back(0.0);
        break;
      case Rep::kString:
        col.offsets.push_back(static_cast<uint32_t>(col.arena.size()));
        break;
      case Rep::kGeneric:
        col.generic.emplace_back();
        break;
      case Rep::kDict:
        col.ints.push_back(0);  // placeholder code; the null bit rules
        break;
    }
    return;
  }
  switch (col.rep) {
    case Rep::kBool:
      if (!value.is_bool()) break;
      col.bools.push_back(value.AsBool() ? 1 : 0);
      return;
    case Rep::kInt:
      if (!value.is_int()) break;
      col.ints.push_back(value.AsInt());
      return;
    case Rep::kDouble:
      if (!value.is_double()) break;
      col.doubles.push_back(value.AsDoubleExact());
      return;
    case Rep::kString: {
      if (!value.is_string()) break;
      const std::string& s = value.AsString();
      col.arena.append(s);
      col.offsets.push_back(static_cast<uint32_t>(col.arena.size()));
      return;
    }
    case Rep::kGeneric:
      col.generic.push_back(value);
      return;
    case Rep::kDict:
      break;  // dictionaries are decode-only; appends box the column
  }
  // The value does not fit the column's physical representation: box the
  // whole column so mixed-type inputs keep row-path semantics.
  MigrateToGeneric(field);
  columns_[field].generic.push_back(value);
}

void ColumnBatch::MigrateToGeneric(size_t field) {
  Column& col = columns_[field];
  const size_t filled = request_ids_.size() - 1;  // rows before the in-flight one
  std::vector<Value> boxed;
  boxed.reserve(filled + 1);
  for (size_t r = 0; r < filled; ++r) {
    boxed.push_back(ValueAt(field, r));
  }
  col.bools.clear();
  col.ints.clear();
  col.doubles.clear();
  col.offsets.clear();
  col.arena.clear();
  col.rep = Rep::kGeneric;
  col.generic = std::move(boxed);
}

Value ColumnBatch::ValueAt(size_t field, size_t row) const {
  const Column& col = columns_[field];
  if (BitmapGet(col.nulls, row)) {
    return Value();
  }
  switch (col.rep) {
    case Rep::kBool:
      return Value(col.bools[row] != 0);
    case Rep::kInt:
      return Value(col.ints[row]);
    case Rep::kDouble:
      return Value(col.doubles[row]);
    case Rep::kString:
      return Value(col.arena.substr(col.offsets[row],
                                    col.offsets[row + 1] - col.offsets[row]));
    case Rep::kGeneric:
      return col.generic[row];
    case Rep::kDict: {
      const size_t code = static_cast<size_t>(col.ints[row]);
      return Value(col.arena.substr(col.offsets[code],
                                    col.offsets[code + 1] - col.offsets[code]));
    }
  }
  return Value();
}

Event ColumnBatch::MaterializeEvent(size_t row) const {
  Event event(schema_, request_ids_[row],
              static_cast<TimeMicros>(timestamps_[row]));
  for (size_t f = 0; f < columns_.size(); ++f) {
    if (!IsNull(f, row)) {
      event.SetField(f, ValueAt(f, row));
    }
  }
  return event;
}

void ColumnBatch::SetRowMeta(std::vector<uint64_t> request_ids,
                             std::vector<int64_t> timestamps) {
  request_ids_ = std::move(request_ids);
  timestamps_ = std::move(timestamps);
}

void ColumnBatch::FillAllNull(size_t field, size_t rows) {
  Column& col = columns_[field];
  col.nulls.assign((rows + 7) / 8, 0xFF);
  if (rows % 8 != 0 && !col.nulls.empty()) {
    col.nulls.back() = static_cast<uint8_t>((1U << (rows % 8)) - 1);
  }
  switch (col.rep) {
    case Rep::kBool:
      col.bools.assign(rows, 0);
      break;
    case Rep::kInt:
      col.ints.assign(rows, 0);
      break;
    case Rep::kDouble:
      col.doubles.assign(rows, 0.0);
      break;
    case Rep::kString:
      col.offsets.assign(rows + 1, 0);
      col.arena.clear();
      break;
    case Rep::kGeneric:
      col.generic.assign(rows, Value());
      break;
    case Rep::kDict:
      col.ints.assign(rows, 0);
      col.offsets.assign(1, 0);
      col.arena.clear();
      break;
  }
}

}  // namespace scrub
