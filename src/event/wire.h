// Binary wire codec for events.
//
// Hosts serialize (selected, projected) events into batches and ship them to
// ScrubCentral, which decodes them against the shared SchemaRegistry. The
// encoding is deliberately simple and self-describing at the value level
// (1 tag byte + fixed/length-prefixed payload); Event::WireSize() and
// Value::WireSize() match the encoded size byte-for-byte, which the tests
// assert, so all byte accounting in the experiments is exact.

#ifndef SRC_EVENT_WIRE_H_
#define SRC_EVENT_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/event/event.h"
#include "src/event/schema.h"

namespace scrub {

// Appends the encoding of `event` to `out`. Returns bytes written.
size_t EncodeEvent(const Event& event, std::string* out);

// Decodes one event starting at out[*offset]; advances *offset past it.
// The event's schema is resolved from `registry` by type name.
Result<Event> DecodeEvent(const SchemaRegistry& registry,
                          const std::string& buffer, size_t* offset);

// Batch helpers: a batch is a count-prefixed sequence of events.
std::string EncodeBatch(const std::vector<Event>& events);
Result<std::vector<Event>> DecodeBatch(const SchemaRegistry& registry,
                                       const std::string& buffer);

}  // namespace scrub

#endif  // SRC_EVENT_WIRE_H_
