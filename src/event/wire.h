// Binary wire codec for events.
//
// Hosts serialize (selected, projected) events into batches and ship them to
// ScrubCentral, which decodes them against the shared SchemaRegistry. The
// encoding is deliberately simple and self-describing at the value level
// (1 tag byte + fixed/length-prefixed payload); Event::WireSize() and
// Value::WireSize() match the encoded size byte-for-byte, which the tests
// assert, so all byte accounting in the experiments is exact.

#ifndef SRC_EVENT_WIRE_H_
#define SRC_EVENT_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/event/column_batch.h"
#include "src/event/event.h"
#include "src/event/schema.h"

namespace scrub {

// How an EventBatch payload is laid out. The row format remains the
// control-plane / back-compat default; the columnar format is the data-plane
// fast path (one contiguous run per column instead of one record per event).
enum class BatchFormat : uint8_t {
  kRow = 0,
  kColumnar = 1,
  // Agent-side pre-aggregation ablation: the payload is per-(slot, group)
  // COUNT/SUM cells, not events (EncodePreAggBatch below).
  kPreAgg = 2,
  // Multi-source (join) columnar staging: one columnar section per query
  // source plus the explicit arrival-order interleave, so the central join
  // replays the exact event sequence the row path would have shipped
  // (EncodeColumnJoinBatch below).
  kColumnarJoin = 3,
};

// Appends the encoding of `event` to `out`. Returns bytes written.
size_t EncodeEvent(const Event& event, std::string* out);

// Decodes one event starting at out[*offset]; advances *offset past it.
// The event's schema is resolved from `registry` by type name.
Result<Event> DecodeEvent(const SchemaRegistry& registry,
                          const std::string& buffer, size_t* offset);

// Batch helpers: a batch is a count-prefixed sequence of events.
std::string EncodeBatch(const std::vector<Event>& events);
Result<std::vector<Event>> DecodeBatch(const SchemaRegistry& registry,
                                       const std::string& buffer);

// ---- Columnar batch format -------------------------------------------------
//
// Layout (all integers little-endian, reusing the row codec's primitives):
//   u32 type_name_len, type_name bytes
//   u32 row_count
//   row_count x u64 request ids          (contiguous)
//   row_count x u64 timestamps           (contiguous)
//   per schema field, in schema order:
//     u8 column tag (0 = all-null/dropped, otherwise the physical rep)
//     [non-null tags only]
//       ceil(row_count/8) null-bitmap bytes (bit r set = row r null;
//         padding bits beyond row_count MUST be zero)
//       the non-null values only, contiguous:
//         bool    -> bit-packed, ceil(count/8) bytes, zero padding bits
//         int     -> 8-byte two's complement
//         double  -> 8-byte IEEE 754
//         string  -> u32 length + bytes
//         generic -> the row codec's tagged value encoding (same depth guard)
//         dict    -> u32 dictionary count (1..256), that many u32-length-
//                    prefixed entries, then one u8 code per non-null row.
//                    The encoder picks dict over string per column whenever
//                    the observed cardinality is low enough that the
//                    dictionary + codes are strictly smaller than the plain
//                    bytes; only string-typed schema fields may carry it.
//
// Decode applies the same hostile-input discipline as the row format:
// truncation checks on every read, row counts capped by what the remaining
// bytes could possibly hold, nonzero bitmap padding rejected, unknown column
// tags rejected, out-of-range dictionary codes and truncated/oversized
// dictionaries rejected, dict tags on non-string fields rejected, trailing
// bytes rejected.

// Appends the columnar encoding of the selected rows to `out`; returns bytes
// written. `selection` lists row indices in emission order (nullptr = all
// rows, `selected` ignored then must equal batch.rows()). Fields with
// keep_field[f] == false are encoded as dropped (all-null) columns, which is
// how projection reaches the wire without copying values. Pass
// keep_field == nullptr to keep every column. When `encodings` is non-null
// it is resized to one entry per schema field reporting the encoding chosen:
// -1 dropped/all-null, 0 plain, n > 0 dictionary with n entries.
size_t EncodeColumnBatch(const ColumnBatch& batch, const uint32_t* selection,
                         size_t selected, const std::vector<bool>* keep_field,
                         std::string* out,
                         std::vector<int>* encodings = nullptr);

// Decodes a columnar payload against `registry`.
Result<ColumnBatch> DecodeColumnBatch(const SchemaRegistry& registry,
                                      const std::string& buffer);

// ---- Columnar join batch format (BatchFormat::kColumnarJoin) ---------------
//
// Multi-source plans stage one ColumnBatch per source at the agent, but the
// central join folds events in arrival order, so the wire carries both: the
// per-source columnar sections AND the explicit interleave that says which
// source each staged event came from. Layout:
//   u32 section_count (1..kMaxColumnJoinSections)
//   per section: u32 payload_len + a complete columnar payload (above)
//   u32 order_count (must equal the sum of section row counts)
//   order_count x u8 source index (< section_count; each source index must
//     appear exactly its section's row count of times)
// Decode rejects out-of-range section counts, truncated sections, order
// entries that disagree with the sections, and trailing bytes; each section
// is decoded with the full columnar hostile-input discipline (including the
// per-section trailing-bytes check).

inline constexpr size_t kMaxColumnJoinSections = 16;

// One source's staged rows for EncodeColumnJoinBatch; same selection /
// projection contract as EncodeColumnBatch.
struct ColumnJoinSection {
  const ColumnBatch* batch = nullptr;
  const uint32_t* selection = nullptr;
  size_t selected = 0;
  const std::vector<bool>* keep_field = nullptr;
};

// `order[i]` is the source index of the i-th surviving event in arrival
// order; its length must equal the sum of the sections' selected counts.
// `encodings`, when non-null, receives one per-field report per section
// (same convention as EncodeColumnBatch).
size_t EncodeColumnJoinBatch(const std::vector<ColumnJoinSection>& sections,
                             const std::vector<uint8_t>& order,
                             std::string* out,
                             std::vector<std::vector<int>>* encodings = nullptr);

struct ColumnJoinBatch {
  std::vector<ColumnBatch> sections;  // one per query source, in plan order
  std::vector<uint8_t> order;         // arrival interleave over the sections
};

Result<ColumnJoinBatch> DecodeColumnJoinBatch(const SchemaRegistry& registry,
                                              const std::string& buffer);

// ---- Pre-aggregated batch format (BatchFormat::kPreAgg) --------------------
//
// The agent-side pre-aggregation ablation ships per-(slot, group) COUNT/SUM
// deltas instead of events. Layout (reusing the row codec's primitives):
//   u32 slot_count
//   per slot:
//     u64 window_start (slide-grid slot, micros)
//     u64 folded event count
//     u32 group_count
//     per group:
//       u32 key_count,  key_count tagged values (the row codec's encoding)
//       u32 cell_count, cell_count x (u64 count + f64 sum)
// Decode applies the row format's hostile-input discipline: truncation
// checks on every read, counts capped by the remaining bytes, trailing
// bytes rejected.

struct PreAggCell {
  uint64_t count = 0;
  double sum = 0.0;
};

struct PreAggGroup {
  std::vector<Value> keys;
  std::vector<PreAggCell> cells;  // one per aggregate slot, in plan order
};

struct PreAggSlot {
  int64_t window_start = 0;
  uint64_t events = 0;  // selected events folded into this slot
  std::vector<PreAggGroup> groups;
};

std::string EncodePreAggBatch(const std::vector<PreAggSlot>& slots);
Result<std::vector<PreAggSlot>> DecodePreAggBatch(const std::string& buffer);

}  // namespace scrub

#endif  // SRC_EVENT_WIRE_H_
