#include "src/event/event.h"

#include "src/common/strings.h"

namespace scrub {

Status Event::SetFieldByName(std::string_view name, Value value) {
  const int idx = schema_->FieldIndex(name);
  if (idx < 0) {
    return NotFound(StrFormat("event type '%s' has no field '%.*s'",
                              schema_->type_name().c_str(),
                              static_cast<int>(name.size()), name.data()));
  }
  const FieldType declared = schema_->field(static_cast<size_t>(idx)).type;
  if (!value.ConformsTo(declared)) {
    return InvalidArgument(StrFormat(
        "field '%.*s' of event type '%s' declared %s, got %s",
        static_cast<int>(name.size()), name.data(),
        schema_->type_name().c_str(), FieldTypeName(declared),
        value.ToString().c_str()));
  }
  fields_[static_cast<size_t>(idx)] = std::move(value);
  return OkStatus();
}

Value Event::GetField(std::string_view name) const {
  if (name == kRequestIdField) {
    return Value(static_cast<int64_t>(request_id_));
  }
  if (name == kTimestampField) {
    return Value(static_cast<int64_t>(timestamp_));
  }
  const int idx = schema_->FieldIndex(name);
  if (idx < 0) {
    return Value::Null();
  }
  return fields_[static_cast<size_t>(idx)];
}

Status Event::Validate() const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!fields_[i].ConformsTo(schema_->field(i).type)) {
      return InvalidArgument(StrFormat(
          "field '%s' of event type '%s' declared %s, got %s",
          schema_->field(i).name.c_str(), schema_->type_name().c_str(),
          FieldTypeName(schema_->field(i).type),
          fields_[i].ToString().c_str()));
    }
  }
  return OkStatus();
}

size_t Event::WireSize() const {
  // Header: type-name length + name + request id + timestamp.
  size_t n = 4 + schema_->type_name().size() + 8 + 8;
  for (const Value& v : fields_) {
    n += v.WireSize();
  }
  return n;
}

std::string Event::ToString() const {
  std::string out = schema_->type_name();
  out += StrFormat("{rid=%llu, ts=%lld",
                   static_cast<unsigned long long>(request_id_),
                   static_cast<long long>(timestamp_));
  for (size_t i = 0; i < fields_.size(); ++i) {
    out += ", ";
    out += schema_->field(i).name;
    out += "=";
    out += fields_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace scrub
