// ScrubCentral: the dedicated centralized query-execution facility.
//
// Everything the language allows beyond selection/projection executes here
// (Section 4): the implicit equi-join on request id, tumbling-window
// assignment, group-by, exact aggregation (COUNT/SUM/AVG/MIN/MAX),
// probabilistic aggregation (TOP-K via SpaceSaving, COUNT_DISTINCT via
// HyperLogLog), and the sampling estimator of Equations 1-3.
//
// Execution model: batches arrive from host agents; events are decoded,
// window-assigned by their host-side timestamp, joined per request id
// within a window, and folded into per-(window, group) accumulators. A
// window closes once the clock passes its end plus an allowed-lateness
// grace (covering cross-DC transit and agent flush cadence); closing emits
// result rows to the registered sink. Late events landing in a closed
// window are counted and dropped — accuracy traded for bounded state,
// exactly the paper's stance.

#ifndef SRC_CENTRAL_CENTRAL_H_
#define SRC_CENTRAL_CENTRAL_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/agent/agent.h"
#include "src/common/cost_model.h"
#include "src/event/schema.h"
#include "src/event/wire.h"
#include "src/plan/plan.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/multistage.h"
#include "src/sketch/space_saving.h"

namespace scrub {

// Group keys and mergeable aggregate state are shared with the sharded
// deployment (ShardedCentral), whose coordinator merges per-shard partials.
using GroupKey = std::vector<Value>;

struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const {
    size_t seed = 0x517cc1b7;
    for (const Value& v : key) {
      seed ^= v.Hash() + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
    }
    return seed;
  }
};

// A group key bundled with its hash, computed once per row: the fold's map
// probe, the coordinator's merge and the shard re-bucket all reuse it
// instead of rehashing a vector<Value>. The hash is exactly GroupKeyHash's,
// so every pipeline (row, columnar, sharded) buckets groups identically —
// part of the byte-identical-transcript argument.
struct HashedGroupKey {
  GroupKey key;
  size_t hash = 0;

  HashedGroupKey() = default;
  explicit HashedGroupKey(GroupKey k)
      : key(std::move(k)), hash(GroupKeyHash{}(key)) {}
  HashedGroupKey(GroupKey k, size_t h) : key(std::move(k)), hash(h) {}

  bool operator==(const HashedGroupKey& other) const {
    return key == other.key;
  }
};

struct HashedGroupKeyHash {
  size_t operator()(const HashedGroupKey& k) const { return k.hash; }
};

// One aggregate's running state within one group. Mergeable: partials from
// independent shards combine into the same state one stream would build.
struct AggAccumulator {
  uint64_t count = 0;
  double sum = 0.0;
  bool has_minmax = false;
  Value min_value;
  Value max_value;
  std::unique_ptr<HyperLogLog> hll;
  std::unique_ptr<SpaceSaving<Value, ValueHash>> topk;

  void Merge(AggAccumulator&& other);
};

// Finalizes one accumulator to its result value on the exact path (scale
// multiplies COUNT/SUM/TOPK counts; pass 1.0 when sampling is off).
Value FinalizeAccumulator(const AggregateSpec& spec,
                          const AggAccumulator& acc, double scale);

// One shard's finished window, shipped to the sharded coordinator.
struct WindowPartial {
  QueryId query_id = 0;
  TimeMicros window_start = 0;
  // Fraction of the plan's sampled host set heard from this window (1.0
  // when unknown). The coordinator takes the min across shards.
  double completeness = 1.0;
  std::vector<GroupKey> keys;
  // GroupKeyHash of each key, parallel to `keys`: the coordinator's merge
  // reuses the shard's hashes instead of rehashing.
  std::vector<size_t> key_hashes;
  std::vector<std::vector<AggAccumulator>> accumulators;  // parallel to keys
};

using PartialSink = std::function<void(WindowPartial&&)>;

struct ResultRow {
  QueryId query_id = 0;
  TimeMicros window_start = 0;
  TimeMicros window_end = 0;
  std::vector<Value> values;          // one per select column
  // error_bounds[i] is the ± half-width of the 95% interval when column i is
  // a sampled COUNT/SUM (Eq. 2); 0 means exact / not applicable.
  std::vector<double> error_bounds;
  // Fraction of the hosts the plan expected to hear from whose contribution
  // (events or heartbeat counters) reached central before this window
  // closed. 1.0 = every expected host reported; below that, the window's
  // answer is partition/crash-degraded and the user can tell.
  double completeness = 1.0;

  std::string ToString() const;
};

using ResultSink = std::function<void(const ResultRow&)>;

// Duplicate suppression for sequenced batches from one (host, epoch): a
// contiguous watermark plus the out-of-order seqs beyond it, so state stays
// O(reorder depth), not O(batches). Shared with ShardedCentral, which dedups
// at the router before re-bucketing.
struct SeqTracker {
  uint64_t contiguous = 0;  // every seq <= this has been seen
  std::set<uint64_t> ahead;

  // Returns false (duplicate) if seq was already recorded.
  bool Insert(uint64_t seq) {
    if (seq <= contiguous || ahead.count(seq) > 0) {
      return false;
    }
    ahead.insert(seq);
    while (!ahead.empty() && *ahead.begin() == contiguous + 1) {
      ++contiguous;
      ahead.erase(ahead.begin());
    }
    return true;
  }
};

struct CentralConfig {
  // How long past a window's end central waits for stragglers.
  TimeMicros allowed_lateness = 2 * kMicrosPerSecond;
  // Join-state bound: at most this many distinct request ids buffered per
  // (query, window). Beyond it, new request ids are shed and counted —
  // accuracy traded for bounded memory, the paper's standing policy.
  size_t max_join_requests_per_window = 1 << 20;
  size_t topk_capacity_factor = 10;  // SpaceSaving counters per requested k
  size_t min_topk_capacity = 100;
  int hll_precision = 14;
  CostModel costs;
};

struct CentralQueryStats {
  uint64_t batches = 0;
  uint64_t batches_duplicate = 0;  // dedup hits: retransmit raced its ack
  uint64_t events_ingested = 0;
  uint64_t events_late = 0;        // dropped: window already closed
  uint64_t tuples_joined = 0;      // joined tuples processed (join queries)
  uint64_t join_orphans = 0;       // events never matched by window close
  uint64_t join_shed = 0;          // events dropped: join buffer at capacity
  uint64_t groups_emitted = 0;
  uint64_t rows_emitted = 0;
  // Completeness accounting across closed windows.
  uint64_t windows_closed = 0;
  uint64_t windows_incomplete = 0;  // closed with completeness < 1
  double completeness_min = 1.0;
  double completeness_sum = 0.0;    // mean = sum / windows_closed
};

class ScrubCentral {
 public:
  ScrubCentral(const SchemaRegistry* registry, CentralConfig config = {})
      : registry_(registry), config_(config) {}

  // Registers a query; rows will flow to `sink` as windows close.
  Status InstallQuery(const CentralPlan& plan, ResultSink sink);
  // Shard mode: windows close by emitting mergeable per-group partials
  // instead of finalized rows (aggregate-mode plans without sampling only;
  // the coordinator merges and finalizes).
  Status InstallQueryPartial(const CentralPlan& plan, PartialSink sink);
  // Finalizes every open window (emitting rows) and forgets the query.
  void RemoveQuery(QueryId query_id);
  bool HasQuery(QueryId query_id) const { return queries_.count(query_id) > 0; }

  // Ingests one host batch (decodes payload against the schema registry).
  Status IngestBatch(const EventBatch& batch, TimeMicros now);

  // Sharded-router fast path: already-decoded, already-deduplicated events
  // from `host`. The router dedups before re-bucketing and owns counter
  // accounting, so this skips both; window assignment, the request-id join,
  // grouping and accumulation are exactly IngestBatch's. Distinct
  // ScrubCentral instances may run this concurrently (each touches only its
  // own state); one instance must not.
  Status IngestEvents(QueryId query_id, HostId host,
                      const std::vector<Event>& events);

  // Columnar twin of IngestEvents: folds the selected rows of a decoded
  // ColumnBatch straight into accumulators — no per-event Event allocation.
  // `selection` lists row indices in fold order (nullptr = all rows). Join
  // plans fall back to materialized rows to preserve arrival-order
  // semantics. Same concurrency contract as IngestEvents.
  Status IngestColumns(QueryId query_id, HostId host,
                       const ColumnBatch& batch, const uint32_t* selection,
                       size_t selected);

  // Closes windows whose grace period has passed; retires queries whose span
  // plus grace has passed. Call periodically from the scheduler.
  void OnTick(TimeMicros now);

  const CentralQueryStats* StatsFor(QueryId query_id) const;
  const CostMeter& meter() const { return meter_; }
  // State-size introspection (memory pressure experiments).
  size_t OpenWindows(QueryId query_id) const;

 private:
  using Accumulator = AggAccumulator;

  struct GroupState {
    std::vector<Accumulator> accumulators;  // key lives in the map key
  };

  // Per-host sampling bookkeeping within one window (Eqs. 1-3).
  struct HostWindowStats {
    uint64_t population = 0;  // M_i: from agent counters
    uint64_t sampled = 0;     // m_i: from agent counters
    uint64_t received = 0;    // events that actually arrived (post-selection)
    // Readings per *bounded* aggregate (ungrouped scaled COUNT/SUM slots).
    std::vector<RunningStats> readings;
  };

  struct WindowState {
    TimeMicros start = 0;
    std::unordered_map<HashedGroupKey, GroupState, HashedGroupKeyHash> groups;
    // Join buffer: request id -> events per source (sources.size() <= 2).
    std::unordered_map<RequestId, std::vector<std::vector<Event>>> join_state;
    std::unordered_map<HostId, HostWindowStats> host_stats;
    bool closed = false;
  };

  struct ActiveQuery {
    CentralPlan plan;
    ResultSink sink;           // row mode
    PartialSink partial_sink;  // shard mode (exactly one of the two is set)
    CentralQueryStats stats;
    std::map<TimeMicros, WindowState> windows;  // keyed by window start
    // Dedup state per sending host, keyed by agent incarnation (epoch).
    std::unordered_map<HostId, std::map<uint64_t, SeqTracker>> dedup;
    // Windows at or before this start have been emitted and erased; events
    // mapping into them are late.
    TimeMicros closed_through = std::numeric_limits<TimeMicros>::min();
    // Aggregate slots that get an Eq. 1-3 treatment: scaled (COUNT/SUM),
    // sampling active, and no GROUP BY.
    std::vector<int> bounded_aggregates;
    // Fallback global scale for grouped scaled aggregates under sampling.
    bool needs_scaling = false;
  };

  // Folds decoded events into q's windows (shared tail of IngestBatch and
  // IngestEvents).
  void FoldEvents(ActiveQuery& q, HostId host,
                  const std::vector<Event>& events);
  // Columnar fold: the selected rows, in order, through window assignment,
  // grouping and accumulation without materializing Events.
  void FoldColumns(ActiveQuery& q, HostId host, const ColumnBatch& batch,
                   const uint32_t* selection, size_t selected);

  TimeMicros WindowStartFor(const ActiveQuery& q, TimeMicros ts) const;
  // All still-open windows covering ts: one for tumbling queries, up to
  // window/slide for sliding queries. Empty when ts is out of span or every
  // covering window has already closed (late data).
  std::vector<WindowState*> WindowsFor(ActiveQuery& q, TimeMicros ts);
  void ProcessEvent(ActiveQuery& q, WindowState& w, const Event& event,
                    HostId host);
  void ProcessTuple(ActiveQuery& q, WindowState& w, const EventTuple& tuple,
                    HostId host);
  // Columnar twin of ProcessEvent for non-join plans.
  void ProcessColumnRow(ActiveQuery& q, WindowState& w,
                        const ColumnBatch& batch, size_t row, HostId host);
  void UpdateAccumulator(const AggregateSpec& spec, Accumulator* acc,
                         const EventTuple& tuple);
  // Accumulator update with the argument already evaluated (shared by the
  // row and columnar folds; `arg` is null for argument-less aggregates).
  void UpdateAccumulatorValue(const AggregateSpec& spec, Accumulator* acc,
                              const Value& arg);
  void CloseWindow(ActiveQuery& q, WindowState* w);
  // Observed fraction of the plan's expected host set for this window.
  double WindowCompleteness(const ActiveQuery& q, const WindowState& w) const;
  Value FinalizeAggregate(const ActiveQuery& q, const WindowState& w,
                          int slot, const Accumulator& acc,
                          double group_scale, double* error_bound) const;
  double GroupScaleFor(const ActiveQuery& q, const WindowState& w) const;

  const SchemaRegistry* registry_;
  CentralConfig config_;
  CostMeter meter_;
  std::unordered_map<QueryId, ActiveQuery> queries_;
  std::unordered_map<QueryId, CentralQueryStats> retired_stats_;
};

}  // namespace scrub

#endif  // SRC_CENTRAL_CENTRAL_H_
