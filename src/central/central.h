// ScrubCentral: the dedicated centralized query-execution facility.
//
// Everything the language allows beyond selection/projection executes here
// (Section 4): the implicit equi-join on request id, tumbling-window
// assignment, group-by, exact aggregation (COUNT/SUM/AVG/MIN/MAX),
// probabilistic aggregation (TOP-K via SpaceSaving, COUNT_DISTINCT via
// HyperLogLog), and the sampling estimator of Equations 1-3.
//
// Execution model: batches arrive from host agents; events are decoded,
// window-assigned by their host-side timestamp, joined per request id
// within a window, and folded into per-(window, group) accumulators. A
// window closes once the clock passes its end plus an allowed-lateness
// grace (covering cross-DC transit and agent flush cadence); closing emits
// result rows to the registered sink. Late events landing in a closed
// window are counted and dropped — accuracy traded for bounded state,
// exactly the paper's stance.
//
// ScrubCentral itself is a thin facility adapter: it owns query lifecycle
// (install / dedup / retire) and maps every ingest entry point onto the
// physical-operator Executor (src/central/executor.h), which interprets the
// pipeline CompilePhysical() built from the plan. Row spans, ColumnBatch
// selections and shard roles all flow through that one executor.

#ifndef SRC_CENTRAL_CENTRAL_H_
#define SRC_CENTRAL_CENTRAL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/central/executor.h"

namespace scrub {

class ScrubCentral {
 public:
  ScrubCentral(const SchemaRegistry* registry, CentralConfig config = {})
      : registry_(registry), config_(config) {
    accountant_.set_budgets(config_.query_state_budget_bytes,
                            config_.central_state_budget_bytes);
    accountant_.set_tracking(config_.track_state_bytes);
    spill_.Configure(config_.spill_dir, config_.spill_instance,
                     config_.spill_seed, config_.spill_faults);
  }

  // Registers a query; rows will flow to `sink` as windows close. Compiles
  // the single-instance pipeline (every stage, Finalize included).
  Status InstallQuery(const CentralPlan& plan, ResultSink sink);
  // Shard mode: windows close by emitting mergeable per-group partials
  // instead of finalized rows (aggregate-mode plans only; the coordinator
  // merges and finalizes). Sampled plans shard too: the compiled shard
  // pipeline collects per-(group, host) readings and the coordinator runs
  // the Eq. 1-3 estimator over globally merged counters.
  Status InstallQueryPartial(const CentralPlan& plan, PartialSink sink);
  // Finalizes every open window (emitting rows) and forgets the query.
  void RemoveQuery(QueryId query_id);
  bool HasQuery(QueryId query_id) const { return queries_.count(query_id) > 0; }

  // Ingests one host batch (decodes payload against the schema registry).
  Status IngestBatch(const EventBatch& batch, TimeMicros now);

  // Sharded-router fast path: already-decoded, already-deduplicated events
  // from `host`. The router dedups before re-bucketing and owns counter
  // accounting, so this skips both; window assignment, the request-id join,
  // grouping and accumulation are exactly IngestBatch's. Distinct
  // ScrubCentral instances may run this concurrently (each touches only its
  // own state); one instance must not.
  Status IngestEvents(QueryId query_id, HostId host,
                      const std::vector<Event>& events);

  // Columnar twin of IngestEvents: folds the selected rows of a decoded
  // ColumnBatch straight into accumulators — no per-event Event allocation.
  // `selection` lists row indices in fold order (nullptr = all rows). Join
  // plans probe the request-id column directly and materialize only rows
  // that survive the join, which is why the batch arrives shared: deferred
  // entries may outlive the call. Same concurrency contract as IngestEvents.
  Status IngestColumns(QueryId query_id, HostId host,
                       std::shared_ptr<const ColumnBatch> batch,
                       const uint32_t* selection, size_t selected);

  // Join twin of IngestColumns: folds a multi-source columnar slice (per-
  // source sections plus the agent's staging interleave) in the exact order
  // the rows were staged, so the join transcript is byte-identical to the
  // interleaved row stream. Same concurrency contract as IngestEvents.
  Status IngestJoinColumns(QueryId query_id, HostId host,
                           const ColumnJoinSlice& slice);

  // Closes windows whose grace period has passed; retires queries whose span
  // plus grace has passed. Call periodically from the scheduler.
  void OnTick(TimeMicros now);

  const CentralQueryStats* StatsFor(QueryId query_id) const;
  // Ids of every installed (not yet retired) query, unordered. The adaptive
  // controller walks these to read per-operator metrics each pump.
  std::vector<QueryId> ActiveQueryIds() const {
    std::vector<QueryId> ids;
    ids.reserve(queries_.size());
    for (const auto& [qid, q] : queries_) {
      ids.push_back(qid);
    }
    return ids;
  }
  const CostMeter& meter() const { return meter_; }
  // State-size introspection (memory pressure experiments).
  size_t OpenWindows(QueryId query_id) const;
  // Compiled pipeline for an installed query (EXPLAIN, tests).
  const PhysicalPipeline* PipelineFor(QueryId query_id) const;

  // Memory-pressure introspection (DESIGN.md §13): the state accountant and
  // what the spill layer has done so far.
  const MemoryAccountant& accountant() const { return accountant_; }
  const SpillStats& spill_stats() const { return spill_.stats(); }
  // Re-arms the spill fault stream (chaos controls; forwarded by
  // ScrubSystem::SetFaultPlan).
  void SetSpillFaults(SpillFaultSpec faults, uint64_t seed) {
    config_.spill_faults = faults;
    spill_.SetFaults(faults, seed);
  }

 private:
  Status Install(const CentralPlan& plan, QueryState q);

  const SchemaRegistry* registry_;
  CentralConfig config_;
  CostMeter meter_;
  MemoryAccountant accountant_;
  SpillManager spill_;
  Executor executor_{registry_, &config_, &meter_, &accountant_, &spill_};
  std::unordered_map<QueryId, QueryState> queries_;
  std::unordered_map<QueryId, CentralQueryStats> retired_stats_;
};

}  // namespace scrub

#endif  // SRC_CENTRAL_CENTRAL_H_
