#include "src/central/coordinator.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"
#include "src/common/worker_pool.h"

namespace scrub {

Status PartialCoordinator::InstallQuery(const CentralPlan& plan,
                                        ResultSink sink) {
  if (sink == nullptr) {
    return InvalidArgument("result sink must be set");
  }
  if (coordinators_.count(plan.query_id) > 0) {
    return AlreadyExists(
        StrFormat("query %llu already installed at coordinator",
                  static_cast<unsigned long long>(plan.query_id)));
  }
  Coordinator c;
  c.plan = plan;
  c.pipeline = CompilePhysical(plan, PipelineRole::kCoordinator);
  c.sink = std::move(sink);
  c.raw = !plan.aggregate_mode;
  coordinators_.emplace(plan.query_id, std::move(c));
  return OkStatus();
}

void PartialCoordinator::RemoveQuery(QueryId query_id) {
  const auto it = coordinators_.find(query_id);
  if (it == coordinators_.end()) {
    return;
  }
  for (auto& [start, groups] : it->second.windows) {
    FinalizeWindow(it->second, start, groups);
  }
  retired_stats_[query_id] = it->second.stats;
  coordinators_.erase(it);
}

const CentralPlan* PartialCoordinator::PlanFor(QueryId query_id) const {
  const auto it = coordinators_.find(query_id);
  return it == coordinators_.end() ? nullptr : &it->second.plan;
}

bool PartialCoordinator::AdmitSequenced(QueryId query_id, HostId sender,
                                        uint64_t epoch, uint64_t seq) {
  const auto it = coordinators_.find(query_id);
  if (it == coordinators_.end()) {
    return false;  // raced teardown
  }
  Coordinator& c = it->second;
  if (seq != 0 && !c.dedup[sender][epoch].Insert(seq)) {
    ++c.stats.batches_duplicate;
    return false;
  }
  ++c.stats.batches;
  return true;
}

void PartialCoordinator::AbsorbCounters(
    QueryId query_id, HostId host,
    const std::vector<WindowCounter>& counters) {
  const auto it = coordinators_.find(query_id);
  if (it == coordinators_.end()) {
    return;
  }
  Coordinator& c = it->second;
  const bool keep_counters = c.plan.SamplingActive();
  for (const WindowCounter& counter : counters) {
    if (counter.window_start < c.plan.start_time ||
        counter.window_start >= c.plan.end_time) {
      continue;
    }
    // A slot at or before the watermark can only feed windows that already
    // finalized (windows covering slot S start in (S - window, S]).
    if (counter.window_start <= c.closed_through) {
      continue;
    }
    c.window_hosts[counter.window_start].insert(host);
    if (counter.shed > 0) {
      c.window_shed[counter.window_start] += counter.shed;
    }
    if (keep_counters) {
      HostCounter& hc = c.window_counters[counter.window_start][host];
      hc.population += counter.seen;
      hc.sampled += counter.sampled;
    }
  }
}

void PartialCoordinator::AbsorbPartial(WindowPartial&& partial) {
  const auto it = coordinators_.find(partial.query_id);
  if (it == coordinators_.end()) {
    return;
  }
  Coordinator& c = it->second;
  // Shard-side operator metrics merge even off a late partial: the shard
  // did that work whether or not the window can still absorb its groups.
  if (!partial.op_metrics.empty()) {
    MergeOperatorMetrics(c.stats.upstream_op_metrics, partial.op_metrics);
  }
  if (partial.window_start <= c.closed_through) {
    // The window already finalized and emitted; merging now would re-create
    // it and double-emit at expiry. Count the loss instead — lateness
    // budgets, not silent corruption, are the tuning knob.
    ++c.partials_late;
    return;
  }
  if (partial.input_events > 0 || partial.shed_events > 0) {
    WindowShed& ws = c.window_fidelity[partial.window_start];
    ws.input_events += partial.input_events;
    ws.shed_events += partial.shed_events;
  }
  auto& window = c.windows[partial.window_start];
  for (size_t g = 0; g < partial.keys.size(); ++g) {
    // Reuse the hash the shard computed at fold time; recompute only for
    // partials from senders that predate hash caching.
    HashedGroupKey hk =
        g < partial.key_hashes.size()
            ? HashedGroupKey(std::move(partial.keys[g]),
                             partial.key_hashes[g])
            : HashedGroupKey(std::move(partial.keys[g]));
    CoordGroup& merged = window[std::move(hk)];
    if (merged.accumulators.empty()) {
      meter_.ChargeScrub(
          static_cast<int64_t>(partial.accumulators[g].size()) *
          config_.costs.central_group_update_ns);
      merged.accumulators = std::move(partial.accumulators[g]);
    } else {
      for (size_t a = 0; a < merged.accumulators.size(); ++a) {
        meter_.ChargeScrub(config_.costs.central_group_update_ns);
        merged.accumulators[a].Merge(std::move(partial.accumulators[g][a]));
      }
    }
    if (g < partial.group_readings.size()) {
      // Merge the per-(group, host) readings; RunningStats merge is exact,
      // so shard/region boundaries don't affect the estimator.
      for (GroupHostReadings& ghr : partial.group_readings[g]) {
        std::vector<RunningStats>& dst = merged.host_readings[ghr.host];
        if (dst.size() < ghr.readings.size()) {
          dst.resize(ghr.readings.size());
        }
        for (size_t s = 0; s < ghr.readings.size(); ++s) {
          dst[s].Merge(ghr.readings[s]);
        }
      }
    }
  }
}

void PartialCoordinator::ForwardRow(const ResultRow& row) {
  const auto it = coordinators_.find(row.query_id);
  if (it == coordinators_.end()) {
    return;
  }
  Coordinator& c = it->second;
  if (config_.collect_op_metrics && !c.pipeline.ops.empty()) {
    // Raw-mode Finalize is a passthrough; row counts only (no per-row clock).
    if (c.stats.op_metrics.empty()) {
      c.stats.op_metrics.resize(c.pipeline.ops.size());
    }
    OperatorMetrics& m = c.stats.op_metrics.front();
    m.rows_in += 1;
    m.rows_out += 1;
  }
  ++c.stats.rows_emitted;
  c.sink(row);
}

void PartialCoordinator::FinalizeWindow(Coordinator& c, TimeMicros start,
                                        CoordinatorGroups& groups) {
  // The coordinator pipeline is the single Finalize op; one timed batch per
  // finalized window.
  const bool metrics = config_.collect_op_metrics && !c.pipeline.ops.empty();
  uint64_t t0 = 0;
  uint64_t groups_in = 0;
  if (metrics) {
    if (c.stats.op_metrics.empty()) {
      c.stats.op_metrics.resize(c.pipeline.ops.size());
    }
    t0 = WorkerPool::ThreadCpuNs();
    groups_in = groups.size();
  }
  const CentralPlan& plan = c.plan;
  // Completeness: union of hosts heard from across the slide-grid slots the
  // window covers. An empty union means no counters ever flowed (hand-built
  // batches) — expected set unknown, report 1.0.
  double completeness = 1.0;
  if (plan.hosts_sampled > 0) {
    std::set<HostId> hosts;
    for (auto sit = c.window_hosts.lower_bound(start);
         sit != c.window_hosts.end() &&
         sit->first < start + plan.window_micros;
         ++sit) {
      hosts.insert(sit->second.begin(), sit->second.end());
    }
    if (!hosts.empty()) {
      completeness =
          std::min(1.0, static_cast<double>(hosts.size()) /
                            static_cast<double>(plan.hosts_sampled));
    }
  }
  // Fidelity: central-side shed from the partials, agent-side shed from the
  // counters of every slide-grid slot the window covers — the same ratio
  // the single-instance close computes per window.
  uint64_t input_events = 0;
  uint64_t shed_events = 0;
  const auto fit = c.window_fidelity.find(start);
  if (fit != c.window_fidelity.end()) {
    input_events = fit->second.input_events;
    shed_events = std::min(fit->second.shed_events, input_events);
  }
  uint64_t agent_shed = 0;
  for (auto sit = c.window_shed.lower_bound(start);
       sit != c.window_shed.end() && sit->first < start + plan.window_micros;
       ++sit) {
    agent_shed += sit->second;
  }
  const uint64_t attempted = input_events + agent_shed;
  const double fidelity =
      attempted == 0 ? 1.0
                     : static_cast<double>(input_events - shed_events) /
                           static_cast<double>(attempted);
  ++c.stats.windows_closed;
  c.stats.completeness_sum += completeness;
  c.stats.completeness_min = std::min(c.stats.completeness_min, completeness);
  if (completeness < 1.0) {
    ++c.stats.windows_incomplete;
  }
  c.stats.agent_events_shed += agent_shed;
  c.stats.fidelity_sum += fidelity;
  c.stats.fidelity_min = std::min(c.stats.fidelity_min, fidelity);
  if (fidelity < 1.0) {
    ++c.stats.windows_lossy;
  }
  // Finalize-stage sampling inputs: global per-host M_i / m_i summed over
  // the slots this window covers, and the ratio fallback scale (Eq. 1) for
  // scaled slots outside the bounded set (join plans).
  const bool sampling = plan.SamplingActive();
  std::map<HostId, HostCounter> host_counters;
  double ratio_scale = 1.0;
  if (sampling) {
    for (auto sit = c.window_counters.lower_bound(start);
         sit != c.window_counters.end() &&
         sit->first < start + plan.window_micros;
         ++sit) {
      for (const auto& [host, counter] : sit->second) {
        HostCounter& hc = host_counters[host];
        hc.population += counter.population;
        hc.sampled += counter.sampled;
      }
    }
    uint64_t population = 0;
    uint64_t sampled = 0;
    for (const auto& [host, hc] : host_counters) {
      population += hc.population;
      sampled += hc.sampled;
    }
    if (sampled > 0 && population > 0) {
      ratio_scale =
          static_cast<double>(population) / static_cast<double>(sampled);
    }
    if (plan.hosts_sampled > 0 && plan.hosts_targeted > 0) {
      ratio_scale *= static_cast<double>(plan.hosts_targeted) /
                     static_cast<double>(plan.hosts_sampled);
    }
  }
  // Ungrouped queries emit a row even for empty windows (series stay
  // continuous), matching single-instance behaviour.
  if (plan.group_by.empty() && groups.empty()) {
    groups[HashedGroupKey(GroupKey{})].accumulators.resize(
        plan.aggregates.size());
  }
  const std::vector<int>& bounded = c.pipeline.bounded_aggregates;
  // Same canonical order as the single-instance close: merge order depends
  // on shard/region partial arrival, which must not leak into row order.
  std::vector<std::pair<const HashedGroupKey*, CoordGroup*>> ordered;
  ordered.reserve(groups.size());
  for (auto& [hashed_key, group] : groups) {
    ordered.emplace_back(&hashed_key, &group);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              return CanonicalGroupOrder(*a.first, *b.first);
            });
  for (auto& [hashed_key_ptr, group_ptr] : ordered) {
    const HashedGroupKey& hashed_key = *hashed_key_ptr;
    CoordGroup& group = *group_ptr;
    if (group.accumulators.empty()) {
      group.accumulators.resize(plan.aggregates.size());
    }
    std::vector<Value> agg_values(plan.aggregates.size());
    std::vector<double> agg_bounds(plan.aggregates.size(), 0.0);
    for (size_t i = 0; i < plan.aggregates.size(); ++i) {
      const AggregateSpec& spec = plan.aggregates[i];
      const auto bounded_it =
          std::find(bounded.begin(), bounded.end(), static_cast<int>(i));
      if (sampling && bounded_it != bounded.end()) {
        // Per-group Eq. 1-3: this group's readings for the slot, per host,
        // against the *global* per-host population counters. Sampled events
        // from a host that landed in other groups are zero readings for
        // this one (m_h - count_{h,g}).
        const size_t s =
            static_cast<size_t>(bounded_it - bounded.begin());
        std::vector<HostSampleStats> host_stats;
        for (const auto& [host, hc] : host_counters) {
          HostSampleStats h;
          h.population = hc.population;
          uint64_t observed = 0;
          const auto rit = group.host_readings.find(host);
          if (rit != group.host_readings.end() && s < rit->second.size()) {
            h.readings = rit->second[s];
            observed = h.readings.count();
          }
          const uint64_t zeros =
              hc.sampled > observed ? hc.sampled - observed : 0;
          if (zeros > 0) {
            h.readings.Merge(RunningStats::Constant(zeros, 0.0));
          }
          host_stats.push_back(std::move(h));
        }
        // Hosts that shipped events but no counters (hand-built batches):
        // no population info, so the observed readings stand in for it.
        for (const auto& [host, readings] : group.host_readings) {
          if (host_counters.count(host) > 0) {
            continue;
          }
          HostSampleStats h;
          if (s < readings.size()) {
            h.readings = readings[s];
          }
          h.population = h.readings.count();
          host_stats.push_back(std::move(h));
        }
        agg_values[i] = FinalizeBoundedSlot(
            spec, group.accumulators[i], std::move(host_stats),
            plan.hosts_sampled, plan.hosts_targeted, ratio_scale,
            &agg_bounds[i]);
        continue;
      }
      const double scale =
          (c.pipeline.needs_scaling && spec.ScalesUnderSampling())
              ? ratio_scale
              : 1.0;
      agg_values[i] = FinalizeAccumulator(spec, group.accumulators[i], scale);
    }
    ResultRow row;
    row.query_id = plan.query_id;
    row.window_start = start;
    row.window_end = start + plan.window_micros;
    row.completeness = completeness;
    row.fidelity = fidelity;
    for (const OutputColumn& column : plan.outputs) {
      row.values.push_back(
          EvalOutputExpr(column.expr, hashed_key.key, agg_values));
      row.error_bounds.push_back(
          column.expr.kind == OutputKind::kAggregate
              ? agg_bounds[static_cast<size_t>(column.expr.index)]
              : 0.0);
    }
    ++c.stats.groups_emitted;
    ++c.stats.rows_emitted;
    c.sink(row);
  }
  if (metrics) {
    OperatorMetrics& m = c.stats.op_metrics.front();
    m.rows_in += groups_in;
    m.rows_out += ordered.size();
    m.batches += 1;
    m.cpu_ns += WorkerPool::ThreadCpuNs() - t0;
  }
  c.closed_through = std::max(c.closed_through, start);
}

void PartialCoordinator::OnTick(TimeMicros now) {
  for (auto cit = coordinators_.begin(); cit != coordinators_.end();) {
    Coordinator& c = cit->second;
    // Ascending start order (std::map), so closed_through stays monotone.
    for (auto wit = c.windows.begin(); wit != c.windows.end();) {
      const TimeMicros window_end = wit->first + c.plan.window_micros;
      if (window_end + config_.allowed_lateness <= now ||
          now >= c.plan.end_time + config_.allowed_lateness) {
        FinalizeWindow(c, wit->first, wit->second);
        c.window_fidelity.erase(wit->first);
        wit = c.windows.erase(wit);
      } else {
        ++wit;
      }
    }
    // GC completeness / counter slots no still-open window can cover.
    while (!c.window_hosts.empty() &&
           c.window_hosts.begin()->first + c.plan.window_micros +
                   config_.allowed_lateness <=
               now) {
      c.window_hosts.erase(c.window_hosts.begin());
    }
    while (!c.window_counters.empty() &&
           c.window_counters.begin()->first + c.plan.window_micros +
                   config_.allowed_lateness <=
               now) {
      c.window_counters.erase(c.window_counters.begin());
    }
    while (!c.window_shed.empty() &&
           c.window_shed.begin()->first + c.plan.window_micros +
                   config_.allowed_lateness <=
               now) {
      c.window_shed.erase(c.window_shed.begin());
    }
    if (now >= c.plan.end_time + config_.allowed_lateness) {
      retired_stats_[cit->first] = c.stats;
      cit = coordinators_.erase(cit);
    } else {
      ++cit;
    }
  }
}

uint64_t PartialCoordinator::DuplicateBatches(QueryId query_id) const {
  const auto it = coordinators_.find(query_id);
  if (it != coordinators_.end()) {
    return it->second.stats.batches_duplicate;
  }
  const auto rit = retired_stats_.find(query_id);
  return rit == retired_stats_.end() ? 0 : rit->second.batches_duplicate;
}

uint64_t PartialCoordinator::LatePartials(QueryId query_id) const {
  const auto it = coordinators_.find(query_id);
  return it == coordinators_.end() ? 0 : it->second.partials_late;
}

const CentralQueryStats* PartialCoordinator::StatsFor(
    QueryId query_id) const {
  const auto it = coordinators_.find(query_id);
  if (it != coordinators_.end()) {
    return &it->second.stats;
  }
  const auto rit = retired_stats_.find(query_id);
  return rit == retired_stats_.end() ? nullptr : &rit->second;
}

}  // namespace scrub
