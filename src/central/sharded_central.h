// ShardedCentral: a small ScrubCentral cluster.
//
// The paper notes that "only a small ScrubCentral cluster was needed" even
// for fleet-wide queries — central execution scales out because the work is
// partitionable. This deployment runs N ScrubCentral shards behind a
// router:
//
//  * Incoming batches are re-bucketed per event by request-id hash, so both
//    sides of the request-id equi-join land on the same shard and every
//    shard runs the ordinary single-instance pipeline on its slice.
//  * Aggregate-mode shards run the compiled physical pipeline in the shard
//    role (Decode..WindowClose): closing a window emits mergeable per-group
//    state (counts, sums, min/max, HyperLogLog registers, SpaceSaving
//    summaries) instead of rows.
//  * The coordinator — a PartialCoordinator (src/central/coordinator.h),
//    shared with the regional combiner tier — runs the pipeline's Finalize
//    stage: it merges the shards' partials per (window, group) and
//    finalizes exactly one row stream — identical, for exact aggregates, to
//    what a single instance would produce (tested).
//  * Raw-mode (no aggregates) queries shard trivially: every shard emits
//    finished rows for its slice and the coordinator just forwards them —
//    no merge step, since each joined tuple is wholly resident on one
//    shard.
//
// Execution is parallel: a fixed-size WorkerPool runs per-shard batch
// ingestion (decode + join + group + accumulate) and per-shard window-close
// partial computation concurrently — shards touch disjoint state, so no
// locks are needed inside the shard pipeline. Determinism for any worker
// count (including the inline workers == 0 path) comes from the merge
// discipline, not from execution order:
//
//  * shard sinks buffer partials/rows into a per-shard slot that only that
//    shard's task writes;
//  * the coordinator drains the slots in shard-index order after joining,
//    so partials merge in exactly the order the sequential loop produced;
//  * per-(window, group) accumulator state is mergeable, and within one
//    shard the event order is the batch arrival order, bit-identical to the
//    sequential path.
//
// Sampled queries (host- or event-level) shard too. Splitting the pipeline
// at WindowClose is what makes it work: the Eq. 1-3 estimator needs a
// global view of per-host populations that request-id slicing destroys on
// any single shard, so the router keeps the agents' sampling counters
// (M_i / m_i per host per slot) at the coordinator, shards collect
// per-(group, host) readings into their partials, and the coordinator's
// Finalize merges both globally and runs the estimator once per
// (window, group) — reporting an Eq. 2-3 error bound per group, which a
// single instance only provides for ungrouped plans.

#ifndef SRC_CENTRAL_SHARDED_CENTRAL_H_
#define SRC_CENTRAL_SHARDED_CENTRAL_H_

#include <memory>
#include <vector>

#include "src/central/central.h"
#include "src/central/coordinator.h"
#include "src/common/worker_pool.h"

namespace scrub {

class ShardedCentral {
 public:
  // `workers` sizes the execution pool: 0 runs everything inline on the
  // caller (the sequential reference path), k > 0 spawns k threads. Results
  // are bit-identical for every worker count.
  ShardedCentral(const SchemaRegistry* registry, size_t shards,
                 CentralConfig config = {}, size_t workers = 0);

  // Aggregate-mode plans merge per-shard partials; raw-mode plans forward
  // per-shard rows directly. Sampled plans get the coordinator-level
  // Eq. 1-3 Finalize (see above).
  Status InstallQuery(const CentralPlan& plan, ResultSink sink);
  void RemoveQuery(QueryId query_id);
  bool HasQuery(QueryId query_id) const {
    return coordinator_.HasQuery(query_id);
  }

  // Routes the batch's events to shards by request-id hash. The batch's
  // sampling counters stay at the coordinator (per-host population view for
  // the Finalize estimator and completeness accounting).
  Status IngestBatch(const EventBatch& batch, TimeMicros now);

  // Batched ingestion: decodes the batches on the pool, re-buckets, then
  // applies each shard's share concurrently. Per-shard event order is the
  // batch order, so results are bit-identical to feeding the batches
  // through IngestBatch one at a time. On a decode failure, batches before
  // the failing one are fully applied and its status is returned (the
  // sequential contract).
  Status IngestBatches(const std::vector<EventBatch>& batches,
                       TimeMicros now);

  // Ticks every shard (concurrently), then merges emitted partials in
  // shard-index order and finalizes coordinator windows whose lateness
  // bound has passed on all shards.
  void OnTick(TimeMicros now);

  size_t shard_count() const { return shards_.size(); }
  const ScrubCentral& shard(size_t i) const { return *shards_[i]; }
  const WorkerPool& pool() const { return pool_; }
  const PartialCoordinator& coordinator() const { return coordinator_; }
  // Events each shard ingested (balance diagnostics).
  std::vector<uint64_t> ShardLoads(QueryId query_id) const;
  // Per-operator metrics summed across shards, parallel to the shard
  // pipeline's ops (live view; retired shard stats still count). EXPLAIN
  // ANALYZE composes this with the coordinator's local Finalize metrics.
  std::vector<OperatorMetrics> ShardOpMetrics(QueryId query_id) const;
  // Router-level dedup hits for one query (retransmits raced their acks).
  uint64_t DuplicateBatches(QueryId query_id) const {
    return coordinator_.DuplicateBatches(query_id);
  }

 private:
  // Drains per-shard partial buffers in shard-index order (the determinism
  // keystone: merge order is a pure function of shard index, never of
  // thread completion order).
  void DrainPartials();
  // Forwards buffered raw-mode rows, again in shard-index order.
  void DrainShardRows();

  const SchemaRegistry* registry_;
  CentralConfig config_;
  std::vector<std::unique_ptr<ScrubCentral>> shards_;
  PartialCoordinator coordinator_;
  // Slot i is written only by shard i's task; drained between regions by
  // the coordinator thread.
  std::vector<std::vector<WindowPartial>> pending_partials_;
  std::vector<std::vector<ResultRow>> pending_rows_;
  WorkerPool pool_;
};

}  // namespace scrub

#endif  // SRC_CENTRAL_SHARDED_CENTRAL_H_
