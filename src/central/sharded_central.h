// ShardedCentral: a small ScrubCentral cluster.
//
// The paper notes that "only a small ScrubCentral cluster was needed" even
// for fleet-wide queries — central execution scales out because the work is
// partitionable. This deployment runs N ScrubCentral shards behind a
// router:
//
//  * Incoming batches are re-bucketed per event by request-id hash, so both
//    sides of the request-id equi-join land on the same shard and every
//    shard runs the ordinary single-instance pipeline on its slice.
//  * Shards run in partial mode: closing a window emits mergeable per-group
//    state (counts, sums, min/max, HyperLogLog registers, SpaceSaving
//    summaries) instead of rows.
//  * The coordinator merges the shards' partials per (window, group) and
//    finalizes exactly one row stream — identical, for exact aggregates, to
//    what a single instance would produce (tested).
//
// Restriction: sampled queries are refused here. Sampling exists to make a
// query *small*; sharding exists to make a *large* query fit. The two knobs
// address opposite regimes, and the Eq. 1-3 estimator needs a global view
// of per-host populations that slicing by request id would destroy.

#ifndef SRC_CENTRAL_SHARDED_CENTRAL_H_
#define SRC_CENTRAL_SHARDED_CENTRAL_H_

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/central/central.h"

namespace scrub {

class ShardedCentral {
 public:
  ShardedCentral(const SchemaRegistry* registry, size_t shards,
                 CentralConfig config = {});

  // Aggregate-mode plans only (raw-mode queries don't need merging — they
  // shard trivially); sampling-active plans are refused (see above).
  Status InstallQuery(const CentralPlan& plan, ResultSink sink);
  void RemoveQuery(QueryId query_id);
  bool HasQuery(QueryId query_id) const {
    return coordinators_.count(query_id) > 0;
  }

  // Routes the batch's events to shards by request-id hash. The batch's
  // sampling counters are dropped (no sampling in sharded mode).
  Status IngestBatch(const EventBatch& batch, TimeMicros now);

  // Ticks every shard, then finalizes coordinator windows whose lateness
  // bound has passed on all shards.
  void OnTick(TimeMicros now);

  size_t shard_count() const { return shards_.size(); }
  const ScrubCentral& shard(size_t i) const { return *shards_[i]; }
  // Events each shard ingested (balance diagnostics).
  std::vector<uint64_t> ShardLoads(QueryId query_id) const;
  // Router-level dedup hits for one query (retransmits raced their acks).
  uint64_t DuplicateBatches(QueryId query_id) const;

 private:
  struct Coordinator {
    CentralPlan plan;
    ResultSink sink;
    // window -> group key -> merged accumulators.
    std::map<TimeMicros,
             std::unordered_map<GroupKey, std::vector<AggAccumulator>,
                                GroupKeyHash>>
        windows;
    // Router-level dedup: shard sub-batches are unsequenced, so duplicate
    // suppression must happen before re-bucketing.
    std::unordered_map<HostId, std::map<uint64_t, SeqTracker>> dedup;
    uint64_t batches_duplicate = 0;
    // Hosts heard from per slide-grid slot (from batch counters), the
    // coordinator's completeness source — shards only see event slices.
    std::map<TimeMicros, std::set<HostId>> window_hosts;
  };

  void AbsorbPartial(WindowPartial&& partial);
  void FinalizeWindow(Coordinator& c, TimeMicros start,
                      std::unordered_map<GroupKey, std::vector<AggAccumulator>,
                                         GroupKeyHash>& groups);

  const SchemaRegistry* registry_;
  CentralConfig config_;
  std::vector<std::unique_ptr<ScrubCentral>> shards_;
  std::unordered_map<QueryId, Coordinator> coordinators_;
};

}  // namespace scrub

#endif  // SRC_CENTRAL_SHARDED_CENTRAL_H_
