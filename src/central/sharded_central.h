// ShardedCentral: a small ScrubCentral cluster.
//
// The paper notes that "only a small ScrubCentral cluster was needed" even
// for fleet-wide queries — central execution scales out because the work is
// partitionable. This deployment runs N ScrubCentral shards behind a
// router:
//
//  * Incoming batches are re-bucketed per event by request-id hash, so both
//    sides of the request-id equi-join land on the same shard and every
//    shard runs the ordinary single-instance pipeline on its slice.
//  * Aggregate-mode shards run the compiled physical pipeline in the shard
//    role (Decode..WindowClose): closing a window emits mergeable per-group
//    state (counts, sums, min/max, HyperLogLog registers, SpaceSaving
//    summaries) instead of rows.
//  * The coordinator runs the pipeline's Finalize stage: it merges the
//    shards' partials per (window, group) and finalizes exactly one row
//    stream — identical, for exact aggregates, to what a single instance
//    would produce (tested).
//  * Raw-mode (no aggregates) queries shard trivially: every shard emits
//    finished rows for its slice and the coordinator just forwards them —
//    no merge step, since each joined tuple is wholly resident on one
//    shard.
//
// Execution is parallel: a fixed-size WorkerPool runs per-shard batch
// ingestion (decode + join + group + accumulate) and per-shard window-close
// partial computation concurrently — shards touch disjoint state, so no
// locks are needed inside the shard pipeline. Determinism for any worker
// count (including the inline workers == 0 path) comes from the merge
// discipline, not from execution order:
//
//  * shard sinks buffer partials/rows into a per-shard slot that only that
//    shard's task writes;
//  * the coordinator drains the slots in shard-index order after joining,
//    so partials merge in exactly the order the sequential loop produced;
//  * per-(window, group) accumulator state is mergeable, and within one
//    shard the event order is the batch arrival order, bit-identical to the
//    sequential path.
//
// Sampled queries (host- or event-level) shard too. Splitting the pipeline
// at WindowClose is what makes it work: the Eq. 1-3 estimator needs a
// global view of per-host populations that request-id slicing destroys on
// any single shard, so the router keeps the agents' sampling counters
// (M_i / m_i per host per slot) at the coordinator, shards collect
// per-(group, host) readings into their partials, and the coordinator's
// Finalize merges both globally and runs the estimator once per
// (window, group) — reporting an Eq. 2-3 error bound per group, which a
// single instance only provides for ungrouped plans.

#ifndef SRC_CENTRAL_SHARDED_CENTRAL_H_
#define SRC_CENTRAL_SHARDED_CENTRAL_H_

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/central/central.h"
#include "src/common/worker_pool.h"

namespace scrub {

class ShardedCentral {
 public:
  // `workers` sizes the execution pool: 0 runs everything inline on the
  // caller (the sequential reference path), k > 0 spawns k threads. Results
  // are bit-identical for every worker count.
  ShardedCentral(const SchemaRegistry* registry, size_t shards,
                 CentralConfig config = {}, size_t workers = 0);

  // Aggregate-mode plans merge per-shard partials; raw-mode plans forward
  // per-shard rows directly. Sampled plans get the coordinator-level
  // Eq. 1-3 Finalize (see above).
  Status InstallQuery(const CentralPlan& plan, ResultSink sink);
  void RemoveQuery(QueryId query_id);
  bool HasQuery(QueryId query_id) const {
    return coordinators_.count(query_id) > 0;
  }

  // Routes the batch's events to shards by request-id hash. The batch's
  // sampling counters stay at the coordinator (per-host population view for
  // the Finalize estimator and completeness accounting).
  Status IngestBatch(const EventBatch& batch, TimeMicros now);

  // Batched ingestion: decodes the batches on the pool, re-buckets, then
  // applies each shard's share concurrently. Per-shard event order is the
  // batch order, so results are bit-identical to feeding the batches
  // through IngestBatch one at a time. On a decode failure, batches before
  // the failing one are fully applied and its status is returned (the
  // sequential contract).
  Status IngestBatches(const std::vector<EventBatch>& batches,
                       TimeMicros now);

  // Ticks every shard (concurrently), then merges emitted partials in
  // shard-index order and finalizes coordinator windows whose lateness
  // bound has passed on all shards.
  void OnTick(TimeMicros now);

  size_t shard_count() const { return shards_.size(); }
  const ScrubCentral& shard(size_t i) const { return *shards_[i]; }
  const WorkerPool& pool() const { return pool_; }
  // Events each shard ingested (balance diagnostics).
  std::vector<uint64_t> ShardLoads(QueryId query_id) const;
  // Router-level dedup hits for one query (retransmits raced their acks).
  uint64_t DuplicateBatches(QueryId query_id) const;

 private:
  // Merged per-group state at the coordinator: accumulators plus, for
  // sampled plans, the per-host readings (parallel to the pipeline's scaled
  // slots) the Eq. 1-3 Finalize consumes. Keyed sorted so the estimator's
  // host iteration — float summation order included — is deterministic.
  struct CoordGroup {
    std::vector<AggAccumulator> accumulators;
    std::map<HostId, std::vector<RunningStats>> host_readings;
  };

  // Coordinator group maps are keyed on pre-hashed keys: AbsorbPartial
  // reuses the hashes the shard computed at fold time (cached once per row)
  // instead of rehashing vector<Value> per merge probe.
  using CoordinatorGroups =
      std::unordered_map<HashedGroupKey, CoordGroup, HashedGroupKeyHash>;

  // Global per-host sampling counters for one slide-grid slot (M_i / m_i
  // summed over the batches the router admitted).
  struct HostCounter {
    uint64_t population = 0;
    uint64_t sampled = 0;
  };

  // Central-side fidelity inputs for one window, summed over the shards'
  // partials: events the shards routed into the window, and the subset they
  // shed under memory pressure.
  struct WindowShed {
    uint64_t input_events = 0;
    uint64_t shed_events = 0;
  };

  struct Coordinator {
    CentralPlan plan;
    // Finalize-stage parameterization (coordinator role): which slots get
    // the per-group Eq. 1-3 bound, which fall back to the ratio scale.
    PhysicalPipeline pipeline;
    ResultSink sink;
    bool raw = false;  // raw-mode: forward shard rows, no merge state
    // window -> group key -> merged accumulators (+ per-host readings).
    std::map<TimeMicros, CoordinatorGroups> windows;
    // Router-level dedup: shard sub-batches are unsequenced, so duplicate
    // suppression must happen before re-bucketing.
    std::unordered_map<HostId, std::map<uint64_t, SeqTracker>> dedup;
    uint64_t batches_duplicate = 0;
    // Hosts heard from per slide-grid slot (from batch counters), the
    // coordinator's completeness source — shards only see event slices.
    std::map<TimeMicros, std::set<HostId>> window_hosts;
    // Sampled plans: per-slot per-host M_i / m_i, absorbed at admission
    // (pre-re-bucket, so the view is global). The Finalize estimator sums
    // the slots each window covers.
    std::map<TimeMicros, std::map<HostId, HostCounter>> window_counters;
    // Agent staging shed per slide-grid slot (from batch counters, kept at
    // admission like window_hosts) — the fidelity denominator's agent part.
    std::map<TimeMicros, uint64_t> window_shed;
    // Central-side fidelity inputs per window, merged from shard partials.
    std::map<TimeMicros, WindowShed> window_fidelity;
  };

  // Drains per-shard partial buffers in shard-index order (the determinism
  // keystone: merge order is a pure function of shard index, never of
  // thread completion order).
  void DrainPartials();
  // Forwards buffered raw-mode rows, again in shard-index order.
  void DrainShardRows();
  void AbsorbPartial(WindowPartial&& partial);
  void FinalizeWindow(Coordinator& c, TimeMicros start,
                      CoordinatorGroups& groups);

  const SchemaRegistry* registry_;
  CentralConfig config_;
  std::vector<std::unique_ptr<ScrubCentral>> shards_;
  std::unordered_map<QueryId, Coordinator> coordinators_;
  // Slot i is written only by shard i's task; drained between regions by
  // the coordinator thread.
  std::vector<std::vector<WindowPartial>> pending_partials_;
  std::vector<std::vector<ResultRow>> pending_rows_;
  WorkerPool pool_;
};

}  // namespace scrub

#endif  // SRC_CENTRAL_SHARDED_CENTRAL_H_
