#include "src/central/adaptive.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"

namespace scrub {

namespace {

// Total pipeline CPU and the decode operator's input counters from a stats
// snapshot. The decode op is ops[0] in every compiled pipeline, so its
// rows_in/batches are "events the central folded" / "batches it folded
// them in" — exactly what pipeline costing and batch-fill tuning need.
void ReadMetrics(const CentralQueryStats& stats, uint64_t* cpu,
                 uint64_t* rows, uint64_t* batches) {
  *cpu = 0;
  *rows = 0;
  *batches = 0;
  for (const OperatorMetrics& m : stats.op_metrics) {
    *cpu += m.cpu_ns;
  }
  if (!stats.op_metrics.empty()) {
    *rows = stats.op_metrics[0].rows_in;
    *batches = stats.op_metrics[0].batches;
  }
}

}  // namespace

void AdaptiveController::Snapshot(QueryControl& c,
                                  const CentralQueryStats& stats) const {
  ReadMetrics(stats, &c.base_cpu, &c.base_rows, &c.base_batches);
}

void AdaptiveController::Deltas(const QueryControl& c,
                                const CentralQueryStats& stats, uint64_t* cpu,
                                uint64_t* rows, uint64_t* batches) const {
  uint64_t total_cpu = 0, total_rows = 0, total_batches = 0;
  ReadMetrics(stats, &total_cpu, &total_rows, &total_batches);
  *cpu = total_cpu - std::min(total_cpu, c.base_cpu);
  *rows = total_rows - std::min(total_rows, c.base_rows);
  *batches = total_batches - std::min(total_batches, c.base_batches);
}

void AdaptiveController::Log(QueryControl& c, TimeMicros now,
                             std::string text) {
  AdaptiveDecision d;
  d.at = now;
  d.text = std::move(text);
  c.decisions.push_back(std::move(d));
}

void AdaptiveController::OnInstall(QueryId id, TimeMicros now,
                                   bool columnar_eligible) {
  if (!config_.enabled || queries_.count(id) > 0) {
    return;
  }
  QueryControl c;
  c.eligible = columnar_eligible;
  c.batch = default_batch_;
  if (!columnar_eligible) {
    // Nothing to A/B: the agent already falls back to the row pipeline
    // (pre-aggregation, or the join is wider than the columnar wire's
    // section cap). Go straight to steady-state batch tuning.
    c.phase = Phase::kSteady;
    c.pipeline_columnar = false;
    Log(c, now, "columnar ineligible; row pipeline locked, tuning batch only");
  } else {
    c.phase = Phase::kCalibrateRow;
    c.pipeline_columnar = false;
    set_pipeline_(id, false);
    Log(c, now,
        StrFormat("calibration started: row pipeline for %zu pumps",
                  config_.calibration_pumps));
  }
  queries_.emplace(id, std::move(c));
}

void AdaptiveController::EnterSteady(QueryId id, TimeMicros now,
                                     QueryControl& c,
                                     const CentralQueryStats& stats) {
  // Pick the cheaper measured pipeline; ties (or a phase that never saw
  // data) keep the system default.
  bool choose_columnar = default_columnar_;
  if (c.row_ns_per_row >= 0.0 && c.col_ns_per_row >= 0.0) {
    choose_columnar = c.col_ns_per_row < c.row_ns_per_row;
    const double fast = std::min(c.row_ns_per_row, c.col_ns_per_row);
    const double slow = std::max(c.row_ns_per_row, c.col_ns_per_row);
    Log(c, now,
        StrFormat("chose %s pipeline (%.0f vs %.0f ns/row, %.2fx)",
                  choose_columnar ? "columnar" : "row",
                  choose_columnar ? c.col_ns_per_row : c.row_ns_per_row,
                  choose_columnar ? c.row_ns_per_row : c.col_ns_per_row,
                  fast > 0.0 ? slow / fast : 1.0));
  } else {
    Log(c, now, "calibration inconclusive; keeping configured pipeline");
  }
  c.pipeline_columnar = choose_columnar;
  set_pipeline_(id, choose_columnar);
  c.phase = Phase::kSteady;
  c.pumps_in_phase = 0;
  c.pumps_since_tune = 0;
  Snapshot(c, stats);
}

void AdaptiveController::TuneBatch(QueryId id, TimeMicros now,
                                   QueryControl& c,
                                   const CentralQueryStats& stats) {
  uint64_t cpu = 0, rows = 0, batches = 0;
  Deltas(c, stats, &cpu, &rows, &batches);
  if (batches == 0) {
    return;  // no traffic this interval; keep the snapshot running
  }
  const double avg_fill = static_cast<double>(rows) /
                          static_cast<double>(batches);
  const size_t cap = c.batch;
  size_t next = cap;
  if (avg_fill >= config_.grow_fill * static_cast<double>(cap)) {
    next = std::min(cap * 2, config_.max_batch_events);
  } else if (avg_fill < config_.shrink_fill * static_cast<double>(cap)) {
    next = std::max(cap / 2, config_.min_batch_events);
  }
  if (next != cap) {
    c.batch = next;
    set_batch_(id, next);
    Log(c, now,
        StrFormat("batch %zu -> %zu (avg fill %.0f rows/flush)", cap, next,
                  avg_fill));
  }
  Snapshot(c, stats);
}

void AdaptiveController::OnPump(QueryId id, TimeMicros now,
                                const CentralQueryStats& stats) {
  if (!config_.enabled) {
    return;
  }
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return;
  }
  QueryControl& c = it->second;
  ++c.pumps_in_phase;

  switch (c.phase) {
    case Phase::kCalibrateRow: {
      if (c.pumps_in_phase == 1) {
        // First pump after install: the agent has applied the forced row
        // pipeline at its last flush boundary; measure from here.
        Snapshot(c, stats);
        return;
      }
      if (c.pumps_in_phase <= config_.calibration_pumps) {
        return;
      }
      uint64_t cpu = 0, rows = 0, batches = 0;
      Deltas(c, stats, &cpu, &rows, &batches);
      if (rows == 0) {
        return;  // extend the phase until real traffic arrives
      }
      c.row_ns_per_row = static_cast<double>(cpu) / static_cast<double>(rows);
      Log(c, now,
          StrFormat("row pipeline measured: %.0f ns/row over %llu rows",
                    c.row_ns_per_row,
                    static_cast<unsigned long long>(rows)));
      c.phase = Phase::kCalibrateColumnar;
      c.pumps_in_phase = 0;
      set_pipeline_(id, true);
      break;
    }
    case Phase::kCalibrateColumnar: {
      if (c.pumps_in_phase == 1) {
        // The switch lands at the agent's next flush; the traffic folded
        // after this snapshot is (almost entirely) columnar.
        Snapshot(c, stats);
        return;
      }
      if (c.pumps_in_phase <= config_.calibration_pumps) {
        return;
      }
      uint64_t cpu = 0, rows = 0, batches = 0;
      Deltas(c, stats, &cpu, &rows, &batches);
      if (rows == 0) {
        return;
      }
      c.col_ns_per_row = static_cast<double>(cpu) / static_cast<double>(rows);
      Log(c, now,
          StrFormat("columnar pipeline measured: %.0f ns/row over %llu rows",
                    c.col_ns_per_row,
                    static_cast<unsigned long long>(rows)));
      EnterSteady(id, now, c, stats);
      break;
    }
    case Phase::kSteady: {
      ++c.pumps_since_tune;
      if (c.pumps_since_tune >= config_.tune_interval_pumps) {
        c.pumps_since_tune = 0;
        TuneBatch(id, now, c, stats);
      }
      break;
    }
  }
}

const std::vector<AdaptiveDecision>* AdaptiveController::DecisionsFor(
    QueryId id) const {
  const auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : &it->second.decisions;
}

std::string AdaptiveController::Describe(QueryId id) const {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return "";
  }
  const QueryControl& c = it->second;
  const char* phase = c.phase == Phase::kSteady
                          ? "steady"
                          : (c.phase == Phase::kCalibrateRow
                                 ? "calibrating:row"
                                 : "calibrating:columnar");
  std::string out = StrFormat(
      "  adaptive: phase=%s pipeline=%s batch=%zu decisions=%zu\n", phase,
      c.pipeline_columnar ? "columnar" : "row", c.batch, c.decisions.size());
  for (const AdaptiveDecision& d : c.decisions) {
    out += StrFormat("    [t=%lld] %s\n", static_cast<long long>(d.at),
                     d.text.c_str());
  }
  return out;
}

}  // namespace scrub
