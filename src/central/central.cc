#include "src/central/central.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"

namespace scrub {

Status ScrubCentral::Install(const CentralPlan& plan, QueryState q) {
  if (queries_.count(plan.query_id) > 0) {
    return AlreadyExists(StrFormat("query %llu already installed at central",
                                   static_cast<unsigned long long>(
                                       plan.query_id)));
  }
  queries_.emplace(plan.query_id, std::move(q));
  return OkStatus();
}

Status ScrubCentral::InstallQuery(const CentralPlan& plan, ResultSink sink) {
  if (queries_.count(plan.query_id) > 0) {
    return AlreadyExists(StrFormat("query %llu already installed at central",
                                   static_cast<unsigned long long>(
                                       plan.query_id)));
  }
  if (sink == nullptr) {
    return InvalidArgument("result sink must be set");
  }
  QueryState q;
  q.plan = plan;
  q.pipeline = CompilePhysical(plan, PipelineRole::kSingleInstance);
  q.sink = std::move(sink);
  return Install(plan, std::move(q));
}

Status ScrubCentral::InstallQueryPartial(const CentralPlan& plan,
                                         PartialSink sink) {
  if (sink == nullptr) {
    return InvalidArgument("partial sink must be set");
  }
  if (!plan.aggregate_mode) {
    return Unimplemented("partial mode requires an aggregate-mode plan");
  }
  QueryState q;
  q.plan = plan;
  q.pipeline = CompilePhysical(plan, PipelineRole::kShard);
  q.partial_sink = std::move(sink);
  return Install(plan, std::move(q));
}

void ScrubCentral::RemoveQuery(QueryId query_id) {
  const auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return;
  }
  QueryState& q = it->second;
  for (auto& [start, window] : q.windows) {
    executor_.CloseWindow(q, &window);
  }
  // Stamp the accountant's high-water mark into the stats snapshot before
  // ReleaseAll forgets the query, so post-mortem DescribeQuery still shows
  // the honest peak (the same survival trick last_encodings uses).
  q.stats.peak_state_bytes =
      std::max<uint64_t>(q.stats.peak_state_bytes, accountant_.peak(query_id));
  retired_stats_[query_id] = q.stats;
  queries_.erase(it);
  // Windows release their charges as they close; this sweeps any residue so
  // a retired query never pins budget.
  accountant_.ReleaseAll(query_id);
}

Status ScrubCentral::IngestBatch(const EventBatch& batch, TimeMicros now) {
  (void)now;
  const auto it = queries_.find(batch.query_id);
  if (it == queries_.end()) {
    // Query already retired; traffic raced the teardown. Not an error.
    return OkStatus();
  }
  QueryState& q = it->second;
  ++q.stats.batches;

  // Duplicate suppression before any counter or event is folded in: a
  // retransmission that raced its ack must not double-count M_i/m_i or
  // re-ingest events. seq == 0 batches (hand-built, shard sub-batches)
  // bypass dedup.
  if (batch.seq != 0 &&
      !q.dedup[batch.host][batch.epoch].Insert(batch.seq)) {
    ++q.stats.batches_duplicate;
    return OkStatus();
  }

  // Fold the agent's sampling counters into per-window host stats. A
  // counter covers one slide period; every window containing that period
  // absorbs it.
  for (const WindowCounter& counter : batch.counters) {
    for (WindowState* w : executor_.WindowsFor(q, counter.window_start)) {
      HostWindowStats& hs = w->host_stats[batch.host];
      hs.population += counter.seen;
      hs.sampled += counter.sampled;
      hs.shed += counter.shed;
      hs.readings.resize(q.pipeline.bounded_aggregates.size());
    }
  }

  if (batch.event_count == 0) {
    return OkStatus();
  }
  return executor_.DecodeAndFold(q, batch.host, batch);
}

Status ScrubCentral::IngestEvents(QueryId query_id, HostId host,
                                  const std::vector<Event>& events) {
  const auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return OkStatus();  // raced teardown, mirror IngestBatch
  }
  QueryState& q = it->second;
  ++q.stats.batches;
  executor_.StampDecodeRows(q, events.size());
  executor_.Fold(q, host, InputChunk::Rows(events));
  return OkStatus();
}

Status ScrubCentral::IngestColumns(QueryId query_id, HostId host,
                                   std::shared_ptr<const ColumnBatch> batch,
                                   const uint32_t* selection,
                                   size_t selected) {
  const auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return OkStatus();  // raced teardown, mirror IngestBatch
  }
  QueryState& q = it->second;
  ++q.stats.batches;
  executor_.StampDecodeRows(
      q, selection != nullptr ? selected : batch->rows());
  executor_.Fold(q, host,
                 InputChunk::Columns(std::move(batch), selection, selected));
  return OkStatus();
}

Status ScrubCentral::IngestJoinColumns(QueryId query_id, HostId host,
                                       const ColumnJoinSlice& slice) {
  const auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return OkStatus();  // raced teardown, mirror IngestBatch
  }
  QueryState& q = it->second;
  ++q.stats.batches;
  executor_.StampDecodeRows(q, slice.order.size());
  executor_.FoldColumnJoin(q, host, slice);
  return OkStatus();
}

void ScrubCentral::OnTick(TimeMicros now) {
  std::vector<QueryId> to_retire;
  for (auto& [qid, q] : queries_) {
    const TimeMicros lateness = config_.allowed_lateness;
    for (auto it = q.windows.begin(); it != q.windows.end();) {
      WindowState& w = it->second;
      const TimeMicros window_end = w.start + q.plan.window_micros;
      if (window_end + lateness <= now) {
        executor_.CloseWindow(q, &w);
        q.closed_through = std::max(q.closed_through, w.start);
        it = q.windows.erase(it);
      } else {
        ++it;
      }
    }
    if (now >= q.plan.end_time + lateness) {
      to_retire.push_back(qid);
    }
  }
  for (const QueryId qid : to_retire) {
    RemoveQuery(qid);
  }
}

const CentralQueryStats* ScrubCentral::StatsFor(QueryId query_id) const {
  const auto it = queries_.find(query_id);
  if (it != queries_.end()) {
    return &it->second.stats;
  }
  const auto rit = retired_stats_.find(query_id);
  return rit == retired_stats_.end() ? nullptr : &rit->second;
}

size_t ScrubCentral::OpenWindows(QueryId query_id) const {
  const auto it = queries_.find(query_id);
  return it == queries_.end() ? 0 : it->second.windows.size();
}

const PhysicalPipeline* ScrubCentral::PipelineFor(QueryId query_id) const {
  const auto it = queries_.find(query_id);
  return it == queries_.end() ? nullptr : &it->second.pipeline;
}

}  // namespace scrub
