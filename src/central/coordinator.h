// PartialCoordinator: the Finalize-stage merge node for every deployment
// that splits the pipeline at WindowClose.
//
// Shard-role centrals (ShardedCentral's shards, the regional combiners'
// inner centrals) stop at WindowClose and emit mergeable WindowPartials.
// Something must hold the global picture — per-slot host presence for
// completeness, per-host M_i / m_i for the Eq. 1-3 estimator, shed ledgers
// for fidelity — merge partials per (window, group), and run Finalize
// exactly once per window. That something used to be a private struct
// inside ShardedCentral; the regional combiner tier needs the identical
// merge-and-finalize contract one network hop further out, so it now lives
// here and ShardedCentral delegates to it.
//
// Differences from the embedded original (both inert for the synchronous
// sharded deployment, load-bearing for the distributed tier):
//
//  * Per-sender envelope dedup (AdmitSequenced) so retransmitted
//    combiner -> central partial envelopes never double-count.
//  * A closed_through watermark: once a window finalizes, later partials or
//    counters for it are dropped and counted (partials_late) instead of
//    silently re-creating — and double-emitting — the window. Combiner
//    partials arrive staggered (inner lateness + one hop + retransmit
//    rounds), so the coordinator's allowed_lateness should be extended by
//    the downstream pipeline depth; ScrubSystem does this.
//  * Per-query CentralQueryStats (live and retired) and a CostMeter, so
//    coordinator CPU is measurable (bench_fleet's second axis).

#ifndef SRC_CENTRAL_COORDINATOR_H_
#define SRC_CENTRAL_COORDINATOR_H_

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/central/executor.h"

namespace scrub {

class PartialCoordinator {
 public:
  explicit PartialCoordinator(CentralConfig config = {})
      : config_(std::move(config)) {}

  // Aggregate-mode plans merge partials; raw-mode plans just forward rows
  // (ForwardRow) — the coordinator still tracks their stats and dedup.
  Status InstallQuery(const CentralPlan& plan, ResultSink sink);
  // Finalizes every held window, then retires the query's stats.
  void RemoveQuery(QueryId query_id);
  bool HasQuery(QueryId query_id) const {
    return coordinators_.count(query_id) > 0;
  }
  const CentralPlan* PlanFor(QueryId query_id) const;

  // Sequenced-sender dedup, one tracker per (sender, epoch): returns false
  // — and counts the duplicate — if this seq was already admitted. seq == 0
  // bypasses (unsequenced senders: ShardedCentral's hand-built batches).
  // Unknown queries return false (traffic raced teardown).
  bool AdmitSequenced(QueryId query_id, HostId sender, uint64_t epoch,
                      uint64_t seq);

  // Per-host sampling/completeness counters for one sender: hosts heard per
  // slide-grid slot, agent staging shed, and — for sampled plans — the
  // global M_i / m_i the Finalize estimator needs. `host` is the host the
  // counters describe (the agent), not the sender of the message; the
  // combiner tier forwards per-agent digests so the union over combiners
  // reconstructs the same global picture the flat topology sees.
  void AbsorbCounters(QueryId query_id, HostId host,
                      const std::vector<WindowCounter>& counters);

  // Merges one shard/region partial into the (window, group) state. Late
  // partials for already-finalized windows are dropped and counted.
  void AbsorbPartial(WindowPartial&& partial);

  // Raw-mode passthrough (each finished row is wholly resident on one
  // shard; no merge step).
  void ForwardRow(const ResultRow& row);

  // Finalizes windows whose lateness bound has passed, in ascending start
  // order (the closed_through watermark is monotone), and retires expired
  // queries.
  void OnTick(TimeMicros now);

  uint64_t DuplicateBatches(QueryId query_id) const;
  uint64_t LatePartials(QueryId query_id) const;
  // Live stats for an installed query, retired stats after expiry.
  const CentralQueryStats* StatsFor(QueryId query_id) const;
  const CostMeter& meter() const { return meter_; }
  const CentralConfig& config() const { return config_; }

 private:
  // Merged per-group state: accumulators plus, for sampled plans, the
  // per-host readings (parallel to the pipeline's scaled slots) the Eq. 1-3
  // Finalize consumes. Keyed sorted so the estimator's host iteration —
  // float summation order included — is deterministic.
  struct CoordGroup {
    std::vector<AggAccumulator> accumulators;
    std::map<HostId, std::vector<RunningStats>> host_readings;
  };

  using CoordinatorGroups =
      std::unordered_map<HashedGroupKey, CoordGroup, HashedGroupKeyHash>;

  // Global per-host sampling counters for one slide-grid slot (M_i / m_i
  // summed over the admitted batches/digests).
  struct HostCounter {
    uint64_t population = 0;
    uint64_t sampled = 0;
  };

  // Central-side fidelity inputs for one window, summed over partials.
  struct WindowShed {
    uint64_t input_events = 0;
    uint64_t shed_events = 0;
  };

  struct Coordinator {
    CentralPlan plan;
    // Finalize-stage parameterization (coordinator role): which slots get
    // the per-group Eq. 1-3 bound, which fall back to the ratio scale.
    PhysicalPipeline pipeline;
    ResultSink sink;
    bool raw = false;  // raw-mode: forward rows, no merge state
    CentralQueryStats stats;
    // window -> group key -> merged accumulators (+ per-host readings).
    std::map<TimeMicros, CoordinatorGroups> windows;
    // Sender-level dedup (per sender host, per epoch).
    std::unordered_map<HostId, std::map<uint64_t, SeqTracker>> dedup;
    // Hosts heard from per slide-grid slot — the completeness source.
    std::map<TimeMicros, std::set<HostId>> window_hosts;
    // Sampled plans: per-slot per-host M_i / m_i. The Finalize estimator
    // sums the slots each window covers.
    std::map<TimeMicros, std::map<HostId, HostCounter>> window_counters;
    // Agent staging shed per slide-grid slot — fidelity's agent part.
    std::map<TimeMicros, uint64_t> window_shed;
    // Central-side fidelity inputs per window, merged from partials.
    std::map<TimeMicros, WindowShed> window_fidelity;
    // Windows at or before this start have finalized; later arrivals for
    // them are late, not a fresh window.
    TimeMicros closed_through = std::numeric_limits<TimeMicros>::min();
    uint64_t partials_late = 0;
  };

  void FinalizeWindow(Coordinator& c, TimeMicros start,
                      CoordinatorGroups& groups);

  CentralConfig config_;
  CostMeter meter_;
  std::unordered_map<QueryId, Coordinator> coordinators_;
  std::unordered_map<QueryId, CentralQueryStats> retired_stats_;
};

}  // namespace scrub

#endif  // SRC_CENTRAL_COORDINATOR_H_
