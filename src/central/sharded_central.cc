#include "src/central/sharded_central.h"

#include <cassert>
#include <utility>

#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/sketch/hyperloglog.h"

namespace scrub {

ShardedCentral::ShardedCentral(const SchemaRegistry* registry, size_t shards,
                               CentralConfig config, size_t workers)
    : registry_(registry),
      config_(config),
      coordinator_(config),
      pending_partials_(shards),
      pending_rows_(shards),
      pool_(workers) {
  assert(shards > 0);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    // Each shard gets its own spill namespace and fault seed: file names in
    // a shared spill directory never collide, and each shard's fault stream
    // is consumed in that shard's own fold order, so runs stay deterministic
    // for any worker count.
    CentralConfig shard_config = config;
    shard_config.spill_instance =
        config.spill_instance + "_s" + std::to_string(i);
    shard_config.spill_seed =
        config.spill_seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
    shards_.push_back(
        std::make_unique<ScrubCentral>(registry, std::move(shard_config)));
  }
}

Status ShardedCentral::InstallQuery(const CentralPlan& plan,
                                    ResultSink sink) {
  if (sink == nullptr) {
    return InvalidArgument("result sink must be set");
  }
  if (coordinator_.HasQuery(plan.query_id)) {
    return AlreadyExists(StrFormat(
        "query %llu already installed",
        static_cast<unsigned long long>(plan.query_id)));
  }
  // Install on every shard first; roll back on failure so a rejected plan
  // leaves no residue. Shards see only an event slice, so their per-window
  // completeness would be meaningless noise — zeroing hosts_sampled in the
  // shard copy marks the expected set unknown there; the coordinator
  // computes completeness from the full batches it routes. For the same
  // reason shards never run the estimator: their pipeline (shard role)
  // stops at WindowClose, and the coordinator holds the global counters.
  CentralPlan shard_plan = plan;
  shard_plan.hosts_sampled = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status s;
    if (plan.aggregate_mode) {
      // Sinks buffer into the shard's own slot; the coordinator drains the
      // slots in shard-index order (DrainPartials), which is what keeps the
      // merge deterministic for any worker count.
      s = shards_[i]->InstallQueryPartial(
          shard_plan, [this, i](WindowPartial&& partial) {
            pending_partials_[i].push_back(std::move(partial));
          });
    } else {
      // Raw mode shards trivially: each joined tuple lives wholly on one
      // shard, so shards emit finished rows and no merge is needed.
      s = shards_[i]->InstallQuery(
          shard_plan, [this, i](const ResultRow& row) {
            pending_rows_[i].push_back(row);
          });
    }
    if (!s.ok()) {
      for (size_t j = 0; j < i; ++j) {
        shards_[j]->RemoveQuery(plan.query_id);
      }
      return s;
    }
  }
  return coordinator_.InstallQuery(plan, std::move(sink));
}

void ShardedCentral::RemoveQuery(QueryId query_id) {
  // Shards flush their open windows (partials and raw rows land in the
  // per-shard buffers), then the coordinator drains in shard order and
  // finalizes whatever it holds.
  for (auto& shard : shards_) {
    shard->RemoveQuery(query_id);
  }
  DrainShardRows();
  DrainPartials();
  coordinator_.RemoveQuery(query_id);
}

Status ShardedCentral::IngestBatch(const EventBatch& batch, TimeMicros now) {
  return IngestBatches({batch}, now);
}

Status ShardedCentral::IngestBatches(const std::vector<EventBatch>& batches,
                                     TimeMicros now) {
  (void)now;
  // Serial admission pass, in batch order: routing, dedup, completeness
  // accounting. All coordinator state; cheap relative to decode + fold.
  struct Admitted {
    const EventBatch* batch;
  };
  std::vector<Admitted> admitted;
  admitted.reserve(batches.size());
  for (const EventBatch& batch : batches) {
    // Dedup here, before re-bucketing: sub-batches are unsequenced. A false
    // return is either a duplicate (counted at the coordinator) or a query
    // that raced teardown — both skip, mirroring ScrubCentral's behaviour.
    if (!coordinator_.AdmitSequenced(batch.query_id, batch.host, batch.epoch,
                                     batch.seq)) {
      continue;
    }
    // Record host presence per slide-grid slot for completeness accounting,
    // and — for sampled plans — keep the global per-host M_i / m_i the
    // coordinator's Finalize estimator needs. This happens pre-re-bucket,
    // so slicing by request id never fragments the population view.
    coordinator_.AbsorbCounters(batch.query_id, batch.host, batch.counters);
    if (batch.event_count == 0) {
      continue;
    }
    admitted.push_back(Admitted{&batch});
  }

  // Parallel decode: each batch is independent and the decoders read only
  // the (immutable) schema registry. Columnar payloads decode into a shared
  // ColumnBatch the shard tasks later index read-only through per-shard
  // selection vectors; the ParallelFor join orders the decode before every
  // shard read.
  struct Decoded {
    std::vector<Event> events;                 // row format
    std::shared_ptr<const ColumnBatch> columns;  // columnar format
    // Columnar join format: per-source sections plus the staging interleave.
    std::vector<std::shared_ptr<const ColumnBatch>> join_sections;
    std::vector<uint8_t> join_order;
  };
  std::vector<Decoded> decoded(admitted.size());
  std::vector<Status> decode_status(admitted.size());
  pool_.ParallelFor(admitted.size(), [&](size_t k) {
    if (admitted[k].batch->format == BatchFormat::kColumnar) {
      Result<ColumnBatch> cols =
          DecodeColumnBatch(*registry_, admitted[k].batch->payload);
      if (cols.ok()) {
        decoded[k].columns =
            std::make_shared<const ColumnBatch>(std::move(*cols));
      } else {
        decode_status[k] = cols.status();
      }
      return;
    }
    if (admitted[k].batch->format == BatchFormat::kColumnarJoin) {
      Result<ColumnJoinBatch> join =
          DecodeColumnJoinBatch(*registry_, admitted[k].batch->payload);
      if (join.ok()) {
        decoded[k].join_sections.reserve(join->sections.size());
        for (ColumnBatch& section : join->sections) {
          decoded[k].join_sections.push_back(
              std::make_shared<const ColumnBatch>(std::move(section)));
        }
        decoded[k].join_order = std::move(join->order);
      } else {
        decode_status[k] = join.status();
      }
      return;
    }
    Result<std::vector<Event>> events =
        DecodeBatch(*registry_, admitted[k].batch->payload);
    if (events.ok()) {
      decoded[k].events = std::move(*events);
    } else {
      decode_status[k] = events.status();
    }
  });
  // Sequential contract: batches before the first decode failure are fully
  // applied; the failure is returned.
  size_t limit = admitted.size();
  Status failure = OkStatus();
  for (size_t k = 0; k < admitted.size(); ++k) {
    if (!decode_status[k].ok()) {
      limit = k;
      failure = decode_status[k];
      break;
    }
  }

  // Re-bucket by request id so join partners colocate. Work lists keep
  // batch order within each shard — the per-shard event order is therefore
  // identical to the one-batch-at-a-time path. Columnar batches re-bucket
  // by slicing selection vectors (order-preserving row-index lists into the
  // shared batch); the events never leave their columns.
  struct ShardWork {
    QueryId query_id;
    HostId host;
    std::vector<Event> events;                   // row format
    std::shared_ptr<const ColumnBatch> columns;  // columnar format
    std::vector<uint32_t> selection;             // rows of `columns`
    ColumnJoinSlice join;  // columnar join format (non-empty order)
  };
  std::vector<std::vector<ShardWork>> work(shards_.size());
  for (size_t k = 0; k < limit; ++k) {
    if (!decoded[k].join_order.empty()) {
      // Join slices re-bucket position by position through the staging
      // interleave — the same per-event request-id routing the row path
      // applies — so each shard's (order, rows) sub-slice preserves the
      // arrival interleave of the requests it owns.
      std::vector<ColumnJoinSlice> buckets(shards_.size());
      std::vector<uint32_t> cursor(decoded[k].join_sections.size(), 0);
      for (const uint8_t s : decoded[k].join_order) {
        const uint32_t row = cursor[s]++;
        const size_t shard = static_cast<size_t>(
            HashMix64(decoded[k].join_sections[s]->request_id(row)) %
            shards_.size());
        buckets[shard].order.push_back(s);
        buckets[shard].rows.push_back(row);
      }
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (buckets[s].order.empty()) {
          continue;
        }
        ShardWork sw;
        sw.query_id = admitted[k].batch->query_id;
        sw.host = admitted[k].batch->host;
        sw.join = std::move(buckets[s]);
        sw.join.sections = decoded[k].join_sections;  // shared, read-only
        work[s].push_back(std::move(sw));
      }
      continue;
    }
    if (decoded[k].columns != nullptr) {
      const ColumnBatch& cols = *decoded[k].columns;
      std::vector<std::vector<uint32_t>> buckets(shards_.size());
      for (size_t r = 0; r < cols.rows(); ++r) {
        const size_t shard = static_cast<size_t>(
            HashMix64(cols.request_id(r)) % shards_.size());
        buckets[shard].push_back(static_cast<uint32_t>(r));
      }
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (buckets[s].empty()) {
          continue;
        }
        ShardWork sw;
        sw.query_id = admitted[k].batch->query_id;
        sw.host = admitted[k].batch->host;
        sw.columns = decoded[k].columns;
        sw.selection = std::move(buckets[s]);
        work[s].push_back(std::move(sw));
      }
      continue;
    }
    std::vector<std::vector<Event>> buckets(shards_.size());
    for (Event& event : decoded[k].events) {
      const size_t shard = static_cast<size_t>(
          HashMix64(event.request_id()) % shards_.size());
      buckets[shard].push_back(std::move(event));
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (buckets[s].empty()) {
        continue;
      }
      ShardWork sw;
      sw.query_id = admitted[k].batch->query_id;
      sw.host = admitted[k].batch->host;
      sw.events = std::move(buckets[s]);
      work[s].push_back(std::move(sw));
    }
  }

  // Parallel fold: shard s's task touches only shard s (plus its own
  // pending_rows_ slot for raw-mode queries). Columnar work reads the
  // shared decoded batch through its selection — read-only, so shards can
  // share it without locks.
  std::vector<Status> shard_status(shards_.size());
  pool_.ParallelFor(shards_.size(), [&](size_t s) {
    for (const ShardWork& sw : work[s]) {
      Status st;
      if (!sw.join.order.empty()) {
        st = shards_[s]->IngestJoinColumns(sw.query_id, sw.host, sw.join);
      } else if (sw.columns != nullptr) {
        st = shards_[s]->IngestColumns(sw.query_id, sw.host, sw.columns,
                                       sw.selection.data(),
                                       sw.selection.size());
      } else {
        st = shards_[s]->IngestEvents(sw.query_id, sw.host, sw.events);
      }
      if (!st.ok() && shard_status[s].ok()) {
        shard_status[s] = st;
      }
    }
  });
  DrainShardRows();  // raw-mode rows are emitted eagerly during the fold
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shard_status[s].ok()) {
      return shard_status[s];
    }
  }
  return failure;
}

void ShardedCentral::DrainPartials() {
  for (size_t i = 0; i < pending_partials_.size(); ++i) {
    for (WindowPartial& partial : pending_partials_[i]) {
      coordinator_.AbsorbPartial(std::move(partial));
    }
    pending_partials_[i].clear();
  }
}

void ShardedCentral::DrainShardRows() {
  for (size_t i = 0; i < pending_rows_.size(); ++i) {
    for (const ResultRow& row : pending_rows_[i]) {
      coordinator_.ForwardRow(row);
    }
    pending_rows_[i].clear();
  }
}

void ShardedCentral::OnTick(TimeMicros now) {
  // Window closes (partial computation: finalize per-group state, package
  // mergeable accumulators) run shard-concurrently; each shard's partials
  // buffer into its own slot.
  pool_.ParallelFor(shards_.size(),
                    [&](size_t i) { shards_[i]->OnTick(now); });
  DrainShardRows();
  DrainPartials();
  // Shards have emitted every window whose end + lateness has passed (and
  // retired expired queries, flushing the rest); finalize those windows.
  coordinator_.OnTick(now);
}

std::vector<OperatorMetrics> ShardedCentral::ShardOpMetrics(
    QueryId query_id) const {
  std::vector<OperatorMetrics> merged;
  for (const auto& shard : shards_) {
    const CentralQueryStats* stats = shard->StatsFor(query_id);
    if (stats != nullptr) {
      MergeOperatorMetrics(merged, stats->op_metrics);
    }
  }
  return merged;
}

std::vector<uint64_t> ShardedCentral::ShardLoads(QueryId query_id) const {
  std::vector<uint64_t> loads;
  loads.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const CentralQueryStats* stats = shard->StatsFor(query_id);
    loads.push_back(stats == nullptr ? 0 : stats->events_ingested);
  }
  return loads;
}

}  // namespace scrub
