#include "src/central/sharded_central.h"

#include <algorithm>
#include <cassert>

#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/sketch/hyperloglog.h"

namespace scrub {

ShardedCentral::ShardedCentral(const SchemaRegistry* registry, size_t shards,
                               CentralConfig config)
    : registry_(registry), config_(config) {
  assert(shards > 0);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<ScrubCentral>(registry, config));
  }
}

Status ShardedCentral::InstallQuery(const CentralPlan& plan,
                                    ResultSink sink) {
  if (sink == nullptr) {
    return InvalidArgument("result sink must be set");
  }
  if (coordinators_.count(plan.query_id) > 0) {
    return AlreadyExists(StrFormat(
        "query %llu already installed",
        static_cast<unsigned long long>(plan.query_id)));
  }
  // Install in partial mode on every shard first; roll back on failure so a
  // rejected plan leaves no residue. Shards see only an event slice, so
  // their per-window completeness would be meaningless noise — zeroing
  // hosts_sampled in the shard copy marks the expected set unknown there;
  // the coordinator computes completeness from the full batches it routes.
  CentralPlan shard_plan = plan;
  shard_plan.hosts_sampled = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status s = shards_[i]->InstallQueryPartial(
        shard_plan, [this](WindowPartial&& partial) {
          AbsorbPartial(std::move(partial));
        });
    if (!s.ok()) {
      for (size_t j = 0; j < i; ++j) {
        shards_[j]->RemoveQuery(plan.query_id);
      }
      return s;
    }
  }
  Coordinator c;
  c.plan = plan;
  c.sink = std::move(sink);
  coordinators_.emplace(plan.query_id, std::move(c));
  return OkStatus();
}

void ShardedCentral::RemoveQuery(QueryId query_id) {
  // Shards flush their open windows (partials land in the coordinator),
  // then the coordinator finalizes whatever it holds.
  for (auto& shard : shards_) {
    shard->RemoveQuery(query_id);
  }
  const auto it = coordinators_.find(query_id);
  if (it == coordinators_.end()) {
    return;
  }
  for (auto& [start, groups] : it->second.windows) {
    FinalizeWindow(it->second, start, groups);
  }
  coordinators_.erase(it);
}

Status ShardedCentral::IngestBatch(const EventBatch& batch, TimeMicros now) {
  const auto cit = coordinators_.find(batch.query_id);
  if (cit == coordinators_.end()) {
    return OkStatus();  // raced teardown, mirror ScrubCentral's behaviour
  }
  Coordinator& c = cit->second;
  // Dedup here, before re-bucketing: sub-batches are unsequenced.
  if (batch.seq != 0 &&
      !c.dedup[batch.host][batch.epoch].Insert(batch.seq)) {
    ++c.batches_duplicate;
    return OkStatus();
  }
  // Record host presence per slide-grid slot for completeness accounting
  // (the counters themselves are dropped: no sampling in sharded mode).
  for (const WindowCounter& counter : batch.counters) {
    if (counter.window_start >= c.plan.start_time &&
        counter.window_start < c.plan.end_time) {
      c.window_hosts[counter.window_start].insert(batch.host);
    }
  }
  if (batch.event_count == 0) {
    return OkStatus();
  }
  Result<std::vector<Event>> events = DecodeBatch(*registry_, batch.payload);
  if (!events.ok()) {
    return events.status();
  }
  // Re-bucket by request id so join partners colocate.
  std::vector<std::vector<Event>> buckets(shards_.size());
  for (Event& event : *events) {
    const size_t shard = static_cast<size_t>(
        HashMix64(event.request_id()) % shards_.size());
    buckets[shard].push_back(std::move(event));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (buckets[i].empty()) {
      continue;
    }
    EventBatch sub;
    sub.query_id = batch.query_id;
    sub.host = batch.host;
    sub.event_count = buckets[i].size();
    sub.payload = EncodeBatch(buckets[i]);
    Status s = shards_[i]->IngestBatch(sub, now);
    if (!s.ok()) {
      return s;
    }
  }
  return OkStatus();
}

void ShardedCentral::AbsorbPartial(WindowPartial&& partial) {
  const auto it = coordinators_.find(partial.query_id);
  if (it == coordinators_.end()) {
    return;
  }
  auto& window = it->second.windows[partial.window_start];
  for (size_t g = 0; g < partial.keys.size(); ++g) {
    auto& merged = window[partial.keys[g]];
    if (merged.empty()) {
      merged = std::move(partial.accumulators[g]);
      continue;
    }
    for (size_t a = 0; a < merged.size(); ++a) {
      merged[a].Merge(std::move(partial.accumulators[g][a]));
    }
  }
}

void ShardedCentral::FinalizeWindow(
    Coordinator& c, TimeMicros start,
    std::unordered_map<GroupKey, std::vector<AggAccumulator>, GroupKeyHash>&
        groups) {
  const CentralPlan& plan = c.plan;
  // Completeness: union of hosts heard from across the slide-grid slots the
  // window covers. An empty union means no counters ever flowed (hand-built
  // batches) — expected set unknown, report 1.0.
  double completeness = 1.0;
  if (plan.hosts_sampled > 0) {
    std::set<HostId> hosts;
    for (auto sit = c.window_hosts.lower_bound(start);
         sit != c.window_hosts.end() &&
         sit->first < start + plan.window_micros;
         ++sit) {
      hosts.insert(sit->second.begin(), sit->second.end());
    }
    if (!hosts.empty()) {
      completeness =
          std::min(1.0, static_cast<double>(hosts.size()) /
                            static_cast<double>(plan.hosts_sampled));
    }
  }
  // Ungrouped queries emit a row even for empty windows (series stay
  // continuous), matching single-instance behaviour.
  if (plan.group_by.empty() && groups.empty()) {
    groups[GroupKey{}].resize(plan.aggregates.size());
  }
  for (auto& [key, accumulators] : groups) {
    if (accumulators.empty()) {
      accumulators.resize(plan.aggregates.size());
    }
    std::vector<Value> agg_values(plan.aggregates.size());
    for (size_t i = 0; i < plan.aggregates.size(); ++i) {
      agg_values[i] =
          FinalizeAccumulator(plan.aggregates[i], accumulators[i], 1.0);
    }
    ResultRow row;
    row.query_id = plan.query_id;
    row.window_start = start;
    row.window_end = start + plan.window_micros;
    row.completeness = completeness;
    for (const OutputColumn& column : plan.outputs) {
      row.values.push_back(EvalOutputExpr(column.expr, key, agg_values));
      row.error_bounds.push_back(0.0);
    }
    c.sink(row);
  }
}

void ShardedCentral::OnTick(TimeMicros now) {
  for (auto& shard : shards_) {
    shard->OnTick(now);
  }
  // Shards have emitted every window whose end + lateness has passed (and
  // retired expired queries, flushing the rest); finalize those windows.
  for (auto cit = coordinators_.begin(); cit != coordinators_.end();) {
    Coordinator& c = cit->second;
    for (auto wit = c.windows.begin(); wit != c.windows.end();) {
      const TimeMicros window_end = wit->first + c.plan.window_micros;
      if (window_end + config_.allowed_lateness <= now ||
          now >= c.plan.end_time + config_.allowed_lateness) {
        FinalizeWindow(c, wit->first, wit->second);
        wit = c.windows.erase(wit);
      } else {
        ++wit;
      }
    }
    // GC completeness slots no still-open window can cover.
    while (!c.window_hosts.empty() &&
           c.window_hosts.begin()->first + c.plan.window_micros +
                   config_.allowed_lateness <=
               now) {
      c.window_hosts.erase(c.window_hosts.begin());
    }
    if (now >= c.plan.end_time + config_.allowed_lateness) {
      cit = coordinators_.erase(cit);
    } else {
      ++cit;
    }
  }
}

uint64_t ShardedCentral::DuplicateBatches(QueryId query_id) const {
  const auto it = coordinators_.find(query_id);
  return it == coordinators_.end() ? 0 : it->second.batches_duplicate;
}

std::vector<uint64_t> ShardedCentral::ShardLoads(QueryId query_id) const {
  std::vector<uint64_t> loads;
  loads.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const CentralQueryStats* stats = shard->StatsFor(query_id);
    loads.push_back(stats == nullptr ? 0 : stats->events_ingested);
  }
  return loads;
}

}  // namespace scrub
