#include "src/central/sharded_central.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/sketch/hyperloglog.h"

namespace scrub {

ShardedCentral::ShardedCentral(const SchemaRegistry* registry, size_t shards,
                               CentralConfig config, size_t workers)
    : registry_(registry),
      config_(config),
      pending_partials_(shards),
      pending_rows_(shards),
      pool_(workers) {
  assert(shards > 0);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    // Each shard gets its own spill namespace and fault seed: file names in
    // a shared spill directory never collide, and each shard's fault stream
    // is consumed in that shard's own fold order, so runs stay deterministic
    // for any worker count.
    CentralConfig shard_config = config;
    shard_config.spill_instance =
        config.spill_instance + "_s" + std::to_string(i);
    shard_config.spill_seed =
        config.spill_seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
    shards_.push_back(
        std::make_unique<ScrubCentral>(registry, std::move(shard_config)));
  }
}

Status ShardedCentral::InstallQuery(const CentralPlan& plan,
                                    ResultSink sink) {
  if (sink == nullptr) {
    return InvalidArgument("result sink must be set");
  }
  if (coordinators_.count(plan.query_id) > 0) {
    return AlreadyExists(StrFormat(
        "query %llu already installed",
        static_cast<unsigned long long>(plan.query_id)));
  }
  // Install on every shard first; roll back on failure so a rejected plan
  // leaves no residue. Shards see only an event slice, so their per-window
  // completeness would be meaningless noise — zeroing hosts_sampled in the
  // shard copy marks the expected set unknown there; the coordinator
  // computes completeness from the full batches it routes. For the same
  // reason shards never run the estimator: their pipeline (shard role)
  // stops at WindowClose, and the coordinator holds the global counters.
  CentralPlan shard_plan = plan;
  shard_plan.hosts_sampled = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status s;
    if (plan.aggregate_mode) {
      // Sinks buffer into the shard's own slot; the coordinator drains the
      // slots in shard-index order (DrainPartials), which is what keeps the
      // merge deterministic for any worker count.
      s = shards_[i]->InstallQueryPartial(
          shard_plan, [this, i](WindowPartial&& partial) {
            pending_partials_[i].push_back(std::move(partial));
          });
    } else {
      // Raw mode shards trivially: each joined tuple lives wholly on one
      // shard, so shards emit finished rows and no merge is needed.
      s = shards_[i]->InstallQuery(
          shard_plan, [this, i](const ResultRow& row) {
            pending_rows_[i].push_back(row);
          });
    }
    if (!s.ok()) {
      for (size_t j = 0; j < i; ++j) {
        shards_[j]->RemoveQuery(plan.query_id);
      }
      return s;
    }
  }
  Coordinator c;
  c.plan = plan;
  c.pipeline = CompilePhysical(plan, PipelineRole::kCoordinator);
  c.sink = std::move(sink);
  c.raw = !plan.aggregate_mode;
  coordinators_.emplace(plan.query_id, std::move(c));
  return OkStatus();
}

void ShardedCentral::RemoveQuery(QueryId query_id) {
  // Shards flush their open windows (partials and raw rows land in the
  // per-shard buffers), then the coordinator drains in shard order and
  // finalizes whatever it holds.
  for (auto& shard : shards_) {
    shard->RemoveQuery(query_id);
  }
  DrainShardRows();
  DrainPartials();
  const auto it = coordinators_.find(query_id);
  if (it == coordinators_.end()) {
    return;
  }
  for (auto& [start, groups] : it->second.windows) {
    FinalizeWindow(it->second, start, groups);
  }
  coordinators_.erase(it);
}

Status ShardedCentral::IngestBatch(const EventBatch& batch, TimeMicros now) {
  return IngestBatches({batch}, now);
}

Status ShardedCentral::IngestBatches(const std::vector<EventBatch>& batches,
                                     TimeMicros now) {
  (void)now;
  // Serial admission pass, in batch order: routing, dedup, completeness
  // accounting. All coordinator state; cheap relative to decode + fold.
  struct Admitted {
    const EventBatch* batch;
  };
  std::vector<Admitted> admitted;
  admitted.reserve(batches.size());
  for (const EventBatch& batch : batches) {
    const auto cit = coordinators_.find(batch.query_id);
    if (cit == coordinators_.end()) {
      continue;  // raced teardown, mirror ScrubCentral's behaviour
    }
    Coordinator& c = cit->second;
    // Dedup here, before re-bucketing: sub-batches are unsequenced.
    if (batch.seq != 0 &&
        !c.dedup[batch.host][batch.epoch].Insert(batch.seq)) {
      ++c.batches_duplicate;
      continue;
    }
    // Record host presence per slide-grid slot for completeness accounting,
    // and — for sampled plans — keep the global per-host M_i / m_i the
    // coordinator's Finalize estimator needs. This happens pre-re-bucket,
    // so slicing by request id never fragments the population view.
    const bool keep_counters = c.plan.SamplingActive();
    for (const WindowCounter& counter : batch.counters) {
      if (counter.window_start >= c.plan.start_time &&
          counter.window_start < c.plan.end_time) {
        c.window_hosts[counter.window_start].insert(batch.host);
        if (counter.shed > 0) {
          c.window_shed[counter.window_start] += counter.shed;
        }
        if (keep_counters) {
          HostCounter& hc = c.window_counters[counter.window_start]
                                             [batch.host];
          hc.population += counter.seen;
          hc.sampled += counter.sampled;
        }
      }
    }
    if (batch.event_count == 0) {
      continue;
    }
    admitted.push_back(Admitted{&batch});
  }

  // Parallel decode: each batch is independent and the decoders read only
  // the (immutable) schema registry. Columnar payloads decode into a shared
  // ColumnBatch the shard tasks later index read-only through per-shard
  // selection vectors; the ParallelFor join orders the decode before every
  // shard read.
  struct Decoded {
    std::vector<Event> events;                 // row format
    std::shared_ptr<const ColumnBatch> columns;  // columnar format
  };
  std::vector<Decoded> decoded(admitted.size());
  std::vector<Status> decode_status(admitted.size());
  pool_.ParallelFor(admitted.size(), [&](size_t k) {
    if (admitted[k].batch->format == BatchFormat::kColumnar) {
      Result<ColumnBatch> cols =
          DecodeColumnBatch(*registry_, admitted[k].batch->payload);
      if (cols.ok()) {
        decoded[k].columns =
            std::make_shared<const ColumnBatch>(std::move(*cols));
      } else {
        decode_status[k] = cols.status();
      }
      return;
    }
    Result<std::vector<Event>> events =
        DecodeBatch(*registry_, admitted[k].batch->payload);
    if (events.ok()) {
      decoded[k].events = std::move(*events);
    } else {
      decode_status[k] = events.status();
    }
  });
  // Sequential contract: batches before the first decode failure are fully
  // applied; the failure is returned.
  size_t limit = admitted.size();
  Status failure = OkStatus();
  for (size_t k = 0; k < admitted.size(); ++k) {
    if (!decode_status[k].ok()) {
      limit = k;
      failure = decode_status[k];
      break;
    }
  }

  // Re-bucket by request id so join partners colocate. Work lists keep
  // batch order within each shard — the per-shard event order is therefore
  // identical to the one-batch-at-a-time path. Columnar batches re-bucket
  // by slicing selection vectors (order-preserving row-index lists into the
  // shared batch); the events never leave their columns.
  struct ShardWork {
    QueryId query_id;
    HostId host;
    std::vector<Event> events;                   // row format
    std::shared_ptr<const ColumnBatch> columns;  // columnar format
    std::vector<uint32_t> selection;             // rows of `columns`
  };
  std::vector<std::vector<ShardWork>> work(shards_.size());
  for (size_t k = 0; k < limit; ++k) {
    if (decoded[k].columns != nullptr) {
      const ColumnBatch& cols = *decoded[k].columns;
      std::vector<std::vector<uint32_t>> buckets(shards_.size());
      for (size_t r = 0; r < cols.rows(); ++r) {
        const size_t shard = static_cast<size_t>(
            HashMix64(cols.request_id(r)) % shards_.size());
        buckets[shard].push_back(static_cast<uint32_t>(r));
      }
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (buckets[s].empty()) {
          continue;
        }
        ShardWork sw;
        sw.query_id = admitted[k].batch->query_id;
        sw.host = admitted[k].batch->host;
        sw.columns = decoded[k].columns;
        sw.selection = std::move(buckets[s]);
        work[s].push_back(std::move(sw));
      }
      continue;
    }
    std::vector<std::vector<Event>> buckets(shards_.size());
    for (Event& event : decoded[k].events) {
      const size_t shard = static_cast<size_t>(
          HashMix64(event.request_id()) % shards_.size());
      buckets[shard].push_back(std::move(event));
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (buckets[s].empty()) {
        continue;
      }
      ShardWork sw;
      sw.query_id = admitted[k].batch->query_id;
      sw.host = admitted[k].batch->host;
      sw.events = std::move(buckets[s]);
      work[s].push_back(std::move(sw));
    }
  }

  // Parallel fold: shard s's task touches only shard s (plus its own
  // pending_rows_ slot for raw-mode queries). Columnar work reads the
  // shared decoded batch through its selection — read-only, so shards can
  // share it without locks.
  std::vector<Status> shard_status(shards_.size());
  pool_.ParallelFor(shards_.size(), [&](size_t s) {
    for (const ShardWork& sw : work[s]) {
      Status st =
          sw.columns != nullptr
              ? shards_[s]->IngestColumns(sw.query_id, sw.host, sw.columns,
                                          sw.selection.data(),
                                          sw.selection.size())
              : shards_[s]->IngestEvents(sw.query_id, sw.host, sw.events);
      if (!st.ok() && shard_status[s].ok()) {
        shard_status[s] = st;
      }
    }
  });
  DrainShardRows();  // raw-mode rows are emitted eagerly during the fold
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shard_status[s].ok()) {
      return shard_status[s];
    }
  }
  return failure;
}

void ShardedCentral::DrainPartials() {
  for (size_t i = 0; i < pending_partials_.size(); ++i) {
    for (WindowPartial& partial : pending_partials_[i]) {
      AbsorbPartial(std::move(partial));
    }
    pending_partials_[i].clear();
  }
}

void ShardedCentral::DrainShardRows() {
  for (size_t i = 0; i < pending_rows_.size(); ++i) {
    for (const ResultRow& row : pending_rows_[i]) {
      const auto it = coordinators_.find(row.query_id);
      if (it != coordinators_.end()) {
        it->second.sink(row);
      }
    }
    pending_rows_[i].clear();
  }
}

void ShardedCentral::AbsorbPartial(WindowPartial&& partial) {
  const auto it = coordinators_.find(partial.query_id);
  if (it == coordinators_.end()) {
    return;
  }
  if (partial.input_events > 0 || partial.shed_events > 0) {
    WindowShed& ws = it->second.window_fidelity[partial.window_start];
    ws.input_events += partial.input_events;
    ws.shed_events += partial.shed_events;
  }
  auto& window = it->second.windows[partial.window_start];
  for (size_t g = 0; g < partial.keys.size(); ++g) {
    // Reuse the hash the shard computed at fold time; recompute only for
    // partials from senders that predate hash caching.
    HashedGroupKey hk =
        g < partial.key_hashes.size()
            ? HashedGroupKey(std::move(partial.keys[g]),
                             partial.key_hashes[g])
            : HashedGroupKey(std::move(partial.keys[g]));
    CoordGroup& merged = window[std::move(hk)];
    if (merged.accumulators.empty()) {
      merged.accumulators = std::move(partial.accumulators[g]);
    } else {
      for (size_t a = 0; a < merged.accumulators.size(); ++a) {
        merged.accumulators[a].Merge(std::move(partial.accumulators[g][a]));
      }
    }
    if (g < partial.group_readings.size()) {
      // Merge the shard's per-(group, host) readings; RunningStats merge
      // is exact, so shard boundaries don't affect the estimator.
      for (GroupHostReadings& ghr : partial.group_readings[g]) {
        std::vector<RunningStats>& dst = merged.host_readings[ghr.host];
        if (dst.size() < ghr.readings.size()) {
          dst.resize(ghr.readings.size());
        }
        for (size_t s = 0; s < ghr.readings.size(); ++s) {
          dst[s].Merge(ghr.readings[s]);
        }
      }
    }
  }
}

void ShardedCentral::FinalizeWindow(Coordinator& c, TimeMicros start,
                                    CoordinatorGroups& groups) {
  const CentralPlan& plan = c.plan;
  // Completeness: union of hosts heard from across the slide-grid slots the
  // window covers. An empty union means no counters ever flowed (hand-built
  // batches) — expected set unknown, report 1.0.
  double completeness = 1.0;
  if (plan.hosts_sampled > 0) {
    std::set<HostId> hosts;
    for (auto sit = c.window_hosts.lower_bound(start);
         sit != c.window_hosts.end() &&
         sit->first < start + plan.window_micros;
         ++sit) {
      hosts.insert(sit->second.begin(), sit->second.end());
    }
    if (!hosts.empty()) {
      completeness =
          std::min(1.0, static_cast<double>(hosts.size()) /
                            static_cast<double>(plan.hosts_sampled));
    }
  }
  // Fidelity: central-side shed from the shards' partials, agent-side shed
  // from the counters of every slide-grid slot the window covers — the same
  // ratio the single-instance close computes per window.
  uint64_t input_events = 0;
  uint64_t shed_events = 0;
  const auto fit = c.window_fidelity.find(start);
  if (fit != c.window_fidelity.end()) {
    input_events = fit->second.input_events;
    shed_events = std::min(fit->second.shed_events, input_events);
  }
  uint64_t agent_shed = 0;
  for (auto sit = c.window_shed.lower_bound(start);
       sit != c.window_shed.end() && sit->first < start + plan.window_micros;
       ++sit) {
    agent_shed += sit->second;
  }
  const uint64_t attempted = input_events + agent_shed;
  const double fidelity =
      attempted == 0 ? 1.0
                     : static_cast<double>(input_events - shed_events) /
                           static_cast<double>(attempted);
  // Finalize-stage sampling inputs: global per-host M_i / m_i summed over
  // the slots this window covers, and the ratio fallback scale (Eq. 1) for
  // scaled slots outside the bounded set (join plans).
  const bool sampling = plan.SamplingActive();
  std::map<HostId, HostCounter> host_counters;
  double ratio_scale = 1.0;
  if (sampling) {
    for (auto sit = c.window_counters.lower_bound(start);
         sit != c.window_counters.end() &&
         sit->first < start + plan.window_micros;
         ++sit) {
      for (const auto& [host, counter] : sit->second) {
        HostCounter& hc = host_counters[host];
        hc.population += counter.population;
        hc.sampled += counter.sampled;
      }
    }
    uint64_t population = 0;
    uint64_t sampled = 0;
    for (const auto& [host, hc] : host_counters) {
      population += hc.population;
      sampled += hc.sampled;
    }
    if (sampled > 0 && population > 0) {
      ratio_scale =
          static_cast<double>(population) / static_cast<double>(sampled);
    }
    if (plan.hosts_sampled > 0 && plan.hosts_targeted > 0) {
      ratio_scale *= static_cast<double>(plan.hosts_targeted) /
                     static_cast<double>(plan.hosts_sampled);
    }
  }
  // Ungrouped queries emit a row even for empty windows (series stay
  // continuous), matching single-instance behaviour.
  if (plan.group_by.empty() && groups.empty()) {
    groups[HashedGroupKey(GroupKey{})].accumulators.resize(
        plan.aggregates.size());
  }
  const std::vector<int>& bounded = c.pipeline.bounded_aggregates;
  for (auto& [hashed_key, group] : groups) {
    if (group.accumulators.empty()) {
      group.accumulators.resize(plan.aggregates.size());
    }
    std::vector<Value> agg_values(plan.aggregates.size());
    std::vector<double> agg_bounds(plan.aggregates.size(), 0.0);
    for (size_t i = 0; i < plan.aggregates.size(); ++i) {
      const AggregateSpec& spec = plan.aggregates[i];
      const auto bounded_it =
          std::find(bounded.begin(), bounded.end(), static_cast<int>(i));
      if (sampling && bounded_it != bounded.end()) {
        // Per-group Eq. 1-3: this group's readings for the slot, per host,
        // against the *global* per-host population counters. Sampled events
        // from a host that landed in other groups are zero readings for
        // this one (m_h - count_{h,g}).
        const size_t s =
            static_cast<size_t>(bounded_it - bounded.begin());
        std::vector<HostSampleStats> host_stats;
        for (const auto& [host, hc] : host_counters) {
          HostSampleStats h;
          h.population = hc.population;
          uint64_t observed = 0;
          const auto rit = group.host_readings.find(host);
          if (rit != group.host_readings.end() && s < rit->second.size()) {
            h.readings = rit->second[s];
            observed = h.readings.count();
          }
          const uint64_t zeros =
              hc.sampled > observed ? hc.sampled - observed : 0;
          if (zeros > 0) {
            h.readings.Merge(RunningStats::Constant(zeros, 0.0));
          }
          host_stats.push_back(std::move(h));
        }
        // Hosts that shipped events but no counters (hand-built batches):
        // no population info, so the observed readings stand in for it.
        for (const auto& [host, readings] : group.host_readings) {
          if (host_counters.count(host) > 0) {
            continue;
          }
          HostSampleStats h;
          if (s < readings.size()) {
            h.readings = readings[s];
          }
          h.population = h.readings.count();
          host_stats.push_back(std::move(h));
        }
        agg_values[i] = FinalizeBoundedSlot(
            spec, group.accumulators[i], std::move(host_stats),
            plan.hosts_sampled, plan.hosts_targeted, ratio_scale,
            &agg_bounds[i]);
        continue;
      }
      const double scale =
          (c.pipeline.needs_scaling && spec.ScalesUnderSampling())
              ? ratio_scale
              : 1.0;
      agg_values[i] = FinalizeAccumulator(spec, group.accumulators[i], scale);
    }
    ResultRow row;
    row.query_id = plan.query_id;
    row.window_start = start;
    row.window_end = start + plan.window_micros;
    row.completeness = completeness;
    row.fidelity = fidelity;
    for (const OutputColumn& column : plan.outputs) {
      row.values.push_back(
          EvalOutputExpr(column.expr, hashed_key.key, agg_values));
      row.error_bounds.push_back(
          column.expr.kind == OutputKind::kAggregate
              ? agg_bounds[static_cast<size_t>(column.expr.index)]
              : 0.0);
    }
    c.sink(row);
  }
}

void ShardedCentral::OnTick(TimeMicros now) {
  // Window closes (partial computation: finalize per-group state, package
  // mergeable accumulators) run shard-concurrently; each shard's partials
  // buffer into its own slot.
  pool_.ParallelFor(shards_.size(),
                    [&](size_t i) { shards_[i]->OnTick(now); });
  DrainShardRows();
  DrainPartials();
  // Shards have emitted every window whose end + lateness has passed (and
  // retired expired queries, flushing the rest); finalize those windows.
  for (auto cit = coordinators_.begin(); cit != coordinators_.end();) {
    Coordinator& c = cit->second;
    for (auto wit = c.windows.begin(); wit != c.windows.end();) {
      const TimeMicros window_end = wit->first + c.plan.window_micros;
      if (window_end + config_.allowed_lateness <= now ||
          now >= c.plan.end_time + config_.allowed_lateness) {
        FinalizeWindow(c, wit->first, wit->second);
        c.window_fidelity.erase(wit->first);
        wit = c.windows.erase(wit);
      } else {
        ++wit;
      }
    }
    // GC completeness / counter slots no still-open window can cover.
    while (!c.window_hosts.empty() &&
           c.window_hosts.begin()->first + c.plan.window_micros +
                   config_.allowed_lateness <=
               now) {
      c.window_hosts.erase(c.window_hosts.begin());
    }
    while (!c.window_counters.empty() &&
           c.window_counters.begin()->first + c.plan.window_micros +
                   config_.allowed_lateness <=
               now) {
      c.window_counters.erase(c.window_counters.begin());
    }
    while (!c.window_shed.empty() &&
           c.window_shed.begin()->first + c.plan.window_micros +
                   config_.allowed_lateness <=
               now) {
      c.window_shed.erase(c.window_shed.begin());
    }
    if (now >= c.plan.end_time + config_.allowed_lateness) {
      cit = coordinators_.erase(cit);
    } else {
      ++cit;
    }
  }
}

uint64_t ShardedCentral::DuplicateBatches(QueryId query_id) const {
  const auto it = coordinators_.find(query_id);
  return it == coordinators_.end() ? 0 : it->second.batches_duplicate;
}

std::vector<uint64_t> ShardedCentral::ShardLoads(QueryId query_id) const {
  std::vector<uint64_t> loads;
  loads.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const CentralQueryStats* stats = shard->StatsFor(query_id);
    loads.push_back(stats == nullptr ? 0 : stats->events_ingested);
  }
  return loads;
}

}  // namespace scrub
