// The physical-operator executor: one engine for every central deployment.
//
// ScrubCentral's fold logic used to live as three divergent code paths
// (row fold, columnar fold, sharded re-bucket layer). The executor carves it
// into the per-operator units a compiled PhysicalPipeline names:
//
//   Decode      — wire payload -> InputChunk (row span or ColumnBatch).
//   Join        — symmetric hash join on request id, window-scoped. Columnar
//                 inputs probe on the request-id column and stay deferred as
//                 (batch, row) references; a row materializes an Event at
//                 most once, when it first participates in a joined tuple —
//                 join orphans never materialize at all.
//   GroupFold   — group-key evaluation + accumulator update (or, raw mode,
//                 Project: eager per-tuple row emission).
//   WindowClose — lateness-gated close: completeness, orphan accounting,
//                 then row emission (single instance) or a mergeable
//                 WindowPartial (shard role).
//   Finalize    — accumulators -> values. Under sampling this is where the
//                 Eq. 1-3 estimator runs: over per-window host readings on a
//                 single instance, or — via FinalizeBoundedSlot, shared with
//                 the ShardedCentral coordinator — over globally merged
//                 per-(group, host) readings, which is what lets sampled
//                 plans shard.
//
// The executor holds no per-query state: it interprets a QueryState, which
// the owning facility (ScrubCentral) maps by query id. Distinct QueryStates
// may be executed concurrently (shards touch disjoint state); one may not.
//
// Everything here preserves the exact observable sequence of the code it
// was carved from — meter charges, stats increments, map insertion orders —
// so transcripts are byte-identical to the pre-executor central for every
// worker-count x pipeline combination (the determinism suites enforce it).

#ifndef SRC_CENTRAL_EXECUTOR_H_
#define SRC_CENTRAL_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/agent/agent.h"
#include "src/common/cost_model.h"
#include "src/common/spill.h"
#include "src/event/schema.h"
#include "src/event/wire.h"
#include "src/plan/group_key.h"
#include "src/plan/physical.h"
#include "src/plan/plan.h"
#include "src/plan/vectorized.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/multistage.h"
#include "src/sketch/space_saving.h"

namespace scrub {

// Group keys and mergeable aggregate state are shared with the sharded
// deployment (ShardedCentral) and the regional combiner tier, whose
// coordinators merge per-shard / per-region partials. The key types live in
// src/plan/group_key.h so host-side code shares the exact hash.

// One aggregate's running state within one group. Mergeable: partials from
// independent shards combine into the same state one stream would build.
struct AggAccumulator {
  uint64_t count = 0;
  double sum = 0.0;
  bool has_minmax = false;
  Value min_value;
  Value max_value;
  std::unique_ptr<HyperLogLog> hll;
  std::unique_ptr<SpaceSaving<Value, ValueHash>> topk;

  void Merge(AggAccumulator&& other);
  // Deep copy (sketches included). The combiner tier holds clones of
  // in-flight partials for retransmission; the merge-algebra property tests
  // replay the same inputs through many merge orders.
  AggAccumulator Clone() const;
};

// Finalizes one accumulator to its result value on the exact path (scale
// multiplies COUNT/SUM/TOPK counts; pass 1.0 when sampling is off).
Value FinalizeAccumulator(const AggregateSpec& spec,
                          const AggAccumulator& acc, double scale);

// The Finalize operator's Eq. 1-3 path for one scaled aggregate slot, shared
// by the single-instance close and the ShardedCentral coordinator. `hosts`
// carries one HostSampleStats per reporting host (readings already include
// the sampled-but-filtered zero observations); silent sampled hosts are
// padded to `hosts_sampled`, N is max(hosts_targeted, hosts.size()). On
// estimator failure (no hosts at all), falls back to the exact-path
// finalization scaled by `fallback_scale` with a zero bound.
Value FinalizeBoundedSlot(const AggregateSpec& spec, const AggAccumulator& acc,
                          std::vector<HostSampleStats> hosts,
                          uint64_t hosts_sampled, uint64_t hosts_targeted,
                          double fallback_scale, double* error_bound);

// Per-host readings for the pipeline's scaled slots within one group, as
// shipped shard -> coordinator (Eq. 3 needs per-host variance, so sums are
// not enough).
struct GroupHostReadings {
  HostId host = kInvalidHost;
  std::vector<RunningStats> readings;  // parallel to pipeline.scaled_slots
};

// One shard's finished window, shipped to the sharded coordinator.
struct WindowPartial {
  QueryId query_id = 0;
  TimeMicros window_start = 0;
  // Fraction of the plan's sampled host set heard from this window (1.0
  // when unknown). The coordinator takes the min across shards.
  double completeness = 1.0;
  std::vector<GroupKey> keys;
  // GroupKeyHash of each key, parallel to `keys`: the coordinator's merge
  // reuses the shard's hashes instead of rehashing.
  std::vector<size_t> key_hashes;
  std::vector<std::vector<AggAccumulator>> accumulators;  // parallel to keys
  // Sampled plans only: per-(group, host) readings for the scaled slots,
  // parallel to `keys` (empty otherwise). The coordinator merges these
  // across shards and runs the Eq. 1-3 estimator per group.
  std::vector<std::vector<GroupHostReadings>> group_readings;
  // Fidelity inputs, shipped raw so the coordinator can compute the exact
  // ratio across shards: events routed to this shard's window, and the
  // subset it shed under pressure (budget shed, spill I/O losses).
  uint64_t input_events = 0;
  uint64_t shed_events = 0;
  // Operator-metrics delta since this shard's previous export (parallel to
  // the shard pipeline's ops; empty when collection is off). Sideband
  // observability: excluded from wire-size accounting, merged by the
  // coordinator into upstream_op_metrics the way completeness/fidelity ride.
  std::vector<OperatorMetrics> op_metrics;

  WindowPartial Clone() const;
};

using PartialSink = std::function<void(WindowPartial&&)>;

struct ResultRow {
  QueryId query_id = 0;
  TimeMicros window_start = 0;
  TimeMicros window_end = 0;
  std::vector<Value> values;          // one per select column
  // error_bounds[i] is the ± half-width of the 95% interval when column i is
  // a sampled COUNT/SUM (Eq. 2); 0 means exact / not applicable.
  std::vector<double> error_bounds;
  // Fraction of the hosts the plan expected to hear from whose contribution
  // (events or heartbeat counters) reached central before this window
  // closed. 1.0 = every expected host reported; below that, the window's
  // answer is partition/crash-degraded and the user can tell.
  double completeness = 1.0;
  // Fraction of the events that reached (or were staged for) this window
  // that actually folded into the answer. Below 1.0 the window shed under
  // memory pressure — at the agent's staging buffer, at the central budget
  // with spill unavailable, or to a spill I/O fault — and the result is
  // honest-but-lossy rather than exact-looking (DESIGN.md §13).
  double fidelity = 1.0;

  std::string ToString() const;
};

using ResultSink = std::function<void(const ResultRow&)>;

// Duplicate suppression for sequenced batches from one (host, epoch): a
// contiguous watermark plus the out-of-order seqs beyond it, so state stays
// O(reorder depth), not O(batches). Shared with ShardedCentral, which dedups
// at the router before re-bucketing.
struct SeqTracker {
  uint64_t contiguous = 0;  // every seq <= this has been seen
  std::set<uint64_t> ahead;

  // Returns false (duplicate) if seq was already recorded.
  bool Insert(uint64_t seq) {
    if (seq <= contiguous || ahead.count(seq) > 0) {
      return false;
    }
    ahead.insert(seq);
    while (!ahead.empty() && *ahead.begin() == contiguous + 1) {
      ++contiguous;
      ahead.erase(ahead.begin());
    }
    return true;
  }
};

struct CentralConfig {
  // How long past a window's end central waits for stragglers.
  TimeMicros allowed_lateness = 2 * kMicrosPerSecond;
  // Join-state bound: at most this many distinct request ids buffered per
  // (query, window). Beyond it, new request ids are shed and counted —
  // accuracy traded for bounded memory, the paper's standing policy.
  size_t max_join_requests_per_window = 1 << 20;
  size_t topk_capacity_factor = 10;  // SpaceSaving counters per requested k
  size_t min_topk_capacity = 100;
  int hll_precision = 14;
  // ---- Memory-pressure resilience (DESIGN.md §13) ----
  // Logical-byte budgets over WindowState group maps and join buffers
  // (0 = unlimited). When a query crosses its budget, its open windows
  // switch to defer-and-replay spill; when the central total crosses, every
  // query's do. Charges use logical (wire) sizes, so the row and columnar
  // pipelines cross a budget at exactly the same event.
  size_t query_state_budget_bytes = 0;
  size_t central_state_budget_bytes = 0;
  // Track state bytes (accountant high-water marks) even without budgets.
  bool track_state_bytes = false;
  // Where spill runs live. Empty = spill disabled: over-budget events take
  // the degradation ladder's last rung (counted shed + fidelity flag).
  std::string spill_dir;
  // Namespaces spill file names; ShardedCentral gives each shard its own.
  std::string spill_instance = "central";
  uint64_t spill_seed = 1;
  // Cumulative spill-file bytes one query may write (0 = unlimited); beyond
  // it, over-budget events are shed and counted.
  size_t max_spill_bytes_per_query = 0;
  // Seeded per-record spill I/O failures (chaos testing).
  SpillFaultSpec spill_faults;
  // Operator-level metrics plane (DESIGN.md §16): per-op rows/batches/CPU
  // counters charged at chunk granularity. Pure observers — disabling them
  // changes no transcript byte; the bench gate holds their overhead under 5%.
  bool collect_op_metrics = true;
  CostModel costs;
};

struct CentralQueryStats {
  uint64_t batches = 0;
  uint64_t batches_duplicate = 0;  // dedup hits: retransmit raced its ack
  uint64_t events_ingested = 0;
  uint64_t events_late = 0;        // dropped: window already closed
  uint64_t tuples_joined = 0;      // joined tuples processed (join queries)
  uint64_t join_orphans = 0;       // events never matched by window close
  uint64_t join_shed = 0;          // events dropped: join buffer at capacity
  uint64_t groups_emitted = 0;
  uint64_t rows_emitted = 0;
  // Completeness accounting across closed windows.
  uint64_t windows_closed = 0;
  uint64_t windows_incomplete = 0;  // closed with completeness < 1
  double completeness_min = 1.0;
  double completeness_sum = 0.0;    // mean = sum / windows_closed
  // Memory-pressure accounting (DESIGN.md §13).
  uint64_t events_spilled = 0;     // deferred to disk under budget pressure
  uint64_t spill_runs = 0;         // windows that opened a spill run
  uint64_t spill_bytes = 0;        // cumulative run bytes written
  uint64_t spill_write_failures = 0;  // records lost on append (counted shed)
  uint64_t spill_read_failures = 0;   // replays aborted (remainder shed)
  uint64_t events_shed = 0;   // central-side counted shed, all ladder rungs
  uint64_t agent_events_shed = 0;  // staging shed reported via counters
  // Fidelity accounting across closed windows (mirrors completeness).
  uint64_t windows_lossy = 0;  // closed with fidelity < 1
  double fidelity_min = 1.0;
  double fidelity_sum = 0.0;  // mean = sum / windows_closed
  // ---- Operator-metrics plane (DESIGN.md §16) ----
  // One entry per op of the *local* compiled pipeline (parallel to
  // PhysicalPipeline::ops; empty until the first metered chunk or when
  // collection is off). For join pipelines the chunk-granularity CPU timer
  // lands on the Join op (the fold is fused into the probe loop); the
  // GroupFold/Project entry still carries honest row counts.
  std::vector<OperatorMetrics> op_metrics;
  // Coordinator role only: shard-side op metrics summed from WindowPartial
  // deltas (parallel to the *shard* pipeline's ops). Lets EXPLAIN ANALYZE
  // render the full sharded plan: upstream ops + the local Finalize.
  std::vector<OperatorMetrics> upstream_op_metrics;
  // Final accountant high-water mark, stamped at teardown (the accountant
  // forgets a retired query, so post-mortem DescribeQuery reads this).
  uint64_t peak_state_bytes = 0;
};

// ---------------------------------------------------------------------------
// Execution state the operators fold into.

struct GroupState {
  std::vector<AggAccumulator> accumulators;  // key lives in the map key
  // Shard pipelines under sampling (pipeline.collect_group_readings): the
  // per-host readings for the scaled slots, exported into
  // WindowPartial::group_readings at WindowClose. Keyed sorted so the
  // export order — and hence the coordinator's merge — is deterministic.
  std::map<HostId, std::vector<RunningStats>> host_readings;
};

// Per-host sampling bookkeeping within one window (Eqs. 1-3).
struct HostWindowStats {
  uint64_t population = 0;  // M_i: from agent counters
  uint64_t sampled = 0;     // m_i: from agent counters
  uint64_t received = 0;    // events that actually arrived (post-selection)
  // Events the agent staged for this window but shed before shipping
  // (staging buffer/budget overflow), from agent counters. Folded into the
  // window's fidelity, never into the sampling estimator.
  uint64_t shed = 0;
  // Readings per *bounded* aggregate (ungrouped scaled COUNT/SUM slots).
  std::vector<RunningStats> readings;
};

// One buffered join input. Row-path entries carry a materialized Event;
// columnar entries hold a (batch, row) reference and materialize at most
// once, when they first participate in a joined tuple. An entry that never
// matches — a join orphan — never pays the materialization.
struct JoinEntry {
  Event event;
  std::shared_ptr<const ColumnBatch> columns;  // non-null while deferred
  uint32_t row = 0;

  JoinEntry() = default;
  explicit JoinEntry(Event e) : event(std::move(e)) {}
  JoinEntry(std::shared_ptr<const ColumnBatch> batch, uint32_t r)
      : columns(std::move(batch)), row(r) {}

  const Event& Materialize() {
    if (columns != nullptr) {
      event = columns->MaterializeEvent(row);
      columns.reset();
    }
    return event;
  }
};

struct WindowState {
  TimeMicros start = 0;
  std::unordered_map<HashedGroupKey, GroupState, HashedGroupKeyHash> groups;
  // Join buffer: request id -> entries per source (sources.size() <= 2).
  std::unordered_map<RequestId, std::vector<std::vector<JoinEntry>>>
      join_state;
  std::unordered_map<HostId, HostWindowStats> host_stats;
  bool closed = false;
  // ---- Memory-pressure bookkeeping (DESIGN.md §13) ----
  uint64_t input_events = 0;  // events routed here (folded, deferred or shed)
  uint64_t shed_events = 0;   // counted central-side shed
  size_t state_bytes = 0;     // bytes charged to the accountant, released at
                              // close
  // Defer-and-replay spill: non-null once the window crossed its budget.
  // Every later event appends here in arrival order and replays through the
  // ordinary fold at close, which is what keeps transcripts byte-identical
  // to the unbounded run.
  std::unique_ptr<SpillRun> spill;
  bool shedding = false;   // ladder bottom: spill unavailable or failed open
  bool replaying = false;  // close-time replay in progress
};

// Everything one installed query needs to execute: the plan, its compiled
// pipeline, the open windows, and the facility-level bookkeeping (sinks,
// dedup, stats). Owned by ScrubCentral; interpreted by the Executor.
struct QueryState {
  CentralPlan plan;
  PhysicalPipeline pipeline;
  ResultSink sink;           // row mode
  PartialSink partial_sink;  // shard mode (exactly one of the two is set)
  CentralQueryStats stats;
  std::map<TimeMicros, WindowState> windows;  // keyed by window start
  // Dedup state per sending host, keyed by agent incarnation (epoch).
  std::unordered_map<HostId, std::map<uint64_t, SeqTracker>> dedup;
  // Windows at or before this start have been emitted and erased; events
  // mapping into them are late.
  TimeMicros closed_through = std::numeric_limits<TimeMicros>::min();
  // ---- Operator-metrics bookkeeping (observers only; DESIGN.md §16) ----
  // Cached op indexes into pipeline.ops / stats.op_metrics, filled lazily
  // from the compiled pipeline on the first metered call (-1 = op absent).
  int op_decode = -1;
  int op_join = -1;
  int op_fold = -1;  // kGroupFold or kProject
  int op_close = -1;
  int op_finalize = -1;
  bool op_index_ready = false;
  // Shard role: counters already shipped in earlier partials, so each
  // export carries only the delta (retransmitted envelopes are deduped by
  // the coordinator before absorption, so deltas never double-count).
  std::vector<OperatorMetrics> exported_op_metrics;
};

// ---------------------------------------------------------------------------

// A decoded kColumnarJoin batch (or a re-bucketed slice of one): the shared
// per-source columnar sections plus this consumer's arrival-order interleave.
// order[i] names the section of the i-th event, rows[i] (parallel) its row
// within that section. Sections are shared so join entries can stay deferred
// past the fold.
struct ColumnJoinSlice {
  std::vector<std::shared_ptr<const ColumnBatch>> sections;
  std::vector<uint8_t> order;
  std::vector<uint32_t> rows;
};

// Per-chunk precomputed column evaluations (vectorized FoldColumns), keyed
// by program identity and indexed by chunk position. Built once per columnar
// non-join chunk; the per-row folds consult it and fall back to the per-row
// evaluator for any program not precomputed. Pure caching: building or
// skipping it changes no observable (charges, stats, transcripts).
struct ChunkEvalCache {
  std::unordered_map<const ExprProgram*, size_t> index;
  FoldedColumns folded;

  const Value* Lookup(const ExprProgram& p, size_t pos) const {
    const auto it = index.find(&p);
    return it == index.end() ? nullptr : &folded.values[it->second][pos];
  }
};

class Executor {
 public:
  // `accountant` and `spill` may be null (no budgets, no spill): every
  // pressure path is then skipped and the fold is exactly the pre-spill one.
  Executor(const SchemaRegistry* registry, const CentralConfig* config,
           CostMeter* meter, MemoryAccountant* accountant = nullptr,
           SpillManager* spill = nullptr)
      : registry_(registry), config_(config), meter_(meter),
        accountant_(accountant), spill_(spill) {}

  // Decode operator: wire payload -> InputChunk, then Fold. (The dedup and
  // counter admission stays with the owning facility.)
  Status DecodeAndFold(QueryState& q, HostId host, const EventBatch& batch);

  // Absorbs pre-aggregated COUNT/SUM deltas (BatchFormat::kPreAgg). Sound
  // even for sliding windows: every ts inside one slide-grid slot is covered
  // by the same window set, so folding a slot at its window_start assigns
  // each delta to exactly the windows its events would have reached.
  void FoldPreAgg(QueryState& q, HostId host,
                  const std::vector<PreAggSlot>& slots);

  // Window-assigns each chunk position, then runs Join / GroupFold /
  // Project per covering window. One loop for both representations.
  void Fold(QueryState& q, HostId host, const InputChunk& chunk);

  // Folds a decoded (or re-bucketed) kColumnarJoin slice by replaying its
  // arrival interleave: consecutive same-section positions fold as one
  // columnar chunk, which preserves the exact per-position transcript of the
  // row path's single interleaved batch (Fold's per-chunk preamble has no
  // observable effects).
  // Books decode rows for pre-decoded ingestion (the sharded router decodes
  // once and feeds shards Events/columns directly): honest row and batch
  // counts on the Decode op, no CPU stamp — the decode time was spent at
  // the router, not on this shard. Mirrors the fused-join convention.
  void StampDecodeRows(QueryState& q, size_t rows);

  void FoldColumnJoin(QueryState& q, HostId host,
                      const ColumnJoinSlice& slice);

  // WindowClose operator: completeness + orphan accounting, then Finalize
  // (row emission) or WindowPartial export (shard role).
  void CloseWindow(QueryState& q, WindowState* w);

  TimeMicros WindowStartFor(const QueryState& q, TimeMicros ts) const;
  // All still-open windows covering ts: one for tumbling queries, up to
  // window/slide for sliding queries. Empty when ts is out of span or every
  // covering window has already closed (late data).
  std::vector<WindowState*> WindowsFor(QueryState& q, TimeMicros ts);
  // Observed fraction of the plan's expected host set for this window.
  double WindowCompleteness(const QueryState& q, const WindowState& w) const;

 private:
  // ---- Operator-metrics plane (DESIGN.md §16). Counters are charged at
  // chunk granularity (one thread-CPU clock read per operator per chunk) and
  // never observed by the fold itself, so collection cannot perturb
  // transcripts and its overhead stays within the 5% bench gate.
  bool MetricsOn() const { return config_->collect_op_metrics; }
  // Sizes stats.op_metrics and caches the pipeline's op indexes (idempotent;
  // derived purely from the compiled pipeline).
  void EnsureOpIndex(QueryState& q) const;
  // Books one Fold chunk against the Join (join plans) or GroupFold/Project
  // op: rows in/out from the stats deltas across the chunk, CPU since `t0`.
  void StampFoldMetrics(QueryState& q, size_t rows, uint64_t t0,
                        uint64_t joined0, uint64_t emitted0, uint64_t late0,
                        uint64_t shed0, uint64_t spilled0) const;
  // One chunk position folded into one covering window: host stats, bounded
  // readings, then the Join or GroupFold/Project operator. Under memory
  // pressure the event is deferred to the window's spill run (or shed and
  // counted) instead.
  void FoldInto(QueryState& q, WindowState& w, const InputChunk& chunk,
                size_t i, int column_source, HostId host,
                const ChunkEvalCache* cache = nullptr);
  // True once the query (or the whole central) is over its state budget.
  bool OverBudget(const QueryState& q) const;
  // Pressure path for one event: append to the window's spill run, opening
  // it on first use, or fall down the ladder to counted shed.
  void SpillOrShed(QueryState& q, WindowState& w, const InputChunk& chunk,
                   size_t i, HostId host);
  void ShedEvent(QueryState& q, WindowState& w);
  // Replays the window's spill run through the ordinary fold (arrival
  // order), counting records a read failure lost; then discards the run.
  void ReplaySpill(QueryState& q, WindowState* w);
  // Accountant charge tied to the window (released when the window closes).
  void ChargeState(QueryState& q, WindowState& w, size_t bytes);
  // Logical (wire) size of chunk position i — identical for the row and
  // columnar representations of the same event.
  size_t LogicalEventSize(const InputChunk& chunk, size_t i) const;
  // Join operator. `column_source` is the chunk's source index (columnar
  // chunks carry one schema); row positions resolve per event.
  void JoinFold(QueryState& q, WindowState& w, const InputChunk& chunk,
                size_t i, int column_source, HostId host);
  // GroupFold/Project with the row's representation abstracted behind an
  // expression evaluator: one body for row tuples, columnar rows, and mixed
  // join tuples, so the folds cannot drift from each other. Defined in the
  // .cc (every instantiation lives there).
  template <typename EvalFn>
  void GroupFoldWith(QueryState& q, WindowState& w, HostId host,
                     EvalFn&& eval);
  // GroupFold/Project over a joined (or singleton) row tuple.
  void GroupFoldTuple(QueryState& q, WindowState& w, const EventTuple& tuple,
                      HostId host);
  // GroupFold/Project straight off columns (non-join plans). `pos` is the
  // chunk position for `cache` lookups (cache may be null).
  void GroupFoldColumn(QueryState& q, WindowState& w,
                       const ColumnBatch& batch, size_t row, HostId host,
                       const ChunkEvalCache* cache, size_t pos);
  // GroupFold/Project over a mixed join tuple (column-direct where a side
  // arrived columnar).
  void GroupFoldMixed(QueryState& q, WindowState& w,
                      const std::vector<TupleSlot>& slots, HostId host);
  // Accumulator update with the argument already evaluated (shared by the
  // row and columnar folds; `arg` is null for argument-less aggregates).
  void UpdateAccumulatorValue(const AggregateSpec& spec, AggAccumulator* acc,
                              const Value& arg);
  // Finalize operator for one slot (single-instance close): Eq. 1-3 over
  // the window's per-host readings for bounded slots, else exact/ratio.
  Value FinalizeAggregate(const QueryState& q, const WindowState& w, int slot,
                          const AggAccumulator& acc, double group_scale,
                          double* error_bound) const;
  double GroupScaleFor(const QueryState& q, const WindowState& w) const;

  // Shard role under sampling: fold this row's readings for the scaled
  // slots into the group's per-host stats. `eval` evaluates an aggregate
  // argument against the row's representation.
  template <typename EvalArg>
  void CollectGroupReadings(QueryState& q, GroupState* group, HostId host,
                            EvalArg&& eval) {
    if (!q.pipeline.collect_group_readings) {
      return;
    }
    std::vector<RunningStats>& readings = group->host_readings[host];
    readings.resize(q.pipeline.scaled_slots.size());
    for (size_t s = 0; s < q.pipeline.scaled_slots.size(); ++s) {
      const AggregateSpec& spec =
          q.plan.aggregates[static_cast<size_t>(q.pipeline.scaled_slots[s])];
      double v = 1.0;  // COUNT: indicator reading
      if (spec.func == AggregateFunc::kSum) {
        const Value arg = eval(spec.arg_program);
        v = arg.is_numeric() ? arg.AsNumber() : 0.0;
      }
      readings[s].Add(v);
    }
  }

  const SchemaRegistry* registry_;
  const CentralConfig* config_;
  CostMeter* meter_;
  MemoryAccountant* accountant_;
  SpillManager* spill_;
};

}  // namespace scrub

#endif  // SRC_CENTRAL_EXECUTOR_H_
