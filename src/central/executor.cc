#include "src/central/executor.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"
#include "src/common/worker_pool.h"
#include "src/plan/vectorized.h"

namespace scrub {

namespace {

// Logical state-size estimates for the memory accountant (DESIGN.md §13).
// These are representation-independent constants — never sizeof(container)
// or capacity — so the row and columnar pipelines charge identical byte
// sequences and cross a budget at exactly the same event.
constexpr size_t kGroupStateBytes = 96;    // map node + GroupState shell
constexpr size_t kJoinBucketBytes = 64;    // join_state node + per-source vecs
constexpr size_t kJoinEntryBytes = 48;     // JoinEntry shell around the event
constexpr size_t kHllStructBytes = 64;     // HyperLogLog shell (+ registers)
constexpr size_t kTopKCounterBytes = 48;   // one SpaceSaving counter slot

// Bytes a newly created group will hold: its key, one accumulator per
// aggregate, and the sketches COUNT DISTINCT / TOPK slots allocate on first
// update (charged up front — they are created by the group's first row with
// near certainty, and charging here keeps the sequence deterministic).
size_t GroupCreationBytes(const CentralConfig& config, const CentralPlan& plan,
                          const GroupKey& key) {
  size_t bytes =
      kGroupStateBytes + plan.aggregates.size() * sizeof(AggAccumulator);
  for (const Value& v : key) {
    bytes += v.WireSize();
  }
  for (const AggregateSpec& spec : plan.aggregates) {
    if (spec.func == AggregateFunc::kCountDistinct) {
      bytes += (size_t{1} << config.hll_precision) + kHllStructBytes;
    } else if (spec.func == AggregateFunc::kTopK) {
      bytes += kTopKCounterBytes *
               std::max(config.min_topk_capacity,
                        static_cast<size_t>(spec.topk_k) *
                            config.topk_capacity_factor);
    }
  }
  return bytes;
}

}  // namespace

void AggAccumulator::Merge(AggAccumulator&& other) {
  count += other.count;
  sum += other.sum;
  if (other.has_minmax) {
    if (!has_minmax) {
      min_value = std::move(other.min_value);
      max_value = std::move(other.max_value);
      has_minmax = true;
    } else {
      if (other.min_value.Compare(min_value) < 0) {
        min_value = std::move(other.min_value);
      }
      if (other.max_value.Compare(max_value) > 0) {
        max_value = std::move(other.max_value);
      }
    }
  }
  if (other.hll != nullptr) {
    if (hll == nullptr) {
      hll = std::move(other.hll);
    } else {
      hll->Merge(*other.hll);
    }
  }
  if (other.topk != nullptr) {
    if (topk == nullptr) {
      topk = std::move(other.topk);
    } else {
      topk->Merge(*other.topk);
    }
  }
}

AggAccumulator AggAccumulator::Clone() const {
  AggAccumulator copy;
  copy.count = count;
  copy.sum = sum;
  copy.has_minmax = has_minmax;
  copy.min_value = min_value;
  copy.max_value = max_value;
  if (hll != nullptr) {
    copy.hll = std::make_unique<HyperLogLog>(*hll);
  }
  if (topk != nullptr) {
    copy.topk = std::make_unique<SpaceSaving<Value, ValueHash>>(*topk);
  }
  return copy;
}

WindowPartial WindowPartial::Clone() const {
  WindowPartial copy;
  copy.query_id = query_id;
  copy.window_start = window_start;
  copy.completeness = completeness;
  copy.keys = keys;
  copy.key_hashes = key_hashes;
  copy.accumulators.reserve(accumulators.size());
  for (const std::vector<AggAccumulator>& group : accumulators) {
    std::vector<AggAccumulator> cloned;
    cloned.reserve(group.size());
    for (const AggAccumulator& acc : group) {
      cloned.push_back(acc.Clone());
    }
    copy.accumulators.push_back(std::move(cloned));
  }
  copy.group_readings = group_readings;
  copy.input_events = input_events;
  copy.shed_events = shed_events;
  copy.op_metrics = op_metrics;
  return copy;
}

void Executor::EnsureOpIndex(QueryState& q) const {
  if (q.op_index_ready) {
    return;
  }
  q.op_index_ready = true;
  q.stats.op_metrics.resize(q.pipeline.ops.size());
  for (size_t i = 0; i < q.pipeline.ops.size(); ++i) {
    switch (q.pipeline.ops[i].kind) {
      case PhysicalOpKind::kDecode:
        q.op_decode = static_cast<int>(i);
        break;
      case PhysicalOpKind::kJoin:
        q.op_join = static_cast<int>(i);
        break;
      case PhysicalOpKind::kProject:
      case PhysicalOpKind::kGroupFold:
        q.op_fold = static_cast<int>(i);
        break;
      case PhysicalOpKind::kWindowClose:
        q.op_close = static_cast<int>(i);
        break;
      case PhysicalOpKind::kFinalize:
        q.op_finalize = static_cast<int>(i);
        break;
    }
  }
}

void Executor::StampFoldMetrics(QueryState& q, size_t rows, uint64_t t0,
                                uint64_t joined0, uint64_t emitted0,
                                uint64_t late0, uint64_t shed0,
                                uint64_t spilled0) const {
  const int target = q.op_join >= 0 ? q.op_join : q.op_fold;
  if (target < 0) {
    return;
  }
  OperatorMetrics& m = q.stats.op_metrics[static_cast<size_t>(target)];
  m.rows_in += rows;
  m.batches += 1;
  m.cpu_ns += WorkerPool::ThreadCpuNs() - t0;
  if (q.op_join >= 0) {
    // Join pipelines fuse probe and fold in one loop, so the chunk's CPU
    // lands on Join; the downstream op still gets honest row counts.
    const uint64_t tuples = q.stats.tuples_joined - joined0;
    m.rows_out += tuples;
    if (q.op_fold >= 0) {
      OperatorMetrics& f = q.stats.op_metrics[static_cast<size_t>(q.op_fold)];
      f.rows_in += tuples;
      f.rows_out += q.plan.aggregate_mode
                        ? tuples
                        : q.stats.rows_emitted - emitted0;
      f.batches += 1;
    }
    return;
  }
  if (!q.plan.aggregate_mode) {
    // Project emits eagerly; sliding windows can fan one row out to several
    // emissions, so selectivity above 1.0 is honest, not a bug.
    m.rows_out += q.stats.rows_emitted - emitted0;
    return;
  }
  // GroupFold: rows that actually reached an accumulator this chunk — late,
  // shed and spilled rows didn't. Saturating: under sliding windows one row
  // can shed in several covering windows.
  const uint64_t rejected = (q.stats.events_late - late0) +
                            (q.stats.events_shed - shed0) +
                            (q.stats.events_spilled - spilled0);
  m.rows_out += rows > rejected ? rows - rejected : 0;
}

Value FinalizeAccumulator(const AggregateSpec& spec,
                          const AggAccumulator& acc, double scale) {
  switch (spec.func) {
    case AggregateFunc::kCount:
      if (scale == 1.0) {
        return Value(static_cast<int64_t>(acc.count));
      }
      return Value(static_cast<double>(acc.count) * scale);
    case AggregateFunc::kSum:
      return Value(acc.sum * scale);
    case AggregateFunc::kAvg:
      if (acc.count == 0) {
        return Value::Null();
      }
      return Value(acc.sum / static_cast<double>(acc.count));
    case AggregateFunc::kMin:
      return acc.has_minmax ? acc.min_value : Value::Null();
    case AggregateFunc::kMax:
      return acc.has_minmax ? acc.max_value : Value::Null();
    case AggregateFunc::kCountDistinct:
      if (acc.hll == nullptr) {
        return Value(int64_t{0});
      }
      return Value(static_cast<int64_t>(std::llround(acc.hll->Estimate())));
    case AggregateFunc::kTopK: {
      std::vector<Value> rows;
      if (acc.topk != nullptr) {
        for (const auto& entry :
             acc.topk->TopK(static_cast<size_t>(spec.topk_k))) {
          const double shown = static_cast<double>(entry.count) * scale;
          rows.push_back(Value(StrFormat(
              "%s:%.0f", entry.key.ToString().c_str(), shown)));
        }
      }
      return Value(std::move(rows));
    }
  }
  return Value::Null();
}

Value FinalizeBoundedSlot(const AggregateSpec& spec, const AggAccumulator& acc,
                          std::vector<HostSampleStats> hosts,
                          uint64_t hosts_sampled, uint64_t hosts_targeted,
                          double fallback_scale, double* error_bound) {
  *error_bound = 0.0;
  // Sampled hosts that reported nothing this window estimate zero totals.
  const uint64_t reporting = hosts.size();
  for (uint64_t i = reporting; i < hosts_sampled; ++i) {
    hosts.emplace_back();
  }
  const uint64_t total_hosts =
      std::max<uint64_t>(hosts_targeted, hosts.size());
  if (!hosts.empty()) {
    Result<ApproxSum> est = EstimateSum(hosts, total_hosts, 0.95);
    if (est.ok()) {
      *error_bound = std::isfinite(est->error_bound) ? est->error_bound : 0.0;
      return Value(est->estimate);
    }
  }
  // Exact-path finalization on estimator failure (no hosts at all).
  return FinalizeAccumulator(spec, acc, fallback_scale);
}

std::string ResultRow::ToString() const {
  std::string out = StrFormat("[%lld, %lld) ",
                              static_cast<long long>(window_start),
                              static_cast<long long>(window_end));
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) {
      out += " | ";
    }
    out += values[i].ToString();
    if (i < error_bounds.size() && error_bounds[i] > 0) {
      out += StrFormat(" ±%.3g", error_bounds[i]);
    }
  }
  if (completeness < 1.0) {
    out += StrFormat(" [completeness %.2f]", completeness);
  }
  if (fidelity < 1.0) {
    out += StrFormat(" [fidelity %.2f]", fidelity);
  }
  return out;
}

TimeMicros Executor::WindowStartFor(const QueryState& q, TimeMicros ts) const {
  // Window starts sit on the slide grid (slide == window for tumbling).
  TimeMicros grid = q.plan.slide_micros;
  if (grid <= 0) {
    grid = q.plan.window_micros;
  }
  if (grid <= 0) {
    return q.plan.start_time;
  }
  const TimeMicros rel = ts - q.plan.start_time;
  return q.plan.start_time + (rel / grid) * grid;
}

std::vector<WindowState*> Executor::WindowsFor(QueryState& q, TimeMicros ts) {
  std::vector<WindowState*> out;
  if (ts < q.plan.start_time || ts >= q.plan.end_time) {
    return out;
  }
  const TimeMicros window = q.plan.window_micros;
  TimeMicros slide = q.plan.slide_micros;
  if (slide <= 0) {
    slide = window;
  }
  // Newest covering window first, then earlier ones on the slide grid until
  // the window no longer covers ts.
  for (TimeMicros start = WindowStartFor(q, ts);
       start > ts - window && start >= q.plan.start_time; start -= slide) {
    if (start <= q.closed_through) {
      break;  // this and all earlier covering windows have emitted
    }
    WindowState& w = q.windows[start];
    w.start = start;
    out.push_back(&w);
    if (slide <= 0) {
      break;  // untimed single-window query
    }
  }
  return out;
}

Status Executor::DecodeAndFold(QueryState& q, HostId host,
                               const EventBatch& batch) {
  // Decode-operator metrics: one clock read before the wire decode, one
  // after; the fold stages time themselves.
  const bool metrics = MetricsOn();
  uint64_t t0 = 0;
  if (metrics) {
    EnsureOpIndex(q);
    t0 = WorkerPool::ThreadCpuNs();
  }
  const auto stamp_decode = [&](size_t rows_out) {
    if (!metrics || q.op_decode < 0) {
      return;
    }
    OperatorMetrics& m = q.stats.op_metrics[static_cast<size_t>(q.op_decode)];
    m.rows_in += batch.event_count;
    m.rows_out += rows_out;
    m.batches += 1;
    m.cpu_ns += WorkerPool::ThreadCpuNs() - t0;
  };
  if (batch.format == BatchFormat::kPreAgg) {
    Result<std::vector<PreAggSlot>> slots = DecodePreAggBatch(batch.payload);
    if (!slots.ok()) {
      return slots.status();
    }
    stamp_decode(slots->size());
    FoldPreAgg(q, host, *slots);
    return OkStatus();
  }
  if (batch.format == BatchFormat::kColumnar) {
    Result<ColumnBatch> cols = DecodeColumnBatch(*registry_, batch.payload);
    if (!cols.ok()) {
      return cols.status();
    }
    // Shared ownership so join entries can defer materialization past the
    // chunk's lifetime (the batch lives while any orphan references it).
    auto shared = std::make_shared<const ColumnBatch>(std::move(*cols));
    stamp_decode(shared->rows());
    Fold(q, host, InputChunk::Columns(std::move(shared), /*selection=*/nullptr,
                                      /*selected=*/0));
    return OkStatus();
  }
  if (batch.format == BatchFormat::kColumnarJoin) {
    Result<ColumnJoinBatch> join =
        DecodeColumnJoinBatch(*registry_, batch.payload);
    if (!join.ok()) {
      return join.status();
    }
    // Sections are shared for the same reason as single-source columnar
    // batches: deferred join entries may outlive the fold.
    ColumnJoinSlice slice;
    slice.sections.reserve(join->sections.size());
    for (ColumnBatch& section : join->sections) {
      slice.sections.push_back(
          std::make_shared<const ColumnBatch>(std::move(section)));
    }
    slice.order = std::move(join->order);
    // The interleave consumes each section's rows in order, so position i's
    // row is its section's running count.
    slice.rows.resize(slice.order.size());
    std::vector<uint32_t> cursor(slice.sections.size(), 0);
    for (size_t i = 0; i < slice.order.size(); ++i) {
      slice.rows[i] = cursor[slice.order[i]]++;
    }
    stamp_decode(slice.order.size());
    FoldColumnJoin(q, host, slice);
    return OkStatus();
  }
  Result<std::vector<Event>> events = DecodeBatch(*registry_, batch.payload);
  if (!events.ok()) {
    return events.status();
  }
  stamp_decode(events->size());
  Fold(q, host, InputChunk::Rows(*events));
  return OkStatus();
}

void Executor::StampDecodeRows(QueryState& q, size_t rows) {
  if (!MetricsOn()) {
    return;
  }
  EnsureOpIndex(q);
  if (q.op_decode < 0) {
    return;
  }
  OperatorMetrics& m = q.stats.op_metrics[static_cast<size_t>(q.op_decode)];
  m.rows_in += rows;
  m.rows_out += rows;
  m.batches += 1;
}

void Executor::FoldPreAgg(QueryState& q, HostId host,
                          const std::vector<PreAggSlot>& slots) {
  const bool metrics = MetricsOn();
  uint64_t t0 = 0;
  uint64_t ingested0 = 0;
  uint64_t late0 = 0;
  if (metrics) {
    EnsureOpIndex(q);
    t0 = WorkerPool::ThreadCpuNs();
    ingested0 = q.stats.events_ingested;
    late0 = q.stats.events_late;
  }
  const CentralPlan& plan = q.plan;
  for (const PreAggSlot& slot : slots) {
    meter_->ChargeScrub(config_->costs.central_ingest_ns);
    q.stats.events_ingested += slot.events;
    const std::vector<WindowState*> windows = WindowsFor(q, slot.window_start);
    if (windows.empty()) {
      q.stats.events_late += slot.events;
      continue;
    }
    for (WindowState* w : windows) {
      w->input_events += slot.events;
      HostWindowStats& hs = w->host_stats[host];
      hs.readings.resize(q.pipeline.bounded_aggregates.size());
      hs.received += slot.events;
      for (const PreAggGroup& g : slot.groups) {
        GroupKey key = g.keys;  // each covering window owns its key
        HashedGroupKey hk(std::move(key));
        const bool track = accountant_ != nullptr && accountant_->active();
        const size_t creation_bytes =
            track ? GroupCreationBytes(*config_, plan, hk.key) : 0;
        GroupState& group = w->groups[std::move(hk)];
        if (group.accumulators.empty()) {
          group.accumulators.resize(plan.aggregates.size());
          if (track) {
            ChargeState(q, *w, creation_bytes);
          }
        }
        const size_t cells = std::min(g.cells.size(),
                                      group.accumulators.size());
        for (size_t i = 0; i < cells; ++i) {
          meter_->ChargeScrub(config_->costs.central_group_update_ns);
          group.accumulators[i].count += g.cells[i].count;
          group.accumulators[i].sum += g.cells[i].sum;
        }
      }
    }
  }
  if (metrics && q.op_fold >= 0) {
    // Pre-aggregated deltas fold straight into GroupFold (no join, no
    // per-row representation): rows are the events the slots represent.
    OperatorMetrics& m = q.stats.op_metrics[static_cast<size_t>(q.op_fold)];
    const uint64_t represented = q.stats.events_ingested - ingested0;
    m.rows_in += represented;
    m.rows_out += represented - (q.stats.events_late - late0);
    m.batches += 1;
    m.cpu_ns += WorkerPool::ThreadCpuNs() - t0;
  }
}

void Executor::FoldColumnJoin(QueryState& q, HostId host,
                              const ColumnJoinSlice& slice) {
  size_t i = 0;
  while (i < slice.order.size()) {
    const uint8_t s = slice.order[i];
    size_t j = i + 1;
    while (j < slice.order.size() && slice.order[j] == s) {
      ++j;
    }
    Fold(q, host,
         InputChunk::Columns(slice.sections[s], slice.rows.data() + i,
                             j - i));
    i = j;
  }
}

void Executor::Fold(QueryState& q, HostId host, const InputChunk& chunk) {
  // Chunk-granularity operator metrics: snapshot the stats the fold already
  // maintains, stamp the deltas once at the end. No per-row clock reads.
  const bool metrics = MetricsOn();
  uint64_t t0 = 0;
  uint64_t joined0 = 0;
  uint64_t emitted0 = 0;
  uint64_t late0 = 0;
  uint64_t shed0 = 0;
  uint64_t spilled0 = 0;
  if (metrics) {
    EnsureOpIndex(q);
    t0 = WorkerPool::ThreadCpuNs();
    joined0 = q.stats.tuples_joined;
    emitted0 = q.stats.rows_emitted;
    late0 = q.stats.events_late;
    shed0 = q.stats.events_shed;
    spilled0 = q.stats.events_spilled;
  }
  // A columnar chunk carries one schema, so the join's source index resolves
  // once per chunk; row spans may mix types and resolve per event.
  int column_source = -1;
  if (chunk.columnar() && q.plan.is_join()) {
    const std::string& type = chunk.columns->schema()->type_name();
    for (size_t s = 0; s < q.plan.sources.size(); ++s) {
      if (q.plan.sources[s] == type) {
        column_source = static_cast<int>(s);
        break;
      }
    }
  }
  // Non-join columnar chunks precompute the group-key / aggregate-argument
  // programs in one vectorized pass per program (FoldColumns). Pure
  // computation, so the transcript is identical with or without it.
  ChunkEvalCache cache;
  const ChunkEvalCache* cache_ptr = nullptr;
  if (chunk.columnar() && !q.plan.is_join()) {
    std::vector<const ExprProgram*> programs;
    const auto add = [&](const ExprProgram& p) {
      if (cache.index.emplace(&p, programs.size()).second) {
        programs.push_back(&p);
      }
    };
    if (q.plan.aggregate_mode) {
      for (const ExprProgram& g : q.plan.group_by_programs) {
        add(g);
      }
      for (const AggregateSpec& spec : q.plan.aggregates) {
        if (spec.has_arg) {
          add(spec.arg_program);
        }
      }
    } else {
      for (const ExprProgram& e : q.plan.raw_select_programs) {
        add(e);
      }
    }
    if (!programs.empty()) {
      FoldColumns(programs, *chunk.columns, chunk.selection, chunk.size(),
                  &cache.folded);
      cache_ptr = &cache;
    }
  }
  const size_t n = chunk.size();
  for (size_t i = 0; i < n; ++i) {
    meter_->ChargeScrub(config_->costs.central_ingest_ns);
    ++q.stats.events_ingested;
    const std::vector<WindowState*> windows =
        WindowsFor(q, chunk.timestamp(i));
    if (windows.empty()) {
      ++q.stats.events_late;
      continue;
    }
    for (WindowState* w : windows) {
      FoldInto(q, *w, chunk, i, column_source, host, cache_ptr);
    }
  }
  if (metrics) {
    StampFoldMetrics(q, n, t0, joined0, emitted0, late0, shed0, spilled0);
  }
}

void Executor::FoldInto(QueryState& q, WindowState& w, const InputChunk& chunk,
                        size_t i, int column_source, HostId host,
                        const ChunkEvalCache* cache) {
  if (!w.replaying) {
    ++w.input_events;  // fidelity denominator: folded, deferred, or shed
    if (w.shedding) {
      ShedEvent(q, w);
      return;
    }
    if (w.spill != nullptr ||
        (accountant_ != nullptr && accountant_->active() && OverBudget(q))) {
      // Deferring must still record the host's first touch now: host_stats
      // insertion order feeds float summation in Finalize, and the unbounded
      // run inserts hosts in arrival order, not replay order.
      w.host_stats[host];
      SpillOrShed(q, w, chunk, i, host);
      return;
    }
  }
  HostWindowStats& hs = w.host_stats[host];
  hs.readings.resize(q.pipeline.bounded_aggregates.size());
  ++hs.received;

  if (q.plan.is_join()) {
    JoinFold(q, w, chunk, i, column_source, host);
    return;
  }

  if (chunk.columnar()) {
    const ColumnBatch& batch = *chunk.columns;
    const size_t row = chunk.row(i);
    // Per-host readings for the Eq. 1-3 slots.
    for (size_t b = 0; b < q.pipeline.bounded_aggregates.size(); ++b) {
      const AggregateSpec& spec = q.plan.aggregates[static_cast<size_t>(
          q.pipeline.bounded_aggregates[b])];
      double v = 1.0;  // COUNT: indicator reading
      if (spec.func == AggregateFunc::kSum) {
        const Value* cached =
            cache != nullptr ? cache->Lookup(spec.arg_program, i) : nullptr;
        const Value arg = cached != nullptr
                              ? *cached
                              : EvalProgramColumns(spec.arg_program, batch,
                                                   row);
        v = arg.is_numeric() ? arg.AsNumber() : 0.0;
      }
      hs.readings[b].Add(v);
    }
    GroupFoldColumn(q, w, batch, row, host, cache, i);
    return;
  }

  const Event& event = (*chunk.events)[i];
  EventTuple tuple{&event};
  // Per-host readings for the Eq. 1-3 slots.
  for (size_t b = 0; b < q.pipeline.bounded_aggregates.size(); ++b) {
    const AggregateSpec& spec = q.plan.aggregates[static_cast<size_t>(
        q.pipeline.bounded_aggregates[b])];
    double v = 1.0;  // COUNT: indicator reading
    if (spec.func == AggregateFunc::kSum) {
      const Value arg = EvalProgram(spec.arg_program, tuple);
      v = arg.is_numeric() ? arg.AsNumber() : 0.0;
    }
    hs.readings[b].Add(v);
  }
  GroupFoldTuple(q, w, tuple, host);
}

bool Executor::OverBudget(const QueryState& q) const {
  return accountant_->OverBudget(q.plan.query_id);
}

void Executor::ShedEvent(QueryState& q, WindowState& w) {
  ++w.shed_events;
  ++q.stats.events_shed;
}

void Executor::ChargeState(QueryState& q, WindowState& w, size_t bytes) {
  accountant_->Charge(q.plan.query_id, bytes);
  w.state_bytes += bytes;
}

size_t Executor::LogicalEventSize(const InputChunk& chunk, size_t i) const {
  if (chunk.columnar()) {
    return chunk.columns->MaterializeEvent(chunk.row(i)).WireSize();
  }
  return (*chunk.events)[i].WireSize();
}

void Executor::SpillOrShed(QueryState& q, WindowState& w,
                           const InputChunk& chunk, size_t i, HostId host) {
  if (w.spill == nullptr) {
    w.spill =
        spill_ == nullptr ? nullptr : spill_->Open(q.plan.query_id, w.start);
    if (w.spill == nullptr) {
      // Ladder bottom: spill disabled or the run failed to open. The window
      // stays in shed mode — retrying the open per event would make the
      // fault surface nondeterministic.
      w.shedding = true;
      ShedEvent(q, w);
      return;
    }
    ++q.stats.spill_runs;
  }
  if (config_->max_spill_bytes_per_query > 0 &&
      q.stats.spill_bytes >= config_->max_spill_bytes_per_query) {
    ShedEvent(q, w);  // spill budget exhausted: this event is counted shed
    return;
  }
  std::string payload;
  if (chunk.columnar()) {
    EncodeEvent(chunk.columns->MaterializeEvent(chunk.row(i)), &payload);
  } else {
    EncodeEvent((*chunk.events)[i], &payload);
  }
  meter_->ChargeScrub(static_cast<int64_t>(payload.size()) *
                      config_->costs.serialize_per_byte_ns);
  const size_t wrote = w.spill->Append(static_cast<uint32_t>(host), payload);
  if (wrote == 0) {
    ++q.stats.spill_write_failures;
    ShedEvent(q, w);  // exactly this record lost; the run stays replayable
    return;
  }
  ++q.stats.events_spilled;
  q.stats.spill_bytes += wrote;
}

void Executor::ReplaySpill(QueryState& q, WindowState* w) {
  if (w->spill == nullptr) {
    return;
  }
  SpillRun& run = *w->spill;
  uint64_t replayed = 0;
  if (run.BeginReplay()) {
    w->replaying = true;
    uint32_t host = 0;
    std::string payload;
    std::vector<Event> one(1);
    while (run.Next(&host, &payload)) {
      size_t offset = 0;
      Result<Event> event = DecodeEvent(*registry_, payload, &offset);
      if (!event.ok()) {
        break;  // corrupt record: the remainder is lost, counted below
      }
      one[0] = std::move(*event);
      FoldInto(q, *w, InputChunk::Rows(one), 0, /*column_source=*/-1,
               static_cast<HostId>(host));
      ++replayed;
    }
    w->replaying = false;
  }
  const uint64_t lost = run.records() - replayed;
  if (lost > 0) {
    ++q.stats.spill_read_failures;
    w->shed_events += lost;
    q.stats.events_shed += lost;
  }
  w->spill.reset();  // closes and unlinks the run
}

void Executor::JoinFold(QueryState& q, WindowState& w, const InputChunk& chunk,
                        size_t i, int column_source, HostId host) {
  // Symmetric hash join on request id, scoped to the window.
  int source = column_source;
  if (!chunk.columnar()) {
    const Event& event = (*chunk.events)[i];
    source = -1;
    for (size_t s = 0; s < q.plan.sources.size(); ++s) {
      if (q.plan.sources[s] == event.type_name()) {
        source = static_cast<int>(s);
        break;
      }
    }
  }
  if (source < 0) {
    return;  // not part of this query (shouldn't happen: host filtered)
  }
  const RequestId rid = chunk.request_id(i);
  const bool track = accountant_ != nullptr && accountant_->active();
  auto state_it = w.join_state.find(rid);
  if (state_it == w.join_state.end()) {
    if (w.join_state.size() >= config_->max_join_requests_per_window) {
      ++q.stats.join_shed;  // shed, never grow without bound
      ShedEvent(q, w);      // dents the window's fidelity like any shed
      return;
    }
    state_it =
        w.join_state.emplace(rid, std::vector<std::vector<JoinEntry>>())
            .first;
    if (track) {
      ChargeState(q, w,
                  kJoinBucketBytes +
                      q.plan.sources.size() * sizeof(std::vector<JoinEntry>));
    }
  }
  auto& per_request = state_it->second;
  per_request.resize(q.plan.sources.size());
  // Columnar inputs stay deferred: the equi-key probe above read straight
  // off the request-id column, and the entry materializes an Event only if
  // a partner exists (here or in a later probe against it).
  JoinEntry self =
      chunk.columnar()
          ? JoinEntry(chunk.columns, static_cast<uint32_t>(chunk.row(i)))
          : JoinEntry((*chunk.events)[i]);
  // Probe the other side(s) before inserting: new tuples are exactly the
  // cross product of this event with previously arrived partners. Joined
  // tuples fold through mixed slots, so a columnar side never materializes
  // an Event: its slot points straight into the decoded batch.
  std::vector<TupleSlot> slots(q.plan.sources.size());
  TupleSlot& self_slot = slots[static_cast<size_t>(source)];
  if (chunk.columnar()) {
    self_slot.batch = chunk.columns.get();
    self_slot.row = static_cast<uint32_t>(chunk.row(i));
  } else {
    self_slot.event = &(*chunk.events)[i];
  }
  for (size_t other = 0; other < per_request.size(); ++other) {
    if (static_cast<int>(other) == source) {
      continue;
    }
    for (JoinEntry& e2 : per_request[other]) {
      meter_->ChargeScrub(config_->costs.central_join_probe_ns);
      if (e2.columns != nullptr) {
        slots[other] = TupleSlot{nullptr, e2.columns.get(), e2.row};
      } else {
        slots[other] = TupleSlot{&e2.event, nullptr, 0};
      }
      ++q.stats.tuples_joined;
      GroupFoldMixed(q, w, slots, host);
    }
    slots[other] = TupleSlot{};  // absent again for the next partner source
  }
  if (track) {
    ChargeState(q, w, kJoinEntryBytes + LogicalEventSize(chunk, i));
  }
  per_request[static_cast<size_t>(source)].push_back(std::move(self));
}

// The one group-fold body. Every tuple representation — row EventTuple,
// columnar (batch, row), mixed join slots — funnels through here with its
// own `eval`, so the raw-emission path, group creation and accounting, the
// Eq. 1-3 readings, and the null-skip aggregate update cannot drift between
// representations.
template <typename EvalFn>
void Executor::GroupFoldWith(QueryState& q, WindowState& w, HostId host,
                             EvalFn&& eval) {
  const CentralPlan& plan = q.plan;
  if (!plan.aggregate_mode) {
    // Project operator: raw rows render and emit eagerly.
    ResultRow row;
    row.query_id = plan.query_id;
    row.window_start = w.start;
    row.window_end = w.start + plan.window_micros;
    row.values.reserve(plan.raw_select_programs.size());
    for (const ExprProgram& e : plan.raw_select_programs) {
      row.values.push_back(eval(e));
    }
    row.error_bounds.assign(row.values.size(), 0.0);
    ++q.stats.rows_emitted;
    q.sink(row);
    return;
  }

  GroupKey key;
  key.reserve(plan.group_by_programs.size());
  for (const ExprProgram& g : plan.group_by_programs) {
    key.push_back(eval(g));
  }
  // One hash per row, reused for the map probe (and, pre-bucketed, by the
  // sharded router).
  HashedGroupKey hk(std::move(key));
  const bool track = accountant_ != nullptr && accountant_->active();
  const size_t creation_bytes =
      track ? GroupCreationBytes(*config_, plan, hk.key) : 0;
  GroupState& group = w.groups[std::move(hk)];
  if (group.accumulators.empty()) {
    group.accumulators.resize(plan.aggregates.size());
    if (track) {
      ChargeState(q, w, creation_bytes);
    }
  }
  CollectGroupReadings(q, &group, host, eval);
  for (size_t i = 0; i < plan.aggregates.size(); ++i) {
    meter_->ChargeScrub(config_->costs.central_group_update_ns);
    const AggregateSpec& spec = plan.aggregates[i];
    Value arg;
    if (spec.has_arg) {
      arg = eval(spec.arg_program);
      if (arg.is_null()) {
        continue;  // SQL-style: aggregates skip null arguments
      }
    }
    UpdateAccumulatorValue(spec, &group.accumulators[i], arg);
  }
}

void Executor::GroupFoldTuple(QueryState& q, WindowState& w,
                              const EventTuple& tuple, HostId host) {
  GroupFoldWith(q, w, host,
                [&](const ExprProgram& e) { return EvalProgram(e, tuple); });
}

void Executor::GroupFoldColumn(QueryState& q, WindowState& w,
                               const ColumnBatch& batch, size_t row,
                               HostId host, const ChunkEvalCache* cache,
                               size_t pos) {
  GroupFoldWith(q, w, host, [&](const ExprProgram& e) {
    const Value* cached = cache != nullptr ? cache->Lookup(e, pos) : nullptr;
    return cached != nullptr ? *cached : EvalProgramColumns(e, batch, row);
  });
}

void Executor::GroupFoldMixed(QueryState& q, WindowState& w,
                              const std::vector<TupleSlot>& slots,
                              HostId host) {
  GroupFoldWith(q, w, host, [&](const ExprProgram& e) {
    return EvalProgramMixed(e, slots);
  });
}

void Executor::UpdateAccumulatorValue(const AggregateSpec& spec,
                                      AggAccumulator* acc, const Value& arg) {
  switch (spec.func) {
    case AggregateFunc::kCount:
      ++acc->count;
      return;
    case AggregateFunc::kSum:
      ++acc->count;
      acc->sum += arg.is_numeric() ? arg.AsNumber() : 0.0;
      return;
    case AggregateFunc::kAvg:
      ++acc->count;
      acc->sum += arg.is_numeric() ? arg.AsNumber() : 0.0;
      return;
    case AggregateFunc::kMin:
    case AggregateFunc::kMax:
      if (!acc->has_minmax) {
        acc->min_value = arg;
        acc->max_value = arg;
        acc->has_minmax = true;
      } else {
        if (arg.Compare(acc->min_value) < 0) {
          acc->min_value = arg;
        }
        if (arg.Compare(acc->max_value) > 0) {
          acc->max_value = arg;
        }
      }
      return;
    case AggregateFunc::kCountDistinct:
      if (acc->hll == nullptr) {
        acc->hll = std::make_unique<HyperLogLog>(config_->hll_precision);
      }
      acc->hll->AddHash(HashMix64(arg.Hash()));
      return;
    case AggregateFunc::kTopK: {
      if (acc->topk == nullptr) {
        const size_t capacity = std::max(
            config_->min_topk_capacity,
            static_cast<size_t>(spec.topk_k) *
                config_->topk_capacity_factor);
        acc->topk =
            std::make_unique<SpaceSaving<Value, ValueHash>>(capacity);
      }
      acc->topk->Add(arg);
      return;
    }
  }
}

double Executor::GroupScaleFor(const QueryState& q,
                               const WindowState& w) const {
  if (!q.pipeline.needs_scaling) {
    return 1.0;
  }
  // Ratio estimator: (N / n) * (sum M_i / sum m_i) over reporting hosts.
  uint64_t population = 0;
  uint64_t sampled = 0;
  for (const auto& [host, hs] : w.host_stats) {
    population += hs.population;
    sampled += hs.sampled;
  }
  double scale = 1.0;
  if (sampled > 0 && population > 0) {
    scale = static_cast<double>(population) / static_cast<double>(sampled);
  }
  if (q.plan.hosts_sampled > 0 && q.plan.hosts_targeted > 0) {
    scale *= static_cast<double>(q.plan.hosts_targeted) /
             static_cast<double>(q.plan.hosts_sampled);
  }
  return scale;
}

Value Executor::FinalizeAggregate(const QueryState& q, const WindowState& w,
                                  int slot, const AggAccumulator& acc,
                                  double group_scale,
                                  double* error_bound) const {
  *error_bound = 0.0;
  const AggregateSpec& spec = q.plan.aggregates[static_cast<size_t>(slot)];
  const std::vector<int>& bounded = q.pipeline.bounded_aggregates;
  const auto bounded_it = std::find(bounded.begin(), bounded.end(), slot);
  const double scale =
      (q.pipeline.needs_scaling && spec.ScalesUnderSampling()) ? group_scale
                                                               : 1.0;

  if (bounded_it != bounded.end()) {
    // Eq. 1-3 over the window's per-host stats (ungrouped single-instance
    // path; the sharded coordinator feeds FinalizeBoundedSlot directly from
    // merged per-group readings instead).
    const size_t b = static_cast<size_t>(bounded_it - bounded.begin());
    std::vector<HostSampleStats> hosts;
    for (const auto& [host, hs] : w.host_stats) {
      HostSampleStats h;
      h.population = hs.population;
      if (b < hs.readings.size()) {
        h.readings = hs.readings[b];
      }
      // Sampled-but-filtered events are zero readings.
      const uint64_t zeros =
          hs.sampled > hs.received ? hs.sampled - hs.received : 0;
      if (zeros > 0) {
        h.readings.Merge(RunningStats::Constant(zeros, 0.0));
      }
      hosts.push_back(std::move(h));
    }
    return FinalizeBoundedSlot(spec, acc, std::move(hosts),
                               q.plan.hosts_sampled, q.plan.hosts_targeted,
                               scale, error_bound);
  }

  return FinalizeAccumulator(spec, acc, scale);
}

double Executor::WindowCompleteness(const QueryState& q,
                                    const WindowState& w) const {
  // Expected set = the hosts the plan was disseminated to. With heartbeat
  // counters on, every reachable one leaves a host_stats entry per window.
  if (q.plan.hosts_sampled == 0) {
    return 1.0;  // expected set unknown (hand-installed plan)
  }
  const double frac = static_cast<double>(w.host_stats.size()) /
                      static_cast<double>(q.plan.hosts_sampled);
  return std::min(1.0, frac);
}

void Executor::CloseWindow(QueryState& q, WindowState* w) {
  if (w->closed) {
    return;
  }
  w->closed = true;
  // WindowClose metrics cover everything up to (not including) Finalize:
  // spill replay, completeness/fidelity accounting, orphan sweep, partial
  // export. rows_in = events the window absorbed, rows_out = groups held at
  // close, one batch per closed window.
  const bool metrics = MetricsOn();
  uint64_t t0 = 0;
  if (metrics) {
    EnsureOpIndex(q);
    t0 = WorkerPool::ThreadCpuNs();
  }
  const auto stamp_close = [&]() -> uint64_t {
    const uint64_t now = metrics ? WorkerPool::ThreadCpuNs() : 0;
    if (metrics && q.op_close >= 0) {
      OperatorMetrics& m =
          q.stats.op_metrics[static_cast<size_t>(q.op_close)];
      m.rows_in += w->input_events;
      m.rows_out += w->groups.size();
      m.batches += 1;
      m.cpu_ns += now - t0;
    }
    return now;
  };
  // Deferred events replay through the ordinary fold first, so completeness,
  // orphan accounting and emission below all see exactly the state the
  // unbounded run would have built.
  ReplaySpill(q, w);
  const CentralPlan& plan = q.plan;

  const double completeness = WindowCompleteness(q, *w);
  ++q.stats.windows_closed;
  q.stats.completeness_sum += completeness;
  q.stats.completeness_min = std::min(q.stats.completeness_min, completeness);
  if (completeness < 1.0) {
    ++q.stats.windows_incomplete;
  }

  // Fidelity: the fraction of events bound for this window that actually
  // folded in. The denominator includes the agent-side staging shed reported
  // via counters; the numerator drops every central-side ladder rung
  // (budget shed, join-capacity shed, spill I/O losses).
  uint64_t agent_shed = 0;
  for (const auto& [shed_host, hs] : w->host_stats) {
    agent_shed += hs.shed;
  }
  const uint64_t central_shed = std::min(w->shed_events, w->input_events);
  const uint64_t attempted = w->input_events + agent_shed;
  const double fidelity =
      attempted == 0 ? 1.0
                     : static_cast<double>(w->input_events - central_shed) /
                           static_cast<double>(attempted);
  q.stats.agent_events_shed += agent_shed;
  q.stats.fidelity_sum += fidelity;
  q.stats.fidelity_min = std::min(q.stats.fidelity_min, fidelity);
  if (fidelity < 1.0) {
    ++q.stats.windows_lossy;
  }
  // The window's charged state dies with it (partials move it to the
  // coordinator's accounting domain, emission frees it).
  const auto release_state = [&] {
    if (accountant_ != nullptr && w->state_bytes > 0) {
      accountant_->Release(q.plan.query_id, w->state_bytes);
      w->state_bytes = 0;
    }
  };

  // Join orphans: request ids where one side never arrived. Orphaned
  // columnar entries are still deferred here — they drop with the window
  // without ever materializing an Event.
  for (const auto& [rid, per_source] : w->join_state) {
    bool complete = true;
    uint64_t total = 0;
    for (const auto& side : per_source) {
      if (side.empty()) {
        complete = false;
      }
      total += side.size();
    }
    if (!complete) {
      q.stats.join_orphans += total;
    }
  }

  if (!plan.aggregate_mode) {
    stamp_close();
    release_state();
    return;  // raw rows were emitted eagerly (or on replay, just above)
  }

  if (q.partial_sink != nullptr) {
    // Shard mode: hand the mergeable state to the coordinator.
    WindowPartial partial;
    partial.query_id = plan.query_id;
    partial.window_start = w->start;
    partial.completeness = completeness;
    partial.input_events = w->input_events;
    partial.shed_events = central_shed;
    if (metrics) {
      // Export the delta since this shard's previous partial; the
      // coordinator sums deltas into upstream_op_metrics. Stamping close
      // first keeps this window's own close time inside its delta.
      stamp_close();
      q.exported_op_metrics.resize(q.stats.op_metrics.size());
      partial.op_metrics.resize(q.stats.op_metrics.size());
      for (size_t i = 0; i < q.stats.op_metrics.size(); ++i) {
        const OperatorMetrics& cur = q.stats.op_metrics[i];
        OperatorMetrics& base = q.exported_op_metrics[i];
        OperatorMetrics& delta = partial.op_metrics[i];
        delta.rows_in = cur.rows_in - base.rows_in;
        delta.rows_out = cur.rows_out - base.rows_out;
        delta.batches = cur.batches - base.batches;
        delta.cpu_ns = cur.cpu_ns - base.cpu_ns;
        base = cur;
      }
    }
    partial.keys.reserve(w->groups.size());
    partial.key_hashes.reserve(w->groups.size());
    partial.accumulators.reserve(w->groups.size());
    const bool ship_readings = q.pipeline.collect_group_readings;
    if (ship_readings) {
      partial.group_readings.reserve(w->groups.size());
    }
    for (auto& [hashed_key, group] : w->groups) {
      partial.keys.push_back(hashed_key.key);
      partial.key_hashes.push_back(hashed_key.hash);
      partial.accumulators.push_back(std::move(group.accumulators));
      if (ship_readings) {
        std::vector<GroupHostReadings> readings;
        readings.reserve(group.host_readings.size());
        for (auto& [reading_host, stats] : group.host_readings) {
          GroupHostReadings ghr;
          ghr.host = reading_host;
          ghr.readings = std::move(stats);
          readings.push_back(std::move(ghr));
        }
        partial.group_readings.push_back(std::move(readings));
      }
    }
    ++q.stats.rows_emitted;  // one partial per window
    q.partial_sink(std::move(partial));
    release_state();
    return;
  }

  // Everything below is the Finalize operator: estimator scales,
  // accumulator finalization, canonical-order emission.
  const uint64_t t_finalize = stamp_close();

  // Ungrouped aggregate queries emit a row even for an empty window, so
  // time series stay continuous.
  if (plan.group_by.empty() && w->groups.empty()) {
    GroupState& g = w->groups[HashedGroupKey(GroupKey{})];
    g.accumulators.resize(plan.aggregates.size());
  }

  const double group_scale = GroupScaleFor(q, *w);
  std::vector<std::pair<const HashedGroupKey*, GroupState*>> ordered;
  ordered.reserve(w->groups.size());
  for (auto& [hashed_key, group] : w->groups) {
    ordered.emplace_back(&hashed_key, &group);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              return CanonicalGroupOrder(*a.first, *b.first);
            });
  for (auto& [hashed_key_ptr, group_ptr] : ordered) {
    const HashedGroupKey& hashed_key = *hashed_key_ptr;
    GroupState& group = *group_ptr;
    ResultRow row;
    row.query_id = plan.query_id;
    row.window_start = w->start;
    row.window_end = w->start + plan.window_micros;
    row.completeness = completeness;
    row.fidelity = fidelity;

    std::vector<Value> agg_values(plan.aggregates.size());
    std::vector<double> agg_bounds(plan.aggregates.size(), 0.0);
    for (size_t i = 0; i < plan.aggregates.size(); ++i) {
      agg_values[i] =
          FinalizeAggregate(q, *w, static_cast<int>(i), group.accumulators[i],
                            group_scale, &agg_bounds[i]);
    }
    for (const OutputColumn& column : plan.outputs) {
      row.values.push_back(
          EvalOutputExpr(column.expr, hashed_key.key, agg_values));
      row.error_bounds.push_back(
          column.expr.kind == OutputKind::kAggregate
              ? agg_bounds[static_cast<size_t>(column.expr.index)]
              : 0.0);
    }
    ++q.stats.groups_emitted;
    ++q.stats.rows_emitted;
    q.sink(row);
  }
  if (metrics && q.op_finalize >= 0) {
    OperatorMetrics& m =
        q.stats.op_metrics[static_cast<size_t>(q.op_finalize)];
    m.rows_in += ordered.size();
    m.rows_out += ordered.size();
    m.batches += 1;
    m.cpu_ns += WorkerPool::ThreadCpuNs() - t_finalize;
  }
  release_state();
}

}  // namespace scrub
