// AdaptiveController: per-query execution tuning driven by the operator
// metrics plane (DESIGN.md §16).
//
// The controller runs at the coordinator tier (ScrubSystem pumps it once
// per flush tick, single-threaded) and makes exactly two kinds of decision
// per query, both provably transcript-neutral:
//
//  * Pipeline choice. New queries run a two-phase A/B calibration — a few
//    pumps forced onto the row pipeline, then a few on the columnar one
//    (if the plan is eligible) — measuring central CPU per folded row from
//    the operator metrics. The cheaper pipeline is then locked for the rest
//    of the query. Safe because both pipelines produce byte-identical
//    result transcripts and the agent applies the switch only at a flush
//    boundary where staging is provably empty.
//
//  * Flush batch size. In steady state the controller watches the decode
//    operator's average batch fill and doubles the agent's per-query batch
//    cap when flushes run near-full (halves it when they run near-empty),
//    within [min_batch_events, max_batch_events]. Safe because chunk
//    boundaries carry no fold effects at central.
//
// Determinism: the controller's inputs (central per-operator counters) are
// themselves bit-identical across worker counts, so its decision sequence —
// and therefore the transcript — is too. The `enabled` flag is a kill
// switch; when false the controller issues no overrides at all.

#ifndef SRC_CENTRAL_ADAPTIVE_H_
#define SRC_CENTRAL_ADAPTIVE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/central/executor.h"

namespace scrub {

struct AdaptiveConfig {
  // Master kill switch. Off (the default) means the controller never
  // issues an override: execution is exactly the static configuration.
  bool enabled = false;
  // Bounds for the per-query flush batch cap.
  size_t min_batch_events = 128;
  size_t max_batch_events = 16384;
  // Pumps spent measuring each pipeline during A/B calibration. A phase
  // extends itself until at least one row has been folded under it, so
  // slow-starting queries calibrate on real data.
  size_t calibration_pumps = 4;
  // Batch tuning cadence (pumps between re-evaluations) and the average
  // fill thresholds that trigger a resize.
  size_t tune_interval_pumps = 4;
  double grow_fill = 0.9;    // avg fill >= grow_fill * cap -> double
  double shrink_fill = 0.25;  // avg fill < shrink_fill * cap -> halve
};

// One logged decision, rendered verbatim by DescribeQuery.
struct AdaptiveDecision {
  TimeMicros at = 0;
  std::string text;
};

class AdaptiveController {
 public:
  // The override callbacks fan a decision out to the agent fleet;
  // ScrubSystem wires them to ScrubAgent::SetBatchOverride /
  // SetPipelineOverride on every host.
  using BatchOverrideFn = std::function<void(QueryId, size_t)>;
  using PipelineOverrideFn = std::function<void(QueryId, bool)>;

  AdaptiveController(AdaptiveConfig config, size_t default_batch,
                     bool default_columnar, BatchOverrideFn set_batch,
                     PipelineOverrideFn set_pipeline)
      : config_(config),
        default_batch_(default_batch),
        default_columnar_(default_columnar),
        set_batch_(std::move(set_batch)),
        set_pipeline_(std::move(set_pipeline)) {}

  // Registers a query. `columnar_eligible` gates pipeline calibration:
  // plans that pre-aggregate host-side or exceed the columnar wire's join
  // section cap only ever run the row pipeline, so there is nothing to A/B.
  void OnInstall(QueryId id, TimeMicros now, bool columnar_eligible);

  // One control step for one query, fed the central's live stats. Called
  // from the single-threaded pump; never concurrently.
  void OnPump(QueryId id, TimeMicros now, const CentralQueryStats& stats);

  // Decision log for DescribeQuery (empty string when the controller never
  // saw the query or is disabled).
  std::string Describe(QueryId id) const;

  const std::vector<AdaptiveDecision>* DecisionsFor(QueryId id) const;

  bool enabled() const { return config_.enabled; }

 private:
  enum class Phase { kCalibrateRow, kCalibrateColumnar, kSteady };

  struct QueryControl {
    Phase phase = Phase::kSteady;
    bool eligible = false;
    bool pipeline_columnar = false;  // current choice
    size_t batch = 0;                // current flush cap
    size_t pumps_in_phase = 0;
    size_t pumps_since_tune = 0;
    // Metric snapshot at phase entry: total pipeline CPU and decode input
    // rows/batches, so each phase measures only its own traffic.
    uint64_t base_cpu = 0;
    uint64_t base_rows = 0;
    uint64_t base_batches = 0;
    double row_ns_per_row = -1.0;
    double col_ns_per_row = -1.0;
    std::vector<AdaptiveDecision> decisions;
  };

  void Snapshot(QueryControl& c, const CentralQueryStats& stats) const;
  // CPU and decode-input deltas since the last Snapshot.
  void Deltas(const QueryControl& c, const CentralQueryStats& stats,
              uint64_t* cpu, uint64_t* rows, uint64_t* batches) const;
  void Log(QueryControl& c, TimeMicros now, std::string text);
  void EnterSteady(QueryId id, TimeMicros now, QueryControl& c,
                   const CentralQueryStats& stats);
  void TuneBatch(QueryId id, TimeMicros now, QueryControl& c,
                 const CentralQueryStats& stats);

  AdaptiveConfig config_;
  size_t default_batch_;
  bool default_columnar_;
  BatchOverrideFn set_batch_;
  PipelineOverrideFn set_pipeline_;
  // Ordered map: Describe and tests iterate deterministically; state
  // survives query retirement for post-mortem DescribeQuery.
  std::map<QueryId, QueryControl> queries_;
};

}  // namespace scrub

#endif  // SRC_CENTRAL_ADAPTIVE_H_
