#include "src/server/query_server.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"
#include "src/query/parser.h"

namespace scrub {

QueryServer::QueryServer(Scheduler* scheduler, Transport* transport,
                         HostRegistry* registry, const SchemaRegistry* schemas,
                         ScrubCentral* central, HostId server_host,
                         HostId central_host, AgentAccessor agents,
                         ServerConfig config)
    : scheduler_(scheduler),
      transport_(transport),
      registry_(registry),
      schemas_(schemas),
      central_(central),
      server_host_(server_host),
      central_host_(central_host),
      agents_(std::move(agents)),
      config_(config),
      rng_(config.host_sampling_seed),
      ctrl_rng_(config.host_sampling_seed ^ 0xA5A5A5A5A5A5A5A5ULL) {}

Result<SubmittedQuery> QueryServer::Submit(std::string_view query_text,
                                           ResultSink user_sink) {
  Result<Query> parsed = ParseQuery(query_text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return SubmitParsed(*parsed, std::move(user_sink));
}

Result<SubmittedQuery> QueryServer::SubmitParsed(const Query& query,
                                                 ResultSink user_sink) {
  if (active_.size() >= config_.max_active_queries) {
    return ResourceExhausted(StrFormat(
        "query limit reached (%zu active); retry after some expire",
        active_.size()));
  }
  Result<AnalyzedQuery> analyzed =
      Analyze(query, *schemas_, config_.analyzer);
  if (!analyzed.ok()) {
    return analyzed.status();
  }

  // Static analysis gate: errors reject before any query object ships;
  // warnings and notes travel back with the accepted query.
  std::vector<Diagnostic> lint_warnings;
  if (config_.lint_enabled) {
    LintOptions lint_options = config_.lint;
    lint_options.fleet_hosts = registry_->MonitorableCount();
    lint_options.max_duration_micros = config_.analyzer.max_duration_micros;
    std::vector<Diagnostic> diags = LintQuery(*analyzed, lint_options);
    if (HasLintErrors(diags)) {
      std::string rendered;
      for (const Diagnostic& d : diags) {
        if (d.severity == LintSeverity::kError) {
          if (!rendered.empty()) {
            rendered += "; ";
          }
          rendered += RenderDiagnostic(d);
        }
      }
      return InvalidArgument("rejected by lint: " + rendered);
    }
    lint_warnings = std::move(diags);
  }

  // Predicted-cost admission: under heavy multi-tenant traffic the query
  // limit alone cannot protect central — 64 cheap queries and 64 full-fleet
  // unsampled scans are very different loads. Predict this query's central
  // CPU demand from the (possibly runtime-calibrated) cost model and admit
  // only if the running sum stays under budget.
  uint64_t predicted_cost = 0;
  if (config_.central_cpu_budget_ns_per_sec > 0) {
    LintOptions lint_options = config_.lint;
    lint_options.fleet_hosts = registry_->MonitorableCount();
    predicted_cost = PredictCentralCostNsPerSec(*analyzed, lint_options);
    if (admitted_cost_ns_ + predicted_cost >
        config_.central_cpu_budget_ns_per_sec) {
      ++rejected_cost_;
      return ResourceExhausted(StrFormat(
          "predicted central cost %llu ns/s exceeds remaining budget "
          "(%llu of %llu ns/s admitted); retry after some queries expire",
          static_cast<unsigned long long>(predicted_cost),
          static_cast<unsigned long long>(admitted_cost_ns_),
          static_cast<unsigned long long>(
              config_.central_cpu_budget_ns_per_sec)));
    }
  }

  // Resolve the target clause BEFORE minting the id: a bad clause fails the
  // submission outright.
  Result<std::vector<HostId>> targeted =
      registry_->Resolve(analyzed->query.targets);
  if (!targeted.ok()) {
    return targeted.status();
  }
  if (targeted->empty()) {
    return NotFound("target clause matches no hosts");
  }

  const QueryId id = next_query_id_++;
  Result<QueryPlan> plan = PlanQuery(*analyzed, id, scheduler_->Now());
  if (!plan.ok()) {
    return plan.status();
  }

  // Host-level sampling: a uniform subset of the targeted hosts.
  std::vector<HostId> chosen = *targeted;
  const double rate = analyzed->query.host_sample_rate;
  if (rate < 1.0) {
    // Fisher-Yates prefix shuffle with the server's deterministic RNG.
    for (size_t i = 0; i + 1 < chosen.size(); ++i) {
      const size_t j =
          i + static_cast<size_t>(rng_.NextBelow(chosen.size() - i));
      std::swap(chosen[i], chosen[j]);
    }
    const size_t n = std::max<size_t>(
        1, static_cast<size_t>(
               std::llround(rate * static_cast<double>(chosen.size()))));
    chosen.resize(n);
    std::sort(chosen.begin(), chosen.end());
  }

  plan->central.hosts_targeted = targeted->size();
  plan->central.hosts_sampled = chosen.size();

  // Agent-side pre-aggregation ablation: stamp the host plan only when the
  // host-side fold is provably the central fold — a single-source,
  // unsampled aggregate query whose aggregates are all plain COUNT/SUM.
  // Sampled plans are excluded because Eq. 2-3 error bounds need per-host
  // readings no delta cell can carry; sketches/min-max stay central-side.
  if (config_.agent_preaggregate && plan->central.aggregate_mode &&
      !plan->central.is_join() && !plan->central.SamplingActive()) {
    bool eligible = true;
    for (const AggregateSpec& spec : plan->central.aggregates) {
      if (spec.func != AggregateFunc::kCount &&
          spec.func != AggregateFunc::kSum) {
        eligible = false;
        break;
      }
    }
    if (eligible) {
      plan->host.preaggregate = true;
      plan->host.group_by_programs = plan->central.group_by_programs;
      plan->host.preagg.reserve(plan->central.aggregates.size());
      for (const AggregateSpec& spec : plan->central.aggregates) {
        HostPlan::PreAggSpec p;
        p.func = spec.func;
        p.has_arg = spec.has_arg;
        p.arg_program = spec.arg_program;
        plan->host.preagg.push_back(std::move(p));
      }
    }
  }

  ActiveInfo info;
  info.installed_hosts = chosen;
  info.end_time = plan->host.end_time;
  info.host_plan = plan->host;
  info.central_plan = plan->central;
  // Result rows route central -> server -> user.
  info.routed_sink = [this, sink = std::move(user_sink)](
                         const ResultRow& row) {
    size_t bytes = 24;
    for (const Value& v : row.values) {
      bytes += v.WireSize();
    }
    transport_->Send(central_host_, server_host_, bytes,
                     TrafficCategory::kScrubResults,
                     [sink, row] { sink(row); });
  };
  info.unacked_installs.insert(chosen.begin(), chosen.end());
  info.predicted_cost_ns_per_sec = predicted_cost;
  admitted_cost_ns_ += predicted_cost;
  active_.emplace(id, std::move(info));
  Disseminate(id);

  // Schedule teardown just past the span (agents and central self-expire
  // too; the explicit teardown frees state promptly when messages arrive).
  scheduler_->ScheduleAt(plan->host.end_time + 1, [this, id] { Teardown(id); });

  SubmittedQuery out;
  out.id = id;
  out.hosts_targeted = targeted->size();
  out.hosts_installed = chosen.size();
  out.start_time = plan->host.start_time;
  out.end_time = plan->host.end_time;
  out.lint_warnings = std::move(lint_warnings);
  return out;
}

TimeMicros QueryServer::Jittered(TimeMicros base) {
  const TimeMicros quarter = std::max<TimeMicros>(base / 4, 1);
  return base - quarter +
         static_cast<TimeMicros>(
             ctrl_rng_.NextBelow(static_cast<uint64_t>(2 * quarter)));
}

void QueryServer::Disseminate(QueryId id) {
  ActiveInfo& info = active_.at(id);
  ControlStats& cs = control_stats_[id];
  // Central first: its query object carries the join/group-by/aggregation
  // operators.
  ++cs.install_sends;
  SendCentralInstall(id);
  // Then the host-side query objects: selection + projection + sampling.
  for (const HostId host : info.installed_hosts) {
    ++cs.install_sends;
    SendHostInstall(id, host);
  }
  info.retry_backoff = config_.control_retry_timeout;
  ScheduleInstallRetry(id);
}

void QueryServer::SendCentralInstall(QueryId id) {
  const ActiveInfo& info = active_.at(id);
  const CentralPlan central_plan = info.central_plan;
  const ResultSink routed = info.routed_sink;
  transport_->Send(
      server_host_, central_host_, 256, TrafficCategory::kScrubControl,
      [this, central_plan, routed] {
        // Install failures here are programming errors (the plan was
        // validated at submission); a re-send hits AlreadyExists, which is
        // exactly the idempotence we want — ack either way.
        if (config_.central_install) {
          (void)config_.central_install(central_plan, routed);
        } else {
          (void)central_->InstallQuery(central_plan, routed);
        }
        const QueryId qid = central_plan.query_id;
        transport_->Send(central_host_, server_host_, 24,
                         TrafficCategory::kScrubControl,
                         [this, qid] { HandleCentralAck(qid); });
      });
}

void QueryServer::SendHostInstall(QueryId id, HostId host) {
  const HostPlan host_plan = active_.at(id).host_plan;
  transport_->Send(
      server_host_, host, host_plan.WireSize(),
      TrafficCategory::kScrubControl, [this, host, host_plan] {
        ScrubAgent* agent = agents_(host);
        if (agent == nullptr) {
          return;
        }
        agent->InstallQuery(host_plan);
        const QueryId qid = host_plan.query_id;
        transport_->Send(host, server_host_, 24,
                         TrafficCategory::kScrubControl,
                         [this, qid, host] { HandleInstallAck(qid, host); });
      });
}

void QueryServer::ScheduleInstallRetry(QueryId id) {
  const TimeMicros delay = Jittered(active_.at(id).retry_backoff);
  scheduler_->ScheduleAfter(delay, [this, id] { InstallRetryTick(id); });
}

void QueryServer::InstallRetryTick(QueryId id) {
  const auto it = active_.find(id);
  if (it == active_.end()) {
    return;  // torn down or cancelled
  }
  ActiveInfo& info = it->second;
  if (scheduler_->Now() >= info.end_time) {
    return;  // span over; self-expiry owns cleanup now
  }
  if (info.central_acked && info.unacked_installs.empty()) {
    return;  // fully disseminated
  }
  ControlStats& cs = control_stats_[id];
  if (!info.central_acked) {
    ++cs.install_retries;
    SendCentralInstall(id);
  }
  for (const HostId host : info.unacked_installs) {
    ++cs.install_retries;
    SendHostInstall(id, host);
  }
  info.retry_backoff =
      std::min(info.retry_backoff * 2, config_.control_retry_max_backoff);
  ScheduleInstallRetry(id);
}

void QueryServer::HandleInstallAck(QueryId id, HostId host) {
  ++control_stats_[id].install_acks;
  const auto it = active_.find(id);
  if (it != active_.end()) {
    it->second.unacked_installs.erase(host);
  }
}

void QueryServer::HandleCentralAck(QueryId id) {
  ++control_stats_[id].install_acks;
  const auto it = active_.find(id);
  if (it != active_.end()) {
    it->second.central_acked = true;
  }
}

void QueryServer::OnHostRestart(HostId host) {
  const TimeMicros now = scheduler_->Now();
  for (auto& [id, info] : active_) {
    if (now >= info.end_time) {
      continue;
    }
    if (std::find(info.installed_hosts.begin(), info.installed_hosts.end(),
                  host) == info.installed_hosts.end()) {
      continue;
    }
    ControlStats& cs = control_stats_[id];
    ++cs.reinstalls;
    info.unacked_installs.insert(host);
    SendHostInstall(id, host);
    info.retry_backoff = config_.control_retry_timeout;
    ScheduleInstallRetry(id);
  }
}

void QueryServer::SendTeardown(QueryId id, HostId host) {
  transport_->Send(
      server_host_, host, 32, TrafficCategory::kScrubControl,
      [this, host, id] {
        ScrubAgent* agent = agents_(host);
        if (agent == nullptr) {
          return;
        }
        agent->RemoveQuery(id);
        transport_->Send(host, server_host_, 24,
                         TrafficCategory::kScrubControl,
                         [this, id, host] { HandleTeardownAck(id, host); });
      });
}

void QueryServer::Teardown(QueryId id) {
  const auto it = active_.find(id);
  if (it == active_.end()) {
    return;
  }
  ControlStats& cs = control_stats_[id];
  PendingTeardown pending;
  pending.unacked.insert(it->second.installed_hosts.begin(),
                         it->second.installed_hosts.end());
  pending.backoff = config_.control_retry_timeout;
  for (const HostId host : it->second.installed_hosts) {
    ++cs.teardown_sends;
    SendTeardown(id, host);
  }
  // Central keeps the query alive until end_time + allowed lateness so the
  // final windows drain; its own OnTick retires it. The query's predicted
  // cost charge is released with it.
  admitted_cost_ns_ -=
      std::min(admitted_cost_ns_, it->second.predicted_cost_ns_per_sec);
  active_.erase(it);
  if (!pending.unacked.empty()) {
    const TimeMicros delay = Jittered(pending.backoff);
    teardowns_.emplace(id, std::move(pending));
    scheduler_->ScheduleAfter(delay, [this, id] { TeardownRetryTick(id); });
  }
}

void QueryServer::TeardownRetryTick(QueryId id) {
  const auto it = teardowns_.find(id);
  if (it == teardowns_.end()) {
    return;
  }
  PendingTeardown& pending = it->second;
  if (pending.unacked.empty() ||
      pending.attempts >= config_.teardown_max_attempts) {
    // Fully acked, or budget spent: self-expiry is the backstop for any
    // host that stayed unreachable.
    teardowns_.erase(it);
    return;
  }
  ++pending.attempts;
  ControlStats& cs = control_stats_[id];
  for (const HostId host : pending.unacked) {
    ++cs.teardown_retries;
    SendTeardown(id, host);
  }
  pending.backoff =
      std::min(pending.backoff * 2, config_.control_retry_max_backoff);
  const TimeMicros delay = Jittered(pending.backoff);
  scheduler_->ScheduleAfter(delay, [this, id] { TeardownRetryTick(id); });
}

void QueryServer::HandleTeardownAck(QueryId id, HostId host) {
  ++control_stats_[id].teardown_acks;
  const auto it = teardowns_.find(id);
  if (it == teardowns_.end()) {
    return;
  }
  it->second.unacked.erase(host);
  if (it->second.unacked.empty()) {
    teardowns_.erase(it);
  }
}

Status QueryServer::Cancel(QueryId id) {
  const auto it = active_.find(id);
  if (it == active_.end()) {
    return NotFound(StrFormat("query %llu is not active",
                              static_cast<unsigned long long>(id)));
  }
  // Central removal is single-shot: a lost cancel leaves central running
  // until its own span-end self-expiry, which is acceptable.
  transport_->Send(server_host_, central_host_, 32,
                   TrafficCategory::kScrubControl, [this, id] {
                     if (config_.central_remove) {
                       config_.central_remove(id);
                     } else {
                       central_->RemoveQuery(id);
                     }
                   });
  // Agent removal goes through the reliable teardown machinery.
  Teardown(id);
  return OkStatus();
}

const ControlStats* QueryServer::ControlStatsFor(QueryId id) const {
  const auto it = control_stats_.find(id);
  return it == control_stats_.end() ? nullptr : &it->second;
}

const HostPlan* QueryServer::HostPlanFor(QueryId id) const {
  const auto it = active_.find(id);
  return it == active_.end() ? nullptr : &it->second.host_plan;
}

}  // namespace scrub
