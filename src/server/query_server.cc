#include "src/server/query_server.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"
#include "src/query/parser.h"

namespace scrub {

QueryServer::QueryServer(Scheduler* scheduler, Transport* transport,
                         HostRegistry* registry, const SchemaRegistry* schemas,
                         ScrubCentral* central, HostId server_host,
                         HostId central_host, AgentAccessor agents,
                         ServerConfig config)
    : scheduler_(scheduler),
      transport_(transport),
      registry_(registry),
      schemas_(schemas),
      central_(central),
      server_host_(server_host),
      central_host_(central_host),
      agents_(std::move(agents)),
      config_(config),
      rng_(config.host_sampling_seed) {}

Result<SubmittedQuery> QueryServer::Submit(std::string_view query_text,
                                           ResultSink user_sink) {
  Result<Query> parsed = ParseQuery(query_text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return SubmitParsed(*parsed, std::move(user_sink));
}

Result<SubmittedQuery> QueryServer::SubmitParsed(const Query& query,
                                                 ResultSink user_sink) {
  if (active_.size() >= config_.max_active_queries) {
    return ResourceExhausted(StrFormat(
        "query limit reached (%zu active); retry after some expire",
        active_.size()));
  }
  Result<AnalyzedQuery> analyzed =
      Analyze(query, *schemas_, config_.analyzer);
  if (!analyzed.ok()) {
    return analyzed.status();
  }

  // Static analysis gate: errors reject before any query object ships;
  // warnings and notes travel back with the accepted query.
  std::vector<Diagnostic> lint_warnings;
  if (config_.lint_enabled) {
    LintOptions lint_options = config_.lint;
    lint_options.fleet_hosts = registry_->MonitorableCount();
    lint_options.max_duration_micros = config_.analyzer.max_duration_micros;
    std::vector<Diagnostic> diags = LintQuery(*analyzed, lint_options);
    if (HasLintErrors(diags)) {
      std::string rendered;
      for (const Diagnostic& d : diags) {
        if (d.severity == LintSeverity::kError) {
          if (!rendered.empty()) {
            rendered += "; ";
          }
          rendered += RenderDiagnostic(d);
        }
      }
      return InvalidArgument("rejected by lint: " + rendered);
    }
    lint_warnings = std::move(diags);
  }

  // Resolve the target clause BEFORE minting the id: a bad clause fails the
  // submission outright.
  Result<std::vector<HostId>> targeted =
      registry_->Resolve(analyzed->query.targets);
  if (!targeted.ok()) {
    return targeted.status();
  }
  if (targeted->empty()) {
    return NotFound("target clause matches no hosts");
  }

  const QueryId id = next_query_id_++;
  Result<QueryPlan> plan = PlanQuery(*analyzed, id, scheduler_->Now());
  if (!plan.ok()) {
    return plan.status();
  }

  // Host-level sampling: a uniform subset of the targeted hosts.
  std::vector<HostId> chosen = *targeted;
  const double rate = analyzed->query.host_sample_rate;
  if (rate < 1.0) {
    // Fisher-Yates prefix shuffle with the server's deterministic RNG.
    for (size_t i = 0; i + 1 < chosen.size(); ++i) {
      const size_t j =
          i + static_cast<size_t>(rng_.NextBelow(chosen.size() - i));
      std::swap(chosen[i], chosen[j]);
    }
    const size_t n = std::max<size_t>(
        1, static_cast<size_t>(
               std::llround(rate * static_cast<double>(chosen.size()))));
    chosen.resize(n);
    std::sort(chosen.begin(), chosen.end());
  }

  plan->central.hosts_targeted = targeted->size();
  plan->central.hosts_sampled = chosen.size();

  Disseminate(id, *plan, chosen, std::move(user_sink));

  ActiveInfo info;
  info.installed_hosts = chosen;
  info.end_time = plan->host.end_time;
  active_.emplace(id, std::move(info));

  // Schedule teardown just past the span (agents and central self-expire
  // too; the explicit teardown frees state promptly when messages arrive).
  scheduler_->ScheduleAt(plan->host.end_time + 1, [this, id] { Teardown(id); });

  SubmittedQuery out;
  out.id = id;
  out.hosts_targeted = targeted->size();
  out.hosts_installed = chosen.size();
  out.start_time = plan->host.start_time;
  out.end_time = plan->host.end_time;
  out.lint_warnings = std::move(lint_warnings);
  return out;
}

void QueryServer::Disseminate(QueryId /*id*/, const QueryPlan& plan,
                              const std::vector<HostId>& hosts,
                              ResultSink user_sink) {
  // Central first: its query object carries the join/group-by/aggregation
  // operators. Result rows route central -> server -> user.
  const CentralPlan central_plan = plan.central;
  ResultSink routed = [this, sink = std::move(user_sink)](
                          const ResultRow& row) {
    size_t bytes = 24;
    for (const Value& v : row.values) {
      bytes += v.WireSize();
    }
    transport_->Send(central_host_, server_host_, bytes,
                     TrafficCategory::kScrubResults,
                     [sink, row] { sink(row); });
  };
  transport_->Send(server_host_, central_host_, 256,
                   TrafficCategory::kScrubControl,
                   [this, central_plan, routed] {
                     // Install failures here are programming errors (the
                     // plan was validated at submission).
                     (void)central_->InstallQuery(central_plan, routed);
                   });

  // Then the host-side query objects: selection + projection + sampling.
  for (const HostId host : hosts) {
    const HostPlan host_plan = plan.host;
    transport_->Send(server_host_, host, host_plan.WireSize(),
                     TrafficCategory::kScrubControl,
                     [this, host, host_plan] {
                       ScrubAgent* agent = agents_(host);
                       if (agent != nullptr) {
                         agent->InstallQuery(host_plan);
                       }
                     });
  }
}

void QueryServer::Teardown(QueryId id) {
  const auto it = active_.find(id);
  if (it == active_.end()) {
    return;
  }
  for (const HostId host : it->second.installed_hosts) {
    transport_->Send(server_host_, host, 32, TrafficCategory::kScrubControl,
                     [this, host, id] {
                       ScrubAgent* agent = agents_(host);
                       if (agent != nullptr) {
                         agent->RemoveQuery(id);
                       }
                     });
  }
  // Central keeps the query alive until end_time + allowed lateness so the
  // final windows drain; its own OnTick retires it.
  active_.erase(it);
}

Status QueryServer::Cancel(QueryId id) {
  const auto it = active_.find(id);
  if (it == active_.end()) {
    return NotFound(StrFormat("query %llu is not active",
                              static_cast<unsigned long long>(id)));
  }
  for (const HostId host : it->second.installed_hosts) {
    transport_->Send(server_host_, host, 32, TrafficCategory::kScrubControl,
                     [this, host, id] {
                       ScrubAgent* agent = agents_(host);
                       if (agent != nullptr) {
                         agent->RemoveQuery(id);
                       }
                     });
  }
  transport_->Send(server_host_, central_host_, 32,
                   TrafficCategory::kScrubControl,
                   [this, id] { central_->RemoveQuery(id); });
  active_.erase(it);
  return OkStatus();
}

}  // namespace scrub
