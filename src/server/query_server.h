// The Scrub query server (Section 4, Figure 3).
//
// Users submit query text here. The server parses and validates the query,
// mints a unique query identifier, splits it into host-side and central-side
// query objects, resolves the @[...] target clause against the host
// registry, applies host-level sampling, and disseminates the query objects:
// selection/projection plans to the chosen application hosts,
// join/group-by/aggregation plans to ScrubCentral. Result rows flow back
// from ScrubCentral through the server to the submitting user's sink.
//
// Every query has a finite span; at expiry the server sends teardown
// messages (and agents/central also self-expire, so a lost teardown cannot
// leave load behind).

#ifndef SRC_SERVER_QUERY_SERVER_H_
#define SRC_SERVER_QUERY_SERVER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/agent/agent.h"
#include "src/central/central.h"
#include "src/cluster/host_registry.h"
#include "src/cluster/scheduler.h"
#include "src/cluster/transport.h"
#include "src/common/rng.h"
#include "src/lint/lint.h"
#include "src/query/analyzer.h"

namespace scrub {

// How the server reaches the agent running on a given host. The simulation
// harness owns the agents; the server only addresses them.
using AgentAccessor = std::function<ScrubAgent*(HostId)>;

struct ServerConfig {
  AnalyzerOptions analyzer;
  // Static analysis at admission (Section 3.2's operational discipline made
  // mechanical): error-severity findings reject the submission before any
  // query object reaches a host; warnings/notes ride back on the accepted
  // SubmittedQuery. `lint.fleet_hosts` is overridden with the live registry
  // count at each submission.
  bool lint_enabled = true;
  LintOptions lint;
  uint64_t host_sampling_seed = 0x5eed;
  // Admission control: Scrub serves many users at once, but a runaway
  // script submitting queries in a loop must not be able to blanket the
  // fleet. Submissions beyond this are rejected with kResourceExhausted.
  size_t max_active_queries = 64;
};

struct SubmittedQuery {
  QueryId id = 0;
  size_t hosts_targeted = 0;   // N: hosts matched by the target clause
  size_t hosts_installed = 0;  // n: after host-level sampling
  TimeMicros start_time = 0;
  TimeMicros end_time = 0;
  // Non-fatal lint findings (warnings/notes) for the accepted query.
  std::vector<Diagnostic> lint_warnings;
};

class QueryServer {
 public:
  QueryServer(Scheduler* scheduler, Transport* transport,
              HostRegistry* registry, const SchemaRegistry* schemas,
              ScrubCentral* central, HostId server_host, HostId central_host,
              AgentAccessor agents, ServerConfig config = {});

  // Parse + validate + plan + disseminate. Rows arrive on `user_sink` as
  // windows close at ScrubCentral.
  Result<SubmittedQuery> Submit(std::string_view query_text,
                                ResultSink user_sink);
  Result<SubmittedQuery> SubmitParsed(const Query& query,
                                      ResultSink user_sink);

  // Early cancellation (before the span expires).
  Status Cancel(QueryId id);

  size_t active_queries() const { return active_.size(); }
  uint64_t queries_submitted() const { return next_query_id_ - 1; }

 private:
  struct ActiveInfo {
    std::vector<HostId> installed_hosts;
    TimeMicros end_time = 0;
  };

  void Disseminate(QueryId id, const QueryPlan& plan,
                   const std::vector<HostId>& hosts, ResultSink user_sink);
  void Teardown(QueryId id);

  Scheduler* scheduler_;
  Transport* transport_;
  HostRegistry* registry_;
  const SchemaRegistry* schemas_;
  ScrubCentral* central_;
  HostId server_host_;
  HostId central_host_;
  AgentAccessor agents_;
  ServerConfig config_;
  Rng rng_;
  QueryId next_query_id_ = 1;
  std::unordered_map<QueryId, ActiveInfo> active_;
};

}  // namespace scrub

#endif  // SRC_SERVER_QUERY_SERVER_H_
