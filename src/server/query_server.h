// The Scrub query server (Section 4, Figure 3).
//
// Users submit query text here. The server parses and validates the query,
// mints a unique query identifier, splits it into host-side and central-side
// query objects, resolves the @[...] target clause against the host
// registry, applies host-level sampling, and disseminates the query objects:
// selection/projection plans to the chosen application hosts,
// join/group-by/aggregation plans to ScrubCentral. Result rows flow back
// from ScrubCentral through the server to the submitting user's sink.
//
// Every query has a finite span; at expiry the server sends teardown
// messages (and agents/central also self-expire, so a lost teardown cannot
// leave load behind).
//
// Control-plane reliability: every install and teardown is acked by its
// recipient, and the server retries unacked messages with exponential
// backoff + jitter — installs until every chosen host and central have
// acked (or the span ends), teardowns a bounded number of times (agents
// self-expire, so teardown retries are an optimization, not a correctness
// requirement). A host that restarts mid-span gets its still-live query
// objects re-disseminated via OnHostRestart.

#ifndef SRC_SERVER_QUERY_SERVER_H_
#define SRC_SERVER_QUERY_SERVER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/agent/agent.h"
#include "src/central/central.h"
#include "src/cluster/host_registry.h"
#include "src/cluster/scheduler.h"
#include "src/cluster/transport.h"
#include "src/common/rng.h"
#include "src/lint/lint.h"
#include "src/query/analyzer.h"

namespace scrub {

// How the server reaches the agent running on a given host. The simulation
// harness owns the agents; the server only addresses them.
using AgentAccessor = std::function<ScrubAgent*(HostId)>;

struct ServerConfig {
  AnalyzerOptions analyzer;
  // Static analysis at admission (Section 3.2's operational discipline made
  // mechanical): error-severity findings reject the submission before any
  // query object reaches a host; warnings/notes ride back on the accepted
  // SubmittedQuery. `lint.fleet_hosts` is overridden with the live registry
  // count at each submission.
  bool lint_enabled = true;
  LintOptions lint;
  uint64_t host_sampling_seed = 0x5eed;
  // Admission control: Scrub serves many users at once, but a runaway
  // script submitting queries in a loop must not be able to blanket the
  // fleet. Submissions beyond this are rejected with kResourceExhausted.
  size_t max_active_queries = 64;
  // Control-plane retry policy: first retry after this timeout, doubling
  // per round (capped), with +/-25% jitter.
  TimeMicros control_retry_timeout = 250 * kMicrosPerMilli;
  TimeMicros control_retry_max_backoff = 2 * kMicrosPerSecond;
  // Teardown retries are bounded: self-expiry is the backstop, so a host
  // that stays unreachable must not be paged forever.
  int teardown_max_attempts = 4;
  // Hierarchical deployments route central-side installs/removals through
  // a coordinator front-end (ScrubSystem overrides these when a combiner
  // tier is configured). Unset means the plain ScrubCentral passed at
  // construction — the flat topology.
  std::function<Status(const CentralPlan&, ResultSink)> central_install;
  std::function<void(QueryId)> central_remove;
  // Paper-faithful ablation: stamp eligible COUNT/SUM-only aggregate
  // queries for agent-side pre-aggregation (HostPlan::preaggregate), the
  // relaxation of the paper's strict hosts-select-only rule.
  bool agent_preaggregate = false;
  // Predicted-cost admission control for heavy multi-tenant traffic: each
  // submission's central CPU demand is predicted from the lint cost model
  // (PredictCentralCostNsPerSec) and the sum over live queries must stay
  // under this budget, else the submission is rejected with
  // kResourceExhausted. 0 (default) disables the check. Calibrating the
  // lint cost model from observed operator metrics tightens the prediction
  // (ScrubSystem::CalibrateLintCosts).
  uint64_t central_cpu_budget_ns_per_sec = 0;
};

// Per-query control-plane delivery accounting; retained after teardown.
struct ControlStats {
  uint64_t install_sends = 0;      // initial host + central install messages
  uint64_t install_retries = 0;    // re-sent unacked installs
  uint64_t install_acks = 0;
  uint64_t reinstalls = 0;         // restart-triggered re-dissemination
  uint64_t teardown_sends = 0;
  uint64_t teardown_retries = 0;
  uint64_t teardown_acks = 0;
};

struct SubmittedQuery {
  QueryId id = 0;
  size_t hosts_targeted = 0;   // N: hosts matched by the target clause
  size_t hosts_installed = 0;  // n: after host-level sampling
  TimeMicros start_time = 0;
  TimeMicros end_time = 0;
  // Non-fatal lint findings (warnings/notes) for the accepted query.
  std::vector<Diagnostic> lint_warnings;
};

class QueryServer {
 public:
  QueryServer(Scheduler* scheduler, Transport* transport,
              HostRegistry* registry, const SchemaRegistry* schemas,
              ScrubCentral* central, HostId server_host, HostId central_host,
              AgentAccessor agents, ServerConfig config = {});

  // Parse + validate + plan + disseminate. Rows arrive on `user_sink` as
  // windows close at ScrubCentral.
  Result<SubmittedQuery> Submit(std::string_view query_text,
                                ResultSink user_sink);
  Result<SubmittedQuery> SubmitParsed(const Query& query,
                                      ResultSink user_sink);

  // Early cancellation (before the span expires).
  Status Cancel(QueryId id);

  // The simulation harness reports a crashed host coming back: any of the
  // host's still-live query objects are re-disseminated (the fresh agent
  // lost them with the crash).
  void OnHostRestart(HostId host);

  size_t active_queries() const { return active_.size(); }
  uint64_t queries_submitted() const { return next_query_id_ - 1; }
  // Unacked teardowns still being retried (introspection for tests).
  size_t pending_teardowns() const { return teardowns_.size(); }
  const ControlStats* ControlStatsFor(QueryId id) const;
  // The retained host-side plan of a live query (null after teardown).
  // The adaptive controller reads pipeline eligibility from it.
  const HostPlan* HostPlanFor(QueryId id) const;
  // Replaces the lint cost model (admission linting AND the predicted-cost
  // admission check pick up the new unit costs immediately). Used by
  // ScrubSystem::CalibrateLintCosts.
  void SetLintCosts(const CostModel& costs) { config_.lint.costs = costs; }
  // Predicted-cost admission accounting: the live sum of admitted
  // predictions and how many submissions the budget rejected.
  uint64_t admitted_cost_ns_per_sec() const { return admitted_cost_ns_; }
  uint64_t queries_rejected_cost() const { return rejected_cost_; }

 private:
  struct ActiveInfo {
    std::vector<HostId> installed_hosts;
    TimeMicros end_time = 0;
    // Retained for re-sends (retry, restart re-dissemination).
    HostPlan host_plan;
    CentralPlan central_plan;
    ResultSink routed_sink;
    std::unordered_set<HostId> unacked_installs;
    bool central_acked = false;
    TimeMicros retry_backoff = 0;
    // This query's predicted central demand, released at teardown.
    uint64_t predicted_cost_ns_per_sec = 0;
  };

  struct PendingTeardown {
    std::unordered_set<HostId> unacked;
    int attempts = 1;  // the initial send
    TimeMicros backoff = 0;
  };

  void Disseminate(QueryId id);
  void SendCentralInstall(QueryId id);
  void SendHostInstall(QueryId id, HostId host);
  void ScheduleInstallRetry(QueryId id);
  void InstallRetryTick(QueryId id);
  void HandleInstallAck(QueryId id, HostId host);
  void HandleCentralAck(QueryId id);
  void Teardown(QueryId id);
  void SendTeardown(QueryId id, HostId host);
  void TeardownRetryTick(QueryId id);
  void HandleTeardownAck(QueryId id, HostId host);
  // Backoff +/-25% jitter from the control stream (separate from host
  // sampling, so retries never perturb which hosts a query lands on).
  TimeMicros Jittered(TimeMicros base);

  Scheduler* scheduler_;
  Transport* transport_;
  HostRegistry* registry_;
  const SchemaRegistry* schemas_;
  ScrubCentral* central_;
  HostId server_host_;
  HostId central_host_;
  AgentAccessor agents_;
  ServerConfig config_;
  Rng rng_;
  Rng ctrl_rng_;
  QueryId next_query_id_ = 1;
  std::unordered_map<QueryId, ActiveInfo> active_;
  std::unordered_map<QueryId, PendingTeardown> teardowns_;
  std::unordered_map<QueryId, ControlStats> control_stats_;
  uint64_t admitted_cost_ns_ = 0;  // sum of live predicted costs
  uint64_t rejected_cost_ = 0;     // submissions the cost budget rejected
};

}  // namespace scrub

#endif  // SRC_SERVER_QUERY_SERVER_H_
