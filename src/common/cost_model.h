// Simulated CPU-cost accounting.
//
// The paper's headline numbers are *host overhead* figures (<= 2.5% CPU,
// +1% request latency). In a simulation there is no OS scheduler to ask, so
// every piece of work — application request handling, Scrub filter
// evaluation, serialization, shipping — charges an explicit cost in simulated
// CPU microseconds to a CostMeter. The bench harness then reports
// scrub_cpu / (app_cpu + scrub_cpu), exactly the quantity the paper measures.
//
// Unit costs are calibrated to be *relatively* realistic (a predicate
// evaluation is ~tens of ns; serializing a field is ~tens of ns; handling a
// bid request is ~1ms of work) so that overhead percentages land in a
// realistic regime. The shape of the results (how overhead scales with query
// count, event rate, sampling) comes from the real code paths, not the
// constants.

#ifndef SRC_COMMON_COST_MODEL_H_
#define SRC_COMMON_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace scrub {

// All costs in simulated CPU *nanoseconds* (finer grain than the clock; we
// accumulate in ns and convert when charging latency).
struct CostModel {
  // Application-side work.
  int64_t app_request_ns = 1'000'000;   // handle one bid request (~1 ms SLO work)
  int64_t app_auction_per_item_ns = 900; // score one line item in the auction

  // Scrub host-side work.
  int64_t log_fixed_ns = 120;           // log() entry: metadata stamping, query-table lookup
  int64_t log_per_field_ns = 18;        // copying / referencing one field
  int64_t predicate_term_ns = 25;       // evaluating one comparison term
  int64_t projection_per_field_ns = 22; // materializing one projected field
  int64_t sample_flip_ns = 12;          // one sampling coin flip
  int64_t serialize_per_byte_ns = 1;    // wire encoding
  int64_t enqueue_ns = 40;              // staging-buffer push

  // Central-side work (not charged to hosts; tracked separately).
  int64_t central_ingest_ns = 80;
  int64_t central_join_probe_ns = 120;
  int64_t central_group_update_ns = 95;
};

// Accumulates simulated CPU time, split by who pays it.
class CostMeter {
 public:
  void ChargeApp(int64_t ns) { app_ns_ += ns; }
  void ChargeScrub(int64_t ns) { scrub_ns_ += ns; }

  int64_t app_ns() const { return app_ns_; }
  int64_t scrub_ns() const { return scrub_ns_; }
  int64_t total_ns() const { return app_ns_ + scrub_ns_; }

  // The paper's metric: fraction of host CPU consumed by Scrub.
  double ScrubCpuFraction() const {
    const int64_t total = total_ns();
    return total == 0 ? 0.0 : static_cast<double>(scrub_ns_) / total;
  }

  void Reset() {
    app_ns_ = 0;
    scrub_ns_ = 0;
  }

 private:
  int64_t app_ns_ = 0;
  int64_t scrub_ns_ = 0;
};

}  // namespace scrub

#endif  // SRC_COMMON_COST_MODEL_H_
