// A fixed-capacity FIFO that sheds on overflow.
//
// This is the core of Scrub's "never block the application" discipline: the
// agent's outbound staging buffer is bounded, and when the buffer is full the
// newest event is dropped and counted, rather than back-pressuring the
// application thread that called log().

#ifndef SRC_COMMON_BOUNDED_BUFFER_H_
#define SRC_COMMON_BOUNDED_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace scrub {

template <typename T>
class BoundedBuffer {
 public:
  explicit BoundedBuffer(size_t capacity)
      : capacity_(capacity), slots_(capacity) {
    assert(capacity > 0);
  }

  // Returns false (and increments dropped()) when full. Never blocks.
  bool TryPush(T value) {
    if (size_ == capacity_) {
      ++dropped_;
      return false;
    }
    slots_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % capacity_;
    ++size_;
    return true;
  }

  bool TryPop(T* out) {
    if (size_ == 0) {
      return false;
    }
    *out = std::move(slots_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return true;
  }

  // Drains up to max_items into out (appended); returns the count drained.
  size_t DrainInto(std::vector<T>* out, size_t max_items) {
    size_t n = 0;
    T item;
    while (n < max_items && TryPop(&item)) {
      out->push_back(std::move(item));
      ++n;
    }
    return n;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  // Total number of pushes rejected because the buffer was full.
  uint64_t dropped() const { return dropped_; }

 private:
  const size_t capacity_;
  std::vector<T> slots_;
  size_t head_ = 0;
  size_t tail_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace scrub

#endif  // SRC_COMMON_BOUNDED_BUFFER_H_
