// Lightweight Status / Result types used across the Scrub codebase.
//
// The public API avoids exceptions (queries come from users and fail all the
// time; a malformed query must never unwind through the hot path). Status
// carries an error code plus a human-readable message; Result<T> is a Status
// or a value.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace scrub {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad query text, bad field value)
  kNotFound,          // unknown event type, field, host, query id
  kAlreadyExists,     // duplicate registration
  kFailedPrecondition,// operation not valid in current state
  kResourceExhausted, // buffer full, quota exceeded
  kUnimplemented,     // feature intentionally outside the language subset
  kInternal,          // invariant violation
};

// Returns a stable, lowercase name for the code ("ok", "invalid_argument"...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "invalid_argument: unknown event type 'bids'" (or "ok").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// A value or an error. Accessing value() on an error aborts in debug builds;
// callers must check ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(runtime/explicit)
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace scrub

#endif  // SRC_COMMON_STATUS_H_
