// Deterministic random number generation.
//
// Everything stochastic in the simulation (traffic arrival, user behaviour,
// sampling coin flips) draws from explicitly seeded generators so that every
// experiment is exactly reproducible. We use xoshiro256** seeded through
// SplitMix64, the standard recipe.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace scrub {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 to spread a small seed over the full 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  // xoshiro256**.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses rejection to stay unbiased.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = NextUint64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Exponentially distributed with the given mean (> 0); used for Poisson
  // inter-arrival times.
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  // Standard normal via Marsaglia polar method.
  double NextGaussian() {
    for (;;) {
      const double u = 2.0 * NextDouble() - 1.0;
      const double v = 2.0 * NextDouble() - 1.0;
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// Zipfian distribution over {0, ..., n-1} with exponent s, via precomputed
// CDF + binary search. Ad-tech key popularity (users, line items, publishers)
// is heavy-tailed, which is what makes TOP-K / COUNT_DISTINCT interesting.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double s) : cdf_(n) {
    assert(n > 0);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) {
      c /= sum;
    }
  }

  uint64_t Next(Rng& rng) const {
    const double u = rng.NextDouble();
    // First index with cdf >= u.
    uint64_t lo = 0;
    uint64_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  uint64_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace scrub

#endif  // SRC_COMMON_RNG_H_
