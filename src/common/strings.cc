#include "src/common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace scrub {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace scrub
