#include "src/common/histogram.h"

#include "src/common/strings.h"

namespace scrub {

int64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += counts_[b];
    if (cumulative >= target && counts_[b] > 0) {
      return std::min(BucketUpper(b), max_);
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    counts_[b] += other.counts_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
}

void Histogram::Reset() {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = std::numeric_limits<int64_t>::min();
}

std::string Histogram::Summary() const {
  return StrFormat("count=%llu mean=%.2f p50=%lld p95=%lld p99=%lld max=%lld",
                   static_cast<unsigned long long>(count_), mean(),
                   static_cast<long long>(p50()), static_cast<long long>(p95()),
                   static_cast<long long>(p99()), static_cast<long long>(max()));
}

}  // namespace scrub
