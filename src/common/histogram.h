// Log-bucketed histogram for latency / size distributions.
//
// Buckets grow geometrically (HdrHistogram-style, but simpler): values are
// recorded exactly for mean/min/max, and percentile queries come from the
// bucket boundaries, giving <= ~4% relative error with 64 buckets over a
// 1..10^9 range. This keeps recording O(1) and allocation-free.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace scrub {

class Histogram {
 public:
  Histogram() { counts_.fill(0); }

  void Record(int64_t value) {
    if (value < 0) {
      value = 0;
    }
    ++counts_[BucketFor(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  // Approximate value at quantile q in [0, 1].
  int64_t ValueAtQuantile(double q) const;

  int64_t p50() const { return ValueAtQuantile(0.50); }
  int64_t p95() const { return ValueAtQuantile(0.95); }
  int64_t p99() const { return ValueAtQuantile(0.99); }

  void Merge(const Histogram& other);
  void Reset();

  // "count=12345 mean=1.2 p50=1 p95=3 p99=7 max=12"
  std::string Summary() const;

 private:
  // 16 exact buckets + 8 per power of two up to 2^33 — covers the full
  // 1..10^9 documented range without saturating.
  static constexpr int kBuckets = 256;

  // Bucket layout: [0..15] exact, then 8 buckets per power of two.
  static int BucketFor(int64_t value) {
    if (value < 16) {
      return static_cast<int>(value);
    }
    const int msb = 63 - __builtin_clzll(static_cast<uint64_t>(value));
    const int sub = static_cast<int>((value >> (msb - 3)) & 0x7);
    const int bucket = 16 + (msb - 4) * 8 + sub;
    return std::min(bucket, kBuckets - 1);
  }

  // Upper bound of a bucket (inclusive).
  static int64_t BucketUpper(int bucket) {
    if (bucket < 16) {
      return bucket;
    }
    const int rel = bucket - 16;
    const int msb = rel / 8 + 4;
    const int sub = rel % 8;
    return ((8LL + sub + 1) << (msb - 3)) - 1;
  }

  std::array<uint64_t, kBuckets> counts_;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = std::numeric_limits<int64_t>::max();
  int64_t max_ = std::numeric_limits<int64_t>::min();
};

}  // namespace scrub

#endif  // SRC_COMMON_HISTOGRAM_H_
