// Memory accounting and disk spill for bounded operator state.
//
// Two cooperating pieces, shared by ScrubCentral's executor and (for the
// accountant) the per-host agent's staging buffer:
//
//  * MemoryAccountant — logical byte tracking per key (query id) plus a
//    facility-wide total, with optional per-key and total budgets and
//    high-water marks. Charges use *logical* sizes (Event::WireSize-style),
//    never container capacities, so the row and columnar pipelines cross a
//    budget at exactly the same event — part of the byte-identical-transcript
//    argument for spill (DESIGN.md §13).
//
//  * SpillManager / SpillRun — append-only disk runs for the executor's
//    defer-and-replay spill. Once a window exceeds its budget, every further
//    event for it is appended to the window's run in arrival order and
//    replayed through the ordinary fold at window close, so the per-group
//    operation sequence (and hence every float association and map insertion
//    order) is identical to the unbounded run. Runs are written and read by
//    exactly one thread (the owning shard's), so no locking; distinct
//    ScrubCentral instances get distinct instance labels so a sharded
//    deployment's runs never collide in a shared directory.
//
// Fault injection: SpillFaultSpec gives seeded per-record write/read failure
// probabilities (FaultPlan carries one for the system harness). A failed
// append loses exactly that record (the file stays a prefix of whole
// records); a failed read aborts the remainder of the replay. Both degrade
// to counted shed — never a crash, never silent corruption. Inactive specs
// consume no randomness, matching the transport fault layer's discipline.

#ifndef SRC_COMMON_SPILL_H_
#define SRC_COMMON_SPILL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/clock.h"
#include "src/common/rng.h"

namespace scrub {

// Seeded per-record spill I/O failures. Probabilities in [0, 1]; a default
// constructed spec is inert and consumes no randomness.
struct SpillFaultSpec {
  double write_fail = 0.0;  // an Append loses its record (counted shed)
  double read_fail = 0.0;   // a replay read aborts the run's remainder

  bool Active() const { return write_fail > 0.0 || read_fail > 0.0; }
};

// Logical byte accounting with optional budgets. Keys are query ids (or any
// other uint64 namespace). All methods are cheap; `active()` gates the hot
// path so a deployment with no budgets and no tracking pays nothing.
class MemoryAccountant {
 public:
  // 0 = unlimited for either budget.
  void set_budgets(size_t per_key_bytes, size_t total_bytes) {
    per_key_budget_ = per_key_bytes;
    total_budget_ = total_bytes;
  }
  // Track usage even without budgets (memory-pressure introspection).
  void set_tracking(bool on) { tracking_ = on; }

  bool active() const {
    return tracking_ || per_key_budget_ > 0 || total_budget_ > 0;
  }
  size_t per_key_budget() const { return per_key_budget_; }
  size_t total_budget() const { return total_budget_; }

  void Charge(uint64_t key, size_t bytes) {
    Usage& u = usage_[key];
    u.bytes += bytes;
    u.peak = std::max(u.peak, u.bytes);
    total_ += bytes;
    peak_total_ = std::max(peak_total_, total_);
  }

  // Charges only if neither budget would be exceeded. Used by the agent's
  // staging path, where the degradation is drop-and-count, not spill.
  bool TryCharge(uint64_t key, size_t bytes) {
    const size_t key_usage = usage(key);
    if (per_key_budget_ > 0 && key_usage + bytes > per_key_budget_) {
      return false;
    }
    if (total_budget_ > 0 && total_ + bytes > total_budget_) {
      return false;
    }
    Charge(key, bytes);
    return true;
  }

  void Release(uint64_t key, size_t bytes) {
    const auto it = usage_.find(key);
    if (it == usage_.end()) {
      return;
    }
    const size_t give = std::min(it->second.bytes, bytes);
    it->second.bytes -= give;
    total_ -= give;
  }

  void ReleaseAll(uint64_t key) {
    const auto it = usage_.find(key);
    if (it == usage_.end()) {
      return;
    }
    total_ -= it->second.bytes;
    usage_.erase(it);
  }

  bool OverBudget(uint64_t key) const {
    if (per_key_budget_ > 0 && usage(key) > per_key_budget_) {
      return true;
    }
    return total_budget_ > 0 && total_ > total_budget_;
  }

  size_t usage(uint64_t key) const {
    const auto it = usage_.find(key);
    return it == usage_.end() ? 0 : it->second.bytes;
  }
  size_t peak(uint64_t key) const {
    const auto it = usage_.find(key);
    return it == usage_.end() ? 0 : it->second.peak;
  }
  size_t total_usage() const { return total_; }
  size_t peak_total() const { return peak_total_; }

 private:
  struct Usage {
    size_t bytes = 0;
    size_t peak = 0;
  };
  size_t per_key_budget_ = 0;
  size_t total_budget_ = 0;
  bool tracking_ = false;
  size_t total_ = 0;
  size_t peak_total_ = 0;
  std::unordered_map<uint64_t, Usage> usage_;
};

// What the spill layer did, across every run of one SpillManager.
struct SpillStats {
  uint64_t runs_opened = 0;
  uint64_t open_failures = 0;
  uint64_t records_written = 0;
  uint64_t bytes_written = 0;
  uint64_t write_failures = 0;  // injected or real; record counted shed
  uint64_t records_replayed = 0;
  uint64_t read_failures = 0;  // injected or real; remainder counted shed
  uint64_t runs_discarded = 0;
};

// One window's append-only spill run: length-prefixed records written in
// arrival order, replayed in the same order at window close, then unlinked.
// Record layout: u32 payload_len | u32 host | payload bytes (the caller's
// encoding — the executor uses the event wire codec). Created via
// SpillManager::Open; never copied.
class SpillRun {
 public:
  ~SpillRun();
  SpillRun(const SpillRun&) = delete;
  SpillRun& operator=(const SpillRun&) = delete;

  // Appends one record. Returns the bytes written, or 0 when the record was
  // lost (injected fault or real I/O error) — the file then still ends on a
  // whole-record boundary, so earlier records stay replayable.
  size_t Append(uint32_t host, const std::string& payload);

  // Flushes and rewinds for reading. False on I/O failure (no records will
  // replay).
  bool BeginReplay();

  // Reads the next record. False at end-of-run or on a (possibly injected)
  // read failure, which abandons the remainder; records() - replayed tells
  // the caller how many were lost.
  bool Next(uint32_t* host, std::string* payload);

  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

  // Closes and unlinks the backing file (also done by the destructor).
  void Discard();

 private:
  friend class SpillManager;
  SpillRun(std::FILE* file, std::string path, SpillStats* stats, Rng* rng,
           const SpillFaultSpec* faults)
      : file_(file), path_(std::move(path)), stats_(stats), rng_(rng),
        faults_(faults) {}

  std::FILE* file_ = nullptr;
  std::string path_;
  SpillStats* stats_ = nullptr;
  Rng* rng_ = nullptr;                   // manager-owned fault stream
  const SpillFaultSpec* faults_ = nullptr;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
  bool reading_ = false;
  bool read_failed_ = false;
};

// Factory and bookkeeping for one facility's spill runs. Disabled (Open
// returns nullptr) until Configure is given a non-empty directory; the
// executor's degradation ladder turns a disabled or failing spill into
// counted shed. One manager per ScrubCentral instance: the instance label
// namespaces file names, and the seeded fault stream is consumed in fold
// order, so a sharded deployment is deterministic per shard.
class SpillManager {
 public:
  SpillManager() = default;

  void Configure(std::string dir, std::string instance, uint64_t seed,
                 SpillFaultSpec faults);
  // Replaces the fault spec and reseeds the fault stream (chaos controls).
  void SetFaults(SpillFaultSpec faults, uint64_t seed);

  bool enabled() const { return !dir_.empty(); }
  const SpillStats& stats() const { return stats_; }

  // Opens a run for (query, window). nullptr on failure (directory or file
  // creation failed), counted in stats().open_failures.
  std::unique_ptr<SpillRun> Open(uint64_t query_id, TimeMicros window_start);

 private:
  std::string dir_;
  std::string instance_ = "central";
  SpillFaultSpec faults_;
  std::unique_ptr<Rng> fault_rng_;
  SpillStats stats_;
  uint64_t opened_ = 0;
};

}  // namespace scrub

#endif  // SRC_COMMON_SPILL_H_
