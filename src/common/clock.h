// Simulated time.
//
// The whole repository runs against virtual time so that experiments are
// deterministic and so that "a 20-minute production trace" takes milliseconds
// of wall time. Timestamps are microseconds since an arbitrary epoch.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <cstdint>

namespace scrub {

using TimeMicros = int64_t;

constexpr TimeMicros kMicrosPerMilli = 1000;
constexpr TimeMicros kMicrosPerSecond = 1000 * 1000;
constexpr TimeMicros kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr TimeMicros kMicrosPerHour = 60 * kMicrosPerMinute;
constexpr TimeMicros kMicrosPerDay = 24 * kMicrosPerHour;

// Abstract clock so components can be driven by the simulation scheduler in
// production-shaped code and by hand in unit tests.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMicros Now() const = 0;
};

// A manually advanced clock. Not thread-safe; the simulation is single-
// threaded by design (determinism beats parallelism for reproducibility).
class SimClock : public Clock {
 public:
  explicit SimClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros Now() const override { return now_; }

  void AdvanceTo(TimeMicros t) {
    if (t > now_) {
      now_ = t;
    }
  }
  void AdvanceBy(TimeMicros delta) { now_ += delta; }

 private:
  TimeMicros now_;
};

}  // namespace scrub

#endif  // SRC_COMMON_CLOCK_H_
