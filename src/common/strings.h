// Small string helpers shared across modules.

#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace scrub {

// Splits on a single character; empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Joins with a separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// ASCII-only case mapping (query keywords are ASCII).
std::string AsciiToLower(std::string_view text);
std::string AsciiToUpper(std::string_view text);

bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace scrub

#endif  // SRC_COMMON_STRINGS_H_
