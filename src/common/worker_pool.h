// WorkerPool: a small fixed-size thread pool for central-side parallelism.
//
// Scrub's central facility parallelizes cleanly — per-shard batch ingestion
// and window-close partial computation touch disjoint state — so all the
// pool has to provide is deterministic *placement* and a barrier. Design
// constraints, in order:
//
//  * No detached threads. Workers are joined in the destructor; a pool
//    cannot outlive the state its tasks touch.
//  * Bounded MPSC queues. Each worker owns one bounded task queue; any
//    thread may submit (multi-producer), only the owning worker pops
//    (single-consumer). A full queue blocks the submitter — back-pressure,
//    never unbounded growth. This mirrors the agent's bounded-staging
//    discipline, except the coordinator may wait where log() may not.
//  * Deterministic placement: ParallelFor(n, fn) assigns index i to worker
//    i % threads, so the *partition* of work is a pure function of (n,
//    threads). Execution order across workers is arbitrary; callers get
//    determinism by merging results by index, never by completion order.
//  * threads == 0 runs everything inline on the caller (the sequential
//    reference path — bit-identical results are tested against it).
//
// The pool also meters itself: per ParallelFor region it records each
// worker's thread-CPU time and accumulates the region's critical path
// (max over workers) and total busy time. On a machine with fewer cores
// than workers, wall clock cannot show scale-out; critical-path time is
// the throughput parallel hardware would realize (the same modelling the
// sharded-CPU-share benchmark uses), and it is what bench_parallel_central
// reports.

#ifndef SRC_COMMON_WORKER_POOL_H_
#define SRC_COMMON_WORKER_POOL_H_

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <time.h>

namespace scrub {

class WorkerPool {
 public:
  // threads == 0: inline mode, no threads spawned. queue_capacity bounds
  // each worker's pending tasks; submitters block while their target queue
  // is full.
  explicit WorkerPool(size_t threads, size_t queue_capacity = 256)
      : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.push_back(std::make_unique<Worker>());
    }
    for (size_t i = 0; i < threads; ++i) {
      workers_[i]->thread = std::thread([this, i] { RunWorker(i); });
    }
  }

  ~WorkerPool() {
    for (auto& w : workers_) {
      {
        std::lock_guard<std::mutex> lock(w->mu);
        w->stop = true;
      }
      w->cv.notify_all();
    }
    for (auto& w : workers_) {
      if (w->thread.joinable()) {
        w->thread.join();
      }
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  // Runs fn(0) .. fn(n-1) and returns once all calls completed. Index i is
  // processed by worker i % threads, in increasing i within each worker.
  // Tasks must not throw and must touch only state disjoint from other
  // indices (or synchronized by the caller). Inline when the pool has no
  // threads. Not reentrant: tasks must not call back into the pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) {
      return;
    }
    if (workers_.empty()) {
      const uint64_t begin = ThreadCpuNs();
      for (size_t i = 0; i < n; ++i) {
        fn(i);
      }
      const uint64_t busy = ThreadCpuNs() - begin;
      critical_ns_ += busy;
      busy_ns_ += busy;
      ++regions_;
      return;
    }
    const size_t width = std::min(n, workers_.size());
    Latch latch(width);
    std::vector<uint64_t> worker_busy(width, 0);
    for (size_t w = 0; w < width; ++w) {
      // One strided chunk per worker keeps queue traffic at O(threads) per
      // region while preserving the i % threads placement.
      Submit(w, [this, w, n, width, &fn, &latch, &worker_busy] {
        const uint64_t begin = ThreadCpuNs();
        for (size_t i = w; i < n; i += width) {
          fn(i);
        }
        worker_busy[w] = ThreadCpuNs() - begin;
        latch.CountDown();
      });
    }
    latch.Wait();
    uint64_t max_busy = 0;
    uint64_t total_busy = 0;
    for (const uint64_t b : worker_busy) {
      max_busy = std::max(max_busy, b);
      total_busy += b;
    }
    critical_ns_ += max_busy;
    busy_ns_ += total_busy;
    ++regions_;
  }

  // Enqueues one task on worker `worker % threads` (blocking while that
  // queue is full). Inline mode runs it immediately.
  void Submit(size_t worker, std::function<void()> task) {
    if (workers_.empty()) {
      task();
      return;
    }
    Worker& w = *workers_[worker % workers_.size()];
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.space.wait(lock, [&] { return w.queue.size() < queue_capacity_; });
      w.queue.push_back(std::move(task));
    }
    w.cv.notify_one();
  }

  // ---- Self-metering (see header comment) ----
  // Sum over regions of the slowest worker's thread-CPU time: the modelled
  // wall clock of the parallel sections on sufficiently parallel hardware.
  uint64_t critical_ns() const { return critical_ns_; }
  // Total thread-CPU time spent inside parallel regions across all workers.
  uint64_t busy_ns() const { return busy_ns_; }
  uint64_t regions() const { return regions_; }

  static uint64_t ThreadCpuNs() {
    struct timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<uint64_t>(ts.tv_nsec);
  }

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;     // queue became non-empty / stop
    std::condition_variable space;  // queue has room again
    std::deque<std::function<void()>> queue;
    bool stop = false;
    std::thread thread;
  };

  class Latch {
   public:
    explicit Latch(size_t count) : remaining_(count) {}
    void CountDown() {
      std::lock_guard<std::mutex> lock(mu_);
      assert(remaining_ > 0);
      if (--remaining_ == 0) {
        cv_.notify_all();
      }
    }
    void Wait() {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return remaining_ == 0; });
    }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    size_t remaining_;
  };

  void RunWorker(size_t index) {
    Worker& w = *workers_[index];
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(w.mu);
        w.cv.wait(lock, [&] { return w.stop || !w.queue.empty(); });
        if (w.queue.empty()) {
          return;  // stop requested and queue drained
        }
        task = std::move(w.queue.front());
        w.queue.pop_front();
      }
      w.space.notify_one();
      task();
    }
  }

  const size_t queue_capacity_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // Metering is written only between regions (coordinator thread).
  uint64_t critical_ns_ = 0;
  uint64_t busy_ns_ = 0;
  uint64_t regions_ = 0;
};

}  // namespace scrub

#endif  // SRC_COMMON_WORKER_POOL_H_
