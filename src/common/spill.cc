#include "src/common/spill.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

#include "src/common/strings.h"

namespace scrub {

namespace {

// Minimal mkdir -p: the spill directory is typically one level under a
// temp root, but nested configurations should not fail either.
bool EnsureDirectory(const std::string& dir) {
  if (dir.empty()) {
    return false;
  }
  std::string prefix;
  size_t pos = 0;
  while (pos <= dir.size()) {
    const size_t slash = dir.find('/', pos);
    prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
    pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (prefix.empty()) {
      continue;  // leading '/'
    }
    if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
  }
  return true;
}

void PutU32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

}  // namespace

SpillRun::~SpillRun() { Discard(); }

size_t SpillRun::Append(uint32_t host, const std::string& payload) {
  if (file_ == nullptr || reading_) {
    return 0;
  }
  // Injected write failure: the record is lost *before* any byte lands, so
  // the file always ends on a whole-record boundary.
  if (faults_ != nullptr && faults_->write_fail > 0.0 && rng_ != nullptr &&
      rng_->NextBool(faults_->write_fail)) {
    ++stats_->write_failures;
    return 0;
  }
  char header[8];
  PutU32(header, static_cast<uint32_t>(payload.size()));
  PutU32(header + 4, host);
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    ++stats_->write_failures;
    // A torn record would corrupt every later one; drop the run's write end
    // so subsequent appends degrade to counted shed.
    std::fclose(file_);
    file_ = nullptr;
    return 0;
  }
  const size_t wrote = sizeof(header) + payload.size();
  ++records_;
  bytes_ += wrote;
  ++stats_->records_written;
  stats_->bytes_written += wrote;
  return wrote;
}

bool SpillRun::BeginReplay() {
  if (file_ == nullptr) {
    return false;
  }
  reading_ = true;
  if (std::fflush(file_) != 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    ++stats_->read_failures;
    read_failed_ = true;
    return false;
  }
  return true;
}

bool SpillRun::Next(uint32_t* host, std::string* payload) {
  if (file_ == nullptr || !reading_ || read_failed_) {
    return false;
  }
  char header[8];
  const size_t got = std::fread(header, 1, sizeof(header), file_);
  if (got == 0) {
    return false;  // clean end of run
  }
  if (got != sizeof(header)) {
    ++stats_->read_failures;
    read_failed_ = true;
    return false;
  }
  // Injected read failure: this record and everything after it is lost.
  if (faults_ != nullptr && faults_->read_fail > 0.0 && rng_ != nullptr &&
      rng_->NextBool(faults_->read_fail)) {
    ++stats_->read_failures;
    read_failed_ = true;
    return false;
  }
  const uint32_t len = GetU32(header);
  *host = GetU32(header + 4);
  payload->resize(len);
  if (len > 0 && std::fread(payload->data(), 1, len, file_) != len) {
    ++stats_->read_failures;
    read_failed_ = true;
    return false;
  }
  ++stats_->records_replayed;
  return true;
}

void SpillRun::Discard() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!path_.empty()) {
    std::remove(path_.c_str());
    path_.clear();
    ++stats_->runs_discarded;
  }
}

void SpillManager::Configure(std::string dir, std::string instance,
                             uint64_t seed, SpillFaultSpec faults) {
  dir_ = std::move(dir);
  if (!instance.empty()) {
    instance_ = std::move(instance);
  }
  SetFaults(faults, seed);
}

void SpillManager::SetFaults(SpillFaultSpec faults, uint64_t seed) {
  faults_ = faults;
  // Inactive specs consume no randomness at all (transport discipline), so
  // the stream only exists while faults are armed.
  fault_rng_ = faults_.Active() ? std::make_unique<Rng>(seed) : nullptr;
}

std::unique_ptr<SpillRun> SpillManager::Open(uint64_t query_id,
                                             TimeMicros window_start) {
  if (!enabled() || !EnsureDirectory(dir_)) {
    ++stats_.open_failures;
    return nullptr;
  }
  const std::string path = StrFormat(
      "%s/%s_q%llu_w%lld_%llu.spill", dir_.c_str(), instance_.c_str(),
      static_cast<unsigned long long>(query_id),
      static_cast<long long>(window_start),
      static_cast<unsigned long long>(opened_));
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    ++stats_.open_failures;
    return nullptr;
  }
  ++opened_;
  ++stats_.runs_opened;
  return std::unique_ptr<SpillRun>(
      new SpillRun(file, path, &stats_, fault_rng_.get(), &faults_));
}

}  // namespace scrub
