#include "src/scrub/scrub_system.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/strings.h"
#include "src/plan/explain.h"

namespace scrub {

ScrubSystem::ScrubSystem(SystemConfig config)
    : config_(config),
      scheduler_(0),
      registry_(),
      transport_(&scheduler_, &registry_, config.transport),
      pool_(config.workers) {
  platform_ = std::make_unique<BiddingPlatform>(
      &scheduler_, &transport_, &registry_, &schemas_, config_.platform);
  workload_ =
      std::make_unique<WorkloadDriver>(&scheduler_, platform_.get(),
                                       config_.seed ^ 0x70ad);

  // Scrub's own infrastructure lives in DC1 and is not monitorable (queries
  // never target it).
  central_host_ =
      registry_.AddHost("scrub-central-00", "ScrubCentral", "DC1",
                        /*monitorable=*/false);
  server_host_ = registry_.AddHost("scrub-server-00", "ScrubServer", "DC1",
                                   /*monitorable=*/false);

  // Spill I/O faults ride the FaultPlan (one chaos knob) but execute inside
  // the central's SpillManager, on a stream seeded from the plan's seed yet
  // independent of the network fault RNG — arming one never perturbs the
  // other.
  if (config_.faults.spill.Active()) {
    config_.central.spill_faults = config_.faults.spill;
    config_.central.spill_seed = config_.faults.seed ^ 0x5b111e5eedULL;
  }
  central_ = std::make_unique<ScrubCentral>(&schemas_, config_.central);

  // The admission linter should judge windows against the real agent flush
  // cadence and spans against the real admission ceiling, and lateness
  // budgets against the real retransmit round trip.
  config_.server.lint.flush_interval_micros = config_.flush_interval;
  config_.server.lint.max_duration_micros =
      config_.server.analyzer.max_duration_micros;
  config_.server.lint.allowed_lateness_micros =
      config_.central.allowed_lateness;
  config_.server.lint.retry_rtt_micros =
      2 * config_.transport.cross_dc_latency + config_.agent.retransmit_backoff;
  // ... and state estimates against the central's real per-query budget.
  config_.server.lint.query_state_budget_bytes =
      config_.central.query_state_budget_bytes;

  // Reliable delivery: retransmit until the central's straggler grace is
  // spent (plus one flush round for the initial send), then shed. Heartbeat
  // counters every flush are what make completeness well-defined.
  if (config_.agent.retransmit_budget <= 0) {
    config_.agent.retransmit_budget =
        config_.central.allowed_lateness + config_.flush_interval;
  }
  config_.agent.flush_heartbeats = true;
  // The pipeline switch must be folded into the agent config before any
  // agent is constructed (including RestartHost's fresh incarnations, which
  // reuse config_.agent).
  config_.agent.columnar = config_.columnar;

  transport_.SetFaultPlan(config_.faults);

  // Hierarchical tier: one combiner per region, placed round-robin across
  // the platform's data centers, plus the coordinator front-end that merges
  // their partials. Built before the server so the control-plane hooks are
  // in place at its construction.
  if (config_.combiner_regions > 0) {
    const int dcs = std::max(1, config_.platform.datacenters);
    for (size_t r = 0; r < config_.combiner_regions; ++r) {
      const std::string dc_name =
          StrFormat("DC%d", static_cast<int>(r) % dcs + 1);
      const HostId chost = registry_.AddHost(
          StrFormat("scrub-combiner-%02d", static_cast<int>(r)),
          "ScrubCombiner", dc_name, /*monitorable=*/false);
      epochs_[chost] = 1;
      combiners_.emplace(chost,
                         std::make_unique<RegionalCombiner>(
                             &schemas_, chost, MakeCombinerConfig(r),
                             /*epoch=*/1));
      combiner_host_order_.push_back(chost);
    }
    // Partials lag the raw batches they summarize: the inner central holds
    // its windows for a full lateness grace, the envelope takes one more
    // hop, and lost envelopes retry for the combiner's retransmit budget.
    // Extend the coordinator's straggler grace accordingly, so hierarchical
    // windows see exactly the contributions flat windows would.
    coordinator_lateness_ = config_.central.allowed_lateness +
                            (config_.central.allowed_lateness +
                             config_.flush_interval) +
                            2 * config_.flush_interval;
    CentralConfig coord = config_.central;
    coord.allowed_lateness = coordinator_lateness_;
    coordinator_ = std::make_unique<PartialCoordinator>(coord);
    config_.server.central_install = [this](const CentralPlan& plan,
                                            ResultSink sink) {
      return InstallHierQuery(plan, std::move(sink));
    };
    config_.server.central_remove = [this](QueryId id) {
      RemoveHierQuery(id);
    };
  }
  config_.server.agent_preaggregate = config_.agent_preaggregate;

  // One agent per monitorable host.
  for (size_t i = 0; i < registry_.size(); ++i) {
    const HostInfo& info = registry_.Get(static_cast<HostId>(i));
    if (!info.monitorable) {
      continue;
    }
    agents_.emplace(info.id, std::make_unique<ScrubAgent>(
                                 info.id, &registry_.meter(info.id),
                                 config_.agent, AgentSeed(info.id, 0)));
    agent_hosts_.push_back(info.id);
  }
  std::sort(agent_hosts_.begin(), agent_hosts_.end());

  // Static agent -> combiner routing: each monitorable host ships its
  // aggregate-query batches to a combiner in its own DC, round-robin by
  // within-DC ordinal when a DC hosts several combiners. Fewer regions than
  // DCs degenerates to a fixed cross-DC assignment.
  if (!combiners_.empty()) {
    const size_t regions = combiner_host_order_.size();
    const size_t dcs =
        static_cast<size_t>(std::max(1, config_.platform.datacenters));
    std::unordered_map<std::string, size_t> dc_ordinal;
    for (const HostId host : agent_hosts_) {
      const std::string& dc = registry_.Get(host).datacenter;  // "DC<k>"
      size_t k = 0;
      if (dc.size() > 2) {
        k = static_cast<size_t>(
                std::max(1, std::atoi(dc.c_str() + 2)) - 1) %
            dcs;
      }
      std::vector<size_t> serving;
      for (size_t r = 0; r < regions; ++r) {
        if (r % dcs == k) {
          serving.push_back(r);
        }
      }
      const size_t ordinal = dc_ordinal[dc]++;
      const size_t region =
          serving.empty() ? k % regions : serving[ordinal % serving.size()];
      agent_combiner_[host] = combiner_host_order_[region];
    }
  }

  // Adaptive controller: decisions fan out to every agent in ascending host
  // order (a host without the query treats the override as a no-op). Both
  // callbacks run from the single-threaded pump, never concurrently with
  // the flush pool.
  if (config_.adaptive.enabled) {
    adaptive_ = std::make_unique<AdaptiveController>(
        config_.adaptive, config_.agent.max_batch_events, config_.columnar,
        [this](QueryId qid, size_t batch) {
          for (const HostId host : agent_hosts_) {
            agents_.at(host)->SetBatchOverride(qid, batch);
          }
        },
        [this](QueryId qid, bool columnar) {
          for (const HostId host : agent_hosts_) {
            agents_.at(host)->SetPipelineOverride(qid, columnar);
          }
        });
  }

  server_ = std::make_unique<QueryServer>(
      &scheduler_, &transport_, &registry_, &schemas_, central_.get(),
      server_host_, central_host_,
      [this](HostId host) { return agent(host); }, config_.server);

  if (config_.scrub_enabled) {
    platform_->SetEventLogger([this](HostId host, Event event) {
      // A crashed host's application is down with it: nothing logs there.
      if (!registry_.IsAlive(host)) {
        return int64_t{0};
      }
      if (event_tap_ != nullptr) {
        event_tap_(host, event);
      }
      ScrubAgent* a = agent(host);
      // The platform hands the event over by value: the agent may strip
      // projected field values in place instead of deep-copying them.
      return a == nullptr ? int64_t{0} : a->LogEvent(std::move(event));
    });
  }
}

uint64_t ScrubSystem::AgentSeed(HostId host, uint64_t epoch) const {
  return config_.seed ^ (0xa9e47u + static_cast<uint64_t>(host)) ^
         (epoch * 0x9E3779B97F4A7C15ULL);
}

void ScrubSystem::SetFaultPlan(FaultPlan plan) {
  central_->SetSpillFaults(plan.spill, plan.seed ^ 0x5b111e5eedULL);
  transport_.SetFaultPlan(std::move(plan));
}

void ScrubSystem::ScheduleCrash(HostId host, TimeMicros down_at,
                                TimeMicros up_at) {
  scheduler_.ScheduleAt(down_at,
                        [this, host] { registry_.SetAlive(host, false); });
  if (up_at > down_at) {
    scheduler_.ScheduleAt(up_at, [this, host] { RestartHost(host); });
  }
}

CombinerConfig ScrubSystem::MakeCombinerConfig(size_t region) const {
  CombinerConfig cfg;
  cfg.central = config_.central;
  // A private spill namespace per combiner: inner centrals degrade
  // independently, never clobbering the real central's runs.
  cfg.central.spill_instance += StrFormat("_r%d", static_cast<int>(region));
  cfg.central.spill_seed ^= 0x9E3779B97F4A7C15ULL * (region + 1);
  cfg.retransmit_backoff = config_.agent.retransmit_backoff;
  // Same derivation as the agents': retry until central's straggler grace
  // is spent plus one flush round, then shed honestly.
  cfg.retransmit_budget =
      config_.central.allowed_lateness + config_.flush_interval;
  cfg.seed = config_.seed ^ (0xc0b1u + region);
  return cfg;
}

std::vector<HostId> ScrubSystem::combiner_hosts() const {
  std::vector<HostId> hosts;
  hosts.reserve(combiners_.size());
  for (const auto& [host, comb] : combiners_) {
    hosts.push_back(host);
  }
  return hosts;
}

const RegionalCombiner* ScrubSystem::combiner(HostId host) const {
  const auto it = combiners_.find(host);
  return it == combiners_.end() ? nullptr : it->second.get();
}

HostId ScrubSystem::combiner_for(HostId host) const {
  const auto it = agent_combiner_.find(host);
  return it == agent_combiner_.end() ? kInvalidHost : it->second;
}

Status ScrubSystem::InstallHierQuery(const CentralPlan& plan,
                                     ResultSink sink) {
  if (!CombinerEligible(plan)) {
    // Raw-mode and join queries keep the flat path end to end.
    return central_->InstallQuery(plan, std::move(sink));
  }
  if (coordinator_->HasQuery(plan.query_id)) {
    return OkStatus();  // control-plane retry: idempotent re-install
  }
  // Fan the plan out to every combiner. Modeled as part of the (already
  // transport-delivered) central install: the coordinator front-end
  // configures its tier synchronously, so no agent batch can race an
  // uninstalled combiner.
  for (auto& [chost, comb] : combiners_) {
    (void)comb->InstallQuery(plan);
  }
  Status status = coordinator_->InstallQuery(plan, std::move(sink));
  if (status.ok()) {
    hier_plans_.emplace(plan.query_id, plan);
  }
  return status;
}

void ScrubSystem::RemoveHierQuery(QueryId id) {
  if (coordinator_ == nullptr || !coordinator_->HasQuery(id)) {
    central_->RemoveQuery(id);  // flat-path query (raw mode, join)
    return;
  }
  for (auto& [chost, comb] : combiners_) {
    comb->RemoveQuery(id);
  }
  coordinator_->RemoveQuery(id);
  hier_plans_.erase(id);
}

void ScrubSystem::RestartHost(HostId host) {
  registry_.SetAlive(host, true);
  const auto cit = combiners_.find(host);
  if (cit != combiners_.end()) {
    // Fresh combiner incarnation: inner window state, digest ledgers and
    // held envelopes died with the host — the unheard agents simply leave
    // their windows incomplete, like a crashed agent would. The bumped
    // epoch keeps the coordinator's dedup from mistaking the new seq 1,
    // 2, ... for the dead incarnation's. Still-live plans are reinstalled
    // synchronously, mirroring InstallHierQuery's control-plane model.
    const uint64_t epoch = ++epochs_[host];
    size_t region = 0;
    for (size_t r = 0; r < combiner_host_order_.size(); ++r) {
      if (combiner_host_order_[r] == host) {
        region = r;
      }
    }
    cit->second = std::make_unique<RegionalCombiner>(
        &schemas_, host, MakeCombinerConfig(region), epoch);
    const TimeMicros now = scheduler_.Now();
    for (const auto& [qid, plan] : hier_plans_) {
      if (plan.end_time > now) {
        (void)cit->second->InstallQuery(plan);
      }
    }
    return;
  }
  const auto it = agents_.find(host);
  if (it != agents_.end()) {
    // A fresh incarnation: staged events, counters and retransmit buffers
    // died with the host. The bumped epoch keeps central's dedup from
    // mistaking the new agent's seq 1, 2, ... for duplicates.
    const uint64_t epoch = ++epochs_[host];
    it->second = std::make_unique<ScrubAgent>(host, &registry_.meter(host),
                                              config_.agent,
                                              AgentSeed(host, epoch), epoch);
  }
  // Still-live query objects are re-disseminated to the blank agent.
  server_->OnHostRestart(host);
}

ScrubAgent* ScrubSystem::agent(HostId host) {
  const auto it = agents_.find(host);
  return it == agents_.end() ? nullptr : it->second.get();
}

Result<SubmittedQuery> ScrubSystem::Submit(std::string_view query_text,
                                           ResultSink sink) {
  return server_->Submit(query_text, std::move(sink));
}

void ScrubSystem::PumpAdaptive(TimeMicros now) {
  if (adaptive_ == nullptr) {
    return;
  }
  // Sorted ids: the decision order is a pure function of the query set,
  // never of hash-map iteration order.
  std::vector<QueryId> ids = central_->ActiveQueryIds();
  std::sort(ids.begin(), ids.end());
  for (const QueryId qid : ids) {
    if (hier_plans_.count(qid) > 0) {
      continue;  // combiner-routed queries keep their static configuration
    }
    const CentralQueryStats* cs = central_->StatsFor(qid);
    if (cs == nullptr) {
      continue;
    }
    const HostPlan* hp = server_->HostPlanFor(qid);
    const bool eligible = hp != nullptr && !hp->preaggregate &&
                          hp->sources.size() <= kMaxColumnJoinSections;
    adaptive_->OnInstall(qid, now, eligible);
    adaptive_->OnPump(qid, now, *cs);
  }
}

void ScrubSystem::PumpFlushes() {
  const TimeMicros now = scheduler_.Now();
  // Adaptive decisions first, so a pipeline/batch override issued this tick
  // is applied by this tick's flush (the agent's empty-staging point).
  PumpAdaptive(now);
  // Fan the per-host flush/retransmit evaluation (selection residue,
  // encoding, backoff bookkeeping) across the pool. Each task touches only
  // its own agent, its own host CostMeter and its own RNG streams, so hosts
  // are independent; determinism for any worker count comes from handing
  // the results to the (single-threaded) transport in ascending host order
  // after the join, before the clock advances.
  std::vector<std::vector<EventBatch>> per_host(agent_hosts_.size());
  pool_.ParallelFor(agent_hosts_.size(), [&](size_t i) {
    const HostId host = agent_hosts_[i];
    if (!registry_.IsAlive(host)) {
      return;  // a crashed host neither flushes nor retries
    }
    ScrubAgent& a = *agents_.at(host);
    std::vector<EventBatch> batches = a.Flush(now);
    std::vector<EventBatch> retries = a.Retransmits(now);
    batches.insert(batches.end(),
                   std::make_move_iterator(retries.begin()),
                   std::make_move_iterator(retries.end()));
    per_host[i] = std::move(batches);
  });
  for (size_t i = 0; i < agent_hosts_.size(); ++i) {
    const HostId host = agent_hosts_[i];
    for (EventBatch& batch : per_host[i]) {
      // Combiner-tier routing is per query: batches of combiner-installed
      // aggregate queries go to the host's regional combiner; raw-mode and
      // join batches keep the flat path.
      if (hier_plans_.count(batch.query_id) > 0) {
        SendBatchToCombiner(host, agent_combiner_.at(host), std::move(batch));
      } else {
        SendBatchToCentral(host, std::move(batch));
      }
    }
  }
  PumpCombiners(now);
  central_->OnTick(now);
  if (coordinator_ != nullptr) {
    coordinator_->OnTick(now);
  }
}

void ScrubSystem::SendBatchToCentral(HostId from, EventBatch batch) {
  const size_t bytes = batch.WireSize();
  transport_.Send(
      from, central_host_, bytes, TrafficCategory::kScrubEvents,
      [this, from, b = std::move(batch)] {
        const Status s = central_->IngestBatch(b, scheduler_.Now());
        (void)s;  // decode failures are programming errors
        // Ack sequenced batches (duplicates too: the retransmit that
        // raced a lost ack still needs its buffered copy released).
        if (b.seq != 0) {
          transport_.Send(central_host_, from, 24,
                          TrafficCategory::kScrubAcks,
                          [this, from, qid = b.query_id, seq = b.seq] {
                            ScrubAgent* a = agent(from);
                            if (a != nullptr) {
                              a->OnAck(qid, seq);
                            }
                          });
        }
      });
}

void ScrubSystem::SendBatchToCombiner(HostId from, HostId chost,
                                      EventBatch batch) {
  const size_t bytes = batch.WireSize();
  transport_.Send(
      from, chost, bytes, TrafficCategory::kScrubEvents,
      [this, from, chost, b = std::move(batch)] {
        // Resolve the combiner at delivery time: a restart between send and
        // delivery replaced the object behind this host id.
        const auto it = combiners_.find(chost);
        if (it == combiners_.end()) {
          return;
        }
        const RegionalCombiner::Action action =
            it->second->IngestBatch(b, scheduler_.Now());
        if (action == RegionalCombiner::Action::kAbsorbed) {
          if (b.seq != 0) {
            transport_.Send(chost, from, 24, TrafficCategory::kScrubAcks,
                            [this, from, qid = b.query_id, seq = b.seq] {
                              ScrubAgent* a = agent(from);
                              if (a != nullptr) {
                                a->OnAck(qid, seq);
                              }
                            });
          }
          return;
        }
        // kRelay (teardown raced the batch): forward unchanged; central
        // ingests — or drops an unknown query — and acks the agent, exactly
        // the flat path with one extra hop.
        transport_.Send(
            chost, central_host_, b.WireSize(), TrafficCategory::kScrubEvents,
            [this, from, b] {
              (void)central_->IngestBatch(b, scheduler_.Now());
              if (b.seq != 0) {
                transport_.Send(central_host_, from, 24,
                                TrafficCategory::kScrubAcks,
                                [this, from, qid = b.query_id, seq = b.seq] {
                                  ScrubAgent* a = agent(from);
                                  if (a != nullptr) {
                                    a->OnAck(qid, seq);
                                  }
                                });
              }
            });
      });
}

void ScrubSystem::PumpCombiners(TimeMicros now) {
  for (auto& [chost, comb] : combiners_) {
    if (!registry_.IsAlive(chost)) {
      continue;  // a crashed combiner neither ticks nor ships
    }
    std::vector<PartialEnvelope> envelopes = comb->PumpUpstream(now);
    for (PartialEnvelope& env : envelopes) {
      // shared_ptr keeps the delivery closure copyable (WindowPartial
      // holds move-only sketch state); a chaos duplicate delivery of the
      // same closure is rejected by AdmitSequenced below.
      auto shared = std::make_shared<PartialEnvelope>(std::move(env));
      const size_t bytes = shared->WireSize();
      transport_.Send(
          chost, central_host_, bytes, TrafficCategory::kScrubPartials,
          [this, chost, shared] {
            PartialEnvelope& e = *shared;
            if (coordinator_->AdmitSequenced(e.query_id, e.sender, e.epoch,
                                             e.seq)) {
              for (const CounterDigest& digest : e.digests) {
                coordinator_->AbsorbCounters(e.query_id, digest.host,
                                             digest.counters);
              }
              for (WindowPartial& partial : e.partials) {
                coordinator_->AbsorbPartial(std::move(partial));
              }
            }
            // Ack duplicates too (a retransmit racing its lost ack must
            // release the held clone). The ack resolves the combiner by
            // host at delivery and checks the incarnation, so a restarted
            // combiner's fresh seqs are never confused with the dead one's.
            transport_.Send(central_host_, chost, 24,
                            TrafficCategory::kScrubAcks,
                            [this, chost, qid = e.query_id, seq = e.seq,
                             epoch = e.epoch] {
                              const auto cit = combiners_.find(chost);
                              if (cit != combiners_.end() &&
                                  cit->second->epoch() == epoch) {
                                cit->second->OnAck(qid, seq);
                              }
                            });
          });
    }
  }
}

void ScrubSystem::RunUntil(TimeMicros until) {
  while (scheduler_.Now() < until) {
    const TimeMicros next =
        std::min(until, scheduler_.Now() + config_.flush_interval);
    scheduler_.RunUntil(next);
    PumpFlushes();
  }
}

void ScrubSystem::Drain() {
  // Let in-flight batches land and the last windows close: the allowed
  // lateness plus a few flush rounds covers the longest path. Hierarchical
  // runs wait out the coordinator's extended grace instead (inner lateness
  // plus the extra hop and retransmit rounds).
  const TimeMicros grace =
      hierarchical()
          ? coordinator_lateness_ + 4 * config_.flush_interval
          : config_.central.allowed_lateness + 3 * config_.flush_interval;
  RunUntil(scheduler_.Now() + grace);
}

std::string ScrubSystem::Explain(std::string_view query_text) const {
  return ExplainQuery(query_text, schemas_, config_.server.analyzer,
                      LintConfig());
}

LintOptions ScrubSystem::LintConfig() const {
  LintOptions options = config_.server.lint;
  options.fleet_hosts = agents_.size();  // monitorable hosts only
  options.query_state_budget_bytes = config_.central.query_state_budget_bytes;
  return options;
}

Result<std::vector<Diagnostic>> ScrubSystem::Lint(
    std::string_view query_text) const {
  return LintQueryText(query_text, schemas_, config_.server.analyzer,
                       LintConfig());
}

CostModel ScrubSystem::CalibrateLintCosts() {
  CostModel costs = config_.server.lint.costs;
  uint64_t decode_cpu = 0, decode_rows = 0;
  uint64_t join_cpu = 0, join_rows = 0;
  uint64_t fold_cpu = 0, fold_rows = 0;
  std::vector<QueryId> ids = central_->ActiveQueryIds();
  std::sort(ids.begin(), ids.end());
  for (const QueryId qid : ids) {
    const PhysicalPipeline* pipe = central_->PipelineFor(qid);
    const CentralQueryStats* cs = central_->StatsFor(qid);
    if (pipe == nullptr || cs == nullptr) {
      continue;
    }
    for (size_t i = 0;
         i < cs->op_metrics.size() && i < pipe->ops.size(); ++i) {
      const OperatorMetrics& m = cs->op_metrics[i];
      // cpu_ns == 0 marks a fused stamp (join pipelines charge the probe +
      // fold chunk to the Join op and give the downstream fold honest row
      // counts only); folding those rows in would dilute the rate.
      if (m.cpu_ns == 0 || m.rows_in == 0) {
        continue;
      }
      switch (pipe->ops[i].kind) {
        case PhysicalOpKind::kDecode:
          decode_cpu += m.cpu_ns;
          decode_rows += m.rows_in;
          break;
        case PhysicalOpKind::kJoin:
          join_cpu += m.cpu_ns;
          join_rows += m.rows_in;
          break;
        case PhysicalOpKind::kGroupFold:
        case PhysicalOpKind::kProject:
          fold_cpu += m.cpu_ns;
          fold_rows += m.rows_in;
          break;
        default:
          break;
      }
    }
  }
  if (decode_rows > 0) {
    costs.central_ingest_ns = std::max<int64_t>(
        1, static_cast<int64_t>(decode_cpu / decode_rows));
  }
  if (join_rows > 0) {
    costs.central_join_probe_ns = std::max<int64_t>(
        1, static_cast<int64_t>(join_cpu / join_rows));
  }
  if (fold_rows > 0) {
    costs.central_group_update_ns = std::max<int64_t>(
        1, static_cast<int64_t>(fold_cpu / fold_rows));
  }
  config_.server.lint.costs = costs;
  server_->SetLintCosts(costs);
  return costs;
}

std::string ScrubSystem::DescribeQuery(QueryId id) const {
  std::string out = StrFormat("query %llu\n",
                              static_cast<unsigned long long>(id));
  uint64_t considered = 0;
  uint64_t sampled_out = 0;
  uint64_t filtered = 0;
  uint64_t shipped = 0;
  uint64_t dropped = 0;
  uint64_t sent = 0;
  uint64_t retransmitted = 0;
  uint64_t acked = 0;
  uint64_t shed = 0;
  uint64_t abandoned = 0;
  int hosts_reporting = 0;
  for (const auto& [host, agent_ptr] : agents_) {
    const AgentQueryStats* s = agent_ptr->StatsFor(id);
    if (s == nullptr) {
      continue;
    }
    ++hosts_reporting;
    considered += s->events_considered;
    sampled_out += s->events_sampled_out;
    filtered += s->events_filtered;
    shipped += s->events_shipped;
    dropped += s->events_dropped;
    sent += s->batches_sent;
    retransmitted += s->batches_retransmitted;
    acked += s->batches_acked;
    shed += s->batches_expired + s->batches_evicted;
    abandoned += s->events_abandoned;
  }
  out += StrFormat(
      "  hosts: %d reporting\n"
      "  agent totals: considered=%llu sampled_out=%llu filtered=%llu "
      "shipped=%llu dropped=%llu\n"
      "  delivery: batches_sent=%llu retransmitted=%llu acked=%llu "
      "shed=%llu events_abandoned=%llu\n",
      hosts_reporting, static_cast<unsigned long long>(considered),
      static_cast<unsigned long long>(sampled_out),
      static_cast<unsigned long long>(filtered),
      static_cast<unsigned long long>(shipped),
      static_cast<unsigned long long>(dropped),
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(retransmitted),
      static_cast<unsigned long long>(acked),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(abandoned));
  // Staging representation and per-column wire encodings. Staging mode is
  // config-driven and identical fleet-wide, so one reporting agent is
  // representative — prefer a host that actually shipped a columnar flush
  // so the encodings render (a host that never logs the source type keeps
  // them empty). The shape lives in the stats, so this renders even after
  // the query is torn down.
  const AgentQueryStats* s = nullptr;
  for (const auto& [host, agent_ptr] : agents_) {
    const AgentQueryStats* cand = agent_ptr->StatsFor(id);
    if (cand == nullptr || cand->source_types.empty()) {
      continue;
    }
    if (s == nullptr) {
      s = cand;
    }
    const bool has_encodings =
        std::any_of(cand->last_encodings.begin(), cand->last_encodings.end(),
                    [](const std::vector<int>& e) { return !e.empty(); });
    if (has_encodings) {
      s = cand;
      break;
    }
  }
  if (s != nullptr) {
    const bool columnar = s->columnar_staging;
    const std::vector<std::string>& source_names = s->source_types;
    out += StrFormat("  staging: %s\n",
                     !columnar               ? "row"
                     : source_names.size() > 1 ? "columnar join"
                                               : "columnar");
    for (size_t i = 0; i < source_names.size(); ++i) {
      std::string line =
          StrFormat("    source %s:", source_names[i].c_str());
      const std::vector<int>* enc =
          i < s->last_encodings.size() && !s->last_encodings[i].empty()
              ? &s->last_encodings[i]
              : nullptr;
      if (!columnar) {
        line += " row events";
      } else if (enc == nullptr) {
        line += " no columnar flush shipped yet";
      } else {
        Result<SchemaPtr> schema = schemas_.Get(source_names[i]);
        for (size_t f = 0; f < enc->size(); ++f) {
          const std::string name =
              schema.ok() && f < (*schema)->field_count()
                  ? (*schema)->field(f).name
                  : StrFormat("f%zu", f);
          const int e = (*enc)[f];
          if (e < 0) {
            line += StrFormat(" %s=dropped", name.c_str());
          } else if (e == 0) {
            line += StrFormat(" %s=plain", name.c_str());
          } else {
            line += StrFormat(" %s=dict(%d)", name.c_str(), e);
          }
        }
      }
      out += line + "\n";
    }
  }
  const ControlStats* ctl = server_->ControlStatsFor(id);
  if (ctl != nullptr) {
    out += StrFormat(
        "  control: install_sends=%llu install_retries=%llu "
        "install_acks=%llu reinstalls=%llu teardown_sends=%llu "
        "teardown_retries=%llu teardown_acks=%llu\n",
        static_cast<unsigned long long>(ctl->install_sends),
        static_cast<unsigned long long>(ctl->install_retries),
        static_cast<unsigned long long>(ctl->install_acks),
        static_cast<unsigned long long>(ctl->reinstalls),
        static_cast<unsigned long long>(ctl->teardown_sends),
        static_cast<unsigned long long>(ctl->teardown_retries),
        static_cast<unsigned long long>(ctl->teardown_acks));
  }
  const CentralQueryStats* cs = central_->StatsFor(id);
  if (cs == nullptr && coordinator_ != nullptr) {
    // Hierarchical aggregate queries live at the coordinator front-end.
    cs = coordinator_->StatsFor(id);
  }
  if (cs == nullptr) {
    out += "  central: no record of this query\n";
    return out;
  }
  out += StrFormat(
      "  central: batches=%llu duplicates=%llu ingested=%llu late=%llu "
      "joined=%llu orphans=%llu join_shed=%llu rows=%llu\n",
      static_cast<unsigned long long>(cs->batches),
      static_cast<unsigned long long>(cs->batches_duplicate),
      static_cast<unsigned long long>(cs->events_ingested),
      static_cast<unsigned long long>(cs->events_late),
      static_cast<unsigned long long>(cs->tuples_joined),
      static_cast<unsigned long long>(cs->join_orphans),
      static_cast<unsigned long long>(cs->join_shed),
      static_cast<unsigned long long>(cs->rows_emitted));
  // Per-operator counters (DESIGN.md §16). Named from the compiled pipeline
  // when the query is still installed; a hierarchical query renders the
  // combiner tier's shard ops (summed across regions) and the coordinator's
  // Finalize separately, compiled fresh from the retained plan.
  const auto op_section = [&out](const char* label,
                                 const PhysicalPipeline* pipe,
                                 const std::vector<OperatorMetrics>& ms) {
    const bool any = std::any_of(ms.begin(), ms.end(),
                                 [](const OperatorMetrics& m) {
                                   return !m.Empty();
                                 });
    if (!any) {
      return;
    }
    out += StrFormat("  %s:\n", label);
    for (size_t i = 0; i < ms.size(); ++i) {
      if (pipe != nullptr && i < pipe->ops.size()) {
        out += "    " + AnnotateOp(pipe->ops[i], &ms[i]);
      } else {
        out += StrFormat(
            "    op[%zu]  [rows %llu -> %llu, sel %.3f, batches %llu, "
            "cpu %.3f ms]\n",
            i, static_cast<unsigned long long>(ms[i].rows_in),
            static_cast<unsigned long long>(ms[i].rows_out),
            ms[i].Selectivity(),
            static_cast<unsigned long long>(ms[i].batches),
            static_cast<double>(ms[i].cpu_ns) / 1e6);
      }
    }
  };
  const auto hit = hier_plans_.find(id);
  if (hit != hier_plans_.end()) {
    const PhysicalPipeline shard =
        CompilePhysical(hit->second, PipelineRole::kShard);
    const PhysicalPipeline fin =
        CompilePhysical(hit->second, PipelineRole::kCoordinator);
    op_section("combiner operators (summed)", &shard,
               cs->upstream_op_metrics);
    op_section("coordinator operators", &fin, cs->op_metrics);
  } else {
    op_section("operators", central_->PipelineFor(id), cs->op_metrics);
    op_section("upstream operators (summed)", nullptr,
               cs->upstream_op_metrics);
  }
  if (adaptive_ != nullptr) {
    out += adaptive_->Describe(id);
  }
  // Memory-pressure ladder: printed only once any rung engaged, so a query
  // that never felt pressure reads exactly as before.
  if (cs->events_spilled > 0 || cs->events_shed > 0 ||
      cs->agent_events_shed > 0 || cs->spill_runs > 0) {
    out += StrFormat(
        "  pressure: spilled=%llu spill_runs=%llu spill_bytes=%llu "
        "write_failures=%llu read_failures=%llu shed=%llu agent_shed=%llu\n",
        static_cast<unsigned long long>(cs->events_spilled),
        static_cast<unsigned long long>(cs->spill_runs),
        static_cast<unsigned long long>(cs->spill_bytes),
        static_cast<unsigned long long>(cs->spill_write_failures),
        static_cast<unsigned long long>(cs->spill_read_failures),
        static_cast<unsigned long long>(cs->events_shed),
        static_cast<unsigned long long>(cs->agent_events_shed));
  }
  // High-water window-state mark. Live queries read the accountant; the
  // stamped snapshot keeps the honest figure after teardown released the
  // charges (the peak-survives-retirement fix).
  const uint64_t peak = std::max<uint64_t>(
      cs->peak_state_bytes, central_->accountant().peak(id));
  if (peak > 0) {
    out += StrFormat("  state peak: %llu bytes\n",
                     static_cast<unsigned long long>(peak));
  }
  if (cs->windows_closed > 0) {
    out += StrFormat(
        "  completeness: windows=%llu incomplete=%llu min=%.3f mean=%.3f\n",
        static_cast<unsigned long long>(cs->windows_closed),
        static_cast<unsigned long long>(cs->windows_incomplete),
        cs->completeness_min,
        cs->completeness_sum / static_cast<double>(cs->windows_closed));
    out += StrFormat(
        "  fidelity: lossy=%llu min=%.3f mean=%.3f\n",
        static_cast<unsigned long long>(cs->windows_lossy), cs->fidelity_min,
        cs->fidelity_sum / static_cast<double>(cs->windows_closed));
  }
  return out;
}

std::string ScrubSystem::ExplainAnalyze(QueryId id) const {
  const PhysicalPipeline* pipeline = central_->PipelineFor(id);
  const CentralQueryStats* cs = central_->StatsFor(id);
  std::string out;
  if (pipeline != nullptr) {
    // EXPLAIN ANALYZE proper: the compiled operator tree annotated with the
    // observed per-operator counters (plain EXPLAIN shape when metrics
    // collection is off or nothing has run yet).
    out += pipeline->ToString(
        cs != nullptr && !cs->op_metrics.empty() ? &cs->op_metrics : nullptr);
    if (!out.empty() && out.back() != '\n') {
      out += '\n';
    }
  } else if (coordinator_ != nullptr && hier_plans_.count(id) > 0) {
    // Hierarchical query: the physical plan spans two tiers. Render the
    // shard-role pipeline the combiners run (annotated with the partial-
    // envelope metrics summed at the coordinator) and the coordinator's
    // Finalize stage, compiled fresh from the retained plan.
    const CentralQueryStats* hs = coordinator_->StatsFor(id);
    const CentralPlan& plan = hier_plans_.at(id);
    const PhysicalPipeline shard =
        CompilePhysical(plan, PipelineRole::kShard);
    const PhysicalPipeline fin =
        CompilePhysical(plan, PipelineRole::kCoordinator);
    out += "combiner pipeline (summed across regions):\n";
    for (size_t i = 0; i < shard.ops.size(); ++i) {
      const OperatorMetrics* m =
          hs != nullptr && i < hs->upstream_op_metrics.size()
              ? &hs->upstream_op_metrics[i]
              : nullptr;
      out += "  " + AnnotateOp(shard.ops[i], m);
    }
    out += "coordinator pipeline:\n";
    for (size_t i = 0; i < fin.ops.size(); ++i) {
      const OperatorMetrics* m =
          hs != nullptr && i < hs->op_metrics.size() ? &hs->op_metrics[i]
                                                     : nullptr;
      out += "  " + AnnotateOp(fin.ops[i], m);
    }
  }
  out += DescribeQuery(id);
  // Facility-level pressure view: budgets and high-water marks from the
  // accountant, spill-layer totals across every query.
  const MemoryAccountant& acct = central_->accountant();
  if (acct.active()) {
    // A retired query's accountant entry is gone; the stamped snapshot
    // keeps the per-query peak honest post-mortem.
    const uint64_t query_peak = std::max<uint64_t>(
        acct.peak(id), cs != nullptr ? cs->peak_state_bytes : 0);
    out += StrFormat(
        "  state bytes: usage=%llu peak=%llu central_usage=%llu "
        "central_peak=%llu budget=%llu central_budget=%llu\n",
        static_cast<unsigned long long>(acct.usage(id)),
        static_cast<unsigned long long>(query_peak),
        static_cast<unsigned long long>(acct.total_usage()),
        static_cast<unsigned long long>(acct.peak_total()),
        static_cast<unsigned long long>(acct.per_key_budget()),
        static_cast<unsigned long long>(acct.total_budget()));
  }
  const SpillStats& spill = central_->spill_stats();
  if (spill.runs_opened > 0 || spill.open_failures > 0) {
    out += StrFormat(
        "  spill: runs=%llu open_failures=%llu written=%llu bytes=%llu "
        "write_failures=%llu replayed=%llu read_failures=%llu\n",
        static_cast<unsigned long long>(spill.runs_opened),
        static_cast<unsigned long long>(spill.open_failures),
        static_cast<unsigned long long>(spill.records_written),
        static_cast<unsigned long long>(spill.bytes_written),
        static_cast<unsigned long long>(spill.write_failures),
        static_cast<unsigned long long>(spill.records_replayed),
        static_cast<unsigned long long>(spill.read_failures));
  }
  return out;
}

OverheadReport ScrubSystem::HostOverhead(HostId host) const {
  const CostMeter& meter = registry_.meter(host);
  OverheadReport report;
  report.app_ns = meter.app_ns();
  report.scrub_ns = meter.scrub_ns();
  report.scrub_fraction = meter.ScrubCpuFraction();
  return report;
}

OverheadReport ScrubSystem::ServiceOverhead(std::string_view service) const {
  OverheadReport report;
  for (size_t i = 0; i < registry_.size(); ++i) {
    const HostInfo& info = registry_.Get(static_cast<HostId>(i));
    if (info.service != service) {
      continue;
    }
    const CostMeter& meter = registry_.meter(info.id);
    report.app_ns += meter.app_ns();
    report.scrub_ns += meter.scrub_ns();
  }
  const int64_t total = report.app_ns + report.scrub_ns;
  report.scrub_fraction =
      total == 0 ? 0.0 : static_cast<double>(report.scrub_ns) / total;
  return report;
}

OverheadReport ScrubSystem::TotalOverhead() const {
  OverheadReport report;
  for (size_t i = 0; i < registry_.size(); ++i) {
    const HostInfo& info = registry_.Get(static_cast<HostId>(i));
    if (!info.monitorable) {
      continue;
    }
    const CostMeter& meter = registry_.meter(info.id);
    report.app_ns += meter.app_ns();
    report.scrub_ns += meter.scrub_ns();
  }
  const int64_t total = report.app_ns + report.scrub_ns;
  report.scrub_fraction =
      total == 0 ? 0.0 : static_cast<double>(report.scrub_ns) / total;
  return report;
}

}  // namespace scrub
