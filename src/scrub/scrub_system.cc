#include "src/scrub/scrub_system.h"

#include "src/common/strings.h"
#include "src/plan/explain.h"

namespace scrub {

ScrubSystem::ScrubSystem(SystemConfig config)
    : config_(config),
      scheduler_(0),
      registry_(),
      transport_(&scheduler_, &registry_, config.transport) {
  platform_ = std::make_unique<BiddingPlatform>(
      &scheduler_, &transport_, &registry_, &schemas_, config_.platform);
  workload_ =
      std::make_unique<WorkloadDriver>(&scheduler_, platform_.get(),
                                       config_.seed ^ 0x70ad);

  // Scrub's own infrastructure lives in DC1 and is not monitorable (queries
  // never target it).
  central_host_ =
      registry_.AddHost("scrub-central-00", "ScrubCentral", "DC1",
                        /*monitorable=*/false);
  server_host_ = registry_.AddHost("scrub-server-00", "ScrubServer", "DC1",
                                   /*monitorable=*/false);

  central_ = std::make_unique<ScrubCentral>(&schemas_, config_.central);

  // The admission linter should judge windows against the real agent flush
  // cadence and spans against the real admission ceiling.
  config_.server.lint.flush_interval_micros = config_.flush_interval;
  config_.server.lint.max_duration_micros =
      config_.server.analyzer.max_duration_micros;

  // One agent per monitorable host.
  for (size_t i = 0; i < registry_.size(); ++i) {
    const HostInfo& info = registry_.Get(static_cast<HostId>(i));
    if (!info.monitorable) {
      continue;
    }
    agents_.emplace(info.id, std::make_unique<ScrubAgent>(
                                 info.id, &registry_.meter(info.id),
                                 config_.agent,
                                 config_.seed ^ (0xa9e47u + i)));
  }

  server_ = std::make_unique<QueryServer>(
      &scheduler_, &transport_, &registry_, &schemas_, central_.get(),
      server_host_, central_host_,
      [this](HostId host) { return agent(host); }, config_.server);

  if (config_.scrub_enabled) {
    platform_->SetEventLogger([this](HostId host, const Event& event) {
      ScrubAgent* a = agent(host);
      return a == nullptr ? int64_t{0} : a->LogEvent(event);
    });
  }
}

ScrubAgent* ScrubSystem::agent(HostId host) {
  const auto it = agents_.find(host);
  return it == agents_.end() ? nullptr : it->second.get();
}

Result<SubmittedQuery> ScrubSystem::Submit(std::string_view query_text,
                                           ResultSink sink) {
  return server_->Submit(query_text, std::move(sink));
}

void ScrubSystem::PumpFlushes() {
  const TimeMicros now = scheduler_.Now();
  for (auto& [host, agent_ptr] : agents_) {
    std::vector<EventBatch> batches = agent_ptr->Flush(now);
    for (EventBatch& batch : batches) {
      const size_t bytes = batch.WireSize();
      transport_.Send(host, central_host_, bytes,
                      TrafficCategory::kScrubEvents,
                      [this, b = std::move(batch)] {
                        const Status s =
                            central_->IngestBatch(b, scheduler_.Now());
                        (void)s;  // decode failures are programming errors
                      });
    }
  }
  central_->OnTick(now);
}

void ScrubSystem::RunUntil(TimeMicros until) {
  while (scheduler_.Now() < until) {
    const TimeMicros next =
        std::min(until, scheduler_.Now() + config_.flush_interval);
    scheduler_.RunUntil(next);
    PumpFlushes();
  }
}

void ScrubSystem::Drain() {
  // Let in-flight batches land and the last windows close: the allowed
  // lateness plus two flush rounds covers the longest path.
  const TimeMicros drain_until = scheduler_.Now() +
                                 config_.central.allowed_lateness +
                                 3 * config_.flush_interval;
  RunUntil(drain_until);
}

std::string ScrubSystem::Explain(std::string_view query_text) const {
  return ExplainQuery(query_text, schemas_, config_.server.analyzer,
                      LintConfig());
}

LintOptions ScrubSystem::LintConfig() const {
  LintOptions options = config_.server.lint;
  options.fleet_hosts = agents_.size();  // monitorable hosts only
  return options;
}

Result<std::vector<Diagnostic>> ScrubSystem::Lint(
    std::string_view query_text) const {
  return LintQueryText(query_text, schemas_, config_.server.analyzer,
                       LintConfig());
}

std::string ScrubSystem::DescribeQuery(QueryId id) const {
  std::string out = StrFormat("query %llu\n",
                              static_cast<unsigned long long>(id));
  uint64_t considered = 0;
  uint64_t sampled_out = 0;
  uint64_t filtered = 0;
  uint64_t shipped = 0;
  uint64_t dropped = 0;
  int hosts_reporting = 0;
  for (const auto& [host, agent_ptr] : agents_) {
    const AgentQueryStats* s = agent_ptr->StatsFor(id);
    if (s == nullptr) {
      continue;
    }
    ++hosts_reporting;
    considered += s->events_considered;
    sampled_out += s->events_sampled_out;
    filtered += s->events_filtered;
    shipped += s->events_shipped;
    dropped += s->events_dropped;
  }
  out += StrFormat(
      "  hosts: %d reporting\n"
      "  agent totals: considered=%llu sampled_out=%llu filtered=%llu "
      "shipped=%llu dropped=%llu\n",
      hosts_reporting, static_cast<unsigned long long>(considered),
      static_cast<unsigned long long>(sampled_out),
      static_cast<unsigned long long>(filtered),
      static_cast<unsigned long long>(shipped),
      static_cast<unsigned long long>(dropped));
  const CentralQueryStats* cs = central_->StatsFor(id);
  if (cs == nullptr) {
    out += "  central: no record of this query\n";
    return out;
  }
  out += StrFormat(
      "  central: batches=%llu ingested=%llu late=%llu joined=%llu "
      "orphans=%llu rows=%llu\n",
      static_cast<unsigned long long>(cs->batches),
      static_cast<unsigned long long>(cs->events_ingested),
      static_cast<unsigned long long>(cs->events_late),
      static_cast<unsigned long long>(cs->tuples_joined),
      static_cast<unsigned long long>(cs->join_orphans),
      static_cast<unsigned long long>(cs->rows_emitted));
  return out;
}

OverheadReport ScrubSystem::HostOverhead(HostId host) const {
  const CostMeter& meter = registry_.meter(host);
  OverheadReport report;
  report.app_ns = meter.app_ns();
  report.scrub_ns = meter.scrub_ns();
  report.scrub_fraction = meter.ScrubCpuFraction();
  return report;
}

OverheadReport ScrubSystem::ServiceOverhead(std::string_view service) const {
  OverheadReport report;
  for (size_t i = 0; i < registry_.size(); ++i) {
    const HostInfo& info = registry_.Get(static_cast<HostId>(i));
    if (info.service != service) {
      continue;
    }
    const CostMeter& meter = registry_.meter(info.id);
    report.app_ns += meter.app_ns();
    report.scrub_ns += meter.scrub_ns();
  }
  const int64_t total = report.app_ns + report.scrub_ns;
  report.scrub_fraction =
      total == 0 ? 0.0 : static_cast<double>(report.scrub_ns) / total;
  return report;
}

OverheadReport ScrubSystem::TotalOverhead() const {
  OverheadReport report;
  for (size_t i = 0; i < registry_.size(); ++i) {
    const HostInfo& info = registry_.Get(static_cast<HostId>(i));
    if (!info.monitorable) {
      continue;
    }
    const CostMeter& meter = registry_.meter(info.id);
    report.app_ns += meter.app_ns();
    report.scrub_ns += meter.scrub_ns();
  }
  const int64_t total = report.app_ns + report.scrub_ns;
  report.scrub_fraction =
      total == 0 ? 0.0 : static_cast<double>(report.scrub_ns) / total;
  return report;
}

}  // namespace scrub
