// ScrubSystem: the top-level harness wiring the whole reproduction together.
//
// One object owns the simulated cluster (scheduler, host registry,
// transport), the synthetic bidding platform, a ScrubAgent per application
// host, ScrubCentral, and the query server. This is the public API the
// examples and benchmarks use:
//
//   ScrubSystem system;
//   system.workload().SchedulePoissonLoad(...);
//   auto submitted = system.Submit(
//       "SELECT bid.user_id, COUNT(*) FROM bid "
//       "@[SERVICE IN BidServers] GROUP BY bid.user_id DURATION 2 m;",
//       [](const ResultRow& row) { ... });
//   system.RunUntil(3 * kMicrosPerMinute);
//
// Time is simulated; RunUntil drives traffic, agent flushes, transport
// deliveries and window closes deterministically.

#ifndef SRC_SCRUB_SCRUB_SYSTEM_H_
#define SRC_SCRUB_SCRUB_SYSTEM_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/agent/agent.h"
#include "src/bidsim/platform.h"
#include "src/common/worker_pool.h"
#include "src/bidsim/workload.h"
#include "src/central/adaptive.h"
#include "src/central/central.h"
#include "src/central/coordinator.h"
#include "src/cluster/combiner.h"
#include "src/cluster/host_registry.h"
#include "src/cluster/scheduler.h"
#include "src/cluster/transport.h"
#include "src/server/query_server.h"

namespace scrub {

struct SystemConfig {
  PlatformConfig platform;
  AgentConfig agent;
  CentralConfig central;
  ServerConfig server;
  TransportConfig transport;
  // Agents batch-and-ship on this cadence; central closes windows on it.
  TimeMicros flush_interval = 500 * kMicrosPerMilli;
  // Worker threads fanning agent flush/retransmit evaluation across
  // simulated hosts each tick (0 = inline on the caller). Results are
  // bit-identical for every value: each host keeps its own RNG streams, and
  // batches are handed to the transport in host order after the pool joins,
  // before the simulated clock advances.
  size_t workers = 0;
  uint64_t seed = 1;
  // When false the platform runs un-instrumented (the A side of the
  // overhead experiments E7/E8).
  bool scrub_enabled = true;
  // Data-plane pipeline switch. True (default) stages events per query in
  // columnar batches: filter and project run vectorized at flush time and
  // batches ship in the columnar wire format, decoded straight into columns
  // at central, where the physical-operator executor folds them without
  // materializing Events (join plans materialize join survivors only).
  // False keeps the per-event row pipeline end to end. Both pipelines
  // produce byte-identical result transcripts. Agents still stage join
  // queries row-wise (the columnar-joins-end-to-end item in ROADMAP.md),
  // so ScrubSystem joins ship rows either way.
  bool columnar = true;
  // Hierarchical aggregation (million-host fleets): number of regional
  // combiner nodes. 0 (default) is the flat topology — agents ship straight
  // to central. With N > 0 regions, combiner r lives in DC (r mod
  // datacenters); each monitorable host routes its aggregate-query batches
  // to a combiner in its own DC (round-robin within the DC when a DC hosts
  // several), which folds them and ships compact WindowPartials + counter
  // digests to the central coordinator. Raw-mode and join queries keep the
  // flat path regardless (the paper's host rule).
  size_t combiner_regions = 0;
  // Paper-faithful ablation: agents pre-aggregate COUNT/SUM-only queries
  // host-side and ship per-group deltas instead of events (the relaxation
  // the paper argues against generalizing; eligibility is gated at the
  // server). Off by default.
  bool agent_preaggregate = false;
  // Adaptive execution (DESIGN.md §16): a per-query controller at the
  // coordinator tier that A/B-calibrates row vs columnar on live traffic
  // and auto-tunes the agents' flush batch cap from the decode operator's
  // observed fill. Off by default (`adaptive.enabled` is the kill switch);
  // every decision is transcript-neutral and logged in DescribeQuery.
  // Flat-path queries only; combiner-routed queries keep static config.
  AdaptiveConfig adaptive;
  // Chaos: installed on the transport at construction. Deterministic per
  // FaultPlan::seed; an inert plan (the default) injects nothing.
  FaultPlan faults;
};

struct OverheadReport {
  int64_t app_ns = 0;
  int64_t scrub_ns = 0;
  double scrub_fraction = 0.0;  // scrub / (app + scrub)
};

class ScrubSystem {
 public:
  explicit ScrubSystem(SystemConfig config = {});

  // Submit a Scrub query; rows arrive on `sink` as windows close.
  Result<SubmittedQuery> Submit(std::string_view query_text, ResultSink sink);

  // Advances simulated time, pumping traffic, agent flushes and central
  // window closes.
  void RunUntil(TimeMicros until);
  // Runs a little further so in-flight batches land and the final windows
  // close; call once after the workload's horizon.
  void Drain();
  TimeMicros Now() const { return scheduler_.Now(); }

  // ---- Chaos controls ----
  // Replaces the transport's fault plan (reseeding its fault RNG).
  void SetFaultPlan(FaultPlan plan);
  // Schedules a host crash at `down_at` and, if `up_at > down_at`, a
  // restart. A crashed host sends/receives nothing and its agent's staged
  // state is lost; the restarted host gets a fresh agent with a bumped
  // epoch, and the query server re-disseminates its still-live queries.
  void ScheduleCrash(HostId host, TimeMicros down_at, TimeMicros up_at = 0);

  // ---- Component access ----
  Scheduler& scheduler() { return scheduler_; }
  HostRegistry& registry() { return registry_; }
  Transport& transport() { return transport_; }
  SchemaRegistry& schemas() { return schemas_; }
  BiddingPlatform& platform() { return *platform_; }
  WorkloadDriver& workload() { return *workload_; }
  ScrubCentral& central() { return *central_; }
  QueryServer& server() { return *server_; }
  ScrubAgent* agent(HostId host);

  // ---- Hierarchical topology (combiner_regions > 0) ----
  bool hierarchical() const { return coordinator_ != nullptr; }
  // The coordinator front-end merging combiner partials (null when flat).
  const PartialCoordinator* coordinator() const { return coordinator_.get(); }
  // Combiner hosts in ascending id order (empty when flat).
  std::vector<HostId> combiner_hosts() const;
  const RegionalCombiner* combiner(HostId host) const;
  // The combiner a monitorable host's aggregate batches route to
  // (kInvalidHost when flat or unknown).
  HostId combiner_for(HostId host) const;

  // Renders the host/central plan split for a query WITHOUT running it
  // (EXPLAIN): what each host would filter/project, what central would
  // compute, how sampling scales results.
  std::string Explain(std::string_view query_text) const;

  // Observation tap: called for every event logged on a live host, before
  // agent-side processing (sampling, selection, projection). The
  // differential-oracle tests record the ground-truth stream here. Only
  // active while scrub_enabled is true (the tap rides the instrumentation
  // hook).
  void SetEventTap(std::function<void(HostId, const Event&)> tap) {
    event_tap_ = std::move(tap);
  }

  // Static analysis only (the same rules the server runs at admission, with
  // the live fleet size and flush cadence): parse + analyze + lint, no plan,
  // no execution. Parse/analysis failures surface as the error status.
  Result<std::vector<Diagnostic>> Lint(std::string_view query_text) const;

  // Lint options as admission sees them (fleet size and flush cadence
  // resolved from the running system).
  LintOptions LintConfig() const;

  // Runtime diagnostics for a submitted query: per-host agent counters
  // (considered / sampled out / filtered / shipped / dropped) and central
  // counters (ingested / late / joined / rows). Works during the query's
  // span and after retirement.
  std::string DescribeQuery(QueryId id) const;

  // EXPLAIN ANALYZE: the compiled physical pipeline of an *installed* query
  // annotated with its runtime counters (DescribeQuery's view) plus the
  // central's memory-pressure ledger — state-byte usage and high-water
  // marks against the configured budgets, and spill-layer totals. The
  // pipeline and budget sections need the query still installed; the
  // counter section works after retirement too.
  std::string ExplainAnalyze(QueryId id) const;

  // The adaptive controller (null unless config.adaptive.enabled); its
  // Describe(id) lines also render inside DescribeQuery.
  const AdaptiveController* adaptive_controller() const {
    return adaptive_.get();
  }

  // Re-derives the lint cost model's central unit costs from the operator
  // metrics observed so far (decode -> central_ingest_ns, join ->
  // central_join_probe_ns, fold -> central_group_update_ns; operators with
  // no observed rows keep their configured cost). The calibrated model is
  // installed into the server's admission linter — and into its
  // predicted-cost admission check — and returned for inspection.
  CostModel CalibrateLintCosts();

  // ---- Measurement ----
  OverheadReport HostOverhead(HostId host) const;
  OverheadReport ServiceOverhead(std::string_view service) const;
  OverheadReport TotalOverhead() const;
  HostId central_host() const { return central_host_; }

 private:
  void PumpFlushes();
  // One adaptive control step per active flat-path query (single-threaded;
  // runs at the top of PumpFlushes so decisions land in this tick's flush).
  void PumpAdaptive(TimeMicros now);
  void RestartHost(HostId host);
  uint64_t AgentSeed(HostId host, uint64_t epoch) const;
  // Hierarchical control plane (invoked via the server's central_install /
  // central_remove hooks). Eligible aggregate plans fan out to every
  // combiner and register at the coordinator; everything else falls back to
  // the flat ScrubCentral.
  Status InstallHierQuery(const CentralPlan& plan, ResultSink sink);
  void RemoveHierQuery(QueryId id);
  CombinerConfig MakeCombinerConfig(size_t region) const;
  void SendBatchToCentral(HostId from, EventBatch batch);
  void SendBatchToCombiner(HostId from, HostId chost, EventBatch batch);
  void PumpCombiners(TimeMicros now);

  SystemConfig config_;
  Scheduler scheduler_;
  HostRegistry registry_;
  Transport transport_;
  SchemaRegistry schemas_;
  std::unique_ptr<BiddingPlatform> platform_;
  std::unique_ptr<WorkloadDriver> workload_;
  std::unique_ptr<ScrubCentral> central_;
  std::unique_ptr<AdaptiveController> adaptive_;
  std::unique_ptr<QueryServer> server_;
  std::unordered_map<HostId, std::unique_ptr<ScrubAgent>> agents_;
  // Monitorable hosts in ascending id order: the deterministic iteration
  // (and transport submission) order PumpFlushes uses regardless of how
  // many pool workers ran the per-host flush work.
  std::vector<HostId> agent_hosts_;
  WorkerPool pool_;
  std::function<void(HostId, const Event&)> event_tap_;
  std::unordered_map<HostId, uint64_t> epochs_;  // incarnation per host
  HostId central_host_ = kInvalidHost;
  HostId server_host_ = kInvalidHost;
  // Hierarchical tier (empty / null when combiner_regions == 0).
  std::unique_ptr<PartialCoordinator> coordinator_;
  std::map<HostId, std::unique_ptr<RegionalCombiner>> combiners_;
  std::vector<HostId> combiner_host_order_;      // by region index
  std::unordered_map<HostId, HostId> agent_combiner_;  // agent -> combiner
  // Combiner-eligible central plans, kept for crash-restart reinstalls and
  // per-batch routing (agents route these to their combiner).
  std::map<QueryId, CentralPlan> hier_plans_;
  // The coordinator's extended straggler grace: partials lag raw batches by
  // the inner central's lateness plus the extra hop and retransmit rounds.
  TimeMicros coordinator_lateness_ = 0;
  TimeMicros last_flush_ = 0;
};

}  // namespace scrub

#endif  // SRC_SCRUB_SCRUB_SYSTEM_H_
