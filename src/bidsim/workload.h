// Traffic generation for the synthetic bidding platform.
//
// Three generators, matching what the paper's case studies need:
//  * Human browsing: each user views a page once or twice over the horizon;
//    a page view fires a small burst of bid requests (multiple ad slots per
//    page). This is the background of the Section 8.1 spam study: "about
//    half of the users issue a single bid request [per window]... most users
//    issue a single batch of bid requests during the experiment".
//  * Spam bots: a few users issuing very large batches at high frequency —
//    the anomaly the Figure-10 query exposes.
//  * Poisson load: an aggregate request rate with Zipf-popular users, used
//    by the performance experiments (E7-E9) where traffic *rate*, not user
//    behaviour, is the variable.

#ifndef SRC_BIDSIM_WORKLOAD_H_
#define SRC_BIDSIM_WORKLOAD_H_

#include <vector>

#include "src/bidsim/platform.h"
#include "src/common/rng.h"

namespace scrub {

struct HumanTrafficConfig {
  uint64_t users = 10000;
  UserId first_user_id = 1;
  double second_page_view_prob = 0.3;  // some users come back once
  int min_ads_per_page = 1;
  int max_ads_per_page = 4;
  TimeMicros horizon = 20 * kMicrosPerMinute;
};

struct BotConfig {
  UserId user_id = 0;
  uint64_t requests_per_batch = 120;  // large batches...
  TimeMicros batch_interval = 15 * kMicrosPerSecond;  // ...at high frequency
  TimeMicros start = 0;
  TimeMicros stop = 20 * kMicrosPerMinute;
};

struct PoissonLoadConfig {
  double requests_per_second = 1000.0;
  TimeMicros start = 0;
  TimeMicros duration = 30 * kMicrosPerSecond;
  uint64_t user_population = 100000;
  double user_zipf_exponent = 1.05;
};

class WorkloadDriver {
 public:
  WorkloadDriver(Scheduler* scheduler, BiddingPlatform* platform,
                 uint64_t seed)
      : scheduler_(scheduler), platform_(platform), rng_(seed) {}

  // Schedules all page views for a human population up front (cheap: two
  // scheduler entries per user at most; the ad-slot fan-out happens at fire
  // time).
  void ScheduleHumanTraffic(const HumanTrafficConfig& config);

  void ScheduleBot(const BotConfig& config);

  // Poisson arrivals; users drawn from a Zipf distribution. Schedules
  // arrivals lazily (one timer chases the next arrival) so a long run does
  // not pre-materialize millions of entries.
  void SchedulePoissonLoad(const PoissonLoadConfig& config);

  uint64_t requests_issued() const { return requests_issued_; }

 private:
  BidRequest MakeRequest(UserId user, TimeMicros when);
  void FirePageView(UserId user, TimeMicros when, int min_ads, int max_ads);

  Scheduler* scheduler_;
  BiddingPlatform* platform_;
  Rng rng_;
  uint64_t requests_issued_ = 0;
};

}  // namespace scrub

#endif  // SRC_BIDSIM_WORKLOAD_H_
