#include "src/bidsim/schemas.h"

namespace scrub {
namespace {

Status RegisterOne(SchemaRegistry* registry,
                   Result<SchemaPtr> schema) {
  if (!schema.ok()) {
    return schema.status();
  }
  return registry->Register(std::move(schema).value());
}

}  // namespace

Status RegisterBidsimSchemas(SchemaRegistry* registry) {
  // Figure 1 of the paper, plus the identifiers the case studies select on.
  Status s = RegisterOne(
      registry, EventSchema::Builder(kBidEvent)
                    .AddField("exchange_id", FieldType::kLong)
                    .AddField("city", FieldType::kString)
                    .AddField("country", FieldType::kString)
                    .AddField("bid_price", FieldType::kDouble)
                    .AddField("campaign_id", FieldType::kLong)
                    .AddField("line_item_id", FieldType::kLong)
                    .AddField("user_id", FieldType::kLong)
                    .AddField("publisher_id", FieldType::kLong)
                    // Nested object (the paper's XML-ish nesting): queries
                    // reach into it with paths, e.g. bid.device.os.
                    .AddField("device", FieldType::kObject)
                    .Build());
  if (!s.ok()) {
    return s;
  }
  // One event per internal auction, with the full list of participants and
  // their bids (Section 8.5).
  s = RegisterOne(registry,
                  EventSchema::Builder(kAuctionEvent)
                      .AddField("user_id", FieldType::kLong)
                      .AddField("exchange_id", FieldType::kLong)
                      .AddField("publisher_id", FieldType::kLong)
                      .AddField("line_item_ids", FieldType::kLongList)
                      .AddField("bid_prices", FieldType::kDoubleList)
                      .AddField("winner_line_item_id", FieldType::kLong)
                      .AddField("winning_price", FieldType::kDouble)
                      .Build());
  if (!s.ok()) {
    return s;
  }
  // One event per line item excluded during the filtering phase
  // (Section 8.4).
  s = RegisterOne(registry,
                  EventSchema::Builder(kExclusionEvent)
                      .AddField("line_item_id", FieldType::kLong)
                      .AddField("campaign_id", FieldType::kLong)
                      .AddField("user_id", FieldType::kLong)
                      .AddField("exchange_id", FieldType::kLong)
                      .AddField("publisher_id", FieldType::kLong)
                      .AddField("reason", FieldType::kString)
                      .Build());
  if (!s.ok()) {
    return s;
  }
  s = RegisterOne(registry,
                  EventSchema::Builder(kImpressionEvent)
                      .AddField("line_item_id", FieldType::kLong)
                      .AddField("campaign_id", FieldType::kLong)
                      .AddField("exchange_id", FieldType::kLong)
                      .AddField("publisher_id", FieldType::kLong)
                      .AddField("user_id", FieldType::kLong)
                      .AddField("cost", FieldType::kDouble)
                      .AddField("model", FieldType::kString)
                      .Build());
  if (!s.ok()) {
    return s;
  }
  s = RegisterOne(registry,
                  EventSchema::Builder(kClickEvent)
                      .AddField("line_item_id", FieldType::kLong)
                      .AddField("campaign_id", FieldType::kLong)
                      .AddField("exchange_id", FieldType::kLong)
                      .AddField("user_id", FieldType::kLong)
                      .AddField("model", FieldType::kString)
                      .Build());
  if (!s.ok()) {
    return s;
  }
  return RegisterOne(registry,
                     EventSchema::Builder(kProfileUpdateEvent)
                         .AddField("user_id", FieldType::kLong)
                         .AddField("line_item_id", FieldType::kLong)
                         .AddField("serve_count", FieldType::kLong)
                         .AddField("applied", FieldType::kBool)
                         .Build());
}

}  // namespace scrub
