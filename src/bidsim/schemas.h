// Scrub event types defined by the synthetic bidding platform.
//
// Mirrors the event types named in the paper: the `bid` event of Figure 1
// (generated at BidServers when a bid response is sent), `auction` and
// `exclusion` events (AdServers, Sections 8.4-8.5), `impression` and `click`
// events (PresentationServers, Sections 8.2-8.3), and a `profile_update`
// event (ProfileStore, Section 8.6).

#ifndef SRC_BIDSIM_SCHEMAS_H_
#define SRC_BIDSIM_SCHEMAS_H_

#include "src/common/status.h"
#include "src/event/schema.h"

namespace scrub {

inline constexpr char kBidEvent[] = "bid";
inline constexpr char kAuctionEvent[] = "auction";
inline constexpr char kExclusionEvent[] = "exclusion";
inline constexpr char kImpressionEvent[] = "impression";
inline constexpr char kClickEvent[] = "click";
inline constexpr char kProfileUpdateEvent[] = "profile_update";

// Registers all six event types. Idempotent-unfriendly by design (duplicate
// registration is a bug); call once per registry.
Status RegisterBidsimSchemas(SchemaRegistry* registry);

}  // namespace scrub

#endif  // SRC_BIDSIM_SCHEMAS_H_
