#include "src/bidsim/platform.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"
#include "src/sketch/hyperloglog.h"

namespace scrub {
namespace {

// Fine-grained application costs not worth putting in CostModel: per-line-
// item filter check and RPC payload sizes.
constexpr int64_t kFilterCheckNs = 150;
constexpr size_t kBidRequestRpcBytes = 320;
constexpr size_t kBidResponseRpcBytes = 160;

}  // namespace

BiddingPlatform::BiddingPlatform(Scheduler* scheduler, Transport* transport,
                                 HostRegistry* registry,
                                 SchemaRegistry* schemas,
                                 PlatformConfig config)
    : scheduler_(scheduler),
      transport_(transport),
      registry_(registry),
      config_(config),
      rng_(config.seed),
      profile_store_(config.profile_update_loss, config.seed ^ 0xbeef) {
  if (!schemas->Contains(kBidEvent)) {
    const Status s = RegisterBidsimSchemas(schemas);
    (void)s;  // duplicate registration is the only failure; guarded above
  }
  bid_schema_ = *schemas->Get(kBidEvent);
  auction_schema_ = *schemas->Get(kAuctionEvent);
  exclusion_schema_ = *schemas->Get(kExclusionEvent);
  impression_schema_ = *schemas->Get(kImpressionEvent);
  click_schema_ = *schemas->Get(kClickEvent);
  profile_schema_ = *schemas->Get(kProfileUpdateEvent);
  BuildTopology();
  BuildCatalog();
}

void BiddingPlatform::BuildTopology() {
  for (int dc = 0; dc < config_.datacenters; ++dc) {
    const std::string dc_name = StrFormat("DC%d", dc + 1);
    for (int i = 0; i < config_.bidservers_per_dc; ++i) {
      bid_servers_.push_back(registry_->AddHost(
          StrFormat("bid-dc%d-%02d", dc + 1, i), "BidServers", dc_name));
    }
    for (int i = 0; i < config_.adservers_per_dc; ++i) {
      const HostId h = registry_->AddHost(
          StrFormat("ad-dc%d-%02d", dc + 1, i), "AdServers", dc_name);
      ad_servers_.push_back(h);
      adserver_model_[h] = "modelB";  // incumbent model by default
    }
    for (int i = 0; i < config_.presentation_per_dc; ++i) {
      presentation_servers_.push_back(registry_->AddHost(
          StrFormat("pres-dc%d-%02d", dc + 1, i), "PresentationServers",
          dc_name));
    }
  }
  profile_host_ = registry_->AddHost("profile-dc1-00", "ProfileStore", "DC1");
}

void BiddingPlatform::BuildCatalog() {
  static const char* kCountries[] = {"US", "CA", "GB", "DE", "FR", "JP"};
  for (int e = 0; e < config_.num_exchanges; ++e) {
    Exchange ex;
    ex.id = e + 1;
    ex.name = StrFormat("Exchange%c", 'A' + e);
    ex.active_from = 0;
    ex.traffic_share = 1.0;
    exchanges_.push_back(std::move(ex));
  }
  LineItemId next_id = 1000;
  for (int c = 0; c < config_.num_campaigns; ++c) {
    for (int l = 0; l < config_.line_items_per_campaign; ++l) {
      LineItem item;
      item.id = next_id++;
      item.campaign_id = c + 1;
      // Advisory CPM prices between $0.50 and $4.50.
      item.advisory_bid_price = 0.5 + rng_.NextDouble() * 4.0;
      // ~Half the items target a subset of exchanges.
      if (rng_.NextBool(0.5)) {
        for (const Exchange& ex : exchanges_) {
          if (rng_.NextBool(0.5)) {
            item.exchanges.push_back(ex.id);
          }
        }
      }
      // ~Half target a subset of countries.
      if (rng_.NextBool(0.5)) {
        for (const char* country : kCountries) {
          if (rng_.NextBool(0.4)) {
            item.countries.emplace_back(country);
          }
        }
      }
      // A few have tight frequency caps / budgets.
      if (rng_.NextBool(0.25)) {
        item.frequency_cap_per_day = static_cast<int>(rng_.NextInRange(1, 3));
      }
      if (rng_.NextBool(0.3)) {
        item.daily_budget = 50.0 + rng_.NextDouble() * 450.0;
      }
      AddLineItem(std::move(item));
    }
  }
}

LineItemId BiddingPlatform::AddLineItem(LineItem item) {
  const LineItemId id = item.id;
  line_item_index_[id] = line_items_.size();
  line_items_.push_back(std::move(item));
  // Per-item CTR multiplier: some creatives are just better.
  line_item_ctr_mult_.push_back(0.5 + rng_.NextDouble());
  return id;
}

void BiddingPlatform::SetAdServerModel(HostId host, std::string model) {
  adserver_model_[host] = std::move(model);
}

const std::string& BiddingPlatform::AdServerModel(HostId host) const {
  static const std::string kNone;
  const auto it = adserver_model_.find(host);
  return it == adserver_model_.end() ? kNone : it->second;
}

HostId BiddingPlatform::BidServerForUser(UserId user) const {
  // Users route to the data center nearest them and stick to one BidServer
  // there (every exchange's traffic reaches every data center).
  const uint64_t mix = HashMix64(user);
  const int per_dc = config_.bidservers_per_dc;
  const int dc = static_cast<int>((mix >> 32) %
                                  static_cast<uint64_t>(config_.datacenters));
  const int idx = static_cast<int>(mix % static_cast<uint64_t>(per_dc));
  return bid_servers_[static_cast<size_t>(dc * per_dc + idx)];
}

HostId BiddingPlatform::PickBidServer(const BidRequest& request) const {
  return BidServerForUser(request.user_id);
}

HostId BiddingPlatform::PairedAdServer(HostId bid_server) const {
  // Same data center, chosen by bid-server position.
  const auto it =
      std::find(bid_servers_.begin(), bid_servers_.end(), bid_server);
  const size_t pos = static_cast<size_t>(it - bid_servers_.begin());
  const size_t dc = pos / static_cast<size_t>(config_.bidservers_per_dc);
  const size_t within = pos % static_cast<size_t>(config_.bidservers_per_dc);
  const size_t per_dc = static_cast<size_t>(config_.adservers_per_dc);
  return ad_servers_[dc * per_dc + (within % per_dc)];
}

HostId BiddingPlatform::PresentationServerFor(HostId bid_server) const {
  const auto it =
      std::find(bid_servers_.begin(), bid_servers_.end(), bid_server);
  const size_t pos = static_cast<size_t>(it - bid_servers_.begin());
  const size_t dc = pos / static_cast<size_t>(config_.bidservers_per_dc);
  const size_t per_dc = static_cast<size_t>(config_.presentation_per_dc);
  return presentation_servers_[dc * per_dc + (pos % per_dc)];
}

int64_t BiddingPlatform::LogAt(HostId host, Event event) {
  if (!logger_) {
    return 0;
  }
  return logger_(host, std::move(event));
}

double BiddingPlatform::CtrFor(const LineItem& item,
                               const std::string& model) const {
  const double base =
      model == "modelA" ? config_.ctr_model_a : config_.ctr_model_b;
  const auto it = line_item_index_.find(item.id);
  const double mult =
      it == line_item_index_.end() ? 1.0 : line_item_ctr_mult_[it->second];
  return std::min(0.5, base * mult);
}

bool BiddingPlatform::BudgetExhausted(const LineItem& item,
                                      TimeMicros now) const {
  if (item.daily_budget <= 0.0) {
    return false;
  }
  const auto it = spend_.find(item.id);
  if (it == spend_.end() || it->second.day != now / kMicrosPerDay) {
    return false;
  }
  return it->second.spent >= item.daily_budget;
}

void BiddingPlatform::SpendBudget(LineItemId item, double cost,
                                  TimeMicros now) {
  DailySpend& s = spend_[item];
  const int64_t day = now / kMicrosPerDay;
  if (s.day != day) {
    s.day = day;
    s.spent = 0.0;
  }
  s.spent += cost;
}

void BiddingPlatform::SubmitBidRequest(BidRequest request) {
  // Exchange activation gate (Section 8.2 scenario).
  const Exchange* exchange = nullptr;
  for (const Exchange& ex : exchanges_) {
    if (ex.id == request.exchange_id) {
      exchange = &ex;
      break;
    }
  }
  if (exchange == nullptr ||
      request.arrival < exchange->active_from) {
    return;
  }
  if (request.request_id == 0) {
    request.request_id = NextRequestId();
  }
  RequestContext ctx;
  ctx.request = std::move(request);
  ctx.bid_server = PickBidServer(ctx.request);
  ctx.ad_server = PairedAdServer(ctx.bid_server);
  scheduler_->ScheduleAt(ctx.request.arrival, [this, ctx]() mutable {
    HandleAtBidServer(std::move(ctx));
  });
}

void BiddingPlatform::HandleAtBidServer(RequestContext ctx) {
  ++stats_.requests;
  // Parse + route: a slice of the request budget.
  const int64_t parse_ns = config_.costs.app_request_ns / 4;
  registry_->meter(ctx.bid_server).ChargeApp(parse_ns);
  ctx.path_ns += parse_ns;

  const HostId bs = ctx.bid_server;
  const HostId as = ctx.ad_server;
  transport_->Send(bs, as, kBidRequestRpcBytes, TrafficCategory::kAppTraffic,
                   [this, ctx = std::move(ctx)]() mutable {
                     HandleAtAdServer(std::move(ctx));
                   });
}

void BiddingPlatform::HandleAtAdServer(RequestContext ctx) {
  const TimeMicros now = scheduler_->Now();
  const BidRequest& req = ctx.request;
  CostMeter& meter = registry_->meter(ctx.ad_server);
  int64_t app_ns = 0;
  int64_t scrub_ns = 0;

  // ---- Filtering phase ----
  std::vector<const LineItem*> candidates;
  for (const LineItem& item : line_items_) {
    app_ns += kFilterCheckNs;
    const char* reason = nullptr;
    if (!item.active) {
      reason = kExclInactive;
    } else if (!item.TargetsExchange(req.exchange_id)) {
      reason = kExclExchange;
    } else if (!item.TargetsCountry(req.country)) {
      reason = kExclCountry;
    } else if (BudgetExhausted(item, now)) {
      reason = kExclBudget;
    } else if (item.frequency_cap_per_day > 0 &&
               profile_store_.RecordedServeCount(req.user_id, item.id, now) >=
                   item.frequency_cap_per_day) {
      reason = kExclFrequencyCap;
    }
    if (reason == nullptr) {
      candidates.push_back(&item);
      continue;
    }
    ++stats_.exclusions;
    if (config_.log_exclusions) {
      Event e(exclusion_schema_, req.request_id, now);
      e.SetField(0, Value(item.id));
      e.SetField(1, Value(item.campaign_id));
      e.SetField(2, Value(static_cast<int64_t>(req.user_id)));
      e.SetField(3, Value(req.exchange_id));
      e.SetField(4, Value(req.publisher_id));
      e.SetField(5, Value(reason));
      scrub_ns += LogAt(ctx.ad_server, std::move(e));
    }
  }

  // ---- Internal auction ----
  if (!candidates.empty()) {
    app_ns += config_.costs.app_auction_per_item_ns *
              static_cast<int64_t>(candidates.size());
    std::vector<Value> ids;
    std::vector<Value> prices;
    ids.reserve(candidates.size());
    prices.reserve(candidates.size());
    double best_price = -1.0;
    const LineItem* winner = nullptr;
    for (const LineItem* item : candidates) {
      // Scores move the bid in a narrow band around the advisory price
      // (Section 8.5): the paper's cannibalization dynamics depend on bands
      // rarely overlapping when advisory prices differ materially.
      const double band = 0.85 + 0.3 * rng_.NextDouble();
      const double price = item->advisory_bid_price * band;
      ids.push_back(Value(item->id));
      prices.push_back(Value(price));
      if (price > best_price) {
        best_price = price;
        winner = item;
      }
    }
    ctx.winner = winner->id;
    ctx.winner_campaign = winner->campaign_id;
    ctx.winning_price = best_price;
    ctx.model = AdServerModel(ctx.ad_server);

    Event e(auction_schema_, req.request_id, now);
    e.SetField(0, Value(static_cast<int64_t>(req.user_id)));
    e.SetField(1, Value(req.exchange_id));
    e.SetField(2, Value(req.publisher_id));
    e.SetField(3, Value(std::move(ids)));
    e.SetField(4, Value(std::move(prices)));
    e.SetField(5, Value(ctx.winner));
    e.SetField(6, Value(ctx.winning_price));
    scrub_ns += LogAt(ctx.ad_server, std::move(e));
  }

  meter.ChargeApp(app_ns);
  ctx.path_ns += app_ns + scrub_ns;

  const HostId bs = ctx.bid_server;
  const HostId as = ctx.ad_server;
  transport_->Send(as, bs, kBidResponseRpcBytes, TrafficCategory::kAppTraffic,
                   [this, ctx = std::move(ctx)]() mutable {
                     CompleteAtBidServer(std::move(ctx));
                   });
}

void BiddingPlatform::CompleteAtBidServer(RequestContext ctx) {
  const TimeMicros now = scheduler_->Now();
  const BidRequest& req = ctx.request;
  CostMeter& meter = registry_->meter(ctx.bid_server);
  const int64_t respond_ns = config_.costs.app_request_ns / 4;
  int64_t scrub_ns = 0;

  if (ctx.winner >= 0) {
    ++stats_.bids;
    Event e(bid_schema_, req.request_id, now);
    e.SetField(0, Value(req.exchange_id));
    e.SetField(1, Value(req.city));
    e.SetField(2, Value(req.country));
    e.SetField(3, Value(ctx.winning_price));
    e.SetField(4, Value(ctx.winner_campaign));
    e.SetField(5, Value(ctx.winner));
    e.SetField(6, Value(static_cast<int64_t>(req.user_id)));
    e.SetField(7, Value(req.publisher_id));
    static const char* kOses[] = {"ios", "android", "windows", "macos"};
    static const char* kBrowsers[] = {"chrome", "safari", "firefox"};
    NestedObject device;
    device.fields.emplace_back("os", Value(kOses[req.user_id % 4]));
    device.fields.emplace_back("browser",
                               Value(kBrowsers[req.user_id % 3]));
    e.SetField(8, Value(std::move(device)));
    scrub_ns += LogAt(ctx.bid_server, std::move(e));
  } else {
    ++stats_.no_bids;
  }

  meter.ChargeApp(respond_ns);
  ctx.path_ns += respond_ns + scrub_ns;

  // Request latency: transport time elapsed plus accumulated processing.
  const TimeMicros latency =
      (now - req.arrival) + ctx.path_ns / 1000;
  request_latency_us_.Record(latency);

  if (ctx.winner < 0) {
    return;
  }
  // External auction.
  const double p_win =
      std::clamp(config_.win_rate_scale * ctx.winning_price, 0.02, 0.90);
  if (!rng_.NextBool(p_win)) {
    return;
  }
  scheduler_->ScheduleAfter(config_.external_auction_delay,
                            [this, ctx = std::move(ctx)]() mutable {
                              ServeImpression(std::move(ctx));
                            });
}

void BiddingPlatform::ServeImpression(RequestContext ctx) {
  const TimeMicros now = scheduler_->Now();
  const BidRequest& req = ctx.request;
  const HostId pres = PresentationServerFor(ctx.bid_server);
  ++stats_.impressions;

  // Second-price proxy: clear at ~70% of our bid. Bid prices are CPM
  // dollars, so the per-impression cost divides by 1000 (CPM = 1000 *
  // AVG(cost) then recovers the paper's Figure-13 metric).
  const double cost = 0.7 * ctx.winning_price / 1000.0;

  Event e(impression_schema_, req.request_id, now);
  e.SetField(0, Value(ctx.winner));
  e.SetField(1, Value(ctx.winner_campaign));
  e.SetField(2, Value(req.exchange_id));
  e.SetField(3, Value(req.publisher_id));
  e.SetField(4, Value(static_cast<int64_t>(req.user_id)));
  e.SetField(5, Value(cost));
  e.SetField(6, Value(ctx.model));
  LogAt(pres, std::move(e));
  registry_->meter(pres).ChargeApp(20'000);  // render + record

  SpendBudget(ctx.winner, cost, now);

  // ProfileStore update (with the Section 8.6 injected loss).
  const bool applied = profile_store_.RecordServe(req.user_id, ctx.winner, now);
  Event pe(profile_schema_, req.request_id, now);
  pe.SetField(0, Value(static_cast<int64_t>(req.user_id)));
  pe.SetField(1, Value(ctx.winner));
  pe.SetField(2, Value(static_cast<int64_t>(
                    profile_store_.RecordedServeCount(req.user_id, ctx.winner,
                                                      now))));
  pe.SetField(3, Value(applied));
  LogAt(profile_host_, std::move(pe));

  // Click?
  const auto it = line_item_index_.find(ctx.winner);
  if (it == line_item_index_.end()) {
    return;
  }
  const double ctr = CtrFor(line_items_[it->second], ctx.model);
  if (!rng_.NextBool(ctr)) {
    return;
  }
  scheduler_->ScheduleAfter(
      config_.click_delay, [this, ctx = std::move(ctx), pres]() mutable {
        ++stats_.clicks;
        Event ce(click_schema_, ctx.request.request_id, scheduler_->Now());
        ce.SetField(0, Value(ctx.winner));
        ce.SetField(1, Value(ctx.winner_campaign));
        ce.SetField(2, Value(ctx.request.exchange_id));
        ce.SetField(3, Value(static_cast<int64_t>(ctx.request.user_id)));
        ce.SetField(4, Value(ctx.model));
        LogAt(pres, std::move(ce));
      });
}

}  // namespace scrub
