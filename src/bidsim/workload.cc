#include "src/bidsim/workload.h"

#include <memory>

namespace scrub {
namespace {

const char* kCountriesByUser[] = {"US", "US", "US", "CA", "GB", "DE", "FR",
                                  "JP"};
const char* kCitiesByUser[] = {"san_jose", "new_york",  "chicago", "toronto",
                               "london",   "frankfurt", "paris",   "tokyo"};

}  // namespace

BidRequest WorkloadDriver::MakeRequest(UserId user, TimeMicros when) {
  BidRequest req;
  req.request_id = platform_->NextRequestId();
  req.user_id = user;
  // Users browse sites plugged into particular exchanges; mix so every
  // exchange sees every user class. Exchange activation gates traffic in
  // the platform (Section 8.2).
  const size_t n_exchanges = platform_->exchanges().size();
  req.exchange_id =
      platform_->exchanges()[rng_.NextBelow(n_exchanges)].id;
  req.publisher_id = static_cast<PublisherId>(1 + rng_.NextBelow(50));
  const size_t locale = user % (sizeof(kCountriesByUser) / sizeof(char*));
  req.country = kCountriesByUser[locale];
  req.city = kCitiesByUser[locale];
  req.arrival = when;
  return req;
}

void WorkloadDriver::FirePageView(UserId user, TimeMicros when, int min_ads,
                                  int max_ads) {
  // Ad slots per page skew low (geometric, halving per extra slot): about
  // half of page views carry a single ad — which is what makes "about half
  // the users issue a single bid request per window" hold in the paper's
  // Figure 10.
  int slots = min_ads;
  while (slots < max_ads && rng_.NextBool(0.5)) {
    ++slots;
  }
  for (int s = 0; s < slots; ++s) {
    // Ad slots on one page fire within a couple hundred milliseconds.
    const TimeMicros jitter =
        static_cast<TimeMicros>(rng_.NextBelow(200 * kMicrosPerMilli));
    BidRequest req = MakeRequest(user, when + jitter);
    ++requests_issued_;
    platform_->SubmitBidRequest(std::move(req));
  }
}

void WorkloadDriver::ScheduleHumanTraffic(const HumanTrafficConfig& config) {
  for (uint64_t u = 0; u < config.users; ++u) {
    const UserId user = config.first_user_id + u;
    const TimeMicros first =
        static_cast<TimeMicros>(rng_.NextBelow(
            static_cast<uint64_t>(config.horizon)));
    const int min_ads = config.min_ads_per_page;
    const int max_ads = config.max_ads_per_page;
    scheduler_->ScheduleAt(first, [this, user, first, min_ads, max_ads] {
      FirePageView(user, first, min_ads, max_ads);
    });
    if (rng_.NextBool(config.second_page_view_prob)) {
      const TimeMicros second =
          static_cast<TimeMicros>(rng_.NextBelow(
              static_cast<uint64_t>(config.horizon)));
      scheduler_->ScheduleAt(second, [this, user, second, min_ads, max_ads] {
        FirePageView(user, second, min_ads, max_ads);
      });
    }
  }
}

void WorkloadDriver::ScheduleBot(const BotConfig& config) {
  for (TimeMicros t = config.start; t < config.stop;
       t += config.batch_interval) {
    scheduler_->ScheduleAt(t, [this, config, t] {
      for (uint64_t i = 0; i < config.requests_per_batch; ++i) {
        // The batch lands within ~a second: a page-view storm.
        const TimeMicros jitter =
            static_cast<TimeMicros>(rng_.NextBelow(kMicrosPerSecond));
        BidRequest req = MakeRequest(config.user_id, t + jitter);
        ++requests_issued_;
        platform_->SubmitBidRequest(std::move(req));
      }
    });
  }
}

void WorkloadDriver::SchedulePoissonLoad(const PoissonLoadConfig& config) {
  auto zipf = std::make_shared<ZipfGenerator>(config.user_population,
                                              config.user_zipf_exponent);
  const double mean_gap_us =
      kMicrosPerSecond / config.requests_per_second;
  // Self-rescheduling arrival chain. The stored function must capture only
  // a weak reference to itself: ownership lives in the pending scheduler
  // callback, so the chain frees itself (and the Zipf table) when it ends.
  auto fire = std::make_shared<std::function<void(TimeMicros)>>();
  std::weak_ptr<std::function<void(TimeMicros)>> weak_fire = fire;
  *fire = [this, zipf, mean_gap_us, config, weak_fire](TimeMicros when) {
    if (when >= config.start + config.duration) {
      return;
    }
    const UserId user = 1 + zipf->Next(rng_);
    BidRequest req = MakeRequest(user, when);
    ++requests_issued_;
    platform_->SubmitBidRequest(std::move(req));
    const TimeMicros next =
        when + std::max<TimeMicros>(
                   1, static_cast<TimeMicros>(
                          rng_.NextExponential(mean_gap_us)));
    std::shared_ptr<std::function<void(TimeMicros)>> self = weak_fire.lock();
    if (self != nullptr) {
      scheduler_->ScheduleAt(next, [self, next] { (*self)(next); });
    }
  };
  scheduler_->ScheduleAt(config.start,
                         [fire, start = config.start] { (*fire)(start); });
}

}  // namespace scrub
