// Domain objects of the synthetic ad-bidding platform (Section 7 of the
// paper describes the real one at Turn).

#ifndef SRC_BIDSIM_DOMAIN_H_
#define SRC_BIDSIM_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"

namespace scrub {

using UserId = uint64_t;
using LineItemId = int64_t;
using CampaignId = int64_t;
using ExchangeId = int64_t;
using PublisherId = int64_t;

// An ad exchange sending bid requests. `active_from` supports the
// new-exchange-integration case study (Section 8.2): before that instant the
// exchange sends no traffic.
struct Exchange {
  ExchangeId id = 0;
  std::string name;
  TimeMicros active_from = 0;
  double traffic_share = 1.0;  // relative weight when picking the exchange
};

// A line item: the unit that bids. Targeting is deliberately simple — a set
// of allowed exchanges and countries — because the case studies depend on
// *overlap* of targeting, not its sophistication.
struct LineItem {
  LineItemId id = 0;
  CampaignId campaign_id = 0;
  double advisory_bid_price = 1.0;  // the internal auction bids in a band
                                    // around this (Section 8.5)
  std::vector<ExchangeId> exchanges;  // empty = all
  std::vector<std::string> countries; // empty = all
  int frequency_cap_per_day = 0;      // 0 = uncapped
  double daily_budget = 0.0;          // 0 = unlimited
  bool active = true;

  bool TargetsExchange(ExchangeId ex) const {
    if (exchanges.empty()) {
      return true;
    }
    for (const ExchangeId e : exchanges) {
      if (e == ex) {
        return true;
      }
    }
    return false;
  }
  bool TargetsCountry(const std::string& country) const {
    if (countries.empty()) {
      return true;
    }
    for (const std::string& c : countries) {
      if (c == country) {
        return true;
      }
    }
    return false;
  }
};

// Why a line item was excluded during filtering (the reason strings are the
// values queried in Section 8.4's case study).
inline constexpr char kExclInactive[] = "inactive";
inline constexpr char kExclExchange[] = "exchange_mismatch";
inline constexpr char kExclCountry[] = "country_mismatch";
inline constexpr char kExclBudget[] = "budget_exhausted";
inline constexpr char kExclFrequencyCap[] = "frequency_cap";

// A bid request arriving from an exchange.
struct BidRequest {
  uint64_t request_id = 0;
  UserId user_id = 0;
  ExchangeId exchange_id = 0;
  PublisherId publisher_id = 0;
  std::string country;
  std::string city;
  TimeMicros arrival = 0;
};

}  // namespace scrub

#endif  // SRC_BIDSIM_DOMAIN_H_
