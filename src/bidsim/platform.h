// The synthetic ad-bidding platform (the paper's Section 7 substrate).
//
// Topology: per data center, a set of BidServers (receive bid requests,
// return bid responses), AdServers (filtering phase + internal auction),
// PresentationServers (impressions/clicks), and a ProfileStore replica
// (frequency caps). Scrub integrates with all of them (the paper: "Scrub is
// integrated with the BidServers, the AdServers, the PresentationServers and
// the ProfileStore").
//
// Request pipeline, spread across hosts exactly as the paper describes:
//   1. A bid request arrives at a BidServer (from an exchange).
//   2. The BidServer RPCs its data center's AdServer, which filters the
//      line-item catalog (logging one `exclusion` event per filtered item),
//      runs the internal auction over the survivors (logging an `auction`
//      event carrying all participants and bids), and returns the winner.
//   3. The BidServer sends the bid response (logging the Figure-1 `bid`
//      event) — this completes the latency-critical path (20 ms SLO).
//   4. If the external auction is won, a PresentationServer logs an
//      `impression` event, charges budget, and updates the ProfileStore
//      (logging `profile_update`); a click may follow (`click` event).
//
// Every piece of application work charges app CPU to the host's meter;
// every Scrub log() call charges Scrub CPU and extends the request's
// processing time, which is how the paper's Section 9 overhead numbers are
// reproduced (E7/E8).

#ifndef SRC_BIDSIM_PLATFORM_H_
#define SRC_BIDSIM_PLATFORM_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bidsim/domain.h"
#include "src/bidsim/profile_store.h"
#include "src/bidsim/schemas.h"
#include "src/cluster/host_registry.h"
#include "src/cluster/scheduler.h"
#include "src/cluster/transport.h"
#include "src/common/cost_model.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/event/event.h"

namespace scrub {

// How the platform emits Scrub events. Returns the simulated nanoseconds the
// log() call cost on that host (folded into request latency when the call is
// on the latency-critical path). The harness points this at the ScrubAgents;
// the baseline harness tees it into the log shipper; tests can capture.
//
// The event is handed over by value: the platform is done with it after the
// call, so the consumer may strip field values in place (the agent's
// move-projection path) instead of deep-copying. Lambdas taking
// `const Event&` still bind unchanged.
using EventLoggerFn = std::function<int64_t(HostId, Event)>;

struct PlatformConfig {
  int datacenters = 2;
  int bidservers_per_dc = 4;
  int adservers_per_dc = 2;
  int presentation_per_dc = 1;

  int num_exchanges = 4;
  int num_campaigns = 10;
  int line_items_per_campaign = 6;
  int num_publishers = 50;

  // External auction + user behaviour.
  double win_rate_scale = 0.25;        // P(win) ~ scale * bid_price (clamped)
  double ctr_model_a = 0.010;          // click-through rates per model
  double ctr_model_b = 0.016;
  TimeMicros external_auction_delay = 120 * kMicrosPerMilli;
  TimeMicros click_delay = 2 * kMicrosPerSecond;

  // Fault injection for the Section 8.6 case study.
  double profile_update_loss = 0.0;

  bool log_exclusions = true;  // exclusion events dominate volume; E7 can
                               // toggle them to sweep event rate

  uint64_t seed = 42;
  CostModel costs;
};

struct PlatformStats {
  uint64_t requests = 0;
  uint64_t bids = 0;
  uint64_t no_bids = 0;        // every candidate excluded
  uint64_t impressions = 0;
  uint64_t clicks = 0;
  uint64_t exclusions = 0;
};

class BiddingPlatform {
 public:
  // Registers the bidsim event types into `schemas` (if not already there) —
  // the same registry ScrubCentral decodes against.
  BiddingPlatform(Scheduler* scheduler, Transport* transport,
                  HostRegistry* registry, SchemaRegistry* schemas,
                  PlatformConfig config);

  // Must be set before traffic is submitted. (A null logger means "Scrub
  // disabled" — the E7/E8 baseline runs.)
  void SetEventLogger(EventLoggerFn logger) { logger_ = std::move(logger); }

  // Entry point: schedules the full pipeline for one bid request. If
  // request_id is 0 a fresh one is assigned. Requests for exchanges not yet
  // active (Exchange::active_from) are dropped at the door.
  void SubmitBidRequest(BidRequest request);

  // ---- Scenario knobs used by the case studies ----
  std::vector<Exchange>& exchanges() { return exchanges_; }
  std::vector<LineItem>& line_items() { return line_items_; }
  // Adds a custom line item (e.g. the cannibalization pair); returns its id.
  LineItemId AddLineItem(LineItem item);
  // Assigns a targeting model to an AdServer host ("modelA"/"modelB").
  void SetAdServerModel(HostId host, std::string model);
  const std::string& AdServerModel(HostId host) const;

  // ---- Topology ----
  const std::vector<HostId>& bid_servers() const { return bid_servers_; }
  // Which BidServer a user's requests land on (users are sticky; useful for
  // single-host case studies like Section 8.1).
  HostId BidServerForUser(UserId user) const;
  const std::vector<HostId>& ad_servers() const { return ad_servers_; }
  const std::vector<HostId>& presentation_servers() const {
    return presentation_servers_;
  }
  HostId profile_store_host() const { return profile_host_; }

  // ---- Measurement ----
  const PlatformStats& stats() const { return stats_; }
  const Histogram& request_latency_us() const { return request_latency_us_; }
  ProfileStore& profile_store() { return profile_store_; }
  uint64_t NextRequestId() { return next_request_id_++; }

 private:
  struct RequestContext {
    BidRequest request;
    HostId bid_server = kInvalidHost;
    HostId ad_server = kInvalidHost;
    int64_t path_ns = 0;  // accumulated processing time on the critical path
    LineItemId winner = -1;
    CampaignId winner_campaign = 0;
    double winning_price = 0.0;  // CPM dollars
    std::string model;
  };

  void BuildTopology();
  void BuildCatalog();

  HostId PickBidServer(const BidRequest& request) const;
  HostId PairedAdServer(HostId bid_server) const;
  HostId PresentationServerFor(HostId bid_server) const;

  void HandleAtBidServer(RequestContext ctx);
  void HandleAtAdServer(RequestContext ctx);
  void CompleteAtBidServer(RequestContext ctx);
  void ServeImpression(RequestContext ctx);

  int64_t LogAt(HostId host, Event event);
  double CtrFor(const LineItem& item, const std::string& model) const;
  bool BudgetExhausted(const LineItem& item, TimeMicros now) const;
  void SpendBudget(LineItemId item, double cost, TimeMicros now);

  Scheduler* scheduler_;
  Transport* transport_;
  HostRegistry* registry_;
  PlatformConfig config_;
  EventLoggerFn logger_;
  Rng rng_;
  ProfileStore profile_store_;

  SchemaPtr bid_schema_;
  SchemaPtr auction_schema_;
  SchemaPtr exclusion_schema_;
  SchemaPtr impression_schema_;
  SchemaPtr click_schema_;
  SchemaPtr profile_schema_;

  std::vector<Exchange> exchanges_;
  std::vector<LineItem> line_items_;
  std::unordered_map<LineItemId, size_t> line_item_index_;
  std::vector<double> line_item_ctr_mult_;

  std::vector<HostId> bid_servers_;
  std::vector<HostId> ad_servers_;
  std::vector<HostId> presentation_servers_;
  HostId profile_host_ = kInvalidHost;
  std::unordered_map<HostId, std::string> adserver_model_;

  struct DailySpend {
    int64_t day = -1;
    double spent = 0.0;
  };
  std::unordered_map<LineItemId, DailySpend> spend_;

  PlatformStats stats_;
  Histogram request_latency_us_;
  uint64_t next_request_id_ = 1;
};

}  // namespace scrub

#endif  // SRC_BIDSIM_PLATFORM_H_
