// ProfileStore: per-user serve counts backing frequency capping.
//
// Turn's platform records, in the user's profile, the number of times each
// ad has been served; the filtering phase excludes line items whose
// frequency cap the user has hit (Section 8.6). The `update_loss_rate` knob
// injects the fault of that case study: a fraction of updates is silently
// dropped, so the recorded count lags the true count and over-frequency
// serving slips through.

#ifndef SRC_BIDSIM_PROFILE_STORE_H_
#define SRC_BIDSIM_PROFILE_STORE_H_

#include <cstdint>
#include <unordered_map>

#include "src/bidsim/domain.h"
#include "src/common/clock.h"
#include "src/common/rng.h"

namespace scrub {

class ProfileStore {
 public:
  ProfileStore(double update_loss_rate, uint64_t seed)
      : update_loss_rate_(update_loss_rate), rng_(seed) {}

  // The count the filtering phase sees (possibly stale under injected loss).
  int RecordedServeCount(UserId user, LineItemId item, TimeMicros now) const;
  // The ground-truth count (what the user actually experienced); the
  // troubleshooting query in E6 surfaces the divergence.
  int TrueServeCount(UserId user, LineItemId item, TimeMicros now) const;

  // Registers one served ad. Returns false if the update was "lost" (the
  // injected fault) — the true count still advances.
  bool RecordServe(UserId user, LineItemId item, TimeMicros now);

  uint64_t updates_applied() const { return updates_applied_; }
  uint64_t updates_lost() const { return updates_lost_; }

 private:
  struct DayCount {
    int64_t day = -1;
    int count = 0;
  };
  struct Counts {
    DayCount recorded;
    DayCount true_count;
  };

  static int64_t DayOf(TimeMicros t) { return t / kMicrosPerDay; }
  static int CountFor(const DayCount& c, TimeMicros now) {
    return c.day == DayOf(now) ? c.count : 0;
  }
  static void Bump(DayCount* c, TimeMicros now) {
    const int64_t day = DayOf(now);
    if (c->day != day) {
      c->day = day;
      c->count = 0;
    }
    ++c->count;
  }

  double update_loss_rate_;
  mutable Rng rng_;
  std::unordered_map<uint64_t, Counts> counts_;  // key: user ^ item mix
  uint64_t updates_applied_ = 0;
  uint64_t updates_lost_ = 0;

  static uint64_t Key(UserId user, LineItemId item) {
    return user * 0x9E3779B97F4A7C15ULL ^ static_cast<uint64_t>(item);
  }
};

}  // namespace scrub

#endif  // SRC_BIDSIM_PROFILE_STORE_H_
