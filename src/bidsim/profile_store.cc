#include "src/bidsim/profile_store.h"

namespace scrub {

int ProfileStore::RecordedServeCount(UserId user, LineItemId item,
                                     TimeMicros now) const {
  const auto it = counts_.find(Key(user, item));
  return it == counts_.end() ? 0 : CountFor(it->second.recorded, now);
}

int ProfileStore::TrueServeCount(UserId user, LineItemId item,
                                 TimeMicros now) const {
  const auto it = counts_.find(Key(user, item));
  return it == counts_.end() ? 0 : CountFor(it->second.true_count, now);
}

bool ProfileStore::RecordServe(UserId user, LineItemId item, TimeMicros now) {
  Counts& c = counts_[Key(user, item)];
  Bump(&c.true_count, now);
  if (update_loss_rate_ > 0.0 && rng_.NextBool(update_loss_rate_)) {
    ++updates_lost_;
    return false;
  }
  Bump(&c.recorded, now);
  ++updates_applied_;
  return true;
}

}  // namespace scrub
