#include "src/cluster/host_registry.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/strings.h"

namespace scrub {

HostId HostRegistry::AddHost(std::string name, std::string service,
                             std::string datacenter, bool monitorable) {
  HostInfo info;
  info.id = static_cast<HostId>(hosts_.size());
  info.name = std::move(name);
  info.service = std::move(service);
  info.datacenter = std::move(datacenter);
  info.monitorable = monitorable;
  hosts_.push_back(std::move(info));
  meters_.emplace_back();
  return hosts_.back().id;
}

Result<HostId> HostRegistry::FindByName(std::string_view name) const {
  for (const HostInfo& h : hosts_) {
    if (h.name == name) {
      return h.id;
    }
  }
  return NotFound(StrFormat("unknown host '%.*s'",
                            static_cast<int>(name.size()), name.data()));
}

Result<std::vector<HostId>> HostRegistry::Resolve(
    const TargetSpec& targets) const {
  // Validate names first so a typo is an error, not an empty result.
  for (const std::string& service : targets.services) {
    if (std::none_of(hosts_.begin(), hosts_.end(), [&](const HostInfo& h) {
          return h.service == service;
        })) {
      return NotFound(StrFormat("unknown service '%s'", service.c_str()));
    }
  }
  for (const std::string& dc : targets.datacenters) {
    if (std::none_of(hosts_.begin(), hosts_.end(), [&](const HostInfo& h) {
          return h.datacenter == dc;
        })) {
      return NotFound(StrFormat("unknown data center '%s'", dc.c_str()));
    }
  }
  std::unordered_set<std::string> host_allowlist;
  for (const std::string& name : targets.hosts) {
    Result<HostId> id = FindByName(name);
    if (!id.ok()) {
      return id.status();
    }
    host_allowlist.insert(name);
  }

  std::vector<HostId> out;
  for (const HostInfo& h : hosts_) {
    if (!h.monitorable) {
      continue;
    }
    if (!targets.services.empty() &&
        std::find(targets.services.begin(), targets.services.end(),
                  h.service) == targets.services.end()) {
      continue;
    }
    if (!host_allowlist.empty() && host_allowlist.count(h.name) == 0) {
      continue;
    }
    if (!targets.datacenters.empty() &&
        std::find(targets.datacenters.begin(), targets.datacenters.end(),
                  h.datacenter) == targets.datacenters.end()) {
      continue;
    }
    out.push_back(h.id);
  }
  return out;
}

std::vector<HostId> HostRegistry::HostsInService(
    std::string_view service) const {
  std::vector<HostId> out;
  for (const HostInfo& h : hosts_) {
    if (h.service == service) {
      out.push_back(h.id);
    }
  }
  return out;
}

}  // namespace scrub
