// Discrete-event scheduler driving the simulated cluster.
//
// Single-threaded and deterministic: events fire in (time, insertion order).
// All components — the synthetic bidding platform, Scrub agents, transport
// deliveries, ScrubCentral windows — run as callbacks on this loop against
// the shared SimClock.

#ifndef SRC_CLUSTER_SCHEDULER_H_
#define SRC_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/clock.h"

namespace scrub {

class Scheduler {
 public:
  explicit Scheduler(TimeMicros start = 0) : clock_(start) {}

  const SimClock& clock() const { return clock_; }
  TimeMicros Now() const { return clock_.Now(); }

  void ScheduleAt(TimeMicros when, std::function<void()> fn) {
    if (when < clock_.Now()) {
      when = clock_.Now();
    }
    queue_.push(Item{when, next_seq_++, std::move(fn)});
  }

  void ScheduleAfter(TimeMicros delay, std::function<void()> fn) {
    ScheduleAt(clock_.Now() + delay, std::move(fn));
  }

  // Runs all events with time <= until, advancing the clock as it goes, then
  // advances the clock to `until`.
  void RunUntil(TimeMicros until) {
    while (!queue_.empty() && queue_.top().when <= until) {
      Item item = std::move(const_cast<Item&>(queue_.top()));
      queue_.pop();
      clock_.AdvanceTo(item.when);
      item.fn();
    }
    clock_.AdvanceTo(until);
  }

  // Runs until the queue drains.
  void RunAll() {
    while (!queue_.empty()) {
      Item item = std::move(const_cast<Item&>(queue_.top()));
      queue_.pop();
      clock_.AdvanceTo(item.when);
      item.fn();
    }
  }

  size_t pending() const { return queue_.size(); }

 private:
  struct Item {
    TimeMicros when;
    uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Item& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  SimClock clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
};

}  // namespace scrub

#endif  // SRC_CLUSTER_SCHEDULER_H_
