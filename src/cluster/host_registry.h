// The simulated fleet: hosts, services, data centers, and resolution of a
// query's @[...] target clause against them.
//
// Putting target selection in the registry (rather than filtering events by
// host name after the fact) is what lets Scrub keep non-targeted hosts
// completely free of query work (Section 3.2, "Target hosts").

#ifndef SRC_CLUSTER_HOST_REGISTRY_H_
#define SRC_CLUSTER_HOST_REGISTRY_H_

#include <deque>
#include <string>
#include <vector>

#include "src/common/cost_model.h"
#include "src/common/status.h"
#include "src/query/ast.h"

namespace scrub {

using HostId = int;
inline constexpr HostId kInvalidHost = -1;

struct HostInfo {
  HostId id = kInvalidHost;
  std::string name;        // "bid-sj-0001"
  std::string service;     // "BidServers", "AdServers", ...
  std::string datacenter;  // "DC1", ...
  bool monitorable = true; // false for Scrub's own infrastructure
  bool alive = true;       // false while crashed (fault injection)
};

class HostRegistry {
 public:
  HostId AddHost(std::string name, std::string service,
                 std::string datacenter, bool monitorable = true);

  const HostInfo& Get(HostId id) const { return hosts_[static_cast<size_t>(id)]; }
  size_t size() const { return hosts_.size(); }

  // Hosts an unrestricted target clause would reach (excludes Scrub's own
  // infrastructure). The admission linter's fleet size.
  size_t MonitorableCount() const {
    size_t n = 0;
    for (const HostInfo& h : hosts_) {
      n += h.monitorable ? 1 : 0;
    }
    return n;
  }

  // Crash/restart support for fault injection. A dead host neither sends
  // nor receives transport messages; its registration (name, service, DC,
  // meters) survives so a restart is the same identity coming back.
  void SetAlive(HostId id, bool alive) {
    hosts_[static_cast<size_t>(id)].alive = alive;
  }
  bool IsAlive(HostId id) const {
    return hosts_[static_cast<size_t>(id)].alive;
  }

  Result<HostId> FindByName(std::string_view name) const;

  // All monitorable hosts matching every term of the target clause. An
  // unrestricted clause matches every monitorable host. Unknown service /
  // host / datacenter names yield kNotFound, so a typo fails the query at
  // submission instead of silently matching nothing.
  Result<std::vector<HostId>> Resolve(const TargetSpec& targets) const;

  std::vector<HostId> HostsInService(std::string_view service) const;

  // Per-host CPU meters: the application and the Scrub agent on a host
  // charge their work here. Callers (agents, sim nodes) retain these
  // references for their lifetime, so the storage must be stable across
  // later AddHost calls — hence a deque, never a vector.
  CostMeter& meter(HostId id) { return meters_[static_cast<size_t>(id)]; }
  const CostMeter& meter(HostId id) const {
    return meters_[static_cast<size_t>(id)];
  }

 private:
  std::vector<HostInfo> hosts_;
  std::deque<CostMeter> meters_;
};

}  // namespace scrub

#endif  // SRC_CLUSTER_HOST_REGISTRY_H_
