#include "src/cluster/combiner.h"

#include <algorithm>
#include <utility>

namespace scrub {

namespace {

// Per-accumulator wire estimate: the fixed scalar block (count, sum,
// min/max tag + two values) plus whatever sketch state rides along. HLL
// ships its register array verbatim; SpaceSaving ships its monitored
// entries (key + count + error).
size_t AccumulatorWireSize(const AggAccumulator& acc) {
  size_t n = 24;
  if (acc.hll != nullptr) {
    n += acc.hll->SizeBytes() + 2;
  }
  if (acc.topk != nullptr) {
    n += acc.topk->size() * 48 + 8;
  }
  return n;
}

size_t PartialWireSize(const WindowPartial& partial) {
  size_t n = 28;  // query_id + window_start + completeness + counts
  for (size_t g = 0; g < partial.keys.size(); ++g) {
    n += 8;  // stored key hash
    for (const Value& v : partial.keys[g]) {
      n += v.WireSize();
    }
    for (const AggAccumulator& acc : partial.accumulators[g]) {
      n += AccumulatorWireSize(acc);
    }
    if (g < partial.group_readings.size()) {
      for (const auto& ghr : partial.group_readings[g]) {
        n += 8 + ghr.readings.size() * 32;
      }
    }
  }
  n += 16;  // input_events + shed_events
  return n;
}

}  // namespace

size_t PartialEnvelope::WireSize() const {
  size_t n = 36;  // query_id + sender + epoch + seq + two counts
  for (const WindowPartial& partial : partials) {
    n += PartialWireSize(partial);
  }
  for (const CounterDigest& digest : digests) {
    // Host id + count, then window_start + seen/sampled/shed per counter —
    // the same 32-byte convention EventBatch::WireSize uses.
    n += 8 + 32 * digest.counters.size();
  }
  return n;
}

PartialEnvelope PartialEnvelope::Clone() const {
  PartialEnvelope copy;
  copy.query_id = query_id;
  copy.sender = sender;
  copy.epoch = epoch;
  copy.seq = seq;
  copy.partials.reserve(partials.size());
  for (const WindowPartial& partial : partials) {
    copy.partials.push_back(partial.Clone());
  }
  copy.digests = digests;
  return copy;
}

RegionalCombiner::RegionalCombiner(const SchemaRegistry* registry, HostId host,
                                   CombinerConfig config, uint64_t epoch)
    : registry_(registry),
      host_(host),
      config_(std::move(config)),
      epoch_(epoch),
      retry_rng_(config_.seed ^ (0x9E3779B97F4A7C15ULL * (host + 1))),
      inner_(std::make_unique<ScrubCentral>(registry_, config_.central)) {}

Status RegionalCombiner::InstallQuery(const CentralPlan& plan) {
  if (plans_.count(plan.query_id) > 0) {
    return OkStatus();
  }
  // The inner central runs the shard role: full Decode..WindowClose, no
  // Finalize, no expected-host bookkeeping (that stays global, at the
  // coordinator, fed by the forwarded digests).
  CentralPlan inner_plan = plan;
  inner_plan.hosts_sampled = 0;
  const QueryId qid = plan.query_id;
  Status status = inner_->InstallQueryPartial(
      inner_plan,
      [this, qid](WindowPartial&& partial) {
        buffered_[qid].push_back(std::move(partial));
      });
  if (!status.ok()) {
    return status;
  }
  plans_.emplace(qid, plan);
  return OkStatus();
}

void RegionalCombiner::RemoveQuery(QueryId query_id) {
  // Cancel semantics: the inner central's close-out partials are dropped
  // along with everything buffered or held — central has cancelled the
  // query, so there is nobody upstream to merge them.
  inner_->RemoveQuery(query_id);
  plans_.erase(query_id);
  dedup_.erase(query_id);
  buffered_.erase(query_id);
  digests_.erase(query_id);
  digest_watermark_.erase(query_id);
  next_seq_.erase(query_id);
  held_.erase(query_id);
}

RegionalCombiner::Action RegionalCombiner::IngestBatch(const EventBatch& batch,
                                                       TimeMicros now) {
  const auto pit = plans_.find(batch.query_id);
  if (pit == plans_.end()) {
    ++stats_.batches_relayed;
    return Action::kRelay;
  }
  // Dedup before the digest ledger and the inner ingest: an agent
  // retransmit whose ack was lost must not double-count counters.
  if (batch.seq != 0 &&
      !dedup_[batch.query_id][batch.host][batch.epoch].Insert(batch.seq)) {
    ++stats_.batches_duplicate;
    return Action::kAbsorbed;  // already applied; re-ack
  }
  ++stats_.batches_absorbed;
  // Ledger the per-agent counters for upstream forwarding. Summing per
  // (slot, host) is lossless for the coordinator — it needs per-host M_i /
  // m_i, and an agent's flushes are deltas that sum to its slot totals.
  const CentralPlan& plan = pit->second;
  for (const WindowCounter& counter : batch.counters) {
    if (counter.window_start < plan.start_time ||
        counter.window_start >= plan.end_time) {
      continue;
    }
    // Mirror the inner central's straggler acceptance: the last window
    // covering this slot starts at the slot itself, so once its close
    // deadline passes, the inner has late-dropped the slot's events —
    // ledgering the counter would mark the host heard for data that never
    // shipped. (A fresh post-crash incarnation applies the same deadline,
    // so retransmits into it can't vouch for slots the dead one dropped.)
    if (counter.window_start + plan.window_micros +
            config_.central.allowed_lateness <=
        now) {
      ++stats_.counters_late;
      continue;
    }
    WindowCounter& digest =
        digests_[batch.query_id][counter.window_start][batch.host];
    digest.window_start = counter.window_start;
    digest.seen += counter.seen;
    digest.sampled += counter.sampled;
    digest.shed += counter.shed;
  }
  // The full batch — counters included — feeds the inner central, so
  // heartbeat counters still create (possibly empty) windows and the
  // empty-window partials keep flat/hierarchical row streams identical.
  (void)inner_->IngestBatch(batch, now);
  return Action::kAbsorbed;
}

TimeMicros RegionalCombiner::BackoffFor(int attempts) {
  TimeMicros base = config_.retransmit_backoff;
  for (int i = 0; i < attempts && base < config_.retransmit_backoff * 8; ++i) {
    base *= 2;
  }
  const TimeMicros quarter = std::max<TimeMicros>(base / 4, 1);
  const TimeMicros jitter =
      static_cast<TimeMicros>(retry_rng_.NextBelow(
          static_cast<uint64_t>(2 * quarter))) -
      quarter;
  return std::max<TimeMicros>(base + jitter, 1);
}

std::vector<PartialEnvelope> RegionalCombiner::PumpUpstream(TimeMicros now) {
  inner_->OnTick(now);  // window closes land in buffered_ via the sinks
  std::vector<PartialEnvelope> out;

  // Fresh envelopes, ascending query id. Partials ship as soon as the inner
  // central closes them; digest slots trail the partial watermark, so a
  // host's counters for a window travel with (or after) the partial holding
  // that window's data. Shipping digests eagerly would let a partition lose
  // a window's data while its completeness accounting got through — a
  // silently-wrong 1.0. Heartbeat counters keep empty windows closing at
  // the inner central, so the watermark advances even with no matches.
  for (auto& [qid, plan] : plans_) {
    auto bit = buffered_.find(qid);
    const bool has_partials = bit != buffered_.end() && !bit->second.empty();
    auto wit = digest_watermark_.find(qid);
    if (has_partials) {
      for (const WindowPartial& partial : bit->second) {
        if (wit == digest_watermark_.end()) {
          wit = digest_watermark_.emplace(qid, partial.window_start).first;
        } else if (partial.window_start > wit->second) {
          wit->second = partial.window_start;
        }
      }
    }
    // Regroup the covered prefix of the slot -> host ledger per host,
    // ascending HostId (outer map is by slot; collect into a sorted host
    // map first).
    std::map<HostId, std::vector<WindowCounter>> by_host;
    if (wit != digest_watermark_.end()) {
      auto dit = digests_.find(qid);
      if (dit != digests_.end()) {
        std::map<TimeMicros, std::map<HostId, WindowCounter>>& slots =
            dit->second;
        for (auto sit = slots.begin();
             sit != slots.end() && sit->first <= wit->second;) {
          for (auto& [host, counter] : sit->second) {
            by_host[host].push_back(counter);
          }
          sit = slots.erase(sit);
        }
      }
    }
    if (!has_partials && by_host.empty()) {
      continue;
    }
    PartialEnvelope env;
    env.query_id = qid;
    env.sender = host_;
    env.epoch = epoch_;
    env.seq = ++next_seq_[qid];
    if (has_partials) {
      env.partials = std::move(bit->second);
      bit->second.clear();
    }
    env.digests.reserve(by_host.size());
    for (auto& [host, counters] : by_host) {
      CounterDigest digest;
      digest.host = host;
      digest.counters = std::move(counters);
      env.digests.push_back(std::move(digest));
    }
    if (config_.retransmit_budget > 0) {
      std::deque<HeldEnvelope>& held = held_[qid];
      if (held.size() >= config_.retransmit_capacity) {
        held.pop_front();
        ++stats_.envelopes_evicted;
      }
      HeldEnvelope h;
      h.envelope = env.Clone();
      h.next_retry = now + BackoffFor(0);
      h.deadline = now + config_.retransmit_budget;
      h.attempts = 0;
      held.push_back(std::move(h));
    }
    ++stats_.envelopes_sent;
    out.push_back(std::move(env));
  }

  // Due retransmits, after fresh sends (same discipline as the agent).
  for (auto& [qid, held] : held_) {
    for (auto it = held.begin(); it != held.end();) {
      if (it->deadline <= now) {
        ++stats_.envelopes_expired;
        it = held.erase(it);
        continue;
      }
      if (it->next_retry <= now) {
        ++it->attempts;
        it->next_retry = now + BackoffFor(it->attempts);
        ++stats_.envelopes_retransmitted;
        out.push_back(it->envelope.Clone());
      }
      ++it;
    }
  }

  // GC queries past their span: agents stop flushing at end_time and their
  // retransmit budget bounds stragglers; one more combiner budget covers
  // our own held envelopes.
  const TimeMicros grace = config_.central.allowed_lateness +
                           config_.retransmit_budget +
                           config_.retransmit_backoff;
  for (auto it = plans_.begin(); it != plans_.end();) {
    const QueryId qid = it->first;
    const bool expired = it->second.end_time + grace <= now;
    const auto hit = held_.find(qid);
    const bool quiesced = hit == held_.end() || hit->second.empty();
    if (expired && quiesced) {
      dedup_.erase(qid);
      buffered_.erase(qid);
      digests_.erase(qid);
      digest_watermark_.erase(qid);
      next_seq_.erase(qid);
      held_.erase(qid);
      it = plans_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void RegionalCombiner::OnAck(QueryId query_id, uint64_t seq) {
  auto it = held_.find(query_id);
  if (it == held_.end()) {
    return;
  }
  std::deque<HeldEnvelope>& held = it->second;
  for (auto hit = held.begin(); hit != held.end(); ++hit) {
    if (hit->envelope.seq == seq) {
      held.erase(hit);
      ++stats_.envelopes_acked;
      break;
    }
  }
}

size_t RegionalCombiner::pending_retransmits() const {
  size_t n = 0;
  for (const auto& [qid, held] : held_) {
    n += held.size();
  }
  return n;
}

}  // namespace scrub
