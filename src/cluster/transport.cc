#include "src/cluster/transport.h"

#include <utility>

namespace scrub {

const char* TrafficCategoryName(TrafficCategory category) {
  switch (category) {
    case TrafficCategory::kAppTraffic:
      return "app_traffic";
    case TrafficCategory::kScrubControl:
      return "scrub_control";
    case TrafficCategory::kScrubEvents:
      return "scrub_events";
    case TrafficCategory::kScrubAcks:
      return "scrub_acks";
    case TrafficCategory::kScrubResults:
      return "scrub_results";
    case TrafficCategory::kScrubPartials:
      return "scrub_partials";
    case TrafficCategory::kBaselineLog:
      return "baseline_log";
    case TrafficCategory::kCategoryCount:
      break;
  }
  return "unknown";
}

TimeMicros Transport::LatencyBetween(HostId from, HostId to) const {
  if (from == to) {
    return config_.same_host_latency;
  }
  const HostInfo& a = registry_->Get(from);
  const HostInfo& b = registry_->Get(to);
  return a.datacenter == b.datacenter ? config_.same_dc_latency
                                      : config_.cross_dc_latency;
}

bool Transport::Partitioned(HostId from, HostId to) const {
  if (faults_.partitions.empty() || from == to) {
    return false;
  }
  const TimeMicros now = scheduler_->Now();
  const std::string& dc_a = registry_->Get(from).datacenter;
  const std::string& dc_b = registry_->Get(to).datacenter;
  if (dc_a == dc_b) {
    return false;
  }
  for (const PartitionSpec& p : faults_.partitions) {
    if (now < p.start || now >= p.end) {
      continue;
    }
    // The partition isolates p.datacenter: a link is cut iff exactly one
    // endpoint is inside.
    if ((dc_a == p.datacenter) != (dc_b == p.datacenter)) {
      return true;
    }
  }
  return false;
}

void Transport::SetFaultPlan(FaultPlan plan) {
  faults_ = std::move(plan);
  fault_rng_ = Rng(faults_.seed);
}

void Transport::Send(HostId from, HostId to, size_t bytes,
                     TrafficCategory category,
                     std::function<void()> deliver) {
  // The sender pays to serialize and emit the message even if the network
  // then eats it, so bytes are accounted unconditionally.
  bytes_by_category_[static_cast<size_t>(category)] += bytes;
  messages_by_category_[static_cast<size_t>(category)] += 1;
  bytes_by_destination_[to][static_cast<size_t>(category)] += bytes;
  FaultStats& stats = fault_stats_[static_cast<size_t>(category)];

  // A dead endpoint means the message goes nowhere — never execute a
  // delivery closure on a crashed host's behalf.
  if (!registry_->IsAlive(from) || !registry_->IsAlive(to)) {
    ++stats.dead_host;
    ++stats.dropped;
    return;
  }
  if (Partitioned(from, to)) {
    ++stats.partitioned;
    ++stats.dropped;
    return;
  }

  TimeMicros latency =
      LatencyBetween(from, to) +
      static_cast<TimeMicros>(config_.micros_per_byte *
                              static_cast<double>(bytes));

  bool duplicate = false;
  const FaultSpec& spec = faults_.Category(category);
  if (spec.Active()) {
    // Draw all four coins whenever the category is faulted at all, so the
    // random stream's shape depends only on the message sequence, not on
    // which sub-probabilities happen to be zero. Categories with an inert
    // spec consume no randomness, keeping them bit-identical to a clean run.
    const bool drop = fault_rng_.NextBool(spec.drop);
    const bool spiked = fault_rng_.NextBool(spec.spike);
    const bool reordered = fault_rng_.NextBool(spec.reorder);
    duplicate = fault_rng_.NextBool(spec.duplicate);
    if (drop) {
      ++stats.dropped;
      return;
    }
    if (spiked) {
      ++stats.spiked;
      latency += spec.spike_delay;
    }
    if (reordered) {
      ++stats.reordered;
      latency += spec.reorder_delay;
    }
  }

  // Re-check recipient liveness at delivery time: the host may crash while
  // the message is in flight.
  auto guarded = [this, to, &stats, deliver = std::move(deliver)]() {
    if (!registry_->IsAlive(to)) {
      ++stats.dead_host;
      ++stats.dropped;
      return;
    }
    deliver();
  };
  if (duplicate) {
    ++stats.duplicated;
    scheduler_->ScheduleAfter(latency + config_.same_dc_latency, guarded);
  }
  scheduler_->ScheduleAfter(latency, std::move(guarded));
}

uint64_t Transport::bytes_to(HostId to, TrafficCategory category) const {
  const auto it = bytes_by_destination_.find(to);
  if (it == bytes_by_destination_.end()) {
    return 0;
  }
  return it->second[static_cast<size_t>(category)];
}

uint64_t Transport::total_bytes() const {
  uint64_t total = 0;
  for (const uint64_t b : bytes_by_category_) {
    total += b;
  }
  return total;
}

FaultStats Transport::TotalFaultStats() const {
  FaultStats total;
  for (const FaultStats& s : fault_stats_) {
    total.dropped += s.dropped;
    total.duplicated += s.duplicated;
    total.reordered += s.reordered;
    total.spiked += s.spiked;
    total.partitioned += s.partitioned;
    total.dead_host += s.dead_host;
  }
  return total;
}

void Transport::ResetCounters() {
  bytes_by_category_.fill(0);
  messages_by_category_.fill(0);
  fault_stats_ = {};
  bytes_by_destination_.clear();
}

}  // namespace scrub
