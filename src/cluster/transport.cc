#include "src/cluster/transport.h"

namespace scrub {

const char* TrafficCategoryName(TrafficCategory category) {
  switch (category) {
    case TrafficCategory::kAppTraffic:
      return "app_traffic";
    case TrafficCategory::kScrubControl:
      return "scrub_control";
    case TrafficCategory::kScrubEvents:
      return "scrub_events";
    case TrafficCategory::kScrubResults:
      return "scrub_results";
    case TrafficCategory::kBaselineLog:
      return "baseline_log";
    case TrafficCategory::kCategoryCount:
      break;
  }
  return "unknown";
}

TimeMicros Transport::LatencyBetween(HostId from, HostId to) const {
  if (from == to) {
    return config_.same_host_latency;
  }
  const HostInfo& a = registry_->Get(from);
  const HostInfo& b = registry_->Get(to);
  return a.datacenter == b.datacenter ? config_.same_dc_latency
                                      : config_.cross_dc_latency;
}

void Transport::Send(HostId from, HostId to, size_t bytes,
                     TrafficCategory category,
                     std::function<void()> deliver) {
  bytes_by_category_[static_cast<size_t>(category)] += bytes;
  messages_by_category_[static_cast<size_t>(category)] += 1;
  const TimeMicros latency =
      LatencyBetween(from, to) +
      static_cast<TimeMicros>(config_.micros_per_byte *
                              static_cast<double>(bytes));
  scheduler_->ScheduleAfter(latency, std::move(deliver));
}

uint64_t Transport::total_bytes() const {
  uint64_t total = 0;
  for (const uint64_t b : bytes_by_category_) {
    total += b;
  }
  return total;
}

void Transport::ResetCounters() {
  bytes_by_category_.fill(0);
  messages_by_category_.fill(0);
}

}  // namespace scrub
