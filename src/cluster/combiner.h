// RegionalCombiner: the per-DC aggregation tier for million-host fleets.
//
// In the flat topology every agent ships event batches straight to
// ScrubCentral, so the central ingress link and the coordinator CPU grow
// linearly with host count. The combiner tier cuts both: each region (DC or
// group of DCs) runs one combiner node that
//
//  * receives its region's agent batches for *aggregate* queries,
//  * folds them through an inner shard-role ScrubCentral (the ordinary
//    Decode..WindowClose pipeline, hosts_sampled = 0 — the expected host
//    set is a coordinator concern), and
//  * ships compact, mergeable WindowPartials upstream instead of raw
//    events: per-group accumulator state (counts, sums, min/max,
//    HyperLogLog registers, SpaceSaving summaries) whose size scales with
//    group cardinality, not event volume.
//
// The Eq. 1-3 completeness and sampling-error accounting survives the extra
// hop because the combiner also forwards *counter digests*: the per-agent
// per-slot WindowCounters (M_i / m_i / shed), summed per (slot, host) but
// never across hosts, so the central coordinator reconstructs exactly the
// global per-host picture the flat topology sees. Selection/raw-mode and
// join queries are not installed here; their batches return kRelay and pass
// through to central untouched (the paper's host rule: hosts — and their
// regional proxies — do selection and projection only, never lossy
// cross-host aggregation of raw streams).
//
// Reliability mirrors the agent -> central hop, per hop:
//
//   agent -> combiner   agent seq/epoch, combiner dedups and acks.
//   combiner -> central sequenced PartialEnvelopes, held (deep clones) for
//                       retransmission with jittered exponential backoff
//                       until acked or the budget expires; the central
//                       coordinator dedups per (combiner, epoch, seq), so a
//                       retransmit racing its ack never double-counts.
//
// A crashed combiner loses its open window state and unshipped envelopes —
// honest degradation: the lost hosts simply go unheard and the affected
// windows close incomplete, exactly like a crashed agent, while agents keep
// retransmitting into the restarted (epoch-bumped) combiner.

#ifndef SRC_CLUSTER_COMBINER_H_
#define SRC_CLUSTER_COMBINER_H_

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/central/central.h"
#include "src/common/rng.h"

namespace scrub {

// Aggregate-mode, non-join plans merge associatively and may be combined
// regionally. Join plans need request-id colocation across the whole fleet
// (partners may log in different regions), and raw-mode plans have no
// mergeable state — both pass through.
inline bool CombinerEligible(const CentralPlan& plan) {
  return plan.aggregate_mode && !plan.is_join();
}

// Per-agent sampling counters, forwarded alongside partials so the
// coordinator's completeness / fidelity / Eq. 1-3 inputs keep per-host
// granularity through the tier.
struct CounterDigest {
  HostId host = kInvalidHost;
  std::vector<WindowCounter> counters;
};

// One sequenced combiner -> central message: the partials the inner central
// emitted since the last pump, plus the counter digests whose slots those
// partials (cumulatively) cover — digests never run ahead of the data they
// account for.
struct PartialEnvelope {
  QueryId query_id = 0;
  HostId sender = kInvalidHost;  // the combiner host
  uint64_t epoch = 0;            // combiner incarnation
  uint64_t seq = 0;              // per (combiner, query) sequence
  std::vector<WindowPartial> partials;
  std::vector<CounterDigest> digests;

  // Deterministic wire-size estimate (same spirit as HostPlan::WireSize):
  // right order of magnitude, identical for identical content. This is the
  // number the fleet benchmark compares against shipping raw events.
  size_t WireSize() const;
  PartialEnvelope Clone() const;
};

struct CombinerConfig {
  // Inner shard-role central (lateness, budgets, sketch parameters — keep
  // identical to the flat central's so merged state matches).
  CentralConfig central;
  // Upstream retransmission, mirroring AgentConfig's contract.
  TimeMicros retransmit_backoff = 250 * kMicrosPerMilli;
  TimeMicros retransmit_budget = 0;  // 0 disables holding for retransmit
  size_t retransmit_capacity = 64;   // held envelopes per query
  uint64_t seed = 1;                 // retry jitter stream
};

struct CombinerStats {
  uint64_t batches_absorbed = 0;     // agent batches for installed queries
  uint64_t batches_duplicate = 0;    // agent retransmit raced its ack
  uint64_t batches_relayed = 0;      // pass-through (query not installed)
  uint64_t counters_late = 0;        // digest slots past the inner deadline
  uint64_t envelopes_sent = 0;       // fresh upstream envelopes
  uint64_t envelopes_retransmitted = 0;
  uint64_t envelopes_expired = 0;    // budget spent before an ack arrived
  uint64_t envelopes_evicted = 0;    // held-buffer capacity overflow
  uint64_t envelopes_acked = 0;
};

class RegionalCombiner {
 public:
  RegionalCombiner(const SchemaRegistry* registry, HostId host,
                   CombinerConfig config = {}, uint64_t epoch = 1);

  // Installs an eligible aggregate plan on the inner shard-role central.
  // Idempotent (restart reinstalls race teardown-free).
  Status InstallQuery(const CentralPlan& plan);
  // Drops the query and every buffered/held artifact (cancel semantics).
  void RemoveQuery(QueryId query_id);
  bool HasQuery(QueryId query_id) const {
    return plans_.count(query_id) > 0;
  }

  enum class Action {
    kAbsorbed,  // batch consumed (or duplicate-suppressed): ack the agent
    kRelay,     // query not installed here: forward unchanged to central
  };
  Action IngestBatch(const EventBatch& batch, TimeMicros now);

  // Ticks the inner central (window closes emit partials), packages the
  // buffered partials + counter digests into sequenced envelopes (holding
  // clones for retransmission), appends due retransmits, and GCs expired
  // query state. Envelope order is ascending query id, retransmits after
  // fresh sends — a pure function of state, never of wall-clock races.
  std::vector<PartialEnvelope> PumpUpstream(TimeMicros now);

  // Central acked (query, seq): stop retransmitting it.
  void OnAck(QueryId query_id, uint64_t seq);

  HostId host() const { return host_; }
  uint64_t epoch() const { return epoch_; }
  const CombinerStats& stats() const { return stats_; }
  const ScrubCentral& inner() const { return *inner_; }
  size_t pending_retransmits() const;

 private:
  TimeMicros BackoffFor(int attempts);

  struct HeldEnvelope {
    PartialEnvelope envelope;
    TimeMicros next_retry = 0;
    TimeMicros deadline = 0;
    int attempts = 0;
  };

  const SchemaRegistry* registry_;
  HostId host_;
  CombinerConfig config_;
  uint64_t epoch_;
  Rng retry_rng_;
  std::unique_ptr<ScrubCentral> inner_;
  // Installed plans (span gating for digests, GC horizon).
  std::map<QueryId, CentralPlan> plans_;
  // Per-hop dedup: query -> agent host -> epoch -> tracker.
  std::map<QueryId,
           std::unordered_map<HostId, std::map<uint64_t, SeqTracker>>>
      dedup_;
  // Partials the inner central emitted, awaiting the next pump.
  std::map<QueryId, std::vector<WindowPartial>> buffered_;
  // Counter digests accumulated since the last pump: slot -> host -> sums.
  std::map<QueryId, std::map<TimeMicros, std::map<HostId, WindowCounter>>>
      digests_;
  // Highest window_start among partials shipped so far. A digest slot ships
  // only once covered (slot <= watermark), so a slot's counters ride in the
  // same envelope as — or after — the partial carrying its data. Losing an
  // envelope then loses data and accounting together: the coordinator never
  // marks a host heard for a window whose region partial it is missing.
  std::map<QueryId, TimeMicros> digest_watermark_;
  std::map<QueryId, uint64_t> next_seq_;
  std::map<QueryId, std::deque<HeldEnvelope>> held_;
  CombinerStats stats_;
};

}  // namespace scrub

#endif  // SRC_CLUSTER_COMBINER_H_
