// Simulated network transport with latency and byte accounting.
//
// Every message between simulated hosts goes through here: Scrub query
// dissemination, event batches to ScrubCentral, results back to the user,
// the baseline's log shipping, and the bidding platform's own inter-service
// calls. Delivery latency is topology-aware (same host / same data center /
// cross data center) plus a bandwidth term, and bytes are accounted per
// traffic category — the E11 experiment (Scrub vs full logging) reads its
// numbers straight from these counters.

#ifndef SRC_CLUSTER_TRANSPORT_H_
#define SRC_CLUSTER_TRANSPORT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "src/cluster/host_registry.h"
#include "src/cluster/scheduler.h"

namespace scrub {

enum class TrafficCategory {
  kAppTraffic = 0,    // the bidding platform's own RPCs
  kScrubControl,      // query objects out, teardown messages
  kScrubEvents,       // event batches host -> ScrubCentral
  kScrubResults,      // result rows ScrubCentral -> user
  kBaselineLog,       // the full-logging baseline's shipped events
  kCategoryCount,
};

const char* TrafficCategoryName(TrafficCategory category);

struct TransportConfig {
  TimeMicros same_host_latency = 5;            // loopback
  TimeMicros same_dc_latency = 250;            // intra-DC RPC
  TimeMicros cross_dc_latency = 60'000;        // trans-continental
  // Serialization/propagation cost per byte (1 byte/ns ~ 8 Gbit/s).
  double micros_per_byte = 0.001;
};

class Transport {
 public:
  Transport(Scheduler* scheduler, const HostRegistry* registry,
            TransportConfig config = {})
      : scheduler_(scheduler), registry_(registry), config_(config) {
    bytes_by_category_.fill(0);
    messages_by_category_.fill(0);
  }

  // Schedules `deliver` to run on the recipient after the link latency.
  // `bytes` is the message's wire size (drives both the bandwidth term and
  // the accounting).
  void Send(HostId from, HostId to, size_t bytes, TrafficCategory category,
            std::function<void()> deliver);

  TimeMicros LatencyBetween(HostId from, HostId to) const;

  uint64_t bytes_sent(TrafficCategory category) const {
    return bytes_by_category_[static_cast<size_t>(category)];
  }
  uint64_t messages_sent(TrafficCategory category) const {
    return messages_by_category_[static_cast<size_t>(category)];
  }
  uint64_t total_bytes() const;

  void ResetCounters();

 private:
  Scheduler* scheduler_;
  const HostRegistry* registry_;
  TransportConfig config_;
  std::array<uint64_t, static_cast<size_t>(TrafficCategory::kCategoryCount)>
      bytes_by_category_;
  std::array<uint64_t, static_cast<size_t>(TrafficCategory::kCategoryCount)>
      messages_by_category_;
};

}  // namespace scrub

#endif  // SRC_CLUSTER_TRANSPORT_H_
