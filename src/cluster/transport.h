// Simulated network transport with latency, byte accounting, and
// deterministic fault injection.
//
// Every message between simulated hosts goes through here: Scrub query
// dissemination, event batches to ScrubCentral, acks back to agents, results
// back to the user, the baseline's log shipping, and the bidding platform's
// own inter-service calls. Delivery latency is topology-aware (same host /
// same data center / cross data center) plus a bandwidth term, and bytes are
// accounted per traffic category — the E11 experiment (Scrub vs full
// logging) reads its numbers straight from these counters.
//
// Fault injection: a seeded FaultPlan makes the network hostile on purpose —
// per-category drop/duplicate/reorder probabilities, latency spikes, and
// timed DC-level partitions — while staying fully deterministic: the same
// seed yields the same faults, and categories with no active fault spec
// consume no randomness at all, so a faulted run's application traffic is
// bit-identical to the clean run's. Crashed hosts (HostInfo::alive == false)
// neither send nor receive; such messages count as dropped rather than
// executing on a dead host's behalf.

#ifndef SRC_CLUSTER_TRANSPORT_H_
#define SRC_CLUSTER_TRANSPORT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/host_registry.h"
#include "src/cluster/scheduler.h"
#include "src/common/rng.h"
#include "src/common/spill.h"

namespace scrub {

enum class TrafficCategory {
  kAppTraffic = 0,    // the bidding platform's own RPCs
  kScrubControl,      // query objects out, teardown messages, control acks
  kScrubEvents,       // event batches host -> ScrubCentral
  kScrubAcks,         // batch acks ScrubCentral -> host
  kScrubResults,      // result rows ScrubCentral -> user
  kScrubPartials,     // merged window partials, combiner -> ScrubCentral
  kBaselineLog,       // the full-logging baseline's shipped events
  kCategoryCount,
};

const char* TrafficCategoryName(TrafficCategory category);

struct TransportConfig {
  TimeMicros same_host_latency = 5;            // loopback
  TimeMicros same_dc_latency = 250;            // intra-DC RPC
  TimeMicros cross_dc_latency = 60'000;        // trans-continental
  // Serialization/propagation cost per byte (1 byte/ns ~ 8 Gbit/s).
  double micros_per_byte = 0.001;
};

// Per-category message corruption. All probabilities in [0, 1]. A default
// constructed spec is inert and consumes no randomness.
struct FaultSpec {
  double drop = 0.0;       // message vanishes
  double duplicate = 0.0;  // message delivered twice
  double reorder = 0.0;    // message delayed by `reorder_delay` (overtaken)
  double spike = 0.0;      // latency spike of `spike_delay`
  TimeMicros reorder_delay = 2'000;
  TimeMicros spike_delay = 50'000;

  bool Active() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || spike > 0.0;
  }
};

// A timed network partition: while active ([start, end)), messages between
// `datacenter` and any *other* DC are dropped in both directions. Intra-DC
// traffic is unaffected.
struct PartitionSpec {
  std::string datacenter;
  TimeMicros start = 0;
  TimeMicros end = 0;
};

struct FaultPlan {
  uint64_t seed = 1;
  std::array<FaultSpec, static_cast<size_t>(TrafficCategory::kCategoryCount)>
      by_category = {};
  std::vector<PartitionSpec> partitions;
  // Spill-path I/O faults (seeded per-record write/read failures). Not a
  // network category: ScrubSystem forwards this spec to the central's
  // SpillManager, whose fault stream is seeded from `seed` but independent
  // of the network fault RNG — arming one never perturbs the other.
  SpillFaultSpec spill;

  FaultSpec& Category(TrafficCategory c) {
    return by_category[static_cast<size_t>(c)];
  }
  const FaultSpec& Category(TrafficCategory c) const {
    return by_category[static_cast<size_t>(c)];
  }
  bool Active() const {
    if (!partitions.empty()) {
      return true;
    }
    for (const FaultSpec& spec : by_category) {
      if (spec.Active()) {
        return true;
      }
    }
    return false;
  }
};

// What the fault layer did, per category. `partitioned` and `dead_host` drops
// are also counted in `dropped`.
struct FaultStats {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t spiked = 0;
  uint64_t partitioned = 0;
  uint64_t dead_host = 0;
};

class Transport {
 public:
  Transport(Scheduler* scheduler, const HostRegistry* registry,
            TransportConfig config = {})
      : scheduler_(scheduler), registry_(registry), config_(config),
        fault_rng_(1) {
    bytes_by_category_.fill(0);
    messages_by_category_.fill(0);
  }

  // Schedules `deliver` to run on the recipient after the link latency.
  // `bytes` is the message's wire size (drives both the bandwidth term and
  // the accounting). Subject to the fault plan: the message may be dropped,
  // duplicated, delayed, or cut by a partition; messages from or to a dead
  // host are dropped. Bytes are accounted at send time either way — the
  // sender paid to serialize them.
  void Send(HostId from, HostId to, size_t bytes, TrafficCategory category,
            std::function<void()> deliver);

  // Installs (or replaces) the fault plan and reseeds the fault RNG.
  void SetFaultPlan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return faults_; }

  TimeMicros LatencyBetween(HostId from, HostId to) const;

  // True while a partition currently severs the from->to link.
  bool Partitioned(HostId from, HostId to) const;

  uint64_t bytes_sent(TrafficCategory category) const {
    return bytes_by_category_[static_cast<size_t>(category)];
  }
  // Bytes addressed to one recipient in one category (accounted at send
  // time like the totals). The fleet benchmarks read the central host's
  // ingress link load from here: flat topologies concentrate every
  // kScrubEvents byte on it, hierarchical ones only the compact partials.
  uint64_t bytes_to(HostId to, TrafficCategory category) const;
  uint64_t messages_sent(TrafficCategory category) const {
    return messages_by_category_[static_cast<size_t>(category)];
  }
  uint64_t total_bytes() const;

  const FaultStats& fault_stats(TrafficCategory category) const {
    return fault_stats_[static_cast<size_t>(category)];
  }
  FaultStats TotalFaultStats() const;

  void ResetCounters();

 private:
  Scheduler* scheduler_;
  const HostRegistry* registry_;
  TransportConfig config_;
  FaultPlan faults_;
  Rng fault_rng_;
  std::array<uint64_t, static_cast<size_t>(TrafficCategory::kCategoryCount)>
      bytes_by_category_;
  std::array<uint64_t, static_cast<size_t>(TrafficCategory::kCategoryCount)>
      messages_by_category_;
  std::array<FaultStats, static_cast<size_t>(TrafficCategory::kCategoryCount)>
      fault_stats_ = {};
  std::unordered_map<
      HostId,
      std::array<uint64_t, static_cast<size_t>(TrafficCategory::kCategoryCount)>>
      bytes_by_destination_;
};

}  // namespace scrub

#endif  // SRC_CLUSTER_TRANSPORT_H_
