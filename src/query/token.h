// Tokens of the Scrub query language.

#ifndef SRC_QUERY_TOKEN_H_
#define SRC_QUERY_TOKEN_H_

#include <cstdint>
#include <string>

namespace scrub {

enum class TokenKind {
  kEnd,
  kIdentifier,   // bid, user_id, BidServers, s (unit suffixes are idents)
  kInteger,      // 42
  kFloat,        // 1.25
  kString,       // 'sj' or "sj"
  // Punctuation / operators.
  kComma,
  kSemicolon,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kLParen,
  kRParen,
  kAt,           // @
  kLBracket,
  kRBracket,
  kEq,           // =
  kNe,           // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier/string payload, or operator spelling
  int64_t int_value = 0;  // for kInteger
  double float_value = 0; // for kFloat
  size_t offset = 0;      // byte offset in the query text, for diagnostics
  size_t end_offset = 0;  // one past the token's last byte
};

const char* TokenKindName(TokenKind kind);

}  // namespace scrub

#endif  // SRC_QUERY_TOKEN_H_
