#include "src/query/analyzer.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/query/parser.h"

namespace scrub {
namespace {

class Analyzer {
 public:
  Analyzer(const SchemaRegistry& registry, const AnalyzerOptions& options)
      : registry_(registry), options_(options) {}

  Result<AnalyzedQuery> Run(const Query& input) {
    AnalyzedQuery out;
    out.query = input.Clone();
    Query& q = out.query;

    Status s = BindSources(q, &out);
    if (!s.ok()) {
      return s;
    }
    s = ApplyDefaults(&q);
    if (!s.ok()) {
      return s;
    }

    // SELECT list.
    if (q.select.empty()) {
      return InvalidArgument("SELECT list must not be empty");
    }
    for (SelectItem& item : q.select) {
      Status st = TypeCheck(item.expr.get(), &out, /*allow_aggregates=*/true);
      if (!st.ok()) {
        return st;
      }
      if (item.expr->ContainsAggregate()) {
        out.has_aggregates = true;
      }
    }

    // WHERE: boolean, no aggregates, conjuncts single-source.
    if (q.where != nullptr) {
      Status st = TypeCheck(q.where.get(), &out, /*allow_aggregates=*/false);
      if (!st.ok()) {
        return st;
      }
      if (q.where->resolved_type != FieldType::kBool) {
        return InvalidArgument("WHERE predicate must be boolean");
      }
      st = SplitWhere(q.where.get(), &out);
      if (!st.ok()) {
        return st;
      }
    }

    // GROUP BY: field refs only; type-checked; no aggregates.
    for (ExprPtr& g : q.group_by) {
      if (g->kind != ExprKind::kFieldRef) {
        return InvalidArgument("GROUP BY supports only field references");
      }
      Status st = TypeCheck(g.get(), &out, /*allow_aggregates=*/false);
      if (!st.ok()) {
        return st;
      }
      if (g->resolved_type && IsListType(*g->resolved_type)) {
        return InvalidArgument(
            StrFormat("GROUP BY field '%s' has a list type",
                      g->field.c_str()));
      }
    }

    // With aggregates or GROUP BY present, every bare select expression must
    // be one of the grouping fields.
    if (out.has_aggregates || !q.group_by.empty()) {
      for (const SelectItem& item : q.select) {
        if (item.expr->ContainsAggregate()) {
          continue;
        }
        if (!IsGroupingExpr(*item.expr, q.group_by)) {
          return InvalidArgument(StrFormat(
              "select item '%s' is neither an aggregate nor a GROUP BY field",
              item.expr->ToString().c_str()));
        }
      }
    }

    CollectFields(q, &out);
    return out;
  }

 private:
  Status BindSources(const Query& q, AnalyzedQuery* out) {
    if (q.sources.empty()) {
      return InvalidArgument("FROM clause must name at least one event type");
    }
    if (q.sources.size() > options_.max_sources) {
      return Unimplemented(StrFormat(
          "queries may join at most %zu event types", options_.max_sources));
    }
    for (size_t i = 0; i < q.sources.size(); ++i) {
      for (size_t j = i + 1; j < q.sources.size(); ++j) {
        if (q.sources[i] == q.sources[j]) {
          return InvalidArgument(StrFormat(
              "event type '%s' appears twice in FROM; self-joins are not "
              "supported",
              q.sources[i].c_str()));
        }
      }
      Result<SchemaPtr> schema = registry_.Get(q.sources[i]);
      if (!schema.ok()) {
        return schema.status();
      }
      out->schemas.push_back(std::move(schema).value());
    }
    out->fields_per_source.resize(out->schemas.size());
    return OkStatus();
  }

  Status ApplyDefaults(Query* q) const {
    if (q->window_micros == 0) {
      q->window_micros = options_.default_window_micros;
    }
    if (q->duration_micros == 0) {
      q->duration_micros = options_.default_duration_micros;
    }
    if (q->duration_micros > options_.max_duration_micros) {
      return InvalidArgument(StrFormat(
          "duration exceeds the maximum of %lld hours",
          static_cast<long long>(options_.max_duration_micros /
                                 kMicrosPerHour)));
    }
    if (q->window_micros > q->duration_micros) {
      return InvalidArgument("window is longer than the query duration");
    }
    if (q->slide_micros == 0) {
      q->slide_micros = q->window_micros;  // tumbling by default
    }
    if (q->slide_micros > q->window_micros) {
      return InvalidArgument("slide is longer than the window");
    }
    if (q->window_micros % q->slide_micros != 0) {
      return InvalidArgument("window must be a multiple of the slide");
    }
    return OkStatus();
  }

  // Resolves a field ref in place: canonicalizes the qualifier, settles
  // whether a dotted chain's first segment is an event type or a field
  // (bid.device.os vs device.os), and fills resolved_type. Nested-object
  // paths are dynamically typed (resolved_type == nullopt). Unqualified
  // names must be unambiguous across the sources; system fields on a join
  // resolve to source 0.
  Status ResolveFieldRef(Expr* ref, const AnalyzedQuery& out) {
    const Query& q = out.query;
    // A "qualifier" that is not in the FROM clause is actually the field of
    // an unqualified chain into a nested object.
    if (!ref->qualifier.empty() &&
        std::find(q.sources.begin(), q.sources.end(), ref->qualifier) ==
            q.sources.end()) {
      ref->path.insert(ref->path.begin(), ref->field);
      ref->field = ref->qualifier;
      ref->qualifier.clear();
    }

    int source = -1;
    FieldType declared = FieldType::kBool;
    if (!ref->qualifier.empty()) {
      for (size_t i = 0; i < q.sources.size(); ++i) {
        if (q.sources[i] == ref->qualifier) {
          source = static_cast<int>(i);
          break;
        }
      }
      Result<FieldType> t =
          out.schemas[static_cast<size_t>(source)]->FieldTypeOf(ref->field);
      if (!t.ok()) {
        return t.status();
      }
      declared = *t;
    } else if (ref->field == kRequestIdField ||
               ref->field == kTimestampField) {
      source = 0;
      declared = *out.schemas[0]->FieldTypeOf(ref->field);
    } else {
      for (size_t i = 0; i < out.schemas.size(); ++i) {
        if (out.schemas[i]->FieldIndex(ref->field) >= 0) {
          if (source >= 0) {
            return InvalidArgument(StrFormat(
                "field '%s' is ambiguous between '%s' and '%s'; qualify it",
                ref->field.c_str(),
                q.sources[static_cast<size_t>(source)].c_str(),
                q.sources[i].c_str()));
          }
          source = static_cast<int>(i);
          declared = *out.schemas[i]->FieldTypeOf(ref->field);
        }
      }
      if (source < 0) {
        return NotFound(StrFormat("no source has a field named '%s'",
                                  ref->field.c_str()));
      }
    }

    ref->qualifier = q.sources[static_cast<size_t>(source)];
    if (ref->path.empty()) {
      ref->resolved_type = declared;
      return OkStatus();
    }
    if (declared != FieldType::kObject) {
      return InvalidArgument(StrFormat(
          "field '%s' is %s, not a nested object; '.%s' cannot descend "
          "into it",
          ref->field.c_str(), FieldTypeName(declared),
          ref->path[0].c_str()));
    }
    ref->resolved_type = std::nullopt;  // nested values are dynamic
    return OkStatus();
  }

  Status TypeCheck(Expr* e, AnalyzedQuery* out, bool allow_aggregates) {
    switch (e->kind) {
      case ExprKind::kLiteral: {
        if (e->literal.is_null()) {
          e->resolved_type = std::nullopt;  // matches any comparison peer
        } else if (e->literal.is_bool()) {
          e->resolved_type = FieldType::kBool;
        } else if (e->literal.is_int()) {
          e->resolved_type = FieldType::kLong;
        } else if (e->literal.is_double()) {
          e->resolved_type = FieldType::kDouble;
        } else if (e->literal.is_string()) {
          e->resolved_type = FieldType::kString;
        } else {
          return InvalidArgument("unsupported literal type");
        }
        return OkStatus();
      }
      case ExprKind::kFieldRef:
        return ResolveFieldRef(e, *out);
      case ExprKind::kStar:
        return InvalidArgument("'*' is only valid inside COUNT(*)");
      case ExprKind::kUnary: {
        Status s = TypeCheck(e->children[0].get(), out, allow_aggregates);
        if (!s.ok()) {
          return s;
        }
        const auto& t = e->children[0]->resolved_type;
        if (e->unary_op == UnaryOp::kNegate) {
          if (t && !IsNumericType(*t)) {
            return InvalidArgument("unary '-' requires a numeric operand");
          }
          e->resolved_type = t;
        } else {
          if (t != FieldType::kBool) {
            return InvalidArgument("NOT requires a boolean operand");
          }
          e->resolved_type = FieldType::kBool;
        }
        return OkStatus();
      }
      case ExprKind::kBinary:
        return TypeCheckBinary(e, out, allow_aggregates);
      case ExprKind::kInList: {
        Status s = TypeCheck(e->children[0].get(), out, allow_aggregates);
        if (!s.ok()) {
          return s;
        }
        const auto probe_type = e->children[0]->resolved_type;
        for (size_t i = 1; i < e->children.size(); ++i) {
          Expr* member = e->children[i].get();
          if (member->kind != ExprKind::kLiteral) {
            return InvalidArgument("IN list members must be literals");
          }
          Status ms = TypeCheck(member, out, false);
          if (!ms.ok()) {
            return ms;
          }
          if (!Comparable(probe_type, member->resolved_type)) {
            return InvalidArgument(StrFormat(
                "IN list member %s does not match the probe's type",
                member->ToString().c_str()));
          }
        }
        e->resolved_type = FieldType::kBool;
        return OkStatus();
      }
      case ExprKind::kAggregate:
        return TypeCheckAggregate(e, out, allow_aggregates);
    }
    return InternalError("unhandled expression kind");
  }

  Status TypeCheckBinary(Expr* e, AnalyzedQuery* out, bool allow_aggregates) {
    Status s = TypeCheck(e->children[0].get(), out, allow_aggregates);
    if (!s.ok()) {
      return s;
    }
    s = TypeCheck(e->children[1].get(), out, allow_aggregates);
    if (!s.ok()) {
      return s;
    }
    const auto& lt = e->children[0]->resolved_type;
    const auto& rt = e->children[1]->resolved_type;
    const BinaryOp op = e->binary_op;

    if (IsArithmeticOp(op)) {
      // Dynamic (nested-object / null) operands are decided at runtime.
      if ((lt && !IsNumericType(*lt)) || (rt && !IsNumericType(*rt))) {
        return InvalidArgument(StrFormat(
            "operator '%s' requires numeric operands", BinaryOpName(op)));
      }
      if (!lt || !rt) {
        e->resolved_type = FieldType::kDouble;
        return OkStatus();
      }
      const bool integral = (*lt == FieldType::kInt ||
                             *lt == FieldType::kLong ||
                             *lt == FieldType::kDateTime) &&
                            (*rt == FieldType::kInt ||
                             *rt == FieldType::kLong ||
                             *rt == FieldType::kDateTime);
      e->resolved_type = (integral && op != BinaryOp::kDiv)
                             ? FieldType::kLong
                             : FieldType::kDouble;
      return OkStatus();
    }
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      if (lt != FieldType::kBool || rt != FieldType::kBool) {
        return InvalidArgument(StrFormat(
            "operator '%s' requires boolean operands", BinaryOpName(op)));
      }
      e->resolved_type = FieldType::kBool;
      return OkStatus();
    }
    if (op == BinaryOp::kContains) {
      if (lt && !IsListType(*lt)) {
        return InvalidArgument("CONTAINS requires a list-typed left operand");
      }
      if (lt && !Comparable(ListElementType(*lt), rt)) {
        return InvalidArgument(
            "CONTAINS operand does not match the list element type");
      }
      e->resolved_type = FieldType::kBool;
      return OkStatus();
    }
    // Comparison.
    if (!Comparable(lt, rt)) {
      return InvalidArgument(StrFormat(
          "cannot compare %s with %s",
          lt ? FieldTypeName(*lt) : "null",
          rt ? FieldTypeName(*rt) : "null"));
    }
    if ((op != BinaryOp::kEq && op != BinaryOp::kNe) && lt && rt &&
        !(IsOrderedType(*lt) && IsOrderedType(*rt))) {
      return InvalidArgument(StrFormat(
          "operator '%s' requires ordered operands", BinaryOpName(op)));
    }
    e->resolved_type = FieldType::kBool;
    return OkStatus();
  }

  Status TypeCheckAggregate(Expr* e, AnalyzedQuery* out,
                            bool allow_aggregates) {
    if (!allow_aggregates) {
      return InvalidArgument(
          "aggregates are not allowed here (only in the SELECT list)");
    }
    for (const ExprPtr& child : e->children) {
      if (child->ContainsAggregate()) {
        return InvalidArgument("aggregates cannot be nested");
      }
    }
    if (!e->children.empty()) {
      Status s = TypeCheck(e->children[0].get(), out,
                           /*allow_aggregates=*/false);
      if (!s.ok()) {
        return s;
      }
    }
    const auto arg_type =
        e->children.empty() ? std::nullopt : e->children[0]->resolved_type;
    switch (e->agg_func) {
      case AggregateFunc::kCount:
        e->resolved_type = FieldType::kLong;
        return OkStatus();
      case AggregateFunc::kSum:
      case AggregateFunc::kAvg:
        if (arg_type && !IsNumericType(*arg_type)) {
          return InvalidArgument(StrFormat(
              "%s requires a numeric argument",
              AggregateFuncName(e->agg_func)));
        }
        e->resolved_type = FieldType::kDouble;
        return OkStatus();
      case AggregateFunc::kMin:
      case AggregateFunc::kMax:
        if (arg_type && !IsOrderedType(*arg_type)) {
          return InvalidArgument(StrFormat(
              "%s requires an ordered argument",
              AggregateFuncName(e->agg_func)));
        }
        e->resolved_type = arg_type;
        return OkStatus();
      case AggregateFunc::kCountDistinct:
        if (arg_type && (IsListType(*arg_type) ||
                         *arg_type == FieldType::kObject)) {
          return InvalidArgument(
              "COUNT_DISTINCT requires a primitive argument");
        }
        e->resolved_type = FieldType::kLong;
        return OkStatus();
      case AggregateFunc::kTopK:
        if (e->topk_k <= 0) {
          return InvalidArgument("TOPK's k must be positive");
        }
        if (e->topk_k > 100000) {
          return InvalidArgument("TOPK's k is unreasonably large");
        }
        if (arg_type && (IsListType(*arg_type) ||
                         *arg_type == FieldType::kObject)) {
          return InvalidArgument("TOPK requires a primitive argument");
        }
        e->resolved_type = FieldType::kString;  // rendered "key:count" rows
        return OkStatus();
    }
    return InternalError("unhandled aggregate");
  }

  static bool Comparable(const std::optional<FieldType>& a,
                         const std::optional<FieldType>& b) {
    if (!a || !b) {
      return true;  // null literal compares with anything
    }
    if (IsNumericType(*a) && IsNumericType(*b)) {
      return true;
    }
    if (IsListType(*a) || IsListType(*b) || *a == FieldType::kObject ||
        *b == FieldType::kObject) {
      return false;
    }
    return *a == *b ||
           (*a == FieldType::kString && *b == FieldType::kString);
  }

  // Which sources does this (type-checked) expression touch?
  void SourcesOf(const Expr& e, const AnalyzedQuery& out,
                 std::unordered_set<int>* sources) {
    if (e.kind == ExprKind::kFieldRef) {
      // System fields attribute to their (canonicalized) qualifier too:
      // bid.__timestamp and exclusion.__timestamp are different values, so a
      // predicate over one of them is a single-source predicate.
      for (size_t i = 0; i < out.query.sources.size(); ++i) {
        if (out.query.sources[i] == e.qualifier) {
          sources->insert(static_cast<int>(i));
          return;
        }
      }
      return;
    }
    for (const ExprPtr& child : e.children) {
      SourcesOf(*child, out, sources);
    }
  }

  // Splits WHERE into top-level AND conjuncts; each must reference at most
  // one source (the equi-join-on-request-id-only rule).
  Status SplitWhere(const Expr* where, AnalyzedQuery* out) {
    std::vector<const Expr*> stack = {where};
    std::vector<const Expr*> conjuncts;
    while (!stack.empty()) {
      const Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
        stack.push_back(e->children[1].get());
        stack.push_back(e->children[0].get());
        continue;
      }
      conjuncts.push_back(e);
    }
    // Preserve source order of conjuncts (stack gives reverse; we pushed
    // right-then-left so pops come left-to-right already).
    for (const Expr* c : conjuncts) {
      std::unordered_set<int> sources;
      SourcesOf(*c, *out, &sources);
      if (sources.size() > 1) {
        return Unimplemented(StrFormat(
            "predicate '%s' references multiple event types; Scrub joins "
            "are restricted to the implicit equi-join on %.*s",
            c->ToString().c_str(), static_cast<int>(kRequestIdField.size()),
            kRequestIdField.data()));
      }
      out->conjuncts.push_back(c->Clone());
      out->conjunct_source.push_back(
          sources.empty() ? -1 : *sources.begin());
    }
    return OkStatus();
  }

  static bool IsGroupingExpr(const Expr& e,
                             const std::vector<ExprPtr>& group_by) {
    if (e.kind != ExprKind::kFieldRef) {
      return false;
    }
    for (const ExprPtr& g : group_by) {
      if (g->qualifier == e.qualifier && g->field == e.field &&
          g->path == e.path) {
        return true;
      }
    }
    return false;
  }

  void CollectFieldsIn(const Expr& e, AnalyzedQuery* out) {
    if (e.kind == ExprKind::kFieldRef) {
      for (size_t i = 0; i < out->query.sources.size(); ++i) {
        if (out->query.sources[i] == e.qualifier) {
          out->fields_per_source[i].insert(e.field);
          return;
        }
      }
      return;
    }
    for (const ExprPtr& child : e.children) {
      CollectFieldsIn(*child, out);
    }
  }

  void CollectFields(const Query& q, AnalyzedQuery* out) {
    for (const SelectItem& item : q.select) {
      CollectFieldsIn(*item.expr, out);
    }
    if (q.where != nullptr) {
      CollectFieldsIn(*q.where, out);
    }
    for (const ExprPtr& g : q.group_by) {
      CollectFieldsIn(*g, out);
    }
  }

  const SchemaRegistry& registry_;
  const AnalyzerOptions& options_;
};

}  // namespace

AnalyzedQuery AnalyzedQuery::Clone() const {
  AnalyzedQuery out;
  out.query = query.Clone();
  out.schemas = schemas;
  out.fields_per_source = fields_per_source;
  out.conjuncts.reserve(conjuncts.size());
  for (const ExprPtr& c : conjuncts) {
    out.conjuncts.push_back(c->Clone());
  }
  out.conjunct_source = conjunct_source;
  out.has_aggregates = has_aggregates;
  return out;
}

Result<AnalyzedQuery> Analyze(const Query& query,
                              const SchemaRegistry& registry,
                              const AnalyzerOptions& options) {
  Analyzer analyzer(registry, options);
  return analyzer.Run(query);
}

Result<AnalyzedQuery> ParseAndAnalyze(std::string_view text,
                                      const SchemaRegistry& registry,
                                      const AnalyzerOptions& options) {
  Result<Query> parsed = ParseQuery(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return Analyze(*parsed, registry, options);
}

}  // namespace scrub
