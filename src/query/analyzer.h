// Semantic analysis: binds a parsed query against the schema registry,
// type-checks it, applies defaults, and enforces Scrub's language
// restrictions (Sections 2-3 of the paper):
//
//  * Joins are implicit and restricted to equi-joins on the request
//    identifier: naming two event types in FROM joins them on
//    __request_id. Any WHERE conjunct that mixes fields of two different
//    sources is rejected — such a predicate would be a general join
//    condition, which the language deliberately omits, and it could not be
//    evaluated host-side anyway.
//  * Group-by / aggregation happen only at ScrubCentral, so WHERE (the
//    host-side filter) may not contain aggregates.
//  * Every query has a finite span: START/DURATION default if omitted, so a
//    forgotten query cannot load the system forever.

#ifndef SRC_QUERY_ANALYZER_H_
#define SRC_QUERY_ANALYZER_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/event/schema.h"
#include "src/query/ast.h"

namespace scrub {

struct AnalyzerOptions {
  TimeMicros default_window_micros = 10 * kMicrosPerSecond;
  TimeMicros default_duration_micros = 5 * kMicrosPerMinute;
  TimeMicros max_duration_micros = 24 * kMicrosPerHour;
  size_t max_sources = 2;  // the paper's queries join at most two event types
};

// The validated query plus binding metadata the planner consumes.
struct AnalyzedQuery {
  Query query;  // defaults applied, every Expr::resolved_type filled

  // Schemas of query.sources, same order.
  std::vector<SchemaPtr> schemas;

  // Per source: the user/system fields the query reads anywhere (select,
  // where, group-by). This is the projection set hosts apply.
  std::vector<std::unordered_set<std::string>> fields_per_source;

  // Per source: the WHERE conjuncts that reference only this source (or no
  // source at all). Conjunct indexes into `conjuncts`.
  std::vector<ExprPtr> conjuncts;            // the split WHERE
  std::vector<int> conjunct_source;          // source index, -1 = const

  bool has_aggregates = false;
  bool is_join() const { return schemas.size() > 1; }

  AnalyzedQuery Clone() const;
};

// Analyze `query` against `registry`. On success the returned
// AnalyzedQuery owns a deep copy; the input is not modified.
Result<AnalyzedQuery> Analyze(const Query& query,
                              const SchemaRegistry& registry,
                              const AnalyzerOptions& options = {});

// Convenience: parse + analyze.
Result<AnalyzedQuery> ParseAndAnalyze(std::string_view text,
                                      const SchemaRegistry& registry,
                                      const AnalyzerOptions& options = {});

}  // namespace scrub

#endif  // SRC_QUERY_ANALYZER_H_
