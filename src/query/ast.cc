#include "src/query/ast.h"

#include <cctype>

#include "src/common/strings.h"

namespace scrub {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kContains:
      return "CONTAINS";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kContains:
      return true;
    default:
      return false;
  }
}

bool IsArithmeticOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return true;
    default:
      return false;
  }
}

const char* AggregateFuncName(AggregateFunc func) {
  switch (func) {
    case AggregateFunc::kCount:
      return "COUNT";
    case AggregateFunc::kSum:
      return "SUM";
    case AggregateFunc::kAvg:
      return "AVG";
    case AggregateFunc::kMin:
      return "MIN";
    case AggregateFunc::kMax:
      return "MAX";
    case AggregateFunc::kCountDistinct:
      return "COUNT_DISTINCT";
    case AggregateFunc::kTopK:
      return "TOPK";
  }
  return "?";
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeFieldRef(std::string qualifier, std::string field) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFieldRef;
  e->qualifier = std::move(qualifier);
  e->field = std::move(field);
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::MakeInList(ExprPtr probe, std::vector<ExprPtr> members) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInList;
  e->children.push_back(std::move(probe));
  for (auto& m : members) {
    e->children.push_back(std::move(m));
  }
  return e;
}

ExprPtr Expr::MakeAggregate(AggregateFunc func, ExprPtr arg) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg_func = func;
  if (arg != nullptr) {
    e->children.push_back(std::move(arg));
  }
  return e;
}

ExprPtr Expr::MakeTopK(int64_t k, ExprPtr arg) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg_func = AggregateFunc::kTopK;
  e->topk_k = k;
  e->children.push_back(std::move(arg));
  return e;
}

ExprPtr Expr::MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->field = field;
  e->path = path;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  e->agg_func = agg_func;
  e->topk_k = topk_k;
  e->resolved_type = resolved_type;
  e->span = span;
  e->children.reserve(children.size());
  for (const ExprPtr& child : children) {
    e->children.push_back(child->Clone());
  }
  return e;
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAggregate) {
    return true;
  }
  for (const ExprPtr& child : children) {
    if (child->ContainsAggregate()) {
      return true;
    }
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kFieldRef: {
      std::string out = qualifier.empty() ? field : qualifier + "." + field;
      for (const std::string& p : path) {
        out += ".";
        out += p;
      }
      return out;
    }
    case ExprKind::kStar:
      return "*";
    case ExprKind::kUnary: {
      std::string out = unary_op == UnaryOp::kNegate ? "-(" : "NOT (";
      out += children[0]->ToString();
      out += ")";
      return out;
    }
    case ExprKind::kBinary: {
      std::string out = "(";
      out += children[0]->ToString();
      out += " ";
      out += BinaryOpName(binary_op);
      out += " ";
      out += children[1]->ToString();
      out += ")";
      return out;
    }
    case ExprKind::kInList: {
      std::string out = children[0]->ToString() + " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i != 1) {
          out += ", ";
        }
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kAggregate: {
      std::string out = AggregateFuncName(agg_func);
      out += "(";
      if (agg_func == AggregateFunc::kTopK) {
        out += std::to_string(topk_k) + ", ";
      }
      out += children.empty() ? "*" : children[0]->ToString();
      out += ")";
      return out;
    }
  }
  return "?";
}

namespace {

// Target names that are not plain identifiers (e.g. host names with dashes)
// render as quoted strings so the output re-parses.
std::string QuoteTargetName(const std::string& name) {
  bool ident = !name.empty() &&
               (std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_');
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      ident = false;
      break;
    }
  }
  return ident ? name : "'" + name + "'";
}

}  // namespace

std::string TargetSpec::ToString() const {
  std::vector<std::string> terms;
  for (const std::string& s : services) {
    std::string term = "SERVICE IN ";
    term += QuoteTargetName(s);
    terms.push_back(std::move(term));
  }
  if (hosts.size() == 1) {
    std::string term = "SERVER = ";
    term += QuoteTargetName(hosts[0]);
    terms.push_back(std::move(term));
  } else if (hosts.size() > 1) {
    std::vector<std::string> quoted;
    quoted.reserve(hosts.size());
    for (const std::string& h : hosts) {
      quoted.push_back(QuoteTargetName(h));
    }
    std::string term = "SERVERS IN (";
    term += StrJoin(quoted, ", ");
    term += ")";
    terms.push_back(std::move(term));
  }
  for (const std::string& dc : datacenters) {
    std::string term = "DATACENTER = ";
    term += QuoteTargetName(dc);
    terms.push_back(std::move(term));
  }
  std::string out = "@[";
  out += StrJoin(terms, " AND ");
  out += "]";
  return out;
}

SelectItem SelectItem::Clone() const {
  SelectItem item;
  item.expr = expr->Clone();
  item.alias = alias;
  return item;
}

std::string SelectItem::ToString() const {
  std::string out = expr->ToString();
  if (!alias.empty()) {
    out += " AS ";
    out += alias;
  }
  return out;
}

Query Query::Clone() const {
  Query q;
  q.select.reserve(select.size());
  for (const SelectItem& item : select) {
    q.select.push_back(item.Clone());
  }
  q.sources = sources;
  q.where = where ? where->Clone() : nullptr;
  q.targets = targets;
  q.group_by.reserve(group_by.size());
  for (const ExprPtr& g : group_by) {
    q.group_by.push_back(g->Clone());
  }
  q.window_micros = window_micros;
  q.slide_micros = slide_micros;
  q.start_offset_micros = start_offset_micros;
  q.duration_micros = duration_micros;
  q.host_sample_rate = host_sample_rate;
  q.event_sample_rate = event_sample_rate;
  q.spans = spans;
  return q;
}

namespace {

// Renders micros as the most compact unit that divides it evenly.
std::string DurationToString(TimeMicros micros) {
  if (micros % kMicrosPerHour == 0) {
    return std::to_string(micros / kMicrosPerHour) + " HOURS";
  }
  if (micros % kMicrosPerMinute == 0) {
    return std::to_string(micros / kMicrosPerMinute) + " MINUTES";
  }
  if (micros % kMicrosPerSecond == 0) {
    return std::to_string(micros / kMicrosPerSecond) + " SECONDS";
  }
  if (micros % kMicrosPerMilli == 0) {
    return std::to_string(micros / kMicrosPerMilli) + " MILLIS";
  }
  return std::to_string(micros) + " MICROS";
}

std::string RateToPercent(double rate) {
  return StrFormat("%g%%", rate * 100.0);
}

}  // namespace

std::string Query::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += select[i].ToString();
  }
  out += " FROM ";
  out += StrJoin(sources, ", ");
  if (where != nullptr) {
    out += " WHERE ";
    out += where->ToString();
  }
  if (!targets.IsUnrestricted()) {
    out += " ";
    out += targets.ToString();
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += group_by[i]->ToString();
    }
  }
  if (window_micros > 0) {
    out += " WINDOW ";
    out += DurationToString(window_micros);
    if (slide_micros > 0 && slide_micros != window_micros) {
      out += " SLIDE ";
      out += DurationToString(slide_micros);
    }
  }
  if (start_offset_micros > 0) {
    out += " START ";
    out += DurationToString(start_offset_micros);
  }
  if (duration_micros > 0) {
    out += " DURATION ";
    out += DurationToString(duration_micros);
  }
  if (host_sample_rate < 1.0) {
    out += " SAMPLE HOSTS ";
    out += RateToPercent(host_sample_rate);
  }
  if (event_sample_rate < 1.0) {
    out += " SAMPLE EVENTS ";
    out += RateToPercent(event_sample_rate);
  }
  out += ";";
  return out;
}

}  // namespace scrub
